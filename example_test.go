package pgpub_test

import (
	"fmt"

	"pgpub"
)

// Example publishes the paper's hospital microdata (Table Ia) with the
// Table II parameters and prints the publication's shape and guarantees.
func Example() {
	d := pgpub.Hospital()
	pub, err := pgpub.Publish(d, pgpub.HospitalHierarchies(d.Schema),
		pgpub.Config{S: 0.5, P: 0.25, Seed: 2008})
	if err != nil {
		panic(err)
	}
	rho2, delta, err := pub.Guarantees(0.1, 0.2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("published %d of %d tuples at k = %d\n", pub.Len(), d.Len(), pub.K)
	fmt.Printf("guarantees: 0.20-to-%.2f and %.2f-growth\n", rho2, delta)
	// Output:
	// published 4 of 8 tuples at k = 2
	// guarantees: 0.20-to-0.38 and 0.13-growth
}

// ExampleMinRho2 regenerates one cell of the paper's Table III: the ρ₂
// bound at p = 0.3, k = 6 over the 50-value Income domain.
func ExampleMinRho2() {
	rho2, err := pgpub.MinRho2(0.3, 0.1, 0.2, 6, 50)
	if err != nil {
		panic(err)
	}
	delta, err := pgpub.MinDelta(0.3, 0.1, 6, 50)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rho2 >= %.2f, delta >= %.2f\n", rho2, delta)
	// Output:
	// rho2 >= 0.45, delta >= 0.24
}

// ExampleLinkAttack runs the corruption-aided linking attack of the paper's
// Example 1 shape: the adversary corrupted Debbie and Emily and attacks
// Ellie.
func ExampleLinkAttack() {
	d := pgpub.Hospital()
	pub, err := pgpub.Publish(d, pgpub.HospitalHierarchies(d.Schema),
		pgpub.Config{K: 2, P: 0.25, Seed: 42})
	if err != nil {
		panic(err)
	}
	ext, err := pgpub.NewExternal(d, pgpub.HospitalVoterQI())
	if err != nil {
		panic(err)
	}
	domain := d.Schema.SensitiveDomain()
	q, err := pgpub.PredicateOf(domain,
		d.Schema.Sensitive.MustCode("bronchitis"),
		d.Schema.Sensitive.MustCode("pneumonia"))
	if err != nil {
		panic(err)
	}
	res, err := pgpub.LinkAttack(pub, ext, 3, pgpub.Adversary{
		Background: pgpub.UniformPDF(domain),
		Corrupted:  map[int]bool{2: true, 4: true}, // Debbie, Emily
	}, q)
	if err != nil {
		panic(err)
	}
	bound := pgpub.HTop(pub.P, 1/float64(domain), pub.K, domain)
	fmt.Printf("h within bound: %v\n", res.H <= bound+1e-9)
	fmt.Printf("posterior is a probability: %v\n", res.Posterior >= 0 && res.Posterior <= 1)
	// Output:
	// h within bound: true
	// posterior is a probability: true
}

// ExampleMaxRetentionRho12 plans the retention probability for a target
// guarantee level, the publisher-side workflow of Section VI.
func ExampleMaxRetentionRho12() {
	p, err := pgpub.MaxRetentionRho12(0.1, 0.2, 0.45, 6, 50)
	if err != nil {
		panic(err)
	}
	fmt.Printf("max p = %.2f\n", p)
	// Output:
	// max p = 0.30
}

// ExampleEstimateCount answers an aggregate query from a publication alone.
func ExampleEstimateCount() {
	d, err := pgpub.GenerateSAL(20000, 1)
	if err != nil {
		panic(err)
	}
	pub, err := pgpub.Publish(d, pgpub.SALHierarchies(d.Schema),
		pgpub.Config{K: 6, P: 0.3, Seed: 2})
	if err != nil {
		panic(err)
	}
	// COUNT(*) — the full-domain query is estimated exactly: sum of G.
	q := pgpub.CountQuery{QI: make([]pgpub.QueryRange, d.Schema.D())}
	for j, a := range d.Schema.QI {
		q.QI[j] = pgpub.QueryRange{Lo: 0, Hi: int32(a.Size() - 1)}
	}
	est, err := pgpub.EstimateCount(pub, q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("COUNT(*) = %.0f\n", est)
	// Output:
	// COUNT(*) = 20000
}
