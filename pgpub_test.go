package pgpub

import (
	"math"
	"strings"
	"testing"
)

// The facade must support the full publish → attack → mine workflow without
// touching internal packages.
func TestFacadeEndToEnd(t *testing.T) {
	// Hospital walkthrough.
	d := Hospital()
	if d.Len() != 8 {
		t.Fatalf("hospital Len = %d", d.Len())
	}
	hiers := HospitalHierarchies(d.Schema)
	pub, err := Publish(d, hiers, Config{S: 0.5, P: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if pub.K != 2 || pub.Len() > 4 {
		t.Fatalf("K=%d len=%d", pub.K, pub.Len())
	}
	var sb strings.Builder
	if err := pub.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ",G") {
		t.Fatal("CSV missing the G column")
	}

	// Attack through the facade.
	ext, err := NewExternal(d, HospitalVoterQI())
	if err != nil {
		t.Fatal(err)
	}
	domain := d.Schema.SensitiveDomain()
	q, err := PredicateOf(domain, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LinkAttack(pub, ext, 3, Adversary{
		Background: UniformPDF(domain),
		Corrupted:  map[int]bool{2: true, 4: true},
	}, q)
	if err != nil {
		t.Fatalf("LinkAttack: %v", err)
	}
	if res.H > HTop(0.25, 1/float64(domain), 2, domain)+1e-9 {
		t.Fatal("h exceeds the facade-computed bound")
	}

	// Conventional baseline.
	rec, err := TopRecoding(d.Schema, hiers)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := PublishConventional(d, rec)
	if err != nil {
		t.Fatal(err)
	}
	reconstructed, err := conv.TotalCorruptionAttack(ext, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reconstructed != d.Sensitive(ext.RowOf(1)) {
		t.Fatal("Lemma 2 reconstruction failed through the facade")
	}
}

func TestFacadeGuaranteeSolvers(t *testing.T) {
	p, err := MaxRetentionRho12(0.1, 0.2, 0.45, 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.2996) > 0.01 {
		t.Fatalf("solved p = %v, want ~0.30", p)
	}
	r2, err := MinRho2(p, 0.1, 0.2, 6, 50)
	if err != nil || r2 > 0.45+1e-6 {
		t.Fatalf("MinRho2 = %v, %v", r2, err)
	}
	pd, err := MaxRetentionDelta(0.1, 0.24, 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := MinDelta(pd, 0.1, 6, 50)
	if err != nil || dl > 0.24+1e-6 {
		t.Fatalf("MinDelta = %v, %v", dl, err)
	}
}

func TestFacadeSALMining(t *testing.T) {
	d, err := GenerateSAL(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	classOf, err := SALCategorizer(2)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := Publish(d, SALHierarchies(d.Schema), Config{K: 6, P: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := TrainPG(pub, classOf, 2, MiningConfig{})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(clf.Predict, d, classOf)
	if acc <= 0.4 || acc > 1 {
		t.Fatalf("accuracy = %v", acc)
	}
	opt, err := TrainTable(d, classOf, 2, MiningConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a := Accuracy(opt.Predict, d, classOf); a <= acc-0.5 {
		t.Fatalf("optimistic accuracy %v vs PG %v", a, acc)
	}
}

func TestFacadeSchemaBuilders(t *testing.T) {
	age, err := NewIntAttribute("Age", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewAttribute("G", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSchema([]*Attribute{age}, g)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTable(s)
	if err := tb.AppendLabels("3", "a"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(s, strings.NewReader(sb.String()))
	if err != nil || back.Len() != 1 {
		t.Fatalf("CSV round trip: %v", err)
	}
	if _, err := NewIntervalHierarchy(10, 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBalancedHierarchy(16, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFlatHierarchy(2); err != nil {
		t.Fatal(err)
	}
	if _, err := ExcludingPDF(10, 3); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	d := Hospital()
	hiers := HospitalHierarchies(d.Schema)
	for _, alg := range []Algorithm{KD, TDS, FullDomain} {
		pub, err := Publish(d, hiers, Config{K: 2, P: 0.3, Algorithm: alg, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := pub.Validate(); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

func TestFacadeReleaseIO(t *testing.T) {
	d := Hospital()
	pub, err := Publish(d, HospitalHierarchies(d.Schema), Config{K: 2, P: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var csvOut, metaOut strings.Builder
	if err := pub.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	m, err := pub.Metadata(0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(&metaOut); err != nil {
		t.Fatal(err)
	}
	meta, err := ReadReleaseMetadata(strings.NewReader(metaOut.String()))
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadPublishedCSV(d.Schema, strings.NewReader(csvOut.String()), meta.P)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != pub.Len() || back.P != pub.P {
		t.Fatal("release round trip mismatch")
	}
}

func TestFacadeInferSchema(t *testing.T) {
	schema, tbl, err := InferSchema(strings.NewReader("Age,Class\n20,x\n30,y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if schema.D() != 1 || tbl.Len() != 2 {
		t.Fatal("inference shape wrong")
	}
}

func TestFacadeDPAndAggregates(t *testing.T) {
	eps := LocalDPEpsilon(0.3, 50)
	if eps <= 0 {
		t.Fatal("epsilon must be positive at p=0.3")
	}
	p, err := RetentionForEpsilon(eps, 50)
	if err != nil || math.Abs(p-0.3) > 1e-12 {
		t.Fatalf("DP round trip: %v, %v", p, err)
	}
	if Amplification(0.3, 50) <= 1 {
		t.Fatal("gamma must exceed 1")
	}
	d, err := GenerateSAL(4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := Publish(d, SALHierarchies(d.Schema), Config{K: 5, P: 0.3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	q := CountQuery{QI: make([]QueryRange, d.Schema.D())}
	for j, a := range d.Schema.QI {
		q.QI[j] = QueryRange{Lo: 0, Hi: int32(a.Size() - 1)}
	}
	truth, err := TrueSum(d, q, IncomeMidpoint)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateSum(pub, q, IncomeMidpoint)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-truth)/truth > 0.15 {
		t.Fatalf("facade SUM off: est %v truth %v", est, truth)
	}
	if _, err := EstimateAvg(pub, q, IncomeMidpoint); err != nil {
		t.Fatal(err)
	}
}
