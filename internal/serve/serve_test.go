package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/query"
)

// hospitalIndex publishes the hospital example and builds a serving index.
func hospitalIndex(t *testing.T) (*query.Index, *pg.Published) {
	t.Helper()
	d := dataset.Hospital()
	hs := []*hierarchy.Hierarchy{
		hierarchy.MustInterval(d.Schema.QI[0].Size(), 5, 20),
		hierarchy.MustFlat(d.Schema.QI[1].Size()),
		hierarchy.MustInterval(d.Schema.QI[2].Size(), 5, 20),
	}
	pub, err := pg.Publish(d, hs, pg.Config{K: 2, P: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := query.NewIndex(pub)
	if err != nil {
		t.Fatal(err)
	}
	return ix, pub
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// post sends a JSON body and decodes a JSON response into out.
func post(t *testing.T, h http.Handler, path string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: decoding %q: %v", path, w.Body.String(), err)
		}
	}
	return w.Code
}

// TestServedAnswersMatchIndex is the serving layer's correctness anchor:
// every op answered over HTTP equals the in-process Index answer exactly.
func TestServedAnswersMatchIndex(t *testing.T) {
	ix, _ := hospitalIndex(t)
	s := newTestServer(t, Config{Index: ix})
	h := s.Handler()

	full := func() query.CountQuery {
		q := query.CountQuery{QI: make([]query.Range, ix.Schema().D())}
		for j, a := range ix.Schema().QI {
			q.QI[j] = query.Range{Lo: 0, Hi: int32(a.Size() - 1)}
		}
		return q
	}

	// COUNT with a named-attribute range plus a sensitive mask.
	q := full()
	q.QI[0] = query.Range{Lo: 2, Hi: 9}
	q.Sensitive = make([]bool, ix.Schema().SensitiveDomain())
	q.Sensitive[1] = true
	want, err := ix.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	var resp QueryResponse
	if code := post(t, h, "/v1/query", QueryRequest{
		Op:        "count",
		Where:     []WhereClause{{Attr: ix.Schema().QI[0].Name, Lo: json.RawMessage("2"), Hi: json.RawMessage("9")}},
		Sensitive: []int32{1},
	}, &resp); code != http.StatusOK {
		t.Fatalf("count: status %d", code)
	}
	if resp.Estimate != want {
		t.Fatalf("count over HTTP = %v, in-process = %v", resp.Estimate, want)
	}
	if resp.Source != "computed" {
		t.Fatalf("first answer source = %q", resp.Source)
	}

	// The identical request again must come from the cache, same value.
	if post(t, h, "/v1/query", QueryRequest{
		Op:        "count",
		Where:     []WhereClause{{Attr: ix.Schema().QI[0].Name, Lo: json.RawMessage("2"), Hi: json.RawMessage("9")}},
		Sensitive: []int32{1},
	}, &resp); resp.Source != "cache" || resp.Estimate != want {
		t.Fatalf("repeat answer: source=%q estimate=%v", resp.Source, resp.Estimate)
	}

	// naive, sum, avg on an unrestricted query.
	for _, op := range []string{"naive", "sum", "avg"} {
		var want float64
		var err error
		switch op {
		case "naive":
			want, err = ix.Naive(full())
		case "sum":
			want, err = ix.Sum(full(), func(c int32) float64 { return float64(c) })
		case "avg":
			want, err = ix.Avg(full(), func(c int32) float64 { return float64(c) })
		}
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if code := post(t, h, "/v1/query", QueryRequest{Op: op}, &resp); code != http.StatusOK {
			t.Fatalf("%s: status %d", op, code)
		}
		if resp.Estimate != want {
			t.Fatalf("%s over HTTP = %v, in-process = %v", op, resp.Estimate, want)
		}
	}

	// Label bounds resolve through the attribute domain.
	age := ix.Schema().QI[0]
	q2 := full()
	q2.QI[0] = query.Range{Lo: 2, Hi: 9}
	want2, err := ix.Count(q2)
	if err != nil {
		t.Fatal(err)
	}
	if post(t, h, "/v1/query", QueryRequest{
		Where: []WhereClause{{
			Attr: age.Name,
			Lo:   json.RawMessage(fmt.Sprintf("%q", age.Label(2))),
			Hi:   json.RawMessage(fmt.Sprintf("%q", age.Label(9))),
		}},
	}, &resp); resp.Estimate != want2 {
		t.Fatalf("label-bound count = %v, want %v", resp.Estimate, want2)
	}
}

// TestBatchMatchesWorkloadAcrossWorkers pins the wire-level determinism
// contract: the batch response bytes are identical for every worker count
// and equal the in-process AnswerWorkload.
func TestBatchMatchesWorkloadAcrossWorkers(t *testing.T) {
	ix, _ := hospitalIndex(t)
	schema := ix.Schema()

	var reqs []QueryRequest
	var qs []query.CountQuery
	for lo := 0; lo < 10; lo += 2 {
		reqs = append(reqs, QueryRequest{
			Where:     []WhereClause{{Attr: schema.QI[0].Name, Lo: json.RawMessage(fmt.Sprint(lo)), Hi: json.RawMessage(fmt.Sprint(lo + 5))}},
			Sensitive: []int32{0, 1},
		})
		q := query.CountQuery{QI: make([]query.Range, schema.D())}
		for j, a := range schema.QI {
			q.QI[j] = query.Range{Lo: 0, Hi: int32(a.Size() - 1)}
		}
		q.QI[0] = query.Range{Lo: int32(lo), Hi: int32(lo + 5)}
		q.Sensitive = make([]bool, schema.SensitiveDomain())
		q.Sensitive[0], q.Sensitive[1] = true, true
		qs = append(qs, q)
	}
	want, err := ix.AnswerWorkload(qs, 0)
	if err != nil {
		t.Fatal(err)
	}

	var bodies []string
	for _, workers := range []int{1, 2, 7} {
		s := newTestServer(t, Config{Index: ix, Workers: workers})
		buf, _ := json.Marshal(BatchRequest{Queries: reqs})
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(buf))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, w.Code, w.Body.String())
		}
		bodies = append(bodies, w.Body.String())

		var resp BatchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if resp.Estimates[i] != want[i] {
				t.Fatalf("workers=%d query %d: %v, want %v", workers, i, resp.Estimates[i], want[i])
			}
		}
	}
	for _, b := range bodies[1:] {
		if b != bodies[0] {
			t.Fatalf("batch bytes differ across worker counts:\n%s\n%s", bodies[0], b)
		}
	}
}

// fakeAnswerer is an injectable backend: it counts calls, optionally blocks
// on a gate, and optionally sleeps.
type fakeAnswerer struct {
	calls atomic.Int64
	gate  chan struct{} // when non-nil, Count blocks until the gate closes
	delay time.Duration
}

func (f *fakeAnswerer) Count(q query.CountQuery) (float64, error) {
	f.calls.Add(1)
	if f.gate != nil {
		<-f.gate
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return float64(q.QI[0].Lo), nil
}
func (f *fakeAnswerer) Naive(q query.CountQuery) (float64, error) { return f.Count(q) }
func (f *fakeAnswerer) Sum(q query.CountQuery, _ query.SensitiveValue) (float64, error) {
	return f.Count(q)
}
func (f *fakeAnswerer) Avg(q query.CountQuery, _ query.SensitiveValue) (float64, error) {
	return f.Count(q)
}
func (f *fakeAnswerer) AvgParts(q query.CountQuery, _ query.SensitiveValue) (float64, float64, error) {
	v, err := f.Count(q)
	return v, 1, err
}
func (f *fakeAnswerer) AnswerWorkload(qs []query.CountQuery, _ int) ([]float64, error) {
	out := make([]float64, len(qs))
	for i, q := range qs {
		v, _ := f.Count(q)
		out[i] = v
	}
	return out, nil
}

func fakeConfig(f *fakeAnswerer) Config {
	return Config{
		Answerer: f,
		Schema:   dataset.Hospital().Schema,
	}
}

// TestCacheEviction drives more distinct queries than the cache holds and
// checks entries are evicted rather than accumulated, and that re-asking an
// evicted query recomputes.
func TestCacheEviction(t *testing.T) {
	f := &fakeAnswerer{}
	reg := obs.NewRegistry()
	cfg := fakeConfig(f)
	cfg.CacheEntries = cacheShards // one entry per shard
	cfg.Metrics = reg
	s := newTestServer(t, cfg)
	h := s.Handler()

	const distinct = 4 * cacheShards
	for lo := 0; lo < distinct; lo++ {
		var resp QueryResponse
		if code := post(t, h, "/v1/query", QueryRequest{
			Where: []WhereClause{{Dim: intp(0), Lo: json.RawMessage(fmt.Sprint(lo)), Hi: json.RawMessage(fmt.Sprint(lo))}},
		}, &resp); code != http.StatusOK {
			t.Fatalf("lo=%d: status %d", lo, code)
		}
	}
	if got := s.rel.Load().cache.len(); got > cacheShards {
		t.Fatalf("cache holds %d entries, cap is %d", got, cacheShards)
	}
	if reg.Counter("serve.cache.evictions").Value() == 0 {
		t.Fatal("no evictions recorded after overfilling the cache")
	}

	// Asking the distinct queries again cannot be all cache hits: most were
	// evicted, so the backend is called again.
	before := f.calls.Load()
	for lo := 0; lo < distinct; lo++ {
		post(t, h, "/v1/query", QueryRequest{
			Where: []WhereClause{{Dim: intp(0), Lo: json.RawMessage(fmt.Sprint(lo)), Hi: json.RawMessage(fmt.Sprint(lo))}},
		}, nil)
	}
	if f.calls.Load() == before {
		t.Fatal("evicted queries were answered without recomputation")
	}
}

func intp(v int) *int { return &v }

// TestSingleflightCoalesces fires N identical queries concurrently against a
// gated backend and requires exactly one backend call; the N-1 duplicates
// share the leader's computation.
func TestSingleflightCoalesces(t *testing.T) {
	f := &fakeAnswerer{gate: make(chan struct{})}
	reg := obs.NewRegistry()
	cfg := fakeConfig(f)
	cfg.Metrics = reg
	cfg.MaxInFlight = 64
	s := newTestServer(t, cfg)
	h := s.Handler()

	const n = 16
	var wg sync.WaitGroup
	results := make([]QueryResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = post(t, h, "/v1/query", QueryRequest{
				Where: []WhereClause{{Dim: intp(0), Lo: json.RawMessage("3"), Hi: json.RawMessage("3")}},
			}, &results[i])
		}(i)
	}
	// Wait until all n requests have joined the one flight (leader inside
	// the gate, duplicates parked on its done channel), then release. The
	// join count is the gate condition — a plain cache-miss count would race
	// a fast leader against latecomers still on their way into the flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		calls, joined := s.rel.Load().flight.stats()
		if calls == 1 && joined == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d flights with %d joined callers, want 1 with %d", calls, joined, n)
		}
		time.Sleep(time.Millisecond)
	}
	close(f.gate)
	wg.Wait()

	if got := f.calls.Load(); got != 1 {
		t.Fatalf("backend called %d times for %d identical concurrent queries", got, n)
	}
	var coalesced int
	for i := range results {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if results[i].Estimate != 3 {
			t.Fatalf("request %d: estimate %v", i, results[i].Estimate)
		}
		if results[i].Source == "coalesced" {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Fatalf("%d of %d answers coalesced, want %d", coalesced, n, n-1)
	}
	if got := reg.Counter("serve.coalesced").Value(); got != n-1 {
		t.Fatalf("serve.coalesced = %d, want %d", got, n-1)
	}
}

// TestLimiterShedsWithRetryAfter saturates a MaxInFlight=1 server with a
// blocked request and checks the overflow is shed with 429 + Retry-After,
// while the admitted request still completes once unblocked.
func TestLimiterShedsWithRetryAfter(t *testing.T) {
	f := &fakeAnswerer{gate: make(chan struct{})}
	reg := obs.NewRegistry()
	cfg := fakeConfig(f)
	cfg.MaxInFlight = 1
	cfg.Metrics = reg
	s := newTestServer(t, cfg)
	h := s.Handler()

	firstDone := make(chan int, 1)
	go func() {
		firstDone <- post(t, h, "/v1/query", QueryRequest{
			Where: []WhereClause{{Dim: intp(0), Lo: json.RawMessage("5"), Hi: json.RawMessage("5")}},
		}, nil)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for f.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}

	// The slot is held; a distinct query must be shed, not queued.
	req := httptest.NewRequest(http.MethodPost, "/v1/query",
		strings.NewReader(`{"where":[{"dim":0,"lo":7,"hi":7}]}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	if reg.Counter("serve.shed").Value() != 1 {
		t.Fatalf("serve.shed = %d", reg.Counter("serve.shed").Value())
	}

	close(f.gate)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("admitted request finished with %d", code)
	}

	// With the slot free again, the previously shed query now succeeds.
	if code := post(t, h, "/v1/query", QueryRequest{
		Where: []WhereClause{{Dim: intp(0), Lo: json.RawMessage("7"), Hi: json.RawMessage("7")}},
	}, nil); code != http.StatusOK {
		t.Fatalf("post-drain request failed with %d", code)
	}
}

// TestTimeoutCutsOffSlowQueries pins the deadline path: a backend slower
// than RequestTimeout yields 504, and the timeout counter moves.
func TestTimeoutCutsOffSlowQueries(t *testing.T) {
	f := &fakeAnswerer{delay: 300 * time.Millisecond}
	reg := obs.NewRegistry()
	cfg := fakeConfig(f)
	cfg.RequestTimeout = 20 * time.Millisecond
	cfg.Metrics = reg
	s := newTestServer(t, cfg)

	var resp errorResponse
	if code := post(t, s.Handler(), "/v1/query", QueryRequest{
		Where: []WhereClause{{Dim: intp(0), Lo: json.RawMessage("1"), Hi: json.RawMessage("1")}},
	}, &resp); code != http.StatusGatewayTimeout {
		t.Fatalf("slow query answered %d, want 504", code)
	}
	if reg.Counter("serve.timeouts").Value() != 1 {
		t.Fatalf("serve.timeouts = %d", reg.Counter("serve.timeouts").Value())
	}

	// The abandoned computation still completes in the background and fills
	// the cache: once it lands, the same query is a hit.
	deadline := time.Now().Add(5 * time.Second)
	for s.rel.Load().cache.len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned computation never filled the cache")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var ok QueryResponse
	if code := post(t, s.Handler(), "/v1/query", QueryRequest{
		Where: []WhereClause{{Dim: intp(0), Lo: json.RawMessage("1"), Hi: json.RawMessage("1")}},
	}, &ok); code != http.StatusOK || ok.Source != "cache" {
		t.Fatalf("post-timeout repeat: code=%d source=%q", code, ok.Source)
	}
}

// TestGracefulShutdownDrains starts a real listener, parks a request on a
// gated backend, calls Shutdown, and requires (a) the in-flight request to
// complete with 200, (b) Shutdown to return only after it did, and (c) new
// connections to be refused afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	f := &fakeAnswerer{gate: make(chan struct{})}
	s := newTestServer(t, fakeConfig(f))
	hs, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		code int
		body string
		err  error
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+hs.Addr+"/v1/query", "application/json",
			strings.NewReader(`{"where":[{"dim":0,"lo":4,"hi":4}]}`))
		if err != nil {
			inFlight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inFlight <- result{code: resp.StatusCode, body: string(b)}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for f.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(ctx)
	}()

	// Shutdown must wait for the parked request.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(f.gate)
	r := <-inFlight
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight request during shutdown: code=%d err=%v", r.code, r.err)
	}
	var resp QueryResponse
	if err := json.Unmarshal([]byte(r.body), &resp); err != nil || resp.Estimate != 4 {
		t.Fatalf("drained answer corrupted: %q (%v)", r.body, err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + hs.Addr + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

// TestRequestValidation sweeps the 400 paths.
func TestRequestValidation(t *testing.T) {
	ix, _ := hospitalIndex(t)
	s := newTestServer(t, Config{Index: ix})
	h := s.Handler()

	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{`},
		{"unknown op", `{"op":"median"}`},
		{"unknown attr", `{"where":[{"attr":"Nope"}]}`},
		{"attr and dim", `{"where":[{"attr":"Age","dim":0}]}`},
		{"neither attr nor dim", `{"where":[{"lo":1}]}`},
		{"dim out of range", `{"where":[{"dim":99}]}`},
		{"inverted range", `{"where":[{"dim":0,"lo":5,"hi":2}]}`},
		{"code out of domain", `{"where":[{"dim":0,"lo":-3}]}`},
		{"bad bound type", `{"where":[{"dim":0,"lo":[1]}]}`},
		{"unknown label", `{"where":[{"dim":0,"lo":"xyzzy"}]}`},
		{"sensitive code out of domain", `{"sensitive":[99]}`},
		{"values on count", `{"op":"count","values":[1,2]}`},
		{"values wrong length", `{"op":"sum","values":[1]}`},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(tc.body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body.String())
		}
	}

	// GET on a POST endpoint.
	req := httptest.NewRequest(http.MethodGet, "/v1/query", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query: status %d", w.Code)
	}

	// Batch rejects non-count ops.
	if code := post(t, h, "/v1/batch", BatchRequest{Queries: []QueryRequest{{Op: "sum"}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("batch with sum: status %d", code)
	}
}

// TestMetadataEndpoint checks /v1/metadata serves the release document plus
// the index's group count, and /healthz responds.
func TestMetadataEndpoint(t *testing.T) {
	ix, pub := hospitalIndex(t)
	meta, err := pub.Metadata(0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Index: ix, Meta: meta})
	h := s.Handler()

	req := httptest.NewRequest(http.MethodGet, "/v1/metadata", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/metadata: status %d", w.Code)
	}
	var got MetadataResponse
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.P != pub.P || got.K != pub.K || got.Algorithm != pub.Algorithm.String() {
		t.Fatalf("metadata drifted: %+v", got)
	}
	if got.Groups != ix.Groups() {
		t.Fatalf("groups = %d, want %d", got.Groups, ix.Groups())
	}
	if got.Guarantee == nil || got.Guarantee.Lambda != 0.1 {
		t.Fatalf("guarantee block missing: %+v", got.Guarantee)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("/healthz: %d %q", w.Code, w.Body.String())
	}
}
