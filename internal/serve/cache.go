package serve

import (
	"container/list"
	"hash/fnv"
	"sync"
)

// This file holds the two concurrency primitives the serving layer is built
// on: a sharded LRU result cache and a singleflight group. Both are keyed on
// the canonical query encoding (see queryKey in serve.go), so two
// syntactically different requests describing the same query share one cache
// slot and one in-flight computation.

// cacheShards fixes the shard count. Sixteen shards keep lock contention
// negligible at the concurrency levels the limiter admits while costing a
// few hundred bytes of overhead.
const cacheShards = 16

// resultCache is a sharded LRU from canonical query keys to answers. Each
// shard holds its own lock, map and recency list; a key's shard is fixed by
// its FNV-1a hash, so capacity bounds hold per shard (total capacity is
// split evenly and never exceeded).
type resultCache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	ll  *list.List // front = most recently used
}

// answerVal is the cached/coalesced unit of answer: the estimate plus, for
// sum/avg, the compose pair (inverted sum, region weight) the wire exposes
// so coordinators can merge. Caching the triple keeps a cache hit able to
// serve the full response, not just the scalar.
type answerVal struct {
	est    float64
	sum    float64
	weight float64
	parts  bool // sum/weight are meaningful (op was sum or avg)
}

type cacheEntry struct {
	key string
	val answerVal
}

// newResultCache builds a cache holding at most entries results in total.
// entries <= 0 returns nil; a nil *resultCache misses every get and drops
// every put, which is the cache-disabled mode.
func newResultCache(entries int) *resultCache {
	if entries <= 0 {
		return nil
	}
	per := entries / cacheShards
	if per < 1 {
		per = 1
	}
	c := &resultCache{}
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: per, m: make(map[string]*list.Element), ll: list.New()}
	}
	return c
}

func (c *resultCache) shard(key string) *cacheShard {
	h := fnv.New64a()
	h.Write([]byte(key))
	return &c.shards[h.Sum64()%cacheShards]
}

// get returns the cached answer for key and refreshes its recency.
func (c *resultCache) get(key string) (answerVal, bool) {
	if c == nil {
		return answerVal{}, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return answerVal{}, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores an answer, evicting the shard's least-recently-used entry when
// the shard is full. It reports whether an entry was evicted.
func (c *resultCache) put(key string, val answerVal) (evicted bool) {
	if c == nil {
		return false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return false
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*cacheEntry).key)
		evicted = true
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
	return evicted
}

// len returns the number of cached entries across all shards.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// flightGroup coalesces concurrent computations of the same key: the first
// caller (the leader) runs fn, every concurrent duplicate blocks until the
// leader finishes and shares its result. Completed calls are forgotten
// immediately — memoization across time is the cache's job, not this one's.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done   chan struct{}
	joined int // callers sharing this computation, leader included
	val    answerVal
	err    error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once among concurrent callers of the same key. The second
// return reports whether this caller shared a leader's result instead of
// computing its own.
func (g *flightGroup) do(key string, fn func() (answerVal, error)) (v answerVal, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.joined++
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{}), joined: 1}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// stats reports the in-flight computations and the total callers attached
// to them — a test hook: it is how a test waits until every concurrent
// duplicate has actually joined a leader, rather than racing the leader's
// completion against latecomers still between the cache miss and the join.
func (g *flightGroup) stats() (calls, joined int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, c := range g.calls {
		calls++
		joined += c.joined
	}
	return calls, joined
}
