package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/sal"
	"pgpub/internal/shard"
	"pgpub/internal/snapshot"
)

// coordFixture is a running sharded deployment: S shard servers on
// loopback, their in-memory manifest, and a started coordinator.
type coordFixture struct {
	pubs  []*pg.Published
	group *shard.Group
	coord *Coordinator
	reg   *obs.Registry
	hss   []*HTTPServer
}

// newCoordFixture publishes SAL into s shards, serves every shard on
// loopback and starts a coordinator over them.
func newCoordFixture(t *testing.T, n, s int, cfg func(*CoordConfig)) *coordFixture {
	t.Helper()
	d, err := sal.Generate(n, 11)
	if err != nil {
		t.Fatal(err)
	}
	pubs, err := pg.PublishSharded(d, sal.Hierarchies(d.Schema), pg.Config{
		K: 6, P: 0.3, Algorithm: pg.KD, Seed: 11,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	g, err := shard.NewGroup(pubs)
	if err != nil {
		t.Fatal(err)
	}

	f := &coordFixture{pubs: pubs, group: g, reg: obs.NewRegistry()}
	man := &snapshot.Manifest{
		K: 6, P: 0.3, Algorithm: pg.KD.String(), Seed: 11, SourceRows: n,
		Shards: make([]snapshot.ShardEntry, s),
	}
	urls := make([]string, s)
	for i, pub := range pubs {
		// The snapshots never touch disk here; the coordinator validates the
		// shards over HTTP, not the files, so the entries carry placeholder
		// paths and unchecked CRCs.
		man.Shards[i] = snapshot.ShardEntry{
			Path: fmt.Sprintf("inproc-%02d.pgsnap", i), Rows: pub.Len(),
			SourceRows: (n + s - 1 - i) / s,
		}
		ix, err := query.NewIndex(pub)
		if err != nil {
			t.Fatal(err)
		}
		meta, err := pub.Metadata(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		srv := newTestServer(t, Config{Index: ix, Meta: meta})
		hs, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { hs.Close() })
		f.hss = append(f.hss, hs)
		urls[i] = "http://" + hs.Addr
	}

	cc := CoordConfig{Manifest: man, ShardURLs: urls, Metrics: f.reg}
	if cfg != nil {
		cfg(&cc)
	}
	c, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	f.coord = c
	return f
}

// wireQuery renders an in-process CountQuery as the /v1/query body.
func wireQuery(op string, q query.CountQuery) QueryRequest {
	req := QueryRequest{Op: op}
	for j, r := range q.QI {
		dim := j
		req.Where = append(req.Where, WhereClause{
			Dim: &dim,
			Lo:  json.RawMessage(fmt.Sprintf("%d", r.Lo)),
			Hi:  json.RawMessage(fmt.Sprintf("%d", r.Hi)),
		})
	}
	for code, in := range q.Sensitive {
		if in {
			req.Sensitive = append(req.Sensitive, int32(code))
		}
	}
	return req
}

// TestCoordinatorMatchesGroup is the distributed-equivalence anchor: every
// op answered through the fan-out coordinator must equal the in-process
// shard.Group composition bit for bit — same arithmetic, same shard order.
func TestCoordinatorMatchesGroup(t *testing.T) {
	f := newCoordFixture(t, 2000, 4, nil)
	h := f.coord.Handler()
	g := f.group

	rng := rand.New(rand.NewSource(5))
	qs, err := query.Workload(g.Schema(), query.WorkloadConfig{
		Queries: 24, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.5, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range qs {
		want, err := g.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		var resp QueryResponse
		if code := post(t, h, "/v1/query", wireQuery("count", q), &resp); code != http.StatusOK {
			t.Fatalf("query %d: status %d", qi, code)
		}
		if math.Float64bits(resp.Estimate) != math.Float64bits(want) {
			t.Fatalf("query %d: coordinator count %v, group %v", qi, resp.Estimate, want)
		}
		if resp.Source != "merged" {
			t.Fatalf("query %d: source %q", qi, resp.Source)
		}

		uq := q
		uq.Sensitive = nil
		wantN, err := g.Naive(uq)
		if err != nil {
			t.Fatal(err)
		}
		if post(t, h, "/v1/query", wireQuery("naive", uq), &resp); math.Float64bits(resp.Estimate) != math.Float64bits(wantN) {
			t.Fatalf("query %d: coordinator naive %v, group %v", qi, resp.Estimate, wantN)
		}

		wantSum, wantW, err := g.AvgParts(uq, query.IncomeMidpoint)
		if err != nil {
			t.Fatal(err)
		}
		req := wireQuery("sum", uq)
		req.Values = incomeValues(g.Schema().SensitiveDomain())
		if code := post(t, h, "/v1/query", req, &resp); code != http.StatusOK {
			t.Fatalf("query %d sum: status %d", qi, code)
		}
		if resp.Sum == nil || resp.Weight == nil {
			t.Fatalf("query %d: sum response lacks the compose pair", qi)
		}
		if math.Float64bits(*resp.Sum) != math.Float64bits(wantSum) ||
			math.Float64bits(*resp.Weight) != math.Float64bits(wantW) {
			t.Fatalf("query %d: coordinator pair (%v,%v), group (%v,%v)",
				qi, *resp.Sum, *resp.Weight, wantSum, wantW)
		}

		req.Op = "avg"
		wantAvg, avgErr := g.Avg(uq, query.IncomeMidpoint)
		code := post(t, h, "/v1/query", req, &resp)
		if avgErr != nil {
			if code != http.StatusBadRequest {
				t.Fatalf("query %d: group avg errored (%v) but coordinator returned %d", qi, avgErr, code)
			}
		} else {
			if code != http.StatusOK {
				t.Fatalf("query %d avg: status %d", qi, code)
			}
			if math.Float64bits(resp.Estimate) != math.Float64bits(wantAvg) {
				t.Fatalf("query %d: coordinator avg %v, group %v", qi, resp.Estimate, wantAvg)
			}
		}
	}

	// Batch: elementwise identical to the composed workload.
	want, err := g.AnswerWorkload(qs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var breq BatchRequest
	for _, q := range qs {
		breq.Queries = append(breq.Queries, wireQuery("count", q))
	}
	var bresp BatchResponse
	if code := post(t, h, "/v1/batch", breq, &bresp); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(bresp.Estimates) != len(want) {
		t.Fatalf("batch: %d answers for %d queries", len(bresp.Estimates), len(want))
	}
	for i := range want {
		if math.Float64bits(bresp.Estimates[i]) != math.Float64bits(want[i]) {
			t.Fatalf("batch query %d: coordinator %v, group %v", i, bresp.Estimates[i], want[i])
		}
	}

	if v := f.reg.Counter("coord.requests.query").Value(); v == 0 {
		t.Fatal("coord.requests.query never incremented")
	}
	if v := f.reg.Counter("coord.requests.batch").Value(); v != 1 {
		t.Fatalf("coord.requests.batch = %d", v)
	}
}

// incomeValues maps each sensitive code to its IncomeMidpoint value — the
// wire form of the SUM/AVG value function.
func incomeValues(domain int) []float64 {
	v := make([]float64, domain)
	for c := range v {
		v[c] = query.IncomeMidpoint(int32(c))
	}
	return v
}

// TestCoordinatorMetadata checks the merged /v1/metadata document and the
// /v1/shards fleet view.
func TestCoordinatorMetadata(t *testing.T) {
	f := newCoordFixture(t, 1500, 4, nil)
	h := f.coord.Handler()

	var md MetadataResponse
	if code := get(t, h, "/v1/metadata", &md); code != http.StatusOK {
		t.Fatalf("metadata: status %d", code)
	}
	if md.Shards != 4 || md.Rows != f.group.Rows() || md.Groups != f.group.Groups() {
		t.Fatalf("merged metadata: shards=%d rows=%d groups=%d, group has rows=%d groups=%d",
			md.Shards, md.Rows, md.Groups, f.group.Rows(), f.group.Groups())
	}
	if md.P != 0.3 || md.K != 6 || md.Algorithm != "kd" {
		t.Fatalf("merged metadata params: %+v", md)
	}

	var sts []ShardStatus
	if code := get(t, h, "/v1/shards", &sts); code != http.StatusOK {
		t.Fatalf("shards: status %d", code)
	}
	if len(sts) != 4 {
		t.Fatalf("%d shard statuses", len(sts))
	}
	for i, st := range sts {
		if st.Shard != i || !st.Healthy || st.Rows != f.pubs[i].Len() {
			t.Fatalf("shard status %d: %+v", i, st)
		}
	}
}

// get fetches path and decodes the JSON response.
func get(t *testing.T, h http.Handler, path string, out any) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: decoding %q: %v", path, w.Body.String(), err)
		}
	}
	return w.Code
}

// TestCoordinatorPinnedQuery drills into one shard: the answer must be that
// shard's alone, tagged Source "shard"; out-of-range pins and pins inside
// batches are client errors.
func TestCoordinatorPinnedQuery(t *testing.T) {
	f := newCoordFixture(t, 1500, 3, nil)
	h := f.coord.Handler()

	q := query.CountQuery{QI: make([]query.Range, f.group.Schema().D())}
	for j, a := range f.group.Schema().QI {
		q.QI[j] = query.Range{Lo: 0, Hi: int32(a.Size() - 1)}
	}
	for s := 0; s < 3; s++ {
		want, err := f.group.Indexes[s].Count(q)
		if err != nil {
			t.Fatal(err)
		}
		req := wireQuery("count", q)
		pin := s
		req.Shard = &pin
		var resp QueryResponse
		if code := post(t, h, "/v1/query", req, &resp); code != http.StatusOK {
			t.Fatalf("shard %d: status %d", s, code)
		}
		if math.Float64bits(resp.Estimate) != math.Float64bits(want) {
			t.Fatalf("shard %d: pinned count %v, index %v", s, resp.Estimate, want)
		}
		if resp.Source != "shard" {
			t.Fatalf("shard %d: source %q", s, resp.Source)
		}
	}

	req := wireQuery("count", q)
	bad := 7
	req.Shard = &bad
	var er errorResponse
	if code := post(t, h, "/v1/query", req, &er); code != http.StatusBadRequest {
		t.Fatalf("out-of-range pin: status %d (%s)", code, er.Error)
	}

	breq := BatchRequest{Queries: []QueryRequest{req}}
	if code := post(t, h, "/v1/batch", breq, &er); code != http.StatusBadRequest {
		t.Fatalf("pinned batch: status %d (%s)", code, er.Error)
	}
}

// TestCoordinatorDeadShard kills one shard server mid-flight: the
// coordinator must answer 502 naming the dead shard, never a partial
// aggregate.
func TestCoordinatorDeadShard(t *testing.T) {
	f := newCoordFixture(t, 1500, 3, nil)
	h := f.coord.Handler()

	f.hss[1].Close()
	var er errorResponse
	code := post(t, h, "/v1/query", QueryRequest{Op: "naive"}, &er)
	if code != http.StatusBadGateway {
		t.Fatalf("dead shard: status %d (%s)", code, er.Error)
	}
	if !strings.Contains(er.Error, "shard 1") {
		t.Fatalf("dead shard error does not name it: %q", er.Error)
	}
	if f.reg.Counter("coord.errors").Value() == 0 {
		t.Fatal("coord.errors never incremented")
	}
}

// fakeShardMeta is the /v1/metadata document a scripted fake shard serves.
func fakeShardMeta(rows int) MetadataResponse {
	return MetadataResponse{
		Metadata: pg.Metadata{P: 0.3, K: 6, Algorithm: "kd", Rows: rows},
		Groups:   1,
	}
}

// fakeShard serves a scripted handler plus a conforming /v1/metadata — the
// harness for tail-control tests where real publication latency is too
// well-behaved.
func fakeShard(t *testing.T, rows int, handler http.HandlerFunc) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/metadata", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, fakeShardMeta(rows))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/query", handler)
	hs, err := serveHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hs.Close() })
	return "http://" + hs.Addr
}

// fakeManifest describes a release of n single-row fake shards.
func fakeManifest(n int) *snapshot.Manifest {
	m := &snapshot.Manifest{K: 6, P: 0.3, Algorithm: "kd", Seed: 1, SourceRows: 10 * n}
	for i := 0; i < n; i++ {
		m.Shards = append(m.Shards, snapshot.ShardEntry{
			Path: fmt.Sprintf("fake-%02d.pgsnap", i), Rows: 10, SourceRows: 10,
		})
	}
	return m
}

// startFakeCoordinator builds and starts a coordinator over fake shards.
func startFakeCoordinator(t *testing.T, urls []string, cfg func(*CoordConfig)) (*Coordinator, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cc := CoordConfig{Manifest: fakeManifest(len(urls)), ShardURLs: urls, Metrics: reg}
	if cfg != nil {
		cfg(&cc)
	}
	c, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	return c, reg
}

// TestCoordinatorHedging scripts a shard whose first answer stalls: the
// hedge must fire after HedgeAfter, win with the fast duplicate, and the
// client sees the answer long before the straggler completes.
func TestCoordinatorHedging(t *testing.T) {
	var calls atomic.Int64
	stall := 2 * time.Second
	url := fakeShard(t, 10, func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 1 {
			time.Sleep(stall)
		}
		writeJSON(w, http.StatusOK, QueryResponse{Op: "count", Estimate: 42, Source: "computed"})
	})
	c, reg := startFakeCoordinator(t, []string{url}, func(cc *CoordConfig) {
		cc.HedgeAfter = 10 * time.Millisecond
	})

	t0 := time.Now()
	var resp QueryResponse
	if code := post(t, c.Handler(), "/v1/query", QueryRequest{Op: "count"}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Estimate != 42 {
		t.Fatalf("estimate %v", resp.Estimate)
	}
	if el := time.Since(t0); el >= stall {
		t.Fatalf("answer took %v — the hedge never rescued the stalled call", el)
	}
	if reg.Counter("coord.hedge.fired").Value() == 0 {
		t.Fatal("coord.hedge.fired never incremented")
	}
	if reg.Counter("coord.hedge.won").Value() == 0 {
		t.Fatal("coord.hedge.won never incremented")
	}
}

// TestCoordinatorShedPassthrough pins the retry contract: a shard's 429 and
// 504 pass through with their original status (clients keep their backoff
// semantics), while a shard's 400 surfaces as a 400 naming the shard.
func TestCoordinatorShedPassthrough(t *testing.T) {
	var status atomic.Int64
	url := fakeShard(t, 10, func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, int(status.Load()), errorResponse{Error: "scripted failure"})
	})
	c, _ := startFakeCoordinator(t, []string{url}, func(cc *CoordConfig) {
		cc.HedgeAfter = -1 // a hedge would be rejected identically; keep counts simple
	})

	for _, want := range []int{http.StatusTooManyRequests, http.StatusGatewayTimeout, http.StatusBadRequest} {
		status.Store(int64(want))
		var er errorResponse
		code := post(t, c.Handler(), "/v1/query", QueryRequest{Op: "count"}, &er)
		if code != want {
			t.Fatalf("shard %d passed through as %d (%s)", want, code, er.Error)
		}
		if !strings.Contains(er.Error, "shard 0") {
			t.Fatalf("shard %d error does not name the shard: %q", want, er.Error)
		}
	}

	// A 500 is a dead shard: 502.
	status.Store(http.StatusInternalServerError)
	var er errorResponse
	if code := post(t, c.Handler(), "/v1/query", QueryRequest{Op: "count"}, &er); code != http.StatusBadGateway {
		t.Fatalf("shard 500 surfaced as %d (%s)", code, er.Error)
	}
}

// TestCoordinatorStartValidation exercises the startup cross-checks: a
// shard serving the wrong row count, the wrong parameters, or another
// coordinator must all fail Start loudly.
func TestCoordinatorStartValidation(t *testing.T) {
	start := func(md MetadataResponse) error {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/metadata", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, http.StatusOK, md)
		})
		hs, err := serveHandler("127.0.0.1:0", mux)
		if err != nil {
			t.Fatal(err)
		}
		defer hs.Close()
		c, err := NewCoordinator(CoordConfig{
			Manifest: fakeManifest(1), ShardURLs: []string{"http://" + hs.Addr},
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return c.Start(ctx)
	}

	if err := start(fakeShardMeta(10)); err != nil {
		t.Fatalf("conforming shard rejected: %v", err)
	}

	md := fakeShardMeta(11)
	if err := start(md); err == nil || !strings.Contains(err.Error(), "rows") {
		t.Fatalf("row mismatch: %v", err)
	}

	md = fakeShardMeta(10)
	md.P = 0.5
	if err := start(md); err == nil || !strings.Contains(err.Error(), "manifest says") {
		t.Fatalf("parameter mismatch: %v", err)
	}

	md = fakeShardMeta(10)
	md.Shards = 2
	if err := start(md); err == nil || !strings.Contains(err.Error(), "itself a coordinator") {
		t.Fatalf("nested coordinator: %v", err)
	}

	if _, err := NewCoordinator(CoordConfig{
		Manifest: fakeManifest(2), ShardURLs: []string{"http://localhost:1"},
	}); err == nil {
		t.Fatal("URL/shard count mismatch accepted")
	}
}
