package serve

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"pgpub/internal/dataset"
	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/snapshot"
)

// This file is the hot-swap path: POST /v1/admin/reload (pgserve also maps
// SIGHUP onto it) re-opens the release source and, when it holds the next
// release of the serving chain, swaps the serving state atomically. The
// swap is RCU over Server.rel: queries load the pointer once and are never
// blocked by a reload; in-flight requests finish on the release they
// started on; the new release starts with an empty cache and singleflight
// so no stale answer can cross the swap. The old release's memory —
// including a mapped snapshot's pages — is never unmapped while readers may
// hold it; it is simply dropped for the collector (a deliberate, bounded
// retention: one superseded index per reload, reclaimed when the last
// reader lets go, except the mmap itself which stays until exit).
//
// A reload has three outcomes, mirrored in HTTP status and metrics:
//
//	swapped  200  serve.reload.swapped   the next release is live
//	rejected 409  serve.reload.rejected  the source's content is not the
//	              successor of the serving release (or there is no source);
//	              serving is untouched
//	failed   500  serve.reload.errors    the source could not be read or
//	              indexed; serving is untouched

// ReleaseData is what Config.Source returns: one loaded release, ready to
// serve. Index is required; Schema defaults to Index.Schema(). CRC and
// Chain carry the snapshot's identity and release-chain block, which Reload
// validates against the serving release before swapping.
type ReleaseData struct {
	Index  *query.Index
	Schema *dataset.Schema
	Meta   pg.Metadata
	Groups int
	CRC    uint32
	Chain  *snapshot.ChainMetadata
}

// ErrReloadRejected marks a reload refused by chain validation (or by the
// absence of a Source): the serving release is untouched and the condition
// is the operator's to fix, not a server fault. handleReload renders it as
// HTTP 409; anything else from Reload is a 500.
var ErrReloadRejected = errors.New("reload rejected")

func rejectf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrReloadRejected}, args...)...)
}

// ReloadResult reports a successful swap.
type ReloadResult struct {
	// Release and CRC identify the now-serving release.
	Release int    `json:"release"`
	CRC     uint32 `json:"crc"`
	// Rows is its published row count.
	Rows int `json:"rows"`
}

// Reload re-opens the release source and hot-swaps to its content, if and
// only if that content is the direct successor of the serving release:
// numbered one higher, naming the serving snapshot's header CRC as its
// parent. Anything else — no source configured, a chainless snapshot, the
// same release still in place, a skipped or foreign release — is rejected
// with ErrReloadRejected and the serving release stays untouched. To catch
// up across several releases, reload them one at a time in order; the
// strict parent link is what keeps a swap from silently skipping a release
// the adversary model has already accounted for.
//
// Reloads serialize among themselves; the query path never waits on one.
func (s *Server) Reload() (*ReloadResult, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.met.reloadAttempts.Inc()
	t0 := time.Now()
	res, err := s.reload()
	s.met.reloadLatency.Observe(time.Since(t0).Nanoseconds())
	switch {
	case errors.Is(err, ErrReloadRejected):
		s.met.reloadRejected.Inc()
	case err != nil:
		s.met.reloadErrors.Inc()
	default:
		s.met.reloadSwapped.Inc()
		s.met.releaseGauge.Set(int64(res.Release))
	}
	return res, err
}

func (s *Server) reload() (*ReloadResult, error) {
	if s.source == nil {
		return nil, rejectf("this server has no snapshot path to reload from (started from a CSV or an in-memory index); restart it on the new release instead")
	}
	cur := s.rel.Load()
	next, err := s.source()
	if err != nil {
		return nil, fmt.Errorf("serve: reloading release source: %w", err)
	}
	if next.Index == nil {
		return nil, fmt.Errorf("serve: release source returned no index")
	}
	if next.Chain == nil {
		return nil, rejectf("the source snapshot has no release-chain block; only chained releases (pgpublish -base/-delta) can be hot-swapped")
	}
	if cur.crc == 0 {
		return nil, rejectf("the serving release has no snapshot identity (header CRC unknown); restart on the new release instead")
	}
	if next.CRC == cur.crc {
		return nil, rejectf("the source still holds the serving release (release %d, CRC %08x); write the next release over it first", cur.number, cur.crc)
	}
	if want := cur.number + 1; next.Chain.Release != want {
		return nil, rejectf("the source holds release %d, serving release %d wants its successor %d; catch up one release at a time",
			next.Chain.Release, cur.number, want)
	}
	if next.Chain.ParentCRC != cur.crc {
		return nil, rejectf("release %d names parent CRC %08x, the serving snapshot's header CRC is %08x — not a successor of the serving release",
			next.Chain.Release, next.Chain.ParentCRC, cur.crc)
	}

	rel := &release{
		answer: next.Index,
		schema: next.Schema,
		meta:   next.Meta,
		groups: next.Groups,
		cache:  newResultCache(s.cacheEntries),
		flight: newFlightGroup(),
		number: next.Chain.Release,
		crc:    next.CRC,
		chain:  next.Chain,
	}
	if rel.schema == nil {
		rel.schema = next.Index.Schema()
	}
	if rel.groups == 0 {
		rel.groups = next.Index.Groups()
	}
	s.rel.Store(rel)
	return &ReloadResult{Release: rel.number, CRC: rel.crc, Rows: rel.meta.Rows}, nil
}

// handleReload is POST /v1/admin/reload: 200 with a ReloadResult on a swap,
// 409 when validation rejects the source's content, 500 when the source
// cannot be read. GET is not allowed — a reload mutates serving state.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.met.errors.Inc()
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	res, err := s.Reload()
	switch {
	case errors.Is(err, ErrReloadRejected):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

// SnapshotSource builds a Config.Source that re-opens the snapshot at path,
// mapped or parsed — the pgserve wiring. The returned loader computes the
// header CRC, loads the publication and its chain block, and builds (or,
// mapped, adopts) the serving index.
func SnapshotSource(path string, mapped bool) func() (*ReleaseData, error) {
	return func() (*ReleaseData, error) {
		crc, err := snapshot.HeaderCRC(path)
		if err != nil {
			return nil, err
		}
		var (
			pub   *pg.Published
			gm    *pg.GuaranteeMetadata
			chain *snapshot.ChainMetadata
			ix    *query.Index
		)
		if mapped {
			m, err := snapshot.OpenMapped(path)
			if err != nil {
				return nil, err
			}
			pub, gm, chain, ix = m.Pub, m.Guarantee, m.Chain, m.Index
		} else {
			pub, gm, chain, err = snapshot.LoadRelease(path)
			if err != nil {
				return nil, err
			}
			if ix, err = query.NewIndex(pub); err != nil {
				return nil, err
			}
		}
		return &ReleaseData{
			Index: ix,
			Meta: pg.Metadata{
				P: pub.P, K: pub.K, Algorithm: pub.Algorithm.String(), Rows: pub.Len(),
				Guarantee: gm,
			},
			CRC:   crc,
			Chain: chain,
		}, nil
	}
}
