package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgpub/internal/obs"
)

// TestSoakDrainUnderAdversarialLoad is the race-focused serving soak: many
// clients push an adversarial query mix — tiny cache (constant eviction),
// heavy duplicates (singleflight leaders and followers), a small admission
// limiter (constant shedding) — and a graceful drain fires mid-run. The
// assertions:
//
//   - no admitted query is dropped: every 200 response carries a complete,
//     decodable body, even for requests in flight when the drain started;
//   - the drain itself completes and leaves no limiter slot occupied
//     (Server.InFlight reports 0 after Shutdown returns);
//   - the mix really exercised all three mechanisms (evictions, coalesced
//     answers and sheds all observed).
//
// Run it with -race: the interesting failures are cache/singleflight/limiter
// interleavings, not the counts.
func TestSoakDrainUnderAdversarialLoad(t *testing.T) {
	f := &fakeAnswerer{delay: 2 * time.Millisecond}
	reg := obs.NewRegistry()
	cfg := fakeConfig(f)
	cfg.Metrics = reg
	cfg.MaxInFlight = 4
	cfg.CacheEntries = cacheShards // one entry per shard: constant eviction
	s := newTestServer(t, cfg)

	hs, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	url := "http://" + hs.Addr + "/v1/query"

	// Pre-marshalled adversarial pool: a few hot duplicates interleaved with
	// a long low-locality tail.
	const poolSize = 64
	pool := make([][]byte, poolSize)
	for i := range pool {
		lo := i
		if i%3 == 0 {
			lo = 1 // hot duplicate: coalesces under concurrency
		}
		body, err := json.Marshal(QueryRequest{
			Where: []WhereClause{{Dim: intp(0), Lo: json.RawMessage(fmt.Sprint(lo)), Hi: json.RawMessage(fmt.Sprint(lo))}},
		})
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = body
	}

	const clients = 8
	var (
		answered, shed, refused atomic.Int64
		truncated               atomic.Int64 // 200s whose body failed to decode: dropped in-flight
		unexpected              atomic.Int64
		firstUnexpected         atomic.Value
	)
	hc := &http.Client{Timeout: 30 * time.Second}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := hc.Post(url, "application/json", bytes.NewReader(pool[(c*7+i)%poolSize]))
				if err != nil {
					// Once the listener is gone every dial fails; requests
					// never admitted were not dropped.
					if strings.Contains(err.Error(), "connection refused") ||
						strings.Contains(err.Error(), "EOF") ||
						strings.Contains(err.Error(), "reset") ||
						strings.Contains(err.Error(), "server closed idle connection") {
						refused.Add(1)
						continue
					}
					unexpected.Add(1)
					firstUnexpected.CompareAndSwap(nil, err.Error())
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var qr QueryResponse
					if json.NewDecoder(resp.Body).Decode(&qr) != nil {
						truncated.Add(1)
					} else {
						answered.Add(1)
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					unexpected.Add(1)
				}
				resp.Body.Close()
			}
		}(c)
	}

	// Let the fleet saturate the limiter, then drain mid-run.
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not complete under load: %v", err)
	}
	close(stop)
	wg.Wait()

	if got := s.InFlight(); got != 0 {
		t.Fatalf("%d limiter slots still occupied after drain", got)
	}
	if n := truncated.Load(); n != 0 {
		t.Fatalf("%d admitted queries returned truncated responses (dropped mid-answer)", n)
	}
	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d requests failed in unexpected ways (first: %v)", n, firstUnexpected.Load())
	}
	if answered.Load() == 0 {
		t.Fatal("no queries answered before the drain")
	}
	if shed.Load() == 0 {
		t.Fatal("the limiter never shed: the mix did not overrun admission")
	}
	if reg.Counter("serve.cache.evictions").Value() == 0 {
		t.Fatal("no cache evictions: the mix did not churn the cache")
	}
	if reg.Counter("serve.coalesced").Value() == 0 {
		t.Fatal("no coalesced answers: the mix did not exercise singleflight")
	}
}
