// Package serve is the network serving layer over the query engine: a
// stdlib-only HTTP JSON API that answers aggregate COUNT/SUM/AVG queries
// against one immutable publication through a precomputed query.Index —
// the publish-then-serve split the paper's consumption model presumes,
// made real over a socket.
//
// Endpoints (docs/SERVING.md has the full reference and a worked session):
//
//	POST /v1/query         one aggregate query (count, naive, sum, avg)
//	POST /v1/batch         a COUNT workload, answered deterministically
//	GET  /v1/metadata      release metadata: p, k, algorithm, rows,
//	                       guarantees, and the release-chain position
//	POST /v1/admin/reload  hot-swap to the chain's next release (RCU over
//	                       the serving state; docs/REPUBLICATION.md)
//	GET  /healthz          liveness probe
//
// The server is hardened for load rather than trust: a concurrency limiter
// admits at most MaxInFlight aggregate requests and sheds the rest with
// 429 + Retry-After (requests never queue unboundedly); every admitted
// request runs under a deadline and is cut off with 504 when it exceeds it;
// answers land in a sharded LRU cache keyed on the canonical query encoding,
// and concurrent duplicates of an uncached query are coalesced into one
// index traversal (singleflight). All of it is observable through
// internal/obs counters and latency histograms (docs/OBSERVABILITY.md
// catalogs the serve.* vocabulary).
package serve

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pgpub/internal/dataset"
	"pgpub/internal/dp"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/snapshot"
)

// Answerer is the query-answering dependency of the server. *query.Index
// satisfies it; tests substitute slow or call-counting implementations to
// exercise the timeout, limiter and singleflight paths.
type Answerer interface {
	Count(q query.CountQuery) (float64, error)
	Naive(q query.CountQuery) (float64, error)
	Sum(q query.CountQuery, value query.SensitiveValue) (float64, error)
	Avg(q query.CountQuery, value query.SensitiveValue) (float64, error)
	// AvgParts exposes the compose form of SUM/AVG — the inverted region sum
	// and the region weight — which a fan-out coordinator needs to merge
	// AVG answers across shards (AVG itself is not additive).
	AvgParts(q query.CountQuery, value query.SensitiveValue) (sum, weight float64, err error)
	AnswerWorkload(qs []query.CountQuery, workers int) ([]float64, error)
}

// Config parameterizes a Server.
type Config struct {
	// Index is the serving index (required unless Answerer is set).
	Index *query.Index
	// Answerer overrides the index as the answering backend; Schema must
	// then be set too. Intended for tests.
	Answerer Answerer
	// Schema is the publication schema; defaults to Index.Schema().
	Schema *dataset.Schema
	// Meta is the release metadata served at /v1/metadata.
	Meta pg.Metadata
	// Groups is the distinct-box count reported in /v1/metadata; defaults to
	// Index.Groups().
	Groups int
	// MaxInFlight bounds concurrently admitted /v1/query + /v1/batch
	// requests; excess load is shed with 429. Default 8×GOMAXPROCS.
	MaxInFlight int
	// RequestTimeout cuts off a single request's answer computation.
	// Default 10s.
	RequestTimeout time.Duration
	// CacheEntries bounds the result cache (total, split across shards).
	// 0 means the default 4096; negative disables caching.
	CacheEntries int
	// Workers is the /v1/batch fan-out (par semantics: 0 = GOMAXPROCS).
	// Batch answers are byte-identical for every value.
	Workers int
	// Metrics optionally receives the serve.* instrumentation. nil disables.
	Metrics *obs.Registry
	// CRC is the serving snapshot's header CRC — the identity a successor
	// release's chain block must name as its parent. 0 (unknown) makes the
	// server reject reloads.
	CRC uint32
	// Chain is the serving snapshot's release-chain block, when it was
	// published as part of a re-publication chain. nil outside a chain.
	Chain *snapshot.ChainMetadata
	// Source re-opens the release origin (the -snapshot path, in pgserve)
	// and returns its current content. Reload calls it to pick up the next
	// release of the chain; nil disables reloading — /v1/admin/reload and
	// SIGHUP are refused with a clear error instead of swapping.
	Source func() (*ReleaseData, error)
	// DP enables the differential-privacy serving mode (docs/DP.md): every
	// aggregate answer is Laplace-noised and charged against the requesting
	// API key's ε-budget. nil serves exact answers — today's mode, byte for
	// byte.
	DP *DPConfig
}

// release is the per-release serving state: everything a request answers
// from that changes when the server hot-swaps to the next snapshot of a
// re-publication chain. It hangs off Server.rel behind an atomic pointer —
// the RCU discipline: a handler loads the pointer once and works against
// that release for its whole lifetime, a reload builds a complete new
// release (fresh cache, fresh singleflight — answers never bleed across
// releases) and swaps the pointer. In-flight requests finish on the release
// they started on; nothing is ever mutated in place.
type release struct {
	answer Answerer
	schema *dataset.Schema
	meta   pg.Metadata
	groups int
	cache  *resultCache
	flight *flightGroup

	// number and crc identify the release within its chain: the chain
	// block's release number (-1 when the release was not published as part
	// of a chain) and the snapshot's header CRC (0 when unknown, e.g. a CSV
	// load). Reload validates the next release's parent link against them;
	// chain is the full block, echoed at /v1/metadata.
	number int
	crc    uint32
	chain  *snapshot.ChainMetadata
}

// Server answers the HTTP API. It is safe for concurrent use; the only
// mutation after New is Reload's atomic swap of the serving release.
type Server struct {
	rel          atomic.Pointer[release]
	timeout      time.Duration
	workers      int
	sem          chan struct{}
	cacheEntries int
	source       func() (*ReleaseData, error)
	reloadMu     sync.Mutex // serializes Reload; never held by the query path
	// dp lives on the Server, not the release: a hot-swap re-keys the noise
	// (the new CRC feeds every draw) but never refunds spent ε.
	dp *serverDP

	met struct {
		reqQuery    *obs.Counter
		reqBatch    *obs.Counter
		reqMetadata *obs.Counter
		errors      *obs.Counter
		shed        *obs.Counter
		timeouts    *obs.Counter
		cacheHits   *obs.Counter
		cacheMiss   *obs.Counter
		cacheEvict  *obs.Counter
		coalesced   *obs.Counter
		latQuery    *obs.Histogram
		latBatch    *obs.Histogram

		reloadAttempts *obs.Counter
		reloadSwapped  *obs.Counter
		reloadRejected *obs.Counter
		reloadErrors   *obs.Counter
		reloadLatency  *obs.Histogram
		releaseGauge   *obs.Gauge
	}
}

// New validates the configuration and builds a Server.
func New(cfg Config) (*Server, error) {
	rel := &release{
		answer: cfg.Answerer,
		schema: cfg.Schema,
		meta:   cfg.Meta,
		groups: cfg.Groups,
		flight: newFlightGroup(),
		number: -1,
		crc:    cfg.CRC,
	}
	if rel.answer == nil {
		if cfg.Index == nil {
			return nil, fmt.Errorf("serve: Config.Index (or Answerer) is required")
		}
		rel.answer = cfg.Index
	}
	if rel.schema == nil {
		if cfg.Index == nil {
			return nil, fmt.Errorf("serve: Config.Schema is required with a custom Answerer")
		}
		rel.schema = cfg.Index.Schema()
	}
	if rel.groups == 0 && cfg.Index != nil {
		rel.groups = cfg.Index.Groups()
	}
	if cfg.Chain != nil {
		rel.number = cfg.Chain.Release
		rel.chain = cfg.Chain
	}
	s := &Server{
		timeout: cfg.RequestTimeout,
		workers: cfg.Workers,
		source:  cfg.Source,
	}
	var err error
	if s.dp, err = newServerDP(cfg.DP, cfg.Metrics); err != nil {
		return nil, err
	}
	if s.timeout <= 0 {
		s.timeout = 10 * time.Second
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 8 * runtime.GOMAXPROCS(0)
	}
	s.sem = make(chan struct{}, maxInFlight)
	s.cacheEntries = cfg.CacheEntries
	if s.cacheEntries == 0 {
		s.cacheEntries = 4096
	}
	rel.cache = newResultCache(s.cacheEntries) // nil when entries < 0: caching disabled

	reg := cfg.Metrics
	s.met.reqQuery = reg.Counter("serve.requests.query")
	s.met.reqBatch = reg.Counter("serve.requests.batch")
	s.met.reqMetadata = reg.Counter("serve.requests.metadata")
	s.met.errors = reg.Counter("serve.errors")
	s.met.shed = reg.Counter("serve.shed")
	s.met.timeouts = reg.Counter("serve.timeouts")
	s.met.cacheHits = reg.Counter("serve.cache.hits")
	s.met.cacheMiss = reg.Counter("serve.cache.misses")
	s.met.cacheEvict = reg.Counter("serve.cache.evictions")
	s.met.coalesced = reg.Counter("serve.coalesced")
	s.met.latQuery = reg.Histogram("serve.latency.query", "ns")
	s.met.latBatch = reg.Histogram("serve.latency.batch", "ns")
	s.met.reloadAttempts = reg.Counter("serve.reload.attempts")
	s.met.reloadSwapped = reg.Counter("serve.reload.swapped")
	s.met.reloadRejected = reg.Counter("serve.reload.rejected")
	s.met.reloadErrors = reg.Counter("serve.reload.errors")
	s.met.reloadLatency = reg.Histogram("serve.reload.latency", "ns")
	s.met.releaseGauge = reg.Gauge("serve.release")
	s.met.releaseGauge.Set(int64(rel.number))
	s.rel.Store(rel)
	return s, nil
}

// InFlight reports the number of currently admitted requests — a drain test
// hook: after HTTPServer.Shutdown returns, every admitted query must have
// released its limiter slot.
func (s *Server) InFlight() int { return len(s.sem) }

// Handler returns the API mux. The debug/metrics surface is deliberately not
// on it — expose that through obs.Registry.Serve on a separate port.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/metadata", s.handleMetadata)
	mux.HandleFunc("/v1/admin/reload", s.handleReload)
	if s.dp != nil {
		mux.HandleFunc("/v1/dp/budget", s.dp.handleBudget)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// HTTPServer is a running API endpoint. Shutdown drains in-flight requests;
// Close aborts them.
type HTTPServer struct {
	// Addr is the bound listen address (resolves ":0" to the real port).
	Addr string
	srv  *http.Server
	lis  net.Listener
}

// Serve starts the API server on addr and returns once the listener
// accepts. The server runs until Shutdown or Close.
func (s *Server) Serve(addr string) (*HTTPServer, error) {
	return serveHandler(addr, s.Handler())
}

// serveHandler binds addr and runs h on it — the shared start path of
// Server.Serve and Coordinator.Serve.
func serveHandler(addr string, h http.Handler) (*HTTPServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	hs := &HTTPServer{Addr: lis.Addr().String(), srv: srv, lis: lis}
	go srv.Serve(lis) //nolint:errcheck // Serve always returns ErrServerClosed after Shutdown/Close
	return hs, nil
}

// Shutdown stops accepting new connections and waits for in-flight requests
// to complete, up to ctx's deadline — the graceful drain SIGTERM triggers in
// cmd/pgserve.
func (h *HTTPServer) Shutdown(ctx context.Context) error {
	if h == nil || h.srv == nil {
		return nil
	}
	return h.srv.Shutdown(ctx)
}

// Close abandons in-flight requests and releases the listener.
func (h *HTTPServer) Close() error {
	if h == nil || h.srv == nil {
		return nil
	}
	return h.srv.Close()
}

// ---------------------------------------------------------------------------
// Wire types

// WhereClause restricts one QI attribute to an inclusive range. The
// attribute is named (Attr) or positional (Dim); Lo and Hi each accept a
// domain label (JSON string) or a code (JSON number). Omitted Lo/Hi default
// to the domain edge.
type WhereClause struct {
	Attr string          `json:"attr,omitempty"`
	Dim  *int            `json:"dim,omitempty"`
	Lo   json.RawMessage `json:"lo,omitempty"`
	Hi   json.RawMessage `json:"hi,omitempty"`
}

// QueryRequest is the /v1/query body. Op defaults to "count". Sensitive
// lists the qualifying sensitive codes (a mask; any subset, contiguous or
// not). Values optionally maps each sensitive code to its numeric value for
// sum/avg; it defaults to the code itself. Shard pins the query to one
// shard of a sharded release — it is meaningful only at a coordinator,
// which answers from that shard alone (a per-shard drill-down, what the
// attack fleet uses to audit shards individually); a single-snapshot server
// rejects it.
type QueryRequest struct {
	Op        string        `json:"op,omitempty"`
	Where     []WhereClause `json:"where,omitempty"`
	Sensitive []int32       `json:"sensitive,omitempty"`
	Values    []float64     `json:"values,omitempty"`
	Shard     *int          `json:"shard,omitempty"`
}

// QueryResponse is the /v1/query answer. Source reports how the answer was
// produced: "computed", "cache", or "coalesced" (shared a concurrent
// duplicate's computation); a coordinator reports "merged" (fanned out to
// every shard) or "shard" (pinned to one). For sum and avg, Sum and Weight
// carry the compose pair (inverted region sum, region weight) the estimate
// was assembled from — the fields a coordinator merges, since AVG is not
// additive but Σ sums / Σ weights is exact. In DP mode the compose pair is
// withheld (it would leak more than the charged ε) and DP carries the
// accounting instead.
type QueryResponse struct {
	Op       string   `json:"op"`
	Estimate float64  `json:"estimate"`
	Source   string   `json:"source"`
	Sum      *float64 `json:"sum,omitempty"`
	Weight   *float64 `json:"weight,omitempty"`
	DP       *DPInfo  `json:"dp,omitempty"`
}

// BatchRequest is the /v1/batch body: a COUNT workload.
type BatchRequest struct {
	Queries []QueryRequest `json:"queries"`
}

// BatchResponse carries the batch answers in request order. The byte
// rendering is identical for every server worker count — the determinism
// contract of query.AnswerWorkload carried to the wire. In DP mode each
// estimate is noised under its own query's canonical key (so a batched
// query answers identically to the same query sent alone) and DP carries
// the accounting of the single combined charge (n·ε_per_query).
type BatchResponse struct {
	Estimates []float64 `json:"estimates"`
	DP        *DPInfo   `json:"dp,omitempty"`
}

// MetadataResponse is the /v1/metadata document: the release metadata plus
// the serving index's group count. Shards is 0 for a single-snapshot server
// and the shard count at a coordinator, whose rows and groups are the
// totals across shards. Release echoes the serving snapshot's release-chain
// block when it was published as part of a re-publication chain — the field
// a reload watcher polls to confirm a hot-swap landed.
type MetadataResponse struct {
	pg.Metadata
	Groups  int                     `json:"groups"`
	Shards  int                     `json:"shards,omitempty"`
	Release *snapshot.ChainMetadata `json:"release,omitempty"`
	// DP advertises the differential-privacy serving mode when it is on:
	// clients should expect noised answers and ε accounting (docs/DP.md).
	DP *DPMetadata `json:"dp,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---------------------------------------------------------------------------
// Handlers

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // the client is gone; nothing to do
}

func (s *Server) clientError(w http.ResponseWriter, err error) {
	s.met.errors.Inc()
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
}

// admit reserves a limiter slot, or sheds the request with 429 and a
// Retry-After hint. The released func must be called exactly once.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		s.met.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "server saturated, retry later"})
		return nil, false
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.met.reqQuery.Inc()
	if r.Method != http.MethodPost {
		s.met.errors.Inc()
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.clientError(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	// One pointer load pins this request to one release: parse, cache,
	// compute and respond all against the same index, even if a reload swaps
	// the serving release mid-request.
	rel := s.rel.Load()
	setReleaseHeader(w, rel.crc)
	op, q, values, err := s.parseQuery(rel, &req)
	if err != nil {
		s.clientError(w, err)
		return
	}
	key := queryKey(rel.schema, op, q, values)
	sens := opSensitivity(op, rel.schema, values)
	// The canonical key and sensitivity travel as response headers so a
	// fan-out coordinator — which holds no schema of its own — can key its
	// DP noise on exactly the encoding this shard computed.
	w.Header().Set("X-PG-Query-Key", hex.EncodeToString([]byte(key)))
	w.Header().Set("X-PG-Sensitivity", strconv.FormatFloat(sens, 'g', -1, 64))

	var budget *dp.Budget
	if s.dp != nil {
		var ok bool
		if budget, ok = s.dp.authorize(w, r); !ok {
			return
		}
	}
	done, ok := s.admit(w)
	if !ok {
		return
	}
	defer done()

	// Charge after admission (shed requests must not consume ε) and before
	// the computation: an admitted DP query is charged even when it then
	// errors, because data-dependent failures — an AVG region estimated
	// empty, a timeout — are observations too.
	var dpRem float64
	if s.dp != nil {
		var ok bool
		if dpRem, ok = s.dp.charge(w, budget, budget.PerQuery); !ok {
			return
		}
	}

	sp := s.met.latQuery
	t0 := time.Now()
	val, source, err := s.answerOne(r.Context(), rel, key, op, q, values)
	sp.Observe(time.Since(t0).Nanoseconds())
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.met.timeouts.Inc()
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "request timed out"})
	case err != nil:
		s.clientError(w, err)
	default:
		resp := QueryResponse{Op: op, Estimate: val.est, Source: source}
		if s.dp != nil {
			resp, err = s.dp.noised(dpAnswer{
				crc: rel.crc, apiKey: budget.Key, qkey: key, op: op,
				eps: budget.PerQuery, sens: sens, rem: dpRem, source: source,
			}, val)
			if err != nil {
				s.clientError(w, err)
				return
			}
		} else if val.parts {
			sum, weight := val.sum, val.weight
			resp.Sum, resp.Weight = &sum, &weight
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// setReleaseHeader advertises the serving release's identity on every
// aggregate response, so a client — the attack fleet included — can detect
// a hot-swap mid-session instead of silently mixing releases.
func setReleaseHeader(w http.ResponseWriter, crc uint32) {
	if crc != 0 {
		w.Header().Set("X-PG-Release", fmt.Sprintf("%08x", crc))
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.met.reqBatch.Inc()
	if r.Method != http.MethodPost {
		s.met.errors.Inc()
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.clientError(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	rel := s.rel.Load()
	setReleaseHeader(w, rel.crc)
	qs := make([]query.CountQuery, len(req.Queries))
	for i := range req.Queries {
		op, q, _, err := s.parseQuery(rel, &req.Queries[i])
		if err != nil {
			s.clientError(w, fmt.Errorf("query %d: %w", i, err))
			return
		}
		if op != "count" {
			s.clientError(w, fmt.Errorf("query %d: batch answers COUNT only, got op %q", i, op))
			return
		}
		qs[i] = q
	}
	var budget *dp.Budget
	if s.dp != nil {
		var ok bool
		if budget, ok = s.dp.authorize(w, r); !ok {
			return
		}
	}
	done, ok := s.admit(w)
	if !ok {
		return
	}
	defer done()

	// One combined charge of n·ε_per_query: the batch answers n queries, so
	// it costs n queries' worth of budget — batching is a transport
	// convenience, not a discount.
	var dpRem, dpCost float64
	if s.dp != nil {
		dpCost = float64(len(qs)) * budget.PerQuery
		var ok bool
		if dpRem, ok = s.dp.charge(w, budget, dpCost); !ok {
			return
		}
	}

	t0 := time.Now()
	ests, err := s.computeWithDeadline(r.Context(), func() ([]float64, error) {
		return rel.answer.AnswerWorkload(qs, s.workers)
	})
	s.met.latBatch.Observe(time.Since(t0).Nanoseconds())
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.met.timeouts.Inc()
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "request timed out"})
	case err != nil:
		s.clientError(w, err)
	default:
		if ests == nil {
			ests = []float64{}
		}
		resp := BatchResponse{Estimates: ests}
		if s.dp != nil {
			// Each estimate is noised under its own query's canonical key, so
			// a batched query answers identically to the same query sent alone
			// under the same key and release.
			m := dp.Mechanism{Seed: s.dp.seed, CRC: rel.crc}
			for i := range ests {
				k := queryKey(rel.schema, "count", qs[i], nil)
				ests[i] += m.Noise(budget.Key, k, 0, 1/budget.PerQuery)
			}
			resp.DP = &DPInfo{Epsilon: dpCost, Remaining: dpRem}
			s.dp.met.queries.Add(int64(len(qs)))
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) handleMetadata(w http.ResponseWriter, r *http.Request) {
	s.met.reqMetadata.Inc()
	rel := s.rel.Load()
	writeJSON(w, http.StatusOK, MetadataResponse{
		Metadata: rel.meta, Groups: rel.groups, Release: rel.chain,
		DP: s.dp.metadata(),
	})
}

// ---------------------------------------------------------------------------
// Answer path: cache → singleflight → index, under a deadline

// answerOne resolves one aggregate query through the release's cache,
// coalescing concurrent duplicates, bounded by the request timeout. A
// timed-out leader's computation keeps running in the background and still
// populates the cache — the work is not wasted, only the response slot.
// Cache and singleflight belong to the release, so a leader that outlives a
// hot-swap still populates (only) its own release's cache. key is the query's
// canonical encoding (queryKey), computed once by the handler — it doubles as
// the DP noise identity there.
func (s *Server) answerOne(ctx context.Context, rel *release, key, op string, q query.CountQuery, values []float64) (val answerVal, source string, err error) {
	if v, ok := rel.cache.get(key); ok {
		s.met.cacheHits.Inc()
		return v, "cache", nil
	}
	s.met.cacheMiss.Inc()

	ctx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	type result struct {
		v      answerVal
		shared bool
		err    error
	}
	ch := make(chan result, 1)
	go func() {
		v, shared, err := rel.flight.do(key, func() (answerVal, error) {
			v, err := compute(rel.answer, op, q, values)
			if err == nil {
				if rel.cache.put(key, v) {
					s.met.cacheEvict.Inc()
				}
			}
			return v, err
		})
		ch <- result{v, shared, err}
	}()
	select {
	case <-ctx.Done():
		return answerVal{}, "", ctx.Err()
	case r := <-ch:
		if r.err != nil {
			return answerVal{}, "", r.err
		}
		if r.shared {
			s.met.coalesced.Inc()
			return r.v, "coalesced", nil
		}
		return r.v, "computed", nil
	}
}

// compute dispatches to the Answerer. sum and avg resolve through AvgParts
// so the response can expose the compose pair alongside the estimate.
func compute(answer Answerer, op string, q query.CountQuery, values []float64) (answerVal, error) {
	switch op {
	case "count":
		est, err := answer.Count(q)
		return answerVal{est: est}, err
	case "naive":
		est, err := answer.Naive(q)
		return answerVal{est: est}, err
	case "sum":
		sum, weight, err := answer.AvgParts(q, valueFn(values))
		return answerVal{est: sum, sum: sum, weight: weight, parts: true}, err
	case "avg":
		sum, weight, err := answer.AvgParts(q, valueFn(values))
		if err != nil {
			return answerVal{}, err
		}
		if weight == 0 {
			return answerVal{}, fmt.Errorf("region estimated empty")
		}
		return answerVal{est: sum / weight, sum: sum, weight: weight, parts: true}, nil
	default:
		return answerVal{}, fmt.Errorf("unknown op %q (want count, naive, sum or avg)", op)
	}
}

// computeWithDeadline runs fn under the request timeout (the batch analogue
// of answerOne, without cache or coalescing: workloads are assumed unique).
func (s *Server) computeWithDeadline(ctx context.Context, fn func() ([]float64, error)) ([]float64, error) {
	ctx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	type result struct {
		v   []float64
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := fn()
		ch <- result{v, err}
	}()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case r := <-ch:
		return r.v, r.err
	}
}

func valueFn(values []float64) query.SensitiveValue {
	if values == nil {
		return func(code int32) float64 { return float64(code) }
	}
	return func(code int32) float64 { return values[code] }
}

// ---------------------------------------------------------------------------
// Request parsing and canonical keys

// parseQuery validates a wire query against the release's schema and
// resolves it to the engine's CountQuery form.
func (s *Server) parseQuery(rel *release, req *QueryRequest) (op string, q query.CountQuery, values []float64, err error) {
	op = req.Op
	if op == "" {
		op = "count"
	}
	switch op {
	case "count", "naive", "sum", "avg":
	default:
		return "", q, nil, fmt.Errorf("unknown op %q (want count, naive, sum or avg)", op)
	}
	if req.Shard != nil {
		return "", q, nil, fmt.Errorf("shard pinning is a coordinator feature; this server holds one snapshot")
	}

	q.QI = make([]query.Range, rel.schema.D())
	for j, a := range rel.schema.QI {
		q.QI[j] = query.Range{Lo: 0, Hi: int32(a.Size() - 1)}
	}
	for i, c := range req.Where {
		j := -1
		switch {
		case c.Attr != "" && c.Dim != nil:
			return "", q, nil, fmt.Errorf("where[%d]: set attr or dim, not both", i)
		case c.Attr != "":
			if j = rel.schema.QIIndex(c.Attr); j < 0 {
				return "", q, nil, fmt.Errorf("where[%d]: unknown attribute %q", i, c.Attr)
			}
		case c.Dim != nil:
			j = *c.Dim
			if j < 0 || j >= rel.schema.D() {
				return "", q, nil, fmt.Errorf("where[%d]: dim %d outside [0,%d]", i, j, rel.schema.D()-1)
			}
		default:
			return "", q, nil, fmt.Errorf("where[%d]: attr or dim is required", i)
		}
		a := rel.schema.QI[j]
		lo, hi := int32(0), int32(a.Size()-1)
		if lo, err = resolveBound(a, c.Lo, lo); err != nil {
			return "", q, nil, fmt.Errorf("where[%d] (%s): %w", i, a.Name, err)
		}
		if hi, err = resolveBound(a, c.Hi, hi); err != nil {
			return "", q, nil, fmt.Errorf("where[%d] (%s): %w", i, a.Name, err)
		}
		if lo > hi {
			return "", q, nil, fmt.Errorf("where[%d] (%s): inverted range [%d,%d]", i, a.Name, lo, hi)
		}
		q.QI[j] = query.Range{Lo: lo, Hi: hi}
	}

	if req.Sensitive != nil {
		domain := rel.schema.SensitiveDomain()
		mask := make([]bool, domain)
		for _, code := range req.Sensitive {
			if code < 0 || int(code) >= domain {
				return "", q, nil, fmt.Errorf("sensitive code %d outside [0,%d]", code, domain-1)
			}
			mask[code] = true
		}
		q.Sensitive = mask
	}

	values = req.Values
	if values != nil {
		if op != "sum" && op != "avg" {
			return "", q, nil, fmt.Errorf("values apply to sum/avg only")
		}
		if len(values) != rel.schema.SensitiveDomain() {
			return "", q, nil, fmt.Errorf("values has %d entries, sensitive domain is %d",
				len(values), rel.schema.SensitiveDomain())
		}
	}
	return op, q, values, nil
}

// resolveBound maps a JSON bound — a domain label (string) or a code
// (number) — to a validated code; missing bounds keep the default.
func resolveBound(a *dataset.Attribute, raw json.RawMessage, def int32) (int32, error) {
	if len(raw) == 0 {
		return def, nil
	}
	var label string
	if err := json.Unmarshal(raw, &label); err == nil {
		return a.Code(label)
	}
	var code int32
	if err := json.Unmarshal(raw, &code); err != nil {
		return 0, fmt.Errorf("bound %s is neither a label nor a code", raw)
	}
	if !a.Valid(code) {
		return 0, fmt.Errorf("code %d outside the %q domain [0,%d]", code, a.Name, a.Size()-1)
	}
	return code, nil
}

// queryKey renders the canonical encoding of an aggregate query: op tag,
// the restricting ranges only (full-domain dims are dropped, so equivalent
// requests collide), the sensitive mask as a code list, and the sum/avg
// value vector's bit patterns. Two requests with equal keys have equal
// answers, which is what makes the key safe as a cache/coalescing identity.
// QueryKey exposes the canonical encoding to offline tools: pgquery's DP
// mode must key its noise on exactly the string the server would use, or the
// served-vs-offline equivalence breaks.
func QueryKey(schema *dataset.Schema, op string, q query.CountQuery, values []float64) string {
	return queryKey(schema, op, q, values)
}

func queryKey(schema *dataset.Schema, op string, q query.CountQuery, values []float64) string {
	b := make([]byte, 0, 64)
	b = append(b, op...)
	b = append(b, 0)
	for j, r := range q.QI {
		if r.Lo == 0 && int(r.Hi) == schema.QI[j].Size()-1 {
			continue
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(j))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Lo))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Hi))
	}
	if q.Sensitive != nil {
		b = append(b, 1)
		for code, in := range q.Sensitive {
			if in {
				b = binary.LittleEndian.AppendUint32(b, uint32(code))
			}
		}
	}
	if values != nil {
		b = append(b, 2)
		for _, v := range values {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	return string(b)
}
