package serve

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pgpub/internal/dp"
	"pgpub/internal/obs"
	"pgpub/internal/snapshot"
)

// This file is the fan-out coordinator: the front of a sharded release.
// Where a Server answers from one snapshot, a Coordinator holds no data at
// all — it loads the shard manifest, validates each shard server against it
// over HTTP at startup, and answers /v1/query and /v1/batch by fanning the
// request out to every shard concurrently and merging:
//
//   - count, naive, sum: additive — the merged answer is the shard-order sum
//     of per-shard estimates, the same arithmetic as shard.Group, so the
//     coordinator and the in-process composition agree bit for bit.
//   - avg: not additive. The coordinator fans an avg out as sum (whose
//     response carries the (inverted sum, weight) compose pair even for an
//     empty region, where a per-shard avg would error) and answers
//     Σ sums / Σ weights, erroring only when the whole region is empty.
//
// Tail control: every shard call runs under a per-shard timeout, and a
// hedged duplicate is launched when the first attempt outlives the shard's
// observed p95 latency (first response wins, the loser is abandoned to the
// shared context). Partial failure is loud: if any shard fails after
// retries and hedges, the coordinator returns 502 naming that shard rather
// than a silently-partial aggregate.

// CoordConfig parameterizes a Coordinator.
type CoordConfig struct {
	// Manifest describes the sharded release (required).
	Manifest *snapshot.Manifest
	// ShardURLs is one base URL per manifest shard, in shard order
	// (required). Shard i of the manifest must be served at ShardURLs[i];
	// Start verifies that over HTTP.
	ShardURLs []string
	// ShardTimeout bounds one shard call, hedges included. Default 5s.
	ShardTimeout time.Duration
	// HedgeAfter is the hedge delay used until a shard has enough latency
	// samples for a p95 estimate (after which the live p95 is the delay).
	// Default 25ms; negative disables hedging entirely.
	HedgeAfter time.Duration
	// Client optionally overrides the HTTP client used for shard calls.
	Client *http.Client
	// Metrics optionally receives the coord.* instrumentation. nil disables.
	Metrics *obs.Registry
	// ManifestSource re-reads the shard manifest (the -manifest path, in
	// pgserve). Reload calls it when the sharded release has been
	// re-published and every shard has hot-swapped: the coordinator adopts
	// the new manifest and re-validates the fleet against it. nil disables
	// reloading.
	ManifestSource func() (*snapshot.Manifest, error)
	// DP enables the differential-privacy serving mode at the coordinator
	// (docs/DP.md). The budget is charged once per client query — never per
	// shard — and the noise is added once, to the merged answer; validate
	// refuses shards that are themselves in DP mode. nil serves exact merged
	// answers, byte for byte as before.
	DP *DPConfig
	// CRC identifies the sharded release for DP noise keying: the manifest
	// file's CRC (snapshot.FileCRC). 0 leaves answers keyed to release 0.
	CRC uint32
	// CRCSource recomputes CRC on reload, alongside ManifestSource. nil
	// keeps the configured CRC across reloads.
	CRCSource func() (uint32, error)
}

// Coordinator fans queries out to shard servers and merges their answers.
// Build with NewCoordinator, then call Start to validate the fleet before
// exposing Handler.
type Coordinator struct {
	shards     []*coordShard
	timeout    time.Duration
	hedgeAfter time.Duration
	hc         *http.Client
	manSource  func() (*snapshot.Manifest, error)
	crcSource  func() (uint32, error)
	reloadMu   sync.Mutex // serializes Reload; the query path never takes it
	// dp lives on the Coordinator, like Server.dp: a manifest reload re-keys
	// the noise (via crc) but never refunds spent ε.
	dp *serverDP

	mu   sync.RWMutex
	man  *snapshot.Manifest
	meta MetadataResponse // merged, filled by Start and replaced by Reload
	crc  uint32           // manifest file CRC — the DP release identity

	met struct {
		reqQuery    *obs.Counter
		reqBatch    *obs.Counter
		reqMetadata *obs.Counter
		errors      *obs.Counter
		fanout      *obs.Histogram
		hedgeFired  *obs.Counter
		hedgeWon    *obs.Counter
		shardErrors *obs.Counter
		shardTO     *obs.Counter

		reloadAttempts *obs.Counter
		reloadSwapped  *obs.Counter
		reloadRejected *obs.Counter
		reloadErrors   *obs.Counter
		releaseGauge   *obs.Gauge
	}
}

// coordShard is the coordinator's view of one shard server.
type coordShard struct {
	index  int
	url    string
	lat    latTracker
	errors atomic.Int64
}

// NewCoordinator validates the configuration and builds a Coordinator.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.Manifest == nil {
		return nil, fmt.Errorf("serve: CoordConfig.Manifest is required")
	}
	if err := cfg.Manifest.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.ShardURLs) != len(cfg.Manifest.Shards) {
		return nil, fmt.Errorf("serve: %d shard URLs for a %d-shard manifest",
			len(cfg.ShardURLs), len(cfg.Manifest.Shards))
	}
	c := &Coordinator{
		man:        cfg.Manifest,
		timeout:    cfg.ShardTimeout,
		hedgeAfter: cfg.HedgeAfter,
		hc:         cfg.Client,
		manSource:  cfg.ManifestSource,
		crcSource:  cfg.CRCSource,
		crc:        cfg.CRC,
	}
	var err error
	if c.dp, err = newServerDP(cfg.DP, cfg.Metrics); err != nil {
		return nil, err
	}
	if c.timeout <= 0 {
		c.timeout = 5 * time.Second
	}
	if c.hedgeAfter == 0 {
		c.hedgeAfter = 25 * time.Millisecond
	}
	if c.hc == nil {
		c.hc = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	for i, u := range cfg.ShardURLs {
		if u == "" {
			return nil, fmt.Errorf("serve: shard %d has an empty URL", i)
		}
		c.shards = append(c.shards, &coordShard{index: i, url: u})
	}
	reg := cfg.Metrics
	c.met.reqQuery = reg.Counter("coord.requests.query")
	c.met.reqBatch = reg.Counter("coord.requests.batch")
	c.met.reqMetadata = reg.Counter("coord.requests.metadata")
	c.met.errors = reg.Counter("coord.errors")
	c.met.fanout = reg.Histogram("coord.fanout.latency", "ns")
	c.met.hedgeFired = reg.Counter("coord.hedge.fired")
	c.met.hedgeWon = reg.Counter("coord.hedge.won")
	c.met.shardErrors = reg.Counter("coord.shard.errors")
	c.met.shardTO = reg.Counter("coord.shard.timeouts")
	c.met.reloadAttempts = reg.Counter("coord.reload.attempts")
	c.met.reloadSwapped = reg.Counter("coord.reload.swapped")
	c.met.reloadRejected = reg.Counter("coord.reload.rejected")
	c.met.reloadErrors = reg.Counter("coord.reload.errors")
	c.met.releaseGauge = reg.Gauge("coord.release")
	c.met.releaseGauge.Set(-1)
	return c, nil
}

// manifest returns the manifest currently coordinated against.
func (c *Coordinator) manifest() *snapshot.Manifest {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.man
}

// releaseCRC returns the serving release's DP noise identity.
func (c *Coordinator) releaseCRC() uint32 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.crc
}

// Start validates every shard server against the manifest over HTTP: each
// /v1/metadata must report the manifest's parameters and its shard's row
// count, and must not itself be a coordinator. On success the merged
// /v1/metadata document (rows and groups summed, Shards set) is assembled
// and the coordinator is ready to serve.
func (c *Coordinator) Start(ctx context.Context) error {
	merged, err := c.validate(ctx, c.manifest())
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.meta = merged
	c.mu.Unlock()
	c.setReleaseGauge(merged)
	return nil
}

// validate probes every shard's /v1/metadata and checks the fleet against
// man: parameters, per-shard row counts, and — when the shards serve
// chained releases — that every shard is on the same release. It returns
// the merged metadata document without installing it.
func (c *Coordinator) validate(ctx context.Context, man *snapshot.Manifest) (MetadataResponse, error) {
	type shardMeta struct {
		md  MetadataResponse
		err error
	}
	metas := make([]shardMeta, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *coordShard) {
			defer wg.Done()
			metas[i].md, metas[i].err = c.fetchMetadata(ctx, sh)
		}(i, sh)
	}
	wg.Wait()

	merged := MetadataResponse{Shards: len(c.shards)}
	for i := range metas {
		if metas[i].err != nil {
			return merged, fmt.Errorf("serve: shard %d (%s): %w", i, c.shards[i].url, metas[i].err)
		}
		md := metas[i].md
		if md.Shards != 0 {
			return merged, fmt.Errorf("serve: shard %d (%s) is itself a coordinator", i, c.shards[i].url)
		}
		if md.DP != nil {
			return merged, fmt.Errorf("serve: shard %d (%s) is itself in DP mode — noise is added exactly once, at the coordinator; run shard servers exact", i, c.shards[i].url)
		}
		if md.P != man.P || md.K != man.K || md.Algorithm != man.Algorithm {
			return merged, fmt.Errorf("serve: shard %d (%s) serves (%s, p=%v, k=%d), manifest says (%s, p=%v, k=%d)",
				i, c.shards[i].url, md.Algorithm, md.P, md.K, man.Algorithm, man.P, man.K)
		}
		if md.Rows != man.Shards[i].Rows {
			return merged, fmt.Errorf("serve: shard %d (%s) serves %d rows, manifest records %d",
				i, c.shards[i].url, md.Rows, man.Shards[i].Rows)
		}
		if i == 0 {
			merged.P, merged.K, merged.Algorithm = md.P, md.K, md.Algorithm
			merged.Guarantee = md.Guarantee
			merged.Release = md.Release
		} else if rel0, rel := merged.Release, md.Release; (rel0 == nil) != (rel == nil) ||
			(rel != nil && rel.Release != rel0.Release) {
			return merged, fmt.Errorf("%w: shard %d (%s) serves release %s, shard 0 serves %s — the fleet is mid-rollout; reload again once every shard has swapped",
				ErrReloadRejected, i, c.shards[i].url, releaseLabel(rel), releaseLabel(rel0))
		}
		merged.Rows += md.Rows
		merged.Groups += md.Groups
	}
	return merged, nil
}

func releaseLabel(ch *snapshot.ChainMetadata) string {
	if ch == nil {
		return "no chain"
	}
	return fmt.Sprintf("%d", ch.Release)
}

func (c *Coordinator) setReleaseGauge(md MetadataResponse) {
	if md.Release != nil {
		c.met.releaseGauge.Set(int64(md.Release.Release))
	} else {
		c.met.releaseGauge.Set(-1)
	}
}

// Reload re-reads the shard manifest and re-validates the whole fleet
// against it — the coordinator's half of a rolling hot-swap: re-publish the
// sharded release, reload every shard server, then reload the coordinator.
// The swap is all-or-nothing: only after every shard answers with the new
// manifest's rows (and, for chained releases, one common release number)
// are the manifest and merged metadata replaced; any failure leaves the
// coordinator serving against the old manifest. Rejections (no
// ManifestSource, a manifest whose shard count no longer matches the
// configured URLs, a fleet still mid-rollout) return ErrReloadRejected.
func (c *Coordinator) Reload(ctx context.Context) (*ReloadResult, error) {
	c.reloadMu.Lock()
	defer c.reloadMu.Unlock()
	c.met.reloadAttempts.Inc()
	res, err := c.reload(ctx)
	switch {
	case errors.Is(err, ErrReloadRejected):
		c.met.reloadRejected.Inc()
	case err != nil:
		c.met.reloadErrors.Inc()
	default:
		c.met.reloadSwapped.Inc()
	}
	return res, err
}

func (c *Coordinator) reload(ctx context.Context) (*ReloadResult, error) {
	if c.manSource == nil {
		return nil, fmt.Errorf("%w: this coordinator has no manifest path to reload from", ErrReloadRejected)
	}
	man, err := c.manSource()
	if err != nil {
		return nil, fmt.Errorf("serve: reloading manifest: %w", err)
	}
	if err := man.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrReloadRejected, err)
	}
	if len(man.Shards) != len(c.shards) {
		return nil, fmt.Errorf("%w: the new manifest has %d shards, this coordinator fans out to %d fixed shard URLs",
			ErrReloadRejected, len(man.Shards), len(c.shards))
	}
	merged, err := c.validate(ctx, man)
	if err != nil {
		return nil, err
	}
	crc := c.releaseCRC()
	if c.crcSource != nil {
		if crc, err = c.crcSource(); err != nil {
			return nil, fmt.Errorf("serve: reloading manifest CRC: %w", err)
		}
	}
	c.mu.Lock()
	c.man, c.meta, c.crc = man, merged, crc
	c.mu.Unlock()
	c.setReleaseGauge(merged)
	res := &ReloadResult{Release: -1, Rows: merged.Rows}
	if merged.Release != nil {
		res.Release = merged.Release.Release
	}
	return res, nil
}

// handleReload is POST /v1/admin/reload at the coordinator (Server
// semantics: 200 swapped, 409 rejected, 500 failed).
func (c *Coordinator) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		c.met.errors.Inc()
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	res, err := c.Reload(r.Context())
	switch {
	case errors.Is(err, ErrReloadRejected):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

func (c *Coordinator) fetchMetadata(ctx context.Context, sh *coordShard) (MetadataResponse, error) {
	var md MetadataResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.url+"/v1/metadata", nil)
	if err != nil {
		return md, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return md, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return md, fmt.Errorf("metadata returned HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&md); err != nil {
		return md, fmt.Errorf("decoding metadata: %w", err)
	}
	return md, nil
}

// Handler returns the coordinator's API mux: the same surface a Server
// exposes, plus GET /v1/shards reporting per-shard health.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", c.handleQuery)
	mux.HandleFunc("/v1/batch", c.handleBatch)
	mux.HandleFunc("/v1/metadata", c.handleMetadata)
	mux.HandleFunc("/v1/shards", c.handleShards)
	mux.HandleFunc("/v1/admin/reload", c.handleReload)
	if c.dp != nil {
		mux.HandleFunc("/v1/dp/budget", c.dp.handleBudget)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Serve starts the coordinator on addr (Server.Serve semantics).
func (c *Coordinator) Serve(addr string) (*HTTPServer, error) {
	return serveHandler(addr, c.Handler())
}

func (c *Coordinator) clientError(w http.ResponseWriter, err error) {
	c.met.errors.Inc()
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
}

// shardError reports a failed shard call: 502, naming the dead shard —
// never a silently-partial aggregate.
func (c *Coordinator) shardError(w http.ResponseWriter, shard int, err error) {
	c.met.errors.Inc()
	writeJSON(w, http.StatusBadGateway, errorResponse{
		Error: fmt.Sprintf("shard %d (%s): %v", shard, c.shards[shard].url, err),
	})
}

func (c *Coordinator) handleMetadata(w http.ResponseWriter, _ *http.Request) {
	c.met.reqMetadata.Inc()
	c.mu.RLock()
	md := c.meta
	c.mu.RUnlock()
	md.DP = c.dp.metadata()
	writeJSON(w, http.StatusOK, md)
}

// ShardStatus is one entry of the GET /v1/shards document.
type ShardStatus struct {
	Shard   int    `json:"shard"`
	URL     string `json:"url"`
	Rows    int    `json:"rows"`
	Healthy bool   `json:"healthy"`
	P95us   int64  `json:"p95_us"` // observed query p95; 0 until enough samples
	Errors  int64  `json:"errors"` // failed shard calls since start
}

// handleShards live-probes every shard's /healthz and reports per-shard
// status: the coordinator's operational view of the fleet.
func (c *Coordinator) handleShards(w http.ResponseWriter, r *http.Request) {
	man := c.manifest()
	out := make([]ShardStatus, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *coordShard) {
			defer wg.Done()
			out[i] = ShardStatus{
				Shard:   i,
				URL:     sh.url,
				Rows:    man.Shards[i].Rows,
				Healthy: c.probeHealth(r.Context(), sh),
				P95us:   sh.lat.p95().Microseconds(),
				Errors:  sh.errors.Load(),
			}
		}(i, sh)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) probeHealth(ctx context.Context, sh *coordShard) bool {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ---------------------------------------------------------------------------
// Query fan-out

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	c.met.reqQuery.Inc()
	if r.Method != http.MethodPost {
		c.met.errors.Inc()
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		c.clientError(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	op := req.Op
	if op == "" {
		op = "count"
	}
	switch op {
	case "count", "naive", "sum", "avg":
	default:
		c.clientError(w, fmt.Errorf("unknown op %q (want count, naive, sum or avg)", op))
		return
	}
	crc := c.releaseCRC()
	setReleaseHeader(w, crc)
	var budget *dp.Budget
	if c.dp != nil {
		var ok bool
		if budget, ok = c.dp.authorize(w, r); !ok {
			return
		}
	}

	// Pinned: answer from one shard alone, verbatim. The coordinator does
	// not validate the query body — the shard server owns the schema.
	if req.Shard != nil {
		s := *req.Shard
		if s < 0 || s >= len(c.shards) {
			c.clientError(w, fmt.Errorf("shard %d outside [0,%d]", s, len(c.shards)-1))
			return
		}
		req.Shard = nil
		fanOp := op
		if c.dp != nil && op == "avg" {
			// In DP mode a pinned avg travels as sum, like the fan-out path:
			// the exact shard returns its compose pair even for an empty
			// region, and only the noised quotient — computed after the charge
			// — decides emptiness.
			fanOp = "sum"
		}
		req.Op = fanOp
		body, err := json.Marshal(&req)
		if err != nil {
			c.clientError(w, err)
			return
		}
		reply, err := c.callShard(r.Context(), c.shards[s], "/v1/query", body)
		if err != nil {
			c.forwardShardFailure(w, s, err)
			return
		}
		var resp QueryResponse
		if err := json.Unmarshal(reply.body, &resp); err != nil {
			c.shardError(w, s, fmt.Errorf("undecodable response: %w", err))
			return
		}
		resp.Source = "shard"
		if c.dp == nil {
			writeJSON(w, http.StatusOK, resp)
			return
		}
		if reply.qkey == "" {
			c.shardError(w, s, fmt.Errorf("response lacks the DP keying headers"))
			return
		}
		rem, ok := c.dp.charge(w, budget, budget.PerQuery)
		if !ok {
			return
		}
		val := answerVal{est: resp.Estimate}
		if resp.Sum != nil && resp.Weight != nil {
			val.sum, val.weight, val.parts = *resp.Sum, *resp.Weight, true
		}
		// The shard prefix keys a pinned answer's noise apart from the
		// whole-release answer to the same query — they are different
		// observations and must not share a draw.
		noised, err := c.dp.noised(dpAnswer{
			crc: crc, apiKey: budget.Key,
			qkey: fmt.Sprintf("shard:%d|", s) + dpQueryKey(op, fanOp, reply.qkey),
			op:   op, eps: budget.PerQuery, sens: reply.sens, rem: rem, source: "shard",
		}, val)
		if err != nil {
			c.clientError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, noised)
		return
	}

	// Fan out. avg travels as sum so every shard returns its compose pair
	// even where its region is empty (a per-shard avg would 400 there), and
	// the coordinator alone decides emptiness for the union.
	fanOp := op
	if op == "avg" {
		fanOp = "sum"
	}
	req.Op = fanOp
	body, err := json.Marshal(&req)
	if err != nil {
		c.clientError(w, err)
		return
	}
	t0 := time.Now()
	replies, failed, err := c.fanOut(r.Context(), "/v1/query", body)
	c.met.fanout.Observe(time.Since(t0).Nanoseconds())
	if err != nil {
		c.forwardShardFailure(w, failed, err)
		return
	}

	merged := QueryResponse{Op: op, Source: "merged"}
	var sum, weight float64
	for s, reply := range replies {
		var resp QueryResponse
		if err := json.Unmarshal(reply.body, &resp); err != nil {
			c.shardError(w, s, fmt.Errorf("undecodable response: %w", err))
			return
		}
		merged.Estimate += resp.Estimate
		if fanOp == "sum" {
			if resp.Sum == nil || resp.Weight == nil {
				c.shardError(w, s, fmt.Errorf("response lacks the sum/weight compose pair"))
				return
			}
			sum += *resp.Sum
			weight += *resp.Weight
		}
	}
	if c.dp != nil {
		// Exactly one charge and one noise application per client query, no
		// matter how many shards answered it. The shards agree on the
		// canonical key (one schema), so any reply's headers key the noise —
		// which is also the key pgquery's offline DP mode derives, keeping
		// coordinator and offline answers bit-identical.
		if replies[0].qkey == "" {
			c.shardError(w, 0, fmt.Errorf("response lacks the DP keying headers"))
			return
		}
		rem, ok := c.dp.charge(w, budget, budget.PerQuery)
		if !ok {
			return
		}
		noised, err := c.dp.noised(dpAnswer{
			crc: crc, apiKey: budget.Key, qkey: dpQueryKey(op, fanOp, replies[0].qkey),
			op: op, eps: budget.PerQuery, sens: replies[0].sens, rem: rem, source: "merged",
		}, answerVal{est: merged.Estimate, sum: sum, weight: weight})
		if err != nil {
			c.clientError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, noised)
		return
	}
	if fanOp == "sum" {
		merged.Sum, merged.Weight = &sum, &weight
		if op == "avg" {
			if weight == 0 {
				c.clientError(w, fmt.Errorf("region estimated empty"))
				return
			}
			merged.Estimate = sum / weight
		}
	}
	writeJSON(w, http.StatusOK, merged)
}

// dpQueryKey reconstructs the client's requested op key from a shard reply:
// when avg fans out as sum, the shard's canonical key carries the fanned op,
// and only the leading op tag differs from the key the client's query
// encodes to (and that pgquery's offline DP mode derives).
func dpQueryKey(op, fanOp, shardKey string) string {
	if op != fanOp {
		return op + strings.TrimPrefix(shardKey, fanOp)
	}
	return shardKey
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	c.met.reqBatch.Inc()
	if r.Method != http.MethodPost {
		c.met.errors.Inc()
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	if c.dp != nil {
		// A batch fans out to every shard and merges per-query — workable,
		// but the per-query keying and accounting mirror /v1/query exactly,
		// so DP mode keeps the one audited path instead of a second copy.
		c.clientError(w, fmt.Errorf("DP mode: /v1/batch is not available at a coordinator; send queries individually"))
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		c.clientError(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	for i := range req.Queries {
		if req.Queries[i].Shard != nil {
			c.clientError(w, fmt.Errorf("query %d: shard pinning is not available in batches", i))
			return
		}
	}
	body, err := json.Marshal(&req)
	if err != nil {
		c.clientError(w, err)
		return
	}
	t0 := time.Now()
	replies, failed, err := c.fanOut(r.Context(), "/v1/batch", body)
	c.met.fanout.Observe(time.Since(t0).Nanoseconds())
	if err != nil {
		c.forwardShardFailure(w, failed, err)
		return
	}

	merged := BatchResponse{Estimates: make([]float64, len(req.Queries))}
	for s, reply := range replies {
		var resp BatchResponse
		if err := json.Unmarshal(reply.body, &resp); err != nil {
			c.shardError(w, s, fmt.Errorf("undecodable response: %w", err))
			return
		}
		if len(resp.Estimates) != len(req.Queries) {
			c.shardError(w, s, fmt.Errorf("%d answers for %d queries", len(resp.Estimates), len(req.Queries)))
			return
		}
		for i, v := range resp.Estimates {
			merged.Estimates[i] += v
		}
	}
	writeJSON(w, http.StatusOK, merged)
}

// forwardShardFailure renders a failed shard call. A shed (429) or
// timed-out (504) shard passes through with its original status so clients
// keep their usual retry semantics; other client-side rejections (the shard
// judged the query invalid: HTTP 4xx) pass through as 400 with the shard's
// message — the query is wrong, not the shard. Everything else is a dead
// shard: 502 naming it.
func (c *Coordinator) forwardShardFailure(w http.ResponseWriter, shard int, err error) {
	var se *shardCallError
	if errors.As(err, &se) {
		switch {
		case se.status == http.StatusTooManyRequests || se.status == http.StatusGatewayTimeout:
			c.met.errors.Inc()
			writeJSON(w, se.status, errorResponse{Error: fmt.Sprintf("shard %d: %s", shard, se.msg)})
			return
		case se.status >= 400 && se.status < 500:
			c.clientError(w, fmt.Errorf("shard %d: %s", shard, se.msg))
			return
		}
	}
	c.shardError(w, shard, err)
}

// ---------------------------------------------------------------------------
// Shard calls: timeout + hedging

// shardReply is one shard's successful answer: the raw response body plus
// the DP keying headers the shard attached (empty outside DP concerns — the
// headers are always sent by in-repo shard servers, but only DP reads them).
type shardReply struct {
	body []byte
	qkey string  // decoded X-PG-Query-Key: the shard's canonical query encoding
	sens float64 // X-PG-Sensitivity: the shard's opSensitivity for the query
}

// fanOut posts body to path on every shard concurrently and returns the
// replies in shard order. On any shard failure it returns that shard's index
// and error (the lowest-indexed failure when several die).
func (c *Coordinator) fanOut(ctx context.Context, path string, body []byte) (replies []shardReply, failedShard int, err error) {
	replies = make([]shardReply, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *coordShard) {
			defer wg.Done()
			replies[i], errs[i] = c.callShard(ctx, sh, path, body)
		}(i, sh)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return nil, i, e
		}
	}
	return replies, -1, nil
}

// callShard posts body to one shard under the per-shard timeout, hedging
// with a duplicate request when the first attempt outlives the shard's
// observed p95 (first response wins). Attempts share the context, so the
// loser is abandoned, not awaited.
func (c *Coordinator) callShard(ctx context.Context, sh *coordShard, path string, body []byte) (shardReply, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()

	type res struct {
		b      shardReply
		err    error
		hedged bool
	}
	ch := make(chan res, 2)
	attempt := func(hedged bool) {
		t0 := time.Now()
		b, err := c.post(ctx, sh.url+path, body)
		if err == nil {
			sh.lat.observe(time.Since(t0))
		}
		ch <- res{b, err, hedged}
	}
	go attempt(false)

	var hedgeC <-chan time.Time
	if d := c.hedgeDelay(sh); d >= 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	inFlight := 1
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			c.met.shardTO.Inc()
			sh.errors.Add(1)
			return shardReply{}, fmt.Errorf("no answer within %v: %w", c.timeout, ctx.Err())
		case <-hedgeC:
			hedgeC = nil
			c.met.hedgeFired.Inc()
			inFlight++
			go attempt(true)
		case r := <-ch:
			inFlight--
			if r.err == nil {
				if r.hedged {
					c.met.hedgeWon.Inc()
				}
				return r.b, nil
			}
			var se *shardCallError
			if errors.As(r.err, &se) && se.status >= 400 && se.status < 500 {
				// The shard rejected the query. A duplicate would be
				// rejected identically — no hedge, and not a shard failure.
				return shardReply{}, r.err
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inFlight > 0 || hedgeC != nil {
				// A hedge is still pending or in flight; it may yet succeed.
				if inFlight == 0 {
					// Fire the hedge immediately rather than waiting out the
					// timer against a shard that just failed fast.
					hedgeC = nil
					c.met.hedgeFired.Inc()
					inFlight++
					go attempt(true)
				}
				continue
			}
			c.met.shardErrors.Inc()
			sh.errors.Add(1)
			return shardReply{}, firstErr
		}
	}
}

// hedgeDelay picks the hedge trigger for a shard: its observed p95 once
// there are enough samples, the configured default before that, or -1 when
// hedging is disabled.
func (c *Coordinator) hedgeDelay(sh *coordShard) time.Duration {
	if c.hedgeAfter < 0 {
		return -1
	}
	if p95 := sh.lat.p95(); p95 > 0 {
		return p95
	}
	return c.hedgeAfter
}

// shardCallError is a non-2xx shard response, status preserved so the
// coordinator can tell a query rejection (forward as 400) from a dead
// shard (502).
type shardCallError struct {
	status int
	msg    string
}

func (e *shardCallError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.status, e.msg)
}

func (c *Coordinator) post(ctx context.Context, url string, body []byte) (shardReply, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return shardReply{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return shardReply{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return shardReply{}, err
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		msg := string(raw)
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return shardReply{}, &shardCallError{status: resp.StatusCode, msg: msg}
	}
	reply := shardReply{body: raw}
	if h := resp.Header.Get("X-PG-Query-Key"); h != "" {
		if k, err := hex.DecodeString(h); err == nil {
			reply.qkey = string(k)
		}
	}
	if h := resp.Header.Get("X-PG-Sensitivity"); h != "" {
		if s, err := strconv.ParseFloat(h, 64); err == nil {
			reply.sens = s
		}
	}
	return reply, nil
}

// ---------------------------------------------------------------------------
// Per-shard latency tracking

// latSamples is the ring capacity of a shard's latency tracker; latRecalc
// is how many observations go by between p95 recomputations.
const (
	latSamples = 128
	latRecalc  = 16
	latMin     = 8 // no p95 estimate below this many samples
)

// latTracker keeps a small ring of recent shard-call latencies and a
// periodically recomputed p95 — the hedge trigger. It is deliberately
// self-contained (not an obs.Histogram) so it works identically with
// metrics disabled.
type latTracker struct {
	mu    sync.Mutex
	ring  [latSamples]time.Duration
	n     int // total observations
	p95ns atomic.Int64
}

func (t *latTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.ring[t.n%latSamples] = d
	t.n++
	if t.n >= latMin && t.n%latRecalc == 0 {
		size := t.n
		if size > latSamples {
			size = latSamples
		}
		buf := make([]time.Duration, size)
		copy(buf, t.ring[:size])
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		t.p95ns.Store(int64(buf[(size*95+99)/100-1]))
	}
	t.mu.Unlock()
}

// p95 returns the current estimate, or 0 while there are too few samples.
func (t *latTracker) p95() time.Duration {
	return time.Duration(t.p95ns.Load())
}
