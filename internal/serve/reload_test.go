package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/repub"
	"pgpub/internal/sal"
	"pgpub/internal/snapshot"
)

// buildServeChain publishes a T-release snapshot chain the way pgpublish
// -base/-delta does and returns the file paths in release order plus each
// release's full-table COUNT answer (computed in-process — the oracle the
// hot-swap test checks served answers against). Every release applies a
// row-churning delta so the releases' answers are pairwise distinct.
func buildServeChain(t *testing.T, dir string, T int, seed int64) (paths []string, counts []float64) {
	t.Helper()
	base, err := sal.Generate(1200, 13)
	if err != nil {
		t.Fatal(err)
	}
	const lambda, rho1 = 0.5, 0.4
	c := pg.NewChain(base, sal.Hierarchies(base.Schema))
	cfg := pg.Config{K: 6, P: 0.3, Seed: seed}
	var parentCRC uint32
	for r := 0; r < T; r++ {
		dl := pg.Delta{}
		if r > 0 {
			for i := 0; i < 30; i++ {
				dl.Deletes = append(dl.Deletes, (i*41+3)%c.Table().Len())
			}
			ins, err := sal.Generate(30+40*r, int64(300+r))
			if err != nil {
				t.Fatal(err)
			}
			ins.Owners = nil
			dl.Inserts = ins
		}
		inserts := 0
		if dl.Inserts != nil {
			inserts = dl.Inserts.Len()
		}
		pub, err := pg.Republish(c, dl, cfg)
		if err != nil {
			t.Fatalf("release %d: %v", r, err)
		}
		meta, err := pub.Metadata(lambda, rho1)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := repub.ChainMetadataFor(r, parentCRC, inserts, len(dl.Deletes), c.Table().Len(),
			pub.P, lambda, pub.K, pub.Schema.SensitiveDomain())
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("r%d.pgsnap", r))
		if err := snapshot.SaveRelease(path, pub, meta.Guarantee, chain); err != nil {
			t.Fatal(err)
		}
		if parentCRC, err = snapshot.HeaderCRC(path); err != nil {
			t.Fatal(err)
		}
		ix, err := query.NewIndex(pub)
		if err != nil {
			t.Fatal(err)
		}
		q := query.CountQuery{QI: make([]query.Range, pub.Schema.D())}
		for j, a := range pub.Schema.QI {
			q.QI[j] = query.Range{Lo: 0, Hi: int32(a.Size() - 1)}
		}
		count, err := ix.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
		counts = append(counts, count)
	}
	for i := range counts {
		for j := i + 1; j < len(counts); j++ {
			if counts[i] == counts[j] {
				t.Fatalf("releases %d and %d answer the same full count %v; the oracle cannot tell them apart", i, j, counts[i])
			}
		}
	}
	return paths, counts
}

// replaceFile atomically replaces dst with src's content — what writing the
// next release over the served snapshot path looks like to the server
// (snapshot.Save's own tmp+rename discipline).
func replaceFile(t *testing.T, dst, src string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		t.Fatal(err)
	}
}

// newChainServer stands up a Server on the live snapshot path with a reload
// source, the pgserve -snapshot wiring.
func newChainServer(t *testing.T, live string, reg *obs.Registry) *Server {
	t.Helper()
	src := SnapshotSource(live, false)
	data, err := src()
	if err != nil {
		t.Fatal(err)
	}
	return newTestServer(t, Config{
		Index: data.Index, Meta: data.Meta,
		CRC: data.CRC, Chain: data.Chain, Source: src,
		MaxInFlight: 1024, Metrics: reg,
	})
}

// TestReloadHotSwapUnderLoad is the zero-downtime contract, meant for the
// race detector: /v1/query is hammered from many goroutines while the
// server hot-swaps through every release of a chain. Every response must be
// a 200 whose answer is exactly one release's answer — never an error,
// never a blend of two indexes — and after the last swap the server serves
// the final release.
func TestReloadHotSwapUnderLoad(t *testing.T) {
	dir := t.TempDir()
	const T = 4
	paths, counts := buildServeChain(t, dir, T, 29)
	live := filepath.Join(dir, "live.pgsnap")
	replaceFile(t, live, paths[0])

	reg := obs.NewRegistry()
	s := newChainServer(t, live, reg)
	h := s.Handler()

	valid := make(map[float64]bool, T)
	for _, v := range counts {
		valid[v] = true
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var violations []string
	report := func(format string, args ...any) {
		mu.Lock()
		if len(violations) < 8 {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}
	const hammers = 8
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(`{"op":"count"}`))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					report("query answered HTTP %d: %s", w.Code, w.Body.String())
					return
				}
				var resp QueryResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					report("undecodable answer %q: %v", w.Body.String(), err)
					return
				}
				if !valid[resp.Estimate] {
					report("answer %v is no release's answer (releases answer %v)", resp.Estimate, counts)
					return
				}
			}
		}()
	}

	for r := 1; r < T; r++ {
		time.Sleep(20 * time.Millisecond)
		replaceFile(t, live, paths[r])
		req := httptest.NewRequest(http.MethodPost, "/v1/admin/reload", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Errorf("reload to release %d: HTTP %d: %s", r, w.Code, w.Body.String())
		}
		var res ReloadResult
		if err := json.Unmarshal(w.Body.Bytes(), &res); err == nil && res.Release != r {
			t.Errorf("reload reported release %d, want %d", res.Release, r)
		}
	}
	time.Sleep(20 * time.Millisecond)
	close(done)
	wg.Wait()
	for _, v := range violations {
		t.Error(v)
	}

	var md MetadataResponse
	if code := post(t, h, "/v1/metadata", struct{}{}, &md); code != http.StatusOK {
		t.Fatalf("metadata: HTTP %d", code)
	}
	if md.Release == nil || md.Release.Release != T-1 {
		t.Fatalf("after the last swap, metadata reports release %v, want %d", md.Release, T-1)
	}
	var resp QueryResponse
	post(t, h, "/v1/query", QueryRequest{}, &resp)
	if resp.Estimate != counts[T-1] {
		t.Fatalf("after the last swap, full count = %v, want release %d's %v", resp.Estimate, T-1, counts[T-1])
	}
	if got := reg.Counter("serve.reload.swapped").Value(); got != T-1 {
		t.Fatalf("serve.reload.swapped = %d, want %d", got, T-1)
	}
	if got := reg.Counter("serve.errors").Value(); got != 0 {
		t.Fatalf("serve.errors = %d during hot-swaps, want 0", got)
	}
	if got := reg.Gauge("serve.release").Value(); got != T-1 {
		t.Fatalf("serve.release gauge = %d, want %d", got, T-1)
	}
}

// TestReloadRejections walks every 409 class: the source still holding the
// serving release, a foreign chain's release, a skipped release, a
// chainless snapshot — and confirms each rejection leaves the serving
// release untouched.
func TestReloadRejections(t *testing.T) {
	dir := t.TempDir()
	paths, counts := buildServeChain(t, dir, 3, 31)
	foreign, _ := buildServeChain(t, t.TempDir(), 2, 77)
	live := filepath.Join(dir, "live.pgsnap")
	replaceFile(t, live, paths[0])

	reg := obs.NewRegistry()
	s := newChainServer(t, live, reg)
	h := s.Handler()

	reload := func() (int, string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/admin/reload", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Code, w.Body.String()
	}
	expectReject := func(what, wantSub string) {
		t.Helper()
		code, body := reload()
		if code != http.StatusConflict || !strings.Contains(body, wantSub) {
			t.Fatalf("%s: HTTP %d %q, want 409 mentioning %q", what, code, body, wantSub)
		}
		// The serving release is untouched: release 0 still answers.
		var resp QueryResponse
		if post(t, h, "/v1/query", QueryRequest{}, &resp); resp.Estimate != counts[0] {
			t.Fatalf("%s: serving release disturbed (count %v, want %v)", what, resp.Estimate, counts[0])
		}
	}

	expectReject("source unchanged", "still holds the serving release")
	replaceFile(t, live, foreign[1])
	expectReject("foreign chain", "not a successor")
	replaceFile(t, live, paths[2])
	expectReject("skipped release", "catch up")
	pub, gm, _, err := snapshot.LoadRelease(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "plain.pgsnap")
	if err := snapshot.Save(plain, pub, gm); err != nil {
		t.Fatal(err)
	}
	replaceFile(t, live, plain)
	expectReject("chainless snapshot", "release-chain block")

	// Catching up one release at a time succeeds.
	for r := 1; r <= 2; r++ {
		replaceFile(t, live, paths[r])
		if code, body := reload(); code != http.StatusOK {
			t.Fatalf("catch-up to release %d: HTTP %d: %s", r, code, body)
		}
	}
	var resp QueryResponse
	post(t, h, "/v1/query", QueryRequest{}, &resp)
	if resp.Estimate != counts[2] {
		t.Fatalf("after catch-up, count = %v, want %v", resp.Estimate, counts[2])
	}
	if got := reg.Counter("serve.reload.rejected").Value(); got != 4 {
		t.Fatalf("serve.reload.rejected = %d, want 4", got)
	}
	if got := reg.Counter("serve.reload.swapped").Value(); got != 2 {
		t.Fatalf("serve.reload.swapped = %d, want 2", got)
	}
}

// TestReloadWithoutSource pins the refusal modes of a server that cannot
// reload: no Source configured (started from a CSV or an in-memory index),
// or a Source but no snapshot identity for the serving release.
func TestReloadWithoutSource(t *testing.T) {
	ix, pub := hospitalIndex(t)
	meta, err := pub.Metadata(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Index: ix, Meta: meta})
	req := httptest.NewRequest(http.MethodPost, "/v1/admin/reload", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusConflict || !strings.Contains(w.Body.String(), "no snapshot path") {
		t.Fatalf("reload without a source: HTTP %d %q, want 409 naming the missing source", w.Code, w.Body.String())
	}
	if _, err := s.Reload(); err == nil {
		t.Fatal("Reload without a source returned nil error")
	}

	// A Source alone is not enough: without the serving snapshot's CRC the
	// parent link cannot be validated.
	dir := t.TempDir()
	paths, _ := buildServeChain(t, dir, 1, 3)
	s2 := newTestServer(t, Config{Index: ix, Meta: meta, Source: SnapshotSource(paths[0], false)})
	w = httptest.NewRecorder()
	s2.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/admin/reload", nil))
	if w.Code != http.StatusConflict || !strings.Contains(w.Body.String(), "no snapshot identity") {
		t.Fatalf("reload without a serving CRC: HTTP %d %q, want 409", w.Code, w.Body.String())
	}

	// GET is refused: reloading mutates serving state.
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/admin/reload", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: HTTP %d, want 405", w.Code)
	}
}

// TestCoordinatorReload covers the coordinator half: no manifest source is
// a 409, a source whose manifest matches the fleet swaps, and a failing
// source is a 500.
func TestCoordinatorReload(t *testing.T) {
	var srcErr error
	var man *snapshot.Manifest
	f := newCoordFixture(t, 1000, 3, func(cc *CoordConfig) {
		man = cc.Manifest
		cc.ManifestSource = func() (*snapshot.Manifest, error) { return man, srcErr }
	})
	h := f.coord.Handler()

	reload := func() (int, string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/admin/reload", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Code, w.Body.String()
	}

	if code, body := reload(); code != http.StatusOK {
		t.Fatalf("reload with a matching manifest: HTTP %d: %s", code, body)
	}
	srcErr = fmt.Errorf("disk gone")
	if code, _ := reload(); code != http.StatusInternalServerError {
		t.Fatalf("reload with a failing source: HTTP %d, want 500", code)
	}
	if got := f.reg.Counter("coord.reload.swapped").Value(); got != 1 {
		t.Fatalf("coord.reload.swapped = %d, want 1", got)
	}
	if got := f.reg.Counter("coord.reload.errors").Value(); got != 1 {
		t.Fatalf("coord.reload.errors = %d, want 1", got)
	}

	bare := newCoordFixture(t, 1000, 2, nil)
	w := httptest.NewRecorder()
	bare.coord.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/admin/reload", nil))
	if w.Code != http.StatusConflict || !strings.Contains(w.Body.String(), "no manifest path") {
		t.Fatalf("coordinator reload without a source: HTTP %d %q, want 409", w.Code, w.Body.String())
	}
}
