package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pgpub/internal/dataset"
	"pgpub/internal/dp"
	"pgpub/internal/query"
	"pgpub/internal/snapshot"
)

// mustLedger parses an inline budgets file.
func mustLedger(t *testing.T, budgets string) *dp.Ledger {
	t.Helper()
	l, err := dp.ParseBudgets(strings.NewReader(budgets))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// dpPost is post with an X-API-Key header, returning the response headers
// too (the DP tests assert on X-PG-Release and the keying headers).
func dpPost(t *testing.T, h http.Handler, path, apiKey string, body, out any) (int, http.Header) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: decoding %q: %v", path, w.Body.String(), err)
		}
	}
	return w.Code, w.Result().Header
}

func fullQuery(schema *dataset.Schema) query.CountQuery {
	q := query.CountQuery{QI: make([]query.Range, schema.D())}
	for j, a := range schema.QI {
		q.QI[j] = query.Range{Lo: 0, Hi: int32(a.Size() - 1)}
	}
	return q
}

// TestDPServedMatchesMechanism is the unit-level offline-equivalence anchor:
// a served DP answer must equal the exact engine answer plus the noise an
// offline holder of (seed, CRC, API key, QueryKey) derives — bit for bit.
// Repeats are byte-identical (no averaging attack), a different tenant or a
// different query draws different noise, and the compose pair is withheld.
func TestDPServedMatchesMechanism(t *testing.T) {
	ix, _ := hospitalIndex(t)
	const seed, crc = int64(42), uint32(0xDEADBEEF)
	l := mustLedger(t, "alice 100 0.5\nbob 100 0.5")
	s := newTestServer(t, Config{Index: ix, CRC: crc, DP: &DPConfig{Ledger: l, Seed: seed}})
	h := s.Handler()
	schema := ix.Schema()
	m := dp.Mechanism{Seed: seed, CRC: crc}

	cq := fullQuery(schema)
	cq.QI[0].Hi = cq.QI[0].Hi / 2 // restrict one dim so the key is non-trivial
	body := wireQuery("count", cq)

	var first QueryResponse
	code, hdr := dpPost(t, h, "/v1/query", "alice", body, &first)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if got := hdr.Get("X-PG-Release"); got != fmt.Sprintf("%08x", crc) {
		t.Errorf("X-PG-Release = %q", got)
	}
	if hdr.Get("X-PG-Query-Key") == "" {
		t.Errorf("no X-PG-Query-Key header")
	}
	if got := hdr.Get("X-PG-Sensitivity"); got != "1" {
		t.Errorf("X-PG-Sensitivity = %q for a count, want 1", got)
	}

	exact, err := ix.Count(cq)
	if err != nil {
		t.Fatal(err)
	}
	want := exact + m.Noise("alice", QueryKey(schema, "count", cq, nil), 0, 1/0.5)
	if first.Estimate != want {
		t.Errorf("served %v, offline mechanism says %v (exact %v)", first.Estimate, want, exact)
	}
	if first.Estimate == exact {
		t.Errorf("DP answer equals the exact answer — no noise was added")
	}
	if first.DP == nil || first.DP.Epsilon != 0.5 || first.DP.Remaining != 99.5 {
		t.Errorf("DP accounting = %+v, want ε=0.5 remaining=99.5", first.DP)
	}

	var again QueryResponse
	if code, _ = dpPost(t, h, "/v1/query", "alice", body, &again); code != http.StatusOK {
		t.Fatalf("repeat: HTTP %d", code)
	}
	if again.Estimate != first.Estimate {
		t.Errorf("repeating the query re-drew the noise: %v then %v", first.Estimate, again.Estimate)
	}

	var other QueryResponse
	if code, _ = dpPost(t, h, "/v1/query", "bob", body, &other); code != http.StatusOK {
		t.Fatalf("bob: HTTP %d", code)
	}
	if other.Estimate == first.Estimate {
		t.Errorf("two tenants drew identical noise")
	}

	// sum/avg withhold the compose pair and follow the composition arithmetic.
	sumBody := wireQuery("sum", cq)
	var sumResp QueryResponse
	if code, _ = dpPost(t, h, "/v1/query", "alice", sumBody, &sumResp); code != http.StatusOK {
		t.Fatalf("sum: HTTP %d", code)
	}
	if sumResp.Sum != nil || sumResp.Weight != nil {
		t.Errorf("DP sum response leaks the compose pair")
	}
	sens := float64(schema.SensitiveDomain() - 1)
	esum, eweight, err := ix.AvgParts(cq, valueFn(nil))
	if err != nil {
		t.Fatal(err)
	}
	if want := esum + m.Noise("alice", QueryKey(schema, "sum", cq, nil), 0, sens/0.5); sumResp.Estimate != want {
		t.Errorf("sum: served %v, mechanism says %v", sumResp.Estimate, want)
	}

	avgBody := wireQuery("avg", cq)
	var avgResp QueryResponse
	if code, _ = dpPost(t, h, "/v1/query", "alice", avgBody, &avgResp); code != http.StatusOK {
		t.Fatalf("avg: HTTP %d", code)
	}
	akey := QueryKey(schema, "avg", cq, nil)
	half := 0.5 / 2
	nsum := esum + m.Noise("alice", akey, 0, sens/half)
	nweight := eweight + m.Noise("alice", akey, 1, 1/half)
	if want := nsum / nweight; avgResp.Estimate != want {
		t.Errorf("avg: served %v, ε/2-composition says %v", avgResp.Estimate, want)
	}
}

// TestDPAuthAndBudgetEndpoint covers the access-control shape: 401 without
// a key, 403 for an unprovisioned key, and the authenticated budget view.
func TestDPAuthAndBudgetEndpoint(t *testing.T) {
	ix, _ := hospitalIndex(t)
	l := mustLedger(t, "alice 2 0.5")
	s := newTestServer(t, Config{Index: ix, DP: &DPConfig{Ledger: l, Seed: 1}})
	h := s.Handler()
	body := wireQuery("count", fullQuery(ix.Schema()))

	if code, _ := dpPost(t, h, "/v1/query", "", body, nil); code != http.StatusUnauthorized {
		t.Errorf("no key: HTTP %d, want 401", code)
	}
	if code, _ := dpPost(t, h, "/v1/query", "mallory", body, nil); code != http.StatusForbidden {
		t.Errorf("unknown key: HTTP %d, want 403", code)
	}
	if code, _ := dpPost(t, h, "/v1/query", "alice", body, nil); code != http.StatusOK {
		t.Errorf("alice: HTTP %d, want 200", code)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/dp/budget", nil)
	req.Header.Set("X-API-Key", "alice")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var st BudgetStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil || w.Code != http.StatusOK {
		t.Fatalf("budget endpoint: HTTP %d, %v", w.Code, err)
	}
	if st.Key != "alice" || st.Total != 2 || st.PerQuery != 0.5 || st.Spent != 0.5 || st.Remaining != 1.5 {
		t.Errorf("budget status = %+v", st)
	}

	// The metadata document advertises the mode.
	var md MetadataResponse
	if code := post(t, h, "/v1/metadata", nil, &md); code != http.StatusOK {
		t.Fatal("metadata failed")
	}
	if md.DP == nil || md.DP.Mechanism != "laplace" || md.DP.Keys != 1 {
		t.Errorf("metadata DP advert = %+v", md.DP)
	}
}

// TestDPExhaustion exhausts one tenant: the 429 carries Retry-After, the
// account never overshoots, and the other tenant keeps answering.
func TestDPExhaustion(t *testing.T) {
	ix, _ := hospitalIndex(t)
	l := mustLedger(t, "alice 1 0.5\nbob 100 0.5")
	s := newTestServer(t, Config{Index: ix, DP: &DPConfig{Ledger: l, Seed: 1}})
	h := s.Handler()
	body := wireQuery("count", fullQuery(ix.Schema()))

	var resp QueryResponse
	for i := 1; i <= 2; i++ {
		if code, _ := dpPost(t, h, "/v1/query", "alice", body, &resp); code != http.StatusOK {
			t.Fatalf("query %d: HTTP %d", i, code)
		}
	}
	if resp.DP.Remaining != 0 {
		t.Errorf("remaining %v after the budget is spent, want 0", resp.DP.Remaining)
	}
	code, hdr := dpPost(t, h, "/v1/query", "alice", body, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("exhausted key got HTTP %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}
	if spent := l.Key("alice").Spent(); spent != 1 {
		t.Errorf("alice spent %v, want exactly 1 — the refused query must not charge", spent)
	}
	if code, _ := dpPost(t, h, "/v1/query", "bob", body, nil); code != http.StatusOK {
		t.Errorf("bob blocked by alice's exhaustion: HTTP %d", code)
	}
}

// TestDPBatchMatchesSingles pins the batch contract: each batched estimate
// is noised under its own query's key, so it equals the same query answered
// alone, and the batch charges n·ε_per_query in one piece.
func TestDPBatchMatchesSingles(t *testing.T) {
	ix, _ := hospitalIndex(t)
	l := mustLedger(t, "alice 100 0.25")
	s := newTestServer(t, Config{Index: ix, DP: &DPConfig{Ledger: l, Seed: 9}})
	h := s.Handler()
	schema := ix.Schema()

	var queries []QueryRequest
	var singles []float64
	for i := 0; i < 3; i++ {
		cq := fullQuery(schema)
		cq.QI[i%schema.D()].Lo = int32(i)
		body := wireQuery("count", cq)
		queries = append(queries, body)
		var resp QueryResponse
		if code, _ := dpPost(t, h, "/v1/query", "alice", body, &resp); code != http.StatusOK {
			t.Fatalf("single %d: HTTP %d", i, code)
		}
		singles = append(singles, resp.Estimate)
	}

	var batch BatchResponse
	code, _ := dpPost(t, h, "/v1/batch", "alice", BatchRequest{Queries: queries}, &batch)
	if code != http.StatusOK {
		t.Fatalf("batch: HTTP %d", code)
	}
	if batch.DP == nil || batch.DP.Epsilon != 0.75 {
		t.Errorf("batch DP = %+v, want ε=0.75 (3 × 0.25)", batch.DP)
	}
	for i, est := range batch.Estimates {
		if est != singles[i] {
			t.Errorf("batched query %d answered %v, alone it answered %v", i, est, singles[i])
		}
	}
	// 3 singles + one 3-query batch = 6 queries' worth of ε.
	if spent := l.Key("alice").Spent(); spent != 1.5 {
		t.Errorf("spent %v, want 1.5", spent)
	}
}

// TestDPBudgetSurvivesReload hot-swaps the serving release under a DP
// server: spent ε carries over (no refund), while the noise re-keys with the
// new release's CRC.
func TestDPBudgetSurvivesReload(t *testing.T) {
	dir := t.TempDir()
	paths, counts := buildServeChain(t, dir, 2, 17)
	live := filepath.Join(dir, "live.pgsnap")
	replaceFile(t, live, paths[0])
	src := SnapshotSource(live, false)
	data, err := src()
	if err != nil {
		t.Fatal(err)
	}
	const seed = int64(5)
	l := mustLedger(t, "alice 100 0.5")
	s := newTestServer(t, Config{
		Index: data.Index, Meta: data.Meta, CRC: data.CRC, Chain: data.Chain,
		Source: src, DP: &DPConfig{Ledger: l, Seed: seed},
	})
	h := s.Handler()
	schema := data.Index.Schema()
	body := wireQuery("count", fullQuery(schema))
	key := QueryKey(schema, "count", fullQuery(schema), nil)

	crc0, err := snapshot.HeaderCRC(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	crc1, err := snapshot.HeaderCRC(paths[1])
	if err != nil {
		t.Fatal(err)
	}

	var before QueryResponse
	code, hdr := dpPost(t, h, "/v1/query", "alice", body, &before)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if got := hdr.Get("X-PG-Release"); got != fmt.Sprintf("%08x", crc0) {
		t.Errorf("X-PG-Release = %q, want %08x", got, crc0)
	}
	if want := counts[0] + (dp.Mechanism{Seed: seed, CRC: crc0}).Noise("alice", key, 0, 1/0.5); before.Estimate != want {
		t.Errorf("release 0: served %v, mechanism says %v", before.Estimate, want)
	}

	replaceFile(t, live, paths[1])
	if _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}

	var after QueryResponse
	code, hdr = dpPost(t, h, "/v1/query", "alice", body, &after)
	if code != http.StatusOK {
		t.Fatalf("after reload: HTTP %d", code)
	}
	if got := hdr.Get("X-PG-Release"); got != fmt.Sprintf("%08x", crc1) {
		t.Errorf("after reload X-PG-Release = %q, want %08x", got, crc1)
	}
	if want := counts[1] + (dp.Mechanism{Seed: seed, CRC: crc1}).Noise("alice", key, 0, 1/0.5); after.Estimate != want {
		t.Errorf("release 1: served %v, mechanism says %v — the noise did not re-key", after.Estimate, want)
	}
	if spent := l.Key("alice").Spent(); spent != 1 {
		t.Errorf("spent %v after two queries across a reload, want 1 — ε must survive the swap", spent)
	}
}

// TestCoordinatorDP runs the DP mode at a fan-out coordinator: the budget is
// charged once per client query (never per shard), the merged answer equals
// the in-process group answer plus offline-derivable noise, pinned answers
// key apart from merged ones, and /v1/batch is refused.
func TestCoordinatorDP(t *testing.T) {
	const (
		seed = int64(99)
		crc  = uint32(0xABCD1234)
		per  = 0.5
	)
	l := mustLedger(t, "alice 100 0.5")
	f := newCoordFixture(t, 2000, 3, func(cc *CoordConfig) {
		cc.DP = &DPConfig{Ledger: l, Seed: seed}
		cc.CRC = crc
	})
	h := f.coord.Handler()
	schema := f.pubs[0].Schema
	m := dp.Mechanism{Seed: seed, CRC: crc}

	cq := fullQuery(schema)
	body := wireQuery("count", cq)

	var resp QueryResponse
	code, hdr := dpPost(t, h, "/v1/query", "alice", body, &resp)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if got := hdr.Get("X-PG-Release"); got != fmt.Sprintf("%08x", crc) {
		t.Errorf("X-PG-Release = %q", got)
	}
	exact, err := f.group.Count(cq)
	if err != nil {
		t.Fatal(err)
	}
	if want := exact + m.Noise("alice", QueryKey(schema, "count", cq, nil), 0, 1/per); resp.Estimate != want {
		t.Errorf("merged count: served %v, mechanism says %v (exact %v)", resp.Estimate, want, exact)
	}
	if resp.Source != "merged" {
		t.Errorf("source %q", resp.Source)
	}
	// One client query across 3 shards charges once.
	if spent := l.Key("alice").Spent(); spent != per {
		t.Errorf("spent %v after one fanned-out query, want %v — ε must be charged at the coordinator, not per shard", spent, per)
	}

	// avg fans out as sum; the coordinator noises Σ sums and Σ weights under
	// the client's avg key with the ε/2 split.
	var avgResp QueryResponse
	if code, _ := dpPost(t, h, "/v1/query", "alice", wireQuery("avg", cq), &avgResp); code != http.StatusOK {
		t.Fatalf("avg: HTTP %d", code)
	}
	esum, eweight, err := f.group.AvgParts(cq, func(code int32) float64 { return float64(code) })
	if err != nil {
		t.Fatal(err)
	}
	akey := QueryKey(schema, "avg", cq, nil)
	sens := float64(schema.SensitiveDomain() - 1)
	half := per / 2
	nsum := esum + m.Noise("alice", akey, 0, sens/half)
	nweight := eweight + m.Noise("alice", akey, 1, 1/half)
	if want := nsum / nweight; avgResp.Estimate != want {
		t.Errorf("merged avg: served %v, composition says %v", avgResp.Estimate, want)
	}
	if avgResp.Sum != nil || avgResp.Weight != nil {
		t.Errorf("DP avg response leaks the compose pair")
	}

	// A pinned answer draws under the shard-prefixed key.
	pin := 1
	pinned := body
	pinned.Shard = &pin
	var pinResp QueryResponse
	if code, _ := dpPost(t, h, "/v1/query", "alice", pinned, &pinResp); code != http.StatusOK {
		t.Fatalf("pinned: HTTP %d", code)
	}
	ix1, err := query.NewIndex(f.pubs[1])
	if err != nil {
		t.Fatal(err)
	}
	pexact, err := ix1.Count(cq)
	if err != nil {
		t.Fatal(err)
	}
	pkey := "shard:1|" + QueryKey(schema, "count", cq, nil)
	if want := pexact + m.Noise("alice", pkey, 0, 1/per); pinResp.Estimate != want {
		t.Errorf("pinned count: served %v, mechanism says %v", pinResp.Estimate, want)
	}

	if code, _ := dpPost(t, h, "/v1/batch", "alice", BatchRequest{Queries: []QueryRequest{body}}, nil); code != http.StatusBadRequest {
		t.Errorf("DP batch at the coordinator: HTTP %d, want 400", code)
	}

	var md MetadataResponse
	if code := post(t, h, "/v1/metadata", nil, &md); code != http.StatusOK {
		t.Fatal("metadata failed")
	}
	if md.DP == nil || md.DP.Mechanism != "laplace" {
		t.Errorf("coordinator metadata DP advert = %+v", md.DP)
	}
}

// TestCoordinatorRejectsDPShards pins the exactly-once noising rule: a
// coordinator in any mode refuses to start over a shard that is itself
// noising answers.
func TestCoordinatorRejectsDPShards(t *testing.T) {
	md := fakeShardMeta(10)
	md.DP = &DPMetadata{Mechanism: "laplace", Keys: 1}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/metadata", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, md)
	})
	hs, err := serveHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hs.Close() })

	c, err := NewCoordinator(CoordConfig{Manifest: fakeManifest(1), ShardURLs: []string{"http://" + hs.Addr}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = c.Start(ctx)
	if err == nil || !strings.Contains(err.Error(), "DP mode") {
		t.Fatalf("Start over a DP shard: %v, want a DP-mode rejection", err)
	}
}
