package serve

import (
	"fmt"
	"math"
	"net/http"

	"pgpub/internal/dataset"
	"pgpub/internal/dp"
	"pgpub/internal/obs"
)

// This file is the serving layer's differential-privacy mode (docs/DP.md):
// with Config.DP (or CoordConfig.DP) set, every /v1/query and /v1/batch
// request must present a provisioned X-API-Key, is charged ε_per_query
// against that key's budget (429 + Retry-After on exhaustion, the admission
// limiter's shedding shape), and receives a Laplace-noised answer instead
// of the exact aggregate. The noise is a deterministic function of
// (root seed, API key, release CRC, canonical query encoding), so repeating
// a query cannot average it away and an offline holder of the seed
// (pgquery's DP mode) reproduces served answers bit for bit.
//
// The exact engine underneath is untouched: answers flow through the cache
// and singleflight as always (both hold exact values — noise is re-derived
// per response, which is free and keeps cached answers key-specific), and a
// server without a DP config serves byte-identical responses to before.

// DPConfig enables the differential-privacy serving mode.
type DPConfig struct {
	// Ledger is the per-API-key budget table (dp.LoadBudgets). Required.
	Ledger *dp.Ledger
	// Seed is the mechanism's root noise seed — the secret. pgserve draws it
	// from crypto/rand unless -dp-seed pins it (tests, offline audits).
	Seed int64
}

// DPInfo is the privacy accounting attached to a noised answer.
type DPInfo struct {
	// Epsilon is the ε charged for this answer.
	Epsilon float64 `json:"epsilon"`
	// Remaining is the key's budget left after the charge.
	Remaining float64 `json:"remaining"`
}

// DPMetadata advertises the DP mode at /v1/metadata: enough for a client to
// know its answers are noised and how, without exposing per-key budgets on
// an unauthenticated endpoint (GET /v1/dp/budget serves those, keyed).
type DPMetadata struct {
	Mechanism string `json:"mechanism"` // "laplace"
	Keys      int    `json:"keys"`      // provisioned API keys
}

// BudgetStatus is the GET /v1/dp/budget document for one API key.
type BudgetStatus struct {
	Key       string  `json:"key"`
	Total     float64 `json:"epsilon_total"`
	PerQuery  float64 `json:"epsilon_per_query"`
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
}

// serverDP is the request-path state of the DP mode, shared by the
// single-snapshot Server and the Coordinator. It hangs off the long-lived
// server object — never the per-release state — so spent budget survives
// hot-swap reloads (the noise re-keys with the new release CRC; ε does not
// refund).
type serverDP struct {
	ledger *dp.Ledger
	seed   int64

	met struct {
		queries  *obs.Counter // dp.queries: answers noised
		rejected *obs.Counter // dp.rejected: missing or unknown API key
	}
}

func newServerDP(cfg *DPConfig, reg *obs.Registry) (*serverDP, error) {
	if cfg == nil {
		return nil, nil
	}
	if cfg.Ledger == nil || cfg.Ledger.Len() == 0 {
		return nil, fmt.Errorf("serve: DPConfig.Ledger must provision at least one API key")
	}
	sd := &serverDP{ledger: cfg.Ledger, seed: cfg.Seed}
	sd.met.queries = reg.Counter("dp.queries")
	sd.met.rejected = reg.Counter("dp.rejected")
	cfg.Ledger.Instrument(reg)
	return sd, nil
}

// authorize resolves the request's X-API-Key against the ledger, writing
// the 401/403 itself when the request cannot proceed.
func (sd *serverDP) authorize(w http.ResponseWriter, r *http.Request) (*dp.Budget, bool) {
	key := r.Header.Get("X-API-Key")
	if key == "" {
		sd.met.rejected.Inc()
		writeJSON(w, http.StatusUnauthorized, errorResponse{Error: "DP mode: the X-API-Key header is required"})
		return nil, false
	}
	b := sd.ledger.Key(key)
	if b == nil {
		sd.met.rejected.Inc()
		writeJSON(w, http.StatusForbidden, errorResponse{Error: fmt.Sprintf("DP mode: unknown API key %q", key)})
		return nil, false
	}
	return b, true
}

// charge spends cost from the key's budget, or writes the 429. Budgets do
// not replenish on their own — Retry-After is a polite pacing hint; the key
// stays exhausted until the operator provisions a new ledger.
func (sd *serverDP) charge(w http.ResponseWriter, b *dp.Budget, cost float64) (remaining float64, ok bool) {
	ok, remaining = sd.ledger.Charge(b, cost)
	if !ok {
		w.Header().Set("Retry-After", "3600")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error: fmt.Sprintf("ε-budget exhausted for key %q: %.6g of ε_total %.6g spent, %.6g needed", b.Key, b.Spent(), b.Total, cost),
		})
	}
	return remaining, ok
}

// dpAnswer is the keying and accounting material of one charged answer.
type dpAnswer struct {
	crc    uint32  // release identity: snapshot header CRC or manifest file CRC
	apiKey string  // the charged tenant
	qkey   string  // canonical query encoding (QueryKey) — the noise identity
	op     string  // requested op ("avg" even when fanned out as "sum")
	eps    float64 // ε charged for this answer
	sens   float64 // sum-sensitivity (opSensitivity); counts use GS=1
	rem    float64 // budget remaining after the charge
	source string
}

// noised applies the Laplace mechanism to one exact answer. COUNT and NAIVE
// add Lap(1/ε) (GS = 1: one row moves a count by one). SUM adds
// Lap(sens/ε). AVG composes sequentially: its ε splits in half between the
// region sum (Lap(sens/(ε/2)), draw 0) and the region weight
// (Lap(1/(ε/2)), draw 1), and the answer is their quotient — which can
// legitimately fail when the noised weight lands at or below zero (a region
// estimated empty under noise). The compose pair is withheld from DP
// responses: publishing noised parts alongside the quotient would spend ε
// the accounting never charged.
func (sd *serverDP) noised(a dpAnswer, val answerVal) (QueryResponse, error) {
	m := dp.Mechanism{Seed: sd.seed, CRC: a.crc}
	resp := QueryResponse{Op: a.op, Source: a.source, DP: &DPInfo{Epsilon: a.eps, Remaining: a.rem}}
	switch a.op {
	case "count", "naive":
		resp.Estimate = val.est + m.Noise(a.apiKey, a.qkey, 0, 1/a.eps)
	case "sum":
		resp.Estimate = val.sum + m.Noise(a.apiKey, a.qkey, 0, a.sens/a.eps)
	case "avg":
		half := a.eps / 2
		noisedSum := val.sum + m.Noise(a.apiKey, a.qkey, 0, a.sens/half)
		noisedWeight := val.weight + m.Noise(a.apiKey, a.qkey, 1, 1/half)
		if noisedWeight <= 0 {
			return resp, fmt.Errorf("region estimated empty under DP noise")
		}
		resp.Estimate = noisedSum / noisedWeight
	default:
		return resp, fmt.Errorf("unknown op %q", a.op)
	}
	sd.met.queries.Inc()
	return resp, nil
}

// handleBudget is GET /v1/dp/budget: the authenticated key's own account.
func (sd *serverDP) handleBudget(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	b, ok := sd.authorize(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, BudgetStatus{
		Key: b.Key, Total: b.Total, PerQuery: b.PerQuery,
		Spent: b.Spent(), Remaining: b.Remaining(),
	})
}

// metadata is the /v1/metadata advertisement.
func (sd *serverDP) metadata() *DPMetadata {
	if sd == nil {
		return nil
	}
	return &DPMetadata{Mechanism: "laplace", Keys: sd.ledger.Len()}
}

// opSensitivity is the global sensitivity the sum/avg scale is built from:
// one row contributes at most the largest |value| in the sensitive domain.
// The default value vector maps each code to itself, so its bound is the
// domain width minus one; counts and naive weights move by at most 1 per
// row and ignore this. (The bound is stated over the published table the
// estimates reconstruct from, matching the issue's GS prescription.)
func opSensitivity(op string, schema *dataset.Schema, values []float64) float64 {
	if op != "sum" && op != "avg" {
		return 1
	}
	if values == nil {
		return float64(schema.SensitiveDomain() - 1)
	}
	gs := 0.0
	for _, v := range values {
		if a := math.Abs(v); a > gs {
			gs = a
		}
	}
	return gs
}
