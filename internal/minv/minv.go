// Package minv implements m-invariance (Xiao & Tao, SIGMOD 2007 [22]), the
// deterministic answer to the re-publication problem the paper poses as
// future work (Section IX): when an evolving microdata is anonymized again
// after insertions and deletions, an adversary can intersect a victim's
// QI-group signatures across releases — the *intersection attack* — and
// shrink the candidate sensitive values release by release. m-invariance
// forbids exactly that: every release partitions the data into groups of m
// tuples with m distinct sensitive values (m-uniqueness), and every tuple
// alive in consecutive releases keeps the same signature (the set of its
// group's sensitive values), so the intersection never shrinks below m.
// Deletions that unbalance a signature bucket are absorbed by counterfeit
// tuples, published per the original paper's counterfeit statistics.
//
// Together with package repub (probabilistic composition for PG releases),
// this covers both directions of the paper's re-publication discussion.
package minv

import (
	"fmt"
	"math/rand"
	"sort"

	"pgpub/internal/dataset"
)

// Signature is a sorted set of sensitive codes — the value set of a group.
type Signature []int32

// key renders the signature as a map key.
func (s Signature) key() string {
	b := make([]byte, 0, 4*len(s))
	for _, v := range s {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// contains reports membership.
func (s Signature) contains(v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Group is one published QI-group of a release: the owner IDs of its real
// tuples plus counterfeit sensitive values injected to preserve signatures.
type Group struct {
	Owners       []int
	Counterfeits []int32
	Sig          Signature
}

// Release is one m-invariant publication round.
type Release struct {
	M      int
	Groups []Group
}

// State carries the signature ledger between releases.
type State struct {
	M    int
	sigs map[int]Signature // owner -> signature from the latest release
}

// NewState starts a fresh ledger for parameter m.
func NewState(m int) (*State, error) {
	if m < 2 {
		return nil, fmt.Errorf("minv: m must be at least 2, got %d", m)
	}
	return &State{M: m, sigs: map[int]Signature{}}, nil
}

// Publish produces the next m-invariant release for the current table
// (whose Owners identify individuals across releases) and updates the
// ledger. Owners seen before must still carry a sensitive value inside
// their recorded signature (the microdata's sensitive values are assumed
// stable per individual, the standard m-invariance setting).
func (st *State) Publish(cur *dataset.Table, rng *rand.Rand) (*Release, error) {
	if rng == nil {
		return nil, fmt.Errorf("minv: rng is required")
	}
	if cur.Len() == 0 {
		return nil, fmt.Errorf("minv: empty table")
	}
	rel := &Release{M: st.M}

	// Split rows into survivors (with a recorded signature) and newcomers.
	bySig := map[string][]int{} // signature key -> rows
	sigOf := map[string]Signature{}
	var newcomers []int
	for i := 0; i < cur.Len(); i++ {
		o := cur.Owner(i)
		sig, ok := st.sigs[o]
		if !ok {
			newcomers = append(newcomers, i)
			continue
		}
		if !sig.contains(cur.Sensitive(i)) {
			return nil, fmt.Errorf("minv: owner %d's value %d left its signature", o, cur.Sensitive(i))
		}
		bySig[sig.key()] = append(bySig[sig.key()], i)
		sigOf[sig.key()] = sig
	}

	// Survivors: per signature bucket, balance by value and fill holes with
	// counterfeits (the paper's division step).
	sigKeys := make([]string, 0, len(bySig))
	for k := range bySig {
		sigKeys = append(sigKeys, k)
	}
	sort.Strings(sigKeys)
	for _, k := range sigKeys {
		sig := sigOf[k]
		byValue := map[int32][]int{}
		for _, i := range bySig[k] {
			byValue[cur.Sensitive(i)] = append(byValue[cur.Sensitive(i)], i)
		}
		groups := 0
		for _, rows := range byValue {
			if len(rows) > groups {
				groups = len(rows)
			}
		}
		for gi := 0; gi < groups; gi++ {
			g := Group{Sig: sig}
			for _, v := range sig {
				rows := byValue[v]
				if gi < len(rows) {
					g.Owners = append(g.Owners, cur.Owner(rows[gi]))
				} else {
					g.Counterfeits = append(g.Counterfeits, v)
				}
			}
			rel.Groups = append(rel.Groups, g)
		}
	}

	// Newcomers: Anatomy-style bucketization into groups of m distinct
	// values; their group's value set becomes their signature.
	byValue := map[int32][]int{}
	for _, i := range newcomers {
		byValue[cur.Sensitive(i)] = append(byValue[cur.Sensitive(i)], i)
	}
	for _, rows := range byValue {
		rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
	}
	newcomerStart := len(rel.Groups)
	for {
		type bucket struct {
			v    int32
			rows []int
		}
		var nonEmpty []bucket
		for v, rows := range byValue {
			if len(rows) > 0 {
				nonEmpty = append(nonEmpty, bucket{v, rows})
			}
		}
		if len(nonEmpty) == 0 {
			break
		}
		if len(nonEmpty) < st.M {
			// Residue: attach each leftover to a newcomer group whose
			// signature lacks its value, extending that signature (legal
			// only before the group's members enter the ledger, i.e. for
			// groups created this round).
			for _, b := range nonEmpty {
				for _, row := range b.rows {
					placed := false
					for gi := newcomerStart; gi < len(rel.Groups); gi++ {
						if !rel.Groups[gi].Sig.contains(b.v) {
							rel.Groups[gi].Owners = append(rel.Groups[gi].Owners, cur.Owner(row))
							sig := append(Signature(nil), rel.Groups[gi].Sig...)
							sig = append(sig, b.v)
							sort.Slice(sig, func(a, c int) bool { return sig[a] < sig[c] })
							rel.Groups[gi].Sig = sig
							placed = true
							break
						}
					}
					if !placed {
						return nil, fmt.Errorf("minv: newcomer value %d too frequent to keep groups %d-unique", b.v, st.M)
					}
				}
			}
			break
		}
		sort.Slice(nonEmpty, func(a, b int) bool {
			if len(nonEmpty[a].rows) != len(nonEmpty[b].rows) {
				return len(nonEmpty[a].rows) > len(nonEmpty[b].rows)
			}
			return nonEmpty[a].v < nonEmpty[b].v
		})
		g := Group{}
		var sig Signature
		for _, b := range nonEmpty[:st.M] {
			rows := byValue[b.v]
			row := rows[len(rows)-1]
			byValue[b.v] = rows[:len(rows)-1]
			g.Owners = append(g.Owners, cur.Owner(row))
			sig = append(sig, b.v)
		}
		sort.Slice(sig, func(a, b int) bool { return sig[a] < sig[b] })
		g.Sig = sig
		rel.Groups = append(rel.Groups, g)
	}

	// Update the ledger: owners present in this release carry their group's
	// signature forward; departed owners are forgotten.
	next := map[int]Signature{}
	for _, g := range rel.Groups {
		for _, o := range g.Owners {
			next[o] = g.Sig
		}
	}
	st.sigs = next
	return rel, nil
}

// Counterfeits returns the total counterfeit count of a release (the
// published counterfeit statistics).
func (r *Release) Counterfeits() int {
	n := 0
	for _, g := range r.Groups {
		n += len(g.Counterfeits)
	}
	return n
}

// Verify checks m-invariance of a release sequence given each release's
// owner→value oracle: (1) every group's value multiset (real + counterfeit)
// has exactly the group's signature as distinct values and at least M
// members; (2) owners alive in consecutive releases keep their signature.
func Verify(releases []*Release, tables []*dataset.Table) error {
	if len(releases) != len(tables) {
		return fmt.Errorf("minv: %d releases for %d tables", len(releases), len(tables))
	}
	prevSig := map[int]Signature{}
	for t, rel := range releases {
		valueOf := map[int]int32{}
		for i := 0; i < tables[t].Len(); i++ {
			valueOf[tables[t].Owner(i)] = tables[t].Sensitive(i)
		}
		curSig := map[int]Signature{}
		for gi, g := range rel.Groups {
			if len(g.Owners)+len(g.Counterfeits) < rel.M {
				return fmt.Errorf("minv: release %d group %d has %d members < m", t, gi, len(g.Owners)+len(g.Counterfeits))
			}
			seen := map[int32]bool{}
			for _, o := range g.Owners {
				v, ok := valueOf[o]
				if !ok {
					return fmt.Errorf("minv: release %d group %d owner %d absent from table", t, gi, o)
				}
				if seen[v] {
					return fmt.Errorf("minv: release %d group %d repeats value %d", t, gi, v)
				}
				if !g.Sig.contains(v) {
					return fmt.Errorf("minv: release %d group %d value %d outside signature", t, gi, v)
				}
				seen[v] = true
				curSig[o] = g.Sig
			}
			for _, v := range g.Counterfeits {
				if seen[v] {
					return fmt.Errorf("minv: release %d group %d counterfeit repeats value %d", t, gi, v)
				}
				if !g.Sig.contains(v) {
					return fmt.Errorf("minv: release %d group %d counterfeit value %d outside signature", t, gi, v)
				}
				seen[v] = true
			}
			if len(seen) != len(g.Sig) {
				return fmt.Errorf("minv: release %d group %d covers %d of %d signature values", t, gi, len(seen), len(g.Sig))
			}
		}
		for o, sig := range curSig {
			if old, ok := prevSig[o]; ok && old.key() != sig.key() {
				return fmt.Errorf("minv: owner %d changed signature between releases %d and %d", o, t-1, t)
			}
		}
		prevSig = curSig
	}
	return nil
}

// IntersectionAttack intersects a victim's group signatures across the
// releases they appear in — the candidate sensitive values a longitudinal
// adversary retains. Missing releases are skipped. ok is false when the
// victim never appears.
func IntersectionAttack(releases []*Release, victim int) (Signature, bool) {
	var cand map[int32]bool
	for _, rel := range releases {
		for _, g := range rel.Groups {
			for _, o := range g.Owners {
				if o != victim {
					continue
				}
				if cand == nil {
					cand = map[int32]bool{}
					for _, v := range g.Sig {
						cand[v] = true
					}
				} else {
					next := map[int32]bool{}
					for _, v := range g.Sig {
						if cand[v] {
							next[v] = true
						}
					}
					cand = next
				}
			}
		}
	}
	if cand == nil {
		return nil, false
	}
	out := make(Signature, 0, len(cand))
	for v := range cand {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, true
}
