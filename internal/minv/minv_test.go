package minv

import (
	"math/rand"
	"testing"

	"pgpub/internal/dataset"
)

// evolvingFixture builds a sequence of tables over a fixed population:
// owner o has QI code o and a stable sensitive value o % values. present[t]
// lists the owners alive at release t.
func evolvingFixture(t *testing.T, values int, present [][]int) []*dataset.Table {
	t.Helper()
	maxOwner := 0
	for _, ps := range present {
		for _, o := range ps {
			if o > maxOwner {
				maxOwner = o
			}
		}
	}
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("Q", 0, maxOwner)},
		dataset.MustIntAttribute("S", 0, values-1),
	)
	var tables []*dataset.Table
	for _, ps := range present {
		tbl := dataset.NewTable(s)
		for _, o := range ps {
			tbl.MustAppend([]int32{int32(o), int32(o % values)})
			tbl.Owners = append(tbl.Owners, o)
		}
		tables = append(tables, tbl)
	}
	return tables
}

func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for o := lo; o <= hi; o++ {
		out = append(out, o)
	}
	return out
}

func TestPublishSingleRelease(t *testing.T) {
	tables := evolvingFixture(t, 4, [][]int{seq(0, 15)})
	st, err := NewState(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rel, err := st.Publish(tables[0], rng)
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := Verify([]*Release{rel}, tables[:1]); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// 16 owners over 4 values: all groups real, no counterfeits.
	if rel.Counterfeits() != 0 {
		t.Fatalf("unexpected counterfeits: %d", rel.Counterfeits())
	}
	covered := map[int]bool{}
	for _, g := range rel.Groups {
		for _, o := range g.Owners {
			if covered[o] {
				t.Fatalf("owner %d in two groups", o)
			}
			covered[o] = true
		}
	}
	if len(covered) != 16 {
		t.Fatalf("groups cover %d of 16 owners", len(covered))
	}
}

func TestPublishSequenceInvariant(t *testing.T) {
	// Release 1: owners 0..19. Release 2: 4 departures, 8 arrivals.
	// Release 3: more churn.
	present := [][]int{
		seq(0, 19),
		append(seq(4, 19), seq(20, 27)...),
		append(seq(8, 19), seq(20, 31)...),
	}
	tables := evolvingFixture(t, 4, present)
	st, err := NewState(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var releases []*Release
	for _, tbl := range tables {
		rel, err := st.Publish(tbl, rng)
		if err != nil {
			t.Fatalf("Publish: %v", err)
		}
		releases = append(releases, rel)
	}
	if err := Verify(releases, tables); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// The intersection attack must never shrink a surviving victim's
	// candidates below m.
	for _, victim := range seq(8, 19) { // alive in all three releases
		cand, ok := IntersectionAttack(releases, victim)
		if !ok {
			t.Fatalf("victim %d never appeared", victim)
		}
		if len(cand) < 3 {
			t.Fatalf("victim %d candidates shrank to %v", victim, cand)
		}
	}
}

func TestDeletionsForceCounterfeits(t *testing.T) {
	// Release 1 forms groups; release 2 deletes owners carrying one value of
	// some signature, forcing counterfeits to keep the survivors' signature.
	present := [][]int{
		seq(0, 11),
		{0, 1, 2, 4, 5, 6, 8, 9, 10}, // owners 3, 7, 11 (value 3) depart
	}
	tables := evolvingFixture(t, 4, present)
	st, err := NewState(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	rel1, err := st.Publish(tables[0], rng)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := st.Publish(tables[1], rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify([]*Release{rel1, rel2}, tables); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rel2.Counterfeits() == 0 {
		t.Fatal("deleting a whole value class must force counterfeits")
	}
}

func TestPublishErrors(t *testing.T) {
	if _, err := NewState(1); err == nil {
		t.Fatal("m=1: want error")
	}
	tables := evolvingFixture(t, 4, [][]int{seq(0, 7)})
	st, _ := NewState(3)
	if _, err := st.Publish(tables[0], nil); err == nil {
		t.Fatal("nil rng: want error")
	}
	empty := dataset.NewTable(tables[0].Schema)
	rng := rand.New(rand.NewSource(4))
	if _, err := st.Publish(empty, rng); err == nil {
		t.Fatal("empty table: want error")
	}
	// Newcomers with fewer distinct values than m are ineligible.
	mono := evolvingFixture(t, 2, [][]int{seq(0, 7)})
	st3, _ := NewState(3)
	if _, err := st3.Publish(mono[0], rng); err == nil {
		t.Fatal("2 distinct values cannot be 3-unique: want error")
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	tables := evolvingFixture(t, 4, [][]int{seq(0, 11)})
	st, _ := NewState(4)
	rng := rand.New(rand.NewSource(5))
	rel, err := st.Publish(tables[0], rng)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: shrink a group below m.
	bad := *rel
	bad.Groups = append([]Group(nil), rel.Groups...)
	bad.Groups[0] = Group{Owners: bad.Groups[0].Owners[:1], Sig: bad.Groups[0].Sig[:1]}
	if err := Verify([]*Release{&bad}, tables); err == nil {
		t.Fatal("undersized group: want error")
	}
	if err := Verify([]*Release{rel}, nil); err == nil {
		t.Fatal("length mismatch: want error")
	}
}

// The headline contrast: naive re-anonymization (fresh random groups each
// release) lets the intersection attack shrink candidates below m, while
// the m-invariant sequence never does.
func TestIntersectionAttackContrast(t *testing.T) {
	const m = 3
	present := [][]int{seq(0, 23), seq(0, 23), seq(0, 23)}
	tables := evolvingFixture(t, 6, present)

	// m-invariant sequence.
	st, _ := NewState(m)
	rngA := rand.New(rand.NewSource(6))
	var invariant []*Release
	for _, tbl := range tables {
		rel, err := st.Publish(tbl, rngA)
		if err != nil {
			t.Fatal(err)
		}
		invariant = append(invariant, rel)
	}
	for victim := 0; victim < 24; victim++ {
		cand, ok := IntersectionAttack(invariant, victim)
		if !ok || len(cand) < m {
			t.Fatalf("m-invariant victim %d candidates %v", victim, cand)
		}
	}

	// Naive sequence: each release independently forms random m-unique
	// groups with no signature continuity (what re-running any one-shot
	// anonymizer does).
	rngB := rand.New(rand.NewSource(7))
	var naive []*Release
	for _, tbl := range tables {
		naive = append(naive, naiveRelease(t, tbl, m, rngB))
	}
	shrunk := 0
	for victim := 0; victim < 24; victim++ {
		cand, ok := IntersectionAttack(naive, victim)
		if !ok {
			t.Fatalf("victim %d missing", victim)
		}
		if len(cand) < m {
			shrunk++
		}
	}
	if shrunk == 0 {
		t.Fatal("naive re-publication should leak via intersection for some victim")
	}
}

// naiveRelease forms random m-unique groups with no cross-release memory:
// each round draws m random distinct-value buckets and one tuple from each;
// residual tuples join an existing group lacking their value.
func naiveRelease(t *testing.T, tbl *dataset.Table, m int, rng *rand.Rand) *Release {
	t.Helper()
	byValue := map[int32][]int{}
	for i := 0; i < tbl.Len(); i++ {
		byValue[tbl.Sensitive(i)] = append(byValue[tbl.Sensitive(i)], i)
	}
	rel := &Release{M: m}
	for {
		var values []int32
		for v, rows := range byValue {
			if len(rows) > 0 {
				values = append(values, v)
			}
		}
		if len(values) < m {
			// Residue: attach leftovers to groups lacking their value.
			for _, v := range values {
				for _, row := range byValue[v] {
					placed := false
					for gi := range rel.Groups {
						if !rel.Groups[gi].Sig.contains(v) {
							rel.Groups[gi].Owners = append(rel.Groups[gi].Owners, tbl.Owner(row))
							rel.Groups[gi].Sig = append(rel.Groups[gi].Sig, v)
							placed = true
							break
						}
					}
					if !placed {
						t.Fatal("naive residue placement failed")
					}
				}
			}
			return rel
		}
		sortSig(values)
		rng.Shuffle(len(values), func(a, b int) { values[a], values[b] = values[b], values[a] })
		g := Group{}
		var sig Signature
		for _, v := range values[:m] {
			rows := byValue[v]
			pick := rng.Intn(len(rows))
			rows[pick], rows[len(rows)-1] = rows[len(rows)-1], rows[pick]
			g.Owners = append(g.Owners, tbl.Owner(rows[len(rows)-1]))
			byValue[v] = rows[:len(rows)-1]
			sig = append(sig, v)
		}
		sortSig(sig)
		g.Sig = sig
		rel.Groups = append(rel.Groups, g)
	}
}

func sortSig(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
