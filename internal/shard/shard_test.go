package shard

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/sal"
	"pgpub/internal/snapshot"
)

// publishSharded publishes n SAL rows into s shards under a fixed seed.
func publishSharded(t *testing.T, n, s, workers int, algorithm pg.Algorithm) []*pg.Published {
	t.Helper()
	d, err := sal.Generate(n, 11)
	if err != nil {
		t.Fatal(err)
	}
	pubs, err := pg.PublishSharded(d, sal.Hierarchies(d.Schema), pg.Config{
		K: 6, P: 0.3, Algorithm: algorithm, Seed: 11, Workers: workers,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	return pubs
}

// relClose compares with a relative tolerance floored at an absolute one, so
// answers near zero don't demand impossible precision.
func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

func clamp(x, lo, hi float64) float64 {
	return math.Min(math.Max(x, lo), hi)
}

func sensitiveFraction(q query.CountQuery, domain int) float64 {
	n := 0
	for _, in := range q.Sensitive {
		if in {
			n++
		}
	}
	return float64(n) / float64(domain)
}

// TestGroupMatchesMergedIndex is the sharding equivalence contract: for
// every Phase-2 algorithm and S in {1,2,4,8}, the composed answers of the S
// shard indexes must match a single index over the merged publication —
// NAIVE and SUM/AVG to float-compose tolerance (the only slack is addition
// order), and the masked COUNT one-sidedly (per-shard inversions clamp at
// zero, so the composition can only exceed the merged answer).
func TestGroupMatchesMergedIndex(t *testing.T) {
	for _, algorithm := range []pg.Algorithm{pg.KD, pg.TDS, pg.FullDomain} {
		t.Run(algorithm.String(), func(t *testing.T) {
			for _, s := range []int{1, 2, 4, 8} {
				pubs := publishSharded(t, 3000, s, 0, algorithm)
				g, err := NewGroup(pubs)
				if err != nil {
					t.Fatal(err)
				}
				merged, err := pg.Merge(pubs)
				if err != nil {
					t.Fatal(err)
				}
				ix, err := query.NewIndex(merged)
				if err != nil {
					t.Fatal(err)
				}
				if g.Rows() != merged.Len() || g.Shards() != s {
					t.Fatalf("S=%d: group has %d rows / %d shards, merged has %d rows",
						s, g.Rows(), g.Shards(), merged.Len())
				}

				rng := rand.New(rand.NewSource(5))
				qs, err := query.Workload(g.Schema(), query.WorkloadConfig{
					Queries: 32, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.5, Rng: rng,
				})
				if err != nil {
					t.Fatal(err)
				}
				for qi, q := range qs {
					gn, err1 := g.Naive(q)
					mn, err2 := ix.Naive(q)
					if err1 != nil || err2 != nil {
						t.Fatalf("S=%d query %d naive: %v / %v", s, qi, err1, err2)
					}
					if !relClose(gn, mn, 1e-9) {
						t.Fatalf("S=%d query %d: composed naive %v, merged %v", s, qi, gn, mn)
					}
					gc, err1 := g.Count(q)
					mc, err2 := ix.Count(q)
					if err1 != nil || err2 != nil {
						t.Fatalf("S=%d query %d count: %v / %v", s, qi, err1, err2)
					}
					if q.Sensitive == nil {
						if !relClose(gc, mc, 1e-9) {
							t.Fatalf("S=%d query %d: composed count %v, merged %v", s, qi, gc, mc)
						}
					} else {
						// The unclamped masked estimator is exactly additive;
						// the two answers differ only in clamping discipline:
						// per shard to [0, b_s] for the composition, once to
						// [0, Σ b_s] for the merged index. Reconstruct the
						// unclamped per-shard estimates from naive answers and
						// check both against their own discipline.
						sf := sensitiveFraction(q, g.Schema().SensitiveDomain())
						uq := q
						uq.Sensitive = nil
						p := g.P()
						var composed, total float64
						for si, six := range g.Indexes {
							a, err1 := six.Naive(q)
							b, err2 := six.Naive(uq)
							if err1 != nil || err2 != nil {
								t.Fatalf("S=%d query %d shard %d naive: %v / %v", s, qi, si, err1, err2)
							}
							u := (a - (1-p)*sf*b) / p
							composed += clamp(u, 0, b)
							total += u
						}
						bAll, err := ix.Naive(uq)
						if err != nil {
							t.Fatal(err)
						}
						if !relClose(gc, composed, 1e-9) {
							t.Fatalf("S=%d query %d: composed masked count %v, per-shard-clamped reconstruction %v",
								s, qi, gc, composed)
						}
						if !relClose(mc, clamp(total, 0, bAll), 1e-9) {
							t.Fatalf("S=%d query %d: merged masked count %v, once-clamped reconstruction %v",
								s, qi, mc, clamp(total, 0, bAll))
						}
					}
					// SUM/AVG take no sensitive mask; reuse the query's region.
					sq := q
					sq.Sensitive = nil
					gs, err1 := g.Sum(sq, query.IncomeMidpoint)
					ms, err2 := ix.Sum(sq, query.IncomeMidpoint)
					if err1 != nil || err2 != nil {
						t.Fatalf("S=%d query %d sum: %v / %v", s, qi, err1, err2)
					}
					if !relClose(gs, ms, 1e-6) {
						t.Fatalf("S=%d query %d: composed sum %v, merged %v", s, qi, gs, ms)
					}
					ga, err1 := g.Avg(sq, query.IncomeMidpoint)
					ma, err2 := ix.Avg(sq, query.IncomeMidpoint)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("S=%d query %d avg: composed err %v, merged err %v", s, qi, err1, err2)
					}
					if err1 == nil && !relClose(ga, ma, 1e-6) {
						t.Fatalf("S=%d query %d: composed avg %v, merged %v", s, qi, ga, ma)
					}
				}
			}
		})
	}
}

// TestAnswerWorkloadDeterministic pins the composed workload path: answers
// must be byte-identical for every worker count and equal the one-by-one
// composition.
func TestAnswerWorkloadDeterministic(t *testing.T) {
	pubs := publishSharded(t, 2000, 4, 0, pg.KD)
	g, err := NewGroup(pubs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	qs, err := query.Workload(g.Schema(), query.WorkloadConfig{
		Queries: 40, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.4, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	var base []float64
	for _, workers := range []int{1, 3, 8} {
		out, err := g.AnswerWorkload(qs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = out
			for i, q := range qs {
				v, err := g.Count(q)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(v) != math.Float64bits(out[i]) {
					t.Fatalf("query %d: workload %v, direct %v", i, out[i], v)
				}
			}
			continue
		}
		for i := range out {
			if math.Float64bits(base[i]) != math.Float64bits(out[i]) {
				t.Fatalf("query %d differs at %d workers: %v vs %v", i, workers, out[i], base[i])
			}
		}
	}
}

// TestShardBytesStableAcrossWorkers pins the seed-splitting discipline: the
// bytes of every shard snapshot (and hence the manifest CRCs) must not
// depend on the publisher's worker count.
func TestShardBytesStableAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	var crcs [][]uint32
	for _, workers := range []int{1, 8} {
		pubs := publishSharded(t, 2000, 4, workers, pg.KD)
		base := filepath.Join(dir, "rel")
		man, err := WriteRelease(filepath.Join(dir, "rel.pgman"), base, pubs, nil, 11, 2000)
		if err != nil {
			t.Fatal(err)
		}
		var c []uint32
		for _, e := range man.Shards {
			c = append(c, e.CRC)
		}
		crcs = append(crcs, c)
	}
	for s := range crcs[0] {
		if crcs[0][s] != crcs[1][s] {
			t.Fatalf("shard %d bytes differ across worker counts: %08x vs %08x", s, crcs[0][s], crcs[1][s])
		}
	}
}

// TestWriteReleaseOpenRoundtrip saves a sharded release and re-opens it: the
// manifest survives, checksums verify, and the opened group answers
// bit-identically to the in-process one.
func TestWriteReleaseOpenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	pubs := publishSharded(t, 2000, 4, 0, pg.TDS)
	inproc, err := NewGroup(pubs)
	if err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(dir, "rel.pgman")
	guarantee := &pg.GuaranteeMetadata{Lambda: 0.1, Rho1: 0.1, Rho2: 0.4, Delta: 0.3}
	man, err := WriteRelease(manPath, filepath.Join(dir, "rel.pgsnap"), pubs, guarantee, 11, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Shards) != 4 || man.K != 6 || man.P != 0.3 || man.Algorithm != "tds" || man.SourceRows != 2000 {
		t.Fatalf("manifest: %+v", man)
	}
	g, err := Open(manPath)
	if err != nil {
		t.Fatal(err)
	}
	if g.Shards() != 4 || g.Rows() != inproc.Rows() || g.Manifest == nil {
		t.Fatalf("opened group: %d shards, %d rows", g.Shards(), g.Rows())
	}
	rng := rand.New(rand.NewSource(3))
	qs, err := query.Workload(g.Schema(), query.WorkloadConfig{
		Queries: 16, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.4, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		a, err1 := g.Count(q)
		b, err2 := inproc.Count(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %d: %v / %v", i, err1, err2)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("query %d: opened %v, in-process %v", i, a, b)
		}
	}
}

// TestOpenRejectsTampering flips one byte in a shard snapshot and in the
// manifest: both opens must fail loudly rather than serve corrupt data.
func TestOpenRejectsTampering(t *testing.T) {
	dir := t.TempDir()
	pubs := publishSharded(t, 1500, 2, 0, pg.KD)
	manPath := filepath.Join(dir, "rel.pgman")
	if _, err := WriteRelease(manPath, filepath.Join(dir, "rel.pgsnap"), pubs, nil, 11, 1500); err != nil {
		t.Fatal(err)
	}

	flip := func(path string, off int) {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-1-off] ^= 0xff
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	shardPath := SnapshotPath(filepath.Join(dir, "rel.pgsnap"), 1)
	flip(shardPath, 3)
	if _, err := Open(manPath); err == nil {
		t.Fatal("corrupt shard snapshot accepted")
	}
	flip(shardPath, 3) // restore
	if _, err := Open(manPath); err != nil {
		t.Fatalf("restored release rejected: %v", err)
	}

	flip(manPath, 3)
	if _, err := Open(manPath); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

// TestManifestRoundtrip exercises the codec directly, including the
// validation of structurally broken manifests.
func TestManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	m := &snapshot.Manifest{
		K: 6, P: 0.25, Algorithm: "kd", Seed: 42, SourceRows: 100,
		Shards: []snapshot.ShardEntry{
			{Path: "a.pgsnap", CRC: 0xdeadbeef, Rows: 10, SourceRows: 50},
			{Path: "b.pgsnap", CRC: 1, Rows: 20, SourceRows: 50},
		},
	}
	path := filepath.Join(dir, "m.pgman")
	if err := snapshot.SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := snapshot.LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != m.K || got.P != m.P || got.Algorithm != m.Algorithm || got.Seed != m.Seed ||
		got.SourceRows != m.SourceRows || len(got.Shards) != 2 ||
		got.Shards[0] != m.Shards[0] || got.Shards[1] != m.Shards[1] {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, m)
	}

	bad := *m
	bad.Shards = []snapshot.ShardEntry{{Path: "a", Rows: 60, SourceRows: 50}}
	if err := snapshot.SaveManifest(filepath.Join(dir, "bad.pgman"), &bad); err == nil {
		t.Fatal("shard publishing more rows than its source accepted")
	}
	bad.Shards = nil
	if err := snapshot.SaveManifest(filepath.Join(dir, "bad.pgman"), &bad); err == nil {
		t.Fatal("zero-shard manifest accepted")
	}
}
