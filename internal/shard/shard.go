// Package shard composes a sharded PG release back into one queryable
// surface. A sharded release is S independent publications of round-robin
// slices of the microdata (pg.PublishSharded), each saved to its own v2
// snapshot and described by one checksummed manifest
// (snapshot.Manifest). This package owns the two consumers of that layout:
//
//   - Group: an in-process composition of the S per-shard query indexes that
//     satisfies the same answering contract as a single *query.Index
//     (serve.Answerer), merging answers in shard order so composed results
//     are deterministic bit-for-bit. The coordinator's over-HTTP merge
//     (internal/serve) mirrors exactly this arithmetic.
//   - The release writer/opener: WriteRelease saves per-shard snapshots and
//     the manifest; Open loads a manifest, re-checksums every shard file,
//     cross-checks each shard's parameters against the manifest, and returns
//     a ready Group.
//
// Merge semantics: COUNT, NAIVE and SUM are additive over disjoint row
// sets, so the composed answer is the plain left-to-right sum of per-shard
// answers. AVG is not additive; it composes from the per-shard (inverted
// sum, weight) pairs of query.Index.AvgParts as Σ sums / Σ weights. The
// per-shard COUNT estimator clamps its inversion to [0, b_s] shard by
// shard while a single index clamps the total once, so a composed masked
// COUNT can land above the single-index answer (some shard clamped at 0)
// or below it (some shard clamped at its b_s) — that is a property of the
// estimator, not a bug in the merge (the unclamped estimator is exactly
// additive, and the two answers agree whenever no shard clamps).
package shard

import (
	"fmt"
	"path/filepath"
	"strings"

	"pgpub/internal/dataset"
	"pgpub/internal/obs"
	"pgpub/internal/par"
	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/snapshot"
)

// Group is the composed view of a sharded release: one query index per
// shard, in shard order. It satisfies serve.Answerer, so a Server (or a
// test) can stand on a sharded release exactly as it stands on a single
// index.
type Group struct {
	// Indexes holds the per-shard serving indexes in shard order — the merge
	// order for every composed answer.
	Indexes []*query.Index
	// Manifest is the release descriptor the group was opened from; nil for
	// in-process groups built with NewGroup.
	Manifest *snapshot.Manifest

	rows int
}

// NewGroup builds an in-process group over shard publications (the output
// of pg.PublishSharded), constructing one index per shard.
func NewGroup(pubs []*pg.Published) (*Group, error) {
	return NewGroupObserved(pubs, nil)
}

// NewGroupObserved is NewGroup with per-shard index instrumentation.
func NewGroupObserved(pubs []*pg.Published, reg *obs.Registry) (*Group, error) {
	if len(pubs) == 0 {
		return nil, fmt.Errorf("shard: group over zero shards")
	}
	g := &Group{Indexes: make([]*query.Index, len(pubs))}
	for s, p := range pubs {
		if p.Schema != pubs[0].Schema {
			return nil, fmt.Errorf("shard: shard %d has a different schema", s)
		}
		if p.P != pubs[0].P || p.K != pubs[0].K || p.Algorithm != pubs[0].Algorithm {
			return nil, fmt.Errorf("shard: shard %d params (%v, p=%v, k=%d) differ from shard 0's",
				s, p.Algorithm, p.P, p.K)
		}
		ix, err := query.NewIndexObserved(p, reg)
		if err != nil {
			return nil, fmt.Errorf("shard: indexing shard %d: %w", s, err)
		}
		g.Indexes[s] = ix
		g.rows += p.Len()
	}
	return g, nil
}

// Shards reports the shard count.
func (g *Group) Shards() int { return len(g.Indexes) }

// Schema returns the shared schema.
func (g *Group) Schema() *dataset.Schema { return g.Indexes[0].Schema() }

// P returns the shared retention probability.
func (g *Group) P() float64 { return g.Indexes[0].P() }

// Groups reports the total k-anonymous group count across shards.
func (g *Group) Groups() int {
	n := 0
	for _, ix := range g.Indexes {
		n += ix.Groups()
	}
	return n
}

// Rows reports the total published row count across shards.
func (g *Group) Rows() int { return g.rows }

// Count composes the PG COUNT estimator over the shards: the sum of the
// per-shard estimates in shard order. Each shard clamps its own inversion
// to [0, b_s] exactly as it does when served alone, so the composed answer
// is what a client of S shard servers obtains.
func (g *Group) Count(q query.CountQuery) (float64, error) {
	total := 0.0
	for s, ix := range g.Indexes {
		v, err := ix.Count(q)
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", s, err)
		}
		total += v
	}
	return total, nil
}

// Naive composes the uncorrected estimator: additive over shards.
func (g *Group) Naive(q query.CountQuery) (float64, error) {
	total := 0.0
	for s, ix := range g.Indexes {
		v, err := ix.Naive(q)
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", s, err)
		}
		total += v
	}
	return total, nil
}

// AvgParts composes the (inverted sum, weight) pairs in shard order:
// Σ sums and Σ weights. This is the pair the coordinator extracts from
// shard responses, so Group and coordinator agree bit-for-bit.
func (g *Group) AvgParts(q query.CountQuery, value query.SensitiveValue) (sum, weight float64, err error) {
	for s, ix := range g.Indexes {
		a, b, err := ix.AvgParts(q, value)
		if err != nil {
			return 0, 0, fmt.Errorf("shard %d: %w", s, err)
		}
		sum += a
		weight += b
	}
	return sum, weight, nil
}

// Sum composes the SUM estimator: additive over shards.
func (g *Group) Sum(q query.CountQuery, value query.SensitiveValue) (float64, error) {
	sum, _, err := g.AvgParts(q, value)
	return sum, err
}

// Avg composes AVG from the shard parts: Σ sums / Σ weights. Errors when
// the whole region is estimated empty (every shard's weight is zero).
func (g *Group) Avg(q query.CountQuery, value query.SensitiveValue) (float64, error) {
	sum, weight, err := g.AvgParts(q, value)
	if err != nil {
		return 0, err
	}
	if weight == 0 {
		return 0, fmt.Errorf("shard: region estimated empty")
	}
	return sum / weight, nil
}

// AnswerWorkload answers a COUNT workload against the composed release,
// fanning queries across at most workers goroutines. Each query is composed
// wholly by one worker in shard order, and answers land at their query's
// position, so the output is byte-identical for every worker count.
func (g *Group) AnswerWorkload(qs []query.CountQuery, workers int) ([]float64, error) {
	out := make([]float64, len(qs))
	err := par.ForEachErr(workers, len(qs), func(i int) error {
		v, err := g.Count(qs[i])
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SnapshotPath names shard s's snapshot file under a release base path:
// "release.pgsnap" (or "release") becomes "release-00.pgsnap",
// "release-01.pgsnap", ... Two digits keep lexical order equal to shard
// order for up to 100 shards; beyond that the width grows and the
// lexical-order nicety is forfeit.
func SnapshotPath(base string, s int) string {
	base = strings.TrimSuffix(base, ".pgsnap")
	return fmt.Sprintf("%s-%02d.pgsnap", base, s)
}

// WriteRelease saves a sharded release: one v2 snapshot per shard at
// SnapshotPath(snapshotBase, s), then the manifest at manifestPath
// recording each file's CRC-32C, row counts and the shared parameters.
// sourceRows is the microdata cardinality the shards were partitioned
// from; per-shard source counts follow from the round-robin assignment.
// The guarantee block g (may be nil) is stamped into every shard snapshot —
// the bounds are functions of the shared (p, k, domain), so one certificate
// covers all shards.
func WriteRelease(manifestPath, snapshotBase string, pubs []*pg.Published, g *pg.GuaranteeMetadata, seed int64, sourceRows int) (*snapshot.Manifest, error) {
	if len(pubs) == 0 {
		return nil, fmt.Errorf("shard: writing a release with zero shards")
	}
	m := &snapshot.Manifest{
		K:          pubs[0].K,
		P:          pubs[0].P,
		Algorithm:  pubs[0].Algorithm.String(),
		Seed:       seed,
		SourceRows: sourceRows,
		Shards:     make([]snapshot.ShardEntry, len(pubs)),
	}
	manDir := filepath.Dir(manifestPath)
	for s, p := range pubs {
		path := SnapshotPath(snapshotBase, s)
		if err := snapshot.Save(path, p, g); err != nil {
			return nil, fmt.Errorf("shard: saving shard %d: %w", s, err)
		}
		crc, err := snapshot.FileCRC(path)
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", s, err)
		}
		rel, err := filepath.Rel(manDir, path)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = path // unrelatable or outside the manifest dir: keep as given
		}
		m.Shards[s] = snapshot.ShardEntry{
			Path:       rel,
			CRC:        crc,
			Rows:       p.Len(),
			SourceRows: (sourceRows + len(pubs) - 1 - s) / len(pubs),
		}
	}
	if err := snapshot.SaveManifest(manifestPath, m); err != nil {
		return nil, err
	}
	return m, nil
}

// Open loads a sharded release for in-process querying: the manifest is
// read and validated, every shard snapshot is re-checksummed against its
// manifest CRC, loaded with the fully-verifying snapshot reader, and
// cross-checked against the manifest's shared parameters and per-shard row
// counts before an index is built over it.
func Open(manifestPath string) (*Group, error) {
	return OpenObserved(manifestPath, nil)
}

// OpenObserved is Open with index instrumentation.
func OpenObserved(manifestPath string, reg *obs.Registry) (*Group, error) {
	m, err := snapshot.LoadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	if err := m.VerifyShards(manifestPath); err != nil {
		return nil, err
	}
	g := &Group{Indexes: make([]*query.Index, len(m.Shards)), Manifest: m}
	for s := range m.Shards {
		pub, _, err := snapshot.Load(m.ShardPath(manifestPath, s))
		if err != nil {
			return nil, fmt.Errorf("shard: loading shard %d: %w", s, err)
		}
		if err := checkShard(m, s, pub); err != nil {
			return nil, err
		}
		ix, err := query.NewIndexObserved(pub, reg)
		if err != nil {
			return nil, fmt.Errorf("shard: indexing shard %d: %w", s, err)
		}
		g.Indexes[s] = ix
		g.rows += pub.Len()
	}
	return g, nil
}

// checkShard cross-validates a loaded shard publication against the
// manifest that named it.
func checkShard(m *snapshot.Manifest, s int, pub *pg.Published) error {
	if pub.P != m.P || pub.K != m.K || pub.Algorithm.String() != m.Algorithm {
		return fmt.Errorf("shard: shard %d snapshot params (%v, p=%v, k=%d) contradict the manifest (%v, p=%v, k=%d)",
			s, pub.Algorithm, pub.P, pub.K, m.Algorithm, m.P, m.K)
	}
	if pub.Len() != m.Shards[s].Rows {
		return fmt.Errorf("shard: shard %d snapshot has %d rows, manifest records %d",
			s, pub.Len(), m.Shards[s].Rows)
	}
	return nil
}
