package dp

import "math"

// LaplaceQuantile is the inverse CDF of the zero-centered Laplace
// distribution with scale b:
//
//	Q(u) = b·ln(2u)        for u < 1/2
//	Q(u) = -b·ln(2(1-u))   for u ≥ 1/2
//
// so Q(1/2) = 0, Q(3/4) = b·ln 2 and Q(0.99) = b·ln 50, with the symmetric
// negatives below the median. Feeding it a uniform u ∈ (0,1) yields a
// Laplace(0, b) sample — the inverse-CDF sampler behind Mechanism.Noise.
func LaplaceQuantile(u, b float64) float64 {
	if u < 0.5 {
		return b * math.Log(2*u)
	}
	return -b * math.Log(2*(1-u))
}
