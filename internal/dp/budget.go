package dp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"pgpub/internal/obs"
)

// Budget is one API key's ε account: a lifetime total, a per-query price,
// and the atomically-tracked amount already spent. Spend is lock-free (a
// CAS loop over the float bits), so the hot path never serializes tenants
// behind a mutex.
type Budget struct {
	// Key is the API key this budget belongs to.
	Key string
	// Total is ε_total — the lifetime budget. It never replenishes; when it
	// is gone the key is done until the operator provisions a new ledger.
	Total float64
	// PerQuery is ε_per_query — the price of one answered query.
	PerQuery float64

	spent     atomic.Uint64 // float64 bits of ε spent so far
	remaining *obs.Gauge    // dp.remaining.<key>, in micro-ε; nil without metrics
}

// Spend atomically charges cost against the budget. It grants only charges
// that fit entirely (spent + cost ≤ Total, exact float comparison — the
// accounting is conservative near the boundary) and reports the ε remaining
// after the grant, or the untouched remainder on refusal. Concurrent
// spenders can never jointly overshoot Total: the CAS retries until this
// spender's view is consistent.
func (b *Budget) Spend(cost float64) (ok bool, remaining float64) {
	if cost < 0 || math.IsNaN(cost) {
		return false, b.Remaining()
	}
	for {
		old := b.spent.Load()
		s := math.Float64frombits(old)
		if s+cost > b.Total {
			return false, b.Total - s
		}
		if b.spent.CompareAndSwap(old, math.Float64bits(s+cost)) {
			// The gauge is a last-write-wins operational view and may lag
			// briefly under contention; Remaining() is the authoritative value.
			b.remaining.Set(int64(b.Remaining() * 1e6))
			return true, b.Total - (s + cost)
		}
	}
}

// Spent reports the ε charged so far.
func (b *Budget) Spent() float64 { return math.Float64frombits(b.spent.Load()) }

// Remaining reports the ε left.
func (b *Budget) Remaining() float64 { return b.Total - b.Spent() }

// Ledger is the per-key budget table a DP server charges against. It is
// immutable after parsing except for the atomic spend counters, and it
// deliberately belongs to the server process, not the serving release:
// hot-swapping to the next snapshot re-keys the noise but never refunds ε.
type Ledger struct {
	keys map[string]*Budget

	met struct {
		spend     *obs.Histogram // dp.spend, micro-ε per granted charge
		exhausted *obs.Counter   // dp.exhausted, refused charges
	}
}

// Key returns the named key's budget, or nil for unknown keys.
func (l *Ledger) Key(key string) *Budget { return l.keys[key] }

// Len reports the number of provisioned API keys.
func (l *Ledger) Len() int { return len(l.keys) }

// Keys lists the provisioned API keys in sorted order.
func (l *Ledger) Keys() []string {
	out := make([]string, 0, len(l.keys))
	for k := range l.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Charge is Spend with the ledger's instrumentation: granted charges feed
// the dp.spend histogram and the key's remaining gauge, refusals count as
// exhaustions.
func (l *Ledger) Charge(b *Budget, cost float64) (ok bool, remaining float64) {
	ok, remaining = b.Spend(cost)
	if ok {
		l.met.spend.Observe(int64(cost * 1e6))
	} else {
		l.met.exhausted.Inc()
	}
	return ok, remaining
}

// Instrument registers the ledger's dp.* metrics: the spend histogram, the
// exhaustion counter, and one dp.remaining.<key> gauge per provisioned key
// (initialized to the full budget). nil-safe like all obs instruments.
func (l *Ledger) Instrument(reg *obs.Registry) {
	l.met.spend = reg.Histogram("dp.spend", "microeps")
	l.met.exhausted = reg.Counter("dp.exhausted")
	for _, k := range l.Keys() {
		b := l.keys[k]
		b.remaining = reg.Gauge("dp.remaining." + k)
		b.remaining.Set(int64(b.Remaining() * 1e6))
	}
}

// ParseBudgets reads a budgets file: one `key ε_total ε_per_query` triple
// per line, '#' comments and blank lines ignored. Keys must be unique and
// whitespace-free; both ε values must be positive and finite, with
// ε_per_query ≤ ε_total.
func ParseBudgets(r io.Reader) (*Ledger, error) {
	l := &Ledger{keys: make(map[string]*Budget)}
	sc := bufio.NewScanner(r)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("dp: budgets line %d: want `key ε_total ε_per_query`, got %d fields", line, len(fields))
		}
		key := fields[0]
		if _, dup := l.keys[key]; dup {
			return nil, fmt.Errorf("dp: budgets line %d: duplicate key %q", line, key)
		}
		total, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dp: budgets line %d: ε_total %q: %v", line, fields[1], err)
		}
		per, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("dp: budgets line %d: ε_per_query %q: %v", line, fields[2], err)
		}
		switch {
		case !(total > 0) || math.IsInf(total, 0):
			return nil, fmt.Errorf("dp: budgets line %d (%s): ε_total must be positive and finite, got %v", line, key, total)
		case !(per > 0) || math.IsInf(per, 0):
			return nil, fmt.Errorf("dp: budgets line %d (%s): ε_per_query must be positive and finite, got %v", line, key, per)
		case per > total:
			return nil, fmt.Errorf("dp: budgets line %d (%s): ε_per_query %v exceeds ε_total %v — no query could ever be answered", line, key, per, total)
		}
		l.keys[key] = &Budget{Key: key, Total: total, PerQuery: per}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dp: reading budgets: %w", err)
	}
	if len(l.keys) == 0 {
		return nil, fmt.Errorf("dp: budgets file provisions no keys")
	}
	return l, nil
}

// LoadBudgets parses the budgets file at path (the -dp-budgets flag).
func LoadBudgets(path string) (*Ledger, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dp: %w", err)
	}
	defer f.Close()
	l, err := ParseBudgets(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}
