// Package dp is the differential-privacy layer of the serving stack: a
// Laplace mechanism over the aggregate answers the exact engine computes,
// and per-API-key ε-budget accounting that turns pgserve into a
// multi-tenant DP query server (docs/DP.md).
//
// The mechanism is deliberately deterministic given its inputs: every noise
// draw is a pure function of (root seed, API key, release CRC, canonical
// query encoding, draw index). Repeating an identical query therefore
// returns the identical noised answer — an analyst cannot average the noise
// away by asking again — and an offline tool holding the same seed
// (pgquery's DP mode) reproduces a served answer bit for bit, which is what
// keeps the serving equivalence tests exact. The root seed is the secret:
// production deployments draw it randomly at startup, tests pin it.
//
// Budgets are the multi-tenant half. A Ledger maps API keys to (ε_total,
// ε_per_query) pairs loaded from a budgets file; every answered query
// atomically spends ε_per_query from its key's lifetime total, and a spend
// that would overshoot is refused — the server turns that refusal into
// 429 + Retry-After, mirroring the admission limiter's shedding shape. The
// ledger hangs off the long-lived server, not the per-release state, so
// spent budget survives hot-swap reloads.
package dp

import (
	"encoding/binary"
	"hash/fnv"
)

// Mechanism is one Laplace noise source: the root seed (secret in
// production, pinned under test) plus the serving release's CRC, which is
// mixed into every draw so a hot-swap to a new release re-keys the noise.
type Mechanism struct {
	// Seed is the root noise seed. Everyone who holds it can subtract the
	// noise, so production servers draw it from crypto/rand at startup.
	Seed int64
	// CRC identifies the release being served: the snapshot header CRC at a
	// single-snapshot server, the manifest file CRC at a coordinator.
	CRC uint32
}

// Noise returns the Laplace draw for one answer component: apiKey and
// queryKey (the canonical query encoding of internal/serve) identify the
// question, draw separates components of one answer (AVG noises its sum and
// weight independently), and scale is the Laplace b = sensitivity/ε. A
// non-positive scale (an all-zero value vector has zero sensitivity) adds
// nothing.
func (m Mechanism) Noise(apiKey, queryKey string, draw int, scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	return LaplaceQuantile(m.Uniform(apiKey, queryKey, draw), scale)
}

// Uniform derives the draw's uniform in (0,1): the keying material is
// hashed (FNV-1a) into a stream index, pushed through the same splitmix64
// finalizer the pipeline uses for seed splitting (par.SplitSeed), and the
// top 53 bits become the mantissa. Exported so tests and offline tools can
// inspect the u behind a draw.
func (m Mechanism) Uniform(apiKey, queryKey string, draw int) float64 {
	h := fnv.New64a()
	h.Write([]byte(apiKey))   //nolint:errcheck // hash.Hash never errors
	h.Write([]byte{0})        //nolint:errcheck
	h.Write([]byte(queryKey)) //nolint:errcheck
	var tail [9]byte
	binary.LittleEndian.PutUint32(tail[1:5], m.CRC)
	binary.LittleEndian.PutUint32(tail[5:9], uint32(draw))
	h.Write(tail[:]) //nolint:errcheck
	return uniform53(splitSeed(m.Seed, h.Sum64()))
}

// splitSeed is par.SplitSeed with a 64-bit stream index: the same
// golden-ratio increment and splitmix64 finalizer, so the dp stream is one
// more consumer of the pipeline's seed-splitting discipline.
func splitSeed(root int64, stream uint64) uint64 {
	z := uint64(root) + (stream+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// uniform53 maps a 64-bit word to the open interval (0,1): the top 52 bits
// become the lattice index, offset by half a step so neither endpoint is
// reachable — both (0+0.5)/2^52 and (2^52-1+0.5)/2^52 are exactly
// representable, which a 53-bit lattice cannot guarantee — and the quantile
// transform stays finite.
func uniform53(x uint64) float64 {
	return (float64(x>>12) + 0.5) / (1 << 52)
}
