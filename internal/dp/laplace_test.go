package dp

import (
	"math"
	"testing"

	"pgpub/internal/par"
)

// TestLaplaceQuantileFixture pins the inverse-CDF sampler to hand-computed
// quantiles: Q(1/2) = 0, Q(3/4) = b·ln 2 ≈ 0.693·b, Q(0.99) = b·ln 50 ≈
// 3.912·b, with the symmetric negatives at 1/4 and 0.01. The literals are
// written out (not recomputed via math.Log) so a regression in the sampler
// cannot hide behind the same bug in the expectation.
func TestLaplaceQuantileFixture(t *testing.T) {
	const (
		ln2  = 0.6931471805599453
		ln50 = 3.9120230054281460
	)
	cases := []struct {
		u, b, want float64
	}{
		{0.01, 1, -ln50},
		{0.25, 1, -ln2},
		{0.50, 1, 0},
		{0.75, 1, ln2},
		{0.99, 1, ln50},
		{0.01, 2, -2 * ln50},
		{0.25, 2, -2 * ln2},
		{0.50, 2, 0},
		{0.75, 2, 2 * ln2},
		{0.99, 2, 2 * ln50},
	}
	for _, c := range cases {
		got := LaplaceQuantile(c.u, c.b)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("LaplaceQuantile(%v, %v) = %v, want %v", c.u, c.b, got, c.want)
		}
	}
}

// TestLaplaceMomentsSmoke samples the full pipeline — splitmix64 stream →
// uniform53 → quantile — and checks the first two moments: mean ≈ 0 and
// variance ≈ 2b². Tolerances are 5 standard errors of each estimator
// (Var(x̄) = 2b²/N; Var(s²) ≈ 20b⁴/N for Laplace, whose fourth central
// moment is 24b⁴), and the stream is a fixed seed, so the test is exact in
// practice and the bound only documents why the tolerance is sound.
func TestLaplaceMomentsSmoke(t *testing.T) {
	const (
		n = 200_000
		b = 2.0
	)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		u := uniform53(uint64(par.SplitSeed(12345, i)))
		x := LaplaceQuantile(u, b)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if tol := 5 * math.Sqrt(2*b*b/n); math.Abs(mean) > tol {
		t.Errorf("sample mean %v exceeds %v", mean, tol)
	}
	wantVar := 2 * b * b
	if tol := 5 * math.Sqrt(20/float64(n)) * b * b; math.Abs(variance-wantVar) > tol {
		t.Errorf("sample variance %v, want %v ± %v", variance, wantVar, tol)
	}
}

// TestUniformOpenInterval: every derived u must stay strictly inside (0,1)
// so the quantile transform never produces ±Inf.
func TestUniformOpenInterval(t *testing.T) {
	m := Mechanism{Seed: 7, CRC: 0xDEADBEEF}
	for i := 0; i < 1000; i++ {
		u := m.Uniform("key", "query", i)
		if !(u > 0 && u < 1) {
			t.Fatalf("draw %d: u = %v outside (0,1)", i, u)
		}
	}
	if u := uniform53(0); !(u > 0) {
		t.Errorf("uniform53(0) = %v, want > 0", u)
	}
	if u := uniform53(math.MaxUint64); !(u < 1) {
		t.Errorf("uniform53(MaxUint64) = %v, want < 1", u)
	}
}

// TestMechanismKeying pins the anti-averaging property and its converse:
// identical (seed, key, query, CRC, draw) tuples produce the identical
// draw, and changing any single component re-keys the noise.
func TestMechanismKeying(t *testing.T) {
	m := Mechanism{Seed: 42, CRC: 0x1234}
	base := m.Noise("alice", "q1", 0, 1)
	if again := m.Noise("alice", "q1", 0, 1); again != base {
		t.Errorf("identical draw not deterministic: %v then %v", base, again)
	}
	variants := map[string]float64{
		"api key":  m.Noise("bob", "q1", 0, 1),
		"query":    m.Noise("alice", "q2", 0, 1),
		"draw":     m.Noise("alice", "q1", 1, 1),
		"crc":      Mechanism{Seed: 42, CRC: 0x1235}.Noise("alice", "q1", 0, 1),
		"rootseed": Mechanism{Seed: 43, CRC: 0x1234}.Noise("alice", "q1", 0, 1),
	}
	for what, v := range variants {
		if v == base {
			t.Errorf("changing the %s did not change the draw (%v)", what, v)
		}
	}
	if m.Noise("alice", "q1", 0, 0) != 0 {
		t.Errorf("zero scale must add no noise")
	}
	if got, want := m.Noise("alice", "q1", 0, 3), 3*m.Noise("alice", "q1", 0, 1); got != want {
		t.Errorf("scale must be linear in b: got %v, want %v", got, want)
	}
}
