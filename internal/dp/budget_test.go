package dp

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pgpub/internal/obs"
)

func TestParseBudgets(t *testing.T) {
	l, err := ParseBudgets(strings.NewReader(`
# analysts
alice 0.5 0.1   # five queries
bob   100 0.25
`))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("parsed %d keys, want 2", l.Len())
	}
	if got := l.Keys(); got[0] != "alice" || got[1] != "bob" {
		t.Errorf("Keys() = %v", got)
	}
	a := l.Key("alice")
	if a == nil || a.Total != 0.5 || a.PerQuery != 0.1 {
		t.Errorf("alice = %+v", a)
	}
	if l.Key("mallory") != nil {
		t.Errorf("unknown key resolved")
	}

	for _, bad := range []string{
		"",                           // no keys
		"alice 0.5",                  // missing field
		"alice 0.5 0.1 extra",        // trailing field
		"alice 0.5 0.1\nalice 1 0.1", // duplicate
		"alice zero 0.1",             // unparsable total
		"alice 0.5 tiny",             // unparsable per-query
		"alice 0 0.1",                // zero total
		"alice -1 0.1",               // negative total
		"alice 0.5 0",                // zero per-query
		"alice 0.5 0.6",              // per-query above total
		"alice +Inf 1",               // infinite total
	} {
		if _, err := ParseBudgets(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseBudgets(%q) accepted", bad)
		}
	}
}

// TestSpendBoundary walks a budget to its edge with binary-exact values so
// float arithmetic is exact: 16.0 total at 0.25 per spend grants exactly 64
// charges, the 64th reports remaining == 0, and the 65th is refused without
// touching the account.
func TestSpendBoundary(t *testing.T) {
	b := &Budget{Key: "k", Total: 16, PerQuery: 0.25}
	for i := 1; i <= 64; i++ {
		ok, rem := b.Spend(0.25)
		if !ok {
			t.Fatalf("spend %d refused with %v remaining", i, b.Remaining())
		}
		if want := 16 - 0.25*float64(i); rem != want {
			t.Fatalf("spend %d: remaining %v, want %v", i, rem, want)
		}
	}
	if ok, rem := b.Spend(0.25); ok || rem != 0 {
		t.Fatalf("spend past the boundary granted (ok=%v rem=%v)", ok, rem)
	}
	if b.Spent() != 16 {
		t.Fatalf("spent %v, want exactly 16", b.Spent())
	}
}

// TestBudgetBurst is the -race accounting test: many goroutines spending
// concurrently never over-spend ε_total, exactly Total/PerQuery charges are
// granted, and exactly one of them observes the exhaustion boundary
// (remaining == 0). Run with -race this also proves the CAS loop is clean.
func TestBudgetBurst(t *testing.T) {
	const (
		goroutines = 64
		perQuery   = 0.25
		total      = 16.0 // exactly 64 grants, binary-exact arithmetic
	)
	reg := obs.NewRegistry()
	l, err := ParseBudgets(strings.NewReader("burst 16 0.25"))
	if err != nil {
		t.Fatal(err)
	}
	l.Instrument(reg)
	b := l.Key("burst")

	var granted, sawZero atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ok, rem := l.Charge(b, perQuery)
				if !ok {
					return
				}
				granted.Add(1)
				if rem == 0 {
					sawZero.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	if want := int64(total / perQuery); granted.Load() != want {
		t.Errorf("%d charges granted, want %d", granted.Load(), want)
	}
	if sawZero.Load() != 1 {
		t.Errorf("%d spenders observed the exhaustion boundary, want exactly 1", sawZero.Load())
	}
	if b.Spent() != total {
		t.Errorf("spent %v, want exactly %v — over- or under-spend under concurrency", b.Spent(), total)
	}
	if got := reg.Counter("dp.exhausted").Value(); got < goroutines {
		t.Errorf("dp.exhausted = %d, want ≥ %d (every goroutine ends on a refusal)", got, goroutines)
	}
	if got := reg.Histogram("dp.spend", "microeps").Count(); got != int64(total/perQuery) {
		t.Errorf("dp.spend recorded %d charges, want %d", got, int64(total/perQuery))
	}
}

// TestLedgerMetricsSequential pins the gauge/histogram bookkeeping where it
// is exact: with one spender, dp.remaining tracks the account and dp.spend
// accumulates the charges in micro-ε.
func TestLedgerMetricsSequential(t *testing.T) {
	reg := obs.NewRegistry()
	l, err := ParseBudgets(strings.NewReader("seq 1 0.5"))
	if err != nil {
		t.Fatal(err)
	}
	l.Instrument(reg)
	g := reg.Gauge("dp.remaining.seq")
	if g.Value() != 1_000_000 {
		t.Fatalf("initial gauge %d µε, want 1000000", g.Value())
	}
	b := l.Key("seq")
	l.Charge(b, 0.5)
	if g.Value() != 500_000 {
		t.Errorf("gauge %d µε after one charge, want 500000", g.Value())
	}
	l.Charge(b, 0.5)
	if g.Value() != 0 {
		t.Errorf("gauge %d µε after exhaustion, want 0", g.Value())
	}
	if ok, _ := l.Charge(b, 0.5); ok {
		t.Errorf("charge granted past exhaustion")
	}
	if got := reg.Counter("dp.exhausted").Value(); got != 1 {
		t.Errorf("dp.exhausted = %d, want 1", got)
	}
	if got := reg.Histogram("dp.spend", "microeps").Sum(); got != 1_000_000 {
		t.Errorf("dp.spend sum = %d µε, want 1000000", got)
	}
}
