// Package sampling implements Phase 3 of perturbed generalization:
// stratified sampling over QI-groups (steps S1–S4 of the paper, after
// Chaudhuri et al. [8]), plus the simple-random-sampling baseline the paper
// uses when discussing the trivial s < 1 solution for generalization.
package sampling

import (
	"fmt"
	"math/rand"

	"pgpub/internal/par"
)

// Stratum is one sampled QI-group: the row chosen at step S2 and the group
// size stored in the published attribute G (step S3).
type Stratum struct {
	// Row is the index (into the grouped table) of the sampled tuple.
	Row int
	// GroupSize is t.G: the cardinality of the source QI-group.
	GroupSize int
	// Group identifies the source QI-group (index into the Groups the
	// sample was drawn from).
	Group int
}

// Stratified draws one uniformly random tuple from each group (S1–S4). The
// groups are given as row-index lists; the result has exactly one Stratum
// per group, in group order.
func Stratified(groups [][]int, rng *rand.Rand) ([]Stratum, error) {
	out := make([]Stratum, 0, len(groups))
	for gi, rows := range groups {
		if len(rows) == 0 {
			return nil, fmt.Errorf("sampling: group %d is empty", gi)
		}
		out = append(out, Stratum{
			Row:       rows[rng.Intn(len(rows))],
			GroupSize: len(rows),
			Group:     gi,
		})
	}
	return out, nil
}

// ShardGroups is the fixed shard size of StratifiedSeeded, part of the
// determinism contract (see perturb.ShardRows).
const ShardGroups = 256

// StratifiedSeeded is Stratified with deterministic parallelism: the groups
// are cut into fixed shards of ShardGroups, shard i samples its groups with
// a private rand.Rand seeded par.SplitSeed(rootSeed, i), and at most workers
// goroutines execute the shards. The draw for each group depends only on
// rootSeed and the group order — not on the worker count — so sequential and
// parallel runs select the same representatives.
func StratifiedSeeded(groups [][]int, rootSeed int64, workers int) ([]Stratum, error) {
	out := make([]Stratum, len(groups))
	shards := (len(groups) + ShardGroups - 1) / ShardGroups
	err := par.ForEachErr(workers, shards, func(s int) error {
		rng := rand.New(rand.NewSource(par.SplitSeed(rootSeed, s)))
		hi := (s + 1) * ShardGroups
		if hi > len(groups) {
			hi = len(groups)
		}
		for gi := s * ShardGroups; gi < hi; gi++ {
			rows := groups[gi]
			if len(rows) == 0 {
				return fmt.Errorf("sampling: group %d is empty", gi)
			}
			out[gi] = Stratum{
				Row:       rows[rng.Intn(len(rows))],
				GroupSize: len(rows),
				Group:     gi,
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SRS draws a simple random sample of n distinct indices from [0, total),
// the baseline the paper's "trivial solution" and the optimistic/pessimistic
// yardsticks use.
func SRS(total, n int, rng *rand.Rand) ([]int, error) {
	if n < 0 || n > total {
		return nil, fmt.Errorf("sampling: cannot draw %d from %d", n, total)
	}
	perm := rng.Perm(total)
	out := append([]int(nil), perm[:n]...)
	return out, nil
}
