package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStratifiedBasic(t *testing.T) {
	groups := [][]int{{0, 1, 2}, {3}, {4, 5}}
	rng := rand.New(rand.NewSource(1))
	s, err := Stratified(groups, rng)
	if err != nil {
		t.Fatalf("Stratified: %v", err)
	}
	if len(s) != 3 {
		t.Fatalf("strata = %d, want 3", len(s))
	}
	for gi, st := range s {
		if st.Group != gi {
			t.Fatalf("stratum %d has Group %d", gi, st.Group)
		}
		if st.GroupSize != len(groups[gi]) {
			t.Fatalf("stratum %d GroupSize = %d, want %d", gi, st.GroupSize, len(groups[gi]))
		}
		found := false
		for _, r := range groups[gi] {
			if r == st.Row {
				found = true
			}
		}
		if !found {
			t.Fatalf("stratum %d sampled row %d outside its group", gi, st.Row)
		}
	}
}

func TestStratifiedEmptyGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Stratified([][]int{{0}, {}}, rng); err == nil {
		t.Fatal("empty group: want error")
	}
}

func TestStratifiedUniformity(t *testing.T) {
	// Each member of a group of 4 should be drawn ~uniformly (step S2).
	group := [][]int{{10, 11, 12, 13}}
	rng := rand.New(rand.NewSource(99))
	counts := map[int]int{}
	const trials = 40000
	for i := 0; i < trials; i++ {
		s, err := Stratified(group, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[s[0].Row]++
	}
	for r, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.25) > 0.01 {
			t.Fatalf("row %d frequency %v, want 0.25", r, got)
		}
	}
}

func TestSRS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := SRS(10, 4, rng)
	if err != nil || len(s) != 4 {
		t.Fatalf("SRS: %v len=%d", err, len(s))
	}
	seen := map[int]bool{}
	for _, i := range s {
		if i < 0 || i >= 10 || seen[i] {
			t.Fatalf("bad draw %d", i)
		}
		seen[i] = true
	}
	if _, err := SRS(5, 6, rng); err == nil {
		t.Fatal("n > total: want error")
	}
	if _, err := SRS(5, -1, rng); err == nil {
		t.Fatal("negative n: want error")
	}
	if out, err := SRS(5, 0, rng); err != nil || len(out) != 0 {
		t.Fatal("n = 0 should draw nothing")
	}
}

// Property: stratified sampling always emits one stratum per group with the
// correct G value (the invariant behind the published attribute t.G).
func TestStratifiedInvariant(t *testing.T) {
	f := func(seed int64, sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		rng := rand.New(rand.NewSource(seed))
		next := 0
		groups := make([][]int, 0, len(sizes))
		for _, raw := range sizes {
			n := int(raw%5) + 1
			g := make([]int, n)
			for i := range g {
				g[i] = next
				next++
			}
			groups = append(groups, g)
		}
		s, err := Stratified(groups, rng)
		if err != nil || len(s) != len(groups) {
			return false
		}
		for gi, st := range s {
			if st.GroupSize != len(groups[gi]) {
				return false
			}
			if st.Row < groups[gi][0] || st.Row > groups[gi][len(groups[gi])-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
