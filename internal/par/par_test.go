package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestN(t *testing.T) {
	if N(0) != runtime.GOMAXPROCS(0) {
		t.Fatalf("N(0) = %d, want GOMAXPROCS = %d", N(0), runtime.GOMAXPROCS(0))
	}
	if N(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("negative workers must default to GOMAXPROCS")
	}
	if N(5) != 5 {
		t.Fatalf("N(5) = %d", N(5))
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 1000} {
			hits := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachErrReportsSmallestIndex(t *testing.T) {
	// Regardless of scheduling, the error from index 3 must win over 7.
	for trial := 0; trial < 20; trial++ {
		err := ForEachErr(8, 10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("trial %d: err = %v, want fail at 3", trial, err)
		}
	}
	if err := ForEachErr(4, 50, func(int) error { return nil }); err != nil {
		t.Fatalf("no-failure run returned %v", err)
	}
}

func TestForEachErrRunsEverythingDespiteFailure(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("boom")
	err := ForEachErr(4, 100, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100 indices; no early cancellation allowed", ran.Load())
	}
}

func TestSplitSeedDistinctAndStable(t *testing.T) {
	seen := map[int64]int{}
	for shard := 0; shard < 10000; shard++ {
		s := SplitSeed(42, shard)
		if prev, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d collide on seed %d", prev, shard, s)
		}
		seen[s] = shard
	}
	if SplitSeed(42, 7) != SplitSeed(42, 7) {
		t.Fatal("SplitSeed must be pure")
	}
	if SplitSeed(42, 7) == SplitSeed(43, 7) {
		t.Fatal("different roots should split differently")
	}
}

func TestSpawnDepth(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 2, 3: 3, 4: 3, 8: 4, 9: 5, 16: 5}
	for workers, want := range cases {
		if got := SpawnDepth(workers); got != want {
			t.Fatalf("SpawnDepth(%d) = %d, want %d", workers, got, want)
		}
	}
}
