// Package par is the repository's one concurrency idiom: a minimal
// work-distributing loop over an index range plus the deterministic
// seed-splitting scheme the pipeline uses to keep parallel randomness
// reproducible. Every parallel stage in the codebase — Phase 1/3 sharding in
// pg.Publish, the Monte-Carlo attack validation, the experiment sweeps — is
// expressed through ForEach/ForEachErr so there is exactly one place where
// goroutine fan-out, panic plumbing, and worker accounting live.
//
// # Deterministic seed splitting
//
// Parallel pipelines must not let the schedule touch the random streams:
// results have to be byte-identical whether one worker or sixteen ran the
// shards. The scheme used throughout is *fixed sharding + splitmix64 seed
// derivation*: work is cut into shards of a fixed size (independent of the
// worker count), and shard i draws its own rand.Rand seeded with
// SplitSeed(root, i). Workers only decide who executes a shard, never which
// stream it consumes, so sequential and parallel runs agree bit for bit.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// N resolves a worker-count knob: values <= 0 mean runtime.GOMAXPROCS(0).
func N(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n), distributing the indices over at
// most workers goroutines (clamped to n; workers <= 1 runs inline). Indices
// are handed out through an atomic counter, so call order across goroutines
// is unspecified — fn must only write state owned by its own index. ForEach
// returns when every call has finished.
func ForEach(workers, n int, fn func(i int)) {
	workers = N(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr is ForEach for fallible work. Every index runs regardless of
// failures elsewhere (no early cancellation — results stay deterministic),
// and the error reported is the one from the smallest failing index, so the
// returned error does not depend on goroutine scheduling.
func ForEachErr(workers, n int, fn func(i int) error) error {
	var mu sync.Mutex
	firstIdx := -1
	var firstErr error
	ForEach(workers, n, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if firstIdx == -1 || i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
		}
	})
	return firstErr
}

// SplitSeed derives the RNG seed of shard i from a root seed with one
// splitmix64 step: state = root + (i+1)·golden, finalized with the standard
// splitmix64 mixer. Distinct shards get statistically independent streams,
// and the derivation is pure — no shared generator to contend on, no
// schedule sensitivity.
func SplitSeed(root int64, shard int) int64 {
	z := uint64(root) + (uint64(shard)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// SpawnDepth translates a worker count into a recursion spawn depth for
// divide-and-conquer algorithms (generalize.KDPartitionParallel): the
// smallest depth whose 2^depth leaf tasks cover the workers, plus one level
// of slack for load balancing. 0 or 1 workers mean fully serial (depth 0).
func SpawnDepth(workers int) int {
	if workers <= 1 {
		return 0
	}
	d := 0
	for 1<<d < workers {
		d++
	}
	return d + 1
}
