package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"pgpub/internal/attackfleet"
	"pgpub/internal/dataset"
	"pgpub/internal/generalize"
	"pgpub/internal/hierarchy"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/sal"
	"pgpub/internal/snapshot"
)

// PerfResult is one timed pipeline stage. NsPerOp mirrors the unit of a
// `go test -bench` line so perf trackers can ingest either source. Every
// block carries its own concurrency header — Workers (the effective worker
// count the stage ran with), NumCPU and GoMaxProcs — because a tracked
// report accumulates runs at different worker counts (the 1/4/16 trajectory)
// and a block's numbers are meaningless without the parallelism they were
// measured under.
type PerfResult struct {
	Name       string  `json:"name"`
	Rows       int     `json:"rows"`
	Iters      int     `json:"iters"`
	NsPerOp    float64 `json:"ns_per_op"`
	Workers    int     `json:"workers"`
	NumCPU     int     `json:"num_cpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
}

// PerfReport is the machine-readable output of the perf experiment
// (pgbench -exp perf -benchout BENCH_pg.json). The file-level fields are the
// report's identity — machine (GoVersion, NumCPU) and workload (N, Seed, K).
// MergePerf refuses to mix runs whose identities differ, so a tracked file
// never silently blends measurements from different machines or workloads;
// concurrency varies per result block and is recorded there.
type PerfReport struct {
	GoVersion string       `json:"go_version"`
	NumCPU    int          `json:"num_cpu"`
	N         int          `json:"n"`
	Seed      int64        `json:"seed"`
	K         int          `json:"k"`
	Results   []PerfResult `json:"results"`
	// Serve holds the network serving-layer load-test levels (pgbench -exp
	// serve); empty until that experiment has been run against this report.
	Serve []ServeLoadResult `json:"serve,omitempty"`
	// Fleet holds the adversary-at-scale breach curves (pgattack -exp fleet
	// -benchout), one report per (n, algorithm); empty until the fleet has
	// been run against this report.
	Fleet []*attackfleet.Report `json:"fleet,omitempty"`
	// Shard holds the sharded-serving scaling levels and hedging
	// demonstration (pgbench -exp shard); nil until that experiment has been
	// run against this report.
	Shard *ShardLoadReport `json:"shard,omitempty"`
	// Repub holds the multi-release breach-vs-release-count curves
	// (pgattack -exp repub -benchout), one report per (n, algorithm,
	// releases); empty until that experiment has been run against this
	// report.
	Repub []*attackfleet.MultiReleaseReport `json:"repub,omitempty"`
	// DP holds the DP-vs-PG utility study (pgbench -exp dp); nil until that
	// experiment has been run against this report.
	DP *DPReport `json:"dp,omitempty"`
}

// MergePerf folds a fresh perf run into a tracked report: a run block
// replaces the tracked block with the same (name, workers) pair, other
// blocks and the serve/fleet/shard/repub sections are preserved. It refuses
// to merge
// when any identity field differs — a silent mix of machines or workloads
// would make the trajectory meaningless; regenerate the file instead.
func MergePerf(file, run *PerfReport) (*PerfReport, error) {
	if file == nil || len(file.Results) == 0 && file.GoVersion == "" {
		out := *run
		if file != nil {
			out.Serve, out.Fleet, out.Shard, out.Repub, out.DP = file.Serve, file.Fleet, file.Shard, file.Repub, file.DP
		}
		return &out, nil
	}
	type ident struct {
		field      string
		have, want any
	}
	for _, id := range []ident{
		{"go_version", file.GoVersion, run.GoVersion},
		{"num_cpu", file.NumCPU, run.NumCPU},
		{"n", file.N, run.N},
		{"seed", file.Seed, run.Seed},
		{"k", file.K, run.K},
	} {
		if id.have != id.want {
			return nil, fmt.Errorf("refusing to merge perf runs: tracked report has %s=%v, this run %v — delete the file or rerun with matching parameters",
				id.field, id.have, id.want)
		}
	}
	out := *file
	out.Results = append([]PerfResult(nil), file.Results...)
	for _, r := range run.Results {
		replaced := false
		for i, old := range out.Results {
			if old.Name == r.Name && old.Workers == r.Workers {
				out.Results[i] = r
				replaced = true
				break
			}
		}
		if !replaced {
			out.Results = append(out.Results, r)
		}
	}
	return &out, nil
}

// PerfConfig parameterizes the perf experiment.
type PerfConfig struct {
	// N is the SAL microdata cardinality for the primitive stages.
	N int
	// ColdN, when positive, enables the heavy scale stages: publish-1m
	// (one full publish at ColdN rows) and serve-coldstart-parse /
	// serve-coldstart-mmap (snapshot load to index-ready, both paths, on the
	// ColdN snapshot). The stage names stay fixed for trackers; Rows records
	// the actual cardinality. The tracked BENCH_pg.json entries use 1000000.
	ColdN int
	// Seed is the generator seed.
	Seed int64
	// K is the anonymity parameter.
	K int
	// Iters is the per-stage iteration count (NsPerOp is the mean).
	Iters int
	// Workers is the worker-goroutine setting (0 = GOMAXPROCS); the
	// effective value lands in each result block.
	Workers int
	// Metrics, when non-nil, is wired through every stage (pg.Config.Metrics,
	// the Phase-2 algorithm configs, query.NewIndexObserved), so the caller
	// can dump the pipeline's internal counters and phase histograms after
	// the run — `pgbench -exp perf -metrics` does exactly this.
	Metrics *obs.Registry
}

// Perf times the hot Phase-2 primitives and the full pipeline on N SAL rows:
// grouping under mid-level cuts, TDS, the greedy full-domain search, Publish
// with the default KD algorithm — and Incognito on a skewed synthetic 3-QI
// table (the full SAL lattice over 8 attributes is not a realistic Incognito
// input). With ColdN set it also pins the scale story: one publish at ColdN
// rows and the snapshot cold start, parse path vs mmap path.
func Perf(cfg PerfConfig) (*PerfReport, error) {
	n, seed, k, iters, workers, met := cfg.N, cfg.Seed, cfg.K, cfg.Iters, cfg.Workers, cfg.Metrics
	if n <= 0 {
		n = 100000
	}
	if iters <= 0 {
		iters = 3
	}
	effWorkers := workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	rep := &PerfReport{
		GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		N: n, Seed: seed, K: k,
	}
	d, err := sal.Generate(n, seed)
	if err != nil {
		return nil, err
	}
	hiers := sal.Hierarchies(d.Schema)

	time1 := func(name string, rows, iters int, f func() error) error {
		var total time.Duration
		for it := 0; it < iters; it++ {
			start := time.Now()
			if err := f(); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			total += time.Since(start)
		}
		rep.Results = append(rep.Results, PerfResult{
			Name: name, Rows: rows, Iters: iters,
			NsPerOp: float64(total.Nanoseconds()) / float64(iters),
			Workers: effWorkers, NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		})
		return nil
	}

	cuts := make([]*hierarchy.Cut, len(hiers))
	for j, h := range hiers {
		if cuts[j], err = hierarchy.LevelCut(h, (h.Height()+1)/2); err != nil {
			return nil, err
		}
	}
	rec, err := generalize.NewRecoding(d.Schema, hiers, cuts)
	if err != nil {
		return nil, err
	}
	if err := time1("groupby-midcuts", n, iters, func() error {
		if generalize.GroupByWorkers(d, rec, workers).Len() == 0 {
			return fmt.Errorf("no groups")
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := time1("tds", n, iters, func() error {
		_, err := generalize.TDS(d, hiers, generalize.TDSConfig{K: k, Workers: workers, Metrics: met})
		return err
	}); err != nil {
		return nil, err
	}
	if err := time1("fulldomain-greedy", n, iters, func() error {
		_, err := generalize.SearchFullDomain(d, hiers, generalize.FullDomainConfig{
			Principle: generalize.KAnonymity{K: k}, Workers: workers, Metrics: met,
		})
		return err
	}); err != nil {
		return nil, err
	}
	var pub *pg.Published
	if err := time1("publish-kd", n, iters, func() error {
		pub, err = pg.Publish(d, hiers, pg.Config{K: k, P: 0.3, Seed: seed, Workers: workers, Metrics: met})
		return err
	}); err != nil {
		return nil, err
	}

	// Query-serving stages: the same 1k-query workload answered by the scan
	// estimator and by the precomputed index, plus the one-time index build.
	// Rows is the workload size for the serving stages, so ns_per_op/rows is
	// ns per query.
	const perfQueries = 1000
	qs, err := query.Workload(d.Schema, query.WorkloadConfig{
		Queries: perfQueries, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.4,
		Rng: rand.New(rand.NewSource(seed + 1)),
	})
	if err != nil {
		return nil, err
	}
	if err := time1("query-count-scan", perfQueries, iters, func() error {
		for _, q := range qs {
			if _, err := query.Estimate(pub, q); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var ix *query.Index
	if err := time1("query-index-build", n, iters, func() error {
		ix, err = query.NewIndexObserved(pub, met)
		return err
	}); err != nil {
		return nil, err
	}
	if err := time1("query-count-index", perfQueries, iters, func() error {
		for _, q := range qs {
			if _, err := ix.Count(q); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := time1("query-workload", perfQueries, iters, func() error {
		_, err := ix.AnswerWorkload(qs, workers)
		return err
	}); err != nil {
		return nil, err
	}

	synth, synthHiers := perfIncognitoTable(n, seed)
	if err := time1("incognito-synth3qi", n, iters, func() error {
		_, err := generalize.Incognito(synth, synthHiers, generalize.IncognitoConfig{K: k, Workers: workers, Metrics: met})
		return err
	}); err != nil {
		return nil, err
	}

	// Scale stages: one publish at ColdN rows, then the serving cold start
	// from its snapshot — the parse path (Load + index build) against the
	// mmap path (OpenMapped adopts columns and index in place).
	if cfg.ColdN > 0 {
		big, err := sal.Generate(cfg.ColdN, seed)
		if err != nil {
			return nil, err
		}
		var bigPub *pg.Published
		if err := time1("publish-1m", cfg.ColdN, 1, func() error {
			bigPub, err = pg.Publish(big, sal.Hierarchies(big.Schema), pg.Config{K: k, P: 0.3, Seed: seed, Workers: workers, Metrics: met})
			return err
		}); err != nil {
			return nil, err
		}
		tmp, err := os.CreateTemp("", "pgbench-*.pgsnap")
		if err != nil {
			return nil, err
		}
		path := tmp.Name()
		tmp.Close()
		defer os.Remove(path)
		if err := time1("snapshot-save-1m", cfg.ColdN, 1, func() error {
			return snapshot.Save(path, bigPub, nil)
		}); err != nil {
			return nil, err
		}
		if err := time1("serve-coldstart-parse", cfg.ColdN, iters, func() error {
			pub, _, err := snapshot.Load(path)
			if err != nil {
				return err
			}
			_, err = query.NewIndex(pub)
			return err
		}); err != nil {
			return nil, err
		}
		if err := time1("serve-coldstart-mmap", cfg.ColdN, iters, func() error {
			m, err := snapshot.OpenMapped(path)
			if err != nil {
				return err
			}
			if m.Index.Groups() < 0 {
				return fmt.Errorf("impossible")
			}
			return m.Close()
		}); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// RenderPerf formats the perf report as a table.
func RenderPerf(rep *PerfReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s, %d CPUs, n=%d, seed=%d, k=%d\n",
		rep.GoVersion, rep.NumCPU, rep.N, rep.Seed, rep.K)
	fmt.Fprintf(&b, "%-22s %10s %7s %8s %5s %14s\n", "stage", "rows", "iters", "workers", "gmp", "ms/op")
	for _, r := range rep.Results {
		fmt.Fprintf(&b, "%-22s %10d %7d %8d %5d %14.2f\n",
			r.Name, r.Rows, r.Iters, r.Workers, r.GoMaxProcs, r.NsPerOp/1e6)
	}
	return b.String()
}

// perfIncognitoTable builds the skewed 3-QI synthetic table the Incognito
// stage runs on; exponential skew leaves rare tail values so the lattice
// search has real work to do.
func perfIncognitoTable(n int, seed int64) (*dataset.Table, []*hierarchy.Hierarchy) {
	s := dataset.MustSchema(
		[]*dataset.Attribute{
			dataset.MustIntAttribute("A", 0, 15),
			dataset.MustIntAttribute("B", 0, 7),
			dataset.MustIntAttribute("C", 0, 7),
		},
		dataset.MustAttribute("S", "s0", "s1", "s2", "s3"),
	)
	tbl := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(seed))
	draw := func(size int) int32 {
		v := int(rng.ExpFloat64() * float64(size) / 5)
		if v >= size {
			v = size - 1
		}
		return int32(v)
	}
	for i := 0; i < n; i++ {
		tbl.MustAppend([]int32{draw(16), draw(8), draw(8), int32(rng.Intn(4))})
	}
	return tbl, []*hierarchy.Hierarchy{
		hierarchy.MustInterval(16, 2, 4, 8),
		hierarchy.MustInterval(8, 2, 4),
		hierarchy.MustBalanced(8, 2),
	}
}
