package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"pgpub/internal/attackfleet"
	"pgpub/internal/dataset"
	"pgpub/internal/generalize"
	"pgpub/internal/hierarchy"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/sal"
)

// PerfResult is one timed pipeline stage. NsPerOp mirrors the unit of a
// `go test -bench` line so perf trackers can ingest either source.
type PerfResult struct {
	Name    string  `json:"name"`
	Rows    int     `json:"rows"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// PerfReport is the machine-readable output of the perf experiment
// (pgbench -exp perf -benchout BENCH_pg.json). Workers is the -workers
// setting the stages ran with (0 = GOMAXPROCS) and GoMaxProcs the runtime's
// effective parallelism, so a tracked report states the concurrency it was
// measured under.
type PerfReport struct {
	GoVersion  string       `json:"go_version"`
	NumCPU     int          `json:"num_cpu"`
	Workers    int          `json:"workers"`
	GoMaxProcs int          `json:"gomaxprocs"`
	N          int          `json:"n"`
	Seed       int64        `json:"seed"`
	K          int          `json:"k"`
	Results    []PerfResult `json:"results"`
	// Serve holds the network serving-layer load-test levels (pgbench -exp
	// serve); empty until that experiment has been run against this report.
	Serve []ServeLoadResult `json:"serve,omitempty"`
	// Fleet holds the adversary-at-scale breach curves (pgattack -exp fleet
	// -benchout), one report per (n, algorithm); empty until the fleet has
	// been run against this report.
	Fleet []*attackfleet.Report `json:"fleet,omitempty"`
}

// Perf times the hot Phase-2 primitives and the full pipeline on n SAL rows:
// grouping under mid-level cuts, TDS, the greedy full-domain search, Publish
// with the default KD algorithm — and Incognito on a skewed synthetic 3-QI
// table (the full SAL lattice over 8 attributes is not a realistic Incognito
// input). Each stage runs iters times; NsPerOp is the mean.
//
// met, when non-nil, is wired through every stage (pg.Config.Metrics, the
// Phase-2 algorithm configs, query.NewIndexObserved), so the caller can dump
// the pipeline's internal counters and phase histograms after the run —
// `pgbench -exp perf -metrics` does exactly this. nil disables.
func Perf(n int, seed int64, k, iters, workers int, met *obs.Registry) (*PerfReport, error) {
	if n <= 0 {
		n = 100000
	}
	if iters <= 0 {
		iters = 3
	}
	rep := &PerfReport{
		GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		Workers: workers, GoMaxProcs: runtime.GOMAXPROCS(0),
		N: n, Seed: seed, K: k,
	}
	d, err := sal.Generate(n, seed)
	if err != nil {
		return nil, err
	}
	hiers := sal.Hierarchies(d.Schema)

	time1 := func(name string, rows, iters int, f func() error) error {
		var total time.Duration
		for it := 0; it < iters; it++ {
			start := time.Now()
			if err := f(); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			total += time.Since(start)
		}
		rep.Results = append(rep.Results, PerfResult{
			Name: name, Rows: rows, Iters: iters,
			NsPerOp: float64(total.Nanoseconds()) / float64(iters),
		})
		return nil
	}

	cuts := make([]*hierarchy.Cut, len(hiers))
	for j, h := range hiers {
		if cuts[j], err = hierarchy.LevelCut(h, (h.Height()+1)/2); err != nil {
			return nil, err
		}
	}
	rec, err := generalize.NewRecoding(d.Schema, hiers, cuts)
	if err != nil {
		return nil, err
	}
	if err := time1("groupby-midcuts", n, iters, func() error {
		if generalize.GroupByWorkers(d, rec, workers).Len() == 0 {
			return fmt.Errorf("no groups")
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := time1("tds", n, iters, func() error {
		_, err := generalize.TDS(d, hiers, generalize.TDSConfig{K: k, Workers: workers, Metrics: met})
		return err
	}); err != nil {
		return nil, err
	}
	if err := time1("fulldomain-greedy", n, iters, func() error {
		_, err := generalize.SearchFullDomain(d, hiers, generalize.FullDomainConfig{
			Principle: generalize.KAnonymity{K: k}, Workers: workers, Metrics: met,
		})
		return err
	}); err != nil {
		return nil, err
	}
	var pub *pg.Published
	if err := time1("publish-kd", n, iters, func() error {
		pub, err = pg.Publish(d, hiers, pg.Config{K: k, P: 0.3, Seed: seed, Workers: workers, Metrics: met})
		return err
	}); err != nil {
		return nil, err
	}

	// Query-serving stages: the same 1k-query workload answered by the scan
	// estimator and by the precomputed index, plus the one-time index build.
	// Rows is the workload size for the serving stages, so ns_per_op/rows is
	// ns per query.
	const perfQueries = 1000
	qs, err := query.Workload(d.Schema, query.WorkloadConfig{
		Queries: perfQueries, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.4,
		Rng: rand.New(rand.NewSource(seed + 1)),
	})
	if err != nil {
		return nil, err
	}
	if err := time1("query-count-scan", perfQueries, iters, func() error {
		for _, q := range qs {
			if _, err := query.Estimate(pub, q); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var ix *query.Index
	if err := time1("query-index-build", n, iters, func() error {
		ix, err = query.NewIndexObserved(pub, met)
		return err
	}); err != nil {
		return nil, err
	}
	if err := time1("query-count-index", perfQueries, iters, func() error {
		for _, q := range qs {
			if _, err := ix.Count(q); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := time1("query-workload", perfQueries, iters, func() error {
		_, err := ix.AnswerWorkload(qs, workers)
		return err
	}); err != nil {
		return nil, err
	}

	synth, synthHiers := perfIncognitoTable(n, seed)
	if err := time1("incognito-synth3qi", n, iters, func() error {
		_, err := generalize.Incognito(synth, synthHiers, generalize.IncognitoConfig{K: k, Workers: workers, Metrics: met})
		return err
	}); err != nil {
		return nil, err
	}
	return rep, nil
}

// RenderPerf formats the perf report as a table.
func RenderPerf(rep *PerfReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s, %d CPUs, workers=%d, gomaxprocs=%d, n=%d, seed=%d, k=%d\n",
		rep.GoVersion, rep.NumCPU, rep.Workers, rep.GoMaxProcs, rep.N, rep.Seed, rep.K)
	fmt.Fprintf(&b, "%-20s %10s %7s %14s\n", "stage", "rows", "iters", "ms/op")
	for _, r := range rep.Results {
		fmt.Fprintf(&b, "%-20s %10d %7d %14.2f\n", r.Name, r.Rows, r.Iters, r.NsPerOp/1e6)
	}
	return b.String()
}

// perfIncognitoTable builds the skewed 3-QI synthetic table the Incognito
// stage runs on; exponential skew leaves rare tail values so the lattice
// search has real work to do.
func perfIncognitoTable(n int, seed int64) (*dataset.Table, []*hierarchy.Hierarchy) {
	s := dataset.MustSchema(
		[]*dataset.Attribute{
			dataset.MustIntAttribute("A", 0, 15),
			dataset.MustIntAttribute("B", 0, 7),
			dataset.MustIntAttribute("C", 0, 7),
		},
		dataset.MustAttribute("S", "s0", "s1", "s2", "s3"),
	)
	tbl := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(seed))
	draw := func(size int) int32 {
		v := int(rng.ExpFloat64() * float64(size) / 5)
		if v >= size {
			v = size - 1
		}
		return int32(v)
	}
	for i := 0; i < n; i++ {
		tbl.MustAppend([]int32{draw(16), draw(8), draw(8), int32(rng.Intn(4))})
	}
	return tbl, []*hierarchy.Hierarchy{
		hierarchy.MustInterval(16, 2, 4, 8),
		hierarchy.MustInterval(8, 2, 4),
		hierarchy.MustBalanced(8, 2),
	}
}
