package experiments

import (
	"strings"
	"testing"
)

// The serving experiment must produce a self-consistent report: the agreement
// check runs inside QueryServing, so a returned report already certifies the
// index matched the scan path; here we sanity-check the throughput fields.
func TestQueryServingExperiment(t *testing.T) {
	rep, err := QueryServing(5000, 200, 17, 6, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups <= 0 || rep.Groups > 5000 {
		t.Fatalf("groups = %d", rep.Groups)
	}
	if rep.ScanQPS <= 0 || rep.IndexQPS <= 0 || rep.WorkloadQPS <= 0 {
		t.Fatalf("non-positive throughput: %+v", rep)
	}
	if rep.Speedup <= 0 {
		t.Fatalf("speedup = %v", rep.Speedup)
	}
	if rep.MaxRelDiff > 1e-9 {
		t.Fatalf("max rel diff = %v", rep.MaxRelDiff)
	}
	txt := RenderServing(rep)
	for _, want := range []string{"queries/sec", "scan", "index+workers", "speedup"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("render missing %q:\n%s", want, txt)
		}
	}
}
