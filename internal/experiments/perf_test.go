package experiments

import (
	"strings"
	"testing"
)

func perfFixture(workers int, ns float64) *PerfReport {
	return &PerfReport{
		GoVersion: "go1.24.0", NumCPU: 1, N: 1000, Seed: 42, K: 6,
		Results: []PerfResult{
			{Name: "publish-kd", Rows: 1000, Iters: 3, NsPerOp: ns, Workers: workers, NumCPU: 1, GoMaxProcs: 1},
		},
	}
}

// TestMergePerfAccumulatesWorkerTrajectory pins the merge semantics behind
// the tracked BENCH_pg.json: runs at different -workers accumulate as
// separate blocks, a re-run at the same workers replaces its block, and the
// serve/fleet sections survive.
func TestMergePerfAccumulatesWorkerTrajectory(t *testing.T) {
	file := perfFixture(1, 100)
	file.Serve = []ServeLoadResult{{Clients: 4}}

	merged, err := MergePerf(file, perfFixture(4, 50))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Results) != 2 {
		t.Fatalf("want 2 blocks after adding a workers=4 run, got %d", len(merged.Results))
	}
	if len(merged.Serve) != 1 {
		t.Fatal("serve section dropped by the merge")
	}

	merged, err = MergePerf(merged, perfFixture(4, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Results) != 2 {
		t.Fatalf("want same-workers rerun to replace its block, got %d blocks", len(merged.Results))
	}
	for _, r := range merged.Results {
		if r.Workers == 4 && r.NsPerOp != 60 {
			t.Fatalf("workers=4 block not replaced: ns=%v", r.NsPerOp)
		}
	}

	// An empty tracked file adopts the run wholesale.
	merged, err = MergePerf(&PerfReport{Serve: file.Serve}, perfFixture(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Results) != 1 || len(merged.Serve) != 1 {
		t.Fatal("empty-file merge dropped results or serve section")
	}
}

// TestMergePerfRefusesIdentityDrift pins the refusal: a run from a different
// machine or workload must not silently blend into the tracked report.
func TestMergePerfRefusesIdentityDrift(t *testing.T) {
	mutants := map[string]func(*PerfReport){
		"go_version": func(r *PerfReport) { r.GoVersion = "go1.23.0" },
		"num_cpu":    func(r *PerfReport) { r.NumCPU = 64 },
		"n":          func(r *PerfReport) { r.N = 2000 },
		"seed":       func(r *PerfReport) { r.Seed = 7 },
		"k":          func(r *PerfReport) { r.K = 2 },
	}
	for field, mutate := range mutants {
		run := perfFixture(1, 100)
		mutate(run)
		if _, err := MergePerf(perfFixture(1, 100), run); err == nil || !strings.Contains(err.Error(), field) {
			t.Fatalf("%s drift not refused: %v", field, err)
		}
	}
}
