package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/sal"
	"pgpub/internal/serve"
	"pgpub/internal/snapshot"
)

// ShardLoadResult is one coordinator load level: the same closed-loop
// measurement as ServeLoadResult, taken through a fan-out coordinator over
// Shards shard servers, plus the hedging counters the coordinator observed.
type ShardLoadResult struct {
	Shards int `json:"shards"`
	ServeLoadResult
	HedgesFired int64 `json:"hedges_fired"`
	HedgesWon   int64 `json:"hedges_won"`
}

// HedgeReport is the tail-control demonstration: one shard of a two-shard
// deployment stalls every LagEvery-th query by LagMs, and the same workload
// runs once with hedging disabled and once enabled. The hedged p99 should
// collapse to the fast path because the duplicate request dodges the
// injected stall.
type HedgeReport struct {
	Shards        int     `json:"shards"`
	LagMs         float64 `json:"lag_ms"`
	LagEvery      int     `json:"lag_every"`
	UnhedgedP99us float64 `json:"unhedged_p99_us"`
	HedgedP99us   float64 `json:"hedged_p99_us"`
	HedgesFired   int64   `json:"hedges_fired"`
	HedgesWon     int64   `json:"hedges_won"`
}

// ShardLoadReport is the sharded-serving experiment: a direct single-server
// baseline, the coordinator levels at each shard count, and the hedging
// demonstration.
type ShardLoadReport struct {
	N        int               `json:"n"`
	Clients  int               `json:"clients"`
	Queries  int               `json:"queries"`
	Baseline ServeLoadResult   `json:"baseline"`
	Levels   []ShardLoadResult `json:"levels"`
	Hedge    *HedgeReport      `json:"hedge,omitempty"`
}

// ShardLoadConfig parameterizes the sharded-serving experiment.
type ShardLoadConfig struct {
	// N is the SAL microdata cardinality behind each deployment.
	N int
	// Queries is the distinct-query pool; PerClient the requests each client
	// issues per level; Clients the closed-loop concurrency.
	Queries   int
	PerClient int
	Clients   int
	// Shards lists the coordinator fan-out widths; default {1, 2, 4, 8}.
	Shards []int
	Seed   int64
	K      int
	P      float64
	// Workers is the publisher/server-side parallelism.
	Workers int
	// LagMs and LagEvery shape the hedging demonstration's injected stall:
	// every LagEvery-th query on shard 0 sleeps LagMs before answering.
	// Defaults 25ms every 50th — the stall must be rarer than 5% of calls,
	// or it inflates the shard's own p95 and the p95-triggered hedge fires
	// too late to rescue anything. LagEvery < 0 skips the demonstration.
	LagMs    float64
	LagEvery int
}

// ShardLoad publishes a SAL release sharded S ways for each S, stands up S
// shard servers plus a fan-out coordinator on loopback ports, and drives
// the coordinator closed-loop — the distributed counterpart of ServeLoad.
// On a single-CPU host every deployment shares one core, so the levels
// price the coordinator's fan-out overhead, not parallel speedup; the
// hedging demonstration injects a stall to show the tail control that
// overhead buys.
func ShardLoad(cfg ShardLoadConfig) (*ShardLoadReport, error) {
	if cfg.N <= 0 {
		cfg.N = 20000
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 400
	}
	if cfg.PerClient <= 0 {
		cfg.PerClient = 150
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 2, 4, 8}
	}
	if cfg.K <= 0 {
		cfg.K = 6
	}
	if cfg.P <= 0 {
		cfg.P = 0.3
	}
	if cfg.LagMs <= 0 {
		cfg.LagMs = 25
	}
	if cfg.LagEvery == 0 {
		cfg.LagEvery = 50
	}

	d, err := sal.Generate(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	hiers := sal.Hierarchies(d.Schema)
	rep := &ShardLoadReport{N: cfg.N, Clients: cfg.Clients, Queries: cfg.Queries}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: 4 * cfg.Clients, MaxIdleConnsPerHost: 4 * cfg.Clients,
	}}

	// Baseline: one snapshot, one server, no coordinator in the path.
	pub, err := pg.Publish(d, hiers, pg.Config{
		K: cfg.K, P: cfg.P, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	bodies, err := serveBodies(pub, cfg.Queries, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ix, err := query.NewIndex(pub)
	if err != nil {
		return nil, err
	}
	meta, err := pub.Metadata(0, 0)
	if err != nil {
		return nil, err
	}
	srv, err := serve.New(serve.Config{
		Index: ix, Meta: meta, MaxInFlight: 4 * cfg.Clients, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	hs, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rep.Baseline = driveClosedLoop(client, "http://"+hs.Addr+"/v1/query", bodies, cfg.Clients, cfg.PerClient)
	hs.Close()

	// Coordinator levels.
	for _, s := range cfg.Shards {
		dep, err := newShardDeployment(d, hiers, cfg, s, 0, 0)
		if err != nil {
			return nil, err
		}
		level := ShardLoadResult{
			Shards:          s,
			ServeLoadResult: driveClosedLoop(client, dep.url+"/v1/query", bodies, cfg.Clients, cfg.PerClient),
			HedgesFired:     dep.reg.Counter("coord.hedge.fired").Value(),
			HedgesWon:       dep.reg.Counter("coord.hedge.won").Value(),
		}
		dep.close()
		rep.Levels = append(rep.Levels, level)
	}

	// Hedging demonstration.
	if cfg.LagEvery > 0 {
		lag := time.Duration(cfg.LagMs * float64(time.Millisecond))
		hedge := &HedgeReport{Shards: 2, LagMs: cfg.LagMs, LagEvery: cfg.LagEvery}
		for _, hedged := range []bool{false, true} {
			hedgeAfter := time.Duration(-1)
			if hedged {
				hedgeAfter = lag / 8
			}
			dep, err := newShardDeployment(d, hiers, cfg, 2, hedgeAfter, lag)
			if err != nil {
				return nil, err
			}
			res := driveClosedLoop(client, dep.url+"/v1/query", bodies, cfg.Clients, cfg.PerClient)
			if hedged {
				hedge.HedgedP99us = res.P99us
				hedge.HedgesFired = dep.reg.Counter("coord.hedge.fired").Value()
				hedge.HedgesWon = dep.reg.Counter("coord.hedge.won").Value()
			} else {
				hedge.UnhedgedP99us = res.P99us
			}
			dep.close()
		}
		rep.Hedge = hedge
	}
	return rep, nil
}

// shardDeployment is a running sharded deployment on loopback ports.
type shardDeployment struct {
	url   string
	reg   *obs.Registry
	close func()
}

// newShardDeployment publishes d sharded s ways and serves it: s shard
// servers plus a started coordinator. When lag > 0, shard 0's handler
// stalls every LagEvery-th /v1/query by lag — the adversary of the hedging
// demonstration. hedgeAfter 0 keeps the coordinator default; negative
// disables hedging.
func newShardDeployment(d *dataset.Table, hiers []*hierarchy.Hierarchy, cfg ShardLoadConfig, s int, hedgeAfter, lag time.Duration) (*shardDeployment, error) {
	pubs, err := pg.PublishSharded(d, hiers, pg.Config{
		K: cfg.K, P: cfg.P, Seed: cfg.Seed, Workers: cfg.Workers,
	}, s)
	if err != nil {
		return nil, err
	}
	man := &snapshot.Manifest{
		K: cfg.K, P: cfg.P, Algorithm: pubs[0].Algorithm.String(), Seed: cfg.Seed, SourceRows: d.Len(),
		Shards: make([]snapshot.ShardEntry, s),
	}
	var closers []func()
	closeAll := func() {
		for _, c := range closers {
			c()
		}
	}
	urls := make([]string, s)
	for i, pub := range pubs {
		man.Shards[i] = snapshot.ShardEntry{
			Path: fmt.Sprintf("inproc-%02d.pgsnap", i), Rows: pub.Len(),
			SourceRows: (d.Len() + s - 1 - i) / s,
		}
		ix, err := query.NewIndex(pub)
		if err != nil {
			closeAll()
			return nil, err
		}
		meta, err := pub.Metadata(0, 0)
		if err != nil {
			closeAll()
			return nil, err
		}
		srv, err := serve.New(serve.Config{
			Index: ix, Meta: meta, MaxInFlight: 4 * cfg.Clients, Workers: cfg.Workers,
		})
		if err != nil {
			closeAll()
			return nil, err
		}
		h := srv.Handler()
		if i == 0 && lag > 0 {
			h = lagMiddleware(h, cfg.LagEvery, lag)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, err
		}
		hsrv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
		go hsrv.Serve(lis) //nolint:errcheck // always ErrServerClosed after Close
		closers = append(closers, func() { hsrv.Close() })
		urls[i] = "http://" + lis.Addr().String()
	}

	reg := obs.NewRegistry()
	coord, err := serve.NewCoordinator(serve.CoordConfig{
		Manifest: man, ShardURLs: urls, HedgeAfter: hedgeAfter, Metrics: reg,
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = coord.Start(ctx)
	cancel()
	if err != nil {
		closeAll()
		return nil, err
	}
	chs, err := coord.Serve("127.0.0.1:0")
	if err != nil {
		closeAll()
		return nil, err
	}
	closers = append(closers, func() { chs.Close() })
	return &shardDeployment{url: "http://" + chs.Addr, reg: reg, close: closeAll}, nil
}

// lagMiddleware stalls every every-th /v1/query by lag — deterministic
// injected tail latency for the hedging demonstration.
func lagMiddleware(h http.Handler, every int, lag time.Duration) http.Handler {
	var n atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/query" && n.Add(1)%int64(every) == 0 {
			time.Sleep(lag)
		}
		h.ServeHTTP(w, r)
	})
}

// driveClosedLoop issues clients×perClient requests against url, each
// client back-to-back over its own slice of the body pool, and measures
// end-to-end latency per request — the shared engine of ServeLoad and
// ShardLoad.
func driveClosedLoop(client *http.Client, url string, bodies [][]byte, clients, perClient int) ServeLoadResult {
	latCh := make(chan []time.Duration, clients)
	errCh := make(chan int, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		go func(c int) {
			lats := make([]time.Duration, 0, perClient)
			errs := 0
			for i := 0; i < perClient; i++ {
				body := bodies[(c*perClient+i*7)%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errs++
					continue
				}
				var qr serve.QueryResponse
				if json.NewDecoder(resp.Body).Decode(&qr) != nil || resp.StatusCode != http.StatusOK {
					errs++
				}
				resp.Body.Close()
				lats = append(lats, time.Since(t0))
			}
			latCh <- lats
			errCh <- errs
		}(c)
	}
	var all []time.Duration
	errs := 0
	for c := 0; c < clients; c++ {
		all = append(all, <-latCh...)
		errs += <-errCh
	}
	elapsed := time.Since(start)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return float64(all[i].Nanoseconds()) / 1e3
	}
	return ServeLoadResult{
		Clients: clients, Requests: clients * perClient,
		QPS:    float64(len(all)) / elapsed.Seconds(),
		P50us:  pct(0.50),
		P95us:  pct(0.95),
		P99us:  pct(0.99),
		Errors: errs,
	}
}

// RenderShardLoad formats the sharded-serving report.
func RenderShardLoad(rep *ShardLoadReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d, %d clients × closed loop, %d-query pool\n", rep.N, rep.Clients, rep.Queries)
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %7s %7s\n",
		"deployment", "qps", "p50(us)", "p95(us)", "p99(us)", "errors", "hedges")
	fmt.Fprintf(&b, "%-12s %10.0f %10.0f %10.0f %10.0f %7d %7s\n",
		"direct", rep.Baseline.QPS, rep.Baseline.P50us, rep.Baseline.P95us, rep.Baseline.P99us,
		rep.Baseline.Errors, "-")
	for _, l := range rep.Levels {
		fmt.Fprintf(&b, "%-12s %10.0f %10.0f %10.0f %10.0f %7d %7d\n",
			fmt.Sprintf("coord S=%d", l.Shards), l.QPS, l.P50us, l.P95us, l.P99us, l.Errors, l.HedgesFired)
	}
	if h := rep.Hedge; h != nil {
		fmt.Fprintf(&b, "hedging vs a laggy shard (S=%d, +%.0fms on every %dth query of shard 0):\n",
			h.Shards, h.LagMs, h.LagEvery)
		fmt.Fprintf(&b, "  p99 unhedged %.0f us -> hedged %.0f us (%d hedges fired, %d won)\n",
			h.UnhedgedP99us, h.HedgedP99us, h.HedgesFired, h.HedgesWon)
	}
	return b.String()
}
