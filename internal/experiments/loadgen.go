package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"

	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/sal"
	"pgpub/internal/serve"
)

// ServeLoadResult is one closed-loop load-test level: c clients each issue
// requests back-to-back against a live pgserve endpoint; latency percentiles
// are measured per request, end to end (marshalling, socket, serving layer,
// index traversal).
type ServeLoadResult struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	P50us    float64 `json:"p50_us"`
	P95us    float64 `json:"p95_us"`
	P99us    float64 `json:"p99_us"`
	Errors   int     `json:"errors"`
}

// ServeLoadConfig parameterizes the serve load experiment.
type ServeLoadConfig struct {
	// N is the SAL microdata cardinality behind the served publication.
	N int
	// Queries is the distinct-query pool size each client cycles through
	// (offset per client, so concurrent clients hit a mix of cached and
	// uncached entries the way real consumers would).
	Queries int
	// PerClient is the request count each client issues per level.
	PerClient int
	// Clients lists the concurrency levels; default {1, 4, 16}.
	Clients []int
	Seed    int64
	K       int
	P       float64
	// Workers is the server-side batch fan-out (forwarded to serve.Config).
	Workers int
}

// ServeLoad publishes a SAL release, starts a real pgserve endpoint on a
// loopback port, and drives it closed-loop at each concurrency level. This
// is the serving-layer counterpart of the in-process qserve experiment: it
// prices the full network path, not just the index.
func ServeLoad(cfg ServeLoadConfig) ([]ServeLoadResult, error) {
	if cfg.N <= 0 {
		cfg.N = 50000
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 2000
	}
	if cfg.PerClient <= 0 {
		cfg.PerClient = 400
	}
	if len(cfg.Clients) == 0 {
		cfg.Clients = []int{1, 4, 16}
	}
	if cfg.K <= 0 {
		cfg.K = 6
	}
	if cfg.P <= 0 {
		cfg.P = 0.3
	}

	d, err := sal.Generate(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{
		K: cfg.K, P: cfg.P, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	ix, err := query.NewIndex(pub)
	if err != nil {
		return nil, err
	}
	meta, err := pub.Metadata(0, 0)
	if err != nil {
		return nil, err
	}
	maxClients := 0
	for _, c := range cfg.Clients {
		if c > maxClients {
			maxClients = c
		}
	}
	srv, err := serve.New(serve.Config{
		Index: ix, Meta: meta,
		MaxInFlight: 2 * maxClients, // closed-loop: never shed our own load
		Workers:     cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	hs, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer hs.Close()

	bodies, err := serveBodies(pub, cfg.Queries, cfg.Seed)
	if err != nil {
		return nil, err
	}
	url := "http://" + hs.Addr + "/v1/query"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: 2 * maxClients, MaxIdleConnsPerHost: 2 * maxClients,
	}}

	var out []ServeLoadResult
	for _, clients := range cfg.Clients {
		out = append(out, driveClosedLoop(client, url, bodies, clients, cfg.PerClient))
	}
	return out, nil
}

// serveBodies pre-marshals a distinct-query pool as /v1/query wire bodies.
func serveBodies(pub *pg.Published, n int, seed int64) ([][]byte, error) {
	qs, err := query.Workload(pub.Schema, query.WorkloadConfig{
		Queries: n, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.4,
		Rng: rand.New(rand.NewSource(seed + 2)),
	})
	if err != nil {
		return nil, err
	}
	bodies := make([][]byte, len(qs))
	for i, q := range qs {
		req := serve.QueryRequest{Op: "count"}
		for j := range q.QI {
			if q.QI[j].Lo == 0 && int(q.QI[j].Hi) == pub.Schema.QI[j].Size()-1 {
				continue
			}
			dim := j
			req.Where = append(req.Where, serve.WhereClause{
				Dim: &dim,
				Lo:  json.RawMessage(fmt.Sprint(q.QI[j].Lo)),
				Hi:  json.RawMessage(fmt.Sprint(q.QI[j].Hi)),
			})
		}
		for code, in := range q.Sensitive {
			if in {
				req.Sensitive = append(req.Sensitive, int32(code))
			}
		}
		if bodies[i], err = json.Marshal(req); err != nil {
			return nil, err
		}
	}
	return bodies, nil
}

// RenderServeLoad formats the load-test levels as a table.
func RenderServeLoad(rows []ServeLoadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %10s %10s %10s %10s %10s %7s\n",
		"clients", "requests", "qps", "p50(us)", "p95(us)", "p99(us)", "errors")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %10d %10.0f %10.0f %10.0f %10.0f %7d\n",
			r.Clients, r.Requests, r.QPS, r.P50us, r.P95us, r.P99us, r.Errors)
	}
	return b.String()
}
