package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"pgpub/internal/dataset"
	"pgpub/internal/mining"
	"pgpub/internal/par"
	"pgpub/internal/pg"
	"pgpub/internal/sal"
)

// UtilityConfig parameterizes the decision-tree utility experiments of
// Figures 2 and 3.
type UtilityConfig struct {
	// N is the SAL cardinality (the paper uses 700k; 100k reproduces the
	// shapes at laptop scale — see EXPERIMENTS.md).
	N int
	// Seed drives data generation and every random stage.
	Seed int64
	// M is the income categorization granularity: 2 or 3 (Section VII-A).
	M int
	// Reps averages each point over this many publication/train runs
	// (default 1, the paper's single-run style).
	Reps int
	// Algorithm is the Phase-2 algorithm (the zero value is pg.KD, the
	// harness default; see DESIGN.md §3).
	Algorithm pg.Algorithm
	// Workers bounds the sweep's parallelism: the x-positions of a figure
	// are measured concurrently, each from its own seed split off Seed, so
	// results do not depend on the worker count. 0 means GOMAXPROCS; 1 runs
	// the sweep sequentially. Publish inherits the same knob per point.
	Workers int
}

func (c *UtilityConfig) setDefaults() error {
	if c.N <= 0 {
		c.N = 100000
	}
	if c.M == 0 {
		c.M = 2
	}
	if c.M != 2 && c.M != 3 {
		return fmt.Errorf("experiments: m must be 2 or 3, got %d", c.M)
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	return nil
}

// UtilityPoint is one x-position of a utility figure: the classification
// errors (1 - accuracy, evaluated over the full microdata) of the three
// competitors.
type UtilityPoint struct {
	X      float64 // k for Figure 2, p for Figure 3
	ErrPG  float64
	ErrOpt float64
	ErrPes float64
}

// Figure2 computes classification error versus k at p = 0.3 (Figures 2a and
// 2b, depending on cfg.M).
func Figure2(cfg UtilityConfig) ([]UtilityPoint, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return utilitySweep(cfg, []int{2, 4, 6, 8, 10}, nil, 0.3, 0)
}

// Figure3 computes classification error versus p at k = 6 (Figures 3a and
// 3b, depending on cfg.M).
func Figure3(cfg UtilityConfig) ([]UtilityPoint, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return utilitySweep(cfg, nil, []float64{0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45}, 0, 6)
}

// utilitySweep runs the PG/optimistic/pessimistic comparison over either a
// k-sweep (fixed p) or a p-sweep (fixed k). The x-positions are measured in
// parallel, each from a private RNG split off cfg.Seed, so the figure is
// reproducible for a fixed seed at any worker count.
func utilitySweep(cfg UtilityConfig, ks []int, ps []float64, fixedP float64, fixedK int) ([]UtilityPoint, error) {
	d, err := sal.Generate(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	classOf, err := sal.Categorizer(cfg.M)
	if err != nil {
		return nil, err
	}
	points := len(ks)
	if ks == nil {
		points = len(ps)
	}
	out := make([]UtilityPoint, points)
	err = par.ForEachErr(cfg.Workers, points, func(i int) error {
		rng := rand.New(rand.NewSource(par.SplitSeed(cfg.Seed+1, i)))
		k, p := fixedK, fixedP
		if ks != nil {
			k = ks[i]
		} else {
			p = ps[i]
		}
		pt, err := utilityPoint(d, classOf, cfg, k, p, rng)
		if err != nil {
			return err
		}
		if ks != nil {
			pt.X = float64(k)
		} else {
			pt.X = p
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// utilityPoint measures one (k, p) configuration, averaged over cfg.Reps.
func utilityPoint(d *dataset.Table, classOf func(int32) int, cfg UtilityConfig, k int, p float64, rng *rand.Rand) (UtilityPoint, error) {
	numClasses := cfg.M
	var pt UtilityPoint
	for rep := 0; rep < cfg.Reps; rep++ {
		// PG: publish and mine with reconstruction weighting.
		pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{
			K: k, P: p, Algorithm: cfg.Algorithm, Rng: rng, Workers: cfg.Workers, Metrics: metrics,
		})
		if err != nil {
			return pt, err
		}
		pgClf, err := mining.TrainPG(pub, classOf, numClasses, mining.Config{})
		if err != nil {
			return pt, err
		}
		pt.ErrPG += 1 - mining.Accuracy(pgClf.Predict, d, classOf)

		// Optimistic: a clean random subset of size |D|/k.
		sub, err := d.RandomSubset(d.Len()/k, rng)
		if err != nil {
			return pt, err
		}
		opt, err := mining.TrainTable(sub, classOf, numClasses, mining.Config{})
		if err != nil {
			return pt, err
		}
		pt.ErrOpt += 1 - mining.Accuracy(opt.Predict, d, classOf)

		// Pessimistic: the same-size subset with totally randomized
		// sensitive values (retention probability 0).
		randomized := sub.Clone()
		for i := 0; i < randomized.Len(); i++ {
			randomized.SetSensitive(i, int32(rng.Intn(randomized.Schema.SensitiveDomain())))
		}
		pes, err := mining.TrainTable(randomized, classOf, numClasses, mining.Config{})
		if err != nil {
			return pt, err
		}
		pt.ErrPes += 1 - mining.Accuracy(pes.Predict, d, classOf)
	}
	pt.ErrPG /= float64(cfg.Reps)
	pt.ErrOpt /= float64(cfg.Reps)
	pt.ErrPes /= float64(cfg.Reps)
	return pt, nil
}

// RenderUtility formats a utility series like the paper's figures: one row
// per competitor, classification error per x-position.
func RenderUtility(points []UtilityPoint, xName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", xName)
	for _, p := range points {
		if xName == "k" {
			fmt.Fprintf(&b, " %7.0f", p.X)
		} else {
			fmt.Fprintf(&b, " %7.2f", p.X)
		}
	}
	b.WriteByte('\n')
	row := func(name string, get func(UtilityPoint) float64) {
		fmt.Fprintf(&b, "%-12s", name)
		for _, p := range points {
			fmt.Fprintf(&b, " %6.2f%%", get(p)*100)
		}
		b.WriteByte('\n')
	}
	row("PG", func(p UtilityPoint) float64 { return p.ErrPG })
	row("optimistic", func(p UtilityPoint) float64 { return p.ErrOpt })
	row("pessimistic", func(p UtilityPoint) float64 { return p.ErrPes })
	return b.String()
}
