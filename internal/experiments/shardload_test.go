package experiments

import (
	"testing"
)

// TestShardLoadExperiment smoke-runs the sharded-serving experiment at toy
// scale: every level must complete error-free, and the injected-lag
// demonstration must actually fire and win hedges.
func TestShardLoadExperiment(t *testing.T) {
	rep, err := ShardLoad(ShardLoadConfig{
		N: 2000, Queries: 40, PerClient: 25, Clients: 4,
		Shards: []int{1, 2}, Seed: 3, K: 6, P: 0.3, Workers: 2,
		LagMs: 20, LagEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline.Errors != 0 || rep.Baseline.QPS <= 0 {
		t.Fatalf("baseline: %+v", rep.Baseline)
	}
	if len(rep.Levels) != 2 {
		t.Fatalf("%d levels", len(rep.Levels))
	}
	for _, l := range rep.Levels {
		if l.Errors != 0 || l.QPS <= 0 {
			t.Fatalf("S=%d level: %+v", l.Shards, l)
		}
	}
	h := rep.Hedge
	if h == nil {
		t.Fatal("no hedge demonstration")
	}
	if h.HedgesFired == 0 || h.HedgesWon == 0 {
		t.Fatalf("hedges fired=%d won=%d against a shard stalling %vms every %d queries",
			h.HedgesFired, h.HedgesWon, h.LagMs, h.LagEvery)
	}
	if h.UnhedgedP99us <= 0 || h.HedgedP99us <= 0 {
		t.Fatalf("hedge p99s: %+v", h)
	}

	// The shard block must survive a perf merge.
	merged, err := MergePerf(&PerfReport{Shard: rep}, &PerfReport{})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Shard != rep {
		t.Fatal("MergePerf dropped the shard block")
	}
}
