package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"pgpub/internal/attack"
	"pgpub/internal/dataset"
	"pgpub/internal/mining"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
	"pgpub/internal/query"
	"pgpub/internal/repub"
	"pgpub/internal/sal"
)

// QueryUtilityRow summarizes COUNT-estimation accuracy for one query class
// (Extra E5): relative-error quantiles of the corrected PG estimator and of
// the naive (perturbation-ignoring) estimator over a random workload.
type QueryUtilityRow struct {
	Class           string
	Queries         int
	MedianRel       float64
	P90Rel          float64
	NaiveMedianRel  float64
	TruthMedianSize float64
}

// QueryUtility measures aggregate COUNT estimation over a SAL publication:
// QI-only range queries and QI+sensitive queries, corrected vs naive.
func QueryUtility(n int, seed int64, k int, p float64) ([]QueryUtilityRow, error) {
	if n <= 0 {
		n = 50000
	}
	d, err := sal.Generate(n, seed)
	if err != nil {
		return nil, err
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{
		K: k, P: p, Algorithm: pg.KD, Seed: seed, Metrics: metrics,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 100))
	classes := []struct {
		name string
		cfg  query.WorkloadConfig
	}{
		{"qi-only (2 attrs, 50%)", query.WorkloadConfig{
			Queries: 60, QIFraction: 0.5, RestrictAttrs: 2, Rng: rng}},
		{"qi+sensitive (1 attr, 50% / 40%)", query.WorkloadConfig{
			Queries: 60, QIFraction: 0.5, RestrictAttrs: 1, SensitiveFraction: 0.4, Rng: rng}},
	}
	var out []QueryUtilityRow
	for _, c := range classes {
		qs, err := query.Workload(d.Schema, c.cfg)
		if err != nil {
			return nil, err
		}
		var rels, naives, sizes []float64
		for _, q := range qs {
			truth, err := query.TrueCount(d, q)
			if err != nil {
				return nil, err
			}
			if truth < n/100 {
				continue // skip sub-1% selectivities
			}
			est, err := query.Estimate(pub, q)
			if err != nil {
				return nil, err
			}
			naive, err := query.EstimateNaive(pub, q)
			if err != nil {
				return nil, err
			}
			rels = append(rels, math.Abs(est-float64(truth))/float64(truth))
			naives = append(naives, math.Abs(naive-float64(truth))/float64(truth))
			sizes = append(sizes, float64(truth))
		}
		if len(rels) == 0 {
			return nil, fmt.Errorf("experiments: query class %q produced no usable queries", c.name)
		}
		sort.Float64s(rels)
		sort.Float64s(naives)
		sort.Float64s(sizes)
		out = append(out, QueryUtilityRow{
			Class:           c.name,
			Queries:         len(rels),
			MedianRel:       rels[len(rels)/2],
			P90Rel:          rels[len(rels)*9/10],
			NaiveMedianRel:  naives[len(naives)/2],
			TruthMedianSize: sizes[len(sizes)/2],
		})
	}
	return out, nil
}

// RenderQueryUtility formats the E5 rows.
func RenderQueryUtility(rows []QueryUtilityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %4s %10s %8s %12s %10s\n",
		"query class", "n", "medianRel", "p90Rel", "naiveMedian", "medCount")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %4d %9.1f%% %7.1f%% %11.1f%% %10.0f\n",
			r.Class, r.Queries, r.MedianRel*100, r.P90Rel*100,
			r.NaiveMedianRel*100, r.TruthMedianSize)
	}
	return b.String()
}

// RepubRow is one release-count of the re-publication experiment (Extra E6).
type RepubRow struct {
	T            int
	MaxGrowth    float64 // worst observed composed growth
	GrowthBound  float64 // analytic composition bound
	PlannedP     float64 // per-release p keeping the bound under target
	TargetGrowth float64
}

// Republication measures how adversary confidence accumulates over repeated
// releases (fresh PG each time) under worst-case corruption, against the
// composition bound, and reports the per-release retention probability that
// would keep T releases under the single-release Δ target.
func Republication(trials int, seed int64, target float64) ([]RepubRow, error) {
	if trials <= 0 {
		trials = 60
	}
	if target <= 0 {
		target = 0.3
	}
	d := dataset.Hospital()
	ext, err := attack.NewExternal(d, dataset.HospitalVoterQI())
	if err != nil {
		return nil, err
	}
	domain := d.Schema.SensitiveDomain()
	const p, k = 0.3, 2
	lambda := 1 / float64(domain)
	rng := rand.New(rand.NewSource(seed))
	owners := []int{0, 1, 2, 3, 5, 6, 7, 8}

	var out []RepubRow
	for _, T := range []int{1, 2, 4, 8} {
		bound, err := repub.ComposedGrowthBound(T, p, lambda, k, domain)
		if err != nil {
			return nil, err
		}
		planned, err := repub.MaxRetentionForSeries(T, lambda, target, k, domain)
		if err != nil {
			return nil, err
		}
		maxGrowth := 0.0
		for trial := 0; trial < trials; trial++ {
			s, err := repub.PublishSeries(d, hospitalHiers(d.Schema), pg.Config{K: k, P: p, Metrics: metrics}, T, rng)
			if err != nil {
				return nil, err
			}
			victim := owners[rng.Intn(len(owners))]
			adv := attack.Adversary{Background: privacy.Uniform(domain), Corrupted: map[int]bool{}}
			for id := 0; id < ext.Len(); id++ {
				if id != victim {
					adv.Corrupted[id] = true
				}
			}
			truth := d.Sensitive(ext.RowOf(victim))
			q, err := privacy.ExactReconstruction(domain, truth)
			if err != nil {
				return nil, err
			}
			_, prior, post, err := repub.MultiReleaseAttack(s, ext, victim, adv, q)
			if err != nil {
				return nil, err
			}
			if g := post - prior; g > maxGrowth {
				maxGrowth = g
			}
		}
		out = append(out, RepubRow{
			T: T, MaxGrowth: maxGrowth, GrowthBound: bound,
			PlannedP: planned, TargetGrowth: target,
		})
	}
	return out, nil
}

// RenderRepublication formats the E6 rows.
func RenderRepublication(rows []RepubRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %12s %12s %22s\n", "T", "maxGrowth", "bound", "p for composed growth")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %12.4f %12.4f %15.4f (<=%.2f)\n",
			r.T, r.MaxGrowth, r.GrowthBound, r.PlannedP, r.TargetGrowth)
	}
	return b.String()
}

// MinerRow compares the two mining modalities on the same publication
// (Extra E7): the honest reconstruction tree and naive Bayes.
type MinerRow struct {
	P       float64
	ErrTree float64
	ErrNB   float64
	ErrOpt  float64
}

// MinerComparison trains both miners across retention probabilities.
func MinerComparison(n int, seed int64, k int, ps []float64) ([]MinerRow, error) {
	if n <= 0 {
		n = 30000
	}
	if len(ps) == 0 {
		ps = []float64{0.15, 0.3, 0.45}
	}
	d, err := sal.Generate(n, seed)
	if err != nil {
		return nil, err
	}
	classOf, err := sal.Categorizer(2)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 7))
	sub, err := d.RandomSubset(d.Len()/k, rng)
	if err != nil {
		return nil, err
	}
	opt, err := mining.TrainTable(sub, classOf, 2, mining.Config{})
	if err != nil {
		return nil, err
	}
	errOpt := 1 - mining.Accuracy(opt.Predict, d, classOf)

	var out []MinerRow
	for _, p := range ps {
		pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{
			K: k, P: p, Algorithm: pg.KD, Seed: seed, Metrics: metrics,
		})
		if err != nil {
			return nil, err
		}
		tree, err := mining.TrainPG(pub, classOf, 2, mining.Config{})
		if err != nil {
			return nil, err
		}
		nb, err := mining.TrainNBPG(pub, classOf, 2, mining.NBConfig{})
		if err != nil {
			return nil, err
		}
		out = append(out, MinerRow{
			P:       p,
			ErrTree: 1 - mining.Accuracy(tree.Predict, d, classOf),
			ErrNB:   1 - mining.Accuracy(nb.Predict, d, classOf),
			ErrOpt:  errOpt,
		})
	}
	return out, nil
}

// RenderMiners formats the E7 rows.
func RenderMiners(rows []MinerRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %12s %12s %12s\n", "p", "err(tree)", "err(NB)", "err(opt)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6.2f %11.2f%% %11.2f%% %11.2f%%\n",
			r.P, r.ErrTree*100, r.ErrNB*100, r.ErrOpt*100)
	}
	return b.String()
}
