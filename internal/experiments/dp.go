package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"pgpub/internal/dp"
	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/sal"
	"pgpub/internal/serve"
)

// DPUtilityRow is one ε level of the DP-vs-PG utility study: the accuracy of
// the Laplace-noised served answer against the ground truth, next to the
// noise-free PG estimator it wraps. The gap between DPMedianRel and
// PGMedianRel is the price of the ε-budget at that level.
type DPUtilityRow struct {
	Epsilon        float64 `json:"epsilon"`
	DPMedianRel    float64 `json:"dp_median_rel"`
	DPP90Rel       float64 `json:"dp_p90_rel"`
	MedianAbsNoise float64 `json:"median_abs_noise"`
}

// DPReport is the machine-readable output of the dp experiment
// (pgbench -exp dp -benchout BENCH_pg.json). Identity fields mirror
// PerfReport's workload identity; PG rows are the shared noise-free baseline
// every ε level is compared against.
type DPReport struct {
	N           int            `json:"n"`
	Seed        int64          `json:"seed"`
	K           int            `json:"k"`
	P           float64        `json:"p"`
	DPSeed      int64          `json:"dp_seed"`
	Queries     int            `json:"queries"`
	PGMedianRel float64        `json:"pg_median_rel"`
	PGP90Rel    float64        `json:"pg_p90_rel"`
	TruthMedian float64        `json:"truth_median"`
	Rows        []DPUtilityRow `json:"rows"`
}

// DPUtility measures what differential-privacy noising costs on top of PG's
// own estimation error. It publishes one SAL release, draws the E5 QI-only
// COUNT workload, then answers every query at each ε exactly as the server
// would: the PG-corrected estimate plus Laplace noise at scale 1/ε, drawn
// from the deterministic mechanism keyed by (per-ε API key, canonical query
// encoding). Per-ε API keys decorrelate the noise streams across ε levels,
// so each row is an independent sample of the mechanism.
func DPUtility(n int, seed int64, k int, p float64, epsilons []float64) (*DPReport, error) {
	if n <= 0 {
		n = 100000
	}
	if len(epsilons) == 0 {
		epsilons = []float64{0.05, 0.1, 0.25, 0.5, 1, 2}
	}
	d, err := sal.Generate(n, seed)
	if err != nil {
		return nil, err
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{
		K: k, P: p, Algorithm: pg.KD, Seed: seed, Metrics: metrics,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 100))
	qs, err := query.Workload(d.Schema, query.WorkloadConfig{
		Queries: 120, QIFraction: 0.5, RestrictAttrs: 2, Rng: rng,
	})
	if err != nil {
		return nil, err
	}

	// Shared baseline: truth, PG estimate, and the canonical query key the
	// server's mechanism would derive for each usable query.
	type baseQ struct {
		truth float64
		est   float64
		key   string
	}
	var base []baseQ
	var pgRels, sizes []float64
	for _, q := range qs {
		truth, err := query.TrueCount(d, q)
		if err != nil {
			return nil, err
		}
		if truth < n/100 {
			continue // skip sub-1% selectivities
		}
		est, err := query.Estimate(pub, q)
		if err != nil {
			return nil, err
		}
		base = append(base, baseQ{
			truth: float64(truth),
			est:   est,
			key:   serve.QueryKey(d.Schema, "count", q, nil),
		})
		pgRels = append(pgRels, math.Abs(est-float64(truth))/float64(truth))
		sizes = append(sizes, float64(truth))
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("experiments: dp workload produced no usable queries")
	}
	sort.Float64s(pgRels)
	sort.Float64s(sizes)

	dpSeed := seed + 1000
	rep := &DPReport{
		N: n, Seed: seed, K: k, P: p, DPSeed: dpSeed,
		Queries:     len(base),
		PGMedianRel: pgRels[len(pgRels)/2],
		PGP90Rel:    pgRels[len(pgRels)*9/10],
		TruthMedian: sizes[len(sizes)/2],
	}
	mech := dp.Mechanism{Seed: dpSeed}
	for _, eps := range epsilons {
		apiKey := fmt.Sprintf("analyst-eps-%g", eps)
		var rels, absNoise []float64
		for _, b := range base {
			noise := mech.Noise(apiKey, b.key, 0, 1/eps)
			rels = append(rels, math.Abs(b.est+noise-b.truth)/b.truth)
			absNoise = append(absNoise, math.Abs(noise))
		}
		sort.Float64s(rels)
		sort.Float64s(absNoise)
		rep.Rows = append(rep.Rows, DPUtilityRow{
			Epsilon:        eps,
			DPMedianRel:    rels[len(rels)/2],
			DPP90Rel:       rels[len(rels)*9/10],
			MedianAbsNoise: absNoise[len(absNoise)/2],
		})
	}
	return rep, nil
}

// RenderDP formats the DP-vs-PG utility rows.
func RenderDP(rep *DPReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d queries kept (truth >= 1%%), median truth %.0f; noise-free PG baseline: median %.1f%%, p90 %.1f%%\n",
		rep.Queries, rep.TruthMedian, rep.PGMedianRel*100, rep.PGP90Rel*100)
	fmt.Fprintf(&b, "%-8s %12s %10s %14s\n", "epsilon", "dpMedian", "dpP90", "medAbsNoise")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-8g %11.1f%% %9.1f%% %14.2f\n",
			r.Epsilon, r.DPMedianRel*100, r.DPP90Rel*100, r.MedianAbsNoise)
	}
	return b.String()
}
