// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII) plus the extra validation and ablation
// experiments of DESIGN.md: Table III (privacy guarantees), Figures 2 and 3
// (decision-tree utility), the Monte-Carlo breach validation (E1), the
// Phase-2 algorithm ablation (E2), the reconstruction ablation (E3) and the
// cardinality sweep (E4). Each experiment returns typed results and offers a
// text rendering shaped like the paper's presentation.
package experiments

import (
	"fmt"
	"strings"

	"pgpub/internal/obs"
	"pgpub/internal/privacy"
)

// metrics is the harness-wide registry. Experiments construct pg.Configs in
// many places and deep inside sweeps, so the harness threads one registry
// through all of them from here rather than widening every signature.
var metrics *obs.Registry

// SetMetrics installs the registry every subsequent experiment instruments
// its publications (and index builds) with. A nil registry — the default —
// keeps instrumentation on the disabled fast path. Called once by
// cmd/pgbench before dispatching; not safe to race with a running
// experiment.
func SetMetrics(r *obs.Registry) { metrics = r }

// The constants of Section VII-C: protection against 0.1-skewed background
// knowledge and adversaries with prior confidence at most 0.2, over the
// 50-value Income domain.
const (
	Lambda       = 0.1
	Rho1         = 0.2
	IncomeDomain = 50
)

// GuaranteeRow is one column of Table III: the parameters (p, k) and the
// certified bounds ρ₂ (Theorem 2) and Δ (Theorem 3).
type GuaranteeRow struct {
	P     float64
	K     int
	Rho2  float64
	Delta float64
}

// TableIIIa computes Table III(a): p = 0.3, k in {2,4,6,8,10}.
func TableIIIa() ([]GuaranteeRow, error) {
	const p = 0.3
	var rows []GuaranteeRow
	for _, k := range []int{2, 4, 6, 8, 10} {
		r, err := guaranteeRow(p, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// TableIIIb computes Table III(b): k = 6, p in {0.15, 0.2, ..., 0.45}.
func TableIIIb() ([]GuaranteeRow, error) {
	const k = 6
	var rows []GuaranteeRow
	for _, p := range []float64{0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45} {
		r, err := guaranteeRow(p, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

func guaranteeRow(p float64, k int) (GuaranteeRow, error) {
	rho2, err := privacy.MinRho2(p, Lambda, Rho1, k, IncomeDomain)
	if err != nil {
		return GuaranteeRow{}, err
	}
	delta, err := privacy.MinDelta(p, Lambda, k, IncomeDomain)
	if err != nil {
		return GuaranteeRow{}, err
	}
	return GuaranteeRow{P: p, K: k, Rho2: rho2, Delta: delta}, nil
}

// RenderTableIII formats guarantee rows like the paper's Table III, with the
// varying parameter ("k" or "p") as the header row.
func RenderTableIII(rows []GuaranteeRow, varying string) string {
	var b strings.Builder
	head, vals := make([]string, 0, len(rows)+1), make([][2]string, 0, len(rows))
	for _, r := range rows {
		switch varying {
		case "k":
			head = append(head, fmt.Sprintf("%6d", r.K))
		default:
			head = append(head, fmt.Sprintf("%6.2f", r.P))
		}
		vals = append(vals, [2]string{
			fmt.Sprintf(">=%4.2f", r.Rho2),
			fmt.Sprintf(">=%4.2f", r.Delta),
		})
	}
	fmt.Fprintf(&b, "%-6s %s\n", varying, strings.Join(head, " "))
	r2 := make([]string, len(vals))
	dl := make([]string, len(vals))
	for i, v := range vals {
		r2[i], dl[i] = v[0], v[1]
	}
	fmt.Fprintf(&b, "%-6s %s\n", "rho2", strings.Join(r2, " "))
	fmt.Fprintf(&b, "%-6s %s\n", "delta", strings.Join(dl, " "))
	return b.String()
}
