package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"pgpub/internal/attack"
	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/mining"
	"pgpub/internal/par"
	"pgpub/internal/pg"
	"pgpub/internal/sal"
)

// SALVoters builds an external database ℰ for a SAL table: every microdata
// owner plus extraFrac·|D| extraneous individuals with random QI vectors
// (people in the voter list but not in the hospital of Section I's analogy).
func SALVoters(d *dataset.Table, extraFrac float64, rng *rand.Rand) [][]int32 {
	voters := make([][]int32, 0, d.Len()+int(float64(d.Len())*extraFrac))
	for i := 0; i < d.Len(); i++ {
		voters = append(voters, d.QIVector(i))
	}
	extras := int(float64(d.Len()) * extraFrac)
	for e := 0; e < extras; e++ {
		v := make([]int32, d.Schema.D())
		for j, a := range d.Schema.QI {
			v[j] = int32(rng.Intn(a.Size()))
		}
		voters = append(voters, v)
	}
	return voters
}

// BreachConfig parameterizes the Monte-Carlo breach validation (Extra E1).
type BreachConfig struct {
	// N is the SAL cardinality for the SAL scenario (default 2000; the
	// attack is O(|E|) per trial).
	N int
	// Trials per scenario (default 200).
	Trials int
	// Seed drives all randomness.
	Seed int64
	// Workers splits each scenario's trials across goroutines via the
	// Monte-Carlo harness's Parallel knob. 0 means GOMAXPROCS; results are
	// deterministic for a fixed (Seed, Workers) pair.
	Workers int
}

// BreachScenario is one validated setting.
type BreachScenario struct {
	Name   string
	Result *attack.MonteCarloResult
}

// BreachValidation runs the empirical validation of Theorems 2 and 3 on the
// hospital example and a SAL sample, across corruption levels up to the
// worst case |C| = |E| - 1.
func BreachValidation(cfg BreachConfig) ([]BreachScenario, error) {
	if cfg.N <= 0 {
		cfg.N = 2000
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 200
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []BreachScenario

	// Hospital scenarios.
	hosp := dataset.Hospital()
	hospHiers := hospitalHiers(hosp.Schema)
	for _, corrupt := range []float64{0, 0.5, 1} {
		res, err := attack.MonteCarlo(hosp, dataset.HospitalVoterQI(), hospHiers, attack.MonteCarloConfig{
			PG:              pg.Config{K: 2, P: 0.3, Metrics: metrics},
			Trials:          cfg.Trials,
			Lambda:          Lambda,
			CorruptFraction: corrupt,
			Rng:             rng,
			Parallel:        par.N(cfg.Workers),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, BreachScenario{
			Name:   fmt.Sprintf("hospital k=2 p=0.3 corrupt=%.0f%%", corrupt*100),
			Result: res,
		})
	}

	// SAL scenario with extraneous individuals, worst-case corruption.
	d, err := sal.Generate(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	voters := SALVoters(d, 0.1, rng)
	res, err := attack.MonteCarlo(d, voters, sal.Hierarchies(d.Schema), attack.MonteCarloConfig{
		PG:              pg.Config{K: 6, P: 0.3, Algorithm: pg.KD, Metrics: metrics},
		Trials:          cfg.Trials / 4,
		Lambda:          Lambda,
		CorruptFraction: 1,
		Rng:             rng,
		Parallel:        par.N(cfg.Workers),
	})
	if err != nil {
		return nil, err
	}
	out = append(out, BreachScenario{Name: "sal k=6 p=0.3 corrupt=100%", Result: res})
	return out, nil
}

// hospitalHiers mirrors the Table Ic granularity for the hospital schema.
func hospitalHiers(s *dataset.Schema) []*hierarchy.Hierarchy {
	return []*hierarchy.Hierarchy{
		hierarchy.MustInterval(s.QI[0].Size(), 5, 20),
		hierarchy.MustFlat(s.QI[1].Size()),
		hierarchy.MustInterval(s.QI[2].Size(), 5, 20),
	}
}

// RenderBreach formats breach-validation scenarios.
func RenderBreach(scenarios []BreachScenario) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %8s %8s %10s %9s %10s %9s %7s\n",
		"scenario", "maxH", "hBound", "maxPost", "rho2Bnd", "maxGrowth", "deltaBnd", "breach")
	for _, s := range scenarios {
		r := s.Result
		fmt.Fprintf(&b, "%-36s %8.4f %8.4f %10.4f %9.4f %10.4f %9.4f %7d\n",
			s.Name, r.MaxH, r.MaxHBound, r.MaxPosterior, r.Rho2Bound,
			r.MaxGrowth, r.DeltaBound, r.BreachesRho+r.BreachesDelta)
	}
	return b.String()
}

// AblationGenRow is one Phase-2 algorithm's footprint (Extra E2).
type AblationGenRow struct {
	Algorithm string
	Groups    int
	MinGroup  int
	AvgGroup  float64
	ErrPG     float64
}

// AblationGeneralizer compares Phase-2 algorithms (KD, TDS, FullDomain) at
// fixed k and p on the same SAL sample: published group counts and the PG
// tree's classification error.
func AblationGeneralizer(n int, seed int64, k int, p float64) ([]AblationGenRow, error) {
	if n <= 0 {
		n = 20000
	}
	d, err := sal.Generate(n, seed)
	if err != nil {
		return nil, err
	}
	classOf, err := sal.Categorizer(2)
	if err != nil {
		return nil, err
	}
	var out []AblationGenRow
	for _, alg := range []pg.Algorithm{pg.KD, pg.TDS, pg.FullDomain} {
		pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{
			K: k, P: p, Algorithm: alg, Seed: seed, Metrics: metrics,
		})
		if err != nil {
			return nil, err
		}
		clf, err := mining.TrainPG(pub, classOf, 2, mining.Config{})
		if err != nil {
			return nil, err
		}
		row := AblationGenRow{
			Algorithm: alg.String(),
			Groups:    pub.Len(),
			ErrPG:     1 - mining.Accuracy(clf.Predict, d, classOf),
		}
		min, sum := int(^uint(0)>>1), 0
		for _, r := range pub.Rows {
			if r.G < min {
				min = r.G
			}
			sum += r.G
		}
		row.MinGroup = min
		row.AvgGroup = float64(sum) / float64(pub.Len())
		out = append(out, row)
	}
	return out, nil
}

// RenderAblationGen formats the Phase-2 ablation.
func RenderAblationGen(rows []AblationGenRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %9s %9s %8s\n", "algorithm", "groups", "minG", "avgG", "errPG")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %9d %9.1f %7.2f%%\n",
			r.Algorithm, r.Groups, r.MinGroup, r.AvgGroup, r.ErrPG*100)
	}
	return b.String()
}

// AblationTreeRow compares reconstruction-on versus reconstruction-off
// mining of the same publication (Extra E3).
type AblationTreeRow struct {
	P                  float64
	ErrReconstructed   float64
	ErrUnreconstructed float64
}

// AblationReconstruction measures the value of the perturbation-inversion
// hook across retention probabilities.
func AblationReconstruction(n int, seed int64, k int, ps []float64) ([]AblationTreeRow, error) {
	if n <= 0 {
		n = 20000
	}
	if len(ps) == 0 {
		ps = []float64{0.15, 0.3, 0.45}
	}
	d, err := sal.Generate(n, seed)
	if err != nil {
		return nil, err
	}
	classOf, err := sal.Categorizer(2)
	if err != nil {
		return nil, err
	}
	identity := func(obs []float64) []float64 { return obs }
	var out []AblationTreeRow
	for _, p := range ps {
		pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{
			K: k, P: p, Algorithm: pg.KD, Seed: seed, Metrics: metrics,
		})
		if err != nil {
			return nil, err
		}
		withRec, err := mining.TrainPG(pub, classOf, 2, mining.Config{})
		if err != nil {
			return nil, err
		}
		withoutRec, err := mining.TrainPG(pub, classOf, 2, mining.Config{Adjust: identity})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationTreeRow{
			P:                  p,
			ErrReconstructed:   1 - mining.Accuracy(withRec.Predict, d, classOf),
			ErrUnreconstructed: 1 - mining.Accuracy(withoutRec.Predict, d, classOf),
		})
	}
	return out, nil
}

// RenderAblationTree formats the reconstruction ablation.
func RenderAblationTree(rows []AblationTreeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %14s %14s\n", "p", "err(reconstr)", "err(raw)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6.2f %13.2f%% %13.2f%%\n",
			r.P, r.ErrReconstructed*100, r.ErrUnreconstructed*100)
	}
	return b.String()
}

// CardinalityRow is one microdata size of the cardinality sweep (Extra E4).
type CardinalityRow struct {
	N      int
	ErrPG  float64
	ErrOpt float64
}

// CardinalitySweep measures how PG utility approaches the optimistic
// yardstick as |D| grows — the paper's remark that perturbation-based
// approaches need a sizable microdata (end of Section IV).
func CardinalitySweep(sizes []int, seed int64, k int, p float64) ([]CardinalityRow, error) {
	if len(sizes) == 0 {
		sizes = []int{10000, 25000, 50000, 100000}
	}
	classOf, err := sal.Categorizer(2)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var out []CardinalityRow
	for _, n := range sizes {
		d, err := sal.Generate(n, seed)
		if err != nil {
			return nil, err
		}
		pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{
			K: k, P: p, Algorithm: pg.KD, Rng: rng, Metrics: metrics,
		})
		if err != nil {
			return nil, err
		}
		clf, err := mining.TrainPG(pub, classOf, 2, mining.Config{})
		if err != nil {
			return nil, err
		}
		sub, err := d.RandomSubset(d.Len()/k, rng)
		if err != nil {
			return nil, err
		}
		opt, err := mining.TrainTable(sub, classOf, 2, mining.Config{})
		if err != nil {
			return nil, err
		}
		out = append(out, CardinalityRow{
			N:      n,
			ErrPG:  1 - mining.Accuracy(clf.Predict, d, classOf),
			ErrOpt: 1 - mining.Accuracy(opt.Predict, d, classOf),
		})
	}
	return out, nil
}

// RenderCardinality formats the cardinality sweep.
func RenderCardinality(rows []CardinalityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "|D|", "errPG", "errOpt")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %9.2f%% %9.2f%%\n", r.N, r.ErrPG*100, r.ErrOpt*100)
	}
	return b.String()
}
