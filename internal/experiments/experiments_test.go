package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTableIIIaMatchesPaper(t *testing.T) {
	rows, err := TableIIIa()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// The paper's printed values (2 decimals, mixed rounding/truncation).
	paperRho2 := []float64{0.69, 0.53, 0.45, 0.40, 0.36}
	paperDelta := []float64{0.47, 0.31, 0.24, 0.19, 0.16}
	for i, r := range rows {
		if r.P != 0.3 {
			t.Fatalf("row %d P = %v", i, r.P)
		}
		if math.Abs(r.Rho2-paperRho2[i]) > 0.011 {
			t.Errorf("k=%d rho2 = %.4f vs paper %.2f", r.K, r.Rho2, paperRho2[i])
		}
		if math.Abs(r.Delta-paperDelta[i]) > 0.011 {
			t.Errorf("k=%d delta = %.4f vs paper %.2f", r.K, r.Delta, paperDelta[i])
		}
	}
	// Monotone: stronger protection (lower bounds) as k grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].Rho2 >= rows[i-1].Rho2 || rows[i].Delta >= rows[i-1].Delta {
			t.Fatal("bounds must strictly decrease with k")
		}
	}
	txt := RenderTableIII(rows, "k")
	if !strings.Contains(txt, "rho2") || !strings.Contains(txt, ">=0.69") {
		t.Fatalf("render missing content:\n%s", txt)
	}
}

func TestTableIIIbMatchesPaper(t *testing.T) {
	rows, err := TableIIIb()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	paperRho2 := []float64{0.34, 0.38, 0.41, 0.45, 0.49, 0.52, 0.56}
	paperDelta := []float64{0.12, 0.16, 0.20, 0.24, 0.28, 0.32, 0.36}
	for i, r := range rows {
		if r.K != 6 {
			t.Fatalf("row %d K = %d", i, r.K)
		}
		if math.Abs(r.Rho2-paperRho2[i]) > 0.011 {
			t.Errorf("p=%v rho2 = %.4f vs paper %.2f", r.P, r.Rho2, paperRho2[i])
		}
		if math.Abs(r.Delta-paperDelta[i]) > 0.011 {
			t.Errorf("p=%v delta = %.4f vs paper %.2f", r.P, r.Delta, paperDelta[i])
		}
	}
	// Weaker protection (higher bounds) as p grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].Rho2 <= rows[i-1].Rho2 || rows[i].Delta <= rows[i-1].Delta {
			t.Fatal("bounds must strictly increase with p")
		}
	}
	txt := RenderTableIII(rows, "p")
	if !strings.Contains(txt, "0.15") {
		t.Fatalf("render missing p header:\n%s", txt)
	}
}

// Figure 2's shape at reduced scale: PG below pessimistic error everywhere,
// within a modest band of optimistic, and pessimistic far off.
func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("utility sweep is seconds-long")
	}
	pts, err := Figure2(UtilityConfig{N: 20000, Seed: 11, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	for _, pt := range pts {
		if !(pt.ErrPG < pt.ErrPes-0.01) {
			t.Errorf("k=%v: PG error %.3f not below pessimistic %.3f", pt.X, pt.ErrPG, pt.ErrPes)
		}
		if pt.ErrPG-pt.ErrOpt > 0.15 {
			t.Errorf("k=%v: PG error %.3f too far above optimistic %.3f", pt.X, pt.ErrPG, pt.ErrOpt)
		}
	}
	txt := RenderUtility(pts, "k")
	if !strings.Contains(txt, "PG") || !strings.Contains(txt, "pessimistic") {
		t.Fatalf("render missing series:\n%s", txt)
	}
}

// Figure 3's shape: PG error at the largest p must beat PG error at the
// smallest p (utility improves with retention), with yardsticks flat-ish.
func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("utility sweep is seconds-long")
	}
	pts, err := Figure3(UtilityConfig{N: 20000, Seed: 12, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("points = %d, want 7", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	if !(last.ErrPG < first.ErrPG) {
		t.Errorf("PG error should fall as p grows: p=%.2f err %.3f vs p=%.2f err %.3f",
			first.X, first.ErrPG, last.X, last.ErrPG)
	}
	for _, pt := range pts {
		if !(pt.ErrPG < pt.ErrPes+0.02) {
			t.Errorf("p=%v: PG error %.3f above pessimistic %.3f", pt.X, pt.ErrPG, pt.ErrPes)
		}
	}
}

func TestUtilityConfigValidation(t *testing.T) {
	if _, err := Figure2(UtilityConfig{N: 1000, Seed: 1, M: 5}); err == nil {
		t.Fatal("m=5: want error")
	}
}

func TestBreachValidationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo is seconds-long")
	}
	scenarios, err := BreachValidation(BreachConfig{N: 800, Trials: 60, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 4 {
		t.Fatalf("scenarios = %d, want 4", len(scenarios))
	}
	for _, s := range scenarios {
		r := s.Result
		if r.BreachesRho != 0 || r.BreachesDelta != 0 {
			t.Errorf("%s: breaches rho=%d delta=%d", s.Name, r.BreachesRho, r.BreachesDelta)
		}
		if r.MaxH > r.MaxHBound+1e-9 {
			t.Errorf("%s: MaxH %v above bound %v", s.Name, r.MaxH, r.MaxHBound)
		}
	}
	txt := RenderBreach(scenarios)
	if !strings.Contains(txt, "hospital") || !strings.Contains(txt, "sal") {
		t.Fatalf("render missing scenarios:\n%s", txt)
	}
}

func TestAblationGeneralizer(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is seconds-long")
	}
	rows, err := AblationGeneralizer(8000, 14, 6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byAlg := map[string]AblationGenRow{}
	for _, r := range rows {
		byAlg[r.Algorithm] = r
		if r.MinGroup < 6 {
			t.Errorf("%s: min group %d < k", r.Algorithm, r.MinGroup)
		}
	}
	// The motivating fact of DESIGN.md §3: KD yields far more groups than
	// single-dimensional global recoding on smooth synthetic data.
	if byAlg["kd"].Groups <= byAlg["tds"].Groups {
		t.Errorf("kd groups %d not above tds groups %d", byAlg["kd"].Groups, byAlg["tds"].Groups)
	}
	txt := RenderAblationGen(rows)
	if !strings.Contains(txt, "kd") || !strings.Contains(txt, "tds") {
		t.Fatalf("render missing algorithms:\n%s", txt)
	}
}

func TestAblationReconstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is seconds-long")
	}
	rows, err := AblationReconstruction(10000, 15, 6, []float64{0.2, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	txt := RenderAblationTree(rows)
	if !strings.Contains(txt, "err(reconstr)") {
		t.Fatalf("render header missing:\n%s", txt)
	}
}

func TestCardinalitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	rows, err := CardinalitySweep([]int{4000, 16000}, 16, 6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger microdata must not hurt PG error (the Section IV remark).
	if rows[1].ErrPG > rows[0].ErrPG+0.03 {
		t.Errorf("PG error grew with |D|: %v -> %v", rows[0].ErrPG, rows[1].ErrPG)
	}
	txt := RenderCardinality(rows)
	if !strings.Contains(txt, "errPG") {
		t.Fatalf("render missing header:\n%s", txt)
	}
}

func TestQueryUtilityExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("query workload is seconds-long")
	}
	rows, err := QueryUtility(20000, 17, 6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Queries < 10 {
			t.Fatalf("%s: only %d usable queries", r.Class, r.Queries)
		}
		if r.MedianRel > 0.35 {
			t.Errorf("%s: median relative error %v too high", r.Class, r.MedianRel)
		}
	}
	// On sensitive-restricted queries the corrected estimator must beat the
	// naive one at the median.
	if rows[1].MedianRel >= rows[1].NaiveMedianRel {
		t.Errorf("corrected median %v not below naive %v", rows[1].MedianRel, rows[1].NaiveMedianRel)
	}
	txt := RenderQueryUtility(rows)
	if !strings.Contains(txt, "qi-only") {
		t.Fatalf("render missing class:\n%s", txt)
	}
}

func TestRepublicationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("repub sweep is seconds-long")
	}
	rows, err := Republication(30, 18, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i, r := range rows {
		if r.MaxGrowth > r.GrowthBound+1e-9 {
			t.Errorf("T=%d: observed growth %v exceeds bound %v", r.T, r.MaxGrowth, r.GrowthBound)
		}
		if i > 0 {
			if r.GrowthBound <= rows[i-1].GrowthBound {
				t.Errorf("bound must grow with T")
			}
			if r.PlannedP >= rows[i-1].PlannedP {
				t.Errorf("planned p must shrink with T")
			}
		}
	}
	txt := RenderRepublication(rows)
	if !strings.Contains(txt, "maxGrowth") {
		t.Fatalf("render missing header:\n%s", txt)
	}
}

func TestMinerComparisonExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("miner comparison is seconds-long")
	}
	rows, err := MinerComparison(15000, 19, 6, []float64{0.2, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ErrTree <= 0 || r.ErrTree >= 1 || r.ErrNB <= 0 || r.ErrNB >= 1 {
			t.Fatalf("errors out of range: %+v", r)
		}
		// Both miners must beat coin flipping on this 60/40-ish task.
		if r.ErrTree > 0.45 || r.ErrNB > 0.45 {
			t.Fatalf("miner worse than random-ish: %+v", r)
		}
	}
	txt := RenderMiners(rows)
	if !strings.Contains(txt, "err(NB)") {
		t.Fatalf("render missing header:\n%s", txt)
	}
}
