package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/sal"
)

// ServingReport is the query-serving throughput experiment: one publication,
// one random COUNT workload, answered three ways — the per-query scan
// estimator, the precomputed index sequentially, and the index through the
// batched AnswerWorkload — with the indexed answers checked against the scan
// answers before any timing is reported.
type ServingReport struct {
	N       int     `json:"n"`
	Queries int     `json:"queries"`
	Groups  int     `json:"groups"` // distinct QI boxes the index serves from
	Workers int     `json:"workers"`
	BuildMs float64 `json:"build_ms"` // one-time index construction

	ScanQPS     float64 `json:"scan_qps"`
	IndexQPS    float64 `json:"index_qps"`
	WorkloadQPS float64 `json:"workload_qps"`
	Speedup     float64 `json:"speedup"` // indexed (sequential) over scan

	MaxRelDiff float64 `json:"max_rel_diff"` // worst scan-vs-index disagreement
}

// QueryServing measures serving throughput on n SAL rows with a
// queries-query workload shaped like cmd/pgquery's default (half-width
// ranges on two attributes, 40% of queries with a sensitive band).
func QueryServing(n, queries int, seed int64, k int, p float64, workers int) (*ServingReport, error) {
	if n <= 0 {
		n = 100000
	}
	if queries <= 0 {
		queries = 1000
	}
	d, err := sal.Generate(n, seed)
	if err != nil {
		return nil, err
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: k, P: p, Seed: seed, Workers: workers, Metrics: metrics})
	if err != nil {
		return nil, err
	}
	qs, err := query.Workload(d.Schema, query.WorkloadConfig{
		Queries: queries, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.4,
		Rng: rand.New(rand.NewSource(seed + 1)),
	})
	if err != nil {
		return nil, err
	}

	start := time.Now()
	ix, err := query.NewIndexObserved(pub, metrics)
	if err != nil {
		return nil, err
	}
	build := time.Since(start)
	rep := &ServingReport{
		N: n, Queries: queries, Groups: ix.Groups(), Workers: workers,
		BuildMs: float64(build.Nanoseconds()) / 1e6,
	}

	scan := make([]float64, len(qs))
	start = time.Now()
	for i, q := range qs {
		if scan[i], err = query.Estimate(pub, q); err != nil {
			return nil, err
		}
	}
	rep.ScanQPS = qps(len(qs), time.Since(start))

	indexed := make([]float64, len(qs))
	start = time.Now()
	for i, q := range qs {
		if indexed[i], err = ix.Count(q); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	rep.IndexQPS = qps(len(qs), elapsed)
	rep.Speedup = rep.IndexQPS / rep.ScanQPS

	start = time.Now()
	batched, err := ix.AnswerWorkload(qs, workers)
	if err != nil {
		return nil, err
	}
	rep.WorkloadQPS = qps(len(qs), time.Since(start))

	for i := range qs {
		if batched[i] != indexed[i] {
			return nil, fmt.Errorf("serving: query %d: batched answer %v differs from sequential %v", i, batched[i], indexed[i])
		}
		diff := math.Abs(scan[i]-indexed[i]) / (1 + math.Abs(scan[i]))
		if diff > rep.MaxRelDiff {
			rep.MaxRelDiff = diff
		}
	}
	if rep.MaxRelDiff > 1e-9 {
		return nil, fmt.Errorf("serving: index disagrees with scan by %v (relative)", rep.MaxRelDiff)
	}
	return rep, nil
}

func qps(n int, d time.Duration) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	return float64(n) / d.Seconds()
}

// RenderServing formats the serving report.
func RenderServing(rep *ServingReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d, %d queries, %d groups indexed, build %.1f ms, workers=%d\n",
		rep.N, rep.Queries, rep.Groups, rep.BuildMs, rep.Workers)
	fmt.Fprintf(&b, "%-18s %14s\n", "path", "queries/sec")
	fmt.Fprintf(&b, "%-18s %14.0f\n", "scan", rep.ScanQPS)
	fmt.Fprintf(&b, "%-18s %14.0f\n", "index", rep.IndexQPS)
	fmt.Fprintf(&b, "%-18s %14.0f\n", "index+workers", rep.WorkloadQPS)
	fmt.Fprintf(&b, "index speedup over scan: %.1fx (answers agree to %.1e)\n", rep.Speedup, rep.MaxRelDiff)
	return b.String()
}
