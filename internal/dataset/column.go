package dataset

// Column is one attribute's value array in the struct-of-arrays table
// layout: a single contiguous allocation holding row i's code at index i.
// The element width is chosen per attribute from its domain size — codes of
// a domain with at most 256 values are stored as bytes, anything wider as
// int32 — so a column sweep moves the minimum number of cache lines the
// domain permits.
//
// Exactly one of the two backing slices is non-nil for a column owned by a
// Table. Hot paths branch once on the width (U8 returning non-nil) and run a
// generic sweep over the raw slice; everything else goes through Get, which
// the compiler inlines.
type Column struct {
	u8  []uint8
	i32 []int32
}

// narrowLimit is the largest domain size stored as bytes.
const narrowLimit = 256

// newColumn returns an empty column sized for a domain of `size` codes.
func newColumn(size int) Column {
	if size <= narrowLimit {
		return Column{u8: []uint8{}}
	}
	return Column{i32: []int32{}}
}

// Len returns the number of values in the column.
func (c *Column) Len() int {
	if c.u8 != nil {
		return len(c.u8)
	}
	return len(c.i32)
}

// Get returns the code at row i.
func (c *Column) Get(i int) int32 {
	if c.u8 != nil {
		return int32(c.u8[i])
	}
	return c.i32[i]
}

// Set overwrites the code at row i. The caller is responsible for the value
// being inside the attribute's domain (like Table.SetSensitive always was).
func (c *Column) Set(i int, v int32) {
	if c.u8 != nil {
		c.u8[i] = uint8(v)
		return
	}
	c.i32[i] = v
}

// U8 returns the byte backing of a narrow column, or nil for a wide one.
// Mutating the returned slice mutates the table; only owners of a private
// clone (e.g. the Phase-1 perturber) may do so.
func (c *Column) U8() []uint8 { return c.u8 }

// I32 returns the int32 backing of a wide column, or nil for a narrow one.
// Same mutation rule as U8.
func (c *Column) I32() []int32 { return c.i32 }

// append adds one value, assuming it fits the column's width.
func (c *Column) append(v int32) {
	if c.u8 != nil {
		c.u8 = append(c.u8, uint8(v))
		return
	}
	c.i32 = append(c.i32, v)
}

// grow pre-allocates capacity for n additional values.
func (c *Column) grow(n int) {
	if c.u8 != nil {
		if cap(c.u8)-len(c.u8) < n {
			nb := make([]uint8, len(c.u8), len(c.u8)+n)
			copy(nb, c.u8)
			c.u8 = nb
		}
		return
	}
	if cap(c.i32)-len(c.i32) < n {
		nb := make([]int32, len(c.i32), len(c.i32)+n)
		copy(nb, c.i32)
		c.i32 = nb
	}
}

// clone deep-copies the column.
func (c *Column) clone() Column {
	if c.u8 != nil {
		return Column{u8: append([]uint8{}, c.u8...)}
	}
	return Column{i32: append([]int32{}, c.i32...)}
}

// subset gathers the given rows into a fresh column.
func (c *Column) subset(rows []int) Column {
	if c.u8 != nil {
		out := make([]uint8, len(rows))
		for k, i := range rows {
			out[k] = c.u8[i]
		}
		return Column{u8: out}
	}
	out := make([]int32, len(rows))
	for k, i := range rows {
		out[k] = c.i32[i]
	}
	return Column{i32: out}
}

// AppendTo materializes rows [lo,hi) of the column into dst as int32 codes,
// returning the extended slice. It is the bridge for callers that want a
// width-independent contiguous view of a column range.
func (c *Column) AppendTo(dst []int32, lo, hi int) []int32 {
	if c.u8 != nil {
		for _, v := range c.u8[lo:hi] {
			dst = append(dst, int32(v))
		}
		return dst
	}
	return append(dst, c.i32[lo:hi]...)
}
