package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV serializes the table with a header row of column names and one
// record per row, using attribute labels rather than codes so the output is
// human-readable and round-trips through ReadCSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.ColumnNames()); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	rec := make([]string, t.Schema.Width())
	for i := 0; i < t.Len(); i++ {
		for j, a := range t.Schema.QI {
			rec[j] = a.Label(t.QI(i, j))
		}
		rec[len(rec)-1] = t.Schema.Sensitive.Label(t.Sensitive(i))
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV stream produced by WriteCSV (or any CSV whose header
// matches the schema's column order) into a new table.
func ReadCSV(schema *Schema, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.Width()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	want := schema.ColumnNames()
	for j := range want {
		if header[j] != want[j] {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema wants %q", j, header[j], want[j])
		}
	}
	t := NewTable(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if err := t.AppendLabels(rec...); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
	}
}
