package dataset

import "fmt"

// Schema fixes the layout of a microdata table: d QI attributes A^q_1..A^q_d
// followed by one sensitive attribute A^s (Section II). The sensitive
// attribute must be discrete-valued in the paper's sense; we additionally
// allow it to be declared Continuous when its codes are ordered (the SAL
// Income column), which only affects mining, not privacy semantics.
type Schema struct {
	QI        []*Attribute
	Sensitive *Attribute
}

// NewSchema validates and assembles a schema.
func NewSchema(qi []*Attribute, sensitive *Attribute) (*Schema, error) {
	if len(qi) == 0 {
		return nil, fmt.Errorf("dataset: schema needs at least one QI attribute")
	}
	if sensitive == nil {
		return nil, fmt.Errorf("dataset: schema needs a sensitive attribute")
	}
	seen := make(map[string]bool, len(qi)+1)
	for i, a := range qi {
		if a == nil {
			return nil, fmt.Errorf("dataset: QI attribute %d is nil", i)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if seen[sensitive.Name] {
		return nil, fmt.Errorf("dataset: sensitive attribute reuses name %q", sensitive.Name)
	}
	return &Schema{QI: qi, Sensitive: sensitive}, nil
}

// MustSchema is NewSchema but panics on error.
func MustSchema(qi []*Attribute, sensitive *Attribute) *Schema {
	s, err := NewSchema(qi, sensitive)
	if err != nil {
		panic(err)
	}
	return s
}

// D returns the number of QI attributes (the paper's d).
func (s *Schema) D() int { return len(s.QI) }

// Width returns the number of columns per row (d QI columns + sensitive).
func (s *Schema) Width() int { return len(s.QI) + 1 }

// SensitiveDomain returns |U^s|, the sensitive-domain cardinality.
func (s *Schema) SensitiveDomain() int { return s.Sensitive.Size() }

// QIIndex returns the position of the named QI attribute, or -1.
func (s *Schema) QIIndex(name string) int {
	for i, a := range s.QI {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// ColumnNames returns all column names in storage order, sensitive last.
func (s *Schema) ColumnNames() []string {
	names := make([]string, 0, s.Width())
	for _, a := range s.QI {
		names = append(names, a.Name)
	}
	return append(names, s.Sensitive.Name)
}
