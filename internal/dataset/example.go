package dataset

// This file reconstructs the running example of the paper's Section I
// (Tables Ia and Ib) so tests, examples and attack demonstrations can work
// with the exact scenario the paper analyses.

// HospitalNames lists the individuals of Table Ib (the voter registration
// list) in order. Index into this slice is the individual ID used by Owners
// and by the attack package's external database. Emily (ID 4) is extraneous:
// she appears in the voter list but not in the microdata.
var HospitalNames = []string{"Bob", "Calvin", "Debbie", "Ellie", "Emily", "Fiona", "Gloria", "Henry", "Isaac"}

// HospitalSchema builds the schema of Table Ia: QI attributes Age, Gender,
// Zipcode and sensitive attribute Disease. The Disease domain carries the
// eight diseases of the example plus two extra respiratory values so that
// predicate-based attacks (Lemma 1) have room to operate.
func HospitalSchema() *Schema {
	age := MustIntAttribute("Age", 20, 89)
	gender := MustAttribute("Gender", "M", "F")
	zip := MustIntAttribute("Zipcode", 10, 79) // thousands of dollars, codes 10k..79k
	disease := MustAttribute("Disease",
		"bronchitis", "pneumonia", "breast-cancer", "ovarian-cancer",
		"hypertension", "Alzheimer", "dementia", "HIV", "SARS", "tuberculosis")
	return MustSchema([]*Attribute{age, gender, zip}, disease)
}

// hospitalRows holds Table Ia, one entry per patient, keyed by the owner's
// index in HospitalNames. Emily (4) has no row: she is extraneous.
var hospitalRows = []struct {
	owner   int
	age     string
	gender  string
	zip     string
	disease string
}{
	{0, "25", "M", "25", "bronchitis"},
	{1, "30", "M", "27", "pneumonia"},
	{2, "45", "F", "20", "pneumonia"},
	{3, "50", "F", "15", "breast-cancer"},
	{5, "55", "F", "45", "ovarian-cancer"},
	{6, "58", "F", "32", "hypertension"},
	{7, "65", "M", "65", "Alzheimer"},
	{8, "80", "M", "55", "dementia"},
}

// Hospital returns the microdata D of Table Ia with Owners pointing into
// HospitalNames.
func Hospital() *Table {
	s := HospitalSchema()
	t := NewTable(s)
	for _, r := range hospitalRows {
		if err := t.AppendLabels(r.age, r.gender, r.zip, r.disease); err != nil {
			panic(err)
		}
		t.Owners = append(t.Owners, r.owner)
	}
	return t
}

// HospitalVoterQI returns the QI vectors of the voter registration list
// (Table Ib), indexed like HospitalNames. This is the external database E of
// the attack model: it covers every microdata owner plus the extraneous
// Emily.
func HospitalVoterQI() [][]int32 {
	s := HospitalSchema()
	mk := func(age, gender, zip string) []int32 {
		return []int32{
			s.QI[0].MustCode(age),
			s.QI[1].MustCode(gender),
			s.QI[2].MustCode(zip),
		}
	}
	return [][]int32{
		mk("25", "M", "25"), // Bob
		mk("30", "M", "27"), // Calvin
		mk("45", "F", "20"), // Debbie
		mk("50", "F", "15"), // Ellie
		mk("52", "F", "28"), // Emily (extraneous)
		mk("55", "F", "45"), // Fiona
		mk("58", "F", "32"), // Gloria
		mk("65", "M", "65"), // Henry
		mk("80", "M", "55"), // Isaac
	}
}
