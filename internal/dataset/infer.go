package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// InferSchema scans a CSV and derives a schema: the last column becomes the
// sensitive attribute, the others QI attributes. A column whose every value
// parses as an integer becomes a Continuous attribute over the observed
// integer range; any other column becomes a Discrete attribute over its
// distinct values (sorted for determinism). It returns the schema plus the
// loaded table, so arbitrary CSVs can feed the pipeline without hand-written
// schemas. The whole input is buffered (two passes over the records).
func InferSchema(r io.Reader) (*Schema, *Table, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(records) < 2 {
		return nil, nil, fmt.Errorf("dataset: need a header and at least one row, got %d records", len(records))
	}
	header := records[0]
	cols := len(header)
	if cols < 2 {
		return nil, nil, fmt.Errorf("dataset: need at least one QI column and a sensitive column")
	}

	attrs := make([]*Attribute, cols)
	for j := 0; j < cols; j++ {
		if header[j] == "" {
			return nil, nil, fmt.Errorf("dataset: column %d has an empty name", j)
		}
		numeric := true
		lo, hi := 0, 0
		distinct := map[string]bool{}
		for i, rec := range records[1:] {
			if len(rec) != cols {
				return nil, nil, fmt.Errorf("dataset: row %d has %d columns, want %d", i+1, len(rec), cols)
			}
			v := rec[j]
			distinct[v] = true
			if numeric {
				n, err := strconv.Atoi(v)
				if err != nil {
					numeric = false
					continue
				}
				if i == 0 || n < lo {
					lo = n
				}
				if i == 0 || n > hi {
					hi = n
				}
			}
		}
		if numeric {
			a, err := NewIntAttribute(header[j], lo, hi)
			if err != nil {
				return nil, nil, err
			}
			attrs[j] = a
			continue
		}
		labels := make([]string, 0, len(distinct))
		for v := range distinct {
			labels = append(labels, v)
		}
		sort.Strings(labels)
		a, err := NewAttribute(header[j], labels...)
		if err != nil {
			return nil, nil, err
		}
		attrs[j] = a
	}

	schema, err := NewSchema(attrs[:cols-1], attrs[cols-1])
	if err != nil {
		return nil, nil, err
	}
	t := NewTable(schema)
	for i, rec := range records[1:] {
		if err := t.AppendLabels(rec...); err != nil {
			return nil, nil, fmt.Errorf("dataset: row %d: %w", i+1, err)
		}
	}
	return schema, t, nil
}
