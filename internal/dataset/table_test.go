package dataset

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		[]*Attribute{
			MustIntAttribute("Age", 0, 9),
			MustAttribute("Gender", "M", "F"),
		},
		MustAttribute("Disease", "flu", "cold", "cough"),
	)
}

func TestSchemaValidation(t *testing.T) {
	age := MustIntAttribute("Age", 0, 9)
	dis := MustAttribute("Disease", "flu", "cold")
	if _, err := NewSchema(nil, dis); err == nil {
		t.Fatal("no QI: want error")
	}
	if _, err := NewSchema([]*Attribute{age}, nil); err == nil {
		t.Fatal("nil sensitive: want error")
	}
	if _, err := NewSchema([]*Attribute{age, age}, dis); err == nil {
		t.Fatal("duplicate QI name: want error")
	}
	if _, err := NewSchema([]*Attribute{age}, age); err == nil {
		t.Fatal("sensitive reusing QI name: want error")
	}
	if _, err := NewSchema([]*Attribute{age, nil}, dis); err == nil {
		t.Fatal("nil QI entry: want error")
	}
	s := MustSchema([]*Attribute{age}, dis)
	if s.D() != 1 || s.Width() != 2 || s.SensitiveDomain() != 2 {
		t.Fatalf("D/Width/SensitiveDomain = %d/%d/%d", s.D(), s.Width(), s.SensitiveDomain())
	}
	if s.QIIndex("Age") != 0 || s.QIIndex("Nope") != -1 {
		t.Fatal("QIIndex mismatch")
	}
	if got := s.ColumnNames(); !reflect.DeepEqual(got, []string{"Age", "Disease"}) {
		t.Fatalf("ColumnNames = %v", got)
	}
}

func TestTableAppendAndAccessors(t *testing.T) {
	tb := NewTable(testSchema(t))
	if err := tb.Append([]int32{3, 1, 2}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := tb.AppendLabels("5", "M", "flu"); err != nil {
		t.Fatalf("AppendLabels: %v", err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if tb.QI(0, 0) != 3 || tb.QI(0, 1) != 1 || tb.Sensitive(0) != 2 {
		t.Fatalf("row 0 = %v", tb.Row(0))
	}
	if got := tb.QIVector(1); !reflect.DeepEqual(got, []int32{5, 0}) {
		t.Fatalf("QIVector(1) = %v", got)
	}
	tb.SetSensitive(1, 1)
	if tb.Sensitive(1) != 1 {
		t.Fatal("SetSensitive did not stick")
	}
	if tb.Owner(0) != 0 || tb.Owner(1) != 1 {
		t.Fatal("implicit owners should be row indices")
	}
}

func TestTableAppendErrors(t *testing.T) {
	tb := NewTable(testSchema(t))
	if err := tb.Append([]int32{1, 2}); err == nil {
		t.Fatal("short row: want error")
	}
	if err := tb.Append([]int32{99, 0, 0}); err == nil {
		t.Fatal("QI out of domain: want error")
	}
	if err := tb.Append([]int32{1, 0, 9}); err == nil {
		t.Fatal("sensitive out of domain: want error")
	}
	if err := tb.AppendLabels("1", "M"); err == nil {
		t.Fatal("short labels: want error")
	}
	if err := tb.AppendLabels("1", "X", "flu"); err == nil {
		t.Fatal("bad QI label: want error")
	}
	if err := tb.AppendLabels("1", "M", "plague"); err == nil {
		t.Fatal("bad sensitive label: want error")
	}
	if tb.Len() != 0 {
		t.Fatalf("failed appends must not add rows, Len = %d", tb.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppend on bad row: want panic")
		}
	}()
	tb.MustAppend([]int32{1, 2})
}

func TestTableCloneIsDeep(t *testing.T) {
	tb := NewTable(testSchema(t))
	tb.MustAppend([]int32{1, 0, 0})
	tb.Owners = []int{7}
	c := tb.Clone()
	c.SetSensitive(0, 2)
	c.Owners[0] = 9
	if tb.Sensitive(0) != 0 || tb.Owners[0] != 7 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTableSubsetPreservesOwners(t *testing.T) {
	tb := NewTable(testSchema(t))
	for i := int32(0); i < 5; i++ {
		tb.MustAppend([]int32{i, 0, i % 3})
	}
	s := tb.Subset([]int{4, 1})
	if s.Len() != 2 {
		t.Fatalf("subset Len = %d", s.Len())
	}
	if s.Owner(0) != 4 || s.Owner(1) != 1 {
		t.Fatalf("owners = %d,%d; want 4,1", s.Owner(0), s.Owner(1))
	}
	s.SetSensitive(0, 0)
	if tb.Sensitive(4) != 1 {
		t.Fatal("Subset shares row storage with original")
	}
}

func TestRandomSubset(t *testing.T) {
	tb := NewTable(testSchema(t))
	for i := int32(0); i < 8; i++ {
		tb.MustAppend([]int32{i, 0, 0})
	}
	rng := rand.New(rand.NewSource(1))
	s, err := tb.RandomSubset(3, rng)
	if err != nil || s.Len() != 3 {
		t.Fatalf("RandomSubset: %v len=%d", err, s.Len())
	}
	seen := map[int]bool{}
	for i := 0; i < s.Len(); i++ {
		if seen[s.Owner(i)] {
			t.Fatal("RandomSubset drew a duplicate row")
		}
		seen[s.Owner(i)] = true
	}
	if _, err := tb.RandomSubset(9, rng); err == nil {
		t.Fatal("oversized subset: want error")
	}
	if _, err := tb.RandomSubset(-1, rng); err == nil {
		t.Fatal("negative subset: want error")
	}
}

func TestSensitiveHistogram(t *testing.T) {
	tb := NewTable(testSchema(t))
	for _, s := range []int32{0, 1, 1, 2, 2, 2} {
		tb.MustAppend([]int32{0, 0, s})
	}
	if got := tb.SensitiveHistogram(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("histogram = %v", got)
	}
}

func TestValidate(t *testing.T) {
	tb := NewTable(testSchema(t))
	tb.MustAppend([]int32{1, 1, 1})
	if err := tb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	tb.cols[0].Set(0, 99)
	if err := tb.Validate(); err == nil {
		t.Fatal("corrupted QI: want error")
	}
	tb.cols[0].Set(0, 1)
	tb.cols[2].Set(0, 99)
	if err := tb.Validate(); err == nil {
		t.Fatal("corrupted sensitive: want error")
	}
	tb.cols[2].Set(0, 1)
	tb.Owners = []int{1, 2}
	if err := tb.Validate(); err == nil {
		t.Fatal("owner length mismatch: want error")
	}
	tb.Owners = nil
	tb.cols[0] = newColumn(tb.Schema.QI[0].Size())
	if err := tb.Validate(); err == nil {
		t.Fatal("column length mismatch: want error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := NewTable(testSchema(t))
	tb.MustAppend([]int32{3, 1, 2})
	tb.MustAppend([]int32{5, 0, 0})
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(tb.Schema, &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Len() != tb.Len() {
		t.Fatalf("round-trip Len = %d, want %d", got.Len(), tb.Len())
	}
	for i := 0; i < tb.Len(); i++ {
		if !reflect.DeepEqual(got.Row(i), tb.Row(i)) {
			t.Fatalf("row %d = %v, want %v", i, got.Row(i), tb.Row(i))
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := testSchema(t)
	cases := []string{
		"",                                   // no header
		"Bogus,Gender,Disease\n",             // wrong header name
		"Age,Gender,Disease\n1,M\n",          // short record
		"Age,Gender,Disease\n1,M,plague\n",   // unknown label
		"Age,Gender,Disease\n999,M,flu\n",    // out-of-range age label
		"Age,Gender,Disease\n1,M,flu,oops\n", // long record
	}
	for _, in := range cases {
		if _, err := ReadCSV(s, strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q): want error", in)
		}
	}
}

func TestHospitalExample(t *testing.T) {
	h := Hospital()
	if h.Len() != 8 {
		t.Fatalf("hospital Len = %d, want 8", h.Len())
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Emily (ID 4) must be extraneous: no row owned by 4.
	for i := 0; i < h.Len(); i++ {
		if h.Owner(i) == 4 {
			t.Fatal("Emily must not own a microdata row")
		}
	}
	voters := HospitalVoterQI()
	if len(voters) != len(HospitalNames) {
		t.Fatalf("voter list size %d, want %d", len(voters), len(HospitalNames))
	}
	// Every microdata row's QI vector must appear in the voter list at the
	// owner's position (the equi-join of Section I).
	for i := 0; i < h.Len(); i++ {
		if !reflect.DeepEqual(h.QIVector(i), voters[h.Owner(i)]) {
			t.Fatalf("row %d QI %v != voter %v", i, h.QIVector(i), voters[h.Owner(i)])
		}
	}
	// Bob has bronchitis per Table Ia.
	if h.Schema.Sensitive.Label(h.Sensitive(0)) != "bronchitis" {
		t.Fatal("Bob's disease mismatch")
	}
}
