package dataset

import (
	"strings"
	"testing"
)

func TestInferSchemaMixed(t *testing.T) {
	in := "Age,Gender,Disease\n25,M,flu\n30,F,cold\n25,F,flu\n"
	schema, tbl, err := InferSchema(strings.NewReader(in))
	if err != nil {
		t.Fatalf("InferSchema: %v", err)
	}
	if schema.D() != 2 {
		t.Fatalf("D = %d, want 2", schema.D())
	}
	if schema.QI[0].Kind != Continuous || schema.QI[0].Size() != 6 {
		t.Fatalf("Age inferred as %v size %d, want Continuous over 25..30", schema.QI[0].Kind, schema.QI[0].Size())
	}
	if schema.QI[1].Kind != Discrete || schema.QI[1].Size() != 2 {
		t.Fatalf("Gender inferred as %v size %d", schema.QI[1].Kind, schema.QI[1].Size())
	}
	if schema.Sensitive.Name != "Disease" || schema.Sensitive.Size() != 2 {
		t.Fatalf("sensitive = %q size %d", schema.Sensitive.Name, schema.Sensitive.Size())
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Labels round-trip: row 1 is (30, F, cold).
	if schema.QI[0].Label(tbl.QI(1, 0)) != "30" ||
		schema.QI[1].Label(tbl.QI(1, 1)) != "F" ||
		schema.Sensitive.Label(tbl.Sensitive(1)) != "cold" {
		t.Fatal("row 1 labels wrong")
	}
}

func TestInferSchemaNegativeNumbers(t *testing.T) {
	in := "Balance,Status\n-10,ok\n5,bad\n"
	schema, tbl, err := InferSchema(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if schema.QI[0].Size() != 16 { // -10..5
		t.Fatalf("Balance size = %d, want 16", schema.QI[0].Size())
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestInferSchemaErrors(t *testing.T) {
	cases := []string{
		"",           // empty
		"A,B\n",      // header only
		"A\n1\n",     // single column
		",B\n1,x\n",  // empty column name
		"A,B\n1\n",   // ragged row (csv reader catches)
		"A,A\n1,2\n", // duplicate names
	}
	for _, in := range cases {
		if _, _, err := InferSchema(strings.NewReader(in)); err == nil {
			t.Errorf("InferSchema(%q): want error", in)
		}
	}
}

// A SAL CSV round-trips through inference with a compatible shape.
func TestInferSchemaRoundTripLabels(t *testing.T) {
	src := "X,Y,S\n1,a,s1\n2,b,s2\n3,a,s1\n"
	schema, tbl, err := InferSchema(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	schema2, tbl2, err := InferSchema(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if schema2.D() != schema.D() || tbl2.Len() != tbl.Len() {
		t.Fatal("round trip changed shape")
	}
}

// FuzzInferSchema: arbitrary CSV input must never panic, and every accepted
// table must validate against its inferred schema.
func FuzzInferSchema(f *testing.F) {
	f.Add("A,B\n1,x\n2,y\n")
	f.Add("A,B\n-5,x\n")
	f.Add("A,B\n1,x\n1,x\n")
	f.Add("garbage")
	f.Add("A,B\n\"q\",x\n")
	f.Fuzz(func(t *testing.T, body string) {
		_, tbl, err := InferSchema(strings.NewReader(body))
		if err != nil {
			return
		}
		if err := tbl.Validate(); err != nil {
			t.Fatalf("accepted invalid table: %v", err)
		}
	})
}
