package dataset

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAttribute(t *testing.T) {
	a, err := NewAttribute("Gender", "M", "F")
	if err != nil {
		t.Fatalf("NewAttribute: %v", err)
	}
	if a.Size() != 2 {
		t.Fatalf("Size = %d, want 2", a.Size())
	}
	if a.Kind != Discrete {
		t.Fatalf("Kind = %v, want Discrete", a.Kind)
	}
	if got := a.Label(1); got != "F" {
		t.Fatalf("Label(1) = %q, want F", got)
	}
	c, err := a.Code("M")
	if err != nil || c != 0 {
		t.Fatalf("Code(M) = %d, %v; want 0, nil", c, err)
	}
}

func TestNewAttributeErrors(t *testing.T) {
	cases := []struct {
		name   string
		labels []string
	}{
		{"", []string{"x"}},
		{"A", nil},
		{"A", []string{"x", "x"}},
		{"A", []string{""}},
	}
	for _, c := range cases {
		if _, err := NewAttribute(c.name, c.labels...); err == nil {
			t.Errorf("NewAttribute(%q, %v): want error", c.name, c.labels)
		}
	}
}

func TestNewIntAttribute(t *testing.T) {
	a, err := NewIntAttribute("Age", 20, 89)
	if err != nil {
		t.Fatalf("NewIntAttribute: %v", err)
	}
	if a.Size() != 70 {
		t.Fatalf("Size = %d, want 70", a.Size())
	}
	if a.Kind != Continuous {
		t.Fatalf("Kind = %v, want Continuous", a.Kind)
	}
	if got := a.Label(0); got != "20" {
		t.Fatalf("Label(0) = %q, want 20", got)
	}
	if got := a.MustCode("89"); got != 69 {
		t.Fatalf("MustCode(89) = %d, want 69", got)
	}
	if _, err := NewIntAttribute("Age", 5, 4); err == nil {
		t.Fatal("empty range: want error")
	}
	if _, err := NewIntAttribute("", 0, 1); err == nil {
		t.Fatal("empty name: want error")
	}
}

func TestAttributeCodeUnknown(t *testing.T) {
	a := MustAttribute("Gender", "M", "F")
	if _, err := a.Code("X"); err == nil {
		t.Fatal("Code(X): want error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCode(X): want panic")
		}
	}()
	a.MustCode("X")
}

func TestAttributeLabelOutOfDomain(t *testing.T) {
	a := MustAttribute("Gender", "M", "F")
	if got := a.Label(5); !strings.Contains(got, "out of domain") {
		t.Fatalf("Label(5) = %q, want out-of-domain marker", got)
	}
	if a.Valid(-1) || a.Valid(2) {
		t.Fatal("Valid accepted out-of-domain code")
	}
	if !a.Valid(0) || !a.Valid(1) {
		t.Fatal("Valid rejected in-domain code")
	}
}

// Property: for any integer range, Label and Code are inverse bijections.
func TestIntAttributeRoundTrip(t *testing.T) {
	f := func(loRaw int16, span uint8) bool {
		lo := int(loRaw)
		hi := lo + int(span)
		a, err := NewIntAttribute("X", lo, hi)
		if err != nil {
			return false
		}
		for c := int32(0); int(c) < a.Size(); c++ {
			got, err := a.Code(a.Label(c))
			if err != nil || got != c {
				return false
			}
			if a.Label(c) != strconv.Itoa(lo+int(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Discrete.String() != "discrete" || Continuous.String() != "continuous" {
		t.Fatal("Kind.String mismatch")
	}
	if got := Kind(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown kind string = %q", got)
	}
}
