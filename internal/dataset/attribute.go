// Package dataset models microdata tables as defined in Section II of the
// paper: a relation with d quasi-identifier (QI) attributes and one discrete
// sensitive attribute. Every attribute value is encoded as an int32 code into
// the attribute's domain, which keeps grouping, perturbation and mining
// allocation-light while remaining faithful to the paper's formalism.
package dataset

import (
	"fmt"
	"strconv"
)

// Kind distinguishes the two attribute classes of Section II. Continuous
// attributes are still integer-coded (one code per distinct value); the kind
// only signals that the domain carries a natural order, which generalization
// hierarchies and decision-tree threshold splits exploit.
type Kind int

const (
	// Discrete marks a categorical attribute with unordered codes.
	Discrete Kind = iota
	// Continuous marks an attribute whose codes are naturally ordered.
	Continuous
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Discrete:
		return "discrete"
	case Continuous:
		return "continuous"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one column: its name, kind, and domain of labelled
// codes. The domain of code i is Values[i]; codes run 0..Size()-1.
type Attribute struct {
	Name   string
	Kind   Kind
	Values []string

	index map[string]int32
}

// NewAttribute creates a discrete attribute whose domain is the given label
// list. Labels must be unique and non-empty.
func NewAttribute(name string, labels ...string) (*Attribute, error) {
	if name == "" {
		return nil, fmt.Errorf("dataset: attribute name must be non-empty")
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("dataset: attribute %q needs at least one label", name)
	}
	a := &Attribute{
		Name:   name,
		Kind:   Discrete,
		Values: append([]string(nil), labels...),
		index:  make(map[string]int32, len(labels)),
	}
	for i, l := range labels {
		if l == "" {
			return nil, fmt.Errorf("dataset: attribute %q: label %d is empty", name, i)
		}
		if _, dup := a.index[l]; dup {
			return nil, fmt.Errorf("dataset: attribute %q: duplicate label %q", name, l)
		}
		a.index[l] = int32(i)
	}
	return a, nil
}

// MustAttribute is NewAttribute but panics on error. Intended for statically
// known schemas (tests, examples, the SAL generator).
func MustAttribute(name string, labels ...string) *Attribute {
	a, err := NewAttribute(name, labels...)
	if err != nil {
		panic(err)
	}
	return a
}

// NewIntAttribute creates a continuous attribute enumerating the integer
// range [lo, hi]. Code i corresponds to the integer lo+i.
func NewIntAttribute(name string, lo, hi int) (*Attribute, error) {
	if name == "" {
		return nil, fmt.Errorf("dataset: attribute name must be non-empty")
	}
	if hi < lo {
		return nil, fmt.Errorf("dataset: attribute %q: empty range [%d, %d]", name, lo, hi)
	}
	n := hi - lo + 1
	a := &Attribute{
		Name:   name,
		Kind:   Continuous,
		Values: make([]string, n),
		index:  make(map[string]int32, n),
	}
	for i := 0; i < n; i++ {
		l := strconv.Itoa(lo + i)
		a.Values[i] = l
		a.index[l] = int32(i)
	}
	return a, nil
}

// MustIntAttribute is NewIntAttribute but panics on error.
func MustIntAttribute(name string, lo, hi int) *Attribute {
	a, err := NewIntAttribute(name, lo, hi)
	if err != nil {
		panic(err)
	}
	return a
}

// Size returns the domain cardinality |dom(A)|.
func (a *Attribute) Size() int { return len(a.Values) }

// Label returns the label of a code, or a placeholder for out-of-domain codes.
func (a *Attribute) Label(code int32) string {
	if code < 0 || int(code) >= len(a.Values) {
		return fmt.Sprintf("<code %d out of domain %s>", code, a.Name)
	}
	return a.Values[code]
}

// Code resolves a label to its code.
func (a *Attribute) Code(label string) (int32, error) {
	c, ok := a.index[label]
	if !ok {
		return 0, fmt.Errorf("dataset: attribute %q has no value %q", a.Name, label)
	}
	return c, nil
}

// MustCode is Code but panics on unknown labels.
func (a *Attribute) MustCode(label string) int32 {
	c, err := a.Code(label)
	if err != nil {
		panic(err)
	}
	return c
}

// Valid reports whether code lies inside the attribute domain.
func (a *Attribute) Valid(code int32) bool {
	return code >= 0 && int(code) < len(a.Values)
}
