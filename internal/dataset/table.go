package dataset

import (
	"fmt"
	"math/rand"
)

// Table is a microdata relation D in struct-of-arrays form: one contiguous
// width-chosen Column per QI attribute (column j holds the code of QI
// attribute j for every row) plus one for the sensitive attribute. Each row
// describes one individual; the owner of row i is individual i unless Owners
// overrides the mapping (tuples have distinct owners, the standard
// assumption of Section II).
//
// The columnar layout is the perf core of the pipeline: Phase-1 perturbation
// writes one contiguous sensitive array, the grouping engine packs keys with
// one linear pass per QI column, and the kd partitioner's scans touch only
// the columns they split on. The row-major accessors (Row, QIVector) remain
// as views so existing callers keep working; they materialize copies and are
// not for hot loops.
type Table struct {
	Schema *Schema

	// cols[j] for j < d is QI attribute j; cols[d] is the sensitive column.
	cols []Column
	n    int

	// Owners optionally names the owner of each row with an external
	// individual ID. nil means owner(i) == i.
	Owners []int
}

// NewTable creates an empty table for the schema, choosing each column's
// element width from its attribute's domain size.
func NewTable(schema *Schema) *Table {
	t := &Table{Schema: schema, cols: make([]Column, schema.Width())}
	for j, a := range schema.QI {
		t.cols[j] = newColumn(a.Size())
	}
	t.cols[schema.D()] = newColumn(schema.Sensitive.Size())
	return t
}

// Len returns |D|.
func (t *Table) Len() int { return t.n }

// Grow pre-allocates column capacity for n additional rows; purely an
// optimization for bulk loaders (CSV, the SAL generator).
func (t *Table) Grow(n int) {
	for j := range t.cols {
		t.cols[j].grow(n)
	}
}

// Append adds a row after validating it against the schema. The slice is
// copied into the columns; the caller keeps ownership.
func (t *Table) Append(row []int32) error {
	if len(row) != t.Schema.Width() {
		return fmt.Errorf("dataset: row has %d columns, schema wants %d", len(row), t.Schema.Width())
	}
	for j, a := range t.Schema.QI {
		if !a.Valid(row[j]) {
			return fmt.Errorf("dataset: row %d: QI %q code %d out of domain [0,%d)",
				t.Len(), a.Name, row[j], a.Size())
		}
	}
	if s := row[len(row)-1]; !t.Schema.Sensitive.Valid(s) {
		return fmt.Errorf("dataset: row %d: sensitive code %d out of domain [0,%d)",
			t.Len(), s, t.Schema.Sensitive.Size())
	}
	for j, v := range row {
		t.cols[j].append(v)
	}
	t.n++
	return nil
}

// MustAppend is Append but panics on error.
func (t *Table) MustAppend(row []int32) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// AppendLabels adds a row given attribute labels in schema order.
func (t *Table) AppendLabels(labels ...string) error {
	if len(labels) != t.Schema.Width() {
		return fmt.Errorf("dataset: got %d labels, schema wants %d", len(labels), t.Schema.Width())
	}
	row := make([]int32, len(labels))
	for j, a := range t.Schema.QI {
		c, err := a.Code(labels[j])
		if err != nil {
			return err
		}
		row[j] = c
	}
	c, err := t.Schema.Sensitive.Code(labels[len(labels)-1])
	if err != nil {
		return err
	}
	row[len(row)-1] = c
	for j, v := range row {
		t.cols[j].append(v)
	}
	t.n++
	return nil
}

// Row returns row i as a freshly allocated slice (a row-major view of the
// columnar storage). Not for hot loops — sweep columns instead.
func (t *Table) Row(i int) []int32 {
	row := make([]int32, len(t.cols))
	for j := range t.cols {
		row[j] = t.cols[j].Get(i)
	}
	return row
}

// QI returns the code of QI attribute j in row i.
func (t *Table) QI(i, j int) int32 { return t.cols[j].Get(i) }

// QICol returns QI attribute j's column. Read-only for shared tables.
func (t *Table) QICol(j int) *Column { return &t.cols[j] }

// SensitiveCol returns the sensitive column. Mutating it through the width
// accessors is the Phase-1 perturber's prerogative on its private clone;
// everyone else treats it as read-only.
func (t *Table) SensitiveCol() *Column { return &t.cols[t.Schema.D()] }

// QIVector returns the QI-vector t.v^q of row i (a copy).
func (t *Table) QIVector(i int) []int32 {
	d := t.Schema.D()
	v := make([]int32, d)
	for j := 0; j < d; j++ {
		v[j] = t.cols[j].Get(i)
	}
	return v
}

// Sensitive returns the sensitive code of row i (the paper's t.A^s).
func (t *Table) Sensitive(i int) int32 { return t.cols[t.Schema.D()].Get(i) }

// SetSensitive overwrites the sensitive code of row i.
func (t *Table) SetSensitive(i int, v int32) { t.cols[t.Schema.D()].Set(i, v) }

// Owner returns the individual ID owning row i.
func (t *Table) Owner(i int) int {
	if t.Owners == nil {
		return i
	}
	return t.Owners[i]
}

// Clone deep-copies the table: d+1 contiguous column copies plus owners —
// no per-row allocation.
func (t *Table) Clone() *Table {
	c := &Table{Schema: t.Schema, cols: make([]Column, len(t.cols)), n: t.n}
	for j := range t.cols {
		c.cols[j] = t.cols[j].clone()
	}
	if t.Owners != nil {
		c.Owners = append([]int(nil), t.Owners...)
	}
	return c
}

// Subset returns a new table containing the given rows (deep copies), with
// owner IDs preserved so the subset still names the same individuals.
func (t *Table) Subset(rows []int) *Table {
	s := &Table{Schema: t.Schema, cols: make([]Column, len(t.cols)), n: len(rows), Owners: make([]int, len(rows))}
	for j := range t.cols {
		s.cols[j] = t.cols[j].subset(rows)
	}
	for k, i := range rows {
		s.Owners[k] = t.Owner(i)
	}
	return s
}

// RandomSubset draws n distinct rows uniformly at random.
func (t *Table) RandomSubset(n int, rng *rand.Rand) (*Table, error) {
	if n < 0 || n > t.Len() {
		return nil, fmt.Errorf("dataset: subset of %d rows from table of %d", n, t.Len())
	}
	perm := rng.Perm(t.Len())
	return t.Subset(perm[:n]), nil
}

// SensitiveHistogram counts occurrences of each sensitive code in one
// column sweep.
func (t *Table) SensitiveHistogram() []int {
	h := make([]int, t.Schema.SensitiveDomain())
	col := t.SensitiveCol()
	if u8 := col.U8(); u8 != nil {
		for _, v := range u8 {
			h[v]++
		}
		return h
	}
	for _, v := range col.I32() {
		h[v]++
	}
	return h
}

// Validate re-checks all rows against the schema; useful after external
// construction or CSV loading paths that bypass Append.
func (t *Table) Validate() error {
	if t.Owners != nil && len(t.Owners) != t.n {
		return fmt.Errorf("dataset: %d owner IDs for %d rows", len(t.Owners), t.n)
	}
	if len(t.cols) != t.Schema.Width() {
		return fmt.Errorf("dataset: table has %d columns, schema wants %d", len(t.cols), t.Schema.Width())
	}
	for j := range t.cols {
		if t.cols[j].Len() != t.n {
			return fmt.Errorf("dataset: column %d has %d values for %d rows", j, t.cols[j].Len(), t.n)
		}
	}
	for j, a := range t.Schema.QI {
		col := &t.cols[j]
		for i := 0; i < t.n; i++ {
			if !a.Valid(col.Get(i)) {
				return fmt.Errorf("dataset: row %d: QI %q code %d out of domain", i, a.Name, col.Get(i))
			}
		}
	}
	sens := t.SensitiveCol()
	for i := 0; i < t.n; i++ {
		if !t.Schema.Sensitive.Valid(sens.Get(i)) {
			return fmt.Errorf("dataset: row %d: sensitive code %d out of domain", i, sens.Get(i))
		}
	}
	return nil
}
