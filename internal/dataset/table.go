package dataset

import (
	"fmt"
	"math/rand"
)

// Table is a microdata relation D. Rows are stored row-major; row i column j
// (j < d) is the code of QI attribute j, and the last column is the code of
// the sensitive attribute. Each row describes one individual; the owner of
// row i is individual i unless Owners overrides the mapping (tuples have
// distinct owners, the standard assumption of Section II).
type Table struct {
	Schema *Schema

	rows [][]int32

	// Owners optionally names the owner of each row with an external
	// individual ID. nil means owner(i) == i.
	Owners []int
}

// NewTable creates an empty table for the schema.
func NewTable(schema *Schema) *Table {
	return &Table{Schema: schema}
}

// Len returns |D|.
func (t *Table) Len() int { return len(t.rows) }

// Append adds a row after validating it against the schema. The slice is
// retained; callers must not mutate it afterwards.
func (t *Table) Append(row []int32) error {
	if len(row) != t.Schema.Width() {
		return fmt.Errorf("dataset: row has %d columns, schema wants %d", len(row), t.Schema.Width())
	}
	for j, a := range t.Schema.QI {
		if !a.Valid(row[j]) {
			return fmt.Errorf("dataset: row %d: QI %q code %d out of domain [0,%d)",
				t.Len(), a.Name, row[j], a.Size())
		}
	}
	if s := row[len(row)-1]; !t.Schema.Sensitive.Valid(s) {
		return fmt.Errorf("dataset: row %d: sensitive code %d out of domain [0,%d)",
			t.Len(), s, t.Schema.Sensitive.Size())
	}
	t.rows = append(t.rows, row)
	return nil
}

// MustAppend is Append but panics on error.
func (t *Table) MustAppend(row []int32) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// AppendLabels adds a row given attribute labels in schema order.
func (t *Table) AppendLabels(labels ...string) error {
	if len(labels) != t.Schema.Width() {
		return fmt.Errorf("dataset: got %d labels, schema wants %d", len(labels), t.Schema.Width())
	}
	row := make([]int32, len(labels))
	for j, a := range t.Schema.QI {
		c, err := a.Code(labels[j])
		if err != nil {
			return err
		}
		row[j] = c
	}
	c, err := t.Schema.Sensitive.Code(labels[len(labels)-1])
	if err != nil {
		return err
	}
	row[len(row)-1] = c
	t.rows = append(t.rows, row)
	return nil
}

// Row returns row i. The slice is shared with the table; treat as read-only.
func (t *Table) Row(i int) []int32 { return t.rows[i] }

// QI returns the code of QI attribute j in row i.
func (t *Table) QI(i, j int) int32 { return t.rows[i][j] }

// QIVector returns the QI-vector t.v^q of row i (a copy).
func (t *Table) QIVector(i int) []int32 {
	d := t.Schema.D()
	v := make([]int32, d)
	copy(v, t.rows[i][:d])
	return v
}

// Sensitive returns the sensitive code of row i (the paper's t.A^s).
func (t *Table) Sensitive(i int) int32 { return t.rows[i][t.Schema.D()] }

// SetSensitive overwrites the sensitive code of row i.
func (t *Table) SetSensitive(i int, v int32) { t.rows[i][t.Schema.D()] = v }

// Owner returns the individual ID owning row i.
func (t *Table) Owner(i int) int {
	if t.Owners == nil {
		return i
	}
	return t.Owners[i]
}

// Clone deep-copies the table (rows and owners).
func (t *Table) Clone() *Table {
	c := &Table{Schema: t.Schema, rows: make([][]int32, len(t.rows))}
	for i, r := range t.rows {
		nr := make([]int32, len(r))
		copy(nr, r)
		c.rows[i] = nr
	}
	if t.Owners != nil {
		c.Owners = append([]int(nil), t.Owners...)
	}
	return c
}

// Subset returns a new table containing the given rows (deep copies), with
// owner IDs preserved so the subset still names the same individuals.
func (t *Table) Subset(rows []int) *Table {
	s := &Table{Schema: t.Schema, rows: make([][]int32, len(rows)), Owners: make([]int, len(rows))}
	for k, i := range rows {
		nr := make([]int32, len(t.rows[i]))
		copy(nr, t.rows[i])
		s.rows[k] = nr
		s.Owners[k] = t.Owner(i)
	}
	return s
}

// RandomSubset draws n distinct rows uniformly at random.
func (t *Table) RandomSubset(n int, rng *rand.Rand) (*Table, error) {
	if n < 0 || n > t.Len() {
		return nil, fmt.Errorf("dataset: subset of %d rows from table of %d", n, t.Len())
	}
	perm := rng.Perm(t.Len())
	return t.Subset(perm[:n]), nil
}

// SensitiveHistogram counts occurrences of each sensitive code.
func (t *Table) SensitiveHistogram() []int {
	h := make([]int, t.Schema.SensitiveDomain())
	for i := range t.rows {
		h[t.Sensitive(i)]++
	}
	return h
}

// Validate re-checks all rows against the schema; useful after external
// construction or CSV loading paths that bypass Append.
func (t *Table) Validate() error {
	if t.Owners != nil && len(t.Owners) != len(t.rows) {
		return fmt.Errorf("dataset: %d owner IDs for %d rows", len(t.Owners), len(t.rows))
	}
	for i, r := range t.rows {
		if len(r) != t.Schema.Width() {
			return fmt.Errorf("dataset: row %d has %d columns, schema wants %d", i, len(r), t.Schema.Width())
		}
		for j, a := range t.Schema.QI {
			if !a.Valid(r[j]) {
				return fmt.Errorf("dataset: row %d: QI %q code %d out of domain", i, a.Name, r[j])
			}
		}
		if !t.Schema.Sensitive.Valid(r[t.Schema.D()]) {
			return fmt.Errorf("dataset: row %d: sensitive code %d out of domain", i, r[t.Schema.D()])
		}
	}
	return nil
}
