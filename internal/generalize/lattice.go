package generalize

import (
	"fmt"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/obs"
)

// FullDomainConfig parameterizes the full-domain recoding search in the
// spirit of Incognito [13]: every QI attribute is generalized uniformly to
// one level of its (uniform) hierarchy, and we search the lattice of level
// vectors for the cheapest one satisfying a generalization principle.
type FullDomainConfig struct {
	// Principle is the constraint to satisfy; defaults to KAnonymity{2}.
	Principle Principle
	// MaxExhaustive bounds the lattice size for exhaustive search (which
	// finds the global loss optimum). Larger lattices fall back to a greedy
	// level-raising heuristic. Default 4096.
	MaxExhaustive int
	// Loss ranks satisfying recodings; lower is better. Defaults to the
	// discernibility metric.
	Loss func(t *dataset.Table, g *Groups) float64
	// Workers bounds the goroutines of the single sharded table scan at the
	// lattice bottom. 0 means GOMAXPROCS; the result is identical for every
	// value.
	Workers int

	// Metrics optionally receives search diagnostics: lattice nodes grouped
	// and scored (generalize.lattice.nodes_evaluated) and rows scanned by
	// the one base grouping (generalize.groupby.rows_scanned). nil disables.
	Metrics *obs.Registry
}

// FullDomainResult is the outcome of SearchFullDomain.
type FullDomainResult struct {
	Recoding  *Recoding
	Groups    *Groups
	Levels    []int
	Loss      float64
	Exhausted bool // true if the whole lattice was searched (optimal loss)
}

// SearchFullDomain finds a full-domain recoding satisfying the principle.
// All hierarchies must be uniform. It returns an error when even the fully
// suppressed table violates the principle.
//
// The table is scanned only once, at the lattice bottom (the identity
// recoding); every level vector the search visits is grouped by rolling that
// base grouping up through the hierarchies (see LatticeEvaluator).
func SearchFullDomain(t *dataset.Table, hiers []*hierarchy.Hierarchy, cfg FullDomainConfig) (*FullDomainResult, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("generalize: full-domain search on an empty table")
	}
	if cfg.Principle == nil {
		cfg.Principle = KAnonymity{K: 2}
	}
	if cfg.MaxExhaustive <= 0 {
		cfg.MaxExhaustive = 4096
	}
	if cfg.Loss == nil {
		cfg.Loss = func(_ *dataset.Table, g *Groups) float64 { return Discernibility(g) }
	}
	heights := make([]int, len(hiers))
	latticeSize := 1
	for j, h := range hiers {
		if !h.Uniform() {
			return nil, fmt.Errorf("generalize: hierarchy %d is not uniform; full-domain recoding needs level cuts", j)
		}
		heights[j] = h.Height()
		if latticeSize <= cfg.MaxExhaustive {
			latticeSize *= h.Height() + 1
		}
	}

	eval, err := NewLatticeEvaluator(t, hiers, make([]int, len(hiers)), cfg.Workers)
	if err != nil {
		return nil, err
	}
	cfg.Metrics.Counter("generalize.groupby.rows_scanned").Add(int64(t.Len()))
	evaluated := cfg.Metrics.Counter("generalize.lattice.nodes_evaluated")
	evalLevels := func(levels []int) (*Recoding, *Groups, error) {
		evaluated.Inc()
		rec, err := eval.RecodingAt(levels)
		if err != nil {
			return nil, nil, err
		}
		g, err := eval.GroupsAt(levels)
		if err != nil {
			return nil, nil, err
		}
		return rec, g, nil
	}

	// The top of the lattice must satisfy the principle, or nothing does
	// (principles satisfied by merging groups are monotone up the lattice;
	// for non-monotone principles this is still the only cheap certificate).
	top := make([]int, len(hiers))
	copy(top, heights)
	topRec, topGroups, err := evalLevels(top)
	if err != nil {
		return nil, err
	}
	if !cfg.Principle.Satisfied(t, topGroups) {
		return nil, fmt.Errorf("generalize: even full suppression violates %s", cfg.Principle)
	}

	if latticeSize <= cfg.MaxExhaustive {
		return searchExhaustive(t, hiers, cfg, heights, evalLevels)
	}
	return searchGreedy(t, cfg, heights, evalLevels, top, topRec, topGroups)
}

// searchExhaustive enumerates every level vector and keeps the satisfying
// one with minimum loss.
func searchExhaustive(t *dataset.Table, _ []*hierarchy.Hierarchy, cfg FullDomainConfig, heights []int,
	eval func([]int) (*Recoding, *Groups, error)) (*FullDomainResult, error) {

	levels := make([]int, len(heights))
	var best *FullDomainResult
	for {
		rec, groups, err := eval(levels)
		if err != nil {
			return nil, err
		}
		if cfg.Principle.Satisfied(t, groups) {
			loss := cfg.Loss(t, groups)
			if best == nil || loss < best.Loss {
				best = &FullDomainResult{
					Recoding: rec, Groups: groups,
					Levels: append([]int(nil), levels...),
					Loss:   loss, Exhausted: true,
				}
			}
		}
		// Advance the mixed-radix counter.
		j := 0
		for ; j < len(levels); j++ {
			levels[j]++
			if levels[j] <= heights[j] {
				break
			}
			levels[j] = 0
		}
		if j == len(levels) {
			break
		}
	}
	if best == nil {
		return nil, fmt.Errorf("generalize: no level vector satisfies %s", cfg.Principle)
	}
	return best, nil
}

// searchGreedy raises one attribute level at a time, choosing the raise that
// maximizes the principle's progress (approximated by minimum group size)
// and, among ties, minimizes loss.
func searchGreedy(t *dataset.Table, cfg FullDomainConfig, heights []int,
	eval func([]int) (*Recoding, *Groups, error),
	top []int, topRec *Recoding, topGroups *Groups) (*FullDomainResult, error) {

	levels := make([]int, len(heights))
	rec, groups, err := eval(levels)
	if err != nil {
		return nil, err
	}
	for !cfg.Principle.Satisfied(t, groups) {
		bestJ := -1
		var bestRec *Recoding
		var bestGroups *Groups
		bestMin, bestLoss := -1, 0.0
		for j := range levels {
			if levels[j] >= heights[j] {
				continue
			}
			levels[j]++
			r, g, err := eval(levels)
			levels[j]--
			if err != nil {
				return nil, err
			}
			min, loss := g.MinSize(), cfg.Loss(t, g)
			if min > bestMin || (min == bestMin && loss < bestLoss) {
				bestJ, bestRec, bestGroups, bestMin, bestLoss = j, r, g, min, loss
			}
		}
		if bestJ < 0 {
			// All levels maxed; fall back to the top (known to satisfy).
			return &FullDomainResult{
				Recoding: topRec, Groups: topGroups,
				Levels: top, Loss: cfg.Loss(t, topGroups),
			}, nil
		}
		levels[bestJ]++
		rec, groups = bestRec, bestGroups
	}
	return &FullDomainResult{
		Recoding: rec, Groups: groups,
		Levels: append([]int(nil), levels...),
		Loss:   cfg.Loss(t, groups),
	}, nil
}
