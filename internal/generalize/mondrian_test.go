package generalize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pgpub/internal/dataset"
)

func TestMondrianBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl, _ := randomTable(120, rng)
	boxes, err := Mondrian(tbl, 10)
	if err != nil {
		t.Fatalf("Mondrian: %v", err)
	}
	covered := make(map[int]bool)
	for _, b := range boxes {
		if len(b.Rows) < 10 {
			t.Fatalf("box with %d < 10 rows", len(b.Rows))
		}
		for _, i := range b.Rows {
			if covered[i] {
				t.Fatalf("row %d in two boxes", i)
			}
			covered[i] = true
			for a := 0; a < tbl.Schema.D(); a++ {
				if v := tbl.QI(i, a); v < b.Lo[a] || v > b.Hi[a] {
					t.Fatalf("row %d attr %d = %d outside box [%d,%d]", i, a, v, b.Lo[a], b.Hi[a])
				}
			}
		}
	}
	if len(covered) != tbl.Len() {
		t.Fatalf("boxes cover %d of %d rows", len(covered), tbl.Len())
	}
	if len(boxes) < 2 {
		t.Fatal("Mondrian should have split a 120-row table at k=10")
	}
}

func TestMondrianErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl, _ := randomTable(5, rng)
	if _, err := Mondrian(tbl, 0); err == nil {
		t.Fatal("k=0: want error")
	}
	if _, err := Mondrian(tbl, 6); err == nil {
		t.Fatal("k > |D|: want error")
	}
}

func TestMondrianSingleBoxWhenUnsplittable(t *testing.T) {
	// All rows identical: no attribute has a positive span, so Mondrian must
	// return exactly one box.
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("A", 0, 3)},
		dataset.MustAttribute("S", "x", "y"),
	)
	tbl := dataset.NewTable(s)
	for i := 0; i < 10; i++ {
		tbl.MustAppend([]int32{2, int32(i % 2)})
	}
	boxes, err := Mondrian(tbl, 2)
	if err != nil {
		t.Fatalf("Mondrian: %v", err)
	}
	if len(boxes) != 1 || len(boxes[0].Rows) != 10 {
		t.Fatalf("boxes = %d, want single box of 10", len(boxes))
	}
	if boxes[0].Lo[0] != 2 || boxes[0].Hi[0] != 2 {
		t.Fatal("degenerate box bounds wrong")
	}
}

// Property: Mondrian partitions are k-anonymous and exhaustive for random
// inputs.
func TestMondrianInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		tbl, _ := randomTable(n, rng)
		k := int(kRaw%10) + 1
		if k > n {
			k = n
		}
		boxes, err := Mondrian(tbl, k)
		if err != nil {
			return false
		}
		total := 0
		for _, b := range boxes {
			if len(b.Rows) < k {
				return false
			}
			total += len(b.Rows)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLossMetrics(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)

	id, _ := IdentityRecoding(h.Schema, hiers)
	gID := GroupBy(h, id)
	if got := Discernibility(gID); got != 8 {
		t.Fatalf("identity discernibility = %v, want 8", got)
	}
	if got := NCP(h, id); got != 0 {
		t.Fatalf("identity NCP = %v, want 0", got)
	}

	top, _ := TopRecoding(h.Schema, hiers)
	gTop := GroupBy(h, top)
	if got := Discernibility(gTop); got != 64 {
		t.Fatalf("top discernibility = %v, want 64", got)
	}
	if got := NCP(h, top); got != 1 {
		t.Fatalf("top NCP = %v, want 1", got)
	}

	if got := AvgGroupRatio(gTop, 8); got != 1 {
		t.Fatalf("AvgGroupRatio(top, 8) = %v, want 1", got)
	}
	if got := AvgGroupRatio(gID, 1); got != 1 {
		t.Fatalf("AvgGroupRatio(id, 1) = %v, want 1", got)
	}
	if AvgGroupRatio(&Groups{}, 2) != 0 || AvgGroupRatio(gTop, 0) != 0 {
		t.Fatal("degenerate AvgGroupRatio must be 0")
	}

	// BoxNCP: a single box spanning each attribute's full observed range.
	boxes, err := Mondrian(h, 8)
	if err != nil {
		t.Fatalf("Mondrian: %v", err)
	}
	v := BoxNCP(h, boxes)
	if v <= 0 || v > 1 {
		t.Fatalf("BoxNCP = %v, want in (0,1]", v)
	}
	if BoxNCP(h, nil) != 0 {
		t.Fatal("BoxNCP with no boxes must be 0")
	}
	empty := dataset.NewTable(h.Schema)
	if NCP(empty, id) != 0 {
		t.Fatal("NCP of empty table must be 0")
	}
}
