package generalize

import (
	"fmt"

	"pgpub/internal/dataset"
)

// MondrianBox is one partition produced by the Mondrian algorithm: the rows
// it contains and, per QI attribute, the inclusive code range the partition
// spans. Mondrian performs *local* recoding — two boxes may overlap in QI
// space — so it violates Property G3 and cannot serve as Phase 2 of PG; it
// exists here as the classic multidimensional baseline for the information-
// loss ablation (Extra E2 in DESIGN.md).
type MondrianBox struct {
	Lo, Hi []int32
	Rows   []int
}

// Mondrian partitions the table into boxes of at least k rows using median
// splits on the attribute with the widest normalized range (LeFevre et al.,
// ICDE'06, strict partitioning).
func Mondrian(t *dataset.Table, k int) ([]MondrianBox, error) {
	if k < 1 {
		return nil, fmt.Errorf("generalize: Mondrian needs k >= 1, got %d", k)
	}
	if t.Len() < k {
		return nil, fmt.Errorf("generalize: table has %d rows, cannot form groups of %d", t.Len(), k)
	}
	all := make([]int, t.Len())
	for i := range all {
		all[i] = i
	}
	var out []MondrianBox
	var recurse func(rows []int)
	recurse = func(rows []int) {
		if attr, median, ok := chooseSplit(t, rows, k); ok {
			left, right := partition(t, rows, attr, median)
			recurse(left)
			recurse(right)
			return
		}
		out = append(out, summarize(t, rows))
	}
	recurse(all)
	return out, nil
}

// chooseSplit finds the best allowable median split (the Mondrian split
// rule). It is chooseKDSplit over the full QI domain: the cell-bound filter
// is vacuous there, because a cut outside the domain always starves one
// side and is rejected by the >= k checks anyway.
func chooseSplit(t *dataset.Table, rows []int, k int) (attr int, median int32, ok bool) {
	return chooseKDSplit(t, fullDomainBox(t.Schema), rows, k)
}

// partition splits rows on attr <= cut with one gather over the attribute's
// contiguous column.
func partition(t *dataset.Table, rows []int, attr int, cut int32) (left, right []int) {
	return colPartition(t.QICol(attr), rows, cut)
}

// summarize computes the bounding box of a final partition, one column
// min/max sweep per attribute.
func summarize(t *dataset.Table, rows []int) MondrianBox {
	d := t.Schema.D()
	b := MondrianBox{Lo: make([]int32, d), Hi: make([]int32, d), Rows: rows}
	for a := 0; a < d; a++ {
		b.Lo[a], b.Hi[a] = colMinMax(t.QICol(a), rows)
	}
	return b
}
