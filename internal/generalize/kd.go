package generalize

import (
	"fmt"
	"sort"

	"pgpub/internal/dataset"
)

// Box is an axis-aligned cell of the QI space U^q: per attribute an
// inclusive code interval [Lo, Hi]. A box generalizes a QI vector iff the
// vector lies inside it. Boxes are the canonical representation of
// generalized QI vectors across Phase-2 algorithms: a cut-recoding vector is
// the product of its nodes' leaf ranges, and a kd-partition cell is a box by
// construction.
type Box struct {
	Lo, Hi []int32
}

// Covers reports whether the box generalizes the raw QI vector v.
func (b Box) Covers(v []int32) bool {
	for j := range v {
		if v[j] < b.Lo[j] || v[j] > b.Hi[j] {
			return false
		}
	}
	return true
}

// Overlaps reports whether two boxes intersect (a G3 violation when both
// appear in one publication with different coordinates).
func (b Box) Overlaps(o Box) bool {
	for j := range b.Lo {
		if b.Hi[j] < o.Lo[j] || o.Hi[j] < b.Lo[j] {
			return false
		}
	}
	return true
}

// Equal reports component-wise equality.
func (b Box) Equal(o Box) bool {
	for j := range b.Lo {
		if b.Lo[j] != o.Lo[j] || b.Hi[j] != o.Hi[j] {
			return false
		}
	}
	return true
}

// BoxOf converts a generalized node vector of this recoding into its box.
func (r *Recoding) BoxOf(g []int32) Box {
	d := len(g)
	b := Box{Lo: make([]int32, d), Hi: make([]int32, d)}
	for j, n := range g {
		b.Lo[j], b.Hi[j] = r.Hierarchies[j].Range(n)
	}
	return b
}

// KDResult is the outcome of KDPartition: disjoint cells covering the whole
// QI space (so any external QI vector falls in exactly one cell — the
// uniqueness property behind attack step A1), each holding at least k rows.
type KDResult struct {
	Cells []Box
	Rows  [][]int
}

// KDPartition recursively median-splits the QI space in the style of
// Mondrian strict partitioning [16], but publishes the *cells* of the
// recursion rather than the groups' bounding boxes: cells are pairwise
// disjoint and exhaustively cover U^q, which is exactly Property G3. Every
// cell contains at least k rows.
//
// This is the Phase-2 algorithm our SAL experiments use: single-dimensional
// global recoding (TDS, full-domain) stalls on smooth synthetic data —
// one undersized group anywhere blocks every further specialization of an
// attribute — whereas kd-cells keep QI-groups near the minimal size k, which
// the paper's cardinality argument |D*| ≈ |D|/k presumes.
func KDPartition(t *dataset.Table, k int) (*KDResult, error) {
	return KDPartitionParallel(t, k, 0)
}

// KDPartitionParallel is KDPartition with the top spawnDepth levels of the
// recursion fanned out across goroutines. The output is bit-identical to the
// serial version: splits do not depend on evaluation order, and results are
// merged left-then-right. spawnDepth 0 is fully serial; 3–4 saturates a
// typical machine (up to 2^spawnDepth goroutines).
func KDPartitionParallel(t *dataset.Table, k, spawnDepth int) (*KDResult, error) {
	if spawnDepth < 0 {
		return nil, fmt.Errorf("generalize: spawnDepth must be non-negative, got %d", spawnDepth)
	}
	if k < 1 {
		return nil, fmt.Errorf("generalize: KDPartition needs k >= 1, got %d", k)
	}
	if t.Len() < k {
		return nil, fmt.Errorf("generalize: table has %d rows, cannot form cells of %d", t.Len(), k)
	}
	root := fullDomainBox(t.Schema)
	all := make([]int, t.Len())
	for i := range all {
		all[i] = i
	}
	return kdRecurse(t, k, root, all, spawnDepth), nil
}

// kdRecurse partitions one cell, spawning goroutines for the subtrees while
// spawnDepth is positive.
func kdRecurse(t *dataset.Table, k int, cell Box, rows []int, spawnDepth int) *KDResult {
	attr, cut, ok := chooseKDSplit(t, cell, rows, k)
	if !ok {
		return &KDResult{Cells: []Box{cell}, Rows: [][]int{rows}}
	}
	left, right := partition(t, rows, attr, cut)
	lc := Box{Lo: append([]int32(nil), cell.Lo...), Hi: append([]int32(nil), cell.Hi...)}
	rc := Box{Lo: append([]int32(nil), cell.Lo...), Hi: append([]int32(nil), cell.Hi...)}
	lc.Hi[attr] = cut
	rc.Lo[attr] = cut + 1
	var lres, rres *KDResult
	if spawnDepth > 0 {
		done := make(chan struct{})
		go func() {
			lres = kdRecurse(t, k, lc, left, spawnDepth-1)
			close(done)
		}()
		rres = kdRecurse(t, k, rc, right, spawnDepth-1)
		<-done
	} else {
		lres = kdRecurse(t, k, lc, left, 0)
		rres = kdRecurse(t, k, rc, right, 0)
	}
	return &KDResult{
		Cells: append(lres.Cells, rres.Cells...),
		Rows:  append(lres.Rows, rres.Rows...),
	}
}

// fullDomainBox is the box covering the entire QI code space.
func fullDomainBox(schema *dataset.Schema) Box {
	d := schema.D()
	b := Box{Lo: make([]int32, d), Hi: make([]int32, d)}
	for j, a := range schema.QI {
		b.Hi[j] = int32(a.Size() - 1)
	}
	return b
}

// chooseKDSplit picks the widest-spread attribute admitting a median split
// with both sides >= k inside the current cell: attributes are ranked by
// normalized span of values present in rows, and the first (widest) one
// admitting a split wins. Mondrian's chooseSplit is this over the full
// domain. All scans are column gathers: each attribute's codes come from one
// contiguous array, so the span pass reads d sequential streams instead of
// d values per row slice.
func chooseKDSplit(t *dataset.Table, cell Box, rows []int, k int) (attr int, cut int32, ok bool) {
	if len(rows) < 2*k {
		return 0, 0, false
	}
	d := t.Schema.D()
	type span struct {
		attr  int
		width float64
	}
	spans := make([]span, 0, d)
	for a := 0; a < d; a++ {
		lo, hi := colMinMax(t.QICol(a), rows)
		if hi > lo {
			spans = append(spans, span{a, float64(hi-lo) / float64(t.Schema.QI[a].Size()-1)})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].width > spans[j].width })
	vals := make([]int32, len(rows))
	for _, s := range spans {
		colGather(t.QICol(s.attr), rows, vals)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		m := vals[len(vals)/2]
		for _, c := range []int32{m - 1, m} {
			if c < cell.Lo[s.attr] || c >= cell.Hi[s.attr] {
				continue
			}
			nl := 0
			for _, v := range vals {
				if v <= c {
					nl++
				}
			}
			if nl >= k && len(rows)-nl >= k {
				return s.attr, c, true
			}
		}
	}
	return 0, 0, false
}
