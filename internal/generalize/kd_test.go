package generalize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pgpub/internal/dataset"
)

func TestKDPartitionBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tbl, _ := randomTable(200, rng)
	res, err := KDPartition(tbl, 8)
	if err != nil {
		t.Fatalf("KDPartition: %v", err)
	}
	if len(res.Cells) != len(res.Rows) {
		t.Fatal("cells/rows length mismatch")
	}
	covered := map[int]bool{}
	for ci, rows := range res.Rows {
		if len(rows) < 8 {
			t.Fatalf("cell %d has %d < 8 rows", ci, len(rows))
		}
		for _, i := range rows {
			if covered[i] {
				t.Fatalf("row %d in two cells", i)
			}
			covered[i] = true
			if !res.Cells[ci].Covers(tbl.QIVector(i)) {
				t.Fatalf("cell %d does not cover its row %d", ci, i)
			}
		}
	}
	if len(covered) != tbl.Len() {
		t.Fatalf("cells cover %d of %d rows", len(covered), tbl.Len())
	}
	// Cells are pairwise disjoint (Property G3).
	for i := range res.Cells {
		for j := i + 1; j < len(res.Cells); j++ {
			if res.Cells[i].Overlaps(res.Cells[j]) {
				t.Fatalf("cells %d and %d overlap", i, j)
			}
		}
	}
	if len(res.Cells) < 4 {
		t.Fatalf("expected multiple cells, got %d", len(res.Cells))
	}
}

// KD cells must cover the entire QI space, not just the data's bounding box:
// that is what makes attack step A1 find a crucial tuple for ANY external
// QI vector.
func TestKDPartitionCoversFullSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tbl, _ := randomTable(100, rng)
	res, err := KDPartition(tbl, 5)
	if err != nil {
		t.Fatal(err)
	}
	probe := func(v []int32) {
		hits := 0
		for _, c := range res.Cells {
			if c.Covers(v) {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("vector %v covered by %d cells, want exactly 1", v, hits)
		}
	}
	// Corners of the domain and random interior points.
	probe([]int32{0, 0})
	probe([]int32{15, 7})
	probe([]int32{0, 7})
	probe([]int32{15, 0})
	for trial := 0; trial < 50; trial++ {
		probe([]int32{int32(rng.Intn(16)), int32(rng.Intn(8))})
	}
}

func TestKDPartitionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tbl, _ := randomTable(5, rng)
	if _, err := KDPartition(tbl, 0); err == nil {
		t.Fatal("k=0: want error")
	}
	if _, err := KDPartition(tbl, 6); err == nil {
		t.Fatal("k > |D|: want error")
	}
}

func TestKDPartitionSingleCell(t *testing.T) {
	// Identical rows cannot be split: one cell spanning the whole space.
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("A", 0, 9)},
		dataset.MustAttribute("S", "x", "y"),
	)
	tbl := dataset.NewTable(s)
	for i := 0; i < 6; i++ {
		tbl.MustAppend([]int32{4, int32(i % 2)})
	}
	res, err := KDPartition(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(res.Cells))
	}
	if res.Cells[0].Lo[0] != 0 || res.Cells[0].Hi[0] != 9 {
		t.Fatalf("cell = [%d,%d], want the full domain [0,9]",
			res.Cells[0].Lo[0], res.Cells[0].Hi[0])
	}
}

// Property: for random tables and k, KD produces a disjoint exact cover of
// the space with all groups >= k.
func TestKDPartitionInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(150)
		tbl, _ := randomTable(n, rng)
		k := int(kRaw%10) + 1
		if k > n {
			k = n
		}
		res, err := KDPartition(tbl, k)
		if err != nil {
			return false
		}
		total := 0
		for _, rows := range res.Rows {
			if len(rows) < k {
				return false
			}
			total += len(rows)
		}
		if total != n {
			return false
		}
		// Exact cover of the whole space at random probes.
		for trial := 0; trial < 20; trial++ {
			v := []int32{int32(rng.Intn(16)), int32(rng.Intn(8))}
			hits := 0
			for _, c := range res.Cells {
				if c.Covers(v) {
					hits++
				}
			}
			if hits != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxHelpers(t *testing.T) {
	a := Box{Lo: []int32{0, 0}, Hi: []int32{4, 4}}
	b := Box{Lo: []int32{5, 0}, Hi: []int32{9, 4}}
	c := Box{Lo: []int32{3, 3}, Hi: []int32{6, 6}}
	if a.Overlaps(b) || b.Overlaps(a) {
		t.Fatal("disjoint boxes reported overlapping")
	}
	if !a.Overlaps(c) || !c.Overlaps(b) {
		t.Fatal("overlapping boxes reported disjoint")
	}
	if !a.Covers([]int32{4, 4}) || a.Covers([]int32{5, 4}) {
		t.Fatal("Covers boundary wrong")
	}
	if !a.Equal(Box{Lo: []int32{0, 0}, Hi: []int32{4, 4}}) || a.Equal(b) {
		t.Fatal("Equal wrong")
	}
}

func TestBoxOfRecoding(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)
	top, _ := TopRecoding(h.Schema, hiers)
	g := top.Generalize(h.QIVector(0))
	box := top.BoxOf(g)
	for j := range box.Lo {
		if box.Lo[j] != 0 || int(box.Hi[j]) != h.Schema.QI[j].Size()-1 {
			t.Fatalf("top box attr %d = [%d,%d], want full domain", j, box.Lo[j], box.Hi[j])
		}
	}
	id, _ := IdentityRecoding(h.Schema, hiers)
	gv := id.Generalize(h.QIVector(2))
	box = id.BoxOf(gv)
	for j := range box.Lo {
		if box.Lo[j] != h.QIVector(2)[j] || box.Hi[j] != h.QIVector(2)[j] {
			t.Fatal("identity box must be degenerate at the value")
		}
	}
}

// KDPartitionParallel must produce bit-identical output to the serial
// version.
func TestKDParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tbl, _ := randomTable(300, rng)
	serial, err := KDPartition(tbl, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{1, 3, 6} {
		par, err := KDPartitionParallel(tbl, 5, depth)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if len(par.Cells) != len(serial.Cells) {
			t.Fatalf("depth %d: %d cells vs %d", depth, len(par.Cells), len(serial.Cells))
		}
		for i := range serial.Cells {
			if !par.Cells[i].Equal(serial.Cells[i]) {
				t.Fatalf("depth %d: cell %d differs", depth, i)
			}
			if len(par.Rows[i]) != len(serial.Rows[i]) {
				t.Fatalf("depth %d: cell %d row count differs", depth, i)
			}
			for j := range serial.Rows[i] {
				if par.Rows[i][j] != serial.Rows[i][j] {
					t.Fatalf("depth %d: cell %d rows differ", depth, i)
				}
			}
		}
	}
	if _, err := KDPartitionParallel(tbl, 5, -1); err == nil {
		t.Fatal("negative spawn depth: want error")
	}
	if _, err := KDPartitionParallel(tbl, 0, 1); err == nil {
		t.Fatal("k=0: want error")
	}
	if _, err := KDPartitionParallel(tbl, 1000, 1); err == nil {
		t.Fatal("k > |D|: want error")
	}
}
