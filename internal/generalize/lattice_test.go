package generalize

import (
	"math/rand"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
)

func TestSearchFullDomainHospital(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)
	res, err := SearchFullDomain(h, hiers, FullDomainConfig{Principle: KAnonymity{K: 2}})
	if err != nil {
		t.Fatalf("SearchFullDomain: %v", err)
	}
	if !res.Groups.IsKAnonymous(2) {
		t.Fatal("result not 2-anonymous")
	}
	if !res.Exhausted {
		t.Fatal("hospital lattice is tiny; search must be exhaustive")
	}
	// Exhaustive search is loss-optimal: verify against brute force.
	best := res.Loss
	levels := make([]int, len(hiers))
	heights := []int{hiers[0].Height(), hiers[1].Height(), hiers[2].Height()}
	var scan func(j int)
	var bruteBest float64 = -1
	scan = func(j int) {
		if j == len(levels) {
			cuts := make([]*hierarchy.Cut, len(hiers))
			for i, hh := range hiers {
				c, err := hierarchy.LevelCut(hh, levels[i])
				if err != nil {
					t.Fatal(err)
				}
				cuts[i] = c
			}
			rec, err := NewRecoding(h.Schema, hiers, cuts)
			if err != nil {
				t.Fatal(err)
			}
			g := GroupBy(h, rec)
			if g.IsKAnonymous(2) {
				l := Discernibility(g)
				if bruteBest < 0 || l < bruteBest {
					bruteBest = l
				}
			}
			return
		}
		for levels[j] = 0; levels[j] <= heights[j]; levels[j]++ {
			scan(j + 1)
		}
		levels[j] = 0
	}
	scan(0)
	if best != bruteBest {
		t.Fatalf("exhaustive loss = %v, brute force = %v", best, bruteBest)
	}
}

func TestSearchFullDomainDiversity(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)
	res, err := SearchFullDomain(h, hiers, FullDomainConfig{Principle: DistinctLDiversity{L: 2}})
	if err != nil {
		t.Fatalf("SearchFullDomain: %v", err)
	}
	if !IsDistinctLDiverse(h, res.Groups, 2) {
		t.Fatal("result not 2-diverse")
	}
}

func TestSearchFullDomainImpossible(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)
	// 9-anonymity is impossible for 8 rows even under full suppression.
	if _, err := SearchFullDomain(h, hiers, FullDomainConfig{Principle: KAnonymity{K: 9}}); err == nil {
		t.Fatal("impossible principle: want error")
	}
	empty := dataset.NewTable(h.Schema)
	if _, err := SearchFullDomain(empty, hiers, FullDomainConfig{}); err == nil {
		t.Fatal("empty table: want error")
	}
}

func TestSearchFullDomainGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl, hiers := randomTable(200, rng)
	// Force the greedy path with MaxExhaustive 1.
	res, err := SearchFullDomain(tbl, hiers, FullDomainConfig{
		Principle:     KAnonymity{K: 10},
		MaxExhaustive: 1,
	})
	if err != nil {
		t.Fatalf("greedy search: %v", err)
	}
	if res.Exhausted {
		t.Fatal("greedy search must not report Exhausted")
	}
	if !res.Groups.IsKAnonymous(10) {
		t.Fatal("greedy result not 10-anonymous")
	}
}

func TestSearchFullDomainDefaultPrinciple(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)
	res, err := SearchFullDomain(h, hiers, FullDomainConfig{})
	if err != nil {
		t.Fatalf("default config: %v", err)
	}
	if !res.Groups.IsKAnonymous(2) {
		t.Fatal("default principle should be 2-anonymity")
	}
}

func TestSearchFullDomainNonUniform(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)
	// NewInterval with a ragged top produces a uniform tree; to get a
	// non-uniform one, hand-build is overkill — instead verify the
	// uniformity gate using a flat singleton check is skipped. All builder
	// outputs are uniform, so just assert Uniform holds and the search
	// accepts them.
	for _, hh := range hiers {
		if !hh.Uniform() {
			t.Fatal("builder produced non-uniform hierarchy")
		}
	}
	if _, err := SearchFullDomain(h, hiers, FullDomainConfig{Principle: KAnonymity{K: 2}}); err != nil {
		t.Fatalf("uniform hierarchies rejected: %v", err)
	}
}
