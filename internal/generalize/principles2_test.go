package generalize

import (
	"math"
	"testing"

	"pgpub/internal/dataset"
)

// keFixture: 2 groups over an ordered sensitive domain 0..9.
func keFixture(t *testing.T, groupValues [][]int32) (*dataset.Table, *Groups) {
	t.Helper()
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("Q", 0, 7)},
		dataset.MustIntAttribute("S", 0, 9),
	)
	tbl := dataset.NewTable(s)
	g := &Groups{}
	row := 0
	for gi, vals := range groupValues {
		var rows []int
		for _, v := range vals {
			tbl.MustAppend([]int32{int32(gi), v})
			rows = append(rows, row)
			row++
		}
		g.Keys = append(g.Keys, []int32{int32(gi)})
		g.Rows = append(g.Rows, rows)
	}
	return tbl, g
}

func TestKEAnonymity(t *testing.T) {
	tbl, g := keFixture(t, [][]int32{{0, 5, 9}, {2, 3, 8}})
	if !(KEAnonymity{K: 3, E: 5}).Satisfied(tbl, g) {
		t.Fatal("(3,5)-anonymity should hold (ranges 9 and 6)")
	}
	if (KEAnonymity{K: 3, E: 7}).Satisfied(tbl, g) {
		t.Fatal("(3,7)-anonymity should fail (range 6 in group 1)")
	}
	if (KEAnonymity{K: 4, E: 5}).Satisfied(tbl, g) {
		t.Fatal("(4,5)-anonymity should fail (groups of 3)")
	}
	if (KEAnonymity{K: 1, E: 1}).Satisfied(tbl, &Groups{}) {
		t.Fatal("empty partition satisfies nothing")
	}
	if (KEAnonymity{K: 2, E: 3}).String() != "(2,3)-anonymity" {
		t.Fatal("KEAnonymity.String")
	}
	// Unordered sensitive attribute: principle inapplicable.
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("Q", 0, 1)},
		dataset.MustAttribute("S", "a", "b"),
	)
	cat := dataset.NewTable(s)
	cat.MustAppend([]int32{0, 0})
	gc := &Groups{Keys: [][]int32{{0}}, Rows: [][]int{{0}}}
	if (KEAnonymity{K: 1, E: 0}).Satisfied(cat, gc) {
		t.Fatal("categorical sensitive must be rejected")
	}
}

func TestPresenceBounds(t *testing.T) {
	// Hospital with Emily extraneous: a group covering Debbie, Ellie and
	// Emily has presence ratio 2/3.
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	top, _ := TopRecoding(d.Schema, hiers)
	g := GroupBy(d, top)
	world := dataset.HospitalVoterQI()
	ratios, err := PresenceBounds(g, top, world)
	if err != nil {
		t.Fatal(err)
	}
	// One group (full suppression): 8 of 9 world members present.
	if len(ratios) != 1 || math.Abs(ratios[0]-8.0/9) > 1e-12 {
		t.Fatalf("ratios = %v, want [8/9]", ratios)
	}
	ok, err := DeltaPresent(g, top, world, 0.5, 0.95)
	if err != nil || !ok {
		t.Fatalf("(0.5,0.95)-presence should hold: %v, %v", ok, err)
	}
	ok, err = DeltaPresent(g, top, world, 0.0, 0.8)
	if err != nil || ok {
		t.Fatalf("(0,0.8)-presence should fail: %v, %v", ok, err)
	}
	if _, err := PresenceBounds(&Groups{}, top, world); err == nil {
		t.Fatal("no groups: want error")
	}
	// A world smaller than the microdata is inconsistent.
	if _, err := PresenceBounds(g, top, world[:4]); err == nil {
		t.Fatal("world smaller than group: want error")
	}
}

func TestClassificationMetric(t *testing.T) {
	_, g := keFixture(t, [][]int32{{0, 5, 9}, {2, 3, 8}})
	// Classes: group 0 -> (0,0,1): penalty 1; group 1 -> (1,1,1): penalty 0.
	class := []int{0, 0, 1, 1, 1, 1}
	cm, err := ClassificationMetric(g, class, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cm-1.0/6) > 1e-12 {
		t.Fatalf("CM = %v, want 1/6", cm)
	}
	if _, err := ClassificationMetric(g, class, 0); err == nil {
		t.Fatal("numClasses 0: want error")
	}
	if _, err := ClassificationMetric(g, []int{9, 0, 0, 0, 0, 0}, 2); err == nil {
		t.Fatal("out-of-range class: want error")
	}
	if _, err := ClassificationMetric(&Groups{}, nil, 2); err == nil {
		t.Fatal("no rows: want error")
	}
}
