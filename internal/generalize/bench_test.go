package generalize

import (
	"math"
	"math/rand"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
)

// The benchmarks in this file pit the grouping engine against test-only
// copies of the code paths it replaced: byte-string map keys for GroupBy,
// a full-table re-scan per TDS round, and a full-table re-group per
// Incognito lattice node. The legacy copies are kept here — not in the
// library — so the comparison can't rot silently while the engine evolves.

// benchGenTable builds a skewed random table over three QI attributes;
// the exponential skew leaves rare tail values so k-anonymity does real work.
func benchGenTable(n int) (*dataset.Table, []*hierarchy.Hierarchy) {
	s := dataset.MustSchema(
		[]*dataset.Attribute{
			dataset.MustIntAttribute("A", 0, 15),
			dataset.MustIntAttribute("B", 0, 7),
			dataset.MustIntAttribute("C", 0, 7),
		},
		dataset.MustAttribute("S", "s0", "s1", "s2", "s3"),
	)
	tbl := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(20080402))
	draw := func(size int) int32 {
		v := int(rng.ExpFloat64() * float64(size) / 5)
		if v >= size {
			v = size - 1
		}
		return int32(v)
	}
	for i := 0; i < n; i++ {
		tbl.MustAppend([]int32{draw(16), draw(8), draw(8), int32(rng.Intn(4))})
	}
	hiers := []*hierarchy.Hierarchy{
		hierarchy.MustInterval(16, 2, 4, 8),
		hierarchy.MustInterval(8, 2, 4),
		hierarchy.MustBalanced(8, 2),
	}
	return tbl, hiers
}

func benchMidRecoding(b *testing.B, tbl *dataset.Table, hiers []*hierarchy.Hierarchy) *Recoding {
	cuts := make([]*hierarchy.Cut, len(hiers))
	for j, h := range hiers {
		c, err := hierarchy.LevelCut(h, (h.Height()+1)/2)
		if err != nil {
			b.Fatal(err)
		}
		cuts[j] = c
	}
	rec, err := NewRecoding(tbl.Schema, hiers, cuts)
	if err != nil {
		b.Fatal(err)
	}
	return rec
}

func BenchmarkGroupByEngine(b *testing.B) {
	tbl, hiers := benchGenTable(100_000)
	rec := benchMidRecoding(b, tbl, hiers)
	for _, bc := range []struct {
		name string
		run  func() *Groups
	}{
		{"legacy-bytes", func() *Groups { return groupByBytes(tbl, rec) }},
		{"packed", func() *Groups { return GroupByWorkers(tbl, rec, 1) }},
		{"packed-8workers", func() *Groups { return GroupByWorkers(tbl, rec, 8) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if g := bc.run(); g.Len() == 0 {
					b.Fatal("no groups")
				}
			}
		})
	}
}

func BenchmarkTDSEngine(b *testing.B) {
	tbl, hiers := benchGenTable(100_000)
	for _, bc := range []struct {
		name string
		run  func() (*Groups, error)
	}{
		{"legacy-rescan", func() (*Groups, error) { return legacyTDS(tbl, hiers, 6) }},
		{"engine", func() (*Groups, error) {
			res, err := TDS(tbl, hiers, TDSConfig{K: 6})
			if err != nil {
				return nil, err
			}
			return res.Groups, nil
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bc.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLatticeMinSize measures Incognito's per-node work: the minimum
// group size at every level vector of the full lattice — by re-grouping the
// table per node (the old path) vs the evaluator's roll-up.
func BenchmarkLatticeMinSize(b *testing.B) {
	tbl, hiers := benchGenTable(100_000)
	walk := func(visit func(levels []int) error) error {
		levels := make([]int, len(hiers))
		for {
			if err := visit(levels); err != nil {
				return err
			}
			j := 0
			for ; j < len(levels); j++ {
				levels[j]++
				if levels[j] <= hiers[j].Height() {
					break
				}
				levels[j] = 0
			}
			if j == len(levels) {
				return nil
			}
		}
	}
	b.Run("legacy-rescan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := walk(func(levels []int) error {
				cuts := make([]*hierarchy.Cut, len(hiers))
				for j, h := range hiers {
					c, err := hierarchy.LevelCut(h, levels[j])
					if err != nil {
						return err
					}
					cuts[j] = c
				}
				rec, err := NewRecoding(tbl.Schema, hiers, cuts)
				if err != nil {
					return err
				}
				if GroupBy(tbl, rec).MinSize() == 0 {
					return nil
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rollup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eval, err := NewLatticeEvaluator(tbl, hiers, make([]int, len(hiers)), 1)
			if err != nil {
				b.Fatal(err)
			}
			err = walk(func(levels []int) error {
				_, err := eval.MinSizeAt(levels)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// legacyTDS is the pre-engine TDS inner loop: a full-table GroupBy after
// every specialization round, with candidate statistics rebuilt from scratch
// by re-scanning every group. Kept verbatim (modulo names) for benchmarks.
func legacyTDS(t *dataset.Table, hiers []*hierarchy.Hierarchy, k int) (*Groups, error) {
	class := make([]int, t.Len())
	for i := range class {
		class[i] = int(t.Sensitive(i))
	}
	numClasses := t.Schema.SensitiveDomain()
	rec, err := TopRecoding(t.Schema, hiers)
	if err != nil {
		return nil, err
	}
	groups := GroupBy(t, rec)
	maxRounds := 0
	for _, h := range hiers {
		maxRounds += h.NumNodes() - h.Leaves()
	}
	for rounds := 0; rounds < maxRounds; rounds++ {
		attr, node, ok := legacyBestSpecialization(t, rec, groups, class, numClasses, k)
		if !ok {
			break
		}
		refined, err := rec.Cuts[attr].Refine(node)
		if err != nil {
			return nil, err
		}
		rec.Cuts[attr] = refined
		groups = GroupBy(t, rec)
	}
	return groups, nil
}

type legacyCandidate struct {
	attr       int
	node       int32
	total      []int
	perChild   map[int32][]int
	groupChild []map[int32]int
	groupIdx   map[int]int
	groupSize  []int
}

func legacyBestSpecialization(t *dataset.Table, rec *Recoding, groups *Groups, class []int, numClasses, k int) (attr int, node int32, ok bool) {
	d := rec.D()
	cands := make(map[[2]int32]*legacyCandidate)
	for gi, rows := range groups.Rows {
		key := groups.Keys[gi]
		for a := 0; a < d; a++ {
			v := key[a]
			h := rec.Hierarchies[a]
			if h.IsLeaf(v) {
				continue
			}
			ck := [2]int32{int32(a), v}
			c := cands[ck]
			if c == nil {
				c = &legacyCandidate{
					attr:     a,
					node:     v,
					total:    make([]int, numClasses),
					perChild: make(map[int32][]int),
					groupIdx: make(map[int]int),
				}
				cands[ck] = c
			}
			slot := len(c.groupChild)
			c.groupIdx[gi] = slot
			c.groupChild = append(c.groupChild, make(map[int32]int))
			c.groupSize = append(c.groupSize, len(rows))
			for _, i := range rows {
				leaf := t.QI(i, a)
				child := childToward(h, v, leaf)
				c.total[class[i]]++
				hist := c.perChild[child]
				if hist == nil {
					hist = make([]int, numClasses)
					c.perChild[child] = hist
				}
				hist[class[i]]++
				c.groupChild[slot][child]++
			}
		}
	}
	curMin := groups.MinSize()
	bestScore := math.Inf(-1)
	for _, c := range cands {
		minAfter := math.MaxInt
		valid := true
		for _, split := range c.groupChild {
			for _, cnt := range split {
				if cnt < k {
					valid = false
					break
				}
				if cnt < minAfter {
					minAfter = cnt
				}
			}
			if !valid {
				break
			}
		}
		if !valid {
			continue
		}
		gain := infoGain(c.total, c.perChild)
		loss := float64(curMin - minAfter)
		if loss < 0 {
			loss = 0
		}
		score := gain / (loss + 1)
		if score > bestScore {
			bestScore = score
			attr, node, ok = c.attr, c.node, true
		}
	}
	return attr, node, ok
}
