package generalize

import (
	"pgpub/internal/dataset"
)

// This file implements the information-loss metrics used to rank recodings
// and to instrument the ablation experiments (DESIGN.md Extra E2).

// Discernibility is the discernibility metric of Bayardo & Agrawal [1]:
// the sum over QI-groups of |G|^2. Smaller is better; the identity recoding
// of an all-distinct table achieves |D|.
func Discernibility(g *Groups) float64 {
	s := 0.0
	for _, rows := range g.Rows {
		s += float64(len(rows)) * float64(len(rows))
	}
	return s
}

// AvgGroupRatio is the normalized average group size C_avg = (|D| / #groups)
// / k, the metric of LeFevre et al. [16]. A value of 1 means groups are as
// small as k-anonymity allows.
func AvgGroupRatio(g *Groups, k int) float64 {
	if g.Len() == 0 || k <= 0 {
		return 0
	}
	n := 0
	for _, rows := range g.Rows {
		n += len(rows)
	}
	return float64(n) / float64(g.Len()) / float64(k)
}

// NCP is the normalized certainty penalty of a recoding averaged over the
// table's tuples: for each tuple and QI attribute, (span(node)-1)/(|dom|-1),
// averaged over attributes and tuples, in [0,1]. 0 means no generalization;
// 1 means everything suppressed.
func NCP(t *dataset.Table, r *Recoding) float64 {
	if t.Len() == 0 {
		return 0
	}
	d := t.Schema.D()
	total := 0.0
	for i := 0; i < t.Len(); i++ {
		for j := 0; j < d; j++ {
			domain := t.Schema.QI[j].Size()
			if domain <= 1 {
				continue
			}
			node := r.Cuts[j].Map(t.QI(i, j))
			total += float64(r.Hierarchies[j].Span(node)-1) / float64(domain-1)
		}
	}
	return total / float64(t.Len()*d)
}

// BoxNCP is NCP for Mondrian boxes: for each box and attribute,
// (hi-lo)/(|dom|-1) weighted by box size, averaged per tuple and attribute.
func BoxNCP(t *dataset.Table, boxes []MondrianBox) float64 {
	if t.Len() == 0 || len(boxes) == 0 {
		return 0
	}
	d := t.Schema.D()
	total := 0.0
	for _, b := range boxes {
		for j := 0; j < d; j++ {
			domain := t.Schema.QI[j].Size()
			if domain <= 1 {
				continue
			}
			total += float64(b.Hi[j]-b.Lo[j]) / float64(domain-1) * float64(len(b.Rows))
		}
	}
	return total / float64(t.Len()*d)
}
