package generalize

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
)

// hospitalHiers builds hierarchies for the Table Ia schema that mirror the
// granularity of Table Ic: 20-year age bands, 20k zipcode bands, Gender flat.
func hospitalHiers(s *dataset.Schema) []*hierarchy.Hierarchy {
	return []*hierarchy.Hierarchy{
		hierarchy.MustInterval(s.QI[0].Size(), 5, 20), // Age: 5y then 20y bands
		hierarchy.MustFlat(s.QI[1].Size()),            // Gender
		hierarchy.MustInterval(s.QI[2].Size(), 5, 20), // Zipcode: 5k then 20k bands
	}
}

func TestNewRecodingValidation(t *testing.T) {
	s := dataset.HospitalSchema()
	hiers := hospitalHiers(s)
	cuts := []*hierarchy.Cut{
		hierarchy.TopCut(hiers[0]),
		hierarchy.TopCut(hiers[1]),
		hierarchy.TopCut(hiers[2]),
	}
	if _, err := NewRecoding(s, hiers, cuts); err != nil {
		t.Fatalf("NewRecoding: %v", err)
	}
	if _, err := NewRecoding(s, hiers[:2], cuts); err == nil {
		t.Fatal("too few hierarchies: want error")
	}
	if _, err := NewRecoding(s, hiers, cuts[:2]); err == nil {
		t.Fatal("too few cuts: want error")
	}
	// Hierarchy with wrong leaf count.
	bad := append([]*hierarchy.Hierarchy(nil), hiers...)
	bad[0] = hierarchy.MustFlat(3)
	if _, err := NewRecoding(s, bad, cuts); err == nil {
		t.Fatal("mismatched hierarchy: want error")
	}
	// Cut from a different hierarchy instance.
	other := hierarchy.MustInterval(s.QI[0].Size(), 5, 20)
	mixed := append([]*hierarchy.Cut(nil), cuts...)
	mixed[0] = hierarchy.TopCut(other)
	if _, err := NewRecoding(s, hiers, mixed); err == nil {
		t.Fatal("foreign cut: want error")
	}
}

func TestGeneralizeAndLabels(t *testing.T) {
	h := dataset.Hospital()
	s := h.Schema
	hiers := hospitalHiers(s)
	rec, err := TopRecoding(s, hiers)
	if err != nil {
		t.Fatalf("TopRecoding: %v", err)
	}
	g := rec.Generalize(h.QIVector(0))
	for j := range g {
		if g[j] != hiers[j].Root() {
			t.Fatalf("top recoding component %d = %d, want root", j, g[j])
		}
	}
	if !rec.GeneralizesVector(g, h.QIVector(0)) {
		t.Fatal("top vector must generalize everything")
	}
	labels := rec.Labels(s, g)
	if !reflect.DeepEqual(labels, []string{"*", "*", "*"}) {
		t.Fatalf("labels = %v", labels)
	}

	id, err := IdentityRecoding(s, hiers)
	if err != nil {
		t.Fatalf("IdentityRecoding: %v", err)
	}
	v := h.QIVector(0)
	if !reflect.DeepEqual(id.Generalize(v), v) {
		t.Fatal("identity recoding changed values")
	}
	// A generalized vector of the wrong group must not generalize.
	other := id.Generalize(h.QIVector(3))
	if rec2 := id; rec2.GeneralizesVector(other, v) {
		t.Fatal("distinct identity vectors must not generalize each other")
	}
}

func TestGeneralizeInto(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)
	rec, _ := TopRecoding(h.Schema, hiers)
	dst := make([]int32, h.Schema.D())
	rec.GeneralizeInto(dst, h.QIVector(2))
	if !reflect.DeepEqual(dst, rec.Generalize(h.QIVector(2))) {
		t.Fatal("GeneralizeInto differs from Generalize")
	}
}

func TestGroupByHospital(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)

	// Identity recoding: 8 distinct QI vectors -> 8 singleton groups.
	id, _ := IdentityRecoding(h.Schema, hiers)
	g := GroupBy(h, id)
	if g.Len() != 8 || g.MinSize() != 1 {
		t.Fatalf("identity grouping: %d groups min %d", g.Len(), g.MinSize())
	}
	if g.IsKAnonymous(2) {
		t.Fatal("identity grouping must not be 2-anonymous")
	}

	// Top recoding: one group of 8.
	top, _ := TopRecoding(h.Schema, hiers)
	g = GroupBy(h, top)
	if g.Len() != 1 || g.MinSize() != 8 {
		t.Fatalf("top grouping: %d groups min %d", g.Len(), g.MinSize())
	}
	if !g.IsKAnonymous(8) || g.IsKAnonymous(9) {
		t.Fatal("top grouping anonymity wrong")
	}

	// Every row is in exactly one group, and its generalized key matches.
	seen := make(map[int]bool)
	for gi, rows := range g.Rows {
		for _, i := range rows {
			if seen[i] {
				t.Fatalf("row %d in two groups", i)
			}
			seen[i] = true
			if !top.GeneralizesVector(g.Keys[gi], h.QIVector(i)) {
				t.Fatalf("group key %v does not generalize row %d", g.Keys[gi], i)
			}
		}
	}
	if len(seen) != h.Len() {
		t.Fatalf("groups cover %d of %d rows", len(seen), h.Len())
	}
}

func TestGroupsMinSizeEmpty(t *testing.T) {
	var g Groups
	if g.MinSize() != 0 {
		t.Fatal("empty groups MinSize must be 0")
	}
	if g.IsKAnonymous(1) {
		t.Fatal("empty partition must not be k-anonymous")
	}
}

// randomTable builds a random table over a 2-QI schema for property tests.
func randomTable(n int, rng *rand.Rand) (*dataset.Table, []*hierarchy.Hierarchy) {
	s := dataset.MustSchema(
		[]*dataset.Attribute{
			dataset.MustIntAttribute("A", 0, 15),
			dataset.MustIntAttribute("B", 0, 7),
		},
		dataset.MustAttribute("S", "s0", "s1", "s2", "s3"),
	)
	t := dataset.NewTable(s)
	for i := 0; i < n; i++ {
		t.MustAppend([]int32{int32(rng.Intn(16)), int32(rng.Intn(8)), int32(rng.Intn(4))})
	}
	hiers := []*hierarchy.Hierarchy{
		hierarchy.MustInterval(16, 2, 4, 8),
		hierarchy.MustInterval(8, 2, 4),
	}
	return t, hiers
}

// Property: GroupBy agrees with a naive map-based grouping, for random cuts.
func TestGroupByMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, hiers := randomTable(64, rng)
		rec, err := TopRecoding(tbl.Schema, hiers)
		if err != nil {
			return false
		}
		// Random refinement of each cut.
		for j := range rec.Cuts {
			for step := 0; step < rng.Intn(4); step++ {
				cand := rec.Cuts[j].Refinable()
				if len(cand) == 0 {
					break
				}
				nc, err := rec.Cuts[j].Refine(cand[rng.Intn(len(cand))])
				if err != nil {
					return false
				}
				rec.Cuts[j] = nc
			}
		}
		g := GroupBy(tbl, rec)
		naive := make(map[[2]int32][]int)
		for i := 0; i < tbl.Len(); i++ {
			gv := rec.Generalize(tbl.QIVector(i))
			naive[[2]int32{gv[0], gv[1]}] = append(naive[[2]int32{gv[0], gv[1]}], i)
		}
		if g.Len() != len(naive) {
			return false
		}
		for gi, key := range g.Keys {
			want := naive[[2]int32{key[0], key[1]}]
			if !reflect.DeepEqual(g.Rows[gi], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
