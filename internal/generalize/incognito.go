package generalize

import (
	"fmt"
	"math"
	"sort"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/obs"
)

// IncognitoConfig parameterizes the Incognito lattice search (LeFevre,
// DeWitt, Ramakrishnan, SIGMOD'05 [13]) for full-domain k-anonymity.
type IncognitoConfig struct {
	// K is the group-size floor.
	K int
	// Loss ranks minimal satisfying vectors; lower is better. Defaults to
	// discernibility.
	Loss func(t *dataset.Table, g *Groups) float64
	// Workers bounds the goroutines of the single sharded table scan at the
	// lattice bottom. 0 means GOMAXPROCS; the result is identical for every
	// value.
	Workers int

	// Metrics optionally receives search diagnostics: lattice nodes grouped
	// versus skipped by roll-up pruning (generalize.lattice.nodes_evaluated
	// / nodes_pruned) and rows scanned (generalize.groupby.rows_scanned).
	// nil disables. The same numbers remain available as IncognitoResult
	// fields for callers that want them without a registry.
	Metrics *obs.Registry
}

// IncognitoResult reports the chosen recoding plus search diagnostics.
type IncognitoResult struct {
	Recoding *Recoding
	Groups   *Groups
	Levels   []int
	Loss     float64
	// Minimal lists every minimal satisfying level vector (no satisfying
	// strict specialization exists).
	Minimal [][]int
	// Evaluated counts the lattice nodes that were actually grouped — the
	// pruning wins over the full lattice size.
	Evaluated   int
	LatticeSize int
}

// Incognito finds all minimal full-domain recodings satisfying k-anonymity
// and returns the loss-best one. Two prunings keep evaluations down:
//
//   - the subset property at |S| = 1: joint QI-groups refine every single
//     attribute's marginal grouping, so a level at which one attribute's
//     marginal alone violates k-anonymity can never appear in a satisfying
//     joint vector — such levels raise the lattice's bottom per attribute;
//   - generalization monotonicity (roll-up): once a vector satisfies, every
//     ancestor satisfies and needs no evaluation.
//
// Grouping itself follows LeFevre et al.'s frequency-set roll-up: the table
// is scanned once, at the (pruned) lattice bottom, and every other node's
// groups are derived from that base grouping in O(#groups) by a
// LatticeEvaluator — the marginal pass likewise rolls per-attribute counts
// up the hierarchy instead of re-scanning the column per level.
//
// All hierarchies must be uniform.
func Incognito(t *dataset.Table, hiers []*hierarchy.Hierarchy, cfg IncognitoConfig) (*IncognitoResult, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("generalize: Incognito on an empty table")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("generalize: Incognito needs K >= 1, got %d", cfg.K)
	}
	if t.Len() < cfg.K {
		return nil, fmt.Errorf("generalize: table has %d rows, cannot be %d-anonymous", t.Len(), cfg.K)
	}
	if cfg.Loss == nil {
		cfg.Loss = func(_ *dataset.Table, g *Groups) float64 { return Discernibility(g) }
	}
	d := len(hiers)
	if d != t.Schema.D() {
		return nil, fmt.Errorf("generalize: %d hierarchies for %d QI attributes", d, t.Schema.D())
	}
	heights := make([]int, d)
	for j, h := range hiers {
		if !h.Uniform() {
			return nil, fmt.Errorf("generalize: hierarchy %d is not uniform", j)
		}
		heights[j] = h.Height()
	}

	res := &IncognitoResult{LatticeSize: 1}

	// Subset-property pass (|S| = 1): the minimum marginally feasible level
	// per attribute, via one column scan and per-level count roll-ups.
	minLevel := make([]int, d)
	for j, h := range hiers {
		level, evaluated, ok := marginalFloor(t, h, j, cfg.K)
		res.Evaluated += evaluated
		if !ok {
			return nil, fmt.Errorf("generalize: attribute %d cannot be made %d-anonymous even alone", j, cfg.K)
		}
		minLevel[j] = level
	}
	for j := range hiers {
		res.LatticeSize *= heights[j] - minLevel[j] + 1
	}

	// The one full-table grouping: the pruned lattice's bottom. Every other
	// node rolls up from it.
	eval, err := NewLatticeEvaluator(t, hiers, minLevel, cfg.Workers)
	if err != nil {
		return nil, err
	}

	// Bottom-up BFS over the reduced lattice, by level-sum.
	type nodeKey string
	key := func(levels []int) nodeKey {
		b := make([]byte, d)
		for j, l := range levels {
			b[j] = byte(l)
		}
		return nodeKey(b)
	}
	satisfied := map[nodeKey]bool{}
	var vectors [][]int
	var gen func(j int, cur []int)
	gen = func(j int, cur []int) {
		if j == d {
			vectors = append(vectors, append([]int(nil), cur...))
			return
		}
		for l := minLevel[j]; l <= heights[j]; l++ {
			gen(j+1, append(cur, l))
		}
	}
	gen(0, nil)
	sort.Slice(vectors, func(a, b int) bool {
		sa, sb := 0, 0
		for j := 0; j < d; j++ {
			sa += vectors[a][j]
			sb += vectors[b][j]
		}
		if sa != sb {
			return sa < sb
		}
		for j := 0; j < d; j++ {
			if vectors[a][j] != vectors[b][j] {
				return vectors[a][j] < vectors[b][j]
			}
		}
		return false
	})

	// A node is implied-satisfying if any lower neighbor satisfies.
	lowerSatisfies := func(levels []int) bool {
		for j := 0; j < d; j++ {
			if levels[j] > minLevel[j] {
				levels[j]--
				ok := satisfied[key(levels)]
				levels[j]++
				if ok {
					return true
				}
			}
		}
		return false
	}

	jointEvals := 0
	for _, v := range vectors {
		if lowerSatisfies(v) {
			satisfied[key(v)] = true // roll-up: no evaluation needed
			continue
		}
		min, err := eval.MinSizeAt(v)
		if err != nil {
			return nil, err
		}
		res.Evaluated++
		jointEvals++
		if min >= cfg.K {
			satisfied[key(v)] = true
			res.Minimal = append(res.Minimal, append([]int(nil), v...))
		}
	}
	if len(res.Minimal) == 0 {
		return nil, fmt.Errorf("generalize: no full-domain recoding is %d-anonymous", cfg.K)
	}

	// Pick the loss-best minimal vector.
	best := -1
	var bestLoss float64
	var bestRec *Recoding
	var bestGroups *Groups
	for i, v := range res.Minimal {
		rec, err := eval.RecodingAt(v)
		if err != nil {
			return nil, err
		}
		g, err := eval.GroupsAt(v)
		if err != nil {
			return nil, err
		}
		loss := cfg.Loss(t, g)
		if best < 0 || loss < bestLoss {
			best, bestLoss, bestRec, bestGroups = i, loss, rec, g
		}
	}
	res.Levels = res.Minimal[best]
	res.Loss = bestLoss
	res.Recoding = bestRec
	res.Groups = bestGroups
	met := cfg.Metrics
	met.Counter("generalize.groupby.rows_scanned").Add(int64(t.Len()))
	met.Counter("generalize.lattice.nodes_evaluated").Add(int64(res.Evaluated))
	// Joint nodes the roll-up pruning skipped; marginal-floor evaluations
	// are part of Evaluated but outside the joint lattice, so the count is
	// taken against jointEvals to stay non-negative.
	met.Counter("generalize.lattice.nodes_pruned").Add(int64(res.LatticeSize - jointEvals))
	return res, nil
}

// marginalFloor finds the lowest level at which a single attribute's marginal
// grouping is k-anonymous: one scan of the column builds the leaf counts, and
// each further level sums child counts into their parents (the frequency-set
// roll-up of [13] for |S| = 1). evaluated reports how many levels were
// checked; ok is false when even the root level (a single group) fails —
// impossible for a non-empty table, but kept for symmetry.
func marginalFloor(t *dataset.Table, h *hierarchy.Hierarchy, attr, k int) (level, evaluated int, ok bool) {
	counts := make([]int, h.NumNodes())
	active := make([]int32, 0, h.Leaves())
	for i := 0; i < t.Len(); i++ {
		c := t.QI(i, attr)
		if counts[c] == 0 {
			active = append(active, c)
		}
		counts[c]++
	}
	for l := 0; l <= h.Height(); l++ {
		evaluated++
		min := math.MaxInt
		for _, v := range active {
			if counts[v] < min {
				min = counts[v]
			}
		}
		if min >= k {
			return l, evaluated, true
		}
		if l == h.Height() {
			break
		}
		// Roll counts one level up: children sum into parents. The hierarchy
		// is uniform, so every active node sits at the same depth.
		next := active[:0]
		for _, v := range active {
			p := h.Parent(v)
			if counts[p] == 0 {
				next = append(next, p)
			}
			counts[p] += counts[v]
			counts[v] = 0
		}
		active = next
	}
	return 0, evaluated, false
}
