package generalize

import (
	"fmt"
	"sort"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
)

// IncognitoConfig parameterizes the Incognito lattice search (LeFevre,
// DeWitt, Ramakrishnan, SIGMOD'05 [13]) for full-domain k-anonymity.
type IncognitoConfig struct {
	// K is the group-size floor.
	K int
	// Loss ranks minimal satisfying vectors; lower is better. Defaults to
	// discernibility.
	Loss func(t *dataset.Table, g *Groups) float64
}

// IncognitoResult reports the chosen recoding plus search diagnostics.
type IncognitoResult struct {
	Recoding *Recoding
	Groups   *Groups
	Levels   []int
	Loss     float64
	// Minimal lists every minimal satisfying level vector (no satisfying
	// strict specialization exists).
	Minimal [][]int
	// Evaluated counts the lattice nodes that were actually grouped — the
	// pruning wins over the full lattice size.
	Evaluated   int
	LatticeSize int
}

// Incognito finds all minimal full-domain recodings satisfying k-anonymity
// and returns the loss-best one. Two prunings keep evaluations down:
//
//   - the subset property at |S| = 1: joint QI-groups refine every single
//     attribute's marginal grouping, so a level at which one attribute's
//     marginal alone violates k-anonymity can never appear in a satisfying
//     joint vector — such levels raise the lattice's bottom per attribute;
//   - generalization monotonicity (roll-up): once a vector satisfies, every
//     ancestor satisfies and needs no evaluation.
//
// All hierarchies must be uniform.
func Incognito(t *dataset.Table, hiers []*hierarchy.Hierarchy, cfg IncognitoConfig) (*IncognitoResult, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("generalize: Incognito on an empty table")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("generalize: Incognito needs K >= 1, got %d", cfg.K)
	}
	if t.Len() < cfg.K {
		return nil, fmt.Errorf("generalize: table has %d rows, cannot be %d-anonymous", t.Len(), cfg.K)
	}
	if cfg.Loss == nil {
		cfg.Loss = func(_ *dataset.Table, g *Groups) float64 { return Discernibility(g) }
	}
	d := len(hiers)
	heights := make([]int, d)
	for j, h := range hiers {
		if !h.Uniform() {
			return nil, fmt.Errorf("generalize: hierarchy %d is not uniform", j)
		}
		heights[j] = h.Height()
	}

	evalVector := func(levels []int) (*Recoding, *Groups, error) {
		cuts := make([]*hierarchy.Cut, d)
		for j, h := range hiers {
			c, err := hierarchy.LevelCut(h, levels[j])
			if err != nil {
				return nil, nil, err
			}
			cuts[j] = c
		}
		rec, err := NewRecoding(t.Schema, hiers, cuts)
		if err != nil {
			return nil, nil, err
		}
		return rec, GroupBy(t, rec), nil
	}

	res := &IncognitoResult{LatticeSize: 1}

	// Subset-property pass (|S| = 1): the minimum marginally feasible level
	// per attribute.
	minLevel := make([]int, d)
	for j := range hiers {
		found := false
		for l := 0; l <= heights[j]; l++ {
			g := marginalGroups(t, hiers[j], j, l)
			res.Evaluated++
			if g.IsKAnonymous(cfg.K) {
				minLevel[j] = l
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("generalize: attribute %d cannot be made %d-anonymous even alone", j, cfg.K)
		}
	}
	for j := range hiers {
		res.LatticeSize *= heights[j] - minLevel[j] + 1
	}

	// Bottom-up BFS over the reduced lattice, by level-sum.
	type nodeKey string
	key := func(levels []int) nodeKey {
		b := make([]byte, d)
		for j, l := range levels {
			b[j] = byte(l)
		}
		return nodeKey(b)
	}
	satisfied := map[nodeKey]bool{}
	var vectors [][]int
	var gen func(j int, cur []int)
	gen = func(j int, cur []int) {
		if j == d {
			vectors = append(vectors, append([]int(nil), cur...))
			return
		}
		for l := minLevel[j]; l <= heights[j]; l++ {
			gen(j+1, append(cur, l))
		}
	}
	gen(0, nil)
	sort.Slice(vectors, func(a, b int) bool {
		sa, sb := 0, 0
		for j := 0; j < d; j++ {
			sa += vectors[a][j]
			sb += vectors[b][j]
		}
		if sa != sb {
			return sa < sb
		}
		for j := 0; j < d; j++ {
			if vectors[a][j] != vectors[b][j] {
				return vectors[a][j] < vectors[b][j]
			}
		}
		return false
	})

	// A node is implied-satisfying if any lower neighbor satisfies.
	lowerSatisfies := func(levels []int) bool {
		for j := 0; j < d; j++ {
			if levels[j] > minLevel[j] {
				levels[j]--
				ok := satisfied[key(levels)]
				levels[j]++
				if ok {
					return true
				}
			}
		}
		return false
	}

	for _, v := range vectors {
		if lowerSatisfies(v) {
			satisfied[key(v)] = true // roll-up: no evaluation needed
			continue
		}
		_, g, err := evalVector(v)
		if err != nil {
			return nil, err
		}
		res.Evaluated++
		if g.IsKAnonymous(cfg.K) {
			satisfied[key(v)] = true
			res.Minimal = append(res.Minimal, append([]int(nil), v...))
		}
	}
	if len(res.Minimal) == 0 {
		return nil, fmt.Errorf("generalize: no full-domain recoding is %d-anonymous", cfg.K)
	}

	// Pick the loss-best minimal vector.
	best := -1
	var bestLoss float64
	var bestRec *Recoding
	var bestGroups *Groups
	for i, v := range res.Minimal {
		rec, g, err := evalVector(v)
		if err != nil {
			return nil, err
		}
		loss := cfg.Loss(t, g)
		if best < 0 || loss < bestLoss {
			best, bestLoss, bestRec, bestGroups = i, loss, rec, g
		}
	}
	res.Levels = res.Minimal[best]
	res.Loss = bestLoss
	res.Recoding = bestRec
	res.Groups = bestGroups
	return res, nil
}

// marginalGroups groups the table by a single attribute at a level.
func marginalGroups(t *dataset.Table, h *hierarchy.Hierarchy, attr, level int) *Groups {
	counts := map[int32][]int{}
	for i := 0; i < t.Len(); i++ {
		n := h.AncestorAbove(t.QI(i, attr), level)
		counts[n] = append(counts[n], i)
	}
	g := &Groups{}
	for n, rows := range counts {
		g.Keys = append(g.Keys, []int32{n})
		g.Rows = append(g.Rows, rows)
	}
	return g
}
