package generalize

import (
	"fmt"

	"pgpub/internal/dataset"
)

// This file rounds out the principles the paper's related-work section
// surveys: (k,e)-anonymity for numeric sensitive attributes (Zhang et al.,
// ICDE'07 [18]), δ-presence (Nergiz et al., SIGMOD'07 [19]) for membership
// inference, and the classification metric CM (Iyengar, KDD'02 [2]) as a
// workload-aware loss.

// KEAnonymity is the principle "every group has at least K tuples and its
// sensitive values span a range of at least E" — the numeric-sensitive
// counterpart of ℓ-diversity. The sensitive attribute must be ordered.
type KEAnonymity struct {
	K int
	E int32
}

// Satisfied implements Principle.
func (p KEAnonymity) Satisfied(t *dataset.Table, g *Groups) bool {
	if g.Len() == 0 || t.Schema.Sensitive.Kind != dataset.Continuous {
		return false
	}
	for _, rows := range g.Rows {
		if len(rows) < p.K {
			return false
		}
		lo, hi := t.Sensitive(rows[0]), t.Sensitive(rows[0])
		for _, i := range rows[1:] {
			v := t.Sensitive(i)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo < p.E {
			return false
		}
	}
	return true
}

// String implements Principle.
func (p KEAnonymity) String() string { return fmt.Sprintf("(%d,%d)-anonymity", p.K, p.E) }

// PresenceBounds computes, per QI-group of a published partition, the
// adversary's bounds on P[victim ∈ D] for a victim known (from the world
// table ℰ) to fall in that group's QI region: present/world, where present
// is the group size and world the number of ℰ individuals the group's box
// covers. δ-presence (δ_min, δ_max) holds when every group's ratio lies in
// [δ_min, δ_max]. worldQI lists every individual's QI vector (the public
// world the adversary holds).
func PresenceBounds(g *Groups, rec *Recoding, worldQI [][]int32) ([]float64, error) {
	if g.Len() == 0 {
		return nil, fmt.Errorf("generalize: no groups")
	}
	ratios := make([]float64, g.Len())
	for gi, key := range g.Keys {
		box := rec.BoxOf(key)
		world := 0
		for _, v := range worldQI {
			if box.Covers(v) {
				world++
			}
		}
		if world == 0 {
			return nil, fmt.Errorf("generalize: group %d covers no world individual", gi)
		}
		if len(g.Rows[gi]) > world {
			return nil, fmt.Errorf("generalize: group %d has more tuples (%d) than world members (%d)",
				gi, len(g.Rows[gi]), world)
		}
		ratios[gi] = float64(len(g.Rows[gi])) / float64(world)
	}
	return ratios, nil
}

// DeltaPresent reports whether every group's presence ratio lies within
// [dmin, dmax] — the δ-presence principle.
func DeltaPresent(g *Groups, rec *Recoding, worldQI [][]int32, dmin, dmax float64) (bool, error) {
	ratios, err := PresenceBounds(g, rec, worldQI)
	if err != nil {
		return false, err
	}
	for _, r := range ratios {
		if r < dmin-1e-12 || r > dmax+1e-12 {
			return false, nil
		}
	}
	return true, nil
}

// ClassificationMetric is Iyengar's CM: the fraction of tuples whose class
// label disagrees with their QI-group's majority class — the penalty a
// majority-vote classifier trained on the generalized table pays. class
// maps each row to a label.
func ClassificationMetric(g *Groups, class []int, numClasses int) (float64, error) {
	if numClasses < 1 {
		return 0, fmt.Errorf("generalize: numClasses must be positive")
	}
	total, penalty := 0, 0
	for _, rows := range g.Rows {
		hist := make([]int, numClasses)
		for _, i := range rows {
			if class[i] < 0 || class[i] >= numClasses {
				return 0, fmt.Errorf("generalize: class %d of row %d out of range", class[i], i)
			}
			hist[class[i]]++
		}
		best := 0
		for _, c := range hist {
			if c > best {
				best = c
			}
		}
		total += len(rows)
		penalty += len(rows) - best
	}
	if total == 0 {
		return 0, fmt.Errorf("generalize: no rows")
	}
	return float64(penalty) / float64(total), nil
}
