package generalize

import (
	"testing"

	"pgpub/internal/dataset"
)

// figure1Table reproduces the QI-group of the paper's Figure 1: 11 tuples
// with identical QI values whose diseases are 3x pneumonia, 2x HIV,
// 2x bronchitis, 2x lung-cancer, 1x SARS, 1x tuberculosis.
func figure1Table(t *testing.T) (*dataset.Table, *Groups) {
	t.Helper()
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustAttribute("QI", "same")},
		dataset.MustAttribute("Disease",
			"pneumonia", "HIV", "bronchitis", "lung-cancer", "SARS", "tuberculosis"),
	)
	tbl := dataset.NewTable(s)
	for _, d := range []string{
		"pneumonia", "pneumonia", "pneumonia",
		"HIV", "HIV",
		"bronchitis", "bronchitis",
		"lung-cancer", "lung-cancer",
		"SARS", "tuberculosis",
	} {
		if err := tbl.AppendLabels("same", d); err != nil {
			t.Fatal(err)
		}
	}
	rows := make([]int, tbl.Len())
	for i := range rows {
		rows[i] = i
	}
	g := &Groups{Keys: [][]int32{{0}}, Rows: [][]int{rows}}
	return tbl, g
}

func TestFigure1CLDiversity(t *testing.T) {
	tbl, g := figure1Table(t)
	// The paper: the group obeys (1/2, 3)-diversity since 3 <= 1/2*(2+2+1+1).
	if !IsCLDiverse(tbl, g, 0.5, 3) {
		t.Fatal("Figure 1 group must satisfy (1/2,3)-diversity")
	}
	// But not (1/2, 4): 3 > 1/2*(2+1+1).
	if IsCLDiverse(tbl, g, 0.5, 4) {
		t.Fatal("Figure 1 group must violate (1/2,4)-diversity")
	}
	// Distinct diversity: 6 distinct diseases (the paper's u = 6).
	if got := DistinctDiversity(tbl, g); got != 6 {
		t.Fatalf("DistinctDiversity = %d, want 6", got)
	}
	if !IsDistinctLDiverse(tbl, g, 6) || IsDistinctLDiverse(tbl, g, 7) {
		t.Fatal("distinct diversity thresholds wrong")
	}
}

func TestGroupSatisfiesCLEdges(t *testing.T) {
	// Fewer than l distinct values always fails.
	if GroupSatisfiesCL([]int{5, 1}, 10, 3) {
		t.Fatal("l' < l must fail")
	}
	if GroupSatisfiesCL(nil, 1, 1) {
		t.Fatal("empty counts must fail")
	}
	if GroupSatisfiesCL([]int{3}, 0.5, 0) {
		t.Fatal("l < 1 must fail")
	}
	// l = 1: n1 <= c * (sum of all counts).
	if !GroupSatisfiesCL([]int{2, 2}, 0.5, 1) {
		t.Fatal("2 <= 0.5*4 must hold")
	}
	if GroupSatisfiesCL([]int{3, 1}, 0.5, 1) {
		t.Fatal("3 > 0.5*4 must fail")
	}
}

func TestEntropyLDiversity(t *testing.T) {
	tbl, g := figure1Table(t)
	// Entropy of (3,2,2,2,1,1)/11 is about 1.70 nats; log(5) ~ 1.61,
	// log(6) ~ 1.79.
	if !IsEntropyLDiverse(tbl, g, 5) {
		t.Fatal("group should be entropy 5-diverse")
	}
	if IsEntropyLDiverse(tbl, g, 6) {
		t.Fatal("group should not be entropy 6-diverse")
	}
	if IsEntropyLDiverse(tbl, g, 0) {
		t.Fatal("l < 1 must fail")
	}
	if IsEntropyLDiverse(tbl, &Groups{}, 1) {
		t.Fatal("no groups must fail")
	}
	// A uniform group is entropy-l-diverse exactly up to its distinct count.
	if !IsEntropyLDiverse(tbl, g, 1) {
		t.Fatal("every non-empty partition is entropy 1-diverse")
	}
}

func TestPrincipleInterfaces(t *testing.T) {
	tbl, g := figure1Table(t)
	var p Principle = KAnonymity{K: 11}
	if !p.Satisfied(tbl, g) {
		t.Fatal("group of 11 must be 11-anonymous")
	}
	if (KAnonymity{K: 12}).Satisfied(tbl, g) {
		t.Fatal("group of 11 must not be 12-anonymous")
	}
	if (KAnonymity{K: 1}).String() != "1-anonymity" {
		t.Fatal("KAnonymity.String")
	}
	p = DistinctLDiversity{L: 6}
	if !p.Satisfied(tbl, g) || p.String() != "distinct 6-diversity" {
		t.Fatal("DistinctLDiversity")
	}
	p = CLDiversity{C: 0.5, L: 3}
	if !p.Satisfied(tbl, g) || p.String() != "(0.5,3)-diversity" {
		t.Fatal("CLDiversity")
	}
	if (CLDiversity{C: 0.5, L: 4}).Satisfied(tbl, g) {
		t.Fatal("(0.5,4)-diversity must fail on Figure 1")
	}
}

func TestPrinciplesOnEmptyGroups(t *testing.T) {
	tbl, _ := figure1Table(t)
	empty := &Groups{}
	if DistinctDiversity(tbl, empty) != 0 {
		t.Fatal("DistinctDiversity of empty must be 0")
	}
	if IsDistinctLDiverse(tbl, empty, 1) || IsCLDiverse(tbl, empty, 1, 1) {
		t.Fatal("empty partition satisfies nothing")
	}
}
