package generalize

import (
	"math/rand"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
)

// evalLevels groups a table under a full-domain level vector.
func evalLevels(t *testing.T, d *dataset.Table, hiers []*hierarchy.Hierarchy, levels []int) *Groups {
	t.Helper()
	cuts := make([]*hierarchy.Cut, len(hiers))
	for j, h := range hiers {
		c, err := hierarchy.LevelCut(h, levels[j])
		if err != nil {
			t.Fatal(err)
		}
		cuts[j] = c
	}
	rec, err := NewRecoding(d.Schema, hiers, cuts)
	if err != nil {
		t.Fatal(err)
	}
	return GroupBy(d, rec)
}

func TestIncognitoHospital(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	res, err := Incognito(d, hiers, IncognitoConfig{K: 2})
	if err != nil {
		t.Fatalf("Incognito: %v", err)
	}
	if !res.Groups.IsKAnonymous(2) {
		t.Fatal("result not 2-anonymous")
	}
	if len(res.Minimal) == 0 {
		t.Fatal("no minimal vectors reported")
	}
	// Agreement with the exhaustive search: same optimal loss.
	exh, err := SearchFullDomain(d, hiers, FullDomainConfig{Principle: KAnonymity{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss != exh.Loss {
		t.Fatalf("Incognito loss %v != exhaustive loss %v", res.Loss, exh.Loss)
	}
	// Minimality: lowering any coordinate of any minimal vector must break
	// k-anonymity (coordinates at the marginal floor are exempt — below the
	// floor the marginal alone already fails, which implies joint failure).
	for _, min := range res.Minimal {
		for j := range min {
			if min[j] == 0 {
				continue
			}
			levels := append([]int(nil), min...)
			levels[j]--
			if evalLevels(t, d, hiers, levels).IsKAnonymous(2) {
				t.Fatalf("vector %v is not minimal: %v also satisfies", min, levels)
			}
		}
	}
}

func TestIncognitoErrors(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	if _, err := Incognito(d, hiers, IncognitoConfig{K: 0}); err == nil {
		t.Fatal("K=0: want error")
	}
	if _, err := Incognito(d, hiers, IncognitoConfig{K: 99}); err == nil {
		t.Fatal("K > |D|: want error")
	}
	empty := dataset.NewTable(d.Schema)
	if _, err := Incognito(empty, hiers, IncognitoConfig{K: 2}); err == nil {
		t.Fatal("empty table: want error")
	}
}

func TestIncognitoAgreesOnRandomTables(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl, hiers := randomTable(60+rng.Intn(80), rng)
		k := 3 + rng.Intn(5)
		inc, err := Incognito(tbl, hiers, IncognitoConfig{K: k})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exh, err := SearchFullDomain(tbl, hiers, FullDomainConfig{Principle: KAnonymity{K: k}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if inc.Loss != exh.Loss {
			t.Fatalf("seed %d: Incognito loss %v != exhaustive %v (levels %v vs %v)",
				seed, inc.Loss, exh.Loss, inc.Levels, exh.Levels)
		}
		if !inc.Groups.IsKAnonymous(k) {
			t.Fatalf("seed %d: not %d-anonymous", seed, k)
		}
	}
}

func TestIncognitoMarginalPruning(t *testing.T) {
	// A singleton value in attribute A's upper half forces A's marginal
	// floor above level 0, shrinking the searched lattice below the full
	// product of heights.
	s := dataset.MustSchema(
		[]*dataset.Attribute{
			dataset.MustIntAttribute("A", 0, 15),
			dataset.MustIntAttribute("B", 0, 7),
		},
		dataset.MustAttribute("S", "x", "y"),
	)
	tbl := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		tbl.MustAppend([]int32{int32(rng.Intn(8)), int32(rng.Intn(8)), int32(rng.Intn(2))})
	}
	tbl.MustAppend([]int32{15, 0, 0}) // isolated in A
	hiers := []*hierarchy.Hierarchy{
		hierarchy.MustInterval(16, 2, 4, 8),
		hierarchy.MustInterval(8, 2, 4),
	}
	res, err := Incognito(tbl, hiers, IncognitoConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	full := 1
	for _, h := range hiers {
		full *= h.Height() + 1
	}
	if res.LatticeSize >= full {
		t.Fatalf("marginal pruning did not shrink the lattice: %d vs %d", res.LatticeSize, full)
	}
	if !res.Groups.IsKAnonymous(2) {
		t.Fatal("not 2-anonymous")
	}
}
