package generalize

import (
	"fmt"
	"math"
	"sort"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/obs"
)

// TDSConfig parameterizes top-down specialization (Fung, Wang, Yu, ICDE'05),
// the algorithm the paper adapts for Phase 2. TDS starts from the fully
// suppressed table and repeatedly performs the specialization with the best
// information-gain-per-anonymity-loss score, as long as the result stays
// k-anonymous.
type TDSConfig struct {
	// K is the minimum QI-group size (Property G2); must be >= 1.
	K int

	// Class holds the per-row class labels used by the information-gain
	// score (the mining task the publication should serve, e.g. the income
	// category). When nil, the sensitive codes themselves are used.
	Class []int
	// NumClasses is the number of distinct class labels; required when
	// Class is set.
	NumClasses int

	// MaxRounds caps the number of specializations; 0 means unbounded
	// (the algorithm always terminates because cuts only grow).
	MaxRounds int

	// Workers bounds the goroutines of the initial sharded grouping scan.
	// 0 means GOMAXPROCS; the result is identical for every value.
	Workers int

	// Metrics optionally receives search diagnostics: rounds run, groups
	// split, final group count, and rows scanned by the initial grouping
	// (generalize.tds.* and generalize.groupby.rows_scanned). nil disables.
	Metrics *obs.Registry
}

// TDSResult carries the chosen recoding plus search diagnostics.
type TDSResult struct {
	Recoding *Recoding
	Groups   *Groups
	Rounds   int
	MinGroup int
}

// TDS runs top-down specialization and returns a global recoding whose
// grouping is k-anonymous and, subject to that, has (greedily) maximal
// information gain about the class labels.
//
// Grouping is incremental: the table is grouped once under the starting
// (fully suppressed) recoding, and each specialization round splits only the
// groups whose key contains the refined cut node — O(affected rows) instead
// of a full-table re-scan — while candidate scores are maintained from the
// per-group child statistics the engine keeps between rounds.
func TDS(t *dataset.Table, hiers []*hierarchy.Hierarchy, cfg TDSConfig) (*TDSResult, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("generalize: TDS on an empty table")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("generalize: TDS needs K >= 1, got %d", cfg.K)
	}
	if t.Len() < cfg.K {
		return nil, fmt.Errorf("generalize: table has %d rows, cannot be %d-anonymous", t.Len(), cfg.K)
	}
	class := cfg.Class
	numClasses := cfg.NumClasses
	if class == nil {
		class = make([]int, t.Len())
		for i := range class {
			class[i] = int(t.Sensitive(i))
		}
		numClasses = t.Schema.SensitiveDomain()
	}
	if len(class) != t.Len() {
		return nil, fmt.Errorf("generalize: %d class labels for %d rows", len(class), t.Len())
	}
	if numClasses < 1 {
		return nil, fmt.Errorf("generalize: NumClasses must be >= 1 when Class is set")
	}
	for i, c := range class {
		if c < 0 || c >= numClasses {
			return nil, fmt.Errorf("generalize: class label %d of row %d out of [0,%d)", c, i, numClasses)
		}
	}

	rec, err := TopRecoding(t.Schema, hiers)
	if err != nil {
		return nil, err
	}
	eng := newTDSEngine(t, hiers, rec, class, numClasses, cfg.K, cfg.Workers)

	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		// A cut can be refined at most once per internal node.
		for _, h := range hiers {
			maxRounds += h.NumNodes() - h.Leaves()
		}
	}

	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		attr, node, ok := eng.bestSpecialization()
		if !ok {
			break
		}
		refined, err := rec.Cuts[attr].Refine(node)
		if err != nil {
			return nil, fmt.Errorf("generalize: TDS refine: %w", err)
		}
		rec.Cuts[attr] = refined
		eng.refine(attr, node)
	}

	groups := eng.finish()
	met := cfg.Metrics
	met.Counter("generalize.groupby.rows_scanned").Add(int64(t.Len()))
	met.Counter("generalize.tds.rounds").Add(int64(rounds))
	met.Counter("generalize.tds.groups_split").Add(int64(eng.splits))
	met.Counter("generalize.tds.groups").Add(int64(len(groups.Keys)))
	return &TDSResult{Recoding: rec, Groups: groups, Rounds: rounds, MinGroup: groups.MinSize()}, nil
}

// tdsGroup is one QI-group of the evolving partition, with the per-attribute
// child split counts a refinement-validity check needs.
type tdsGroup struct {
	key  []int32
	rows []int
	// split[a] maps each child of key[a] to the number of the group's rows
	// underneath it; nil when key[a] is a leaf (not refinable).
	split []map[int32]int
}

// tdsCand is the class-histogram state of one (attribute, cut node)
// specialization candidate. It is built exactly once, when the node enters a
// group key, and stays valid until the node itself is refined away: splitting
// groups on a *different* attribute moves rows between groups but never
// changes the set of rows mapping to this node, so total and perChild are
// invariants of the candidate.
type tdsCand struct {
	total    []int           // class histogram of all rows mapping to the node
	perChild map[int32][]int // child node -> class histogram
}

// tdsEngine maintains the grouping and candidate statistics across
// specialization rounds.
type tdsEngine struct {
	t          *dataset.Table
	hiers      []*hierarchy.Hierarchy
	class      []int
	numClasses int
	k          int
	groups     []*tdsGroup
	cands      map[[2]int32]*tdsCand
	// splits counts the groups broken apart across all refine calls.
	splits int
}

func newTDSEngine(t *dataset.Table, hiers []*hierarchy.Hierarchy, rec *Recoding, class []int, numClasses, k, workers int) *tdsEngine {
	e := &tdsEngine{
		t:          t,
		hiers:      hiers,
		class:      class,
		numClasses: numClasses,
		k:          k,
		cands:      make(map[[2]int32]*tdsCand),
	}
	g := GroupByWorkers(t, rec, workers)
	for gi := range g.Keys {
		grp := &tdsGroup{key: g.Keys[gi], rows: g.Rows[gi]}
		e.addGroup(grp, -1)
		e.groups = append(e.groups, grp)
	}
	return e
}

// addGroup scans the group's rows once, building its per-attribute child
// split counts and merging its class statistics into the candidates of
// attribute candAttr (-1 means every refinable attribute — used for the
// initial grouping, where every candidate is new).
func (e *tdsEngine) addGroup(grp *tdsGroup, candAttr int) {
	d := len(grp.key)
	grp.split = make([]map[int32]int, d)
	for a := 0; a < d; a++ {
		v := grp.key[a]
		h := e.hiers[a]
		if h.IsLeaf(v) {
			continue
		}
		grp.split[a] = make(map[int32]int, len(h.Children(v)))
		var c *tdsCand
		if a == candAttr || candAttr < 0 {
			ck := [2]int32{int32(a), v}
			c = e.cands[ck]
			if c == nil {
				c = &tdsCand{total: make([]int, e.numClasses), perChild: make(map[int32][]int, len(h.Children(v)))}
				e.cands[ck] = c
			}
		}
		for _, i := range grp.rows {
			child := childToward(h, v, e.t.QI(i, a))
			grp.split[a][child]++
			if c != nil {
				cl := e.class[i]
				c.total[cl]++
				hist := c.perChild[child]
				if hist == nil {
					hist = make([]int, e.numClasses)
					c.perChild[child] = hist
				}
				hist[cl]++
			}
		}
	}
}

// bestSpecialization aggregates validity over the current groups' split
// counts, scores every valid candidate from its maintained class histograms,
// and returns the one maximizing InfoGain / (AnonyLoss + 1). Candidates are
// ranked in (attribute, node) order, so ties break deterministically. ok is
// false when no specialization is valid.
func (e *tdsEngine) bestSpecialization() (attr int, node int32, ok bool) {
	curMin := math.MaxInt
	for _, grp := range e.groups {
		if len(grp.rows) < curMin {
			curMin = len(grp.rows)
		}
	}

	type agg struct {
		valid    bool
		minAfter int
	}
	aggs := make(map[[2]int32]*agg, len(e.cands))
	order := make([][2]int32, 0, len(e.cands))
	for _, grp := range e.groups {
		for a, split := range grp.split {
			if split == nil {
				continue
			}
			ck := [2]int32{int32(a), grp.key[a]}
			ag := aggs[ck]
			if ag == nil {
				ag = &agg{valid: true, minAfter: math.MaxInt}
				aggs[ck] = ag
				order = append(order, ck)
			}
			for _, cnt := range split {
				if cnt < e.k {
					ag.valid = false
				}
				if cnt < ag.minAfter {
					ag.minAfter = cnt
				}
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i][0] != order[j][0] {
			return order[i][0] < order[j][0]
		}
		return order[i][1] < order[j][1]
	})

	bestScore := math.Inf(-1)
	for _, ck := range order {
		ag := aggs[ck]
		if !ag.valid {
			continue
		}
		c := e.cands[ck]
		gain := infoGain(c.total, c.perChild)
		loss := float64(curMin - ag.minAfter)
		if loss < 0 {
			loss = 0
		}
		score := gain / (loss + 1)
		if score > bestScore {
			bestScore = score
			attr, node, ok = int(ck[0]), ck[1], true
		}
	}
	return attr, node, ok
}

// refine performs the specialization (attr, node): every group whose key
// contains the node is split by the node's children, in one pass over the
// affected rows only. Unaffected groups — and the candidate statistics of
// every other attribute — are reused as-is.
func (e *tdsEngine) refine(attr int, node int32) {
	h := e.hiers[attr]
	delete(e.cands, [2]int32{int32(attr), node})
	out := e.groups[:0]
	var spawned []*tdsGroup
	for _, grp := range e.groups {
		if grp.key[attr] != node {
			out = append(out, grp)
			continue
		}
		e.splits++
		sub := make(map[int32]*tdsGroup, len(h.Children(node)))
		var order []int32
		for _, i := range grp.rows {
			child := childToward(h, node, e.t.QI(i, attr))
			sg := sub[child]
			if sg == nil {
				key := append([]int32(nil), grp.key...)
				key[attr] = child
				sg = &tdsGroup{key: key, rows: make([]int, 0, grp.split[attr][child])}
				sub[child] = sg
				order = append(order, child)
			}
			sg.rows = append(sg.rows, i)
		}
		for _, child := range order {
			sg := sub[child]
			e.addGroup(sg, attr)
			spawned = append(spawned, sg)
		}
	}
	e.groups = append(out, spawned...)
}

// finish canonicalizes the partition into the GroupBy contract: groups in
// first-appearance order of their smallest row index (rows within each group
// are already ascending, because splits preserve row order).
func (e *tdsEngine) finish() *Groups {
	sort.Slice(e.groups, func(i, j int) bool { return e.groups[i].rows[0] < e.groups[j].rows[0] })
	out := &Groups{Keys: make([][]int32, len(e.groups)), Rows: make([][]int, len(e.groups))}
	for gi, grp := range e.groups {
		out.Keys[gi] = grp.key
		out.Rows[gi] = grp.rows
	}
	return out
}

// childToward returns the child of internal node v on the path toward leaf.
func childToward(h *hierarchy.Hierarchy, v, leaf int32) int32 {
	u := leaf
	for h.Parent(u) != v {
		u = h.Parent(u)
	}
	return u
}

// entropy computes the Shannon entropy (nats) of a count histogram.
func entropy(hist []int) float64 {
	total := 0
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		return 0
	}
	e := 0.0
	for _, n := range hist {
		if n == 0 {
			continue
		}
		p := float64(n) / float64(total)
		e -= p * math.Log(p)
	}
	return e
}

// infoGain is I(parent) - sum_c |R_c|/|R| * I(R_c). Children are summed in
// node order so the floating-point result is reproducible across runs.
func infoGain(total []int, perChild map[int32][]int) float64 {
	n := 0
	for _, c := range total {
		n += c
	}
	if n == 0 {
		return 0
	}
	children := make([]int32, 0, len(perChild))
	for c := range perChild {
		children = append(children, c)
	}
	sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
	g := entropy(total)
	for _, c := range children {
		hist := perChild[c]
		cn := 0
		for _, cc := range hist {
			cn += cc
		}
		g -= float64(cn) / float64(n) * entropy(hist)
	}
	return g
}
