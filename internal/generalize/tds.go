package generalize

import (
	"fmt"
	"math"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
)

// TDSConfig parameterizes top-down specialization (Fung, Wang, Yu, ICDE'05),
// the algorithm the paper adapts for Phase 2. TDS starts from the fully
// suppressed table and repeatedly performs the specialization with the best
// information-gain-per-anonymity-loss score, as long as the result stays
// k-anonymous.
type TDSConfig struct {
	// K is the minimum QI-group size (Property G2); must be >= 1.
	K int

	// Class holds the per-row class labels used by the information-gain
	// score (the mining task the publication should serve, e.g. the income
	// category). When nil, the sensitive codes themselves are used.
	Class []int
	// NumClasses is the number of distinct class labels; required when
	// Class is set.
	NumClasses int

	// MaxRounds caps the number of specializations; 0 means unbounded
	// (the algorithm always terminates because cuts only grow).
	MaxRounds int
}

// TDSResult carries the chosen recoding plus search diagnostics.
type TDSResult struct {
	Recoding *Recoding
	Groups   *Groups
	Rounds   int
	MinGroup int
}

// TDS runs top-down specialization and returns a global recoding whose
// grouping is k-anonymous and, subject to that, has (greedily) maximal
// information gain about the class labels.
func TDS(t *dataset.Table, hiers []*hierarchy.Hierarchy, cfg TDSConfig) (*TDSResult, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("generalize: TDS on an empty table")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("generalize: TDS needs K >= 1, got %d", cfg.K)
	}
	if t.Len() < cfg.K {
		return nil, fmt.Errorf("generalize: table has %d rows, cannot be %d-anonymous", t.Len(), cfg.K)
	}
	class := cfg.Class
	numClasses := cfg.NumClasses
	if class == nil {
		class = make([]int, t.Len())
		for i := range class {
			class[i] = int(t.Sensitive(i))
		}
		numClasses = t.Schema.SensitiveDomain()
	}
	if len(class) != t.Len() {
		return nil, fmt.Errorf("generalize: %d class labels for %d rows", len(class), t.Len())
	}
	if numClasses < 1 {
		return nil, fmt.Errorf("generalize: NumClasses must be >= 1 when Class is set")
	}
	for i, c := range class {
		if c < 0 || c >= numClasses {
			return nil, fmt.Errorf("generalize: class label %d of row %d out of [0,%d)", c, i, numClasses)
		}
	}

	rec, err := TopRecoding(t.Schema, hiers)
	if err != nil {
		return nil, err
	}
	groups := GroupBy(t, rec)

	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		// A cut can be refined at most once per internal node.
		for _, h := range hiers {
			maxRounds += h.NumNodes() - h.Leaves()
		}
	}

	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		attr, node, ok := bestSpecialization(t, rec, groups, class, numClasses, cfg.K)
		if !ok {
			break
		}
		refined, err := rec.Cuts[attr].Refine(node)
		if err != nil {
			return nil, fmt.Errorf("generalize: TDS refine: %w", err)
		}
		rec.Cuts[attr] = refined
		groups = GroupBy(t, rec)
	}

	return &TDSResult{Recoding: rec, Groups: groups, Rounds: rounds, MinGroup: groups.MinSize()}, nil
}

// candidate accumulates, for one (attribute, cut node) specialization, the
// statistics needed for validity and scoring.
type candidate struct {
	attr int
	node int32

	total      []int           // class histogram of all rows mapping to node
	perChild   map[int32][]int // child node -> class histogram
	groupChild []map[int32]int // per affected group: child -> row count
	groupIdx   map[int]int     // group index -> slot in groupChild
	groupSize  []int           // size of each affected group
}

// bestSpecialization scans every refinable cut node, keeps the valid ones
// (every split subgroup stays >= k) and returns the one maximizing
// InfoGain / (AnonyLoss + 1). ok is false when no specialization is valid.
func bestSpecialization(t *dataset.Table, rec *Recoding, groups *Groups, class []int, numClasses, k int) (attr int, node int32, ok bool) {
	d := rec.D()
	cands := make(map[[2]int32]*candidate)

	for gi, rows := range groups.Rows {
		key := groups.Keys[gi]
		for a := 0; a < d; a++ {
			v := key[a]
			h := rec.Hierarchies[a]
			if h.IsLeaf(v) {
				continue
			}
			ck := [2]int32{int32(a), v}
			c := cands[ck]
			if c == nil {
				c = &candidate{
					attr:     a,
					node:     v,
					total:    make([]int, numClasses),
					perChild: make(map[int32][]int),
					groupIdx: make(map[int]int),
				}
				cands[ck] = c
			}
			slot := len(c.groupChild)
			c.groupIdx[gi] = slot
			c.groupChild = append(c.groupChild, make(map[int32]int))
			c.groupSize = append(c.groupSize, len(rows))
			for _, i := range rows {
				leaf := t.QI(i, a)
				child := childToward(h, v, leaf)
				c.total[class[i]]++
				hist := c.perChild[child]
				if hist == nil {
					hist = make([]int, numClasses)
					c.perChild[child] = hist
				}
				hist[class[i]]++
				c.groupChild[slot][child]++
			}
		}
	}

	curMin := groups.MinSize()
	bestScore := math.Inf(-1)
	for _, c := range cands {
		minAfter := math.MaxInt
		valid := true
		for _, split := range c.groupChild {
			for _, cnt := range split {
				if cnt < k {
					valid = false
					break
				}
				if cnt < minAfter {
					minAfter = cnt
				}
			}
			if !valid {
				break
			}
		}
		if !valid {
			continue
		}
		gain := infoGain(c.total, c.perChild)
		loss := float64(curMin - minAfter)
		if loss < 0 {
			loss = 0
		}
		score := gain / (loss + 1)
		if score > bestScore {
			bestScore = score
			attr, node, ok = c.attr, c.node, true
		}
	}
	return attr, node, ok
}

// childToward returns the child of internal node v on the path toward leaf.
func childToward(h *hierarchy.Hierarchy, v, leaf int32) int32 {
	u := leaf
	for h.Parent(u) != v {
		u = h.Parent(u)
	}
	return u
}

// entropy computes the Shannon entropy (nats) of a count histogram.
func entropy(hist []int) float64 {
	total := 0
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		return 0
	}
	e := 0.0
	for _, n := range hist {
		if n == 0 {
			continue
		}
		p := float64(n) / float64(total)
		e -= p * math.Log(p)
	}
	return e
}

// infoGain is I(parent) - sum_c |R_c|/|R| * I(R_c).
func infoGain(total []int, perChild map[int32][]int) float64 {
	n := 0
	for _, c := range total {
		n += c
	}
	if n == 0 {
		return 0
	}
	g := entropy(total)
	for _, hist := range perChild {
		cn := 0
		for _, c := range hist {
			cn += c
		}
		g -= float64(cn) / float64(n) * entropy(hist)
	}
	return g
}
