// Package generalize implements Phase 2 of perturbed generalization: global
// recoding of QI attributes through generalization hierarchies, the classic
// generalization principles the paper analyses in Section III (k-anonymity,
// ℓ-diversity and (c,ℓ)-diversity), two recoding algorithms (top-down
// specialization after Fung et al. [11], and full-domain lattice search after
// LeFevre et al. [13]), the Mondrian multidimensional baseline [16], and the
// information-loss metrics used by the ablation experiments.
package generalize

import (
	"fmt"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
)

// Recoding maps each QI attribute to a cut of its hierarchy. Recoding a tuple
// replaces every QI code with the covering cut node; because cuts are
// antichains, the result satisfies Property G3 (global recoding): two
// distinct generalized QI-vectors never share a specialization.
//
// Ownership rule: a Cut installed in Cuts is an immutable snapshot and may be
// shared between recodings. Cut has no mutating methods — Cut.Refine returns
// a fresh cut — so evolving a recoding means replacing Cuts[j], never
// altering the Cut it points to. The incremental grouping engine
// (groupengine.go, tds.go) depends on this: groups derived under an earlier
// cut stay valid because that cut can never change underneath them.
type Recoding struct {
	Hierarchies []*hierarchy.Hierarchy
	Cuts        []*hierarchy.Cut
}

// NewRecoding validates that each cut belongs to its hierarchy and that the
// hierarchies match the schema's QI domains.
func NewRecoding(schema *dataset.Schema, hiers []*hierarchy.Hierarchy, cuts []*hierarchy.Cut) (*Recoding, error) {
	if len(hiers) != schema.D() || len(cuts) != schema.D() {
		return nil, fmt.Errorf("generalize: %d hierarchies, %d cuts for %d QI attributes",
			len(hiers), len(cuts), schema.D())
	}
	for j, h := range hiers {
		if h.Leaves() != schema.QI[j].Size() {
			return nil, fmt.Errorf("generalize: hierarchy %d has %d leaves, attribute %q has %d values",
				j, h.Leaves(), schema.QI[j].Name, schema.QI[j].Size())
		}
		if cuts[j].Hierarchy() != h {
			return nil, fmt.Errorf("generalize: cut %d does not belong to hierarchy %d", j, j)
		}
	}
	return &Recoding{Hierarchies: hiers, Cuts: cuts}, nil
}

// TopRecoding returns the recoding where every attribute is fully suppressed.
func TopRecoding(schema *dataset.Schema, hiers []*hierarchy.Hierarchy) (*Recoding, error) {
	cuts := make([]*hierarchy.Cut, len(hiers))
	for j, h := range hiers {
		cuts[j] = hierarchy.TopCut(h)
	}
	return NewRecoding(schema, hiers, cuts)
}

// IdentityRecoding returns the recoding that leaves every value untouched.
func IdentityRecoding(schema *dataset.Schema, hiers []*hierarchy.Hierarchy) (*Recoding, error) {
	cuts := make([]*hierarchy.Cut, len(hiers))
	for j, h := range hiers {
		cuts[j] = hierarchy.BottomCut(h)
	}
	return NewRecoding(schema, hiers, cuts)
}

// D returns the number of QI attributes.
func (r *Recoding) D() int { return len(r.Cuts) }

// Generalize maps a QI vector of leaf codes to its generalized form (a
// vector of hierarchy node IDs).
func (r *Recoding) Generalize(v []int32) []int32 {
	g := make([]int32, len(v))
	for j := range v {
		g[j] = r.Cuts[j].Map(v[j])
	}
	return g
}

// GeneralizeInto is Generalize without allocation; dst must have length d.
func (r *Recoding) GeneralizeInto(dst, v []int32) {
	for j := range v {
		dst[j] = r.Cuts[j].Map(v[j])
	}
}

// GeneralizesVector reports whether the generalized vector g (node IDs)
// generalizes the raw QI vector v (leaf codes), per the paper's definition:
// component-wise set membership.
func (r *Recoding) GeneralizesVector(g, v []int32) bool {
	for j := range v {
		if !r.Hierarchies[j].Covers(g[j], v[j]) {
			return false
		}
	}
	return true
}

// Labels renders a generalized vector with the schema's attribute labels.
func (r *Recoding) Labels(schema *dataset.Schema, g []int32) []string {
	out := make([]string, len(g))
	for j := range g {
		out[j] = r.Hierarchies[j].Label(g[j], schema.QI[j])
	}
	return out
}

// Clone returns a recoding whose cut vector can evolve independently of the
// receiver's. Hierarchies and the Cut objects themselves are shared: cuts are
// immutable snapshots (see the ownership rule on Recoding), so copying the
// pointer slice is a full logical copy — the former deep copy only hid
// aliasing bugs that mutation of a shared cut would have caused.
func (r *Recoding) Clone() *Recoding {
	return &Recoding{
		Hierarchies: r.Hierarchies,
		Cuts:        append([]*hierarchy.Cut(nil), r.Cuts...),
	}
}

// Groups is the partition of a table's rows into QI-groups (strata): rows
// whose generalized QI-vectors coincide.
//
// Canonical form (what GroupBy produces and every incremental path in the
// grouping engine reproduces): row indices within a group ascend, and groups
// are ordered by first appearance, i.e. by their smallest row index.
type Groups struct {
	// Keys[i] is the generalized QI-vector shared by group i.
	Keys [][]int32
	// Rows[i] lists the table row indices of group i.
	Rows [][]int
}

// Len returns the number of groups.
func (g *Groups) Len() int { return len(g.Keys) }

// MinSize returns the smallest group cardinality, or 0 for no groups.
func (g *Groups) MinSize() int {
	if g.Len() == 0 {
		return 0
	}
	m := len(g.Rows[0])
	for _, rows := range g.Rows[1:] {
		if len(rows) < m {
			m = len(rows)
		}
	}
	return m
}
