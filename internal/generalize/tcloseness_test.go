package generalize

import (
	"math"
	"testing"
	"testing/quick"

	"pgpub/internal/dataset"
)

func TestEMDOrdered(t *testing.T) {
	// Identical distributions: 0.
	p := []float64{0.5, 0.3, 0.2}
	if d, err := EMDOrdered(p, p); err != nil || d != 0 {
		t.Fatalf("EMD(p,p) = %v, %v", d, err)
	}
	// Point masses at the extremes of an n-code domain: distance 1.
	a := []float64{1, 0, 0, 0}
	b := []float64{0, 0, 0, 1}
	if d, _ := EMDOrdered(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("extreme EMD = %v, want 1", d)
	}
	// Adjacent point masses over 4 codes: 1/(n-1) = 1/3.
	c := []float64{0, 1, 0, 0}
	if d, _ := EMDOrdered(a, c); math.Abs(d-1.0/3) > 1e-12 {
		t.Fatalf("adjacent EMD = %v, want 1/3", d)
	}
	if _, err := EMDOrdered(a, p); err == nil {
		t.Fatal("mismatched domains: want error")
	}
	// Degenerate single-code domain.
	if d, err := EMDOrdered([]float64{1}, []float64{1}); err != nil || d != 0 {
		t.Fatalf("single-code EMD = %v, %v", d, err)
	}
}

func TestTotalVariation(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if d, _ := TotalVariation(a, b); d != 1 {
		t.Fatalf("TV = %v, want 1", d)
	}
	if d, _ := TotalVariation(a, a); d != 0 {
		t.Fatalf("TV(p,p) = %v", d)
	}
	if _, err := TotalVariation(a, []float64{1}); err == nil {
		t.Fatal("mismatched domains: want error")
	}
}

// Property: EMD and TV are symmetric, non-negative, and TV <= 1.
func TestDistanceProperties(t *testing.T) {
	f := func(rawP, rawQ [6]uint8) bool {
		p := make([]float64, 6)
		q := make([]float64, 6)
		sp, sq := 0.0, 0.0
		for i := 0; i < 6; i++ {
			p[i] = float64(rawP[i]) + 1
			q[i] = float64(rawQ[i]) + 1
			sp += p[i]
			sq += q[i]
		}
		for i := 0; i < 6; i++ {
			p[i] /= sp
			q[i] /= sq
		}
		e1, _ := EMDOrdered(p, q)
		e2, _ := EMDOrdered(q, p)
		v1, _ := TotalVariation(p, q)
		v2, _ := TotalVariation(q, p)
		return math.Abs(e1-e2) < 1e-12 && math.Abs(v1-v2) < 1e-12 &&
			e1 >= 0 && v1 >= 0 && v1 <= 1 && e1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxClosenessAndPrinciple(t *testing.T) {
	// Table with ordered sensitive attribute: two groups, one matching the
	// global distribution exactly, one skewed.
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("Q", 0, 1)},
		dataset.MustIntAttribute("S", 0, 3),
	)
	tbl := dataset.NewTable(s)
	// Group 0 (Q=0): S values 0,1,2,3 — uniform.
	for v := int32(0); v < 4; v++ {
		tbl.MustAppend([]int32{0, v})
	}
	// Group 1 (Q=1): S values 0,0,0,0 — a point mass.
	for i := 0; i < 4; i++ {
		tbl.MustAppend([]int32{1, 0})
	}
	g := &Groups{
		Keys: [][]int32{{0}, {1}},
		Rows: [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}},
	}
	worst, err := MaxCloseness(tbl, g)
	if err != nil {
		t.Fatal(err)
	}
	// Global pdf: (5/8, 1/8, 1/8, 1/8). Group 1 pdf: (1,0,0,0).
	// Prefix sums of (p - q): 3/8, 2/8, 1/8 → EMD = (6/8)/3 = 0.25.
	// Group 0 (uniform) gives the mirror image, also 0.25.
	if math.Abs(worst-0.25) > 1e-12 {
		t.Fatalf("MaxCloseness = %v, want 0.25", worst)
	}
	if !(TCloseness{T: 0.25}).Satisfied(tbl, g) {
		t.Fatal("0.25-closeness should hold")
	}
	if (TCloseness{T: 0.24}).Satisfied(tbl, g) {
		t.Fatal("0.24-closeness should fail")
	}
	if (TCloseness{T: 0.5}).String() != "0.5-closeness" {
		t.Fatal("TCloseness.String")
	}
	if _, err := MaxCloseness(tbl, &Groups{}); err == nil {
		t.Fatal("no groups: want error")
	}
}

// t-closeness is usable as a Phase-2 search principle.
func TestSearchFullDomainTCloseness(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	res, err := SearchFullDomain(d, hiers, FullDomainConfig{Principle: TCloseness{T: 0.5}})
	if err != nil {
		t.Fatalf("SearchFullDomain: %v", err)
	}
	worst, err := MaxCloseness(d, res.Groups)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.5+1e-12 {
		t.Fatalf("result violates 0.5-closeness: %v", worst)
	}
}
