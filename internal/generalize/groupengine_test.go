package generalize

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
)

// engineTable builds a random table over three QI attributes whose
// hierarchies exercise all three shapes: interval bands, a balanced tree,
// and a flat (leaf/root only) hierarchy.
func engineTable(n int, rng *rand.Rand) (*dataset.Table, []*hierarchy.Hierarchy) {
	s := dataset.MustSchema(
		[]*dataset.Attribute{
			dataset.MustIntAttribute("I", 0, 15),
			dataset.MustIntAttribute("B", 0, 7),
			dataset.MustIntAttribute("F", 0, 5),
		},
		dataset.MustAttribute("S", "s0", "s1", "s2"),
	)
	tbl := dataset.NewTable(s)
	for i := 0; i < n; i++ {
		tbl.MustAppend([]int32{int32(rng.Intn(16)), int32(rng.Intn(8)), int32(rng.Intn(6)), int32(rng.Intn(3))})
	}
	hiers := []*hierarchy.Hierarchy{
		hierarchy.MustInterval(16, 2, 4, 8),
		hierarchy.MustBalanced(8, 2),
		hierarchy.MustFlat(6),
	}
	return tbl, hiers
}

// randomEngineRecoding refines each attribute's cut a random number of steps
// down from the top.
func randomEngineRecoding(tbl *dataset.Table, hiers []*hierarchy.Hierarchy, rng *rand.Rand) *Recoding {
	rec, err := TopRecoding(tbl.Schema, hiers)
	if err != nil {
		panic(err)
	}
	for j := range rec.Cuts {
		for step := 0; step < rng.Intn(4); step++ {
			cand := rec.Cuts[j].Refinable()
			if len(cand) == 0 {
				break
			}
			refined, err := rec.Cuts[j].Refine(cand[rng.Intn(len(cand))])
			if err != nil {
				panic(err)
			}
			rec.Cuts[j] = refined
		}
	}
	return rec
}

// Property: the packed sharded grouping is identical — keys, row sets, and
// order — to the byte-keyed reference it replaced, for every worker count.
func TestGroupByWorkersMatchesBytes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, hiers := engineTable(200+rng.Intn(200), rng)
		rec := randomEngineRecoding(tbl, hiers, rng)
		want := groupByBytes(tbl, rec)
		for _, w := range []int{1, 2, 8} {
			got := GroupByWorkers(tbl, rec, w)
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The sharded merge path only engages beyond groupShardSize rows; run it
// once at that scale and require byte-identical results across worker counts.
func TestGroupByWorkersShardedIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(7))
	tbl, hiers := engineTable(3*groupShardSize+17, rng)
	rec := randomEngineRecoding(tbl, hiers, rng)
	want := GroupByWorkers(tbl, rec, 1)
	if !reflect.DeepEqual(want, groupByBytes(tbl, rec)) {
		t.Fatal("sequential packed grouping disagrees with byte-keyed reference")
	}
	for _, w := range []int{2, 4, 8} {
		if got := GroupByWorkers(tbl, rec, w); !reflect.DeepEqual(got, want) {
			t.Fatalf("GroupByWorkers(%d) differs from workers=1", w)
		}
	}
}

// A schema whose packed key widths exceed 64 bits must route to the byte
// fallback and still honor the canonical-form contract.
func TestGroupByWideSchemaFallback(t *testing.T) {
	const d = 11 // 11 attributes x 6 bits (MustFlat(32) has 33 nodes) = 66 > 64
	attrs := make([]*dataset.Attribute, d)
	hiers := make([]*hierarchy.Hierarchy, d)
	for j := 0; j < d; j++ {
		attrs[j] = dataset.MustIntAttribute("A"+string(rune('a'+j)), 0, 31)
		hiers[j] = hierarchy.MustFlat(32)
	}
	if p := newKeyPacker(hiers); p.fits {
		t.Fatal("keyPacker claims 11x6-bit keys fit in 64 bits")
	}
	s := dataset.MustSchema(attrs, dataset.MustAttribute("S", "s0", "s1"))
	tbl := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(3))
	row := make([]int32, d+1)
	for i := 0; i < 500; i++ {
		for j := 0; j < d; j++ {
			row[j] = int32(rng.Intn(32))
		}
		row[d] = int32(rng.Intn(2))
		tbl.MustAppend(row)
	}
	rec, err := IdentityRecoding(s, hiers)
	if err != nil {
		t.Fatal(err)
	}
	g := GroupByWorkers(tbl, rec, 8)
	seen := 0
	lastFirst := -1
	for gi, rows := range g.Rows {
		if len(rows) == 0 {
			t.Fatalf("group %d is empty", gi)
		}
		if rows[0] <= lastFirst {
			t.Fatalf("group %d out of first-appearance order", gi)
		}
		lastFirst = rows[0]
		for k := 1; k < len(rows); k++ {
			if rows[k] <= rows[k-1] {
				t.Fatalf("group %d rows not ascending", gi)
			}
		}
		seen += len(rows)
	}
	if seen != tbl.Len() {
		t.Fatalf("groups cover %d of %d rows", seen, tbl.Len())
	}
}

// Property: TDS's incremental refinement ends at exactly the grouping a
// from-scratch GroupBy of its final recoding produces — same keys, same row
// sets, same canonical order.
func TestTDSIncrementalMatchesRescan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, hiers := engineTable(150+rng.Intn(150), rng)
		res, err := TDS(tbl, hiers, TDSConfig{K: 2 + rng.Intn(4)})
		if err != nil {
			return false
		}
		return reflect.DeepEqual(res.Groups, GroupBy(tbl, res.Recoding))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every lattice node's rolled-up grouping equals a from-scratch
// GroupBy under the node's recoding, and MinSizeAt agrees with the
// materialized minimum — for random base level vectors.
func TestLatticeRollupMatchesGroupBy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, hiers := engineTable(120+rng.Intn(120), rng)
		base := make([]int, len(hiers))
		for j, h := range hiers {
			base[j] = rng.Intn(h.Height() + 1)
		}
		eval, err := NewLatticeEvaluator(tbl, hiers, base, 1+rng.Intn(4))
		if err != nil {
			return false
		}
		// Walk every level vector dominating the base.
		levels := append([]int(nil), base...)
		for {
			rec, err := eval.RecodingAt(levels)
			if err != nil {
				return false
			}
			want := GroupBy(tbl, rec)
			got, err := eval.GroupsAt(levels)
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(got, want) {
				return false
			}
			min, err := eval.MinSizeAt(levels)
			if err != nil || min != want.MinSize() {
				return false
			}
			j := 0
			for ; j < len(levels); j++ {
				levels[j]++
				if levels[j] <= hiers[j].Height() {
					break
				}
				levels[j] = base[j]
			}
			if j == len(levels) {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The evaluator rejects level vectors that do not dominate its base.
func TestLatticeEvaluatorLevelBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl, hiers := engineTable(64, rng)
	eval, err := NewLatticeEvaluator(tbl, hiers, []int{1, 1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eval.GroupsAt([]int{0, 1, 0}); err == nil {
		t.Fatal("GroupsAt below the base: want error")
	}
	if _, err := eval.MinSizeAt([]int{1, 1, 2}); err == nil {
		t.Fatal("MinSizeAt above the hierarchy height: want error")
	}
	if _, err := eval.GroupsAt([]int{1, 1}); err == nil {
		t.Fatal("GroupsAt with short vector: want error")
	}
}
