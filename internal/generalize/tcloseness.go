package generalize

import (
	"fmt"
	"math"

	"pgpub/internal/dataset"
)

// This file implements t-closeness (Li, Li, Venkatasubramanian, ICDE'07
// [14]), the strongest of the distributional generalization principles the
// paper surveys: every QI-group's sensitive-value distribution must be
// within distance t of the whole table's. Ordered domains use the Earth
// Mover's Distance with unit ground distance between adjacent codes
// (normalized by domain size - 1); unordered domains use total variation
// (equal ground distances).

// tablePDF returns the whole table's sensitive distribution.
func tablePDF(t *dataset.Table) []float64 {
	pdf := make([]float64, t.Schema.SensitiveDomain())
	for i := 0; i < t.Len(); i++ {
		pdf[t.Sensitive(i)]++
	}
	for x := range pdf {
		pdf[x] /= float64(t.Len())
	}
	return pdf
}

// groupPDF returns one group's sensitive distribution.
func groupPDF(t *dataset.Table, rows []int) []float64 {
	pdf := make([]float64, t.Schema.SensitiveDomain())
	for _, i := range rows {
		pdf[t.Sensitive(i)]++
	}
	for x := range pdf {
		pdf[x] /= float64(len(rows))
	}
	return pdf
}

// EMDOrdered is the ordered-domain Earth Mover's Distance between two
// distributions over the same n-code domain, normalized to [0,1]: the
// classic prefix-sum formula Σ|cum_i| / (n-1).
func EMDOrdered(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("generalize: EMD over mismatched domains (%d vs %d)", len(p), len(q))
	}
	n := len(p)
	if n < 2 {
		return 0, nil
	}
	cum, total := 0.0, 0.0
	for i := 0; i < n-1; i++ {
		cum += p[i] - q[i]
		total += math.Abs(cum)
	}
	return total / float64(n-1), nil
}

// TotalVariation is the unordered-domain distance: half the L1 distance.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("generalize: TV over mismatched domains (%d vs %d)", len(p), len(q))
	}
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2, nil
}

// MaxCloseness returns the largest distance between any QI-group's sensitive
// distribution and the table's — the smallest t for which the partition is
// t-close. The distance follows the sensitive attribute's kind.
func MaxCloseness(t *dataset.Table, g *Groups) (float64, error) {
	if g.Len() == 0 {
		return 0, fmt.Errorf("generalize: no groups")
	}
	global := tablePDF(t)
	dist := TotalVariation
	if t.Schema.Sensitive.Kind == dataset.Continuous {
		dist = EMDOrdered
	}
	worst := 0.0
	for _, rows := range g.Rows {
		d, err := dist(groupPDF(t, rows), global)
		if err != nil {
			return 0, err
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

// TCloseness is the Principle "every group's sensitive distribution is
// within T of the table's".
type TCloseness struct{ T float64 }

// Satisfied implements Principle.
func (p TCloseness) Satisfied(t *dataset.Table, g *Groups) bool {
	worst, err := MaxCloseness(t, g)
	return err == nil && worst <= p.T+1e-12
}

// String implements Principle.
func (p TCloseness) String() string { return fmt.Sprintf("%g-closeness", p.T) }
