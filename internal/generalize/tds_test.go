package generalize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pgpub/internal/dataset"
)

func TestTDSHospital(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)
	res, err := TDS(h, hiers, TDSConfig{K: 2})
	if err != nil {
		t.Fatalf("TDS: %v", err)
	}
	if !res.Groups.IsKAnonymous(2) {
		t.Fatal("TDS result not 2-anonymous")
	}
	if res.MinGroup < 2 {
		t.Fatalf("MinGroup = %d", res.MinGroup)
	}
	// TDS must have specialized at least once: the hospital table's top
	// grouping is a single group of 8, but gender alone splits it validly.
	if res.Rounds == 0 {
		t.Fatal("TDS performed no specialization")
	}
	// Every group key must generalize all its rows.
	for gi, rows := range res.Groups.Rows {
		for _, i := range rows {
			if !res.Recoding.GeneralizesVector(res.Groups.Keys[gi], h.QIVector(i)) {
				t.Fatalf("group %d key does not generalize row %d", gi, i)
			}
		}
	}
}

func TestTDSKEqualsOneReachesLeaves(t *testing.T) {
	// With k=1 and all-distinct rows, TDS can specialize all the way down
	// whenever doing so has non-negative score; at minimum the result is
	// 1-anonymous.
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)
	res, err := TDS(h, hiers, TDSConfig{K: 1})
	if err != nil {
		t.Fatalf("TDS: %v", err)
	}
	if !res.Groups.IsKAnonymous(1) {
		t.Fatal("not 1-anonymous")
	}
}

func TestTDSErrors(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)
	if _, err := TDS(h, hiers, TDSConfig{K: 0}); err == nil {
		t.Fatal("K=0: want error")
	}
	if _, err := TDS(h, hiers, TDSConfig{K: 9}); err == nil {
		t.Fatal("K > |D|: want error")
	}
	empty := dataset.NewTable(h.Schema)
	if _, err := TDS(empty, hiers, TDSConfig{K: 1}); err == nil {
		t.Fatal("empty table: want error")
	}
	if _, err := TDS(h, hiers, TDSConfig{K: 2, Class: []int{0}}); err == nil {
		t.Fatal("short class slice: want error")
	}
	if _, err := TDS(h, hiers, TDSConfig{K: 2, Class: make([]int, h.Len())}); err == nil {
		t.Fatal("Class without NumClasses: want error")
	}
	bad := make([]int, h.Len())
	bad[0] = 5
	if _, err := TDS(h, hiers, TDSConfig{K: 2, Class: bad, NumClasses: 2}); err == nil {
		t.Fatal("out-of-range class label: want error")
	}
}

func TestTDSWithExplicitClass(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)
	class := make([]int, h.Len())
	for i := range class {
		class[i] = i % 2
	}
	res, err := TDS(h, hiers, TDSConfig{K: 2, Class: class, NumClasses: 2})
	if err != nil {
		t.Fatalf("TDS: %v", err)
	}
	if !res.Groups.IsKAnonymous(2) {
		t.Fatal("not 2-anonymous")
	}
}

func TestTDSMaxRounds(t *testing.T) {
	h := dataset.Hospital()
	hiers := hospitalHiers(h.Schema)
	res, err := TDS(h, hiers, TDSConfig{K: 1, MaxRounds: 1})
	if err != nil {
		t.Fatalf("TDS: %v", err)
	}
	if res.Rounds > 1 {
		t.Fatalf("Rounds = %d, want <= 1", res.Rounds)
	}
}

// Property: TDS output is always k-anonymous for random tables and random k.
func TestTDSAlwaysKAnonymous(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, hiers := randomTable(40+rng.Intn(60), rng)
		k := int(kRaw%8) + 1
		res, err := TDS(tbl, hiers, TDSConfig{K: k})
		if err != nil {
			return false
		}
		if !res.Groups.IsKAnonymous(k) {
			return false
		}
		// Monotonicity of the paper's Property G1: every published tuple
		// generalizes a distinct microdata tuple — here every row belongs to
		// exactly one group.
		covered := 0
		for _, rows := range res.Groups.Rows {
			covered += len(rows)
		}
		return covered == tbl.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TDS should never do worse (in info gain terms) than staying at the top:
// the discernibility of its grouping is at most that of the single group.
func TestTDSImprovesDiscernibility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl, hiers := randomTable(100, rng)
	res, err := TDS(tbl, hiers, TDSConfig{K: 5})
	if err != nil {
		t.Fatalf("TDS: %v", err)
	}
	topLoss := float64(tbl.Len()) * float64(tbl.Len())
	if Discernibility(res.Groups) > topLoss {
		t.Fatal("TDS grouping worse than full suppression")
	}
}
