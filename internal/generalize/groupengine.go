package generalize

// This file is the grouping engine: the allocation-lean primitives every
// Phase-2 algorithm builds its QI-groups with.
//
//   - GroupBy / GroupByWorkers: one-shot grouping of a table under a
//     recoding, with generalized QI vectors packed into a single uint64 hash
//     key whenever the hierarchies' node-ID widths fit (they essentially
//     always do), and the row scan sharded through par for large tables.
//     Shards are fixed-size and merged in shard order, so the result is
//     byte-identical for any worker count — and identical to the
//     byte-keyed reference grouping it replaced.
//
//   - LatticeEvaluator: the roll-up engine behind Incognito and
//     SearchFullDomain. The table is scanned exactly once, at the lattice's
//     bottom; every other level vector's grouping is derived by lifting the
//     base groups' keys through the hierarchies and merging — O(#groups·d)
//     for a size check, O(n) to materialize rows — instead of re-scanning and
//     re-hashing all n rows per lattice node.
//
// The engine's contract, enforced by TestLatticeRollupMatchesGroupBy and
// TestTDSIncrementalMatchesRescan, is exact equivalence with a from-scratch
// GroupBy: same keys, same row sets, rows ascending within each group, and
// groups in first-appearance order of their first row.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/par"
)

// keyPacker packs a generalized QI vector (one hierarchy node ID per
// attribute) into a uint64. Attribute j gets bits.Len(NumNodes(j)-1) bits, so
// packing is injective whenever the widths sum to at most 64.
type keyPacker struct {
	shift []uint
	fits  bool
}

func newKeyPacker(hiers []*hierarchy.Hierarchy) keyPacker {
	p := keyPacker{shift: make([]uint, len(hiers))}
	total := uint(0)
	for j, h := range hiers {
		w := uint(bits.Len(uint(h.NumNodes() - 1)))
		if w == 0 {
			w = 1
		}
		p.shift[j] = total
		total += w
	}
	p.fits = total <= 64
	return p
}

func (p keyPacker) pack(gv []int32) uint64 {
	var k uint64
	for j, n := range gv {
		k |= uint64(uint32(n)) << p.shift[j]
	}
	return k
}

// groupShardSize is the fixed shard width of the sharded row scan. It is
// independent of the worker count, so shard-local groupings — and therefore
// the merged result — cannot depend on how many goroutines ran them.
const groupShardSize = 1 << 14

// GroupBy partitions the table under the recoding. Groups appear in
// first-appearance order of their first row, and row indices within a group
// ascend.
func GroupBy(t *dataset.Table, r *Recoding) *Groups {
	return GroupByWorkers(t, r, 1)
}

// GroupByWorkers is GroupBy with the row scan sharded over at most workers
// goroutines (0 means GOMAXPROCS). The result is identical for every worker
// count.
func GroupByWorkers(t *dataset.Table, r *Recoding, workers int) *Groups {
	n := t.Len()
	p := newKeyPacker(r.Hierarchies)
	if !p.fits {
		// Node IDs overflow a uint64 key; fall back to byte-string keys.
		// This needs >64 key bits, i.e. an extravagantly wide QI schema, so
		// the fallback stays sequential.
		return groupByBytes(t, r)
	}
	shards := (n + groupShardSize - 1) / groupShardSize
	if par.N(workers) <= 1 || shards <= 1 {
		part := groupPackedRange(t, r, p, 0, n)
		return &Groups{Keys: part.keys, Rows: part.rows}
	}
	parts := make([]*packedPart, shards)
	par.ForEach(workers, shards, func(s int) {
		lo := s * groupShardSize
		hi := lo + groupShardSize
		if hi > n {
			hi = n
		}
		parts[s] = groupPackedRange(t, r, p, lo, hi)
	})
	// Sequential merge in shard order. Shards cover contiguous ascending row
	// ranges, so first-appearance order and ascending rows are preserved.
	out := &Groups{}
	idx := make(map[uint64]int, 2*len(parts[0].packed))
	for _, part := range parts {
		for li, pk := range part.packed {
			gi, ok := idx[pk]
			if !ok {
				gi = len(out.Keys)
				idx[pk] = gi
				out.Keys = append(out.Keys, part.keys[li])
				out.Rows = append(out.Rows, part.rows[li])
				continue
			}
			out.Rows[gi] = append(out.Rows[gi], part.rows[li]...)
		}
	}
	return out
}

// packedPart is one shard's grouping: parallel slices of packed key, node
// vector, and row list.
type packedPart struct {
	packed []uint64
	keys   [][]int32
	rows   [][]int
}

// groupPackedRange groups rows [lo,hi) of the table. The scan is columnar:
// one cache-linear pass per QI column ORs that attribute's packed cut-node
// contribution into a per-row key buffer (a leaf→node table lookup per
// value, no recoding method calls, no row materialization), then a single
// pass over the finished keys builds the shard-local grouping. The packed
// keys — and therefore the grouping — are exactly what the former row-major
// scan produced.
func groupPackedRange(t *dataset.Table, r *Recoding, p keyPacker, lo, hi int) *packedPart {
	d := t.Schema.D()
	keys := make([]uint64, hi-lo)
	for j := 0; j < d; j++ {
		leafTo := r.Cuts[j].LeafMap()
		col := t.QICol(j)
		if u8 := col.U8(); u8 != nil {
			packColumn(u8[lo:hi], leafTo, p.shift[j], keys)
		} else {
			packColumn(col.I32()[lo:hi], leafTo, p.shift[j], keys)
		}
	}
	idx := make(map[uint64]int32, 64)
	part := &packedPart{}
	for k, pk := range keys {
		gi, ok := idx[pk]
		if !ok {
			gi = int32(len(part.packed))
			idx[pk] = gi
			part.packed = append(part.packed, pk)
			gv := make([]int32, d)
			for j := 0; j < d; j++ {
				gv[j] = r.Cuts[j].Map(t.QI(lo+k, j))
			}
			part.keys = append(part.keys, gv)
			part.rows = append(part.rows, nil)
		}
		part.rows[gi] = append(part.rows[gi], lo+k)
	}
	return part
}

// packColumn ORs one attribute's packed contribution into the key buffer:
// keys[i] |= leafTo[vals[i]] << shift. Generic over the column's element
// width so narrow (byte) columns stream at full cache-line density.
func packColumn[T uint8 | int32](vals []T, leafTo []int32, shift uint, keys []uint64) {
	for i, v := range vals {
		keys[i] |= uint64(uint32(leafTo[v])) << shift
	}
}

// groupByBytes is the byte-keyed fallback for schemas whose packed keys do
// not fit in 64 bits.
func groupByBytes(t *dataset.Table, r *Recoding) *Groups {
	d := t.Schema.D()
	key := make([]byte, 4*d)
	gv := make([]int32, d)
	idx := make(map[string]int, t.Len()/4+1)
	out := &Groups{}
	for i := 0; i < t.Len(); i++ {
		for j := 0; j < d; j++ {
			gv[j] = r.Cuts[j].Map(t.QI(i, j))
		}
		for j, n := range gv {
			binary.LittleEndian.PutUint32(key[4*j:], uint32(n))
		}
		gi, ok := idx[string(key)]
		if !ok {
			gi = len(out.Keys)
			idx[string(key)] = gi
			out.Keys = append(out.Keys, append([]int32(nil), gv...))
			out.Rows = append(out.Rows, nil)
		}
		out.Rows[gi] = append(out.Rows[gi], i)
	}
	return out
}

// LatticeEvaluator evaluates full-domain level vectors by roll-up: the table
// is grouped once at a base level vector, and any coarser vector's grouping
// is derived by lifting the base groups' keys through the hierarchies and
// merging groups whose lifted keys coincide (LeFevre et al.'s frequency-set
// roll-up, generalized to a whole level vector). All hierarchies must be
// uniform and every queried vector must dominate the base component-wise.
type LatticeEvaluator struct {
	t       *dataset.Table
	hiers   []*hierarchy.Hierarchy
	baseLev []int
	base    *Groups
	packer  keyPacker

	// rowGroup maps each table row to its base group, so materializing a
	// rolled-up grouping's row lists is a single ordered pass over the rows
	// (which also yields ascending rows and first-appearance group order for
	// free — the GroupBy contract).
	rowGroup []int32
	// keyIdx[g][j] is the index of base group g's j-th key node within the
	// base cut of attribute j (the row of the lift tables below).
	keyIdx [][]int32
	// lift[j][dl][i] is the ancestor dl levels above the i-th base cut node
	// of attribute j.
	lift [][][]int32
	// cuts memoizes hierarchy.LevelCut per attribute and level.
	cuts [][]*hierarchy.Cut
}

// NewLatticeEvaluator groups the table at baseLevels (the evaluator's one
// full scan, sharded over workers) and precomputes the lift tables.
func NewLatticeEvaluator(t *dataset.Table, hiers []*hierarchy.Hierarchy, baseLevels []int, workers int) (*LatticeEvaluator, error) {
	if len(hiers) != t.Schema.D() || len(baseLevels) != len(hiers) {
		return nil, fmt.Errorf("generalize: %d hierarchies, %d base levels for %d QI attributes",
			len(hiers), len(baseLevels), t.Schema.D())
	}
	for j, h := range hiers {
		if !h.Uniform() {
			return nil, fmt.Errorf("generalize: hierarchy %d is not uniform; lattice roll-up needs level cuts", j)
		}
		if baseLevels[j] < 0 || baseLevels[j] > h.Height() {
			return nil, fmt.Errorf("generalize: base level %d of attribute %d out of [0,%d]", baseLevels[j], j, h.Height())
		}
	}
	e := &LatticeEvaluator{
		t:       t,
		hiers:   hiers,
		baseLev: append([]int(nil), baseLevels...),
		packer:  newKeyPacker(hiers),
		cuts:    make([][]*hierarchy.Cut, len(hiers)),
	}
	for j, h := range hiers {
		e.cuts[j] = make([]*hierarchy.Cut, h.Height()+1)
	}
	rec, err := e.RecodingAt(baseLevels)
	if err != nil {
		return nil, err
	}
	e.base = GroupByWorkers(t, rec, workers)

	e.rowGroup = make([]int32, t.Len())
	for g, rows := range e.base.Rows {
		for _, i := range rows {
			e.rowGroup[i] = int32(g)
		}
	}

	// Lift tables: for each attribute, the base cut nodes and their ancestors
	// at every level above the base.
	e.lift = make([][][]int32, len(hiers))
	nodeIdx := make([][]int32, len(hiers))
	for j, h := range hiers {
		baseNodes := rec.Cuts[j].Nodes()
		nodeIdx[j] = make([]int32, h.NumNodes())
		for i, v := range baseNodes {
			nodeIdx[j][v] = int32(i)
		}
		steps := h.Height() - baseLevels[j]
		e.lift[j] = make([][]int32, steps+1)
		cur := append([]int32(nil), baseNodes...)
		for dl := 0; dl <= steps; dl++ {
			e.lift[j][dl] = append([]int32(nil), cur...)
			for i, v := range cur {
				if p := h.Parent(v); p >= 0 {
					cur[i] = p
				}
			}
		}
	}
	e.keyIdx = make([][]int32, len(e.base.Keys))
	for g, key := range e.base.Keys {
		ki := make([]int32, len(key))
		for j, v := range key {
			ki[j] = nodeIdx[j][v]
		}
		e.keyIdx[g] = ki
	}
	return e, nil
}

// Base returns the grouping at the evaluator's base level vector (the one
// produced by its single table scan). Read-only.
func (e *LatticeEvaluator) Base() *Groups { return e.base }

// checkLevels validates that levels dominates the base component-wise.
func (e *LatticeEvaluator) checkLevels(levels []int) error {
	if len(levels) != len(e.hiers) {
		return fmt.Errorf("generalize: level vector has %d components, want %d", len(levels), len(e.hiers))
	}
	for j, l := range levels {
		if l < e.baseLev[j] || l > e.hiers[j].Height() {
			return fmt.Errorf("generalize: level %d of attribute %d out of [%d,%d]",
				l, j, e.baseLev[j], e.hiers[j].Height())
		}
	}
	return nil
}

// MinSizeAt returns the smallest group cardinality of the grouping at the
// level vector, in O(#base-groups · d) without materializing row lists —
// the k-anonymity check Incognito's lattice walk performs per node.
func (e *LatticeEvaluator) MinSizeAt(levels []int) (int, error) {
	if err := e.checkLevels(levels); err != nil {
		return 0, err
	}
	sizes := make(map[uint64]int, len(e.base.Keys))
	for g, ki := range e.keyIdx {
		var pk uint64
		for j, l := range levels {
			pk |= uint64(uint32(e.lift[j][l-e.baseLev[j]][ki[j]])) << e.packer.shift[j]
		}
		sizes[pk] += len(e.base.Rows[g])
	}
	min := math.MaxInt
	for _, s := range sizes {
		if s < min {
			min = s
		}
	}
	if min == math.MaxInt {
		min = 0
	}
	return min, nil
}

// GroupsAt materializes the grouping at the level vector. The result is
// identical — keys, row sets, and order — to GroupBy under RecodingAt(levels).
func (e *LatticeEvaluator) GroupsAt(levels []int) (*Groups, error) {
	if err := e.checkLevels(levels); err != nil {
		return nil, err
	}
	d := len(e.hiers)
	out := &Groups{}
	idx := make(map[uint64]int32, len(e.base.Keys))
	gidOf := make([]int32, len(e.base.Keys))
	var counts []int
	gv := make([]int32, d)
	for g, ki := range e.keyIdx {
		var pk uint64
		for j, l := range levels {
			gv[j] = e.lift[j][l-e.baseLev[j]][ki[j]]
			pk |= uint64(uint32(gv[j])) << e.packer.shift[j]
		}
		gi, ok := idx[pk]
		if !ok {
			gi = int32(len(out.Keys))
			idx[pk] = gi
			out.Keys = append(out.Keys, append([]int32(nil), gv...))
			counts = append(counts, 0)
		}
		gidOf[g] = gi
		counts[gi] += len(e.base.Rows[g])
	}
	out.Rows = make([][]int, len(out.Keys))
	for gi, c := range counts {
		out.Rows[gi] = make([]int, 0, c)
	}
	for i := range e.rowGroup {
		gi := gidOf[e.rowGroup[i]]
		out.Rows[gi] = append(out.Rows[gi], i)
	}
	return out, nil
}

// RecodingAt returns the full-domain recoding of the level vector, memoizing
// the level cuts per attribute.
func (e *LatticeEvaluator) RecodingAt(levels []int) (*Recoding, error) {
	cuts := make([]*hierarchy.Cut, len(e.hiers))
	for j, h := range e.hiers {
		if levels[j] < 0 || levels[j] > h.Height() {
			return nil, fmt.Errorf("generalize: level %d of attribute %d out of [0,%d]", levels[j], j, h.Height())
		}
		if e.cuts[j][levels[j]] == nil {
			c, err := hierarchy.LevelCut(h, levels[j])
			if err != nil {
				return nil, err
			}
			e.cuts[j][levels[j]] = c
		}
		cuts[j] = e.cuts[j][levels[j]]
	}
	return NewRecoding(e.t.Schema, e.hiers, cuts)
}
