package generalize

import "pgpub/internal/dataset"

// Column-sweep primitives shared by the kd partitioner and Mondrian. Each
// dispatches once on the column's element width and runs a generic loop over
// the raw backing slice, so a scan over a row subset is a single gather from
// one contiguous array instead of a row-slice dereference per element.

// colMinMax returns the min and max code of the column over the given rows.
// rows must be non-empty.
func colMinMax(c *dataset.Column, rows []int) (lo, hi int32) {
	if u8 := c.U8(); u8 != nil {
		return minMaxGather(u8, rows)
	}
	return minMaxGather(c.I32(), rows)
}

func minMaxGather[T uint8 | int32](vals []T, rows []int) (lo, hi int32) {
	l, h := vals[rows[0]], vals[rows[0]]
	for _, i := range rows[1:] {
		v := vals[i]
		if v < l {
			l = v
		}
		if v > h {
			h = v
		}
	}
	return int32(l), int32(h)
}

// colGather copies the column's codes at the given rows into dst (len(dst)
// must be len(rows)).
func colGather(c *dataset.Column, rows []int, dst []int32) {
	if u8 := c.U8(); u8 != nil {
		for i, r := range rows {
			dst[i] = int32(u8[r])
		}
		return
	}
	i32 := c.I32()
	for i, r := range rows {
		dst[i] = i32[r]
	}
}

// colPartition splits rows on column value <= cut, preserving order.
func colPartition(c *dataset.Column, rows []int, cut int32) (left, right []int) {
	if u8 := c.U8(); u8 != nil {
		return partitionGather(u8, rows, cut)
	}
	return partitionGather(c.I32(), rows, cut)
}

func partitionGather[T uint8 | int32](vals []T, rows []int, cut int32) (left, right []int) {
	for _, i := range rows {
		if int32(vals[i]) <= cut {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return left, right
}
