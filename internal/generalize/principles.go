package generalize

import (
	"fmt"
	"math"
	"sort"

	"pgpub/internal/dataset"
)

// This file implements the generalization principles analysed in Section III:
// k-anonymity (Samarati/Sweeney [4,5]), distinct ℓ-diversity, entropy
// ℓ-diversity, and the (c,ℓ)-diversity of Machanavajjhala et al. [9]
// (Inequality 1 of the paper).

// IsKAnonymous reports whether every QI-group has at least k tuples
// (Property G2 of the publication framework).
func (g *Groups) IsKAnonymous(k int) bool {
	if g.Len() == 0 {
		return false
	}
	return g.MinSize() >= k
}

// sensitiveCounts returns the multiset of sensitive-value frequencies of one
// group, sorted descending (the paper's n_1 >= n_2 >= ... >= n_l').
func sensitiveCounts(t *dataset.Table, rows []int) []int {
	freq := make(map[int32]int)
	for _, i := range rows {
		freq[t.Sensitive(i)]++
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return counts
}

// DistinctDiversity returns the smallest number of distinct sensitive values
// in any group — the paper's u (Lemma 1). Zero for no groups.
func DistinctDiversity(t *dataset.Table, g *Groups) int {
	if g.Len() == 0 {
		return 0
	}
	u := math.MaxInt
	for _, rows := range g.Rows {
		if n := len(sensitiveCounts(t, rows)); n < u {
			u = n
		}
	}
	return u
}

// IsDistinctLDiverse reports whether every group has at least l distinct
// sensitive values (the "simplest version" of ℓ-diversity, Table Ic).
func IsDistinctLDiverse(t *dataset.Table, g *Groups, l int) bool {
	return g.Len() > 0 && DistinctDiversity(t, g) >= l
}

// GroupSatisfiesCL checks Inequality 1 for a single descending count vector:
// n_1 <= c * (n_l + n_{l+1} + ... + n_{l'}). A group with fewer than l
// distinct values fails.
func GroupSatisfiesCL(counts []int, c float64, l int) bool {
	if l < 1 || len(counts) < l {
		return false
	}
	tail := 0
	for _, n := range counts[l-1:] {
		tail += n
	}
	return float64(counts[0]) <= c*float64(tail)
}

// IsCLDiverse reports whether every QI-group satisfies (c,l)-diversity.
func IsCLDiverse(t *dataset.Table, g *Groups, c float64, l int) bool {
	if g.Len() == 0 {
		return false
	}
	for _, rows := range g.Rows {
		if !GroupSatisfiesCL(sensitiveCounts(t, rows), c, l) {
			return false
		}
	}
	return true
}

// IsEntropyLDiverse reports whether every group's sensitive-value entropy is
// at least log(l).
func IsEntropyLDiverse(t *dataset.Table, g *Groups, l int) bool {
	if g.Len() == 0 || l < 1 {
		return false
	}
	threshold := math.Log(float64(l))
	for _, rows := range g.Rows {
		counts := sensitiveCounts(t, rows)
		total := 0
		for _, n := range counts {
			total += n
		}
		h := 0.0
		for _, n := range counts {
			p := float64(n) / float64(total)
			h -= p * math.Log(p)
		}
		if h < threshold-1e-12 {
			return false
		}
	}
	return true
}

// Principle is a pluggable predicate over a grouped table, so recoding
// searches can target any of the principles above.
type Principle interface {
	// Satisfied reports whether the partition meets the principle.
	Satisfied(t *dataset.Table, g *Groups) bool
	// String names the principle for logs and errors.
	String() string
}

// KAnonymity is the Principle "every group has >= K tuples".
type KAnonymity struct{ K int }

// Satisfied implements Principle.
func (p KAnonymity) Satisfied(_ *dataset.Table, g *Groups) bool { return g.IsKAnonymous(p.K) }

// String implements Principle.
func (p KAnonymity) String() string { return fmt.Sprintf("%d-anonymity", p.K) }

// DistinctLDiversity is the Principle "every group has >= L distinct
// sensitive values" (implies nothing about group size).
type DistinctLDiversity struct{ L int }

// Satisfied implements Principle.
func (p DistinctLDiversity) Satisfied(t *dataset.Table, g *Groups) bool {
	return IsDistinctLDiverse(t, g, p.L)
}

// String implements Principle.
func (p DistinctLDiversity) String() string { return fmt.Sprintf("distinct %d-diversity", p.L) }

// CLDiversity is the Principle of Inequality 1.
type CLDiversity struct {
	C float64
	L int
}

// Satisfied implements Principle.
func (p CLDiversity) Satisfied(t *dataset.Table, g *Groups) bool {
	return IsCLDiverse(t, g, p.C, p.L)
}

// String implements Principle.
func (p CLDiversity) String() string { return fmt.Sprintf("(%g,%d)-diversity", p.C, p.L) }
