package query

import (
	"math"
	"testing"

	"pgpub/internal/pg"
	"pgpub/internal/sal"
)

func TestIncomeMidpoint(t *testing.T) {
	if IncomeMidpoint(0) != 1000 || IncomeMidpoint(49) != 99000 {
		t.Fatal("IncomeMidpoint endpoints wrong")
	}
}

func TestTrueSum(t *testing.T) {
	d, err := sal.Generate(2000, 31)
	if err != nil {
		t.Fatal(err)
	}
	q := fullQuery(d.Schema)
	sum, err := TrueSum(d, q, IncomeMidpoint)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < d.Len(); i++ {
		want += IncomeMidpoint(d.Sensitive(i))
	}
	if math.Abs(sum-want) > 1e-6 {
		t.Fatalf("TrueSum = %v, want %v", sum, want)
	}
	q.Sensitive = make([]bool, d.Schema.SensitiveDomain())
	if _, err := TrueSum(d, q, IncomeMidpoint); err == nil {
		t.Fatal("sensitive mask on SUM: want error")
	}
	bad := fullQuery(d.Schema)
	bad.QI[0] = Range{Lo: 9, Hi: 1}
	if _, err := TrueSum(d, bad, IncomeMidpoint); err == nil {
		t.Fatal("bad range: want error")
	}
}

func TestEstimateSumAndAvg(t *testing.T) {
	d, err := sal.Generate(30000, 32)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.3, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	// Full-region SUM: must land within a few percent of the truth.
	q := fullQuery(d.Schema)
	truth, err := TrueSum(d, q, IncomeMidpoint)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateSum(pub, q, IncomeMidpoint)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est-truth) / truth; rel > 0.05 {
		t.Fatalf("full-region SUM off by %v (est %v, truth %v)", rel, est, truth)
	}
	// AVG over a restricted region: mid-career people earn above the
	// global average in the SAL model; the estimator must see that.
	ageIdx := d.Schema.QIIndex("Age")
	q2 := fullQuery(d.Schema)
	q2.QI[ageIdx] = Range{Lo: 28, Hi: 43} // ages 45..60
	avgRegion, err := EstimateAvg(pub, q2, IncomeMidpoint)
	if err != nil {
		t.Fatal(err)
	}
	avgAll, err := EstimateAvg(pub, q, IncomeMidpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !(avgRegion > avgAll) {
		t.Fatalf("mid-career AVG %v not above global AVG %v", avgRegion, avgAll)
	}
	// And it should be near the true region average.
	trueSum, err := TrueSum(d, q2, IncomeMidpoint)
	if err != nil {
		t.Fatal(err)
	}
	trueCount, err := TrueCount(d, CountQuery{QI: q2.QI})
	if err != nil {
		t.Fatal(err)
	}
	trueAvg := trueSum / float64(trueCount)
	if rel := math.Abs(avgRegion-trueAvg) / trueAvg; rel > 0.1 {
		t.Fatalf("region AVG off by %v (est %v, truth %v)", rel, avgRegion, trueAvg)
	}
}

func TestEstimateSumErrors(t *testing.T) {
	d, err := sal.Generate(1000, 34)
	if err != nil {
		t.Fatal(err)
	}
	pub0, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 4, P: 0, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	q := fullQuery(d.Schema)
	if _, err := EstimateSum(pub0, q, IncomeMidpoint); err == nil {
		t.Fatal("p=0 SUM: want error")
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 4, P: 0.3, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	masked := fullQuery(d.Schema)
	masked.Sensitive = make([]bool, d.Schema.SensitiveDomain())
	if _, err := EstimateSum(pub, masked, IncomeMidpoint); err == nil {
		t.Fatal("sensitive mask on SUM: want error")
	}
	bad := fullQuery(d.Schema)
	bad.QI = bad.QI[:1]
	if _, err := EstimateSum(pub, bad, IncomeMidpoint); err == nil {
		t.Fatal("short ranges: want error")
	}
	if _, err := EstimateAvg(pub, bad, IncomeMidpoint); err == nil {
		t.Fatal("short ranges (AVG): want error")
	}
}
