package query

import (
	"fmt"
	"sort"

	"pgpub/internal/dataset"
	"pgpub/internal/generalize"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
)

// This file is the structure half of the query-serving engine: a precomputed
// Index over an immutable publication that answers aggregate queries in time
// proportional to the boxes *intersecting* the query region rather than to
// |D*|. The serving half (Count/Sum/Avg/Naive and the batched AnswerWorkload)
// lives in serve.go; the scan-based estimators in query.go/aggregate.go stay
// as the reference implementation the index is tested against.
//
// Layout. The |D*| rows are first collapsed into one entry per distinct QI
// box (pg.Published.Aggregates): box bounds, total weight ΣG, and a sparse
// G-weighted histogram of observed sensitive values. Rows sharing a box share
// a volume fraction for every query, so the per-row mask branch of the scan
// path becomes a histogram dot product. Over the entries sits a static
// bounding-box kd-tree in the style of generalize/kd.go's median recursion:
// each node stores the bounding box of its subtree plus two pre-aggregates —
// the subtree ΣG and the subtree's dense sensitive histogram. A traversal
// classifies a node against the query region: disjoint subtrees are skipped
// entirely, fully-contained subtrees are answered O(1)/O(|U^s|) from the
// pre-aggregates (every box inside has volume fraction 1), and only boxes
// straddling the region boundary pay the per-entry volumeFraction work.
//
// Representation. Construction works on an array-of-structs scratch
// (indexEntry/indexNode — convenient for the median sort), which freeze()
// converts into the struct-of-arrays form the serving paths run on: dim-major
// box bound arrays, a CSR layout for the sparse per-entry histograms, and
// flat per-node histogram/prefix blocks. The SoA form is both the cache
// layout (a traversal touches a handful of contiguous streams instead of a
// pointer-rich node heap) and the wire layout: IndexParts exposes the raw
// slices for snapshotting, and NewIndexFromParts rebuilds a serving index
// around them — including zero-copy around mmap'd file pages.

// indexLeafSize bounds the entries a leaf holds before it is split. Small
// leaves sharpen pruning; 8 keeps the tree shallow enough that node overhead
// stays negligible.
const indexLeafSize = 8

// valWeight is one nonzero bin of an entry's sparse sensitive histogram.
type valWeight struct {
	code int32
	w    float64
}

// indexEntry is one distinct QI box of the publication (build scratch; the
// frozen form lives in the Index's ent* arrays).
type indexEntry struct {
	box generalize.Box
	g   float64 // Σ G of the rows sharing the box
	// vals is the sparse G-weighted histogram of observed sensitive values.
	// Stratified sampling publishes one tuple per group, so it typically has
	// exactly one element.
	vals []valWeight
}

// indexNode is one kd-tree node over a contiguous run of entries (build
// scratch; the frozen form lives in the Index's node* arrays).
type indexNode struct {
	bound generalize.Box // bounding box of every entry below
	g     float64        // subtree Σ G
	hist  []float64      // subtree dense G-weighted sensitive histogram
	// pref is the prefix sum of hist (pref[y] = Σ hist[:y]), so a contiguous
	// sensitive band [lo,hi] — the shape Workload generates and pgquery's
	// -income flag builds — costs one subtraction at a contained node
	// instead of a histogram dot product. hist holds exact integers (sums of
	// G), so the prefix difference is bit-identical to the loop.
	pref []float64
	// left/right are child node indices; -1 marks a leaf, whose entries are
	// entries[lo:hi].
	left, right int32
	lo, hi      int32
}

// Index is a precomputed query-serving structure over one publication. It is
// immutable after construction and safe for concurrent use — AnswerWorkload
// fans queries across workers over a shared Index.
type Index struct {
	schema *dataset.Schema
	p      float64

	// Frozen entry SoA. Boxes are dim-major: entLo[j*nE+i] is entry i's lower
	// bound along QI dimension j, so a sweep over all entries along one
	// dimension (the grid builder, a leaf's volume-fraction pass) reads one
	// contiguous stream per restricted dimension.
	nE           int
	entLo, entHi []int32
	entG         []float64
	// CSR layout of the sparse per-entry histograms: entry i's bins are
	// valCode/valW[valOff[i]:valOff[i+1]].
	valOff, valCode []int32
	valW            []float64

	// Frozen node SoA, same dim-major bound layout. Node i's dense histogram
	// is nodeHist[i*dom:(i+1)*dom], its prefix block nodePref[i*(dom+1):].
	nodeLo, nodeHi      []int32
	nodeG               []float64
	nodeHist, nodePref  []float64
	nodeLeft, nodeRight []int32
	nodeELo, nodeEHi    []int32
	root                int32

	// Global aggregates serving full-domain queries exactly.
	totalG float64
	hist   []float64 // dense G-weighted sensitive histogram over all entries
	pref   []float64 // prefix sums of hist
	// The interval-grid layer (grid.go): per-dim-pair summed-area tables
	// serving queries that restrict at most two attributes in O(1). nil when
	// the schema's pair tables would exceed gridCellBudget. All tables share
	// the single gridSat backing array (the serialized form).
	grids   []pairGrid
	gridSat []float64
	pairIdx []int // pairIdx[a*d+b] → grids index, for a < b
	partner []int // partner[a] = smallest other dim, pairing 1-dim queries
	tinyB   float64

	// met holds the serving-path instruments, wired by NewIndexObserved.
	// Every query increments exactly one of the three answer-path counters,
	// so their sum equals the queries gathered and the split is invariant
	// under AnswerWorkload's worker count. All fields are nil — disabled —
	// for an index built with NewIndex.
	met struct {
		grid     *obs.Counter   // answered O(1) from an interval-grid SAT
		reanswer *obs.Counter   // grid declined (answer below tinyB), re-answered exactly through the tree
		kd       *obs.Counter   // answered by the kd traversal (wide shape or grid-less schema)
		latency  *obs.Histogram // per-Count wall clock, ns
	}
}

// NewIndex builds the serving index from a publication. Construction is
// O(#boxes · log #boxes) and performed once per release; the publication is
// not retained. Equivalent to NewIndexObserved(pub, nil).
//
// An empty publication (zero rows) yields a valid index over zero boxes:
// every region weight is 0, so Count and Sum answer 0 for every query,
// Naive answers 0, and Avg returns its "region estimated empty" error —
// the same answers the scan estimators give on an empty release.
func NewIndex(pub *pg.Published) (*Index, error) { return NewIndexObserved(pub, nil) }

// NewIndexObserved is NewIndex with instrumentation: construction is timed
// into the query.index.build histogram, the built structure's size lands in
// the query.index.* gauges, and the returned index counts every served query
// by answer path (query.answered.*) and records Count latency
// (query.count.latency). A nil registry disables all of it — the index then
// behaves exactly like NewIndex's.
func NewIndexObserved(pub *pg.Published, reg *obs.Registry) (*Index, error) {
	sp := reg.Span("query.index.build")
	ix, err := newIndex(pub)
	if err != nil {
		return nil, err
	}
	sp.End()
	ix.observe(reg)
	return ix, nil
}

// observe wires the serving-path instruments (shared by the build and
// from-parts constructors).
func (ix *Index) observe(reg *obs.Registry) {
	reg.Gauge("query.index.entries").Set(int64(ix.nE))
	reg.Gauge("query.index.nodes").Set(int64(len(ix.nodeG)))
	reg.Gauge("query.index.grids").Set(int64(len(ix.grids)))
	ix.met.grid = reg.Counter("query.answered.grid")
	ix.met.reanswer = reg.Counter("query.answered.exact_reanswer")
	ix.met.kd = reg.Counter("query.answered.kd")
	ix.met.latency = reg.Histogram("query.count.latency", "ns")
}

func newIndex(pub *pg.Published) (*Index, error) {
	if pub == nil || pub.Schema == nil {
		return nil, fmt.Errorf("query: index needs a publication with a schema")
	}
	aggs := pub.Aggregates()
	ix := &Index{
		schema: pub.Schema,
		p:      pub.P,
		root:   -1,
	}
	b := indexBuilder{
		schema:  pub.Schema,
		entries: make([]indexEntry, len(aggs)),
	}
	for i, a := range aggs {
		e := indexEntry{box: a.Box, g: float64(a.G)}
		for code, w := range a.Hist {
			if w != 0 {
				e.vals = append(e.vals, valWeight{code: int32(code), w: float64(w)})
			}
		}
		b.entries[i] = e
	}
	if len(b.entries) > 0 {
		b.nodes = make([]indexNode, 0, 2*(len(b.entries)/indexLeafSize+1))
		ix.root = b.build(0, len(b.entries))
	}
	ix.freeze(b.entries, b.nodes)
	ix.finish()
	ix.grids, ix.gridSat = ix.buildGrids()
	ix.wireGrids()
	return ix, nil
}

// freeze converts the AoS build scratch into the frozen SoA arrays.
func (ix *Index) freeze(entries []indexEntry, nodes []indexNode) {
	d := ix.schema.D()
	dom := ix.schema.SensitiveDomain()
	nE := len(entries)
	ix.nE = nE
	ix.entLo = make([]int32, d*nE)
	ix.entHi = make([]int32, d*nE)
	ix.entG = make([]float64, nE)
	ix.valOff = make([]int32, nE+1)
	nv := 0
	for i := range entries {
		nv += len(entries[i].vals)
	}
	ix.valCode = make([]int32, 0, nv)
	ix.valW = make([]float64, 0, nv)
	for i := range entries {
		e := &entries[i]
		for j := 0; j < d; j++ {
			ix.entLo[j*nE+i] = e.box.Lo[j]
			ix.entHi[j*nE+i] = e.box.Hi[j]
		}
		ix.entG[i] = e.g
		for _, vw := range e.vals {
			ix.valCode = append(ix.valCode, vw.code)
			ix.valW = append(ix.valW, vw.w)
		}
		ix.valOff[i+1] = int32(len(ix.valCode))
	}
	nN := len(nodes)
	ix.nodeLo = make([]int32, d*nN)
	ix.nodeHi = make([]int32, d*nN)
	ix.nodeG = make([]float64, nN)
	ix.nodeHist = make([]float64, nN*dom)
	ix.nodePref = make([]float64, nN*(dom+1))
	ix.nodeLeft = make([]int32, nN)
	ix.nodeRight = make([]int32, nN)
	ix.nodeELo = make([]int32, nN)
	ix.nodeEHi = make([]int32, nN)
	for i := range nodes {
		n := &nodes[i]
		for j := 0; j < d; j++ {
			ix.nodeLo[j*nN+i] = n.bound.Lo[j]
			ix.nodeHi[j*nN+i] = n.bound.Hi[j]
		}
		ix.nodeG[i] = n.g
		copy(ix.nodeHist[i*dom:(i+1)*dom], n.hist)
		copy(ix.nodePref[i*(dom+1):(i+1)*(dom+1)], n.pref)
		ix.nodeLeft[i] = n.left
		ix.nodeRight[i] = n.right
		ix.nodeELo[i] = n.lo
		ix.nodeEHi[i] = n.hi
	}
}

// finish computes the derived global aggregates from the frozen entries: the
// exact full-domain weight and histogram, its prefix sums, and the grid
// re-answer threshold. Iteration order matches the pre-freeze code (entries
// ascending, bins ascending), so the sums are bit-identical.
func (ix *Index) finish() {
	ix.hist = make([]float64, ix.schema.SensitiveDomain())
	for i := 0; i < ix.nE; i++ {
		ix.totalG += ix.entG[i]
		for o := ix.valOff[i]; o < ix.valOff[i+1]; o++ {
			ix.hist[ix.valCode[o]] += ix.valW[o]
		}
	}
	ix.pref = make([]float64, len(ix.hist)+1)
	for y, h := range ix.hist {
		ix.pref[y+1] = ix.pref[y] + h
	}
	// A grid answer below tinyB cannot be told apart from the cancellation
	// noise of an empty region, so gather re-answers it through the tree.
	ix.tinyB = 1e-9 * (1 + ix.totalG)
}

// wireGrids builds the pair-lookup tables over the grid layer.
func (ix *Index) wireGrids() {
	if ix.grids == nil {
		return
	}
	d := ix.schema.D()
	ix.pairIdx = make([]int, d*d)
	for gi := range ix.grids {
		g := &ix.grids[gi]
		ix.pairIdx[g.a*d+g.b] = gi
	}
	ix.partner = make([]int, d)
	for a := 0; a < d; a++ {
		best := -1
		for b := 0; b < d; b++ {
			if b == a {
				continue
			}
			if best < 0 || ix.schema.QI[b].Size() < ix.schema.QI[best].Size() {
				best = b
			}
		}
		ix.partner[a] = best
	}
}

// Groups returns the number of distinct QI boxes the index serves from.
func (ix *Index) Groups() int { return ix.nE }

// Schema returns the publication schema the index serves. Consumers that
// hold only the index — the network serving layer parses attribute names and
// validates sensitive codes against it — need no back-reference to the
// publication, which the index deliberately does not retain.
func (ix *Index) Schema() *dataset.Schema { return ix.schema }

// P returns the release's retention probability, announced publication
// metadata the estimators invert perturbation with.
func (ix *Index) P() float64 { return ix.p }

// indexBuilder is the AoS construction scratch freeze() consumes.
type indexBuilder struct {
	schema  *dataset.Schema
	entries []indexEntry
	nodes   []indexNode
}

// build constructs the subtree over entries[lo:hi) and returns its node
// index. The recursion is deterministic: the split dimension is the widest
// normalized bound extent (lowest dimension on ties) and entries are ordered
// by a total comparator, so the tree shape depends only on the entry set.
func (b *indexBuilder) build(lo, hi int) int32 {
	n := indexNode{left: -1, right: -1, lo: int32(lo), hi: int32(hi)}
	n.bound = cloneBox(b.entries[lo].box)
	n.hist = make([]float64, b.schema.SensitiveDomain())
	for i := lo; i < hi; i++ {
		e := &b.entries[i]
		for j := range n.bound.Lo {
			if e.box.Lo[j] < n.bound.Lo[j] {
				n.bound.Lo[j] = e.box.Lo[j]
			}
			if e.box.Hi[j] > n.bound.Hi[j] {
				n.bound.Hi[j] = e.box.Hi[j]
			}
		}
		n.g += e.g
		for _, vw := range e.vals {
			n.hist[vw.code] += vw.w
		}
	}
	n.pref = make([]float64, len(n.hist)+1)
	for y, h := range n.hist {
		n.pref[y+1] = n.pref[y] + h
	}
	if hi-lo > indexLeafSize {
		dim := widestDim(b.schema, n.bound)
		ents := b.entries[lo:hi]
		sort.Slice(ents, func(a, c int) bool { return lessByCenter(&ents[a].box, &ents[c].box, dim) })
		mid := (lo + hi) / 2
		// Children are built before the parent is appended, so parent indices
		// are always larger than their children's — the slice order itself is
		// a valid bottom-up evaluation order.
		n.left = b.build(lo, mid)
		n.right = b.build(mid, hi)
		n.lo, n.hi = 0, 0
	}
	b.nodes = append(b.nodes, n)
	return int32(len(b.nodes) - 1)
}

// widestDim picks the split dimension: the largest bound extent normalized by
// the attribute's domain size, lowest dimension on ties.
func widestDim(s *dataset.Schema, bound generalize.Box) int {
	dim, best := 0, -1.0
	for j := range bound.Lo {
		size := s.QI[j].Size()
		if size <= 1 {
			continue
		}
		w := float64(bound.Hi[j]-bound.Lo[j]) / float64(size-1)
		if w > best {
			dim, best = j, w
		}
	}
	return dim
}

// lessByCenter is the total order the build sorts entries with: box center
// along the split dimension, then lexicographic Lo and Hi across all
// dimensions. Boxes of one publication are pairwise disjoint (Property G3),
// so the comparator never declares two distinct entries equal.
func lessByCenter(a, b *generalize.Box, dim int) bool {
	ca, cb := a.Lo[dim]+a.Hi[dim], b.Lo[dim]+b.Hi[dim]
	if ca != cb {
		return ca < cb
	}
	for j := range a.Lo {
		if a.Lo[j] != b.Lo[j] {
			return a.Lo[j] < b.Lo[j]
		}
		if a.Hi[j] != b.Hi[j] {
			return a.Hi[j] < b.Hi[j]
		}
	}
	return false
}

func cloneBox(b generalize.Box) generalize.Box {
	return generalize.Box{
		Lo: append([]int32(nil), b.Lo...),
		Hi: append([]int32(nil), b.Hi...),
	}
}

// Relation of a node bound to a query region.
const (
	relDisjoint = iota
	relPartial
	relContained
)

// activeRange is one query range that actually restricts its attribute. A
// workload query typically restricts 2 of 8 attributes; dims the query
// leaves at the full domain can never exclude a box or shrink its volume
// fraction, so the traversal skips them entirely. Dropping full-domain
// factors is exact: their volume-fraction contribution is the literal 1.0.
type activeRange struct {
	dim    int
	lo, hi int32
}

// activeRanges extracts the restricting dims of a query, in dim order (so
// the volume-fraction product multiplies in the same order as the scan
// path's, for bit-identical partial products).
func (ix *Index) activeRanges(q []Range) []activeRange {
	act := make([]activeRange, 0, len(q))
	for j, r := range q {
		if r.Lo > 0 || int(r.Hi) < ix.schema.QI[j].Size()-1 {
			act = append(act, activeRange{dim: j, lo: r.Lo, hi: r.Hi})
		}
	}
	return act
}

// relateNode classifies node ni's bound against the restricting ranges.
func (ix *Index) relateNode(ni int32, act []activeRange) int {
	nN := int32(len(ix.nodeG))
	rel := relContained
	for _, r := range act {
		o := int32(r.dim)*nN + ni
		lo, hi := ix.nodeLo[o], ix.nodeHi[o]
		if hi < r.lo || r.hi < lo {
			return relDisjoint
		}
		if r.lo > lo || hi > r.hi {
			rel = relPartial
		}
	}
	return rel
}

// vfEntry is volumeFraction of entry i over the restricting dims only.
// Factors multiply in act (= dim) order, matching the scan path's partial
// products bit for bit.
func (ix *Index) vfEntry(i int, act []activeRange) float64 {
	f := 1.0
	for _, r := range act {
		o := r.dim*ix.nE + i
		a, b := ix.entLo[o], ix.entHi[o]
		lo, hi := a, b
		if r.lo > lo {
			lo = r.lo
		}
		if r.hi < hi {
			hi = r.hi
		}
		if lo > hi {
			return 0
		}
		f *= float64(hi-lo+1) / float64(b-a+1)
	}
	return f
}

// valuer is the per-sensitive-value weighting a traversal applies: nothing
// (count the region weight only), a contiguous 0/1 band (answered from the
// prefix sums), or a general dense weight vector (mask with holes, or
// SUM's value map).
type valuer struct {
	wv     []float64 // dense weights; nil when no value-weighted sum is needed
	band   bool      // wv is a 0/1 indicator of the contiguous band [lo, hi]
	lo, hi int32
}

// walk accumulates the two sums every estimator is built from over the
// subtree at ni:
//
//	b  += Σ G · volFrac(box, q)                  (the region weight)
//	a  += Σ G · volFrac(box, q) · wv[value]      (the value-weighted part)
//
// Disjoint subtrees contribute nothing; fully-contained subtrees contribute
// their pre-aggregates (volFrac is 1 for every box inside); only boxes
// straddling the region boundary are resolved per entry. Traversal order is
// fixed by the tree, so a query's answer is bit-identical no matter which
// goroutine computes it.
func (ix *Index) walk(ni int32, act []activeRange, v *valuer, a, b *float64) {
	switch ix.relateNode(ni, act) {
	case relDisjoint:
		return
	case relContained:
		*b += ix.nodeG[ni]
		dom := ix.schema.SensitiveDomain()
		switch {
		case v.wv == nil:
		case v.band:
			pref := ix.nodePref[int(ni)*(dom+1) : (int(ni)+1)*(dom+1)]
			*a += pref[v.hi+1] - pref[v.lo]
		default:
			hist := ix.nodeHist[int(ni)*dom : (int(ni)+1)*dom]
			for code, h := range hist {
				if h != 0 {
					*a += h * v.wv[code]
				}
			}
		}
		return
	}
	if l := ix.nodeLeft[ni]; l >= 0 {
		ix.walk(l, act, v, a, b)
		ix.walk(ix.nodeRight[ni], act, v, a, b)
		return
	}
	for i := int(ix.nodeELo[ni]); i < int(ix.nodeEHi[ni]); i++ {
		vf := ix.vfEntry(i, act)
		if vf == 0 {
			continue
		}
		*b += ix.entG[i] * vf
		if v.wv != nil {
			for o := ix.valOff[i]; o < ix.valOff[i+1]; o++ {
				*a += ix.valW[o] * vf * v.wv[ix.valCode[o]]
			}
		}
	}
}

// gather accumulates the two estimator sums for one query: first through the
// O(1) interval-grid layer when the query restricts at most two attributes,
// falling back to the kd traversal for wider shapes, grid-less schemas, and
// near-empty regions (where the grid's cancellation noise cannot certify an
// exact zero). Empty indexes answer (0, 0).
func (ix *Index) gather(q []Range, v *valuer) (a, b float64) {
	act := ix.activeRanges(q)
	if len(act) <= 2 {
		if a, b, ok := ix.gatherGrid(act, v); ok {
			ix.met.grid.Inc()
			return a, b
		}
		if ix.grids != nil && len(act) > 0 {
			// The grid could serve this shape but declined: the answer fell
			// below tinyB, where SAT cancellation noise cannot certify an
			// exact zero, so the tree re-answers it exactly.
			ix.met.reanswer.Inc()
		} else {
			ix.met.kd.Inc()
		}
	} else {
		ix.met.kd.Inc()
	}
	if ix.root >= 0 {
		ix.walk(ix.root, act, v, &a, &b)
	}
	return a, b
}
