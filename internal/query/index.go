package query

import (
	"fmt"
	"sort"

	"pgpub/internal/dataset"
	"pgpub/internal/generalize"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
)

// This file is the structure half of the query-serving engine: a precomputed
// Index over an immutable publication that answers aggregate queries in time
// proportional to the boxes *intersecting* the query region rather than to
// |D*|. The serving half (Count/Sum/Avg/Naive and the batched AnswerWorkload)
// lives in serve.go; the scan-based estimators in query.go/aggregate.go stay
// as the reference implementation the index is tested against.
//
// Layout. The |D*| rows are first collapsed into one entry per distinct QI
// box (pg.Published.Aggregates): box bounds, total weight ΣG, and a sparse
// G-weighted histogram of observed sensitive values. Rows sharing a box share
// a volume fraction for every query, so the per-row mask branch of the scan
// path becomes a histogram dot product. Over the entries sits a static
// bounding-box kd-tree in the style of generalize/kd.go's median recursion:
// each node stores the bounding box of its subtree plus two pre-aggregates —
// the subtree ΣG and the subtree's dense sensitive histogram. A traversal
// classifies a node against the query region: disjoint subtrees are skipped
// entirely, fully-contained subtrees are answered O(1)/O(|U^s|) from the
// pre-aggregates (every box inside has volume fraction 1), and only boxes
// straddling the region boundary pay the per-entry volumeFraction work.

// indexLeafSize bounds the entries a leaf holds before it is split. Small
// leaves sharpen pruning; 8 keeps the tree shallow enough that node overhead
// stays negligible.
const indexLeafSize = 8

// valWeight is one nonzero bin of an entry's sparse sensitive histogram.
type valWeight struct {
	code int32
	w    float64
}

// indexEntry is one distinct QI box of the publication.
type indexEntry struct {
	box generalize.Box
	g   float64 // Σ G of the rows sharing the box
	// vals is the sparse G-weighted histogram of observed sensitive values.
	// Stratified sampling publishes one tuple per group, so it typically has
	// exactly one element.
	vals []valWeight
}

// indexNode is one kd-tree node over a contiguous run of entries.
type indexNode struct {
	bound generalize.Box // bounding box of every entry below
	g     float64        // subtree Σ G
	hist  []float64      // subtree dense G-weighted sensitive histogram
	// pref is the prefix sum of hist (pref[y] = Σ hist[:y]), so a contiguous
	// sensitive band [lo,hi] — the shape Workload generates and pgquery's
	// -income flag builds — costs one subtraction at a contained node
	// instead of a histogram dot product. hist holds exact integers (sums of
	// G), so the prefix difference is bit-identical to the loop.
	pref []float64
	// left/right are child node indices; -1 marks a leaf, whose entries are
	// entries[lo:hi].
	left, right int32
	lo, hi      int32
}

// Index is a precomputed query-serving structure over one publication. It is
// immutable after construction and safe for concurrent use — AnswerWorkload
// fans queries across workers over a shared Index.
type Index struct {
	schema  *dataset.Schema
	p       float64
	entries []indexEntry
	nodes   []indexNode
	root    int32

	// Global aggregates serving full-domain queries exactly.
	totalG float64
	hist   []float64 // dense G-weighted sensitive histogram over all entries
	pref   []float64 // prefix sums of hist
	// The interval-grid layer (grid.go): per-dim-pair summed-area tables
	// serving queries that restrict at most two attributes in O(1). nil when
	// the schema's pair tables would exceed gridCellBudget.
	grids   []pairGrid
	pairIdx []int // pairIdx[a*d+b] → grids index, for a < b
	partner []int // partner[a] = smallest other dim, pairing 1-dim queries
	tinyB   float64

	// met holds the serving-path instruments, wired by NewIndexObserved.
	// Every query increments exactly one of the three answer-path counters,
	// so their sum equals the queries gathered and the split is invariant
	// under AnswerWorkload's worker count. All fields are nil — disabled —
	// for an index built with NewIndex.
	met struct {
		grid     *obs.Counter   // answered O(1) from an interval-grid SAT
		reanswer *obs.Counter   // grid declined (answer below tinyB), re-answered exactly through the tree
		kd       *obs.Counter   // answered by the kd traversal (wide shape or grid-less schema)
		latency  *obs.Histogram // per-Count wall clock, ns
	}
}

// NewIndex builds the serving index from a publication. Construction is
// O(#boxes · log #boxes) and performed once per release; the publication is
// not retained. Equivalent to NewIndexObserved(pub, nil).
//
// An empty publication (zero rows) yields a valid index over zero boxes:
// every region weight is 0, so Count and Sum answer 0 for every query,
// Naive answers 0, and Avg returns its "region estimated empty" error —
// the same answers the scan estimators give on an empty release.
func NewIndex(pub *pg.Published) (*Index, error) { return NewIndexObserved(pub, nil) }

// NewIndexObserved is NewIndex with instrumentation: construction is timed
// into the query.index.build histogram, the built structure's size lands in
// the query.index.* gauges, and the returned index counts every served query
// by answer path (query.answered.*) and records Count latency
// (query.count.latency). A nil registry disables all of it — the index then
// behaves exactly like NewIndex's.
func NewIndexObserved(pub *pg.Published, reg *obs.Registry) (*Index, error) {
	sp := reg.Span("query.index.build")
	ix, err := newIndex(pub)
	if err != nil {
		return nil, err
	}
	sp.End()
	reg.Gauge("query.index.entries").Set(int64(len(ix.entries)))
	reg.Gauge("query.index.nodes").Set(int64(len(ix.nodes)))
	reg.Gauge("query.index.grids").Set(int64(len(ix.grids)))
	ix.met.grid = reg.Counter("query.answered.grid")
	ix.met.reanswer = reg.Counter("query.answered.exact_reanswer")
	ix.met.kd = reg.Counter("query.answered.kd")
	ix.met.latency = reg.Histogram("query.count.latency", "ns")
	return ix, nil
}

func newIndex(pub *pg.Published) (*Index, error) {
	if pub == nil || pub.Schema == nil {
		return nil, fmt.Errorf("query: index needs a publication with a schema")
	}
	aggs := pub.Aggregates()
	ix := &Index{
		schema:  pub.Schema,
		p:       pub.P,
		entries: make([]indexEntry, len(aggs)),
		root:    -1,
	}
	for i, a := range aggs {
		e := indexEntry{box: a.Box, g: float64(a.G)}
		for code, w := range a.Hist {
			if w != 0 {
				e.vals = append(e.vals, valWeight{code: int32(code), w: float64(w)})
			}
		}
		ix.entries[i] = e
	}
	if len(ix.entries) > 0 {
		ix.nodes = make([]indexNode, 0, 2*(len(ix.entries)/indexLeafSize+1))
		ix.root = ix.build(0, len(ix.entries))
	}
	ix.hist = make([]float64, ix.schema.SensitiveDomain())
	for i := range ix.entries {
		e := &ix.entries[i]
		ix.totalG += e.g
		for _, vw := range e.vals {
			ix.hist[vw.code] += vw.w
		}
	}
	ix.pref = make([]float64, len(ix.hist)+1)
	for y, h := range ix.hist {
		ix.pref[y+1] = ix.pref[y] + h
	}
	// A grid answer below tinyB cannot be told apart from the cancellation
	// noise of an empty region, so gather re-answers it through the tree.
	ix.tinyB = 1e-9 * (1 + ix.totalG)
	ix.grids = ix.buildGrids()
	if ix.grids != nil {
		d := ix.schema.D()
		ix.pairIdx = make([]int, d*d)
		for gi := range ix.grids {
			g := &ix.grids[gi]
			ix.pairIdx[g.a*d+g.b] = gi
		}
		ix.partner = make([]int, d)
		for a := 0; a < d; a++ {
			best := -1
			for b := 0; b < d; b++ {
				if b == a {
					continue
				}
				if best < 0 || ix.schema.QI[b].Size() < ix.schema.QI[best].Size() {
					best = b
				}
			}
			ix.partner[a] = best
		}
	}
	return ix, nil
}

// Groups returns the number of distinct QI boxes the index serves from.
func (ix *Index) Groups() int { return len(ix.entries) }

// Schema returns the publication schema the index serves. Consumers that
// hold only the index — the network serving layer parses attribute names and
// validates sensitive codes against it — need no back-reference to the
// publication, which the index deliberately does not retain.
func (ix *Index) Schema() *dataset.Schema { return ix.schema }

// P returns the release's retention probability, announced publication
// metadata the estimators invert perturbation with.
func (ix *Index) P() float64 { return ix.p }

// build constructs the subtree over entries[lo:hi) and returns its node
// index. The recursion is deterministic: the split dimension is the widest
// normalized bound extent (lowest dimension on ties) and entries are ordered
// by a total comparator, so the tree shape depends only on the entry set.
func (ix *Index) build(lo, hi int) int32 {
	n := indexNode{left: -1, right: -1, lo: int32(lo), hi: int32(hi)}
	n.bound = cloneBox(ix.entries[lo].box)
	n.hist = make([]float64, ix.schema.SensitiveDomain())
	for i := lo; i < hi; i++ {
		e := &ix.entries[i]
		for j := range n.bound.Lo {
			if e.box.Lo[j] < n.bound.Lo[j] {
				n.bound.Lo[j] = e.box.Lo[j]
			}
			if e.box.Hi[j] > n.bound.Hi[j] {
				n.bound.Hi[j] = e.box.Hi[j]
			}
		}
		n.g += e.g
		for _, vw := range e.vals {
			n.hist[vw.code] += vw.w
		}
	}
	n.pref = make([]float64, len(n.hist)+1)
	for y, h := range n.hist {
		n.pref[y+1] = n.pref[y] + h
	}
	if hi-lo > indexLeafSize {
		dim := widestDim(ix.schema, n.bound)
		ents := ix.entries[lo:hi]
		sort.Slice(ents, func(a, b int) bool { return lessByCenter(&ents[a].box, &ents[b].box, dim) })
		mid := (lo + hi) / 2
		// Children are built before the parent is appended, so parent indices
		// are always larger than their children's — the slice order itself is
		// a valid bottom-up evaluation order.
		n.left = ix.build(lo, mid)
		n.right = ix.build(mid, hi)
		n.lo, n.hi = 0, 0
	}
	ix.nodes = append(ix.nodes, n)
	return int32(len(ix.nodes) - 1)
}

// widestDim picks the split dimension: the largest bound extent normalized by
// the attribute's domain size, lowest dimension on ties.
func widestDim(s *dataset.Schema, bound generalize.Box) int {
	dim, best := 0, -1.0
	for j := range bound.Lo {
		size := s.QI[j].Size()
		if size <= 1 {
			continue
		}
		w := float64(bound.Hi[j]-bound.Lo[j]) / float64(size-1)
		if w > best {
			dim, best = j, w
		}
	}
	return dim
}

// lessByCenter is the total order the build sorts entries with: box center
// along the split dimension, then lexicographic Lo and Hi across all
// dimensions. Boxes of one publication are pairwise disjoint (Property G3),
// so the comparator never declares two distinct entries equal.
func lessByCenter(a, b *generalize.Box, dim int) bool {
	ca, cb := a.Lo[dim]+a.Hi[dim], b.Lo[dim]+b.Hi[dim]
	if ca != cb {
		return ca < cb
	}
	for j := range a.Lo {
		if a.Lo[j] != b.Lo[j] {
			return a.Lo[j] < b.Lo[j]
		}
		if a.Hi[j] != b.Hi[j] {
			return a.Hi[j] < b.Hi[j]
		}
	}
	return false
}

func cloneBox(b generalize.Box) generalize.Box {
	return generalize.Box{
		Lo: append([]int32(nil), b.Lo...),
		Hi: append([]int32(nil), b.Hi...),
	}
}

// Relation of a node bound to a query region.
const (
	relDisjoint = iota
	relPartial
	relContained
)

// activeRange is one query range that actually restricts its attribute. A
// workload query typically restricts 2 of 8 attributes; dims the query
// leaves at the full domain can never exclude a box or shrink its volume
// fraction, so the traversal skips them entirely. Dropping full-domain
// factors is exact: their volume-fraction contribution is the literal 1.0.
type activeRange struct {
	dim    int
	lo, hi int32
}

// activeRanges extracts the restricting dims of a query, in dim order (so
// the volume-fraction product multiplies in the same order as the scan
// path's, for bit-identical partial products).
func (ix *Index) activeRanges(q []Range) []activeRange {
	act := make([]activeRange, 0, len(q))
	for j, r := range q {
		if r.Lo > 0 || int(r.Hi) < ix.schema.QI[j].Size()-1 {
			act = append(act, activeRange{dim: j, lo: r.Lo, hi: r.Hi})
		}
	}
	return act
}

// relate classifies a node bound against the restricting ranges.
func relate(bound generalize.Box, act []activeRange) int {
	rel := relContained
	for _, r := range act {
		lo, hi := bound.Lo[r.dim], bound.Hi[r.dim]
		if hi < r.lo || r.hi < lo {
			return relDisjoint
		}
		if r.lo > lo || hi > r.hi {
			rel = relPartial
		}
	}
	return rel
}

// vfActive is volumeFraction over the restricting dims only.
func vfActive(box *generalize.Box, act []activeRange) float64 {
	f := 1.0
	for _, r := range act {
		a, b := box.Lo[r.dim], box.Hi[r.dim]
		if r.lo > a {
			a = r.lo
		}
		if r.hi < b {
			b = r.hi
		}
		if a > b {
			return 0
		}
		f *= float64(b-a+1) / float64(box.Hi[r.dim]-box.Lo[r.dim]+1)
	}
	return f
}

// valuer is the per-sensitive-value weighting a traversal applies: nothing
// (count the region weight only), a contiguous 0/1 band (answered from the
// prefix sums), or a general dense weight vector (mask with holes, or
// SUM's value map).
type valuer struct {
	wv     []float64 // dense weights; nil when no value-weighted sum is needed
	band   bool      // wv is a 0/1 indicator of the contiguous band [lo, hi]
	lo, hi int32
}

// walk accumulates the two sums every estimator is built from over the
// subtree at ni:
//
//	b  += Σ G · volFrac(box, q)                  (the region weight)
//	a  += Σ G · volFrac(box, q) · wv[value]      (the value-weighted part)
//
// Disjoint subtrees contribute nothing; fully-contained subtrees contribute
// their pre-aggregates (volFrac is 1 for every box inside); only boxes
// straddling the region boundary are resolved per entry. Traversal order is
// fixed by the tree, so a query's answer is bit-identical no matter which
// goroutine computes it.
func (ix *Index) walk(ni int32, act []activeRange, v *valuer, a, b *float64) {
	n := &ix.nodes[ni]
	switch relate(n.bound, act) {
	case relDisjoint:
		return
	case relContained:
		*b += n.g
		switch {
		case v.wv == nil:
		case v.band:
			*a += n.pref[v.hi+1] - n.pref[v.lo]
		default:
			for code, h := range n.hist {
				if h != 0 {
					*a += h * v.wv[code]
				}
			}
		}
		return
	}
	if n.left >= 0 {
		ix.walk(n.left, act, v, a, b)
		ix.walk(n.right, act, v, a, b)
		return
	}
	for i := n.lo; i < n.hi; i++ {
		e := &ix.entries[i]
		vf := vfActive(&e.box, act)
		if vf == 0 {
			continue
		}
		*b += e.g * vf
		if v.wv != nil {
			for _, vw := range e.vals {
				*a += vw.w * vf * v.wv[vw.code]
			}
		}
	}
}

// gather accumulates the two estimator sums for one query: first through the
// O(1) interval-grid layer when the query restricts at most two attributes,
// falling back to the kd traversal for wider shapes, grid-less schemas, and
// near-empty regions (where the grid's cancellation noise cannot certify an
// exact zero). Empty indexes answer (0, 0).
func (ix *Index) gather(q []Range, v *valuer) (a, b float64) {
	act := ix.activeRanges(q)
	if len(act) <= 2 {
		if a, b, ok := ix.gatherGrid(act, v); ok {
			ix.met.grid.Inc()
			return a, b
		}
		if ix.grids != nil && len(act) > 0 {
			// The grid could serve this shape but declined: the answer fell
			// below tinyB, where SAT cancellation noise cannot certify an
			// exact zero, so the tree re-answers it exactly.
			ix.met.reanswer.Inc()
		} else {
			ix.met.kd.Inc()
		}
	} else {
		ix.met.kd.Inc()
	}
	if ix.root >= 0 {
		ix.walk(ix.root, act, v, &a, &b)
	}
	return a, b
}
