package query

import (
	"fmt"

	"pgpub/internal/dataset"
	"pgpub/internal/pg"
)

// This file extends the COUNT machinery to SUM and AVG of the sensitive
// attribute over a QI region, for ordered sensitive domains whose codes map
// to numeric values (the SAL Income buckets). The perturbation operator
// shifts an observed value's expectation linearly:
//
//	E[value(y)] = p · value(x) + (1-p) · mean(U^s)
//
// so the region's sensitive sum inverts in aggregate, exactly like the
// count estimator's sensitive correction.

// SensitiveValue maps a sensitive code to the numeric value aggregated by
// SUM/AVG. IncomeMidpoint is the natural choice for SAL.
type SensitiveValue func(code int32) float64

// IncomeMidpoint maps the paper's Income bucket i ([2000i, 2000(i+1)) USD)
// to its midpoint in dollars.
func IncomeMidpoint(code int32) float64 { return 2000*float64(code) + 1000 }

// TrueSum computes SUM(value(sensitive)) over the microdata rows matching
// the query's QI ranges (the query's Sensitive mask must be nil: SUM/AVG
// aggregate the sensitive attribute itself).
func TrueSum(d *dataset.Table, q CountQuery, value SensitiveValue) (float64, error) {
	if q.Sensitive != nil {
		return 0, fmt.Errorf("query: SUM/AVG take no sensitive mask")
	}
	if err := q.validate(d.Schema); err != nil {
		return 0, err
	}
	sum := 0.0
rows:
	for i := 0; i < d.Len(); i++ {
		for j, r := range q.QI {
			if v := d.QI(i, j); v < r.Lo || v > r.Hi {
				continue rows
			}
		}
		sum += value(d.Sensitive(i))
	}
	return sum, nil
}

// sumWeight is the one scan both SUM and AVG are built from: the
// value-weighted region sum a = Σ G·vf·value(y) and the region weight
// b = Σ G·vf over the rows intersecting the query.
func sumWeight(pub *pg.Published, q CountQuery, value SensitiveValue) (a, b float64, err error) {
	if q.Sensitive != nil {
		return 0, 0, fmt.Errorf("query: SUM/AVG take no sensitive mask")
	}
	if err := q.validate(pub.Schema); err != nil {
		return 0, 0, err
	}
	if pub.P <= 0 {
		return 0, 0, fmt.Errorf("query: SUM estimation needs retention probability > 0, publication has p = %v", pub.P)
	}
	for _, r := range pub.EnsureRows() {
		vf := volumeFraction(r.Box.Lo, r.Box.Hi, q.QI)
		if vf == 0 {
			continue
		}
		w := float64(r.G) * vf
		a += w * value(r.Value)
		b += w
	}
	return a, b, nil
}

// domainMean is the mean of value over the whole sensitive domain — the
// center the perturbation operator pulls observed values toward.
func domainMean(domain int, value SensitiveValue) float64 {
	mean := 0.0
	for x := int32(0); int(x) < domain; x++ {
		mean += value(x)
	}
	return mean / float64(domain)
}

// EstimateSum estimates SUM(value(sensitive)) over the query region from D*
// alone: the observed weighted sum A = Σ G·vf·value(y) has expectation
// p·S + (1-p)·mean(U^s)·N over the region (N estimated by B = Σ G·vf), so
// S ≈ (A − (1−p)·mean·B) / p. Requires p > 0.
func EstimateSum(pub *pg.Published, q CountQuery, value SensitiveValue) (float64, error) {
	a, b, err := sumWeight(pub, q, value)
	if err != nil {
		return 0, err
	}
	return (a - (1-pub.P)*domainMean(pub.Schema.SensitiveDomain(), value)*b) / pub.P, nil
}

// EstimateAvg estimates AVG(value(sensitive)) over the query region: the SUM
// estimate divided by the region's estimated count. Both come out of one
// scan — the count estimate of a mask-free query is exactly the weight term
// b of the SUM inversion. Errors when the region is estimated empty.
func EstimateAvg(pub *pg.Published, q CountQuery, value SensitiveValue) (float64, error) {
	a, b, err := sumWeight(pub, q, value)
	if err != nil {
		return 0, err
	}
	if b == 0 {
		return 0, fmt.Errorf("query: region estimated empty")
	}
	sum := (a - (1-pub.P)*domainMean(pub.Schema.SensitiveDomain(), value)*b) / pub.P
	return sum / b, nil
}
