package query

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pgpub/internal/dataset"
	"pgpub/internal/pg"
	"pgpub/internal/sal"
)

func fullQuery(s *dataset.Schema) CountQuery {
	q := CountQuery{QI: make([]Range, s.D())}
	for j, a := range s.QI {
		q.QI[j] = Range{Lo: 0, Hi: int32(a.Size() - 1)}
	}
	return q
}

func TestTrueCount(t *testing.T) {
	d := dataset.Hospital()
	q := fullQuery(d.Schema)
	n, err := TrueCount(d, q)
	if err != nil || n != d.Len() {
		t.Fatalf("full query count = %d, %v", n, err)
	}
	// Only the two male patients aged <= 40 (Bob, Calvin).
	q.QI[0] = Range{Lo: 0, Hi: 20} // ages 20..40
	q.QI[1] = Range{Lo: 0, Hi: 0}  // M
	n, err = TrueCount(d, q)
	if err != nil || n != 2 {
		t.Fatalf("young males = %d, %v; want 2", n, err)
	}
	// Sensitive restriction: pneumonia only (Calvin).
	mask := make([]bool, d.Schema.SensitiveDomain())
	mask[d.Schema.Sensitive.MustCode("pneumonia")] = true
	q.Sensitive = mask
	n, err = TrueCount(d, q)
	if err != nil || n != 1 {
		t.Fatalf("young male pneumonia = %d, %v; want 1", n, err)
	}
}

func TestValidation(t *testing.T) {
	d := dataset.Hospital()
	q := fullQuery(d.Schema)
	q.QI = q.QI[:1]
	if _, err := TrueCount(d, q); err == nil {
		t.Fatal("short QI ranges: want error")
	}
	q = fullQuery(d.Schema)
	q.QI[0] = Range{Lo: 5, Hi: 2}
	if _, err := TrueCount(d, q); err == nil {
		t.Fatal("inverted range: want error")
	}
	q = fullQuery(d.Schema)
	q.QI[0] = Range{Lo: 0, Hi: 9999}
	if _, err := TrueCount(d, q); err == nil {
		t.Fatal("overflowing range: want error")
	}
	q = fullQuery(d.Schema)
	q.Sensitive = []bool{true}
	if _, err := TrueCount(d, q); err == nil {
		t.Fatal("short sensitive mask: want error")
	}
}

// The full-domain query is estimated exactly: every box is fully covered and
// G values sum to |D|.
func TestEstimateFullQueryExact(t *testing.T) {
	d, err := sal.Generate(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Estimate(pub, fullQuery(d.Schema))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-float64(d.Len())) > 1e-9 {
		t.Fatalf("full-query estimate = %v, want %d", got, d.Len())
	}
}

// QI-only range queries: the estimator should land within a modest relative
// error of the truth for mid-selectivity queries (uniformity assumption).
func TestEstimateQIRanges(t *testing.T) {
	d, err := sal.Generate(20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	queries, err := Workload(d.Schema, WorkloadConfig{
		Queries: 40, QIFraction: 0.5, RestrictAttrs: 2, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rels []float64
	for _, q := range queries {
		truth, err := TrueCount(d, q)
		if err != nil {
			t.Fatal(err)
		}
		if truth < 500 {
			continue // tiny counts are dominated by sampling noise
		}
		got, err := Estimate(pub, q)
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, math.Abs(got-float64(truth))/float64(truth))
	}
	if len(rels) < 10 {
		t.Fatalf("only %d usable queries", len(rels))
	}
	sort.Float64s(rels)
	// The uniformity assumption inside kd-cells bounds what any consumer of
	// D* can do: cells at the domain edge cover empty space. Median error
	// should be modest and nothing should explode.
	if med := rels[len(rels)/2]; med > 0.25 {
		t.Fatalf("median relative error %v on mid-selectivity QI queries", med)
	}
	if worst := rels[len(rels)-1]; worst > 0.9 {
		t.Fatalf("worst relative error %v", worst)
	}
}

// Sensitive-restricted queries: the corrected estimator must be roughly
// unbiased while the naive estimator is systematically off.
func TestEstimateSensitiveCorrection(t *testing.T) {
	d, err := sal.Generate(30000, 6)
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.3
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: p, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Q: income in the top half, no QI restriction. True fraction is ~0.35.
	q := fullQuery(d.Schema)
	mask := make([]bool, d.Schema.SensitiveDomain())
	for x := 25; x < 50; x++ {
		mask[x] = true
	}
	q.Sensitive = mask
	truth, err := TrueCount(d, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Estimate(pub, q)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := EstimateNaive(pub, q)
	if err != nil {
		t.Fatal(err)
	}
	relCorrected := math.Abs(got-float64(truth)) / float64(truth)
	relNaive := math.Abs(naive-float64(truth)) / float64(truth)
	if relCorrected > 0.15 {
		t.Fatalf("corrected estimator off by %v (est %v, truth %d)", relCorrected, got, truth)
	}
	if relNaive < relCorrected {
		t.Fatalf("naive estimator (%v rel err) should not beat the corrected one (%v)",
			relNaive, relCorrected)
	}
	// The naive estimator's bias direction is known: it pulls the count
	// toward (1-p)*|S|/|U|*|D| + p*truth.
	expectedNaive := p*float64(truth) + (1-p)*0.5*float64(d.Len())
	if math.Abs(naive-expectedNaive)/expectedNaive > 0.1 {
		t.Fatalf("naive estimate %v far from its analytic expectation %v", naive, expectedNaive)
	}
}

func TestEstimateErrors(t *testing.T) {
	d, err := sal.Generate(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 4, P: 0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	q := fullQuery(d.Schema)
	q.Sensitive = make([]bool, d.Schema.SensitiveDomain())
	q.Sensitive[0] = true
	if _, err := Estimate(pub, q); err == nil {
		t.Fatal("sensitive predicate at p=0: want error")
	}
	bad := fullQuery(d.Schema)
	bad.QI[0] = Range{Lo: -1, Hi: 0}
	if _, err := Estimate(pub, bad); err == nil {
		t.Fatal("negative range: want error")
	}
	if _, err := EstimateNaive(pub, bad); err == nil {
		t.Fatal("negative range (naive): want error")
	}
}

func TestWorkloadGeneration(t *testing.T) {
	s := sal.Schema()
	rng := rand.New(rand.NewSource(10))
	qs, err := Workload(s, WorkloadConfig{
		Queries: 25, QIFraction: 0.3, RestrictAttrs: 3, SensitiveFraction: 0.2, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 25 {
		t.Fatalf("workload size = %d", len(qs))
	}
	for _, q := range qs {
		if err := q.validate(s); err != nil {
			t.Fatalf("generated query invalid: %v", err)
		}
		restricted := 0
		for j, r := range q.QI {
			if r.Lo != 0 || int(r.Hi) != s.QI[j].Size()-1 {
				restricted++
			}
		}
		if restricted > 3 {
			t.Fatalf("query restricts %d attributes, want <= 3", restricted)
		}
		if q.Sensitive == nil {
			t.Fatal("sensitive predicate requested but absent")
		}
		f := q.sensitiveFraction(s.SensitiveDomain())
		if f <= 0 || f > 0.3 {
			t.Fatalf("sensitive fraction = %v, want about 0.2", f)
		}
	}
}

func TestWorkloadErrors(t *testing.T) {
	s := sal.Schema()
	rng := rand.New(rand.NewSource(1))
	if _, err := Workload(s, WorkloadConfig{Queries: 0, QIFraction: 0.5, Rng: rng}); err == nil {
		t.Fatal("zero queries: want error")
	}
	if _, err := Workload(s, WorkloadConfig{Queries: 1, QIFraction: 0.5}); err == nil {
		t.Fatal("nil rng: want error")
	}
	if _, err := Workload(s, WorkloadConfig{Queries: 1, QIFraction: 0, Rng: rng}); err == nil {
		t.Fatal("zero fraction: want error")
	}
}

// Property: estimates are non-negative and never exceed |D| for QI-only
// queries (each tuple contributes at most its G).
func TestEstimateBounds(t *testing.T) {
	d, err := sal.Generate(3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 5, P: 0.3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		qs, err := Workload(d.Schema, WorkloadConfig{
			Queries: 5, QIFraction: 0.4, RestrictAttrs: 2, Rng: rng,
		})
		if err != nil {
			return false
		}
		for _, q := range qs {
			got, err := Estimate(pub, q)
			if err != nil {
				return false
			}
			if got < 0 || got > float64(d.Len())+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
