package query

import (
	"fmt"

	"pgpub/internal/dataset"
	"pgpub/internal/obs"
)

// IndexParts is the frozen serving representation of an Index as plain
// slices: exactly the arrays the traversal runs on, with nothing derived and
// nothing pointer-shaped. It is the snapshot wire format of the index — the
// writer dumps each slice as one contiguous block, and the mmap reader wraps
// the file's pages back into these slices zero-copy, so reconstructing a
// serving index costs page faults rather than a rebuild.
//
// Box bounds are dim-major (EntLo[j*nEntries+i] is entry i's lower bound
// along QI dimension j; node bounds likewise over the node count). Per-entry
// sparse histograms are CSR: entry i's bins are ValCode/ValW[ValOff[i]:
// ValOff[i+1]]. Node i's dense histogram is NodeHist[i*dom:(i+1)*dom] and
// its prefix block NodePref[i*(dom+1):(i+1)*(dom+1)]. GridSat is the
// concatenation of the interval-grid summed-area tables in the schema's
// canonical pair order (empty when the index serves every query from the
// tree).
type IndexParts struct {
	// P is the release's retention probability (publication metadata the
	// estimators invert perturbation with).
	P float64
	// Root is the kd-tree root node index, -1 for an empty index.
	Root int32

	EntLo, EntHi []int32
	EntG         []float64
	ValOff       []int32
	ValCode      []int32
	ValW         []float64

	NodeLo, NodeHi      []int32
	NodeG               []float64
	NodeHist, NodePref  []float64
	NodeLeft, NodeRight []int32
	NodeELo, NodeEHi    []int32

	GridSat []float64
}

// Parts returns the index's frozen arrays. The slices share the index's
// backing memory — callers must treat them as read-only.
func (ix *Index) Parts() IndexParts {
	return IndexParts{
		P:         ix.p,
		Root:      ix.root,
		EntLo:     ix.entLo,
		EntHi:     ix.entHi,
		EntG:      ix.entG,
		ValOff:    ix.valOff,
		ValCode:   ix.valCode,
		ValW:      ix.valW,
		NodeLo:    ix.nodeLo,
		NodeHi:    ix.nodeHi,
		NodeG:     ix.nodeG,
		NodeHist:  ix.nodeHist,
		NodePref:  ix.nodePref,
		NodeLeft:  ix.nodeLeft,
		NodeRight: ix.nodeRight,
		NodeELo:   ix.nodeELo,
		NodeEHi:   ix.nodeEHi,
		GridSat:   ix.gridSat,
	}
}

// NewIndexFromParts reconstructs a serving index around frozen arrays —
// the slices are adopted, not copied, so a read-only mmap'd snapshot serves
// directly from file pages. The structural arrays (offsets, codes, child
// links, entry ranges) are validated so corrupt input fails with an error
// instead of an out-of-range panic mid-query; the float blocks are taken on
// faith and are the snapshot layer's CRCs to vouch for. Derived state (the
// global histogram, prefix sums, grid pair lookups) is recomputed — it is
// O(#entries + |U^s| + d²), negligible beside a rebuild.
//
// Answers are bit-identical to the index the parts were taken from: the
// arrays fully determine the traversal.
func NewIndexFromParts(schema *dataset.Schema, parts IndexParts) (*Index, error) {
	return NewIndexFromPartsObserved(schema, parts, nil)
}

// NewIndexFromPartsObserved is NewIndexFromParts with the same serving-path
// instrumentation NewIndexObserved wires. A nil registry disables it.
func NewIndexFromPartsObserved(schema *dataset.Schema, parts IndexParts, reg *obs.Registry) (*Index, error) {
	if schema == nil {
		return nil, fmt.Errorf("query: index parts need a schema")
	}
	d := schema.D()
	dom := schema.SensitiveDomain()
	nE := len(parts.EntG)
	nN := len(parts.NodeG)
	check := func(name string, got, want int) error {
		if got != want {
			return fmt.Errorf("query: index parts: %s has length %d, want %d", name, got, want)
		}
		return nil
	}
	for _, c := range []struct {
		name      string
		got, want int
	}{
		{"EntLo", len(parts.EntLo), d * nE},
		{"EntHi", len(parts.EntHi), d * nE},
		{"ValOff", len(parts.ValOff), nE + 1},
		{"ValW", len(parts.ValW), len(parts.ValCode)},
		{"NodeLo", len(parts.NodeLo), d * nN},
		{"NodeHi", len(parts.NodeHi), d * nN},
		{"NodeHist", len(parts.NodeHist), nN * dom},
		{"NodePref", len(parts.NodePref), nN * (dom + 1)},
		{"NodeLeft", len(parts.NodeLeft), nN},
		{"NodeRight", len(parts.NodeRight), nN},
		{"NodeELo", len(parts.NodeELo), nN},
		{"NodeEHi", len(parts.NodeEHi), nN},
	} {
		if err := check(c.name, c.got, c.want); err != nil {
			return nil, err
		}
	}
	if parts.ValOff[0] != 0 || int(parts.ValOff[nE]) != len(parts.ValCode) {
		return nil, fmt.Errorf("query: index parts: CSR offsets span [%d,%d], want [0,%d]",
			parts.ValOff[0], parts.ValOff[nE], len(parts.ValCode))
	}
	for i := 0; i < nE; i++ {
		if parts.ValOff[i] > parts.ValOff[i+1] {
			return nil, fmt.Errorf("query: index parts: CSR offsets decrease at entry %d", i)
		}
	}
	for o, c := range parts.ValCode {
		if c < 0 || int(c) >= dom {
			return nil, fmt.Errorf("query: index parts: sensitive code %d at bin %d outside domain %d", c, o, dom)
		}
	}
	if nN == 0 {
		if parts.Root != -1 {
			return nil, fmt.Errorf("query: index parts: root %d with no nodes", parts.Root)
		}
	} else if parts.Root < 0 || int(parts.Root) >= nN {
		return nil, fmt.Errorf("query: index parts: root %d outside [0,%d)", parts.Root, nN)
	}
	for i := 0; i < nN; i++ {
		l, r := parts.NodeLeft[i], parts.NodeRight[i]
		if (l < 0) != (r < 0) {
			return nil, fmt.Errorf("query: index parts: node %d has one child", i)
		}
		if l >= 0 {
			// Children precede parents in the frozen order (the build appends
			// bottom-up), which also makes the link check a cycle check.
			if int(l) >= i || int(r) >= i {
				return nil, fmt.Errorf("query: index parts: node %d links forward to %d/%d", i, l, r)
			}
		} else {
			lo, hi := parts.NodeELo[i], parts.NodeEHi[i]
			if lo < 0 || lo > hi || int(hi) > nE {
				return nil, fmt.Errorf("query: index parts: node %d entry range [%d,%d) outside [0,%d]", i, lo, hi, nE)
			}
		}
	}
	ix := &Index{
		schema:    schema,
		p:         parts.P,
		nE:        nE,
		entLo:     parts.EntLo,
		entHi:     parts.EntHi,
		entG:      parts.EntG,
		valOff:    parts.ValOff,
		valCode:   parts.ValCode,
		valW:      parts.ValW,
		nodeLo:    parts.NodeLo,
		nodeHi:    parts.NodeHi,
		nodeG:     parts.NodeG,
		nodeHist:  parts.NodeHist,
		nodePref:  parts.NodePref,
		nodeLeft:  parts.NodeLeft,
		nodeRight: parts.NodeRight,
		nodeELo:   parts.NodeELo,
		nodeEHi:   parts.NodeEHi,
		root:      parts.Root,
	}
	ix.finish()
	if len(parts.GridSat) > 0 {
		grids, err := sliceGrids(schema, parts.GridSat)
		if err != nil {
			return nil, err
		}
		ix.grids, ix.gridSat = grids, parts.GridSat
		ix.wireGrids()
	}
	ix.observe(reg)
	return ix, nil
}
