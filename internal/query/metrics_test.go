package query

import (
	"math/rand"
	"testing"

	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/sal"
)

// Every Count resolves through exactly one of the three answer paths, so the
// path counters partition the workload, and each call lands one latency
// observation. The split itself is a property of the query set and the
// index — not of the worker count AnswerWorkload fans out with.
func TestIndexMetricsPartitionQueries(t *testing.T) {
	d, err := sal.Generate(2000, 31)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.3, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Workload(d.Schema, WorkloadConfig{
		Queries: 300, QIFraction: 0.3, RestrictAttrs: 2, SensitiveFraction: 0.4,
		Rng: rand.New(rand.NewSource(33)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Widen some queries past two restricted attributes so the kd path is
	// exercised alongside the grid path.
	wide, err := Workload(d.Schema, WorkloadConfig{
		Queries: 50, QIFraction: 0.3, RestrictAttrs: 4, SensitiveFraction: 0.4,
		Rng: rand.New(rand.NewSource(34)),
	})
	if err != nil {
		t.Fatal(err)
	}
	qs = append(qs, wide...)

	var ref map[string]int64
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		ix, err := NewIndexObserved(pub, reg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ix.AnswerWorkload(qs, workers); err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		grid := snap.Counters["query.answered.grid"]
		re := snap.Counters["query.answered.exact_reanswer"]
		kd := snap.Counters["query.answered.kd"]
		if grid+re+kd != int64(len(qs)) {
			t.Fatalf("workers=%d: answer paths %d+%d+%d != %d queries", workers, grid, re, kd, len(qs))
		}
		if grid == 0 || kd == 0 {
			t.Fatalf("workers=%d: expected both grid (%d) and kd (%d) paths exercised", workers, grid, kd)
		}
		h := snap.Histograms["query.count.latency"]
		if h.Count != int64(len(qs)) {
			t.Fatalf("workers=%d: latency observations %d != %d queries", workers, h.Count, len(qs))
		}
		if snap.Gauges["query.index.entries"] != int64(ix.Groups()) {
			t.Fatalf("query.index.entries = %d, want %d", snap.Gauges["query.index.entries"], ix.Groups())
		}
		if snap.Histograms["query.index.build"].Count != 1 {
			t.Fatal("index build span not recorded")
		}
		paths := map[string]int64{"grid": grid, "reanswer": re, "kd": kd}
		if ref == nil {
			ref = paths
		} else if paths["grid"] != ref["grid"] || paths["reanswer"] != ref["reanswer"] || paths["kd"] != ref["kd"] {
			t.Fatalf("answer-path split varies with workers: %v vs %v", paths, ref)
		}
	}
}

// An index built without a registry keeps all instruments nil and answers
// identically.
func TestIndexMetricsDisabled(t *testing.T) {
	d, err := sal.Generate(500, 35)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 4, P: 0.3, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewIndex(pub)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := NewIndexObserved(pub, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	q := fullQuery(d.Schema)
	a, err := plain.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := observed.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("instrumented Count %v != plain Count %v", b, a)
	}
}
