package query

import (
	"fmt"
	"time"

	"pgpub/internal/par"
)

// This file is the serving half of the query engine: the Index counterparts
// of the scan estimators (Estimate, EstimateNaive, EstimateSum, EstimateAvg)
// plus the batched AnswerWorkload. Each method applies exactly the same
// inversion formula as its scan twin — only the accumulation of the region
// sums is replaced by the pruned tree traversal — so answers agree with the
// scan path up to floating-point summation order.

// maskValuer turns a sensitive mask into the traversal's value weighting: a
// nil mask needs no value-weighted sum at all, and a contiguous band (the
// shape Workload generates and pgquery's -income flag builds) is flagged so
// contained subtrees answer it from their prefix sums in O(1).
func maskValuer(mask []bool) valuer {
	if mask == nil {
		return valuer{}
	}
	v := valuer{wv: make([]float64, len(mask)), lo: -1}
	contiguous := true
	for y, in := range mask {
		if !in {
			continue
		}
		v.wv[y] = 1
		if v.lo < 0 {
			v.lo = int32(y)
		} else if int32(y) != v.hi+1 {
			contiguous = false
		}
		v.hi = int32(y)
	}
	v.band = contiguous && v.lo >= 0
	return v
}

// Count is the indexed Estimate: the PG count estimator of the query,
// answered from the precomputed per-box aggregates. On an index built with
// NewIndexObserved each call records its wall clock into the
// query.count.latency histogram.
func (ix *Index) Count(q CountQuery) (float64, error) {
	if h := ix.met.latency; h != nil {
		t0 := time.Now()
		est, err := ix.countImpl(q)
		h.Observe(int64(time.Since(t0)))
		return est, err
	}
	return ix.countImpl(q)
}

func (ix *Index) countImpl(q CountQuery) (float64, error) {
	if err := q.validate(ix.schema); err != nil {
		return 0, err
	}
	if q.Sensitive != nil && ix.p <= 0 {
		return 0, fmt.Errorf("query: sensitive predicates need retention probability > 0, publication has p = %v", ix.p)
	}
	v := maskValuer(q.Sensitive)
	a, b := ix.gather(q.QI, &v)
	if q.Sensitive == nil {
		return b, nil
	}
	sf := q.sensitiveFraction(ix.schema.SensitiveDomain())
	est := (a - (1-ix.p)*sf*b) / ix.p
	if est < 0 {
		est = 0
	}
	if est > b {
		est = b
	}
	return est, nil
}

// Naive is the indexed EstimateNaive: the uncorrected estimator that treats
// perturbed values as exact.
func (ix *Index) Naive(q CountQuery) (float64, error) {
	if err := q.validate(ix.schema); err != nil {
		return 0, err
	}
	v := maskValuer(q.Sensitive)
	a, b := ix.gather(q.QI, &v)
	if q.Sensitive == nil {
		return b, nil
	}
	return a, nil
}

// sumWeight runs the SUM traversal shared by Sum and Avg: the value-weighted
// region sum a = Σ G·vf·value(y) and the region weight b = Σ G·vf.
func (ix *Index) sumWeight(q CountQuery, value SensitiveValue) (a, b float64, err error) {
	if q.Sensitive != nil {
		return 0, 0, fmt.Errorf("query: SUM/AVG take no sensitive mask")
	}
	if err := q.validate(ix.schema); err != nil {
		return 0, 0, err
	}
	if ix.p <= 0 {
		return 0, 0, fmt.Errorf("query: SUM estimation needs retention probability > 0, publication has p = %v", ix.p)
	}
	v := valuer{wv: make([]float64, ix.schema.SensitiveDomain())}
	for y := range v.wv {
		v.wv[y] = value(int32(y))
	}
	a, b = ix.gather(q.QI, &v)
	return a, b, nil
}

// AvgParts exposes the compose form of the SUM/AVG estimators: the
// perturbation-inverted region SUM and the region weight b (the published
// tuple mass under the QI predicate). SUM is additive in the first part and
// AVG over a union of disjoint publications — the sharded release — is
// Σ sums / Σ weights, which is how the fan-out coordinator merges per-shard
// answers without a second round trip.
func (ix *Index) AvgParts(q CountQuery, value SensitiveValue) (sum, weight float64, err error) {
	a, b, err := ix.sumWeight(q, value)
	if err != nil {
		return 0, 0, err
	}
	sum = (a - (1-ix.p)*domainMean(ix.schema.SensitiveDomain(), value)*b) / ix.p
	return sum, b, nil
}

// Sum is the indexed EstimateSum: SUM(value(sensitive)) over the query
// region, inverted for perturbation in aggregate.
func (ix *Index) Sum(q CountQuery, value SensitiveValue) (float64, error) {
	sum, _, err := ix.AvgParts(q, value)
	return sum, err
}

// Avg is the indexed EstimateAvg: one traversal yields both the SUM
// inversion and the region's count estimate (the weight term b), so AVG
// costs a single pass. Errors when the region is estimated empty.
func (ix *Index) Avg(q CountQuery, value SensitiveValue) (float64, error) {
	sum, b, err := ix.AvgParts(q, value)
	if err != nil {
		return 0, err
	}
	if b == 0 {
		return 0, fmt.Errorf("query: region estimated empty")
	}
	return sum / b, nil
}

// AnswerWorkload answers a COUNT workload, fanning the queries across at
// most workers goroutines (par semantics: 0 means GOMAXPROCS). Every query
// is answered wholly by one worker against the shared immutable index, and
// answers land at their query's position, so the output is byte-identical
// for every worker count. On error the first failing query by position is
// reported and no answers are returned.
func (ix *Index) AnswerWorkload(qs []CountQuery, workers int) ([]float64, error) {
	out := make([]float64, len(qs))
	err := par.ForEachErr(workers, len(qs), func(i int) error {
		v, err := ix.Count(qs[i])
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
