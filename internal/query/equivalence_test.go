package query

import (
	"math/rand"
	"testing"

	"pgpub/internal/pg"
)

// TestIndexColumnarRowEquivalence pins the tentpole's core promise at the
// query layer: an index built from a columnar publication (rows
// materialised on demand), one built from the original row-backed
// publication, and one reassembled from Parts() answer every estimator
// bit-identically — not merely within tolerance — because all three walk the
// same tree in the same order. Covers all three Phase-2 algorithms.
func TestIndexColumnarRowEquivalence(t *testing.T) {
	d, pubs := indexPubs(t, 2500, 31)
	for name, rowPub := range pubs {
		// A columnar twin: same metadata, rows dropped, columns adopted.
		meta := *rowPub
		meta.Rows = nil
		colPub, err := pg.FromColumns(meta, rowPub.Columns())
		if err != nil {
			t.Fatalf("%s: FromColumns: %v", name, err)
		}

		ixRow, err := NewIndex(rowPub)
		if err != nil {
			t.Fatal(err)
		}
		ixCol, err := NewIndex(colPub)
		if err != nil {
			t.Fatal(err)
		}
		ixParts, err := NewIndexFromParts(rowPub.Schema, ixRow.Parts())
		if err != nil {
			t.Fatal(err)
		}
		if ixRow.Groups() != ixCol.Groups() || ixRow.Groups() != ixParts.Groups() {
			t.Fatalf("%s: group counts diverge: row %d, columnar %d, parts %d",
				name, ixRow.Groups(), ixCol.Groups(), ixParts.Groups())
		}

		rng := rand.New(rand.NewSource(32))
		qs, err := Workload(d.Schema, WorkloadConfig{
			Queries: 60, QIFraction: 0.4, RestrictAttrs: 3, SensitiveFraction: 0.3, Rng: rng,
		})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range qs {
			type est struct {
				label string
				f     func(*Index) (float64, error)
			}
			ests := []est{
				{"Count", func(ix *Index) (float64, error) { return ix.Count(q) }},
				{"Naive", func(ix *Index) (float64, error) { return ix.Naive(q) }},
			}
			if q.Sensitive == nil {
				ests = append(ests,
					est{"Sum", func(ix *Index) (float64, error) { return ix.Sum(q, IncomeMidpoint) }},
					est{"Avg", func(ix *Index) (float64, error) { return ix.Avg(q, IncomeMidpoint) }})
			}
			for _, e := range ests {
				row, errRow := e.f(ixRow)
				col, errCol := e.f(ixCol)
				parts, errParts := e.f(ixParts)
				if (errRow == nil) != (errCol == nil) || (errRow == nil) != (errParts == nil) {
					t.Fatalf("%s q%d %s: errors diverge: row %v, columnar %v, parts %v",
						name, qi, e.label, errRow, errCol, errParts)
				}
				if errRow != nil {
					continue
				}
				if row != col || row != parts {
					t.Fatalf("%s q%d %s: row %v, columnar %v, parts %v (must be bit-identical)",
						name, qi, e.label, row, col, parts)
				}
			}
		}
	}
}
