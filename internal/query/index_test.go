package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pgpub/internal/dataset"
	"pgpub/internal/pg"
	"pgpub/internal/sal"
)

// agree is the equivalence tolerance between the index and scan paths: the
// two accumulate identical terms in different orders (the index pre-sums
// contained subtrees), so answers agree to floating-point summation error —
// 1e-9 relative to the answer magnitude.
func agree(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// indexPubs publishes one small SAL table under each Phase-2 algorithm.
func indexPubs(t *testing.T, n int, seed int64) (*dataset.Table, map[string]*pg.Published) {
	t.Helper()
	d, err := sal.Generate(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	pubs := make(map[string]*pg.Published)
	for _, alg := range []pg.Algorithm{pg.KD, pg.TDS, pg.FullDomain} {
		pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{
			K: 6, P: 0.3, Algorithm: alg, Seed: seed + int64(alg),
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		pubs[alg.String()] = pub
	}
	return d, pubs
}

// checkAllEstimators compares every index method against its scan twin on
// one query.
func checkAllEstimators(t *testing.T, pub *pg.Published, ix *Index, q CountQuery, label string) {
	t.Helper()
	scan, err1 := Estimate(pub, q)
	idx, err2 := ix.Count(q)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s: Count errors diverge: scan %v, index %v", label, err1, err2)
	}
	if err1 == nil && !agree(scan, idx) {
		t.Fatalf("%s: Count: scan %v, index %v", label, scan, idx)
	}
	scan, err1 = EstimateNaive(pub, q)
	idx, err2 = ix.Naive(q)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s: Naive errors diverge: scan %v, index %v", label, err1, err2)
	}
	if err1 == nil && !agree(scan, idx) {
		t.Fatalf("%s: Naive: scan %v, index %v", label, scan, idx)
	}
	if q.Sensitive != nil {
		return // SUM/AVG take no sensitive mask
	}
	scan, err1 = EstimateSum(pub, q, IncomeMidpoint)
	idx, err2 = ix.Sum(q, IncomeMidpoint)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s: Sum errors diverge: scan %v, index %v", label, err1, err2)
	}
	if err1 == nil && !agree(scan, idx) {
		t.Fatalf("%s: Sum: scan %v, index %v", label, scan, idx)
	}
	scan, err1 = EstimateAvg(pub, q, IncomeMidpoint)
	idx, err2 = ix.Avg(q, IncomeMidpoint)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s: Avg errors diverge: scan %v, index %v", label, err1, err2)
	}
	if err1 == nil && !agree(scan, idx) {
		t.Fatalf("%s: Avg: scan %v, index %v", label, scan, idx)
	}
}

// The satellite property: index answers match the scan estimators across
// random workloads, for all three Phase-2 algorithms, with sensitive masks
// on and off.
func TestIndexMatchesScanAllAlgorithms(t *testing.T) {
	d, pubs := indexPubs(t, 3000, 21)
	for name, pub := range pubs {
		ix, err := NewIndex(pub)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Groups() == 0 || ix.Groups() > pub.Len() {
			t.Fatalf("%s: %d groups from %d rows", name, ix.Groups(), pub.Len())
		}
		rng := rand.New(rand.NewSource(22))
		for _, cfg := range []WorkloadConfig{
			{Queries: 30, QIFraction: 0.4, RestrictAttrs: 3, Rng: rng},
			{Queries: 30, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.4, Rng: rng},
			{Queries: 10, QIFraction: 0.05, RestrictAttrs: 0, SensitiveFraction: 0.1, Rng: rng},
		} {
			qs, err := Workload(d.Schema, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range qs {
				checkAllEstimators(t, pub, ix, q, name)
			}
		}
	}
}

// Edge ranges: the full domain (every box contained — the pure pre-aggregate
// path) and degenerate point ranges that hit nothing.
func TestIndexEdgeRanges(t *testing.T) {
	d, pubs := indexPubs(t, 2000, 23)
	for name, pub := range pubs {
		ix, err := NewIndex(pub)
		if err != nil {
			t.Fatal(err)
		}
		full := fullQuery(d.Schema)
		got, err := ix.Count(full)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-float64(d.Len())) > 1e-9 {
			t.Fatalf("%s: full-domain indexed count = %v, want %d", name, got, d.Len())
		}
		checkAllEstimators(t, pub, ix, full, name+"/full")
		// A zero-volume region: single-point ranges on every attribute. At
		// most one box covers the point; scan and index must agree exactly.
		point := fullQuery(d.Schema)
		for j := range point.QI {
			point.QI[j] = Range{Lo: 0, Hi: 0}
		}
		checkAllEstimators(t, pub, ix, point, name+"/point")
		// A sensitive mask over the point region too.
		point.Sensitive = make([]bool, d.Schema.SensitiveDomain())
		point.Sensitive[0] = true
		checkAllEstimators(t, pub, ix, point, name+"/point+mask")
	}
}

// An empty publication must index and answer zeros, with AVG erroring the
// same way the scan path does.
func TestIndexEmptyPublication(t *testing.T) {
	s := sal.Schema()
	pub := &pg.Published{Schema: s, P: 0.3, K: 6}
	ix, err := NewIndex(pub)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Groups() != 0 {
		t.Fatalf("empty publication has %d groups", ix.Groups())
	}
	q := fullQuery(s)
	checkAllEstimators(t, pub, ix, q, "empty")
	if got, err := ix.Count(q); err != nil || got != 0 {
		t.Fatalf("empty Count = %v, %v", got, err)
	}
	q.Sensitive = make([]bool, s.SensitiveDomain())
	q.Sensitive[3] = true
	if got, err := ix.Count(q); err != nil || got != 0 {
		t.Fatalf("empty masked Count = %v, %v", got, err)
	}
	if _, err := ix.Avg(fullQuery(s), IncomeMidpoint); err == nil {
		t.Fatal("empty AVG: want region-empty error")
	}
	if got, err := ix.Sum(fullQuery(s), IncomeMidpoint); err != nil || got != 0 {
		t.Fatalf("empty Sum = %v, %v, want 0", got, err)
	}
	if got, err := ix.Naive(q); err != nil || got != 0 {
		t.Fatalf("empty Naive = %v, %v, want 0", got, err)
	}
}

// Index methods validate queries exactly like the scan estimators.
func TestIndexValidation(t *testing.T) {
	d, err := sal.Generate(800, 25)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 4, P: 0.3, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(pub)
	if err != nil {
		t.Fatal(err)
	}
	bad := fullQuery(d.Schema)
	bad.QI[0] = Range{Lo: 5, Hi: 2}
	if _, err := ix.Count(bad); err == nil {
		t.Fatal("inverted range: want error")
	}
	if _, err := ix.Naive(bad); err == nil {
		t.Fatal("inverted range (naive): want error")
	}
	if _, err := ix.Sum(bad, IncomeMidpoint); err == nil {
		t.Fatal("inverted range (sum): want error")
	}
	masked := fullQuery(d.Schema)
	masked.Sensitive = make([]bool, d.Schema.SensitiveDomain())
	if _, err := ix.Sum(masked, IncomeMidpoint); err == nil {
		t.Fatal("sensitive mask on SUM: want error")
	}
	// p = 0 releases reject sensitive predicates on both paths.
	pub0, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 4, P: 0, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	ix0, err := NewIndex(pub0)
	if err != nil {
		t.Fatal(err)
	}
	m := fullQuery(d.Schema)
	m.Sensitive = make([]bool, d.Schema.SensitiveDomain())
	m.Sensitive[0] = true
	if _, err := ix0.Count(m); err == nil {
		t.Fatal("sensitive predicate at p=0: want error")
	}
	if _, err := ix0.Sum(fullQuery(d.Schema), IncomeMidpoint); err == nil {
		t.Fatal("SUM at p=0: want error")
	}
	if _, err := NewIndex(nil); err == nil {
		t.Fatal("nil publication: want error")
	}
}

// Property over random workload seeds (quick.Check): indexed counts always
// match the scan within tolerance.
func TestIndexMatchesScanQuick(t *testing.T) {
	d, err := sal.Generate(4000, 28)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.3, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(pub)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, masked bool) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := WorkloadConfig{Queries: 4, QIFraction: 0.35, RestrictAttrs: 3, Rng: rng}
		if masked {
			cfg.SensitiveFraction = 0.3
		}
		qs, err := Workload(d.Schema, cfg)
		if err != nil {
			return false
		}
		for _, q := range qs {
			scan, err1 := Estimate(pub, q)
			idx, err2 := ix.Count(q)
			if err1 != nil || err2 != nil || !agree(scan, idx) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
