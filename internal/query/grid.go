package query

import (
	"fmt"
	"math"

	"pgpub/internal/dataset"
)

// The interval-grid layer of the Index: per-dim-pair summed-area tables that
// answer queries restricting at most two QI attributes in O(1) lookups —
// the shape Workload generates by default (RestrictAttrs 2) and the shape
// cmd/pgquery's -where flag usually builds. The region weight of a query is
//
//	b = Σ_i G_i · Π_j fraction_j(box_i, range_j)
//
// and each per-dim fraction is additive over domain cells (overlap/width =
// Σ_{cells in overlap} 1/width), so spreading every box's density
// G·(1/w_a)·(1/w_b) over its cell rectangle in the (a,b) plane and prefix-
// summing yields a table whose 3-d inclusion–exclusion (two QI dims plus
// the sensitive value) returns exactly the Σ G·vf·wv sums the estimators
// need. Queries restricting three or more attributes fall back to the
// kd traversal in index.go, which is exact for any shape.
//
// Memory is Σ_{a<b} (size_a+1)(size_b+1)(|U^s|+1) floats — ~7 MB for the
// 8-attribute SAL schema — and construction is O(4·#entries + #cells) per
// pair via the difference-array trick. Schemas whose pair tables would
// exceed gridCellBudget skip the grid layer entirely and serve every query
// from the tree.

// gridCellBudget caps the total float64 cells of all pair tables (4M cells
// = 32 MiB). SAL needs ~0.9M; schemas with very large QI domains fall back
// to the tree rather than allocate unbounded tables.
const gridCellBudget = 4 << 20

// pairGrid is the summed-area table of one dim pair (a < b):
// sat[u][v][y] = Σ of density over cells (u' < u, v' < v, y' < y), laid out
// flat with y fastest.
type pairGrid struct {
	a, b   int
	dv, dy int // padded extents of v and y (size_b+1, domain+1)
	sat    []float64
}

// at reads the table at padded coordinates.
func (g *pairGrid) at(u, v, y int32) float64 {
	return g.sat[(int(u)*g.dv+int(v))*g.dy+int(y)]
}

// rng is the 3-d inclusion–exclusion over inclusive cell ranges.
func (g *pairGrid) rng(u1, u2, v1, v2, y1, y2 int32) float64 {
	hi := g.at(u2+1, v2+1, y2+1) - g.at(u1, v2+1, y2+1) - g.at(u2+1, v1, y2+1) + g.at(u1, v1, y2+1)
	lo := g.at(u2+1, v2+1, y1) - g.at(u1, v2+1, y1) - g.at(u2+1, v1, y1) + g.at(u1, v1, y1)
	return hi - lo
}

// neumaierAxis prefix-sums buf along one axis with Neumaier compensation,
// keeping per-cell rounding error at a few ulps regardless of chain length —
// the grid's answers must stay within the 1e-9 scan-equivalence tolerance
// even at the far corner of the table.
//
// The axis is described by its stride and extent; outer iterates the
// product of the remaining extents via base offsets.
func neumaierAxis(buf []float64, bases []int, stride, extent int) {
	for _, base := range bases {
		sum, comp := 0.0, 0.0
		for i := 0; i < extent; i++ {
			x := buf[base+i*stride]
			t := sum + x
			if math.Abs(sum) >= math.Abs(x) {
				comp += (sum - t) + x
			} else {
				comp += (x - t) + sum
			}
			sum = t
			buf[base+i*stride] = sum + comp
		}
	}
}

// gridLayout enumerates the pair tables a schema gets, in canonical (a<b)
// order, and their total padded cell count. The layout is a pure function of
// the schema, which is what lets the serialized grid layer be one
// concatenated float block: reader and writer agree on every offset.
func gridLayout(s *dataset.Schema) (pairs [][2]int, sizes []int, total int) {
	d := s.D()
	dom := s.SensitiveDomain()
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			sz := (s.QI[a].Size() + 1) * (s.QI[b].Size() + 1) * (dom + 1)
			pairs = append(pairs, [2]int{a, b})
			sizes = append(sizes, sz)
			total += sz
		}
	}
	return pairs, sizes, total
}

// buildGrids constructs the pair tables; returns nil when the schema has
// fewer than two QI attributes or the tables would blow the cell budget.
// Every table is a sub-slice of the single returned backing array — the
// form the snapshot writer serializes and sliceGrids re-wraps.
func (ix *Index) buildGrids() ([]pairGrid, []float64) {
	d := ix.schema.D()
	dom := ix.schema.SensitiveDomain()
	if d < 2 {
		return nil, nil
	}
	pairs, sizes, total := gridLayout(ix.schema)
	if total > gridCellBudget {
		return nil, nil
	}
	backing := make([]float64, total)
	grids := make([]pairGrid, 0, len(pairs))
	off := 0
	for i, p := range pairs {
		grids = append(grids, ix.buildPair(p[0], p[1], dom, backing[off:off+sizes[i]:off+sizes[i]]))
		off += sizes[i]
	}
	return grids, backing
}

// sliceGrids re-wraps a deserialized grid backing array into pair tables.
// The backing must have exactly the schema's gridLayout total length.
func sliceGrids(s *dataset.Schema, backing []float64) ([]pairGrid, error) {
	pairs, sizes, total := gridLayout(s)
	if len(backing) != total {
		return nil, fmt.Errorf("query: grid backing has %d cells, schema needs %d", len(backing), total)
	}
	dom := s.SensitiveDomain()
	grids := make([]pairGrid, 0, len(pairs))
	off := 0
	for i, p := range pairs {
		grids = append(grids, pairGrid{
			a:   p[0],
			b:   p[1],
			dv:  s.QI[p[1]].Size() + 1,
			dy:  dom + 1,
			sat: backing[off : off+sizes[i] : off+sizes[i]],
		})
		off += sizes[i]
	}
	return grids, nil
}

// buildPair builds one pair table into the provided sat backing: corner
// difference updates per entry, two prefix passes to materialize the
// density, then the 3-d cumulative. The entry pass reads four contiguous
// dim-major bound streams plus the CSR histogram — cache-linear in the
// entry count.
func (ix *Index) buildPair(a, b, dom int, sat []float64) pairGrid {
	sa, sb := ix.schema.QI[a].Size(), ix.schema.QI[b].Size()
	du, dv := sa+1, sb+1
	// diff[u][v][y], y fastest, unpadded in y.
	diff := make([]float64, du*dv*dom)
	idx := func(u, v int32, y int32) int { return (int(u)*dv+int(v))*dom + int(y) }
	loA, hiA := ix.entLo[a*ix.nE:(a+1)*ix.nE], ix.entHi[a*ix.nE:(a+1)*ix.nE]
	loB, hiB := ix.entLo[b*ix.nE:(b+1)*ix.nE], ix.entHi[b*ix.nE:(b+1)*ix.nE]
	for i := 0; i < ix.nE; i++ {
		la, ha := loA[i], hiA[i]
		lb, hb := loB[i], hiB[i]
		inv := 1 / (float64(ha-la+1) * float64(hb-lb+1))
		for o := ix.valOff[i]; o < ix.valOff[i+1]; o++ {
			w := ix.valW[o] * inv
			code := ix.valCode[o]
			diff[idx(la, lb, code)] += w
			diff[idx(la, hb+1, code)] -= w
			diff[idx(ha+1, lb, code)] -= w
			diff[idx(ha+1, hb+1, code)] += w
		}
	}
	// Prefix along u then v turns the difference array into the density
	// D(u,v,y); entries at the padding row/column come out zero.
	ubases := make([]int, 0, dv*dom)
	for v := 0; v < dv; v++ {
		for y := 0; y < dom; y++ {
			ubases = append(ubases, v*dom+y)
		}
	}
	neumaierAxis(diff, ubases, dv*dom, du)
	vbases := make([]int, 0, du*dom)
	for u := 0; u < du; u++ {
		for y := 0; y < dom; y++ {
			vbases = append(vbases, u*dv*dom+y)
		}
	}
	neumaierAxis(diff, vbases, dom, dv)
	// Cumulate the density into the padded summed-area table.
	dy := dom + 1
	g := pairGrid{a: a, b: b, dv: dv, dy: dy, sat: sat}
	for u := 0; u < sa; u++ {
		for v := 0; v < sb; v++ {
			src := (u*dv + v) * dom
			dst := ((u+1)*dv + (v + 1)) * dy
			copy(g.sat[dst+1:dst+dy], diff[src:src+dom])
		}
	}
	satUBases := make([]int, 0, dv*dy)
	for v := 0; v < dv; v++ {
		for y := 0; y < dy; y++ {
			satUBases = append(satUBases, v*dy+y)
		}
	}
	neumaierAxis(g.sat, satUBases, dv*dy, du)
	satVBases := make([]int, 0, du*dy)
	for u := 0; u < du; u++ {
		for y := 0; y < dy; y++ {
			satVBases = append(satVBases, u*dv*dy+y)
		}
	}
	neumaierAxis(g.sat, satVBases, dy, dv)
	satYBases := make([]int, 0, du*dv)
	for u := 0; u < du; u++ {
		for v := 0; v < dv; v++ {
			satYBases = append(satYBases, (u*dv+v)*dy)
		}
	}
	neumaierAxis(g.sat, satYBases, 1, dy)
	return g
}

// gatherGrid answers a query restricting at most two attributes from the
// grid layer. ok is false when the grid cannot serve it — no tables, three
// or more restricted dims, or a region weight so close to zero that grid
// cancellation noise could hide a genuinely empty region (the caller then
// re-answers through the tree, whose zeros are exact).
func (ix *Index) gatherGrid(act []activeRange, v *valuer) (a, b float64, ok bool) {
	switch len(act) {
	case 0:
		// The full domain is served from the exact global aggregates.
		b = ix.totalG
		switch {
		case v.wv == nil:
		case v.band:
			a = ix.pref[v.hi+1] - ix.pref[v.lo]
		default:
			for code, h := range ix.hist {
				if h != 0 {
					a += h * v.wv[code]
				}
			}
		}
		return a, b, true
	case 1, 2:
		if ix.grids == nil {
			return 0, 0, false
		}
	default:
		return 0, 0, false
	}
	da, u1, u2 := act[0].dim, act[0].lo, act[0].hi
	var db int
	var v1, v2 int32
	if len(act) == 2 {
		db, v1, v2 = act[1].dim, act[1].lo, act[1].hi
	} else {
		db = ix.partner[da]
		v1, v2 = 0, int32(ix.schema.QI[db].Size()-1)
		if db < da {
			da, db = db, da
			u1, u2, v1, v2 = v1, v2, u1, u2
		}
	}
	g := &ix.grids[ix.pairIdx[da*ix.schema.D()+db]]
	dom := int32(ix.schema.SensitiveDomain())
	b = g.rng(u1, u2, v1, v2, 0, dom-1)
	if b < ix.tinyB {
		return 0, 0, false
	}
	switch {
	case v.wv == nil:
	case v.band:
		a = g.rng(u1, u2, v1, v2, v.lo, v.hi)
	default:
		for code, w := range v.wv {
			if w != 0 {
				a += w * g.rng(u1, u2, v1, v2, int32(code), int32(code))
			}
		}
	}
	return a, b, true
}
