// Package query implements aggregate COUNT/SUM/AVG estimation over a PG
// publication — the second utility mode the paper's framework supports
// besides decision trees. Stratified sampling makes D* a design-unbiased
// sample of the QI-groups (Chaudhuri et al. [8]): each published tuple
// represents its group with weight G. Range predicates over the QI
// attributes are resolved with the standard uniformity assumption inside a
// generalized cell, and predicates over the sensitive attribute are
// corrected for perturbation by inverse-probability weighting of the
// observed value (the same operator inversion the mining layer uses,
// applied per tuple).
//
// Two evaluation paths share the estimator math. The scan estimators
// (Estimate, EstimateNaive, EstimateSum, EstimateAvg — this file and
// aggregate.go) read the whole release per query and are the reference
// implementation. Index (index.go, grid.go, serve.go) precomputes per-box
// aggregates, an interval grid and a kd-tree from one publication and
// answers the same queries orders of magnitude faster; NewIndexObserved
// additionally records build/answer metrics (internal/obs). Workload
// generates random query sets and AnswerWorkload fans them across workers
// deterministically.
package query

import (
	"fmt"
	"math/rand"

	"pgpub/internal/dataset"
	"pgpub/internal/pg"
)

// Range is an inclusive code interval of one QI attribute.
type Range struct {
	Lo, Hi int32
}

// CountQuery is a conjunctive counting predicate: every QI attribute is
// restricted to a range (use the full domain for "no restriction"), and the
// sensitive attribute optionally to a value set.
type CountQuery struct {
	// QI holds one range per QI attribute, in schema order.
	QI []Range
	// Sensitive optionally masks the qualifying sensitive values; nil means
	// no sensitive restriction.
	Sensitive []bool
}

// validate checks the query against a schema.
func (q CountQuery) validate(s *dataset.Schema) error {
	if len(q.QI) != s.D() {
		return fmt.Errorf("query: %d QI ranges for %d attributes", len(q.QI), s.D())
	}
	for j, r := range q.QI {
		if r.Lo < 0 || int(r.Hi) >= s.QI[j].Size() || r.Lo > r.Hi {
			return fmt.Errorf("query: range %d = [%d,%d] invalid for %q", j, r.Lo, r.Hi, s.QI[j].Name)
		}
	}
	if q.Sensitive != nil && len(q.Sensitive) != s.SensitiveDomain() {
		return fmt.Errorf("query: sensitive mask over %d values, domain is %d",
			len(q.Sensitive), s.SensitiveDomain())
	}
	return nil
}

// sensitiveFraction returns |S|/|U^s| for the mask (1 when nil).
func (q CountQuery) sensitiveFraction(domain int) float64 {
	if q.Sensitive == nil {
		return 1
	}
	n := 0
	for _, in := range q.Sensitive {
		if in {
			n++
		}
	}
	return float64(n) / float64(domain)
}

// TrueCount evaluates the query against the microdata — the ground truth
// the estimators are judged against.
func TrueCount(d *dataset.Table, q CountQuery) (int, error) {
	if err := q.validate(d.Schema); err != nil {
		return 0, err
	}
	count := 0
rows:
	for i := 0; i < d.Len(); i++ {
		for j, r := range q.QI {
			if v := d.QI(i, j); v < r.Lo || v > r.Hi {
				continue rows
			}
		}
		if q.Sensitive != nil && !q.Sensitive[d.Sensitive(i)] {
			continue
		}
		count++
	}
	return count, nil
}

// Estimate computes the PG estimator of the query count from D* alone. The
// QI part uses the uniformity assumption inside each generalized box:
// B = Σ G · volFrac(box, q) estimates the number of microdata tuples in the
// query's QI region. The sensitive part inverts the perturbation operator
// *in aggregate*: with A = Σ G · volFrac · 1{y ∈ S},
//
//	count ≈ (A − (1−p) · |S|/|U^s| · B) / p,
//
// clamped to [0, B] at the end. Aggregating before inverting keeps the
// estimator unbiased — clamping per tuple would cancel the correction
// entirely, which is exactly the naive estimator's bias. p must be positive
// when the query restricts the sensitive attribute.
func Estimate(pub *pg.Published, q CountQuery) (float64, error) {
	if err := q.validate(pub.Schema); err != nil {
		return 0, err
	}
	domain := pub.Schema.SensitiveDomain()
	sf := q.sensitiveFraction(domain)
	if q.Sensitive != nil && pub.P <= 0 {
		return 0, fmt.Errorf("query: sensitive predicates need retention probability > 0, publication has p = %v", pub.P)
	}
	a, b := 0.0, 0.0
	for _, r := range pub.EnsureRows() {
		vf := volumeFraction(r.Box.Lo, r.Box.Hi, q.QI)
		if vf == 0 {
			continue
		}
		w := float64(r.G) * vf
		b += w
		if q.Sensitive == nil || q.Sensitive[r.Value] {
			a += w
		}
	}
	if q.Sensitive == nil {
		return b, nil
	}
	est := (a - (1-pub.P)*sf*b) / pub.P
	if est < 0 {
		est = 0
	}
	if est > b {
		est = b
	}
	return est, nil
}

// EstimateNaive is the uncorrected estimator (ŝ = 1{y∈S}) used by the
// ablation experiment: it treats perturbed values as exact, which biases
// counts toward (1-p)·|S|/|U^s| of everything.
func EstimateNaive(pub *pg.Published, q CountQuery) (float64, error) {
	if err := q.validate(pub.Schema); err != nil {
		return 0, err
	}
	total := 0.0
	for _, r := range pub.EnsureRows() {
		vf := volumeFraction(r.Box.Lo, r.Box.Hi, q.QI)
		if vf == 0 {
			continue
		}
		if q.Sensitive != nil && !q.Sensitive[r.Value] {
			continue
		}
		total += float64(r.G) * vf
	}
	return total, nil
}

// volumeFraction is the fraction of the box covered by the query ranges.
func volumeFraction(lo, hi []int32, ranges []Range) float64 {
	f := 1.0
	for j, r := range ranges {
		a, b := lo[j], hi[j]
		if r.Lo > a {
			a = r.Lo
		}
		if r.Hi < b {
			b = r.Hi
		}
		if a > b {
			return 0
		}
		f *= float64(b-a+1) / float64(hi[j]-lo[j]+1)
	}
	return f
}

// WorkloadConfig drives the random-query generator.
type WorkloadConfig struct {
	// Queries is the workload size.
	Queries int
	// QIFraction is the per-attribute expected range width as a fraction of
	// the domain (0.5 restricts each attribute to about half its values).
	QIFraction float64
	// RestrictAttrs is how many QI attributes each query restricts (the
	// rest keep their full domain). 0 restricts all.
	RestrictAttrs int
	// SensitiveFraction, when positive, adds a sensitive predicate covering
	// about this fraction of U^s (a contiguous code band).
	SensitiveFraction float64
	// Rng is required.
	Rng *rand.Rand
}

// Workload generates random conjunctive counting queries against a schema.
func Workload(s *dataset.Schema, cfg WorkloadConfig) ([]CountQuery, error) {
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("query: workload needs at least 1 query")
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("query: Rng is required")
	}
	if cfg.QIFraction <= 0 || cfg.QIFraction > 1 {
		return nil, fmt.Errorf("query: QIFraction %v outside (0,1]", cfg.QIFraction)
	}
	restrict := cfg.RestrictAttrs
	if restrict <= 0 || restrict > s.D() {
		restrict = s.D()
	}
	out := make([]CountQuery, 0, cfg.Queries)
	for qi := 0; qi < cfg.Queries; qi++ {
		q := CountQuery{QI: make([]Range, s.D())}
		for j, a := range s.QI {
			q.QI[j] = Range{Lo: 0, Hi: int32(a.Size() - 1)}
		}
		for _, j := range cfg.Rng.Perm(s.D())[:restrict] {
			size := s.QI[j].Size()
			width := int(cfg.QIFraction*float64(size) + 0.5)
			if width < 1 {
				width = 1
			}
			if width > size {
				width = size
			}
			lo := cfg.Rng.Intn(size - width + 1)
			q.QI[j] = Range{Lo: int32(lo), Hi: int32(lo + width - 1)}
		}
		if cfg.SensitiveFraction > 0 {
			domain := s.SensitiveDomain()
			width := int(cfg.SensitiveFraction*float64(domain) + 0.5)
			if width < 1 {
				width = 1
			}
			if width > domain {
				width = domain
			}
			lo := cfg.Rng.Intn(domain - width + 1)
			mask := make([]bool, domain)
			for x := lo; x < lo+width; x++ {
				mask[x] = true
			}
			q.Sensitive = mask
		}
		out = append(out, q)
	}
	return out, nil
}
