package query

import (
	"math/rand"
	"testing"

	"pgpub/internal/pg"
	"pgpub/internal/sal"
)

// benchServing publishes a SAL table once per benchmark binary and derives a
// mixed workload (QI-only restriction, sensitive band) like cmd/pgquery's.
func benchServing(b *testing.B, n, queries int) (*pg.Published, []CountQuery) {
	b.Helper()
	d, err := sal.Generate(n, 61)
	if err != nil {
		b.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.3, Seed: 62})
	if err != nil {
		b.Fatal(err)
	}
	qs, err := Workload(d.Schema, WorkloadConfig{
		Queries: queries, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.4,
		Rng: rand.New(rand.NewSource(63)),
	})
	if err != nil {
		b.Fatal(err)
	}
	return pub, qs
}

// BenchmarkCountScan is the reference per-query scan path.
func BenchmarkCountScan(b *testing.B) {
	pub, qs := benchServing(b, 20000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := Estimate(pub, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkIndexBuild is the one-time serving-index construction.
func BenchmarkIndexBuild(b *testing.B) {
	pub, _ := benchServing(b, 20000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewIndex(pub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexCount is the indexed per-query path, sequential.
func BenchmarkIndexCount(b *testing.B) {
	pub, qs := benchServing(b, 20000, 100)
	ix, err := NewIndex(pub)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := ix.Count(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAnswerWorkload is the batched parallel serving path.
func BenchmarkAnswerWorkload(b *testing.B) {
	pub, qs := benchServing(b, 20000, 100)
	ix, err := NewIndex(pub)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.AnswerWorkload(qs, 0); err != nil {
			b.Fatal(err)
		}
	}
}
