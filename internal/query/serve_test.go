package query

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"pgpub/internal/pg"
	"pgpub/internal/sal"
)

// The repo's parallelism invariant applied to serving: AnswerWorkload output
// is byte-identical for any worker count.
func TestAnswerWorkloadDeterminism(t *testing.T) {
	d, err := sal.Generate(5000, 41)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(pub)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	qs, err := Workload(d.Schema, WorkloadConfig{
		Queries: 200, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.4, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := ix.AnswerWorkload(qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	w8, err := ix.AnswerWorkload(qs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1 {
		if math.Float64bits(w1[i]) != math.Float64bits(w8[i]) {
			t.Fatalf("query %d: Workers=1 gives %v, Workers=8 gives %v", i, w1[i], w8[i])
		}
	}
	// And every batched answer is bit-identical to the single-query path.
	for i, q := range qs {
		v, err := ix.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(v) != math.Float64bits(w1[i]) {
			t.Fatalf("query %d: Count gives %v, AnswerWorkload gives %v", i, v, w1[i])
		}
	}
}

// Workload errors report the first failing query by position, independent of
// scheduling.
func TestAnswerWorkloadError(t *testing.T) {
	d, err := sal.Generate(800, 44)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 4, P: 0.3, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(pub)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]CountQuery, 8)
	for i := range qs {
		qs[i] = fullQuery(d.Schema)
	}
	qs[3].QI[0] = Range{Lo: 7, Hi: 2}
	qs[6].QI[0] = Range{Lo: 9, Hi: 1}
	for _, workers := range []int{1, 4} {
		ans, err := ix.AnswerWorkload(qs, workers)
		if err == nil || ans != nil {
			t.Fatalf("workers=%d: want error and nil answers, got %v, %v", workers, ans, err)
		}
		if !strings.Contains(err.Error(), "query 3") {
			t.Fatalf("workers=%d: error should name query 3, got %v", workers, err)
		}
	}
}

// An empty workload answers an empty slice.
func TestAnswerWorkloadEmpty(t *testing.T) {
	d, err := sal.Generate(800, 46)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 4, P: 0.3, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(pub)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ix.AnswerWorkload(nil, 4)
	if err != nil || len(ans) != 0 {
		t.Fatalf("empty workload: %v, %v", ans, err)
	}
}
