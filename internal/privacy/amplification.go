package privacy

import (
	"fmt"
	"math"
)

// Amplification returns the amplification factor γ of the uniform
// perturbation operator (Evfimievski, Gehrke, Srikant, PODS'03 [6]):
//
//	γ = max over a, a', b of P[a→b] / P[a'→b] = (p + u) / u
//
// with u = (1-p)/|U^s|. Statement 1 of [6] certifies absence of ρ₁-to-ρ₂
// breaches for a γ-amplifying operator when
// ρ₂(1-ρ₁) / (ρ₁(1-ρ₂)) >= γ — exactly the right-hand side of the paper's
// Inequality 23, which is how Theorem 2 inherits its guarantee: PG's
// sampling step only mixes the perturbed channel with an uninformative one
// (weight 1-h), so the amplification analysis applies to the h-weighted
// component. This function makes the connection executable; tests assert
// γ == the Theorem-2 threshold.
func Amplification(p float64, domain int) float64 {
	return theorem2RHS(p, domain)
}

// LocalDPEpsilon returns the ε for which the uniform perturbation operator
// with retention probability p over a domain of the given size satisfies
// ε-local differential privacy: the operator's likelihood ratios are bounded
// by γ = (p+u)/u, so ε = ln γ. This is the modern lens on the paper's
// perturbation phase — randomized response is the canonical local-DP
// mechanism — and lets PG deployments be compared against DP baselines
// (e.g. p = 0.3 over the 50-value Income domain is ε ≈ ln 22.4 ≈ 3.1).
func LocalDPEpsilon(p float64, domain int) float64 {
	return math.Log(Amplification(p, domain))
}

// RetentionForEpsilon inverts LocalDPEpsilon: the retention probability
// whose perturbation operator is exactly ε-local-DP. γ = e^ε gives
// p = (γ-1)/(γ-1+|U^s|).
func RetentionForEpsilon(eps float64, domain int) (float64, error) {
	if eps < 0 {
		return 0, fmt.Errorf("privacy: epsilon must be non-negative, got %v", eps)
	}
	gamma := math.Exp(eps)
	return (gamma - 1) / (gamma - 1 + float64(domain)), nil
}
