package privacy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCLDiversityGuarantee(t *testing.T) {
	// The paper's worked example: (1/2, 3)-diversity over a 100-value
	// domain gives prior 1/99 and posterior bound 1/3.
	g, err := CLDiversityGuarantee(0.5, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Prior-1.0/99) > 1e-15 {
		t.Fatalf("Prior = %v, want 1/99", g.Prior)
	}
	if math.Abs(g.Rho2-1.0/3) > 1e-15 {
		t.Fatalf("Rho2 = %v, want 1/3", g.Rho2)
	}
	if math.Abs(g.Growth-(1.0/3-1.0/99)) > 1e-15 {
		t.Fatalf("Growth = %v", g.Growth)
	}
	if _, err := CLDiversityGuarantee(0, 3, 100); err == nil {
		t.Fatal("c=0: want error")
	}
	if _, err := CLDiversityGuarantee(0.5, 1, 100); err == nil {
		t.Fatal("l=1: want error")
	}
	if _, err := CLDiversityGuarantee(0.5, 102, 100); err == nil {
		t.Fatal("l too large: want error")
	}
}

func TestLemma1Prior(t *testing.T) {
	// The paper's Figure-1 walkthrough: u=6, l=3, |U^s|=100 gives 5/99.
	got, err := Lemma1Prior(6, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5.0/99) > 1e-15 {
		t.Fatalf("Lemma1Prior = %v, want 5/99", got)
	}
	if _, err := Lemma1Prior(6, 1, 100); err == nil {
		t.Fatal("l < 2: want error")
	}
	if _, err := Lemma1Prior(1, 3, 100); err == nil {
		t.Fatal("u < l-1: want error")
	}
	if _, err := Lemma1Prior(200, 3, 100); err == nil {
		t.Fatal("u > domain: want error")
	}
	// In practice u << |U^s| keeps the prior far below 1, which is what
	// makes Lemma 1 damning: tiny prior, certain posterior.
	small, err := Lemma1Prior(6, 3, 1000)
	if err != nil || small > 0.01 {
		t.Fatalf("prior = %v, want < 0.01", small)
	}
}

func TestDownwardRho12(t *testing.T) {
	g, err := NewDownwardRho12(0.7, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Breached(0.7, 0.49) {
		t.Fatal("expected downward breach")
	}
	if g.Breached(0.69, 0.1) {
		t.Fatal("prior below rho1 cannot breach")
	}
	if g.Breached(0.8, 0.5) {
		t.Fatal("posterior at rho2 is not a breach")
	}
	if g.String() != "downward 0.7-to-0.5" {
		t.Fatalf("String = %q", g.String())
	}
	if _, err := NewDownwardRho12(0.5, 0.7); err == nil {
		t.Fatal("rho2 > rho1: want error")
	}
	if _, err := NewDownwardRho12(1.1, 0.5); err == nil {
		t.Fatal("rho1 > 1: want error")
	}
	up, err := g.Complement()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up.Rho1-0.3) > 1e-15 || math.Abs(up.Rho2-0.5) > 1e-15 {
		t.Fatalf("complement = %+v, want 0.3-to-0.5", up)
	}
}

// Footnote 1: every downward breach corresponds to an upward breach of the
// complement guarantee on the complement predicate.
func TestDownwardImpliedByUpward(t *testing.T) {
	f := func(r1Raw, r2Raw, priorRaw, postRaw uint16) bool {
		rho1 := 0.05 + float64(r1Raw%90)/100    // (0.05, 0.95)
		rho2 := rho1 * float64(r2Raw%100) / 101 // < rho1
		g, err := NewDownwardRho12(rho1, rho2)
		if err != nil {
			return false
		}
		prior := float64(priorRaw%1001) / 1000
		post := float64(postRaw%1001) / 1000
		return g.ImpliedByUpward(prior, post)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNoBreachTheorem2Downward(t *testing.T) {
	// At p=0.3, k=6 the upward 0.2-to-0.46 guarantee holds (Table III), so
	// the downward 0.8-to-0.54 guarantee holds by footnote 1.
	g, err := NewDownwardRho12(0.8, 0.54)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := NoBreachTheorem2Downward(0.3, 0.1, g, 6, 50)
	if err != nil || !ok {
		t.Fatalf("downward 0.8-to-0.54 should be certified: %v, %v", ok, err)
	}
	// A stricter downward target (0.8-to-0.56 means posterior must stay
	// above 0.56 — complement upward 0.2-to-0.44) fails, mirroring the
	// upward threshold.
	g2, err := NewDownwardRho12(0.8, 0.56)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = NoBreachTheorem2Downward(0.3, 0.1, g2, 6, 50)
	if err != nil || ok {
		t.Fatalf("downward 0.8-to-0.56 should NOT be certified: %v, %v", ok, err)
	}
	// Degenerate complement.
	g3 := DownwardRho12{Rho1: 1, Rho2: 0.5}
	if _, err := NoBreachTheorem2Downward(0.3, 0.1, g3, 6, 50); err == nil {
		t.Fatal("rho1=1: want error")
	}
}
