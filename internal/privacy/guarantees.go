package privacy

import "fmt"

// Guarantee is a background-sensitive guarantee (Section II-B): a constraint
// relating an adversary's prior and posterior confidence.
type Guarantee interface {
	// Breached reports whether the (prior, posterior) pair violates the
	// guarantee.
	Breached(prior, post float64) bool
	// String names the guarantee.
	String() string
}

// Rho12 is the ρ₁-to-ρ₂ guarantee of Definition 2 (after Evfimievski et
// al. [6]): if the prior confidence is at most ρ₁, the posterior must not
// exceed ρ₂. Upward breaches only, per the paper's footnote 1.
type Rho12 struct {
	Rho1, Rho2 float64
}

// NewRho12 validates 0 <= ρ₁ < ρ₂ <= 1.
func NewRho12(rho1, rho2 float64) (Rho12, error) {
	if !(rho1 >= 0 && rho1 < rho2 && rho2 <= 1) {
		return Rho12{}, fmt.Errorf("privacy: need 0 <= rho1 < rho2 <= 1, got %v, %v", rho1, rho2)
	}
	return Rho12{Rho1: rho1, Rho2: rho2}, nil
}

// Breached implements Guarantee: a ρ₁-to-ρ₂ breach occurs iff prior <= ρ₁
// and posterior > ρ₂. A powerful adversary (prior > ρ₁) never constitutes a
// breach of this guarantee.
func (g Rho12) Breached(prior, post float64) bool {
	return prior <= g.Rho1 && post > g.Rho2
}

// String implements Guarantee.
func (g Rho12) String() string { return fmt.Sprintf("%g-to-%g", g.Rho1, g.Rho2) }

// DeltaGrowth is the Δ-growth guarantee of Definition 3: the posterior may
// exceed the prior by at most Δ, whatever the prior.
type DeltaGrowth struct {
	Delta float64
}

// NewDeltaGrowth validates Δ in (0, 1].
func NewDeltaGrowth(delta float64) (DeltaGrowth, error) {
	if !(delta > 0 && delta <= 1) {
		return DeltaGrowth{}, fmt.Errorf("privacy: need delta in (0,1], got %v", delta)
	}
	return DeltaGrowth{Delta: delta}, nil
}

// Breached implements Guarantee.
func (g DeltaGrowth) Breached(prior, post float64) bool {
	return post-prior > g.Delta
}

// String implements Guarantee.
func (g DeltaGrowth) String() string { return fmt.Sprintf("%g-growth", g.Delta) }

// Implies reports the paper's observation that setting Δ = ρ₂ - ρ₁ makes
// the Δ-growth guarantee subsume the ρ₁-to-ρ₂ one: whenever the Δ-growth
// guarantee holds for Δ <= ρ₂-ρ₁, no ρ₁-to-ρ₂ breach is possible.
func (g DeltaGrowth) Implies(r Rho12) bool {
	return g.Delta <= r.Rho2-r.Rho1
}
