package privacy

import "fmt"

// This file implements the posterior-confidence derivation of Section V-B:
// given the observed (possibly perturbed) sensitive value y of the crucial
// tuple and the probability h that the victim owns that tuple, the
// adversary's posterior pdf over the victim's true value follows
// Equations 9 and 12.

// ConditionalGivenY returns P[X = x | Y = y] for all x (Equation 12):
//
//	P[X=x | Y=y] = P[X=x] · P[x→y] / (p·P[X=y] + (1-p)/|U^s|)
//
// where P[x→y] is the uniform-perturbation transition probability of
// Equation 11.
func ConditionalGivenY(prior PDF, y int32, p float64) (PDF, error) {
	n := len(prior)
	if y < 0 || int(y) >= n {
		return nil, fmt.Errorf("privacy: observed value %d outside domain of %d", y, n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("privacy: p = %v outside [0,1]", p)
	}
	u := (1 - p) / float64(n)
	den := p*prior[y] + u
	out := make(PDF, n)
	if den == 0 {
		// p = 1 and prior[y] = 0: observing y is impossible under this
		// prior; the conditional is undefined. Fall back to the prior.
		copy(out, prior)
		return out, nil
	}
	for x := range out {
		trans := u
		if int32(x) == y {
			trans += p
		}
		out[x] = prior[x] * trans / den
	}
	return out, nil
}

// Posterior returns the adversary's posterior pdf P[X = x | y]
// (Equation 9): with probability h the victim owns the crucial tuple and the
// conditional applies; with probability 1-h the published table says nothing
// about the victim and the background knowledge stands.
func Posterior(prior PDF, y int32, p, h float64) (PDF, error) {
	if h < 0 || h > 1 {
		return nil, fmt.Errorf("privacy: h = %v outside [0,1]", h)
	}
	cond, err := ConditionalGivenY(prior, y, p)
	if err != nil {
		return nil, err
	}
	out := make(PDF, len(prior))
	for x := range out {
		out[x] = h*cond[x] + (1-h)*prior[x]
	}
	return out, nil
}

// PosteriorConfidence evaluates Equation 10: the posterior confidence about
// predicate Q after observing y.
func PosteriorConfidence(prior PDF, q Predicate, y int32, p, h float64) (float64, error) {
	post, err := Posterior(prior, y, p, h)
	if err != nil {
		return 0, err
	}
	return post.Confidence(q)
}
