// Package privacy implements the paper's privacy formalism: λ-skewed
// background knowledge (Definition 4), the ρ₁-to-ρ₂ and Δ-growth
// background-sensitive guarantees (Definitions 2 and 3), the posterior
// derivation of Section V-B (Equations 5–12), and the formal results of
// Section VI (Inequality 20 and Theorems 1–3), including the closed-form
// bounds that generate Table III and the parameter solver that picks the
// maximum retention probability p meeting a target guarantee level.
package privacy

import (
	"fmt"
	"math"
)

// PDF is a probability density function over the sensitive domain U^s,
// modelling an adversary's background knowledge about a victim's sensitive
// value (Definition 4): PDF[x] = P[X = x].
type PDF []float64

// Uniform returns the zero-knowledge pdf: every value equally likely. Its
// skew is the minimum possible, 1/|U^s|.
func Uniform(n int) PDF {
	p := make(PDF, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}

// PointMass returns the pdf of an adversary who is certain the victim's
// value is x (skew 1; no protection possible, per the paper's remark).
func PointMass(n int, x int32) (PDF, error) {
	if x < 0 || int(x) >= n {
		return nil, fmt.Errorf("privacy: point mass at %d outside domain of %d", x, n)
	}
	p := make(PDF, n)
	p[x] = 1
	return p, nil
}

// Excluding returns the pdf of an adversary who has ruled out the given
// values and considers all others equally likely — the background knowledge
// type targeted by (c,l)-diversity (Section III-A): excluding l-2 values
// yields prior 1/(|U^s|-l+2) for each remaining value.
func Excluding(n int, excluded ...int32) (PDF, error) {
	out := make(PDF, n)
	ex := make(map[int32]bool, len(excluded))
	for _, x := range excluded {
		if x < 0 || int(x) >= n {
			return nil, fmt.Errorf("privacy: excluded value %d outside domain of %d", x, n)
		}
		ex[x] = true
	}
	remain := n - len(ex)
	if remain <= 0 {
		return nil, fmt.Errorf("privacy: excluding all %d values leaves an empty support", n)
	}
	for i := range out {
		if !ex[int32(i)] {
			out[i] = 1 / float64(remain)
		}
	}
	return out, nil
}

// Validate checks non-negativity and unit mass.
func (p PDF) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("privacy: empty pdf")
	}
	sum := 0.0
	for i, v := range p {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("privacy: pdf[%d] = %v", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("privacy: pdf sums to %v, want 1", sum)
	}
	return nil
}

// Skew returns max_x P[X = x], the λ of Definition 4: the pdf is λ-skewed
// for every λ >= Skew().
func (p PDF) Skew() float64 {
	m := 0.0
	for _, v := range p {
		if v > m {
			m = v
		}
	}
	return m
}

// Clone deep-copies the pdf.
func (p PDF) Clone() PDF { return append(PDF(nil), p...) }

// Predicate is the attack target Q: the set of sensitive values satisfying
// the adversary's (arbitrarily complex) condition, as a membership mask over
// U^s (the paper's Q(X)).
type Predicate []bool

// ExactReconstruction returns the predicate Q_r : o.A^s = r, the special
// form targeted by (c,l)-diversity.
func ExactReconstruction(n int, r int32) (Predicate, error) {
	if r < 0 || int(r) >= n {
		return nil, fmt.Errorf("privacy: value %d outside domain of %d", r, n)
	}
	q := make(Predicate, n)
	q[r] = true
	return q, nil
}

// PredicateOf builds a predicate from a value set.
func PredicateOf(n int, values ...int32) (Predicate, error) {
	q := make(Predicate, n)
	for _, v := range values {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("privacy: value %d outside domain of %d", v, n)
		}
		q[v] = true
	}
	return q, nil
}

// Holds reports whether the predicate is satisfied by value y.
func (q Predicate) Holds(y int32) bool { return y >= 0 && int(y) < len(q) && q[y] }

// Confidence returns sum over x in Q(X) of P[X = x] — Equation 5 when
// applied to a prior pdf, Equation 10 when applied to a posterior pdf.
func (p PDF) Confidence(q Predicate) (float64, error) {
	if len(q) != len(p) {
		return 0, fmt.Errorf("privacy: predicate over %d values, pdf over %d", len(q), len(p))
	}
	c := 0.0
	for x, in := range q {
		if in {
			c += p[x]
		}
	}
	return c, nil
}
