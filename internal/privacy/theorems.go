package privacy

import (
	"fmt"
	"math"
)

// This file carries the formal results of Section VI. Throughout, u denotes
// (1-p)/|U^s|, the off-diagonal transition probability of Equation 11.

// HTop returns h⊤, the right-hand side of Inequality 20: the upper bound on
// the probability h that the crucial tuple belongs to the victim, for
// λ-skewed background knowledge, retention probability p, group-size floor k
// and sensitive-domain cardinality domain.
func HTop(p, lambda float64, k, domain int) float64 {
	u := (1 - p) / float64(domain)
	return (p*lambda + u) / (p*lambda + float64(k)*u)
}

// theorem2RHS is 1 + p / ((1-p)/|U^s|), the right-hand side of
// Inequality 23. It diverges as p -> 1.
func theorem2RHS(p float64, domain int) float64 {
	if p >= 1 {
		return math.Inf(1)
	}
	return 1 + p*float64(domain)/(1-p)
}

// Theorem2Holds reports whether Theorem 2's sufficient condition holds:
// with parameters (p, k) and λ-skewed knowledge, no ρ₁-to-ρ₂ breach can
// happen. ρ₁ must lie in (0,1) and ρ₂ in (ρ₁,1].
func Theorem2Holds(p, lambda, rho1, rho2 float64, k, domain int) (bool, error) {
	if rho1 <= 0 || rho1 >= 1 {
		return false, fmt.Errorf("privacy: rho1 = %v outside (0,1)", rho1)
	}
	if rho2 <= rho1 || rho2 > 1 {
		return false, fmt.Errorf("privacy: rho2 = %v outside (rho1,1]", rho2)
	}
	h := HTop(p, lambda, k, domain)
	rho2p := (rho2 - rho1*(1-h)) / h
	if rho2p <= rho1 {
		return false, nil
	}
	if rho2p >= 1 {
		return true, nil
	}
	lhs := rho2p * (1 - rho1) / (rho1 * (1 - rho2p))
	return lhs >= theorem2RHS(p, domain), nil
}

// MinRho2 returns the smallest ρ₂ for which Theorem 2 certifies absence of
// ρ₁-to-ρ₂ breaches at the given parameters: the equality point of
// Inequality 23 mapped back through ρ₂ = h⊤·ρ₂' + (1-h⊤)·ρ₁. This is the
// generator of the ρ₂ rows of Table III.
func MinRho2(p, lambda, rho1 float64, k, domain int) (float64, error) {
	if rho1 <= 0 || rho1 >= 1 {
		return 0, fmt.Errorf("privacy: rho1 = %v outside (0,1)", rho1)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("privacy: p = %v outside [0,1]", p)
	}
	h := HTop(p, lambda, k, domain)
	if p >= 1 {
		return 1, nil
	}
	r := theorem2RHS(p, domain)
	rho2p := r * rho1 / (1 - rho1 + r*rho1)
	rho2 := h*rho2p + (1-h)*rho1
	if rho2 > 1 {
		rho2 = 1
	}
	return rho2, nil
}

// F is the function of Theorem 3: F(w) = (-p·w² + p·w) / (p·w + u) with
// u = (1-p)/|U^s|.
func F(w, p float64, domain int) float64 {
	u := (1 - p) / float64(domain)
	den := p*w + u
	if den == 0 {
		return 0
	}
	return (-p*w*w + p*w) / den
}

// Wm is the maximizer of F on (0,1): w_m = (sqrt(u² + p·u) - u) / p.
func Wm(p float64, domain int) float64 {
	if p == 0 {
		// F ≡ 0; any point maximizes. Return 0 by convention.
		return 0
	}
	u := (1 - p) / float64(domain)
	return (math.Sqrt(u*u+p*u) - u) / p
}

// MinDelta returns the smallest Δ for which Theorem 3 certifies absence of
// Δ-growth breaches: h⊤·F(λ) when λ <= w_m, else h⊤·F(w_m). This is the
// generator of the Δ rows of Table III. At p = 1 the bound degenerates to 1
// (no useful guarantee), mirroring the supremum of F as u -> 0.
func MinDelta(p, lambda float64, k, domain int) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("privacy: p = %v outside [0,1]", p)
	}
	if lambda <= 0 || lambda > 1 {
		return 0, fmt.Errorf("privacy: lambda = %v outside (0,1]", lambda)
	}
	if p == 1 {
		return 1, nil
	}
	h := HTop(p, lambda, k, domain)
	wm := Wm(p, domain)
	w := lambda
	if lambda > wm {
		w = wm
	}
	return h * F(w, p, domain), nil
}

// Theorem3Holds reports whether Theorem 3 certifies absence of Δ-growth
// breaches at the given parameters.
func Theorem3Holds(p, lambda, delta float64, k, domain int) (bool, error) {
	min, err := MinDelta(p, lambda, k, domain)
	if err != nil {
		return false, err
	}
	return delta >= min-1e-12, nil
}

// MaxRetentionRho12 returns the largest retention probability p in [0,1]
// such that Theorem 2 still certifies the ρ₁-to-ρ₂ guarantee (Section VI,
// last paragraph: "p is set to the minimum value that guarantees absence of
// the corresponding breaches" — minimal perturbation means maximal p).
// It returns an error when even p = 0 cannot meet the target.
func MaxRetentionRho12(lambda, rho1, rho2 float64, k, domain int) (float64, error) {
	check := func(p float64) bool {
		m, err := MinRho2(p, lambda, rho1, k, domain)
		return err == nil && m <= rho2+1e-12
	}
	if !check(0) {
		return 0, fmt.Errorf("privacy: no retention probability meets the %g-to-%g guarantee (k=%d)", rho1, rho2, k)
	}
	return bisectMaxP(check), nil
}

// MaxRetentionDelta returns the largest p in [0,1] such that Theorem 3
// still certifies the Δ-growth guarantee.
func MaxRetentionDelta(lambda, delta float64, k, domain int) (float64, error) {
	check := func(p float64) bool {
		m, err := MinDelta(p, lambda, k, domain)
		return err == nil && m <= delta+1e-12
	}
	if !check(0) {
		return 0, fmt.Errorf("privacy: no retention probability meets the %g-growth guarantee (k=%d)", delta, k)
	}
	return bisectMaxP(check), nil
}

// bisectMaxP finds sup{p in [0,1] : check(p)} assuming check is monotone
// (true below the threshold). check(0) must be true.
func bisectMaxP(check func(float64) bool) float64 {
	if check(1) {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if check(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
