package privacy

import (
	"math"
	"testing"
	"testing/quick"
)

// The experiment constants of Section VII-C: λ = 0.1, ρ₁ = 0.2, |U^s| = 50
// (the SAL Income domain).
const (
	expLambda = 0.1
	expRho1   = 0.2
	expDomain = 50
)

// TestTableIIIA reproduces Table III(a): p = 0.3, k in {2,4,6,8,10}. The
// paper prints two decimals; we assert our closed forms land within one unit
// in the second decimal of the printed values (the paper mixes rounding and
// truncation) and match independently hand-derived values to 1e-3.
func TestTableIIIA(t *testing.T) {
	cases := []struct {
		k          int
		paperRho2  float64
		paperDelta float64
		exactRho2  float64
		exactDelta float64
	}{
		{2, 0.69, 0.47, 0.6921, 0.4655},
		{4, 0.53, 0.31, 0.5320, 0.3140},
		{6, 0.45, 0.24, 0.4504, 0.2369},
		{8, 0.40, 0.19, 0.4010, 0.1902},
		{10, 0.36, 0.16, 0.3679, 0.1588},
	}
	const p = 0.3
	for _, c := range cases {
		rho2, err := MinRho2(p, expLambda, expRho1, c.k, expDomain)
		if err != nil {
			t.Fatalf("MinRho2(k=%d): %v", c.k, err)
		}
		delta, err := MinDelta(p, expLambda, c.k, expDomain)
		if err != nil {
			t.Fatalf("MinDelta(k=%d): %v", c.k, err)
		}
		if math.Abs(rho2-c.exactRho2) > 1e-3 {
			t.Errorf("k=%d: MinRho2 = %.4f, want %.4f", c.k, rho2, c.exactRho2)
		}
		if math.Abs(delta-c.exactDelta) > 1e-3 {
			t.Errorf("k=%d: MinDelta = %.4f, want %.4f", c.k, delta, c.exactDelta)
		}
		if math.Abs(rho2-c.paperRho2) > 0.011 {
			t.Errorf("k=%d: MinRho2 = %.4f, paper prints %.2f", c.k, rho2, c.paperRho2)
		}
		if math.Abs(delta-c.paperDelta) > 0.011 {
			t.Errorf("k=%d: MinDelta = %.4f, paper prints %.2f", c.k, delta, c.paperDelta)
		}
	}
}

// TestTableIIIB reproduces Table III(b): k = 6, p in {0.15..0.45}.
func TestTableIIIB(t *testing.T) {
	cases := []struct {
		p          float64
		paperRho2  float64
		paperDelta float64
	}{
		{0.15, 0.34, 0.12},
		{0.20, 0.38, 0.16},
		{0.25, 0.41, 0.20},
		{0.30, 0.45, 0.24},
		{0.35, 0.49, 0.28},
		{0.40, 0.52, 0.32},
		{0.45, 0.56, 0.36},
	}
	const k = 6
	for _, c := range cases {
		rho2, err := MinRho2(c.p, expLambda, expRho1, k, expDomain)
		if err != nil {
			t.Fatalf("MinRho2(p=%v): %v", c.p, err)
		}
		delta, err := MinDelta(c.p, expLambda, k, expDomain)
		if err != nil {
			t.Fatalf("MinDelta(p=%v): %v", c.p, err)
		}
		if math.Abs(rho2-c.paperRho2) > 0.011 {
			t.Errorf("p=%v: MinRho2 = %.4f, paper prints %.2f", c.p, rho2, c.paperRho2)
		}
		if math.Abs(delta-c.paperDelta) > 0.011 {
			t.Errorf("p=%v: MinDelta = %.4f, paper prints %.2f", c.p, delta, c.paperDelta)
		}
	}
}

func TestHTopProperties(t *testing.T) {
	// k = 1 gives h⊤ = 1 (no grouping, the tuple surely belongs to someone
	// among 1 candidate).
	if got := HTop(0.3, 0.1, 1, 50); math.Abs(got-1) > 1e-12 {
		t.Fatalf("HTop(k=1) = %v, want 1", got)
	}
	// h⊤ decreases in k and increases in p and λ.
	f := func(pRaw, lRaw uint16, k1Raw, k2Raw uint8) bool {
		p := float64(pRaw%1000) / 1000 // [0, 0.999]
		l := 1/50.0 + float64(lRaw%1000)/1000*(1-1/50.0)
		k1 := int(k1Raw%20) + 1
		k2 := k1 + int(k2Raw%20) + 1
		h1 := HTop(p, l, k1, 50)
		h2 := HTop(p, l, k2, 50)
		if h2 > h1+1e-12 {
			return false
		}
		if HTop(p, l, k1, 50) > HTop(math.Min(p+0.1, 1), l, k1, 50)+1e-12 {
			return false
		}
		return h1 >= 0 && h1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinRho2Extremes(t *testing.T) {
	// p = 0: total perturbation leaks nothing, so MinRho2 = ρ₁.
	got, err := MinRho2(0, expLambda, expRho1, 6, expDomain)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-expRho1) > 1e-12 {
		t.Fatalf("MinRho2(p=0) = %v, want rho1 = %v", got, expRho1)
	}
	// p = 1: no perturbation, the bound collapses to 1.
	got, err = MinRho2(1, expLambda, expRho1, 6, expDomain)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("MinRho2(p=1) = %v, want 1", got)
	}
	if _, err := MinRho2(0.3, expLambda, 0, 6, expDomain); err == nil {
		t.Fatal("rho1 = 0: want error")
	}
	if _, err := MinRho2(0.3, expLambda, 1, 6, expDomain); err == nil {
		t.Fatal("rho1 = 1: want error")
	}
	if _, err := MinRho2(-0.1, expLambda, expRho1, 6, expDomain); err == nil {
		t.Fatal("negative p: want error")
	}
}

func TestMinDeltaExtremes(t *testing.T) {
	got, err := MinDelta(0, expLambda, 6, expDomain)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("MinDelta(p=0) = %v, want 0", got)
	}
	got, err = MinDelta(1, expLambda, 6, expDomain)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("MinDelta(p=1) = %v, want 1", got)
	}
	if _, err := MinDelta(0.3, 0, 6, expDomain); err == nil {
		t.Fatal("lambda = 0: want error")
	}
	if _, err := MinDelta(1.5, expLambda, 6, expDomain); err == nil {
		t.Fatal("p > 1: want error")
	}
}

func TestFAndWm(t *testing.T) {
	const p, domain = 0.3, 50
	wm := Wm(p, domain)
	// Hand-derived: u = 0.014, w_m = (sqrt(0.000196+0.0042)-0.014)/0.3.
	want := (math.Sqrt(0.000196+0.0042) - 0.014) / 0.3
	if math.Abs(wm-want) > 1e-12 {
		t.Fatalf("Wm = %v, want %v", wm, want)
	}
	// F peaks at w_m: values on both sides are smaller.
	fm := F(wm, p, domain)
	if F(wm*0.5, p, domain) > fm || F(math.Min(wm*1.5, 1), p, domain) > fm {
		t.Fatal("F does not peak at Wm")
	}
	if F(0, p, domain) != 0 {
		t.Fatal("F(0) must be 0")
	}
	if Wm(0, domain) != 0 {
		t.Fatal("Wm(p=0) must be 0 by convention")
	}
	if F(0.5, 0, domain) != 0 {
		t.Fatal("F must vanish at p = 0")
	}
}

func TestTheorem2And3Holds(t *testing.T) {
	// From Table III: at p=0.3, k=6, the 0.2-to-0.46 guarantee holds but
	// 0.2-to-0.44 does not.
	ok, err := Theorem2Holds(0.3, expLambda, expRho1, 0.46, 6, expDomain)
	if err != nil || !ok {
		t.Fatalf("Theorem2Holds(0.46) = %v, %v; want true", ok, err)
	}
	ok, err = Theorem2Holds(0.3, expLambda, expRho1, 0.44, 6, expDomain)
	if err != nil || ok {
		t.Fatalf("Theorem2Holds(0.44) = %v, %v; want false", ok, err)
	}
	if _, err := Theorem2Holds(0.3, expLambda, 0, 0.5, 6, expDomain); err == nil {
		t.Fatal("rho1=0: want error")
	}
	if _, err := Theorem2Holds(0.3, expLambda, 0.4, 0.3, 6, expDomain); err == nil {
		t.Fatal("rho2<rho1: want error")
	}
	ok, err = Theorem3Holds(0.3, expLambda, 0.24, 6, expDomain)
	if err != nil || !ok {
		t.Fatalf("Theorem3Holds(0.24) = %v, %v; want true", ok, err)
	}
	ok, err = Theorem3Holds(0.3, expLambda, 0.22, 6, expDomain)
	if err != nil || ok {
		t.Fatalf("Theorem3Holds(0.22) = %v, %v; want false", ok, err)
	}
	if _, err := Theorem3Holds(2, expLambda, 0.2, 6, expDomain); err == nil {
		t.Fatal("p>1: want error")
	}
}

// MinRho2 and MinDelta are consistent with the Holds predicates: the bound
// is the threshold of certifiability.
func TestBoundsAreThresholds(t *testing.T) {
	f := func(pRaw, kRaw uint8) bool {
		p := 0.05 + float64(pRaw%90)/100 // [0.05, 0.94]
		k := int(kRaw%12) + 2
		r2, err := MinRho2(p, expLambda, expRho1, k, expDomain)
		if err != nil {
			return false
		}
		if r2 < 1 {
			ok, err := Theorem2Holds(p, expLambda, expRho1, math.Min(r2+1e-6, 1), k, expDomain)
			if err != nil || !ok {
				return false
			}
		}
		if expRho1 < r2-1e-6 && r2-1e-6 > expRho1+1e-9 {
			ok, err := Theorem2Holds(p, expLambda, expRho1, r2-1e-6, k, expDomain)
			if err != nil || ok {
				return false
			}
		}
		d, err := MinDelta(p, expLambda, k, expDomain)
		if err != nil {
			return false
		}
		ok, err := Theorem3Holds(p, expLambda, d, k, expDomain)
		return err == nil && ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxRetention(t *testing.T) {
	// Solving for p then evaluating the bound must hit the target (within
	// bisection tolerance), and p slightly larger must overshoot.
	p, err := MaxRetentionRho12(expLambda, expRho1, 0.45, 6, expDomain)
	if err != nil {
		t.Fatalf("MaxRetentionRho12: %v", err)
	}
	r2, _ := MinRho2(p, expLambda, expRho1, 6, expDomain)
	if r2 > 0.45+1e-6 {
		t.Fatalf("solved p=%v gives rho2=%v > 0.45", p, r2)
	}
	r2hi, _ := MinRho2(math.Min(p+1e-3, 1), expLambda, expRho1, 6, expDomain)
	if r2hi <= 0.45 {
		t.Fatalf("p not maximal: p+eps still satisfies (rho2=%v)", r2hi)
	}
	// Table III cross-check: at k=6 the 0.2-to-0.45 level allows p ~ 0.30.
	if math.Abs(p-0.2996) > 0.01 {
		t.Fatalf("solved p = %v, expected about 0.30 per Table III", p)
	}

	pd, err := MaxRetentionDelta(expLambda, 0.24, 6, expDomain)
	if err != nil {
		t.Fatalf("MaxRetentionDelta: %v", err)
	}
	d, _ := MinDelta(pd, expLambda, 6, expDomain)
	if d > 0.24+1e-6 {
		t.Fatalf("solved p=%v gives delta=%v > 0.24", pd, d)
	}
	if math.Abs(pd-0.3036) > 0.01 {
		t.Fatalf("solved p = %v, expected about 0.30 per Table III", pd)
	}

	// Unreachable targets: rho2 < rho1 is rejected upstream by MinRho2's
	// contract; a delta of ~0 is reachable only at p = 0.
	p0, err := MaxRetentionDelta(expLambda, 1e-12, 6, expDomain)
	if err != nil {
		t.Fatalf("tiny delta: %v", err)
	}
	if p0 > 1e-6 {
		t.Fatalf("tiny delta should force p ~ 0, got %v", p0)
	}
	// A 1-growth target is met even at p = 1.
	p1, err := MaxRetentionDelta(expLambda, 1, 6, expDomain)
	if err != nil || p1 != 1 {
		t.Fatalf("delta=1 should allow p=1, got %v, %v", p1, err)
	}
}

// The amplification factor of [6] must coincide with Theorem 2's threshold:
// gamma = (p+u)/u with u = (1-p)/|U^s|.
func TestAmplificationMatchesTheorem2(t *testing.T) {
	for _, p := range []float64{0, 0.15, 0.3, 0.45, 0.9} {
		u := (1 - p) / 50
		want := (p + u) / u
		if got := Amplification(p, 50); math.Abs(got-want) > 1e-12 {
			t.Fatalf("p=%v: gamma = %v, want %v", p, got, want)
		}
	}
	if !math.IsInf(Amplification(1, 50), 1) {
		t.Fatal("gamma at p=1 must be infinite")
	}
}

// The local-DP bridge: epsilon = ln(gamma), and RetentionForEpsilon inverts
// it exactly.
func TestLocalDPEpsilon(t *testing.T) {
	eps := LocalDPEpsilon(0.3, 50)
	want := math.Log(1 + 0.3*50/0.7)
	if math.Abs(eps-want) > 1e-12 {
		t.Fatalf("epsilon = %v, want %v", eps, want)
	}
	// p = 0 is perfectly private: epsilon 0.
	if LocalDPEpsilon(0, 50) != 0 {
		t.Fatal("epsilon at p=0 must be 0")
	}
	// Round trip.
	p, err := RetentionForEpsilon(eps, 50)
	if err != nil || math.Abs(p-0.3) > 1e-12 {
		t.Fatalf("RetentionForEpsilon = %v, %v; want 0.3", p, err)
	}
	p0, err := RetentionForEpsilon(0, 50)
	if err != nil || p0 != 0 {
		t.Fatalf("epsilon 0 -> p = %v, %v", p0, err)
	}
	if _, err := RetentionForEpsilon(-1, 50); err == nil {
		t.Fatal("negative epsilon: want error")
	}
}
