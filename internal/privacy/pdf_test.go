package privacy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniform(t *testing.T) {
	p := Uniform(50)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Skew()-0.02) > 1e-12 {
		t.Fatalf("Skew = %v, want 0.02", p.Skew())
	}
}

func TestPointMass(t *testing.T) {
	p, err := PointMass(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Skew() != 1 || p[3] != 1 {
		t.Fatal("point mass wrong")
	}
	if _, err := PointMass(10, 10); err == nil {
		t.Fatal("out-of-domain point mass: want error")
	}
	if _, err := PointMass(10, -1); err == nil {
		t.Fatal("negative point mass: want error")
	}
}

func TestExcluding(t *testing.T) {
	// The (c,l)-diversity background type: excluding l-2 values yields
	// prior 1/(|U^s|-l+2) per Equation 2. With |U^s|=100, l=3 (exclude 1
	// value), the prior for any remaining value is 1/99.
	p, err := Excluding(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p[7] != 0 {
		t.Fatal("excluded value must have zero mass")
	}
	if math.Abs(p[0]-1.0/99) > 1e-15 {
		t.Fatalf("prior = %v, want 1/99", p[0])
	}
	// Duplicated exclusions count once.
	p2, err := Excluding(10, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2[0]-1.0/8) > 1e-15 {
		t.Fatalf("prior = %v, want 1/8", p2[0])
	}
	if _, err := Excluding(3, 0, 1, 2); err == nil {
		t.Fatal("excluding everything: want error")
	}
	if _, err := Excluding(3, 5); err == nil {
		t.Fatal("excluding out-of-domain: want error")
	}
}

func TestValidateErrors(t *testing.T) {
	if err := (PDF{}).Validate(); err == nil {
		t.Fatal("empty pdf: want error")
	}
	if err := (PDF{0.5, 0.4}).Validate(); err == nil {
		t.Fatal("deficient mass: want error")
	}
	if err := (PDF{1.5, -0.5}).Validate(); err == nil {
		t.Fatal("negative mass: want error")
	}
	if err := (PDF{math.NaN(), 1}).Validate(); err == nil {
		t.Fatal("NaN mass: want error")
	}
}

func TestPredicates(t *testing.T) {
	q, err := ExactReconstruction(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Holds(2) || q.Holds(1) || q.Holds(-1) || q.Holds(5) {
		t.Fatal("ExactReconstruction membership wrong")
	}
	if _, err := ExactReconstruction(5, 5); err == nil {
		t.Fatal("out-of-domain: want error")
	}
	q2, err := PredicateOf(5, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.Holds(0) || !q2.Holds(4) || q2.Holds(2) {
		t.Fatal("PredicateOf membership wrong")
	}
	if _, err := PredicateOf(5, 9); err == nil {
		t.Fatal("out-of-domain: want error")
	}
	p := Uniform(5)
	c, err := p.Confidence(q2)
	if err != nil || math.Abs(c-0.4) > 1e-12 {
		t.Fatalf("Confidence = %v, %v; want 0.4", c, err)
	}
	if _, err := p.Confidence(Predicate{true}); err == nil {
		t.Fatal("length mismatch: want error")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := Uniform(4)
	c := p.Clone()
	c[0] = 0.9
	if p[0] == 0.9 {
		t.Fatal("Clone shares storage")
	}
}

// Property: Posterior is a valid pdf and reduces to the prior at h = 0 or
// p = 0 (observing a totally perturbed value is uninformative).
func TestPosteriorProperties(t *testing.T) {
	f := func(seed int64, yRaw, pRaw, hRaw uint8) bool {
		n := 8
		// Build a random pdf from the seed.
		raw := make(PDF, n)
		s := uint64(seed)
		sum := 0.0
		for i := range raw {
			s = s*6364136223846793005 + 1442695040888963407
			raw[i] = float64(s%1000) + 1
			sum += raw[i]
		}
		for i := range raw {
			raw[i] /= sum
		}
		y := int32(yRaw) % int32(n)
		p := float64(pRaw%101) / 100
		h := float64(hRaw%101) / 100

		post, err := Posterior(raw, y, p, h)
		if err != nil {
			return false
		}
		if err := post.Validate(); err != nil {
			return false
		}
		// h = 0: posterior == prior.
		p0, err := Posterior(raw, y, p, 0)
		if err != nil {
			return false
		}
		for i := range p0 {
			if math.Abs(p0[i]-raw[i]) > 1e-12 {
				return false
			}
		}
		// p = 0: conditional == prior, so posterior == prior for any h.
		pp, err := Posterior(raw, y, 0, h)
		if err != nil {
			return false
		}
		for i := range pp {
			if math.Abs(pp[i]-raw[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Theorem 1 (the posterior-confidence form): when the observed value y does
// not satisfy Q, the posterior confidence never exceeds the prior.
func TestTheorem1(t *testing.T) {
	f := func(seed int64, yRaw, pRaw, hRaw, qBits uint8) bool {
		n := 8
		raw := make(PDF, n)
		s := uint64(seed)
		sum := 0.0
		for i := range raw {
			s = s*2862933555777941757 + 3037000493
			raw[i] = float64(s%1000) + 1
			sum += raw[i]
		}
		for i := range raw {
			raw[i] /= sum
		}
		y := int32(yRaw) % int32(n)
		p := float64(pRaw%101) / 100
		h := float64(hRaw%101) / 100
		q := make(Predicate, n)
		for i := 0; i < n; i++ {
			q[i] = qBits&(1<<i) != 0
		}
		q[y] = false // force y ∉ Q
		prior, err := raw.Confidence(q)
		if err != nil {
			return false
		}
		post, err := PosteriorConfidence(raw, q, y, p, h)
		if err != nil {
			return false
		}
		return post <= prior+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConditionalGivenY(t *testing.T) {
	// Uniform prior, p = 1: conditional is a point mass at y.
	cond, err := ConditionalGivenY(Uniform(4), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cond[2] != 1 || cond[0] != 0 {
		t.Fatalf("cond = %v, want point mass at 2", cond)
	}
	// p = 1 with prior[y] = 0: impossible observation falls back to prior.
	pm, _ := PointMass(4, 0)
	cond, err = ConditionalGivenY(pm, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cond[0] != 1 {
		t.Fatalf("impossible observation: cond = %v, want prior", cond)
	}
	if _, err := ConditionalGivenY(Uniform(4), 9, 0.5); err == nil {
		t.Fatal("y out of domain: want error")
	}
	if _, err := ConditionalGivenY(Uniform(4), 1, 1.5); err == nil {
		t.Fatal("p out of range: want error")
	}
	if _, err := Posterior(Uniform(4), 1, 0.5, -0.1); err == nil {
		t.Fatal("h out of range: want error")
	}
}

func TestGuarantees(t *testing.T) {
	g, err := NewRho12(0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's example: prior bounded by 0.3, posterior exceeding 0.5 is
	// a breach...
	if !g.Breached(0.3, 0.51) {
		t.Fatal("expected breach")
	}
	// ...but a prior above 0.3 never constitutes a 0.3-to-0.5 breach.
	if g.Breached(0.31, 0.99) {
		t.Fatal("powerful adversary must not count as breach")
	}
	if g.Breached(0.3, 0.5) {
		t.Fatal("posterior exactly at rho2 is not a breach")
	}
	if g.String() != "0.3-to-0.5" {
		t.Fatalf("String = %q", g.String())
	}
	if _, err := NewRho12(0.5, 0.3); err == nil {
		t.Fatal("rho1 >= rho2: want error")
	}
	if _, err := NewRho12(-0.1, 0.3); err == nil {
		t.Fatal("negative rho1: want error")
	}

	d, err := NewDeltaGrowth(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Breached(0.05, 0.26) || d.Breached(0.05, 0.25) {
		t.Fatal("DeltaGrowth.Breached wrong")
	}
	if d.String() != "0.2-growth" {
		t.Fatalf("String = %q", d.String())
	}
	if _, err := NewDeltaGrowth(0); err == nil {
		t.Fatal("delta = 0: want error")
	}
	if _, err := NewDeltaGrowth(1.1); err == nil {
		t.Fatal("delta > 1: want error")
	}
	// Δ = ρ₂ - ρ₁ subsumes the ρ₁-to-ρ₂ guarantee.
	if !d.Implies(g) {
		t.Fatal("0.2-growth must imply 0.3-to-0.5")
	}
	if (DeltaGrowth{Delta: 0.21}).Implies(g) {
		t.Fatal("0.21-growth must not imply 0.3-to-0.5")
	}
}

// Property: when y satisfies Q, the posterior confidence is monotone
// non-decreasing in h — more certainty of ownership can only help the
// adversary (the structural fact behind bounding h by h-top in Theorems
// 2 and 3).
func TestPosteriorMonotoneInH(t *testing.T) {
	f := func(seed int64, yRaw, pRaw, h1Raw, h2Raw, qBits uint8) bool {
		n := 8
		raw := make(PDF, n)
		s := uint64(seed)
		sum := 0.0
		for i := range raw {
			s = s*6364136223846793005 + 1442695040888963407
			raw[i] = float64(s%1000) + 1
			sum += raw[i]
		}
		for i := range raw {
			raw[i] /= sum
		}
		y := int32(yRaw) % int32(n)
		p := float64(pRaw%101) / 100
		h1 := float64(h1Raw%101) / 100
		h2 := float64(h2Raw%101) / 100
		if h1 > h2 {
			h1, h2 = h2, h1
		}
		q := make(Predicate, n)
		for i := 0; i < n; i++ {
			q[i] = qBits&(1<<i) != 0
		}
		q[y] = true // force y ∈ Q
		c1, err := PosteriorConfidence(raw, q, y, p, h1)
		if err != nil {
			return false
		}
		c2, err := PosteriorConfidence(raw, q, y, p, h2)
		if err != nil {
			return false
		}
		return c2 >= c1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
