package privacy

import (
	"fmt"
	"math"
)

// This file captures the guarantee calculus of Section III: what
// (c,l)-diversity can and cannot promise, quantitatively. It exists so the
// comparison between conventional generalization and PG is computable, not
// just narrated.

// CLGuarantee is the background-sensitive guarantee (c,l)-diversity provides
// for the *exact reconstruction* predicate Q_r under its own background-
// knowledge assumption (the adversary has excluded l-2 values):
// prior = 1/(|U^s|-l+2) (Equation 2) and posterior <= c/(c+1)
// (Inequality 3). The implied guarantees are prior-to-Rho2 and
// (Rho2 - prior)-growth.
type CLGuarantee struct {
	Prior  float64 // Equation 2
	Rho2   float64 // c/(c+1), Inequality 3
	Growth float64 // Rho2 - Prior
}

// CLDiversityGuarantee computes the guarantee for parameters (c, l) over a
// sensitive domain. Requires c > 0 and 2 <= l <= |U^s|+1 so the prior is
// well-defined.
func CLDiversityGuarantee(c float64, l, domain int) (CLGuarantee, error) {
	if c <= 0 {
		return CLGuarantee{}, fmt.Errorf("privacy: c must be positive, got %v", c)
	}
	if l < 2 || l > domain+1 {
		return CLGuarantee{}, fmt.Errorf("privacy: l = %d outside [2, %d]", l, domain+1)
	}
	prior := 1 / float64(domain-l+2)
	rho2 := c / (c + 1)
	return CLGuarantee{Prior: prior, Rho2: rho2, Growth: rho2 - prior}, nil
}

// Lemma1Prior is the prior confidence of the worst-case predicate attack of
// Lemma 1: with u the smallest number of distinct sensitive values in any
// QI-group, the adversary's prior about "o.A^s is one of the group's
// remaining u-l+2 values" equals (u-l+2)/(|U^s|-l+2) — and the posterior is
// 1, so no x-to-anything or growth guarantee short of the trivial one holds.
func Lemma1Prior(u, l, domain int) (float64, error) {
	if l < 2 {
		return 0, fmt.Errorf("privacy: l = %d must be at least 2", l)
	}
	if u < l-1 {
		return 0, fmt.Errorf("privacy: u = %d cannot be below l-1 = %d", u, l-1)
	}
	if domain < u {
		return 0, fmt.Errorf("privacy: domain %d smaller than u = %d", domain, u)
	}
	return float64(u-l+2) / float64(domain-l+2), nil
}

// DownwardRho12 is the downward counterpart of Definition 2 (the paper's
// footnote 1, after Evfimievski et al. [6]): a downward ρ₁-to-ρ₂ breach
// occurs when an adversary whose prior confidence is at least ρ₁ ends with
// posterior confidence below ρ₂ — the publication convinced them a true-ish
// fact is false.
type DownwardRho12 struct {
	Rho1, Rho2 float64
}

// NewDownwardRho12 validates 0 <= ρ₂ < ρ₁ <= 1.
func NewDownwardRho12(rho1, rho2 float64) (DownwardRho12, error) {
	if !(rho2 >= 0 && rho2 < rho1 && rho1 <= 1) {
		return DownwardRho12{}, fmt.Errorf("privacy: need 0 <= rho2 < rho1 <= 1, got rho1=%v rho2=%v", rho1, rho2)
	}
	return DownwardRho12{Rho1: rho1, Rho2: rho2}, nil
}

// Breached implements Guarantee.
func (g DownwardRho12) Breached(prior, post float64) bool {
	return prior >= g.Rho1 && post < g.Rho2
}

// String implements Guarantee.
func (g DownwardRho12) String() string {
	return fmt.Sprintf("downward %g-to-%g", g.Rho1, g.Rho2)
}

// Complement returns the upward guarantee whose absence of breaches implies
// the absence of this downward guarantee's breaches (footnote 1): no upward
// (1-ρ₁)-to-(1-ρ₂) breach ⇒ no downward ρ₁-to-ρ₂ breach. The implication
// works through the complement predicate ¬Q: the adversary's confidence
// about ¬Q is one minus the confidence about Q.
func (g DownwardRho12) Complement() (Rho12, error) {
	return NewRho12(1-g.Rho1, 1-g.Rho2)
}

// ImpliedByUpward checks the footnote-1 implication numerically for a
// concrete (prior, posterior) pair: if the pair breaches this downward
// guarantee, the complementary pair must breach the upward complement.
func (g DownwardRho12) ImpliedByUpward(prior, post float64) bool {
	if !g.Breached(prior, post) {
		return true
	}
	up, err := g.Complement()
	if err != nil {
		return false
	}
	return up.Breached(1-prior, 1-post)
}

// NoBreachTheorem2Downward reports whether Theorem 2 certifies absence of
// downward ρ₁-to-ρ₂ breaches at the given PG parameters, via the footnote-1
// reduction to the upward (1-ρ₁)-to-(1-ρ₂) guarantee.
func NoBreachTheorem2Downward(p, lambda float64, g DownwardRho12, k, domain int) (bool, error) {
	up, err := g.Complement()
	if err != nil {
		return false, err
	}
	if up.Rho1 <= 0 || up.Rho1 >= 1 {
		// Degenerate complements (ρ₁ = 1 or 0) fall outside Theorem 2's
		// hypothesis; only the trivial guarantees apply.
		return false, fmt.Errorf("privacy: complement rho1 = %v outside (0,1)", up.Rho1)
	}
	min, err := MinRho2(p, lambda, up.Rho1, k, domain)
	if err != nil {
		return false, err
	}
	return min <= up.Rho2+1e-12 && !math.IsNaN(min), nil
}
