package mining

import (
	"testing"
)

// buildSimpleTree grows a depth-1 threshold tree on feature 0 of a 10-value
// ordered domain: codes <= 4 are class 0, codes >= 5 are class 1.
func buildSimpleTree(t *testing.T) *Tree {
	t.Helper()
	ds := mustDataset(t, []int{10}, []bool{true}, 2)
	for v := int32(0); v < 10; v++ {
		c := 0
		if v >= 5 {
			c = 1
		}
		for rep := 0; rep < 10; rep++ {
			if err := ds.Add([]int32{v}, c, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	tree, err := Build(ds, Config{MinLeafWeight: 5})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestRelabelFlipsLabels(t *testing.T) {
	tree := buildSimpleTree(t)
	// An inverted labelling dataset: the structure stands, but labels swap.
	inv := mustDataset(t, []int{10}, []bool{true}, 2)
	for v := int32(0); v < 10; v++ {
		c := 1
		if v >= 5 {
			c = 0
		}
		for rep := 0; rep < 10; rep++ {
			if err := inv.Add([]int32{v}, c, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tree.Relabel(inv, 1, nil); err != nil {
		t.Fatal(err)
	}
	if tree.Predict([]int32{0}) != 1 || tree.Predict([]int32{9}) != 0 {
		t.Fatal("relabel did not flip leaf labels")
	}
}

func TestRelabelFallsBackToParent(t *testing.T) {
	tree := buildSimpleTree(t)
	// A labelling dataset that only reaches the left branch: right leaves
	// get no mass and must inherit the (relabelled) parent's label.
	left := mustDataset(t, []int{10}, []bool{true}, 2)
	for rep := 0; rep < 20; rep++ {
		if err := left.Add([]int32{0}, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Relabel(left, 5, nil); err != nil {
		t.Fatal(err)
	}
	// All mass is class 1 at the root, so both branches must predict 1.
	if tree.Predict([]int32{0}) != 1 || tree.Predict([]int32{9}) != 1 {
		t.Fatal("starved leaves must inherit the root label")
	}
}

func TestRelabelWithAdjust(t *testing.T) {
	tree := buildSimpleTree(t)
	same := mustDataset(t, []int{10}, []bool{true}, 2)
	for v := int32(0); v < 10; v++ {
		c := 0
		if v >= 5 {
			c = 1
		}
		if err := same.Add([]int32{v}, c, 10); err != nil {
			t.Fatal(err)
		}
	}
	swap := func(obs []float64) []float64 { return []float64{obs[1], obs[0]} }
	if err := tree.Relabel(same, 1, swap); err != nil {
		t.Fatal(err)
	}
	if tree.Predict([]int32{0}) != 1 || tree.Predict([]int32{9}) != 0 {
		t.Fatal("adjust hook ignored during relabel")
	}
}

func TestRelabelEmptyDataset(t *testing.T) {
	tree := buildSimpleTree(t)
	empty := mustDataset(t, []int{10}, []bool{true}, 2)
	if err := tree.Relabel(empty, 1, nil); err == nil {
		t.Fatal("empty relabel dataset: want error")
	}
}

func TestRelabelCategoricalUnseenCode(t *testing.T) {
	// A categorical tree; relabel rows whose codes miss some children.
	ds := mustDataset(t, []int{3}, []bool{false}, 2)
	for v := int32(0); v < 3; v++ {
		c := int(v % 2)
		for rep := 0; rep < 20; rep++ {
			if err := ds.Add([]int32{v}, c, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	tree, err := Build(ds, Config{MinLeafWeight: 5})
	if err != nil {
		t.Fatal(err)
	}
	relabel := mustDataset(t, []int{3}, []bool{false}, 2)
	for rep := 0; rep < 10; rep++ {
		if err := relabel.Add([]int32{0}, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Relabel(relabel, 1, nil); err != nil {
		t.Fatal(err)
	}
	// Code 0's leaf saw only class 1 in the relabel set.
	if tree.Predict([]int32{0}) != 1 {
		t.Fatal("relabel of categorical child failed")
	}
}

func TestEntropyCriterion(t *testing.T) {
	// Entropy and Gini should both learn a clean threshold.
	ds := mustDataset(t, []int{10}, []bool{true}, 2)
	for v := int32(0); v < 10; v++ {
		c := 0
		if v >= 3 {
			c = 1
		}
		for rep := 0; rep < 15; rep++ {
			if err := ds.Add([]int32{v}, c, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	tree, err := Build(ds, Config{MinLeafWeight: 5, Criterion: Entropy})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Predict([]int32{0}) != 0 || tree.Predict([]int32{9}) != 1 {
		t.Fatal("entropy criterion failed to learn the threshold")
	}
	if Gini.String() != "gini" || Entropy.String() != "entropy" {
		t.Fatal("Criterion.String")
	}
	if Criterion(9).String() == "" {
		t.Fatal("unknown criterion string empty")
	}
}

func TestPruneCollapsesOverfitSubtrees(t *testing.T) {
	// Training data with a spurious second-level pattern that does not hold
	// on the validation set: pruning must collapse it.
	train := mustDataset(t, []int{2, 2}, []bool{false, false}, 2)
	val := mustDataset(t, []int{2, 2}, []bool{false, false}, 2)
	// Feature 0 is the real signal; feature 1 is noise that happens to
	// correlate in training only.
	for rep := 0; rep < 30; rep++ {
		train.Add([]int32{0, 0}, 0, 1)
		train.Add([]int32{0, 1}, 0, 1)
		train.Add([]int32{1, 0}, 1, 1)
	}
	for rep := 0; rep < 10; rep++ {
		train.Add([]int32{1, 1}, 0, 1) // spurious: makes the tree split on f1
	}
	for rep := 0; rep < 30; rep++ {
		val.Add([]int32{0, 0}, 0, 1)
		val.Add([]int32{0, 1}, 0, 1)
		val.Add([]int32{1, 0}, 1, 1)
		val.Add([]int32{1, 1}, 1, 1) // in validation, f0 alone decides
	}
	tree, err := Build(train, Config{MinLeafWeight: 2, MinGain: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	before := tree.Size()
	pruned, err := tree.Prune(val)
	if err != nil {
		t.Fatal(err)
	}
	if pruned == 0 || tree.Size() >= before {
		t.Fatalf("expected pruning: pruned=%d size %d -> %d", pruned, before, tree.Size())
	}
	// After pruning, the validation-optimal behaviour must hold.
	if tree.Predict([]int32{1, 1}) != 1 {
		t.Fatal("pruned tree must follow the validation signal")
	}
	if _, err := tree.Prune(mustDataset(t, []int{2, 2}, []bool{false, false}, 2)); err == nil {
		t.Fatal("empty validation set: want error")
	}
}

func TestPruneKeepsGoodSubtrees(t *testing.T) {
	// When the validation set confirms the structure, nothing collapses.
	ds := mustDataset(t, []int{4}, []bool{true}, 2)
	for v := int32(0); v < 4; v++ {
		c := 0
		if v >= 2 {
			c = 1
		}
		for rep := 0; rep < 20; rep++ {
			ds.Add([]int32{v}, c, 1)
		}
	}
	tree, err := Build(ds, Config{MinLeafWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := tree.Size()
	pruned, err := tree.Prune(ds)
	if err != nil {
		t.Fatal(err)
	}
	if pruned != 0 || tree.Size() != before {
		t.Fatalf("confirmed structure was pruned: %d, %d -> %d", pruned, before, tree.Size())
	}
}
