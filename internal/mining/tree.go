// Package mining implements the decision-tree substrate of the utility
// evaluation (Section VII): a weighted Gini-split tree grower in the spirit
// of SLIQ [17] for the optimistic/pessimistic yardsticks, and a
// reconstruction-weighted variant for mining PG output directly (the
// substitute for the unavailable tech report [12], see DESIGN.md §3): class
// histograms are corrected for the known perturbation operator before split
// scoring and leaf labelling, and every published tuple carries its stratum
// size G as an instance weight.
package mining

import (
	"fmt"
	"math"
)

// Dataset is a weighted, integer-coded training set. Feature j of every row
// is a code in [0, NumValues[j]); Ordered[j] marks features whose codes
// carry a natural order (threshold splits) versus categorical ones (multiway
// splits).
type Dataset struct {
	NumValues  []int
	Ordered    []bool
	NumClasses int

	rows    [][]int32
	class   []int
	weights []float64
}

// NewDataset creates an empty dataset with the given feature layout.
func NewDataset(numValues []int, ordered []bool, numClasses int) (*Dataset, error) {
	if len(numValues) == 0 {
		return nil, fmt.Errorf("mining: dataset needs at least one feature")
	}
	if len(ordered) != len(numValues) {
		return nil, fmt.Errorf("mining: %d ordered flags for %d features", len(ordered), len(numValues))
	}
	for j, n := range numValues {
		if n < 1 {
			return nil, fmt.Errorf("mining: feature %d has %d values", j, n)
		}
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("mining: need at least 2 classes, got %d", numClasses)
	}
	return &Dataset{
		NumValues:  append([]int(nil), numValues...),
		Ordered:    append([]bool(nil), ordered...),
		NumClasses: numClasses,
	}, nil
}

// Add appends one weighted training row. The features slice is retained.
func (ds *Dataset) Add(features []int32, class int, weight float64) error {
	if len(features) != len(ds.NumValues) {
		return fmt.Errorf("mining: row has %d features, dataset wants %d", len(features), len(ds.NumValues))
	}
	for j, v := range features {
		if v < 0 || int(v) >= ds.NumValues[j] {
			return fmt.Errorf("mining: feature %d code %d out of [0,%d)", j, v, ds.NumValues[j])
		}
	}
	if class < 0 || class >= ds.NumClasses {
		return fmt.Errorf("mining: class %d out of [0,%d)", class, ds.NumClasses)
	}
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("mining: weight must be positive and finite, got %v", weight)
	}
	ds.rows = append(ds.rows, features)
	ds.class = append(ds.class, class)
	ds.weights = append(ds.weights, weight)
	return nil
}

// Len returns the number of training rows.
func (ds *Dataset) Len() int { return len(ds.rows) }

// Config tunes tree growth.
type Config struct {
	// MaxDepth caps the tree depth (root = depth 0). Default 12.
	MaxDepth int
	// MinLeafWeight is the smallest total weight a node may have and still
	// be split. Default 50.
	MinLeafWeight float64
	// MinGain is the minimum Gini-impurity reduction a split must achieve.
	// Default 1e-4.
	MinGain float64
	// Adjust optionally corrects an observed class histogram before it is
	// used for impurity and labelling — the reconstruction hook for
	// perturbed data. It must return a non-negative histogram of the same
	// length; nil means identity.
	Adjust func(obs []float64) []float64
	// Criterion selects the impurity measure (default Gini).
	Criterion Criterion
}

func (c *Config) setDefaults() {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeafWeight <= 0 {
		c.MinLeafWeight = 50
	}
	if c.MinGain <= 0 {
		c.MinGain = 1e-4
	}
}

// node is one tree node. Leaves have feature == -1. Ordered splits route
// code <= threshold left; categorical splits route by exact code, falling
// back to the node's own label for unseen codes.
type node struct {
	label   int
	feature int

	threshold   int32
	left, right *node

	children map[int32]*node
}

// Tree is a trained decision tree.
type Tree struct {
	root  *node
	nodes int
	depth int
}

// Size returns the number of nodes.
func (t *Tree) Size() int { return t.nodes }

// Depth returns the maximum depth (root = 0).
func (t *Tree) Depth() int { return t.depth }

// Build grows a decision tree on the dataset.
func Build(ds *Dataset, cfg Config) (*Tree, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("mining: empty dataset")
	}
	cfg.setDefaults()
	b := &builder{ds: ds, cfg: cfg}
	rows := make([]int, ds.Len())
	for i := range rows {
		rows[i] = i
	}
	t := &Tree{}
	t.root = b.grow(rows, 0, t)
	return t, nil
}

type builder struct {
	ds  *Dataset
	cfg Config
}

// histogram accumulates the weighted class counts of a row set.
func (b *builder) histogram(rows []int) []float64 {
	h := make([]float64, b.ds.NumClasses)
	for _, i := range rows {
		h[b.ds.class[i]] += b.ds.weights[i]
	}
	return h
}

// adjust applies the reconstruction hook, clamping negatives.
func (b *builder) adjust(h []float64) []float64 {
	if b.cfg.Adjust == nil {
		return h
	}
	out := b.cfg.Adjust(h)
	for i, v := range out {
		if v < 0 || math.IsNaN(v) {
			out[i] = 0
		}
	}
	return out
}

// gini returns the Gini impurity of a histogram and its total mass.
func gini(h []float64) (float64, float64) {
	total := 0.0
	for _, v := range h {
		total += v
	}
	if total == 0 {
		return 0, 0
	}
	g := 1.0
	for _, v := range h {
		p := v / total
		g -= p * p
	}
	return g, total
}

// argmax returns the index of the largest histogram entry.
func argmax(h []float64) int {
	best, bi := math.Inf(-1), 0
	for i, v := range h {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

func (b *builder) grow(rows []int, depth int, t *Tree) *node {
	t.nodes++
	if depth > t.depth {
		t.depth = depth
	}
	hist := b.adjust(b.histogram(rows))
	n := &node{label: argmax(hist), feature: -1}
	g, total := impurity(hist, b.cfg.Criterion)
	if depth >= b.cfg.MaxDepth || total < 2*b.cfg.MinLeafWeight || g == 0 {
		return n
	}
	feat, thr, parts, gain := b.bestSplit(rows, g, total)
	if feat < 0 || gain < b.cfg.MinGain {
		return n
	}
	n.feature = feat
	if b.ds.Ordered[feat] {
		n.threshold = thr
		n.left = b.grow(parts[0], depth+1, t)
		n.right = b.grow(parts[1], depth+1, t)
	} else {
		n.children = make(map[int32]*node, len(parts))
		for _, part := range parts {
			if len(part) == 0 {
				continue
			}
			code := b.ds.rows[part[0]][feat]
			n.children[code] = b.grow(part, depth+1, t)
		}
	}
	return n
}

// bestSplit scans all features and returns the best split: the feature, the
// threshold (ordered only), the row partitions (2 for ordered, one per
// present code for categorical), and the impurity gain. feature < 0 means no
// usable split.
func (b *builder) bestSplit(rows []int, parentGini, total float64) (feature int, threshold int32, parts [][]int, gain float64) {
	feature = -1
	for f := range b.ds.NumValues {
		if b.ds.Ordered[f] {
			thr, g, ok := b.bestThreshold(rows, f, parentGini, total)
			if ok && g > gain {
				left, right := b.partitionOrdered(rows, f, thr)
				if len(left) > 0 && len(right) > 0 {
					feature, threshold, parts, gain = f, thr, [][]int{left, right}, g
				}
			}
			continue
		}
		g, ok := b.categoricalGain(rows, f, parentGini, total)
		if ok && g > gain {
			feature, threshold, gain = f, 0, g
			parts = b.partitionCategorical(rows, f)
		}
	}
	return feature, threshold, parts, gain
}

// bestThreshold scans thresholds of an ordered feature using per-value class
// matrices and prefix sums.
func (b *builder) bestThreshold(rows []int, f int, parentGini, total float64) (int32, float64, bool) {
	nv, nc := b.ds.NumValues[f], b.ds.NumClasses
	mat := make([]float64, nv*nc)
	for _, i := range rows {
		mat[int(b.ds.rows[i][f])*nc+b.ds.class[i]] += b.ds.weights[i]
	}
	left := make([]float64, nc)
	right := b.histogram(rows)
	bestGain, bestThr, found := 0.0, int32(0), false
	for v := 0; v < nv-1; v++ {
		empty := true
		for c := 0; c < nc; c++ {
			w := mat[v*nc+c]
			if w != 0 {
				empty = false
			}
			left[c] += w
			right[c] -= w
		}
		if empty {
			continue
		}
		gl, wl := impurity(b.adjust(append([]float64(nil), left...)), b.cfg.Criterion)
		gr, wr := impurity(b.adjust(append([]float64(nil), right...)), b.cfg.Criterion)
		if wl == 0 || wr == 0 {
			continue
		}
		split := (wl*gl + wr*gr) / (wl + wr)
		if g := parentGini - split; g > bestGain {
			bestGain, bestThr, found = g, int32(v), true
		}
	}
	return bestThr, bestGain, found
}

// categoricalGain computes the impurity reduction of the multiway split.
func (b *builder) categoricalGain(rows []int, f int, parentGini, total float64) (float64, bool) {
	nc := b.ds.NumClasses
	hists := make(map[int32][]float64)
	for _, i := range rows {
		code := b.ds.rows[i][f]
		h := hists[code]
		if h == nil {
			h = make([]float64, nc)
			hists[code] = h
		}
		h[b.ds.class[i]] += b.ds.weights[i]
	}
	if len(hists) < 2 {
		return 0, false
	}
	split, wsum := 0.0, 0.0
	for _, h := range hists {
		g, w := impurity(b.adjust(h), b.cfg.Criterion)
		split += g * w
		wsum += w
	}
	if wsum == 0 {
		return 0, false
	}
	return parentGini - split/wsum, true
}

func (b *builder) partitionOrdered(rows []int, f int, thr int32) (left, right []int) {
	for _, i := range rows {
		if b.ds.rows[i][f] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return left, right
}

func (b *builder) partitionCategorical(rows []int, f int) [][]int {
	byCode := make(map[int32][]int)
	for _, i := range rows {
		byCode[b.ds.rows[i][f]] = append(byCode[b.ds.rows[i][f]], i)
	}
	parts := make([][]int, 0, len(byCode))
	for _, p := range byCode {
		parts = append(parts, p)
	}
	return parts
}

// Relabel recomputes every node's class label from an independent dataset
// ("honest" labelling): each row is routed down the tree, accumulating class
// histograms at every node it passes; labels are then re-derived top-down
// with adjust applied, and a node whose accumulated weight falls below
// minWeight inherits its parent's label. This removes the winner's-curse
// bias of labelling leaves with the same (noisy) data that selected the
// splits — essential when adjust is a variance-amplifying reconstruction.
func (t *Tree) Relabel(ds *Dataset, minWeight float64, adjust func([]float64) []float64) error {
	if len(ds.rows) == 0 {
		return fmt.Errorf("mining: relabel with an empty dataset")
	}
	hists := make(map[*node][]float64)
	get := func(n *node) []float64 {
		h := hists[n]
		if h == nil {
			h = make([]float64, ds.NumClasses)
			hists[n] = h
		}
		return h
	}
	for i, feats := range ds.rows {
		n := t.root
		for {
			get(n)[ds.class[i]] += ds.weights[i]
			if n.feature < 0 {
				break
			}
			if n.children != nil {
				child, ok := n.children[feats[n.feature]]
				if !ok {
					break
				}
				n = child
				continue
			}
			if feats[n.feature] <= n.threshold {
				n = n.left
			} else {
				n = n.right
			}
		}
	}
	clamp := func(h []float64) []float64 {
		if adjust == nil {
			return h
		}
		out := adjust(append([]float64(nil), h...))
		for i, v := range out {
			if v < 0 || math.IsNaN(v) {
				out[i] = 0
			}
		}
		return out
	}
	var walk func(n *node, parentLabel int)
	walk = func(n *node, parentLabel int) {
		h := hists[n]
		total := 0.0
		for _, v := range h {
			total += v
		}
		label := parentLabel
		if h != nil && total >= minWeight {
			label = argmax(clamp(h))
		}
		n.label = label
		if n.children != nil {
			for _, c := range n.children {
				walk(c, label)
			}
		}
		if n.left != nil {
			walk(n.left, label)
		}
		if n.right != nil {
			walk(n.right, label)
		}
	}
	rootHist := hists[t.root]
	rootLabel := t.root.label
	if rootHist != nil {
		rootLabel = argmax(clamp(rootHist))
	}
	walk(t.root, rootLabel)
	return nil
}

// Predict classifies a feature vector.
func (t *Tree) Predict(features []int32) int {
	n := t.root
	for n.feature >= 0 {
		if n.children != nil {
			child, ok := n.children[features[n.feature]]
			if !ok {
				return n.label
			}
			n = child
			continue
		}
		if features[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}
