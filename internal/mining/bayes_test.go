package mining

import (
	"math/rand"
	"testing"

	"pgpub/internal/pg"
	"pgpub/internal/sal"
)

func TestTrainNBBasic(t *testing.T) {
	// A cleanly separable ordered feature.
	ds := mustDataset(t, []int{20}, []bool{true}, 2)
	for v := int32(0); v < 20; v++ {
		c := 0
		if v >= 10 {
			c = 1
		}
		for rep := 0; rep < 10; rep++ {
			if err := ds.Add([]int32{v}, c, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	nb, err := TrainNB(ds, NBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Predict([]int32{1}) != 0 || nb.Predict([]int32{18}) != 1 {
		t.Fatal("NB failed a separable problem")
	}
	empty := mustDataset(t, []int{20}, []bool{true}, 2)
	if _, err := TrainNB(empty, NBConfig{}); err == nil {
		t.Fatal("empty dataset: want error")
	}
}

func TestTrainNBCategorical(t *testing.T) {
	ds := mustDataset(t, []int{3}, []bool{false}, 2)
	for v, c := range map[int32]int{0: 0, 1: 1, 2: 0} {
		for rep := 0; rep < 25; rep++ {
			if err := ds.Add([]int32{v}, c, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	nb, err := TrainNB(ds, NBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range map[int32]int{0: 0, 1: 1, 2: 0} {
		if got := nb.Predict([]int32{v}); got != c {
			t.Fatalf("Predict(%d) = %d, want %d", v, got, c)
		}
	}
}

func TestNBWeightsMatter(t *testing.T) {
	ds := mustDataset(t, []int{2}, []bool{false}, 2)
	for rep := 0; rep < 10; rep++ {
		if err := ds.Add([]int32{0}, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Add([]int32{0}, 1, 200); err != nil {
		t.Fatal(err)
	}
	nb, err := TrainNB(ds, NBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Predict([]int32{0}) != 1 {
		t.Fatal("weighted majority ignored")
	}
}

func TestNBAdjustHook(t *testing.T) {
	ds := mustDataset(t, []int{2}, []bool{false}, 2)
	for rep := 0; rep < 20; rep++ {
		if err := ds.Add([]int32{0}, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	for rep := 0; rep < 5; rep++ {
		if err := ds.Add([]int32{0}, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	swap := func(obs []float64) []float64 { return []float64{obs[1], obs[0]} }
	nb, err := TrainNB(ds, NBConfig{Adjust: swap})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Predict([]int32{0}) != 1 {
		t.Fatal("adjust hook ignored")
	}
}

// End-to-end on a PG publication: NB must land in the same utility band as
// the honest tree — above pessimistic, near optimistic.
func TestNBPGUtility(t *testing.T) {
	d, classOf := salFixture(t, 30000, 21)
	const k = 6
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: k, P: 0.3, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := TrainNBPG(pub, classOf, 2, NBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	nbAcc := Accuracy(nb.Predict, d, classOf)

	rng := rand.New(rand.NewSource(23))
	sub, err := d.RandomSubset(d.Len()/k, rng)
	if err != nil {
		t.Fatal(err)
	}
	randomized := sub.Clone()
	for i := 0; i < randomized.Len(); i++ {
		randomized.SetSensitive(i, int32(rng.Intn(50)))
	}
	pes, err := TrainTable(randomized, classOf, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pesAcc := Accuracy(pes.Predict, d, classOf)
	if nbAcc <= pesAcc+0.02 {
		t.Fatalf("NB accuracy %v not above pessimistic %v", nbAcc, pesAcc)
	}
	if nbAcc > 0.95 {
		t.Fatalf("NB accuracy %v implausibly high", nbAcc)
	}
}

func TestTrainNBPGErrors(t *testing.T) {
	d, classOf := salFixture(t, 1000, 24)
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 4, P: 0.3, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	empty := *pub
	empty.Rows = nil
	if _, err := TrainNBPG(&empty, classOf, 2, NBConfig{}); err == nil {
		t.Fatal("empty publication: want error")
	}
	if _, err := TrainNBPG(pub, func(int32) int { return 9 }, 2, NBConfig{}); err == nil {
		t.Fatal("bad classOf: want error")
	}
}
