package mining

import (
	"fmt"

	"pgpub/internal/dataset"
	"pgpub/internal/perturb"
	"pgpub/internal/pg"
)

// This file adapts microdata tables and PG publications to the generic tree
// grower, implementing the three utility competitors of Section VII-B:
// optimistic and pessimistic (trees over raw QI codes) and PG (a tree over
// generalized QI codes with G-weighting and perturbation reconstruction).

// TableDataset builds a training set from a microdata table: features are
// the raw QI codes, the class of a row is classOf(sensitive code). Ordered
// flags follow the attributes' kinds.
func TableDataset(t *dataset.Table, classOf func(int32) int, numClasses int) (*Dataset, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("mining: empty table")
	}
	nv := make([]int, t.Schema.D())
	ordered := make([]bool, t.Schema.D())
	for j, a := range t.Schema.QI {
		nv[j] = a.Size()
		ordered[j] = a.Kind == dataset.Continuous
	}
	ds, err := NewDataset(nv, ordered, numClasses)
	if err != nil {
		return nil, err
	}
	for i := 0; i < t.Len(); i++ {
		c := classOf(t.Sensitive(i))
		if err := ds.Add(t.QIVector(i), c, 1); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// TableClassifier couples a tree with raw-QI feature extraction.
type TableClassifier struct {
	Tree *Tree
}

// TrainTable grows a tree over a microdata table (the optimistic and
// pessimistic yardsticks; pessimistic passes a pre-randomized table).
func TrainTable(t *dataset.Table, classOf func(int32) int, numClasses int, cfg Config) (*TableClassifier, error) {
	ds, err := TableDataset(t, classOf, numClasses)
	if err != nil {
		return nil, err
	}
	tree, err := Build(ds, cfg)
	if err != nil {
		return nil, err
	}
	return &TableClassifier{Tree: tree}, nil
}

// Predict classifies a raw QI vector.
func (c *TableClassifier) Predict(qi []int32) int { return c.Tree.Predict(qi) }

// PGClassifier couples a tree grown on D* with prediction over raw QI
// vectors.
type PGClassifier struct {
	Tree *Tree
}

// TrainPG grows the reconstruction-weighted tree of DESIGN.md §3 on a PG
// publication: each published tuple becomes one training row whose feature j
// is the midpoint code of its generalized box on attribute j (an ordered
// spatial scale), weighted by its stratum size G. Class histograms are
// corrected by inverting the uniform perturbation with the class-fraction
// vector (classFrac[c] = |{x : classOf(x) = c}| / |U^s|). When the
// publication's P is 0 the observed values carry no signal and
// reconstruction is skipped (the tree degenerates gracefully).
//
// Because box midpoints live on the original code scale, the resulting tree
// classifies raw QI vectors directly — Predict needs no recoding step.
func TrainPG(pub *pg.Published, classOf func(int32) int, numClasses int, cfg Config) (*PGClassifier, error) {
	if pub.Len() == 0 {
		return nil, fmt.Errorf("mining: empty publication")
	}
	d := pub.Schema.D()
	nv := make([]int, d)
	ordered := make([]bool, d)
	for j := 0; j < d; j++ {
		nv[j] = pub.Schema.QI[j].Size()
		ordered[j] = true // midpoints are positions on the code scale
	}
	// Honest-tree split: even rows select the structure, odd rows label it.
	// Reconstruction amplifies noise by 1/P, and split selection maximizes
	// over many noisy candidates (a winner's curse); labelling leaves with
	// data independent of the split choice removes the resulting bias.
	structureDS, err := NewDataset(nv, ordered, numClasses)
	if err != nil {
		return nil, err
	}
	labelDS, err := NewDataset(nv, ordered, numClasses)
	if err != nil {
		return nil, err
	}
	for i, r := range pub.EnsureRows() {
		feats := make([]int32, d)
		for j := 0; j < d; j++ {
			feats[j] = (r.Box.Lo[j] + r.Box.Hi[j]) / 2
		}
		target := structureDS
		if i%2 == 1 && pub.Len() > 1 {
			target = labelDS
		}
		if err := target.Add(feats, classOf(r.Value), float64(r.G)); err != nil {
			return nil, err
		}
	}

	// Reconstruction divides observed counts by P, amplifying sampling noise
	// by ~1/P; leaves must hold enough weight for the corrected histograms
	// to be trustworthy. A leaf of weight W holds ~W/K published rows, so
	// the reconstructed class fraction has standard error ~sqrt(K/W)/(2P);
	// keeping it under ~0.1 needs W ≳ 25·K/P². Cap at a sixteenth of the
	// total weight so shallow trees remain possible on small publications.
	if cfg.MinLeafWeight <= 0 && pub.P > 0 {
		w := 25 * float64(pub.K) / (pub.P * pub.P)
		if w < 50 {
			w = 50
		}
		cfg.MinLeafWeight = w
		// When the floor exceeds half the total weight the tree degenerates
		// to the (safe) majority-class root — the correct behaviour when
		// the publication is too small for its noise level.
	}
	if pub.P > 0 && cfg.Adjust == nil {
		frac, err := classFractions(pub.Schema.SensitiveDomain(), classOf, numClasses)
		if err != nil {
			return nil, err
		}
		p := pub.P
		cfg.Adjust = func(obs []float64) []float64 {
			rec, err := perturb.ReconstructCategories(obs, frac, p)
			if err != nil {
				return obs
			}
			return rec
		}
	}
	// The structure half holds ~half the weight; scale the floor with it.
	structureCfg := cfg
	structureCfg.MinLeafWeight = cfg.MinLeafWeight / 2
	tree, err := Build(structureDS, structureCfg)
	if err != nil {
		return nil, err
	}
	if labelDS.Len() > 0 {
		if err := tree.Relabel(labelDS, cfg.MinLeafWeight/2, cfg.Adjust); err != nil {
			return nil, err
		}
	}
	return &PGClassifier{Tree: tree}, nil
}

// classFractions computes the fraction of U^s mapped to each class.
func classFractions(domain int, classOf func(int32) int, numClasses int) ([]float64, error) {
	frac := make([]float64, numClasses)
	for x := int32(0); int(x) < domain; x++ {
		c := classOf(x)
		if c < 0 || c >= numClasses {
			return nil, fmt.Errorf("mining: classOf(%d) = %d out of [0,%d)", x, c, numClasses)
		}
		frac[c]++
	}
	for c := range frac {
		frac[c] /= float64(domain)
	}
	return frac, nil
}

// Predict classifies a raw QI vector.
func (c *PGClassifier) Predict(qi []int32) int { return c.Tree.Predict(qi) }

// Accuracy evaluates a raw-QI classifier against a microdata table: the
// fraction of tuples whose predicted class matches classOf(true sensitive),
// the paper's classification-accuracy measure (Section VII-B).
func Accuracy(predict func([]int32) int, t *dataset.Table, classOf func(int32) int) float64 {
	if t.Len() == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < t.Len(); i++ {
		if predict(t.QIVector(i)) == classOf(t.Sensitive(i)) {
			correct++
		}
	}
	return float64(correct) / float64(t.Len())
}
