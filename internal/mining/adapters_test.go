package mining

import (
	"math/rand"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/pg"
	"pgpub/internal/sal"
)

// salFixture generates a SAL sample and the m=2 categorizer once per test.
func salFixture(t *testing.T, n int, seed int64) (*dataset.Table, func(int32) int) {
	t.Helper()
	d, err := sal.Generate(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	classOf, err := sal.Categorizer(2)
	if err != nil {
		t.Fatal(err)
	}
	return d, classOf
}

func TestTableDatasetErrors(t *testing.T) {
	d, classOf := salFixture(t, 100, 1)
	empty := dataset.NewTable(d.Schema)
	if _, err := TableDataset(empty, classOf, 2); err == nil {
		t.Fatal("empty table: want error")
	}
	if _, err := TrainTable(empty, classOf, 2, Config{}); err == nil {
		t.Fatal("empty table train: want error")
	}
}

// The optimistic yardstick: a tree trained on clean SAL data must beat the
// majority-class baseline on the microdata.
func TestOptimisticBeatsBaseline(t *testing.T) {
	d, classOf := salFixture(t, 20000, 2)
	clf, err := TrainTable(d, classOf, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(clf.Predict, d, classOf)
	// Majority baseline.
	counts := [2]int{}
	for i := 0; i < d.Len(); i++ {
		counts[classOf(d.Sensitive(i))]++
	}
	base := float64(max(counts[0], counts[1])) / float64(d.Len())
	if acc <= base+0.02 {
		t.Fatalf("optimistic accuracy %v not better than baseline %v", acc, base)
	}
}

// The pessimistic yardstick: training on fully randomized labels cannot do
// meaningfully better than the majority class of the randomized sample.
func TestPessimisticNearBaseline(t *testing.T) {
	d, classOf := salFixture(t, 20000, 3)
	rng := rand.New(rand.NewSource(4))
	randomized := d.Clone()
	for i := 0; i < randomized.Len(); i++ {
		randomized.SetSensitive(i, int32(rng.Intn(randomized.Schema.SensitiveDomain())))
	}
	clf, err := TrainTable(randomized, classOf, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(clf.Predict, d, classOf)
	counts := [2]int{}
	for i := 0; i < d.Len(); i++ {
		counts[classOf(d.Sensitive(i))]++
	}
	base := float64(max(counts[0], counts[1])) / float64(d.Len())
	// The randomized labels are ~uniform, so the tree's majority class is
	// essentially a coin flip between brackets; accuracy must be within
	// noise of predicting one class everywhere — and far below optimistic.
	if acc > base+0.05 {
		t.Fatalf("pessimistic accuracy %v suspiciously above baseline %v", acc, base)
	}
}

// PG mining end-to-end against the paper's yardsticks (Section VII-B): both
// optimistic and pessimistic train on a random subset of size |D|/k; PG must
// land well above pessimistic and close to optimistic — the headline utility
// claim of Figures 2 and 3.
func TestPGTreeUtilityOrdering(t *testing.T) {
	const k = 6
	d, classOf := salFixture(t, 30000, 5)
	hiers := sal.Hierarchies(d.Schema)

	pub, err := pg.Publish(d, hiers, pg.Config{
		K: k, P: 0.3, Seed: 6, Algorithm: pg.KD,
	})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	pgClf, err := TrainPG(pub, classOf, 2, Config{})
	if err != nil {
		t.Fatalf("TrainPG: %v", err)
	}
	pgAcc := Accuracy(pgClf.Predict, d, classOf)

	rng := rand.New(rand.NewSource(7))
	sub, err := d.RandomSubset(d.Len()/k, rng)
	if err != nil {
		t.Fatal(err)
	}
	optClf, err := TrainTable(sub, classOf, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	optAcc := Accuracy(optClf.Predict, d, classOf)

	randomized := sub.Clone()
	for i := 0; i < randomized.Len(); i++ {
		randomized.SetSensitive(i, int32(rng.Intn(50)))
	}
	pesClf, err := TrainTable(randomized, classOf, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pesAcc := Accuracy(pesClf.Predict, d, classOf)

	if !(pgAcc > pesAcc+0.01) {
		t.Fatalf("PG accuracy %v not above pessimistic %v", pgAcc, pesAcc)
	}
	// PG may legitimately edge out optimistic: its G-weighted cells
	// summarize the full microdata while optimistic sees only |D|/k rows.
	if pgAcc > optAcc+0.06 {
		t.Fatalf("PG accuracy %v implausibly above optimistic %v", pgAcc, optAcc)
	}
	// "The utility of PG stays close to optimistic" — allow a modest gap.
	if optAcc-pgAcc > 0.12 {
		t.Fatalf("PG accuracy %v too far below optimistic %v", pgAcc, optAcc)
	}
}

func TestTrainPGErrors(t *testing.T) {
	d, classOf := salFixture(t, 2000, 8)
	hiers := sal.Hierarchies(d.Schema)
	pub, err := pg.Publish(d, hiers, pg.Config{K: 4, P: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	empty := *pub
	empty.Rows = nil
	if _, err := TrainPG(&empty, classOf, 2, Config{}); err == nil {
		t.Fatal("empty publication: want error")
	}
	// classOf returning out-of-range classes must be caught.
	bad := func(int32) int { return 7 }
	if _, err := TrainPG(pub, bad, 2, Config{}); err == nil {
		t.Fatal("bad classOf: want error")
	}
}

// With P = 0 reconstruction is skipped and training still succeeds — the
// pessimistic-like degenerate case.
func TestTrainPGZeroRetention(t *testing.T) {
	d, classOf := salFixture(t, 3000, 10)
	hiers := sal.Hierarchies(d.Schema)
	pub, err := pg.Publish(d, hiers, pg.Config{K: 4, P: 0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := TrainPG(pub, classOf, 2, Config{})
	if err != nil {
		t.Fatalf("TrainPG(p=0): %v", err)
	}
	acc := Accuracy(clf.Predict, d, classOf)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
}

func TestAccuracyEmptyTable(t *testing.T) {
	d, classOf := salFixture(t, 10, 12)
	empty := dataset.NewTable(d.Schema)
	if got := Accuracy(func([]int32) int { return 0 }, empty, classOf); got != 0 {
		t.Fatalf("empty accuracy = %v", got)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
