package mining

import (
	"fmt"
	"math"
)

// Criterion selects the split-impurity measure.
type Criterion int

const (
	// Gini is the default impurity (CART-style).
	Gini Criterion = iota
	// Entropy uses Shannon entropy (ID3/C4.5-style).
	Entropy
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	switch c {
	case Gini:
		return "gini"
	case Entropy:
		return "entropy"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// impurity dispatches on the criterion; returns the impurity and total mass.
func impurity(h []float64, c Criterion) (float64, float64) {
	if c == Gini {
		return gini(h)
	}
	total := 0.0
	for _, v := range h {
		total += v
	}
	if total == 0 {
		return 0, 0
	}
	e := 0.0
	for _, v := range h {
		if v == 0 {
			continue
		}
		p := v / total
		e -= p * math.Log2(p)
	}
	return e, total
}

// Prune performs reduced-error pruning against a validation dataset:
// bottom-up, every internal node whose single-leaf replacement (using the
// node's label) classifies the validation rows reaching it at least as well
// as its subtree is collapsed. Returns the number of collapsed subtrees.
func (t *Tree) Prune(ds *Dataset) (int, error) {
	if ds.Len() == 0 {
		return 0, fmt.Errorf("mining: pruning needs a non-empty validation set")
	}
	rowsAt := map[*node][]int{}
	for i := range ds.rows {
		n := t.root
		for {
			rowsAt[n] = append(rowsAt[n], i)
			if n.feature < 0 {
				break
			}
			if n.children != nil {
				child, ok := n.children[ds.rows[i][n.feature]]
				if !ok {
					break
				}
				n = child
				continue
			}
			if ds.rows[i][n.feature] <= n.threshold {
				n = n.left
			} else {
				n = n.right
			}
		}
	}
	pruned := 0
	var visit func(n *node) float64 // returns subtree's correct weight
	visit = func(n *node) float64 {
		rows := rowsAt[n]
		leafCorrect := 0.0
		for _, i := range rows {
			if ds.class[i] == n.label {
				leafCorrect += ds.weights[i]
			}
		}
		if n.feature < 0 {
			return leafCorrect
		}
		subtree := 0.0
		if n.children != nil {
			// Rows that stopped here (unseen codes) are classified by the
			// node's own label in Predict; count them for the subtree too.
			routed := map[int]bool{}
			for _, c := range n.children {
				subtree += visit(c)
				for _, i := range rowsAt[c] {
					routed[i] = true
				}
			}
			for _, i := range rows {
				if !routed[i] && ds.class[i] == n.label {
					subtree += ds.weights[i]
				}
			}
		} else {
			subtree = visit(n.left) + visit(n.right)
		}
		if leafCorrect >= subtree {
			n.feature = -1
			n.children = nil
			n.left, n.right = nil, nil
			pruned++
			return leafCorrect
		}
		return subtree
	}
	visit(t.root)
	if pruned > 0 {
		t.recount()
	}
	return pruned, nil
}

// recount refreshes Size and Depth after structural changes.
func (t *Tree) recount() {
	t.nodes, t.depth = 0, 0
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		t.nodes++
		if d > t.depth {
			t.depth = d
		}
		for _, c := range n.children {
			walk(c, d+1)
		}
		if n.left != nil {
			walk(n.left, d+1)
		}
		if n.right != nil {
			walk(n.right, d+1)
		}
	}
	walk(t.root, 0)
}
