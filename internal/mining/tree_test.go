package mining

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustDataset(t *testing.T, nv []int, ordered []bool, nc int) *Dataset {
	t.Helper()
	ds, err := NewDataset(nv, ordered, nc)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil, nil, 2); err == nil {
		t.Fatal("no features: want error")
	}
	if _, err := NewDataset([]int{3}, []bool{true, false}, 2); err == nil {
		t.Fatal("ordered length mismatch: want error")
	}
	if _, err := NewDataset([]int{0}, []bool{true}, 2); err == nil {
		t.Fatal("empty feature domain: want error")
	}
	if _, err := NewDataset([]int{3}, []bool{true}, 1); err == nil {
		t.Fatal("single class: want error")
	}
}

func TestAddValidation(t *testing.T) {
	ds := mustDataset(t, []int{3, 2}, []bool{true, false}, 2)
	if err := ds.Add([]int32{0}, 0, 1); err == nil {
		t.Fatal("short features: want error")
	}
	if err := ds.Add([]int32{3, 0}, 0, 1); err == nil {
		t.Fatal("feature out of domain: want error")
	}
	if err := ds.Add([]int32{0, 0}, 2, 1); err == nil {
		t.Fatal("class out of range: want error")
	}
	if err := ds.Add([]int32{0, 0}, 0, 0); err == nil {
		t.Fatal("zero weight: want error")
	}
	if err := ds.Add([]int32{0, 0}, 0, 1); err != nil {
		t.Fatalf("valid add rejected: %v", err)
	}
	if ds.Len() != 1 {
		t.Fatalf("Len = %d", ds.Len())
	}
}

func TestBuildEmpty(t *testing.T) {
	ds := mustDataset(t, []int{2}, []bool{true}, 2)
	if _, err := Build(ds, Config{}); err == nil {
		t.Fatal("empty dataset: want error")
	}
}

// A perfectly separable ordered feature must be learned exactly.
func TestOrderedThresholdLearned(t *testing.T) {
	ds := mustDataset(t, []int{10}, []bool{true}, 2)
	for v := int32(0); v < 10; v++ {
		class := 0
		if v >= 6 {
			class = 1
		}
		for rep := 0; rep < 20; rep++ {
			if err := ds.Add([]int32{v}, class, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	tree, err := Build(ds, Config{MinLeafWeight: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 10; v++ {
		want := 0
		if v >= 6 {
			want = 1
		}
		if got := tree.Predict([]int32{v}); got != want {
			t.Fatalf("Predict(%d) = %d, want %d", v, got, want)
		}
	}
	if tree.Depth() < 1 || tree.Size() < 3 {
		t.Fatalf("tree too small: depth %d size %d", tree.Depth(), tree.Size())
	}
}

// A separable categorical feature (XOR-free) must be learned exactly, and
// unseen codes must fall back to the parent label.
func TestCategoricalSplitLearned(t *testing.T) {
	ds := mustDataset(t, []int{4}, []bool{false}, 2)
	classOf := map[int32]int{0: 0, 1: 1, 2: 0}
	total := map[int]int{}
	for v, c := range classOf {
		for rep := 0; rep < 30; rep++ {
			if err := ds.Add([]int32{v}, c, 1); err != nil {
				t.Fatal(err)
			}
			total[c]++
		}
	}
	tree, err := Build(ds, Config{MinLeafWeight: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range classOf {
		if got := tree.Predict([]int32{v}); got != c {
			t.Fatalf("Predict(%d) = %d, want %d", v, got, c)
		}
	}
	// Code 3 was never seen: prediction must be the root's majority (class
	// 0 has 60 rows, class 1 has 30).
	if got := tree.Predict([]int32{3}); got != 0 {
		t.Fatalf("unseen code predicted %d, want majority 0", got)
	}
}

// AND over two categorical features needs depth 2 (the first split is
// informative, unlike XOR, so the greedy grower must find it).
func TestANDNeedsTwoLevels(t *testing.T) {
	ds := mustDataset(t, []int{2, 2}, []bool{false, false}, 2)
	for a := int32(0); a < 2; a++ {
		for b := int32(0); b < 2; b++ {
			class := int(a & b)
			for rep := 0; rep < 40; rep++ {
				if err := ds.Add([]int32{a, b}, class, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	tree, err := Build(ds, Config{MinLeafWeight: 5, MinGain: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for a := int32(0); a < 2; a++ {
		for b := int32(0); b < 2; b++ {
			if got := tree.Predict([]int32{a, b}); got != int(a&b) {
				t.Fatalf("Predict(%d,%d) = %d, want %d", a, b, got, a&b)
			}
		}
	}
	if tree.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", tree.Depth())
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := mustDataset(t, []int{50}, []bool{true}, 2)
	for i := 0; i < 2000; i++ {
		v := int32(rng.Intn(50))
		c := 0
		if rng.Float64() < float64(v)/50 {
			c = 1
		}
		if err := ds.Add([]int32{v}, c, 1); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := Build(ds, Config{MaxDepth: 2, MinLeafWeight: 1, MinGain: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 2 {
		t.Fatalf("Depth = %d > MaxDepth 2", tree.Depth())
	}
}

// Weights matter: a heavily weighted minority flips the majority label.
func TestWeightsFlipLabel(t *testing.T) {
	ds := mustDataset(t, []int{2}, []bool{false}, 2)
	for rep := 0; rep < 10; rep++ {
		if err := ds.Add([]int32{0}, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Add([]int32{0}, 1, 100); err != nil {
		t.Fatal(err)
	}
	tree, err := Build(ds, Config{MaxDepth: 1, MinLeafWeight: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]int32{0}); got != 1 {
		t.Fatalf("weighted majority = %d, want 1", got)
	}
}

// The Adjust hook changes labelling: a corrector that swaps the histogram
// entries must flip predictions.
func TestAdjustHook(t *testing.T) {
	ds := mustDataset(t, []int{2}, []bool{false}, 2)
	for rep := 0; rep < 20; rep++ {
		if err := ds.Add([]int32{0}, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	for rep := 0; rep < 5; rep++ {
		if err := ds.Add([]int32{0}, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	swap := func(obs []float64) []float64 { return []float64{obs[1], obs[0]} }
	tree, err := Build(ds, Config{MaxDepth: 1, MinLeafWeight: 1000, Adjust: swap})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]int32{0}); got != 1 {
		t.Fatalf("adjusted label = %d, want 1", got)
	}
}

// Property: trees never crash on random data and always predict a valid
// class.
func TestPredictAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nf := 1 + rng.Intn(3)
		nv := make([]int, nf)
		ordered := make([]bool, nf)
		for j := range nv {
			nv[j] = 2 + rng.Intn(6)
			ordered[j] = rng.Intn(2) == 0
		}
		nc := 2 + rng.Intn(3)
		ds, err := NewDataset(nv, ordered, nc)
		if err != nil {
			return false
		}
		n := 20 + rng.Intn(200)
		for i := 0; i < n; i++ {
			feats := make([]int32, nf)
			for j := range feats {
				feats[j] = int32(rng.Intn(nv[j]))
			}
			if err := ds.Add(feats, rng.Intn(nc), 1+rng.Float64()*5); err != nil {
				return false
			}
		}
		tree, err := Build(ds, Config{MaxDepth: 6, MinLeafWeight: 2, MinGain: 1e-9})
		if err != nil {
			return false
		}
		for trial := 0; trial < 50; trial++ {
			feats := make([]int32, nf)
			for j := range feats {
				feats[j] = int32(rng.Intn(nv[j]))
			}
			if c := tree.Predict(feats); c < 0 || c >= nc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
