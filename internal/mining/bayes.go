package mining

import (
	"fmt"
	"math"

	"pgpub/internal/perturb"
	"pgpub/internal/pg"
)

// NBConfig tunes the naive-Bayes classifier.
type NBConfig struct {
	// Alpha is the Laplace smoothing pseudo-count (default 1).
	Alpha float64
	// Bins discretizes ordered features into this many equal-width bins
	// (default 10); categorical features keep their codes.
	Bins int
	// Adjust optionally corrects observed class histograms, exactly like
	// Config.Adjust for trees (the perturbation-reconstruction hook).
	Adjust func(obs []float64) []float64
}

func (c *NBConfig) setDefaults() {
	if c.Alpha <= 0 {
		c.Alpha = 1
	}
	if c.Bins <= 1 {
		c.Bins = 10
	}
}

// NB is a weighted naive-Bayes classifier over a Dataset's feature space:
// P(class | features) ∝ P(class) · Π_f P(bin_f | class), with all class
// histograms passed through the reconstruction hook before normalization.
// It is the second mining modality for D* — where trees partition, NB
// factorizes, and for heavily perturbed data its per-feature aggregation
// often wins because every histogram pools all rows.
type NB struct {
	numClasses int
	bins       []int // bins per feature
	binWidth   []int // code-to-bin divisor per feature (1 for categorical)
	logPrior   []float64
	logCond    [][]float64 // per feature: bin*numClasses log-probabilities
}

// TrainNB fits the classifier on a dataset.
func TrainNB(ds *Dataset, cfg NBConfig) (*NB, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("mining: empty dataset")
	}
	cfg.setDefaults()
	nf := len(ds.NumValues)
	nb := &NB{
		numClasses: ds.NumClasses,
		bins:       make([]int, nf),
		binWidth:   make([]int, nf),
		logPrior:   make([]float64, ds.NumClasses),
		logCond:    make([][]float64, nf),
	}
	for f := 0; f < nf; f++ {
		nb.binWidth[f] = 1
		nb.bins[f] = ds.NumValues[f]
		if ds.Ordered[f] && ds.NumValues[f] > cfg.Bins {
			nb.binWidth[f] = (ds.NumValues[f] + cfg.Bins - 1) / cfg.Bins
			nb.bins[f] = (ds.NumValues[f] + nb.binWidth[f] - 1) / nb.binWidth[f]
		}
	}

	adjust := func(h []float64) []float64 {
		if cfg.Adjust == nil {
			return h
		}
		out := cfg.Adjust(append([]float64(nil), h...))
		for i, v := range out {
			if v < 0 || math.IsNaN(v) {
				out[i] = 0
			}
		}
		return out
	}

	// Class prior.
	prior := make([]float64, ds.NumClasses)
	for i := range ds.rows {
		prior[ds.class[i]] += ds.weights[i]
	}
	prior = adjust(prior)
	total := 0.0
	for _, v := range prior {
		total += v
	}
	for c := range prior {
		nb.logPrior[c] = math.Log((prior[c] + cfg.Alpha) / (total + cfg.Alpha*float64(ds.NumClasses)))
	}

	// Per-feature conditionals.
	for f := 0; f < nf; f++ {
		counts := make([][]float64, nb.bins[f])
		for b := range counts {
			counts[b] = make([]float64, ds.NumClasses)
		}
		for i := range ds.rows {
			b := int(ds.rows[i][f]) / nb.binWidth[f]
			counts[b][ds.class[i]] += ds.weights[i]
		}
		classTotals := make([]float64, ds.NumClasses)
		for b := range counts {
			counts[b] = adjust(counts[b])
			for c, v := range counts[b] {
				classTotals[c] += v
			}
		}
		cond := make([]float64, nb.bins[f]*ds.NumClasses)
		for b := range counts {
			for c := 0; c < ds.NumClasses; c++ {
				cond[b*ds.NumClasses+c] = math.Log(
					(counts[b][c] + cfg.Alpha) /
						(classTotals[c] + cfg.Alpha*float64(nb.bins[f])))
			}
		}
		nb.logCond[f] = cond
	}
	return nb, nil
}

// Predict classifies a feature vector.
func (nb *NB) Predict(features []int32) int {
	best, bi := math.Inf(-1), 0
	for c := 0; c < nb.numClasses; c++ {
		score := nb.logPrior[c]
		for f, v := range features {
			b := int(v) / nb.binWidth[f]
			if b >= nb.bins[f] {
				b = nb.bins[f] - 1
			}
			if b < 0 {
				b = 0
			}
			score += nb.logCond[f][b*nb.numClasses+c]
		}
		if score > best {
			best, bi = score, c
		}
	}
	return bi
}

// NBPGClassifier couples a naive-Bayes model with raw-QI prediction, the
// counterpart of PGClassifier.
type NBPGClassifier struct {
	Model *NB
}

// TrainNBPG fits naive Bayes on a PG publication with the same feature
// construction as TrainPG (box midpoints, G weights) and the perturbation-
// reconstruction hook. Unlike trees, NB needs no honesty split: the model
// does not select structure from the noisy histograms, it only averages
// them, so the winner's curse does not arise.
func TrainNBPG(pub *pg.Published, classOf func(int32) int, numClasses int, cfg NBConfig) (*NBPGClassifier, error) {
	if pub.Len() == 0 {
		return nil, fmt.Errorf("mining: empty publication")
	}
	d := pub.Schema.D()
	nv := make([]int, d)
	ordered := make([]bool, d)
	for j := 0; j < d; j++ {
		nv[j] = pub.Schema.QI[j].Size()
		ordered[j] = true
	}
	ds, err := NewDataset(nv, ordered, numClasses)
	if err != nil {
		return nil, err
	}
	for _, r := range pub.Rows {
		feats := make([]int32, d)
		for j := 0; j < d; j++ {
			feats[j] = (r.Box.Lo[j] + r.Box.Hi[j]) / 2
		}
		if err := ds.Add(feats, classOf(r.Value), float64(r.G)); err != nil {
			return nil, err
		}
	}
	if pub.P > 0 && cfg.Adjust == nil {
		frac, err := classFractions(pub.Schema.SensitiveDomain(), classOf, numClasses)
		if err != nil {
			return nil, err
		}
		p := pub.P
		cfg.Adjust = func(obs []float64) []float64 {
			rec, err := perturb.ReconstructCategories(obs, frac, p)
			if err != nil {
				return obs
			}
			return rec
		}
	}
	model, err := TrainNB(ds, cfg)
	if err != nil {
		return nil, err
	}
	return &NBPGClassifier{Model: model}, nil
}

// Predict classifies a raw QI vector.
func (c *NBPGClassifier) Predict(qi []int32) int { return c.Model.Predict(qi) }
