package anatomy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pgpub/internal/dataset"
	"pgpub/internal/sal"
)

func TestAnatomizeHospital(t *testing.T) {
	d := dataset.Hospital()
	rng := rand.New(rand.NewSource(1))
	pub, err := Anatomize(d, 2, rng)
	if err != nil {
		t.Fatalf("Anatomize: %v", err)
	}
	if pub.MinDistinct() < 2 {
		t.Fatalf("MinDistinct = %d, want >= 2", pub.MinDistinct())
	}
	// Every row belongs to a group, and group multisets match assignments.
	counts := make([]map[int32]int, len(pub.Values))
	for gid, vals := range pub.Values {
		counts[gid] = map[int32]int{}
		for _, v := range vals {
			counts[gid][v]++
		}
	}
	for i := 0; i < d.Len(); i++ {
		gid := pub.GroupOf[i]
		if gid < 0 || gid >= len(pub.Values) {
			t.Fatalf("row %d unassigned", i)
		}
		counts[gid][d.Sensitive(i)]--
	}
	for gid, m := range counts {
		for v, n := range m {
			if n != 0 {
				t.Fatalf("group %d multiset mismatch at value %d (%d)", gid, v, n)
			}
		}
	}
}

func TestAnatomizeErrors(t *testing.T) {
	d := dataset.Hospital()
	rng := rand.New(rand.NewSource(2))
	if _, err := Anatomize(d, 1, rng); err == nil {
		t.Fatal("l=1: want error")
	}
	if _, err := Anatomize(d, 2, nil); err == nil {
		t.Fatal("nil rng: want error")
	}
	// A table dominated by one value is not l-eligible.
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("Q", 0, 9)},
		dataset.MustAttribute("S", "a", "b"),
	)
	skew := dataset.NewTable(s)
	for i := 0; i < 9; i++ {
		skew.MustAppend([]int32{int32(i), 0})
	}
	skew.MustAppend([]int32{9, 1})
	if _, err := Anatomize(skew, 2, rng); err == nil {
		t.Fatal("ineligible table: want error")
	}
	tiny := dataset.NewTable(s)
	tiny.MustAppend([]int32{0, 0})
	if _, err := Anatomize(tiny, 2, rng); err == nil {
		t.Fatal("|D| < l: want error")
	}
}

// The corruption story: with no corruption the victim hides among l values;
// corrupting all group-mates reveals the value exactly — posterior 1.
func TestAnatomyCorruptionProgression(t *testing.T) {
	d := dataset.Hospital()
	rng := rand.New(rand.NewSource(3))
	pub, err := Anatomize(d, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	victim := 1 // Calvin's row
	truth := d.Sensitive(victim)

	// No corruption: posterior over the group multiset; the truth's mass is
	// below 1 (l >= 2 distinct values).
	post, err := pub.PosteriorAfterCorruption(d, victim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if post[truth] >= 1 {
		t.Fatal("uncorrupted posterior should not be certain")
	}

	// Corrupt every group-mate: certainty.
	mates := map[int]bool{}
	for i := 0; i < d.Len(); i++ {
		if i != victim && pub.GroupOf[i] == pub.GroupOf[victim] {
			mates[i] = true
		}
	}
	if len(mates) == 0 {
		t.Fatal("victim has no group mates")
	}
	post, err = pub.PosteriorAfterCorruption(d, victim, mates)
	if err != nil {
		t.Fatal(err)
	}
	if post[truth] != 1 {
		t.Fatalf("full group corruption should be certain, got %v", post[truth])
	}
}

func TestPosteriorAfterCorruptionErrors(t *testing.T) {
	d := dataset.Hospital()
	rng := rand.New(rand.NewSource(4))
	pub, err := Anatomize(d, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.PosteriorAfterCorruption(d, -1, nil); err == nil {
		t.Fatal("bad victim: want error")
	}
	if _, err := pub.PosteriorAfterCorruption(d, 0, map[int]bool{0: true}); err == nil {
		t.Fatal("corrupted victim: want error")
	}
}

// Property: anatomization of SAL samples is always valid (cover + distinct
// values >= l), and full group corruption always reveals the victim.
func TestAnatomyInvariants(t *testing.T) {
	f := func(seed int64, lRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := sal.Generate(300+rng.Intn(300), seed)
		if err != nil {
			return false
		}
		l := int(lRaw%4) + 2
		pub, err := Anatomize(d, l, rng)
		if err != nil {
			// SAL income is close to uniformizable; eligibility failures
			// are acceptable for large l on small samples.
			return l > 2
		}
		if pub.MinDistinct() < l {
			return false
		}
		victim := rng.Intn(d.Len())
		mates := map[int]bool{}
		for i := 0; i < d.Len(); i++ {
			if i != victim && pub.GroupOf[i] == pub.GroupOf[victim] {
				mates[i] = true
			}
		}
		post, err := pub.PosteriorAfterCorruption(d, victim, mates)
		if err != nil {
			return false
		}
		return post[d.Sensitive(victim)] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
