// Package anatomy implements Anatomy (Xiao & Tao, VLDB 2006 [31]), the
// best-known alternative to generalization: instead of coarsening QI values,
// it publishes them exactly and splits the release into a quasi-identifier
// table (tuple → group ID) and a sensitive table (group ID → sensitive-value
// multiset). Each group holds l tuples with l distinct sensitive values, so
// a linking attack narrows the victim to a group and learns only the group's
// value multiset — distinct l-diversity.
//
// It exists in this repository as the strongest conventional baseline to
// break: because the QI table is exact, an adversary identifies every group
// member's identity via the external database, and corrupting group-mates
// strikes their values from the multiset. With all l-1 mates corrupted the
// victim's value is exact — Anatomy, like every corruption-oblivious scheme,
// fails the paper's threat model, while PG's guarantees are corruption-
// independent. Tests quantify the contrast.
package anatomy

import (
	"fmt"
	"math/rand"
	"sort"

	"pgpub/internal/dataset"
)

// Publication is an anatomized release: GroupOf assigns every microdata row
// to a group (the QIT's join column — the QI values themselves are published
// verbatim from the microdata), and Values holds each group's sensitive
// multiset (the ST).
type Publication struct {
	L       int
	GroupOf []int
	Values  [][]int32
}

// Anatomize partitions the table into groups of l tuples with pairwise
// distinct sensitive values, per the bucketization algorithm of [31]: while
// at least l non-empty value buckets remain, emit a group drawing one tuple
// from each of the l largest buckets; assign each residual tuple to a group
// that does not contain its value yet. Fails when the data is not
// l-eligible (some value exceeds |D|/l of the table).
func Anatomize(d *dataset.Table, l int, rng *rand.Rand) (*Publication, error) {
	if l < 2 {
		return nil, fmt.Errorf("anatomy: l must be at least 2, got %d", l)
	}
	if rng == nil {
		return nil, fmt.Errorf("anatomy: rng is required")
	}
	if d.Len() < l {
		return nil, fmt.Errorf("anatomy: table has %d rows, needs at least l = %d", d.Len(), l)
	}
	buckets := make(map[int32][]int)
	for i := 0; i < d.Len(); i++ {
		v := d.Sensitive(i)
		buckets[v] = append(buckets[v], i)
	}
	// Shuffle within buckets so group composition is randomized.
	for _, rows := range buckets {
		rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
	}
	// Eligibility: max bucket <= ceil(|D|/l) is the classic condition; we
	// use the exact feasibility check below instead (the greedy loop fails
	// cleanly when a residue cannot be placed).
	pub := &Publication{L: l, GroupOf: make([]int, d.Len())}
	for i := range pub.GroupOf {
		pub.GroupOf[i] = -1
	}
	type bucket struct {
		value int32
		rows  []int
	}
	for {
		var nonEmpty []bucket
		for v, rows := range buckets {
			if len(rows) > 0 {
				nonEmpty = append(nonEmpty, bucket{v, rows})
			}
		}
		if len(nonEmpty) < l {
			break
		}
		sort.Slice(nonEmpty, func(a, b int) bool {
			if len(nonEmpty[a].rows) != len(nonEmpty[b].rows) {
				return len(nonEmpty[a].rows) > len(nonEmpty[b].rows)
			}
			return nonEmpty[a].value < nonEmpty[b].value
		})
		gid := len(pub.Values)
		var vals []int32
		for _, b := range nonEmpty[:l] {
			rows := buckets[b.value]
			row := rows[len(rows)-1]
			buckets[b.value] = rows[:len(rows)-1]
			pub.GroupOf[row] = gid
			vals = append(vals, b.value)
		}
		pub.Values = append(pub.Values, vals)
	}
	// Residue assignment: each leftover tuple joins a group lacking its
	// value.
	for v, rows := range buckets {
		for _, row := range rows {
			placed := false
			for gid := range pub.Values {
				if !containsValue(pub.Values[gid], v) {
					pub.GroupOf[row] = gid
					pub.Values[gid] = append(pub.Values[gid], v)
					placed = true
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("anatomy: table is not %d-eligible (value %d too frequent)", l, v)
			}
		}
	}
	return pub, nil
}

func containsValue(vals []int32, v int32) bool {
	for _, x := range vals {
		if x == v {
			return true
		}
	}
	return false
}

// MinDistinct returns the smallest number of distinct sensitive values in
// any group — at least L for a valid anatomization.
func (p *Publication) MinDistinct() int {
	min := -1
	for _, vals := range p.Values {
		seen := map[int32]bool{}
		for _, v := range vals {
			seen[v] = true
		}
		if min < 0 || len(seen) < min {
			min = len(seen)
		}
	}
	return min
}

// PosteriorAfterCorruption computes the adversary's posterior distribution
// over the victim's sensitive value given corruption of some co-members:
// the victim's group multiset minus the corrupted members' known values,
// normalized. Because the QIT publishes exact QI values, the adversary
// identifies every member's identity; corruption therefore removes exact
// occurrences. The returned slice is indexed by sensitive code.
func (p *Publication) PosteriorAfterCorruption(d *dataset.Table, victimRow int, corruptedRows map[int]bool) ([]float64, error) {
	if victimRow < 0 || victimRow >= d.Len() {
		return nil, fmt.Errorf("anatomy: victim row %d out of range", victimRow)
	}
	if corruptedRows[victimRow] {
		return nil, fmt.Errorf("anatomy: the victim cannot be corrupted")
	}
	gid := p.GroupOf[victimRow]
	remaining := make(map[int32]int)
	for _, v := range p.Values[gid] {
		remaining[v]++
	}
	for row, ok := range corruptedRows {
		if !ok || p.GroupOf[row] != gid {
			continue
		}
		v := d.Sensitive(row)
		if remaining[v] == 0 {
			return nil, fmt.Errorf("anatomy: corruption oracle inconsistent with the release")
		}
		remaining[v]--
	}
	post := make([]float64, d.Schema.SensitiveDomain())
	total := 0
	for v, n := range remaining {
		post[v] = float64(n)
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("anatomy: empty residual multiset")
	}
	for v := range post {
		post[v] /= float64(total)
	}
	return post, nil
}
