package hierarchy

import (
	"reflect"
	"testing"
	"testing/quick"

	"pgpub/internal/dataset"
)

func TestNewIntervalBasic(t *testing.T) {
	h, err := NewInterval(8, 2, 4)
	if err != nil {
		t.Fatalf("NewInterval: %v", err)
	}
	if h.Leaves() != 8 {
		t.Fatalf("Leaves = %d", h.Leaves())
	}
	// 8 leaves + 4 pairs + 2 quads + root = 15 nodes.
	if h.NumNodes() != 15 {
		t.Fatalf("NumNodes = %d, want 15", h.NumNodes())
	}
	if !h.Uniform() {
		t.Fatal("interval hierarchy should be uniform")
	}
	if h.Height() != 3 {
		t.Fatalf("Height = %d, want 3", h.Height())
	}
	if h.Parent(h.Root()) != -1 {
		t.Fatal("root must be parentless")
	}
	// Leaf 7: ancestors are pair [6,7], quad [4,7], root.
	a1 := h.AncestorAbove(7, 1)
	if lo, hi := h.Range(a1); lo != 6 || hi != 7 {
		t.Fatalf("ancestor1 range = [%d,%d], want [6,7]", lo, hi)
	}
	a2 := h.AncestorAbove(7, 2)
	if lo, hi := h.Range(a2); lo != 4 || hi != 7 {
		t.Fatalf("ancestor2 range = [%d,%d], want [4,7]", lo, hi)
	}
	if h.AncestorAbove(7, 3) != h.Root() || h.AncestorAbove(7, 99) != h.Root() {
		t.Fatal("ancestor walk should clamp at root")
	}
	if h.AncestorAbove(7, 0) != 7 {
		t.Fatal("0 steps should return the leaf")
	}
}

func TestNewIntervalNonDividing(t *testing.T) {
	// 7 leaves, width 3: groups [0-2],[3-5],[6-6], then root.
	h, err := NewInterval(7, 3)
	if err != nil {
		t.Fatalf("NewInterval: %v", err)
	}
	if h.NumNodes() != 7+3+1 {
		t.Fatalf("NumNodes = %d, want 11", h.NumNodes())
	}
	last := h.AncestorAbove(6, 1)
	if lo, hi := h.Range(last); lo != 6 || hi != 6 {
		t.Fatalf("ragged group range = [%d,%d], want [6,6]", lo, hi)
	}
	if h.Span(last) != 1 {
		t.Fatalf("Span = %d, want 1", h.Span(last))
	}
}

func TestNewIntervalErrors(t *testing.T) {
	if _, err := NewInterval(0); err == nil {
		t.Fatal("empty domain: want error")
	}
	if _, err := NewInterval(10, 1); err == nil {
		t.Fatal("width 1: want error")
	}
	if _, err := NewInterval(10, 4, 2); err == nil {
		t.Fatal("decreasing widths: want error")
	}
	if _, err := NewInterval(12, 2, 3); err == nil {
		t.Fatal("non-nesting widths: want error")
	}
}

func TestNewFlat(t *testing.T) {
	h := MustFlat(2)
	if h.Height() != 1 || h.NumNodes() != 3 {
		t.Fatalf("flat: height %d nodes %d", h.Height(), h.NumNodes())
	}
	if !h.Covers(h.Root(), 0) || !h.Covers(h.Root(), 1) {
		t.Fatal("root must cover all leaves")
	}
	one := MustFlat(1)
	if one.Root() != 0 || one.Height() != 0 {
		t.Fatalf("singleton domain: root=%d height=%d", one.Root(), one.Height())
	}
}

func TestNewBalanced(t *testing.T) {
	h, err := NewBalanced(16, 4)
	if err != nil {
		t.Fatalf("NewBalanced: %v", err)
	}
	// 16 leaves + 4 + 1 root = 21 nodes, height 2.
	if h.NumNodes() != 21 || h.Height() != 2 {
		t.Fatalf("balanced: nodes %d height %d", h.NumNodes(), h.Height())
	}
	if _, err := NewBalanced(8, 1); err == nil {
		t.Fatal("fanout 1: want error")
	}
}

func TestLabel(t *testing.T) {
	a := dataset.MustIntAttribute("Age", 20, 29)
	h := MustInterval(10, 5)
	if got := h.Label(3, a); got != "23" {
		t.Fatalf("leaf label = %q", got)
	}
	if got := h.Label(h.AncestorAbove(3, 1), a); got != "[20-24]" {
		t.Fatalf("interval label = %q", got)
	}
	if got := h.Label(h.Root(), a); got != "*" {
		t.Fatalf("root label = %q", got)
	}
}

func TestCutsBasics(t *testing.T) {
	h := MustInterval(8, 2, 4)
	top := TopCut(h)
	if top.Size() != 1 || top.Map(7) != h.Root() {
		t.Fatal("TopCut wrong")
	}
	bot := BottomCut(h)
	if bot.Size() != 8 || bot.Map(4) != 4 {
		t.Fatal("BottomCut wrong")
	}
	lc, err := LevelCut(h, 1)
	if err != nil {
		t.Fatalf("LevelCut: %v", err)
	}
	if lc.Size() != 4 {
		t.Fatalf("level-1 cut size = %d, want 4", lc.Size())
	}
	if lo, hi := h.Range(lc.Map(7)); lo != 6 || hi != 7 {
		t.Fatalf("level-1 map(7) covers [%d,%d]", lo, hi)
	}
	if _, err := LevelCut(h, -1); err == nil {
		t.Fatal("negative level: want error")
	}
	if _, err := LevelCut(h, 99); err == nil {
		t.Fatal("excessive level: want error")
	}
}

func TestNewCutValidation(t *testing.T) {
	h := MustInterval(8, 2, 4)
	pair01 := h.AncestorAbove(0, 1)
	quad0 := h.AncestorAbove(0, 2)
	quad1 := h.AncestorAbove(4, 2)
	// Valid mixed-depth cut: [0-1] as a pair, leaves 2..3, quad [4-7].
	nodes := []int32{pair01, 2, 3, quad1}
	c, err := NewCut(h, nodes)
	if err != nil {
		t.Fatalf("NewCut: %v", err)
	}
	if c.Map(1) != pair01 || c.Map(3) != 3 || c.Map(6) != quad1 {
		t.Fatal("cut mapping wrong")
	}
	if !c.Contains(pair01) || c.Contains(quad0) {
		t.Fatal("Contains wrong")
	}
	// Overlap: quad0 overlaps pair01.
	if _, err := NewCut(h, []int32{pair01, quad0, quad1}); err == nil {
		t.Fatal("overlapping cut: want error")
	}
	// Gap: missing leaves 2..3.
	if _, err := NewCut(h, []int32{pair01, quad1}); err == nil {
		t.Fatal("gappy cut: want error")
	}
	// Out of range node.
	if _, err := NewCut(h, []int32{-1}); err == nil {
		t.Fatal("negative node: want error")
	}
	if _, err := NewCut(h, []int32{int32(h.NumNodes())}); err == nil {
		t.Fatal("oversized node: want error")
	}
}

func TestCutRefine(t *testing.T) {
	h := MustInterval(8, 2, 4)
	top := TopCut(h)
	c, err := top.Refine(h.Root())
	if err != nil {
		t.Fatalf("Refine(root): %v", err)
	}
	if c.Size() != 2 {
		t.Fatalf("refined size = %d, want 2", c.Size())
	}
	// Original cut untouched.
	if top.Size() != 1 {
		t.Fatal("Refine mutated the receiver")
	}
	// Refine a quad into pairs.
	quad := c.Nodes()[0]
	c2, err := c.Refine(quad)
	if err != nil {
		t.Fatalf("Refine(quad): %v", err)
	}
	if c2.Size() != 3 {
		t.Fatalf("size = %d, want 3", c2.Size())
	}
	if c2.Map(0) == quad {
		t.Fatal("leafTo not updated after refine")
	}
	// Errors.
	if _, err := c2.Refine(0); err == nil && h.IsLeaf(0) {
		t.Fatal("refining a leaf must error")
	}
	if _, err := c2.Refine(quad); err == nil {
		t.Fatal("refining a departed node must error")
	}
	// Refinable lists only internal nodes.
	for _, v := range c2.Refinable() {
		if h.IsLeaf(v) {
			t.Fatal("Refinable returned a leaf")
		}
	}
}

// Property: for any hierarchy built from a width chain, every sequence of
// random refinements keeps the cut a disjoint exact cover.
func TestCutRefineInvariant(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw%60) + 2
		h, err := NewInterval(n, 2, 4, 8)
		if err != nil {
			return false
		}
		c := TopCut(h)
		for steps := 0; steps < 20; steps++ {
			cand := c.Refinable()
			if len(cand) == 0 {
				break
			}
			idx := int(uint64(seed) % uint64(len(cand)))
			v := cand[idx]
			seed = seed*6364136223846793005 + 1442695040888963407
			nc, err := c.Refine(v)
			if err != nil {
				return false
			}
			c = nc
			// Re-validate: NewCut must accept the node set.
			if _, err := NewCut(h, c.Nodes()); err != nil {
				return false
			}
			// Mapping consistency.
			for l := int32(0); int(l) < n; l++ {
				if !h.Covers(c.Map(l), l) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBottomCutRefinableEmpty(t *testing.T) {
	h := MustInterval(6, 3)
	if got := BottomCut(h).Refinable(); got != nil {
		t.Fatalf("BottomCut refinable = %v, want nil", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	h := MustInterval(6, 3)
	c := TopCut(h)
	cl := c.Clone()
	r, err := cl.Refine(h.Root())
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	_ = r
	if !reflect.DeepEqual(c.Nodes(), []int32{h.Root()}) {
		t.Fatal("clone refinement affected original")
	}
}

// The immutability contract on Cut: Refine must not alter the receiver. The
// generalize package's grouping engine shares Cut pointers across recoding
// snapshots, so a mutating Refine would corrupt groups derived earlier.
func TestRefineLeavesReceiverUntouched(t *testing.T) {
	h := MustInterval(8, 2, 4)
	c := TopCut(h)
	nodes := append([]int32(nil), c.Nodes()...)
	maps := make([]int32, h.Leaves())
	for l := range maps {
		maps[l] = c.Map(int32(l))
	}
	refined, err := c.Refine(h.Root())
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if reflect.DeepEqual(refined.Nodes(), nodes) {
		t.Fatal("Refine returned an unchanged cut")
	}
	if !reflect.DeepEqual(c.Nodes(), nodes) {
		t.Fatalf("Refine mutated the receiver's nodes: %v", c.Nodes())
	}
	for l := range maps {
		if c.Map(int32(l)) != maps[l] {
			t.Fatalf("Refine mutated the receiver's mapping at leaf %d", l)
		}
	}
	// And a refinement of the refined cut leaves that one intact too.
	mid := append([]int32(nil), refined.Nodes()...)
	if _, err := refined.Refine(refined.Refinable()[0]); err != nil {
		t.Fatalf("second Refine: %v", err)
	}
	if !reflect.DeepEqual(refined.Nodes(), mid) {
		t.Fatal("second Refine mutated its receiver")
	}
}
