package hierarchy

import (
	"fmt"
	"sort"
)

// Cut is an antichain of hierarchy nodes that covers every leaf exactly once.
// Recoding an attribute through a cut replaces each domain code with the cut
// node covering it. Top-down specialization (Fung et al.) walks the cut from
// {root} toward the leaves; full-domain recoding uses the cut of all nodes at
// a fixed level.
//
// A Cut is immutable once constructed: no method mutates the receiver —
// Refine returns a fresh cut. Holders may therefore share, cache, and alias
// Cut pointers freely; the generalize package's incremental grouping engine
// and Recoding.Clone rely on this (see the ownership rule on
// generalize.Recoding).
type Cut struct {
	h      *Hierarchy
	nodes  []int32 // sorted by covered range
	leafTo []int32 // leaf code -> covering cut node
}

// NewCut validates that nodes form a disjoint exact cover of the leaves and
// returns the cut.
func NewCut(h *Hierarchy, nodes []int32) (*Cut, error) {
	c := &Cut{h: h, nodes: append([]int32(nil), nodes...), leafTo: make([]int32, h.Leaves())}
	sort.Slice(c.nodes, func(i, j int) bool { return h.lo[c.nodes[i]] < h.lo[c.nodes[j]] })
	next := int32(0)
	for _, v := range c.nodes {
		if v < 0 || int(v) >= h.NumNodes() {
			return nil, fmt.Errorf("hierarchy: cut node %d out of range", v)
		}
		if h.lo[v] != next {
			return nil, fmt.Errorf("hierarchy: cut gap or overlap at leaf %d (node %d starts at %d)", next, v, h.lo[v])
		}
		for l := h.lo[v]; l <= h.hi[v]; l++ {
			c.leafTo[l] = v
		}
		next = h.hi[v] + 1
	}
	if int(next) != h.Leaves() {
		return nil, fmt.Errorf("hierarchy: cut covers %d of %d leaves", next, h.Leaves())
	}
	return c, nil
}

// TopCut returns the cut {root}: everything generalized to "*".
func TopCut(h *Hierarchy) *Cut {
	c, err := NewCut(h, []int32{h.Root()})
	if err != nil {
		panic(err) // cannot happen: the root always covers all leaves
	}
	return c
}

// BottomCut returns the cut of all leaves: the identity recoding.
func BottomCut(h *Hierarchy) *Cut {
	nodes := make([]int32, h.Leaves())
	for i := range nodes {
		nodes[i] = int32(i)
	}
	c, err := NewCut(h, nodes)
	if err != nil {
		panic(err)
	}
	return c
}

// LevelCut returns the cut of all ancestors `level` steps above the leaves
// (level 0 = BottomCut). The hierarchy must be uniform.
func LevelCut(h *Hierarchy, level int) (*Cut, error) {
	if !h.Uniform() {
		return nil, fmt.Errorf("hierarchy: level cuts need a uniform hierarchy")
	}
	if level < 0 || level > h.Height() {
		return nil, fmt.Errorf("hierarchy: level %d out of [0,%d]", level, h.Height())
	}
	seen := make(map[int32]bool)
	var nodes []int32
	for c := int32(0); int(c) < h.Leaves(); c++ {
		v := h.AncestorAbove(c, level)
		if !seen[v] {
			seen[v] = true
			nodes = append(nodes, v)
		}
	}
	return NewCut(h, nodes)
}

// Hierarchy returns the tree this cut belongs to.
func (c *Cut) Hierarchy() *Hierarchy { return c.h }

// Nodes returns the cut's nodes sorted by covered range. Read-only.
func (c *Cut) Nodes() []int32 { return c.nodes }

// Size returns the number of nodes in the cut.
func (c *Cut) Size() int { return len(c.nodes) }

// Map returns the cut node covering leaf code l.
func (c *Cut) Map(l int32) int32 { return c.leafTo[l] }

// LeafMap returns the full leaf-code → cut-node lookup table (index l holds
// Map(l)). Read-only: the cut is immutable and the slice is its backing
// array. Column-sweeping hot paths use it to resolve a whole column against
// the cut without a method call per row.
func (c *Cut) LeafMap() []int32 { return c.leafTo }

// Contains reports whether v is one of the cut's nodes.
func (c *Cut) Contains(v int32) bool {
	i := sort.Search(len(c.nodes), func(i int) bool { return c.h.lo[c.nodes[i]] >= c.h.lo[v] })
	return i < len(c.nodes) && c.nodes[i] == v
}

// Clone deep-copies the cut.
func (c *Cut) Clone() *Cut {
	return &Cut{
		h:      c.h,
		nodes:  append([]int32(nil), c.nodes...),
		leafTo: append([]int32(nil), c.leafTo...),
	}
}

// Refine returns a new cut with node v replaced by its children (the TDS
// specialization step). Refining a leaf is an error.
func (c *Cut) Refine(v int32) (*Cut, error) {
	if c.h.IsLeaf(v) {
		return nil, fmt.Errorf("hierarchy: cannot refine leaf %d", v)
	}
	if !c.Contains(v) {
		return nil, fmt.Errorf("hierarchy: node %d is not in the cut", v)
	}
	n := c.Clone()
	for i, w := range n.nodes {
		if w == v {
			repl := append([]int32(nil), n.nodes[:i]...)
			repl = append(repl, c.h.Children(v)...)
			repl = append(repl, n.nodes[i+1:]...)
			n.nodes = repl
			break
		}
	}
	sort.Slice(n.nodes, func(i, j int) bool { return c.h.lo[n.nodes[i]] < c.h.lo[n.nodes[j]] })
	for _, k := range c.h.Children(v) {
		for l := c.h.lo[k]; l <= c.h.hi[k]; l++ {
			n.leafTo[l] = k
		}
	}
	return n, nil
}

// Refinable returns the cut nodes that are not leaves (TDS candidates).
func (c *Cut) Refinable() []int32 {
	var out []int32
	for _, v := range c.nodes {
		if !c.h.IsLeaf(v) {
			out = append(out, v)
		}
	}
	return out
}
