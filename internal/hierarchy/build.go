package hierarchy

import "fmt"

// NewInterval builds a uniform hierarchy over n codes from a list of strictly
// increasing group widths, one per generalization level above the leaves.
// Level i groups the codes into intervals of widths[i] consecutive codes
// (the final interval may be shorter when widths[i] does not divide n). Each
// width must be a multiple of the previous one so the levels nest. A root
// covering the whole domain is appended automatically if the last level has
// more than one node.
//
// Example: NewInterval(70, 5, 10, 35) over Age codes 20..89 yields 5-year,
// 10-year and 35-year bands below "*", mirroring the interval generalizations
// of Table Ic.
func NewInterval(n int, widths ...int) (*Hierarchy, error) {
	if n < 1 {
		return nil, fmt.Errorf("hierarchy: domain must have at least 1 code, got %d", n)
	}
	prev := 1
	for i, w := range widths {
		if w <= prev {
			return nil, fmt.Errorf("hierarchy: width %d (=%d) must exceed previous (%d)", i, w, prev)
		}
		if w%prev != 0 {
			return nil, fmt.Errorf("hierarchy: width %d (=%d) must be a multiple of previous (%d)", i, w, prev)
		}
		prev = w
	}

	h := &Hierarchy{n: n, uniform: true}
	// Start with the leaves.
	for c := 0; c < n; c++ {
		h.parent = append(h.parent, -1)
		h.children = append(h.children, nil)
		h.lo = append(h.lo, int32(c))
		h.hi = append(h.hi, int32(c))
	}
	// prevLevel holds the node IDs of the last built level, in code order.
	prevLevel := make([]int32, n)
	for c := range prevLevel {
		prevLevel[c] = int32(c)
	}
	prevWidth := 1
	addLevel := func(width int) {
		fanout := width / prevWidth
		var level []int32
		for i := 0; i < len(prevLevel); i += fanout {
			j := i + fanout
			if j > len(prevLevel) {
				j = len(prevLevel)
			}
			kids := prevLevel[i:j]
			id := int32(len(h.parent))
			h.parent = append(h.parent, -1)
			h.children = append(h.children, append([]int32(nil), kids...))
			h.lo = append(h.lo, h.lo[kids[0]])
			h.hi = append(h.hi, h.hi[kids[len(kids)-1]])
			for _, k := range kids {
				h.parent[k] = id
			}
			level = append(level, id)
		}
		prevLevel = level
		prevWidth = width
	}
	for _, w := range widths {
		if w >= n && len(prevLevel) == 1 {
			break
		}
		addLevel(w)
	}
	if len(prevLevel) > 1 {
		addLevel(prevWidth * len(prevLevel)) // synthetic root
	}
	h.root = prevLevel[0]

	// Compute depths top-down and the height.
	h.depth = make([]int32, len(h.parent))
	var walk func(v, d int32)
	walk = func(v, d int32) {
		h.depth[v] = d
		if int(d) > h.height {
			h.height = int(d)
		}
		for _, k := range h.children[v] {
			walk(k, d+1)
		}
	}
	walk(h.root, 0)
	for c := 0; c < n; c++ {
		if int(h.depth[c]) != h.height {
			h.uniform = false
		}
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// MustInterval is NewInterval but panics on error.
func MustInterval(n int, widths ...int) *Hierarchy {
	h, err := NewInterval(n, widths...)
	if err != nil {
		panic(err)
	}
	return h
}

// NewBalanced builds a uniform hierarchy by repeatedly grouping `fanout`
// adjacent nodes until a single root remains. It is the natural taxonomy for
// categorical attributes whose codes carry no semantic order: every level
// shrinks the domain by the fanout.
func NewBalanced(n, fanout int) (*Hierarchy, error) {
	if fanout < 2 {
		return nil, fmt.Errorf("hierarchy: fanout must be at least 2, got %d", fanout)
	}
	var widths []int
	for w := fanout; w < n; w *= fanout {
		widths = append(widths, w)
	}
	return NewInterval(n, widths...)
}

// MustBalanced is NewBalanced but panics on error.
func MustBalanced(n, fanout int) *Hierarchy {
	h, err := NewBalanced(n, fanout)
	if err != nil {
		panic(err)
	}
	return h
}

// NewFlat builds the two-level hierarchy {root over all codes}: the only
// generalization is full suppression. Appropriate for attributes like Gender.
func NewFlat(n int) (*Hierarchy, error) {
	return NewInterval(n)
}

// MustFlat is NewFlat but panics on error.
func MustFlat(n int) *Hierarchy {
	h, err := NewFlat(n)
	if err != nil {
		panic(err)
	}
	return h
}
