package hierarchy

import "fmt"

// This file is the serialization hook of the package: a Hierarchy is fully
// determined by its leaf count and parent-pointer array (node IDs 0..n-1 are
// the leaves, internal nodes follow, exactly one node — the root — is
// parentless), so a codec needs to persist only (n, parents) and rebuild the
// derived structure (children lists, covered ranges, depths, uniformity)
// here. internal/snapshot uses this pair as the wire form of a publication's
// hierarchies.

// Parents returns the parent-pointer array of the tree: Parents()[v] is the
// parent of node v, -1 for the root. The returned slice is fresh and may be
// retained by the caller.
func (h *Hierarchy) Parents() []int32 {
	return append([]int32(nil), h.parent...)
}

// FromParents reconstructs a Hierarchy over n leaf codes from a
// parent-pointer array as returned by Parents. The array must describe a
// single rooted tree whose leaves are exactly the nodes 0..n-1 and whose
// internal nodes each cover a contiguous leaf range (the invariant every
// builder in this package maintains); anything else is rejected.
func FromParents(n int, parent []int32) (*Hierarchy, error) {
	if n < 1 {
		return nil, fmt.Errorf("hierarchy: no leaves")
	}
	if len(parent) < n {
		return nil, fmt.Errorf("hierarchy: %d nodes cannot hold %d leaves", len(parent), n)
	}
	h := &Hierarchy{
		n:        n,
		parent:   append([]int32(nil), parent...),
		children: make([][]int32, len(parent)),
		lo:       make([]int32, len(parent)),
		hi:       make([]int32, len(parent)),
		depth:    make([]int32, len(parent)),
		root:     -1,
	}
	for v, p := range h.parent {
		if p < 0 {
			if h.root >= 0 {
				return nil, fmt.Errorf("hierarchy: nodes %d and %d are both parentless", h.root, v)
			}
			h.root = int32(v)
			continue
		}
		if int(p) >= len(h.parent) || int(p) == v {
			return nil, fmt.Errorf("hierarchy: node %d has invalid parent %d", v, p)
		}
		if int(p) < n {
			return nil, fmt.Errorf("hierarchy: leaf %d is the parent of node %d", p, v)
		}
		h.children[p] = append(h.children[p], int32(v))
	}
	if h.root < 0 {
		return nil, fmt.Errorf("hierarchy: no root")
	}
	// Derive ranges and depths from the root down. Every node has exactly one
	// parent pointer, so the graph is a forest of one rooted tree plus any
	// cycles — cycle nodes are unreachable from the root and show up as a
	// visit-count mismatch instead of an infinite walk.
	visited := 0
	var walk func(v, d int32) error
	walk = func(v, d int32) error {
		visited++
		h.depth[v] = d
		if int(d) > h.height {
			h.height = int(d)
		}
		if int(v) < n {
			h.lo[v], h.hi[v] = v, v
			return nil
		}
		lo, hi := int32(-1), int32(-1)
		for _, k := range h.children[v] {
			if err := walk(k, d+1); err != nil {
				return err
			}
			if lo < 0 || h.lo[k] < lo {
				lo = h.lo[k]
			}
			if h.hi[k] > hi {
				hi = h.hi[k]
			}
		}
		h.lo[v], h.hi[v] = lo, hi
		// validate() requires children in covered-range order; the builders
		// produce them that way, so restoring that order here keeps Children()
		// output identical to the original tree's.
		kids := h.children[v]
		for i := 1; i < len(kids); i++ {
			for j := i; j > 0 && h.lo[kids[j]] < h.lo[kids[j-1]]; j-- {
				kids[j], kids[j-1] = kids[j-1], kids[j]
			}
		}
		return nil
	}
	if err := walk(h.root, 0); err != nil {
		return nil, err
	}
	if visited != len(h.parent) {
		return nil, fmt.Errorf("hierarchy: %d of %d nodes unreachable from the root", len(h.parent)-visited, len(h.parent))
	}
	h.uniform = true
	for c := 0; c < n; c++ {
		if int(h.depth[c]) != h.height {
			h.uniform = false
			break
		}
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	return h, nil
}
