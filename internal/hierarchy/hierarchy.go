// Package hierarchy implements generalization hierarchies (taxonomy trees)
// over attribute domains, the substrate of global-recoding generalization
// (property G3 of the paper, scheme of LeFevre et al. [13]).
//
// A Hierarchy is a rooted tree whose leaves are the attribute's domain codes
// 0..n-1 and whose internal nodes cover contiguous code ranges. A value x' (a
// set of values) generalizes a value x iff x ∈ x'; in tree form, a node
// generalizes every leaf in its subtree. Because distinct nodes of an
// antichain are disjoint, recoding every tuple through one antichain (a Cut)
// yields a global recoding: no two distinct generalized values share a
// specialization.
package hierarchy

import (
	"fmt"

	"pgpub/internal/dataset"
)

// Hierarchy is an immutable taxonomy tree over n domain codes. Node IDs
// 0..n-1 are the leaves; internal nodes follow, the root last.
type Hierarchy struct {
	n        int
	parent   []int32
	children [][]int32
	lo, hi   []int32
	depth    []int32
	root     int32
	height   int // depth of the deepest leaf (root has depth 0)
	uniform  bool
}

// Leaves returns the domain cardinality n.
func (h *Hierarchy) Leaves() int { return h.n }

// NumNodes returns the total node count (leaves + internal).
func (h *Hierarchy) NumNodes() int { return len(h.parent) }

// Root returns the root node ID.
func (h *Hierarchy) Root() int32 { return h.root }

// Parent returns the parent of v, or -1 for the root.
func (h *Hierarchy) Parent(v int32) int32 { return h.parent[v] }

// Children returns v's children (nil for leaves). Read-only.
func (h *Hierarchy) Children(v int32) []int32 { return h.children[v] }

// IsLeaf reports whether v is a domain code.
func (h *Hierarchy) IsLeaf(v int32) bool { return int(v) < h.n }

// Range returns the inclusive leaf-code range [lo, hi] covered by v.
func (h *Hierarchy) Range(v int32) (lo, hi int32) { return h.lo[v], h.hi[v] }

// Span returns the number of leaves covered by v.
func (h *Hierarchy) Span(v int32) int { return int(h.hi[v]-h.lo[v]) + 1 }

// Depth returns v's depth; the root has depth 0.
func (h *Hierarchy) Depth(v int32) int { return int(h.depth[v]) }

// Height returns the depth of the deepest leaf. A hierarchy with Height H
// has H+1 generalization levels: level 0 (original values) .. level H (the
// root, i.e. full suppression).
func (h *Hierarchy) Height() int { return h.height }

// Uniform reports whether all leaves sit at the same depth, which is what
// full-domain (level-based) recoding requires.
func (h *Hierarchy) Uniform() bool { return h.uniform }

// Covers reports whether node v generalizes leaf code c.
func (h *Hierarchy) Covers(v, c int32) bool { return c >= h.lo[v] && c <= h.hi[v] }

// AncestorAbove returns the ancestor of leaf c reached by walking `steps`
// edges toward the root (clamped at the root). steps == 0 returns c itself.
func (h *Hierarchy) AncestorAbove(c int32, steps int) int32 {
	v := c
	for i := 0; i < steps && h.parent[v] >= 0; i++ {
		v = h.parent[v]
	}
	return v
}

// Label renders node v using the attribute's value labels: the leaf label
// itself, "*" for the root, and "[lo-hi]" for intermediate nodes.
func (h *Hierarchy) Label(v int32, a *dataset.Attribute) string {
	switch {
	case h.IsLeaf(v):
		return a.Label(v)
	case v == h.root:
		return "*"
	default:
		return fmt.Sprintf("[%s-%s]", a.Label(h.lo[v]), a.Label(h.hi[v]))
	}
}

// validate checks tree invariants; builders call it before returning.
func (h *Hierarchy) validate() error {
	if h.n < 1 {
		return fmt.Errorf("hierarchy: no leaves")
	}
	roots := 0
	for v := range h.parent {
		if h.parent[v] < 0 {
			roots++
			if int32(v) != h.root {
				return fmt.Errorf("hierarchy: node %d is parentless but not the root", v)
			}
		}
	}
	if roots != 1 {
		return fmt.Errorf("hierarchy: %d roots", roots)
	}
	for v := h.n; v < h.NumNodes(); v++ {
		kids := h.children[v]
		if len(kids) == 0 {
			return fmt.Errorf("hierarchy: internal node %d has no children", v)
		}
		if h.lo[v] != h.lo[kids[0]] || h.hi[v] != h.hi[kids[len(kids)-1]] {
			return fmt.Errorf("hierarchy: node %d range does not match children", v)
		}
		for i := 1; i < len(kids); i++ {
			if h.lo[kids[i]] != h.hi[kids[i-1]]+1 {
				return fmt.Errorf("hierarchy: node %d children not contiguous", v)
			}
		}
	}
	return nil
}
