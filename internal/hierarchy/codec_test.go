package hierarchy

import (
	"testing"
)

// sameTree compares every piece of public structure of two hierarchies.
func sameTree(t *testing.T, a, b *Hierarchy) {
	t.Helper()
	if a.Leaves() != b.Leaves() || a.NumNodes() != b.NumNodes() || a.Root() != b.Root() ||
		a.Height() != b.Height() || a.Uniform() != b.Uniform() {
		t.Fatalf("shape differs: leaves %d/%d nodes %d/%d root %d/%d height %d/%d uniform %v/%v",
			a.Leaves(), b.Leaves(), a.NumNodes(), b.NumNodes(), a.Root(), b.Root(),
			a.Height(), b.Height(), a.Uniform(), b.Uniform())
	}
	for v := int32(0); int(v) < a.NumNodes(); v++ {
		if a.Parent(v) != b.Parent(v) {
			t.Fatalf("node %d: parent %d vs %d", v, a.Parent(v), b.Parent(v))
		}
		alo, ahi := a.Range(v)
		blo, bhi := b.Range(v)
		if alo != blo || ahi != bhi {
			t.Fatalf("node %d: range [%d,%d] vs [%d,%d]", v, alo, ahi, blo, bhi)
		}
		if a.Depth(v) != b.Depth(v) {
			t.Fatalf("node %d: depth %d vs %d", v, a.Depth(v), b.Depth(v))
		}
		ak, bk := a.Children(v), b.Children(v)
		if len(ak) != len(bk) {
			t.Fatalf("node %d: %d children vs %d", v, len(ak), len(bk))
		}
		for i := range ak {
			if ak[i] != bk[i] {
				t.Fatalf("node %d: child %d is %d vs %d", v, i, ak[i], bk[i])
			}
		}
	}
}

func TestFromParentsRoundTrip(t *testing.T) {
	for name, h := range map[string]*Hierarchy{
		"interval":     MustInterval(70, 5, 10, 30),
		"ragged":       MustInterval(74, 5, 20),
		"balanced":     MustBalanced(27, 3),
		"flat":         MustFlat(2),
		"single":       MustFlat(1),
		"uneven-width": MustInterval(50, 10),
	} {
		got, err := FromParents(h.Leaves(), h.Parents())
		if err != nil {
			t.Fatalf("%s: FromParents: %v", name, err)
		}
		sameTree(t, h, got)
	}
}

func TestFromParentsRejectsMalformed(t *testing.T) {
	good := MustInterval(10, 5).Parents()
	cases := map[string]struct {
		n      int
		mutate func([]int32) []int32
	}{
		"no leaves":       {0, func(p []int32) []int32 { return p }},
		"too few nodes":   {len(good) + 1, func(p []int32) []int32 { return p }},
		"two roots":       {10, func(p []int32) []int32 { p[10] = -1; return p }},
		"no root":         {10, func(p []int32) []int32 { p[len(p)-1] = p[10]; return p }},
		"self parent":     {10, func(p []int32) []int32 { p[10] = 10; return p }},
		"leaf parent":     {10, func(p []int32) []int32 { p[0] = -2; p[1] = 0; return p }},
		"parent range":    {10, func(p []int32) []int32 { p[0] = int32(len(p)); return p }},
		"cycle":           {10, func(p []int32) []int32 { p[10], p[11] = 11, 10; return p }},
		"non-contiguous":  {10, func(p []int32) []int32 { p[0], p[5] = p[5], p[0]; return p }},
		"uncovered leaf":  {10, func(p []int32) []int32 { p[9] = -2; return p }},
		"childless inner": {10, func(p []int32) []int32 { return append(p, p[len(p)-2]) }},
	}
	for name, tc := range cases {
		p := tc.mutate(append([]int32(nil), good...))
		if _, err := FromParents(tc.n, p); err == nil {
			t.Errorf("%s: FromParents accepted a malformed tree", name)
		}
	}
}
