package repub

import (
	"math"
	"math/rand"
	"testing"

	"pgpub/internal/attack"
	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
)

func hospitalHiers(s *dataset.Schema) []*hierarchy.Hierarchy {
	return []*hierarchy.Hierarchy{
		hierarchy.MustInterval(s.QI[0].Size(), 5, 20),
		hierarchy.MustFlat(s.QI[1].Size()),
		hierarchy.MustInterval(s.QI[2].Size(), 5, 20),
	}
}

func TestPublishSeries(t *testing.T) {
	d := dataset.Hospital()
	rng := rand.New(rand.NewSource(1))
	s, err := PublishSeries(d, hospitalHiers(d.Schema), pg.Config{K: 2, P: 0.3}, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Releases) != 4 {
		t.Fatalf("releases = %d", len(s.Releases))
	}
	for i, pub := range s.Releases {
		if err := pub.Validate(); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	// Releases must differ (fresh randomness): compare observed values.
	same := true
	for i := 0; i < s.Releases[0].Len() && i < s.Releases[1].Len(); i++ {
		if s.Releases[0].Rows[i].Value != s.Releases[1].Rows[i].Value {
			same = false
		}
	}
	if same && s.Releases[0].Len() > 0 {
		t.Fatal("two releases observed identical perturbations (suspicious)")
	}
	if _, err := PublishSeries(d, hospitalHiers(d.Schema), pg.Config{K: 2, P: 0.3}, 0, rng); err == nil {
		t.Fatal("T=0: want error")
	}
	if _, err := PublishSeries(d, hospitalHiers(d.Schema), pg.Config{K: 2, P: 0.3}, 1, nil); err == nil {
		t.Fatal("nil rng: want error")
	}
}

func TestComposePosteriorSingleMatchesEquation9(t *testing.T) {
	prior := privacy.Uniform(10)
	const p, h = 0.4, 0.6
	y := int32(3)
	want, err := privacy.Posterior(prior, y, p, h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComposePosterior(prior, []Observation{{Y: y, H: h, P: p}})
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if math.Abs(got[x]-want[x]) > 1e-12 {
			t.Fatalf("x=%d: composed %v, Equation 9 gives %v", x, got[x], want[x])
		}
	}
}

func TestComposePosteriorAccumulates(t *testing.T) {
	prior := privacy.Uniform(10)
	y := int32(5)
	obs := []Observation{}
	last := prior[y]
	for T := 1; T <= 6; T++ {
		obs = append(obs, Observation{Y: y, H: 0.5, P: 0.4})
		post, err := ComposePosterior(prior, obs)
		if err != nil {
			t.Fatal(err)
		}
		if err := post.Validate(); err != nil {
			t.Fatal(err)
		}
		if post[y] <= last {
			t.Fatalf("T=%d: repeated consistent observations must increase belief (%v -> %v)",
				T, last, post[y])
		}
		last = post[y]
	}
	if last < 0.5 {
		t.Fatalf("after 6 consistent observations belief is only %v", last)
	}
}

func TestComposePosteriorValidation(t *testing.T) {
	prior := privacy.Uniform(4)
	if _, err := ComposePosterior(privacy.PDF{0.5}, nil); err == nil {
		t.Fatal("invalid prior: want error")
	}
	if _, err := ComposePosterior(prior, []Observation{{Y: 9, H: 0.5, P: 0.5}}); err == nil {
		t.Fatal("y out of domain: want error")
	}
	if _, err := ComposePosterior(prior, []Observation{{Y: 0, H: 2, P: 0.5}}); err == nil {
		t.Fatal("h out of range: want error")
	}
	if _, err := ComposePosterior(prior, []Observation{{Y: 0, H: 0.5, P: 2}}); err == nil {
		t.Fatal("p out of range: want error")
	}
	// p=1 with zero-prior y: uninformative fallback, not an error.
	pm, _ := privacy.PointMass(4, 1)
	post, err := ComposePosterior(pm, []Observation{{Y: 2, H: 0.5, P: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if post[1] != 1 {
		t.Fatal("impossible observation should keep the prior")
	}
}

func TestOddsRatioAndGrowthBound(t *testing.T) {
	// R grows with p; at p=0 it is exactly 1 (no information).
	if r := OddsRatioBound(0, 0.1, 6, 50); r != 1 {
		t.Fatalf("R(p=0) = %v, want 1", r)
	}
	r1 := OddsRatioBound(0.2, 0.1, 6, 50)
	r2 := OddsRatioBound(0.4, 0.1, 6, 50)
	if !(1 < r1 && r1 < r2) {
		t.Fatalf("R not increasing: %v, %v", r1, r2)
	}
	if !math.IsInf(OddsRatioBound(1, 0.1, 6, 50), 1) {
		t.Fatal("R(p=1) must be infinite")
	}
	// Growth bound: 0 at p=0, increasing in T, <= 1.
	g0, err := ComposedGrowthBound(3, 0, 0.1, 6, 50)
	if err != nil || g0 != 0 {
		t.Fatalf("growth(p=0) = %v, %v", g0, err)
	}
	prev := 0.0
	for T := 1; T <= 8; T++ {
		g, err := ComposedGrowthBound(T, 0.3, 0.1, 6, 50)
		if err != nil {
			t.Fatal(err)
		}
		if g <= prev || g > 1 {
			t.Fatalf("T=%d: growth bound %v not increasing in (prev %v]", T, g, prev)
		}
		prev = g
	}
	// Consistency: the T=1 composition bound must not undercut Theorem 3's
	// exact bound (it is deliberately conservative).
	exact, err := privacy.MinDelta(0.3, 0.1, 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := ComposedGrowthBound(1, 0.3, 0.1, 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	if g1 < exact {
		t.Fatalf("composition bound %v undercuts Theorem 3's %v", g1, exact)
	}
	// p=1 degenerates to 1.
	gp1, err := ComposedGrowthBound(2, 1, 0.1, 6, 50)
	if err != nil || gp1 != 1 {
		t.Fatalf("growth(p=1) = %v, %v", gp1, err)
	}
	// Errors.
	if _, err := ComposedGrowthBound(0, 0.3, 0.1, 6, 50); err == nil {
		t.Fatal("T=0: want error")
	}
	if _, err := ComposedGrowthBound(1, -0.1, 0.1, 6, 50); err == nil {
		t.Fatal("negative p: want error")
	}
}

func TestMaxRetentionForSeries(t *testing.T) {
	const lambda, delta, k, domain = 0.1, 0.3, 6, 50
	p1, err := MaxRetentionForSeries(1, lambda, delta, k, domain)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := MaxRetentionForSeries(4, lambda, delta, k, domain)
	if err != nil {
		t.Fatal(err)
	}
	p16, err := MaxRetentionForSeries(16, lambda, delta, k, domain)
	if err != nil {
		t.Fatal(err)
	}
	if !(p1 > p4 && p4 > p16 && p16 > 0) {
		t.Fatalf("admissible p must shrink with T: %v, %v, %v", p1, p4, p16)
	}
	// The solved p meets the bound with near-equality.
	g, err := ComposedGrowthBound(4, p4, lambda, k, domain)
	if err != nil || g > delta+1e-9 {
		t.Fatalf("solved p violates the bound: %v, %v", g, err)
	}
	if _, err := MaxRetentionForSeries(0, lambda, delta, k, domain); err == nil {
		t.Fatal("T=0: want error")
	}
	if _, err := MaxRetentionForSeries(1, lambda, 0, k, domain); err == nil {
		t.Fatal("delta=0: want error")
	}
}

// The headline property: composed Monte-Carlo attacks over T releases never
// exceed the composed growth bound, including under worst-case corruption.
func TestMultiReleaseAttackWithinBound(t *testing.T) {
	d := dataset.Hospital()
	ext, err := attack.NewExternal(d, dataset.HospitalVoterQI())
	if err != nil {
		t.Fatal(err)
	}
	domain := d.Schema.SensitiveDomain()
	const p, k, T = 0.3, 2, 3
	lambda := 1 / float64(domain)
	bound, err := ComposedGrowthBound(T, p, lambda, k, domain)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		s, err := PublishSeries(d, hospitalHiers(d.Schema), pg.Config{K: k, P: p}, T, rng)
		if err != nil {
			t.Fatal(err)
		}
		victim := []int{0, 1, 2, 3, 5, 6, 7, 8}[rng.Intn(8)]
		adv := attack.Adversary{Background: privacy.Uniform(domain), Corrupted: map[int]bool{}}
		for id := 0; id < ext.Len(); id++ {
			if id != victim && rng.Float64() < 0.7 {
				adv.Corrupted[id] = true
			}
		}
		truth := d.Sensitive(ext.RowOf(victim))
		q, err := privacy.ExactReconstruction(domain, truth)
		if err != nil {
			t.Fatal(err)
		}
		_, prior, post, err := MultiReleaseAttack(s, ext, victim, adv, q)
		if err != nil {
			t.Fatal(err)
		}
		if growth := post - prior; growth > bound+1e-9 {
			t.Fatalf("trial %d: composed growth %v exceeds bound %v", trial, growth, bound)
		}
	}
	// Empty series errors.
	if _, _, _, err := MultiReleaseAttack(&Series{}, ext, 0, attack.Adversary{Background: privacy.Uniform(domain)}, privacy.Predicate(make([]bool, domain))); err == nil {
		t.Fatal("empty series: want error")
	}
}

// Re-publication really does leak more: across many trials, the maximum
// composed growth over 5 releases should exceed the maximum single-release
// growth (the quantitative version of Section IX's warning).
func TestRepublicationAccumulatesLeakage(t *testing.T) {
	d := dataset.Hospital()
	ext, err := attack.NewExternal(d, dataset.HospitalVoterQI())
	if err != nil {
		t.Fatal(err)
	}
	domain := d.Schema.SensitiveDomain()
	const p, k = 0.3, 2
	rng := rand.New(rand.NewSource(11))
	maxSingle, maxMulti := 0.0, 0.0
	for trial := 0; trial < 80; trial++ {
		s, err := PublishSeries(d, hospitalHiers(d.Schema), pg.Config{K: k, P: p}, 5, rng)
		if err != nil {
			t.Fatal(err)
		}
		victim := []int{0, 1, 2, 3, 5, 6, 7, 8}[rng.Intn(8)]
		adv := attack.Adversary{Background: privacy.Uniform(domain), Corrupted: map[int]bool{}}
		for id := 0; id < ext.Len(); id++ {
			if id != victim {
				adv.Corrupted[id] = true
			}
		}
		truth := d.Sensitive(ext.RowOf(victim))
		q, err := privacy.ExactReconstruction(domain, truth)
		if err != nil {
			t.Fatal(err)
		}
		obs, prior, post, err := MultiReleaseAttack(s, ext, victim, adv, q)
		if err != nil {
			t.Fatal(err)
		}
		if g := post - prior; g > maxMulti {
			maxMulti = g
		}
		// Single-release growth from the first observation alone.
		single, err := ComposePosterior(adv.Background, obs[:1])
		if err != nil {
			t.Fatal(err)
		}
		sc, err := single.Confidence(q)
		if err != nil {
			t.Fatal(err)
		}
		if g := sc - prior; g > maxSingle {
			maxSingle = g
		}
	}
	if !(maxMulti > maxSingle+0.05) {
		t.Fatalf("5 releases should leak clearly more: single %v, multi %v", maxSingle, maxMulti)
	}
}
