// Package repub studies re-publication, the future-work direction the paper
// names in Section IX: releasing fresh PG anonymizations of the microdata
// over time. Each release re-runs all three phases with fresh randomness, so
// an adversary who collects T releases observes T (possibly perturbed)
// values of the victim's crucial tuples and can compose them.
//
// The composition model: conditioned on the victim's true value X, the T
// releases are independent (fresh perturbation and sampling), so the exact
// multi-release posterior is the naive-Bayes product of the per-release
// likelihoods implied by Equation 9:
//
//	ℓ_t(x) = h_t · P[x→y_t] / (p_t·prior[y_t] + u_t)  +  (1 − h_t)
//
// with h_t from the per-release linking attack. For T = 1 this reduces to
// Equation 9 exactly.
//
// The package also derives a closed-form growth bound. Per release, the
// posterior odds of any predicate Q grow by at most R = 1 + h⊤·p/u (the
// worst-case likelihood ratio between a value matching the observation and
// any other value). After T releases the odds grow by at most R^T, and
// maximizing the resulting growth over the prior mass of Q gives
//
//	Δ_T  ≤  (sqrt(R^T) − 1) / (sqrt(R^T) + 1).
//
// The bound is intentionally conservative (it discards the λ-skew inside the
// denominator, so at T = 1 it is looser than Theorem 3's exact bound); its
// value is that it composes, which Theorem 3 does not. MaxRetentionForSeries
// inverts it to plan a per-release retention probability that keeps the
// composed growth under a target Δ — quantifying the paper's remark that
// re-publication "is a difficult problem": the admissible p shrinks with T.
package repub

import (
	"fmt"
	"math"
	"math/rand"

	"pgpub/internal/attack"
	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
)

// Series is a sequence of independent PG releases of the same microdata.
type Series struct {
	Releases []*pg.Published
}

// PublishSeries produces T independent releases with the given base
// configuration (each uses fresh randomness from rng).
func PublishSeries(d *dataset.Table, hiers []*hierarchy.Hierarchy, cfg pg.Config, T int, rng *rand.Rand) (*Series, error) {
	if T < 1 {
		return nil, fmt.Errorf("repub: need at least 1 release, got %d", T)
	}
	if rng == nil {
		return nil, fmt.Errorf("repub: rng is required")
	}
	s := &Series{}
	for t := 0; t < T; t++ {
		c := cfg
		c.Rng = rng
		pub, err := pg.Publish(d, hiers, c)
		if err != nil {
			return nil, fmt.Errorf("repub: release %d: %w", t+1, err)
		}
		s.Releases = append(s.Releases, pub)
	}
	return s, nil
}

// Observation is one release's evidence about the victim: the observed
// sensitive value of the crucial tuple, the ownership probability h computed
// by the per-release linking attack, and the release's retention
// probability.
type Observation struct {
	Y int32
	H float64
	P float64
}

// ComposePosterior computes the exact multi-release posterior pdf under the
// independence model described in the package comment.
func ComposePosterior(prior privacy.PDF, obs []Observation) (privacy.PDF, error) {
	if err := prior.Validate(); err != nil {
		return nil, err
	}
	n := len(prior)
	post := prior.Clone()
	for t, o := range obs {
		if o.Y < 0 || int(o.Y) >= n {
			return nil, fmt.Errorf("repub: observation %d: y = %d outside domain of %d", t, o.Y, n)
		}
		if o.H < 0 || o.H > 1 || o.P < 0 || o.P > 1 {
			return nil, fmt.Errorf("repub: observation %d: h = %v, p = %v outside [0,1]", t, o.H, o.P)
		}
		u := (1 - o.P) / float64(n)
		den := o.P*prior[o.Y] + u
		mass := 0.0
		for x := range post {
			var like float64
			if den == 0 {
				like = 1 // impossible observation under the prior: uninformative
			} else {
				trans := u
				if int32(x) == o.Y {
					trans += o.P
				}
				like = o.H*trans/den + (1 - o.H)
			}
			post[x] *= like
			mass += post[x]
		}
		if mass == 0 {
			return nil, fmt.Errorf("repub: observation %d annihilated the posterior", t)
		}
		for x := range post {
			post[x] /= mass
		}
	}
	return post, nil
}

// MultiReleaseAttack runs the per-release linking attack against every
// release of a series and composes the results: it returns the per-release
// observations, the prior and the composed posterior confidence about Q.
func MultiReleaseAttack(s *Series, ext *attack.External, victim int, adv attack.Adversary, q privacy.Predicate) (obs []Observation, prior, posterior float64, err error) {
	if len(s.Releases) == 0 {
		return nil, 0, 0, fmt.Errorf("repub: empty series")
	}
	for _, pub := range s.Releases {
		res, err := attack.LinkAttack(pub, ext, victim, adv, q)
		if err != nil {
			return nil, 0, 0, err
		}
		obs = append(obs, Observation{Y: res.Y, H: res.H, P: pub.P})
		prior = res.Prior
	}
	post, err := ComposePosterior(adv.Background, obs)
	if err != nil {
		return nil, 0, 0, err
	}
	posterior, err = post.Confidence(q)
	if err != nil {
		return nil, 0, 0, err
	}
	return obs, prior, posterior, nil
}

// OddsRatioBound returns R = 1 + h⊤·p/u, the worst-case per-release
// multiplicative growth of any predicate's posterior odds.
func OddsRatioBound(p, lambda float64, k, domain int) float64 {
	if p >= 1 {
		return math.Inf(1)
	}
	u := (1 - p) / float64(domain)
	return 1 + privacy.HTop(p, lambda, k, domain)*p/u
}

// ComposedGrowthBound bounds the posterior-minus-prior growth achievable by
// combining T releases: (sqrt(R^T) − 1) / (sqrt(R^T) + 1).
func ComposedGrowthBound(T int, p, lambda float64, k, domain int) (float64, error) {
	if T < 1 {
		return 0, fmt.Errorf("repub: need at least 1 release, got %d", T)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("repub: p = %v outside [0,1]", p)
	}
	if p == 1 {
		return 1, nil
	}
	r := OddsRatioBound(p, lambda, k, domain)
	sq := math.Pow(r, float64(T)/2)
	return (sq - 1) / (sq + 1), nil
}

// MaxRetentionForSeries returns the largest per-release retention
// probability p such that the composed growth over T releases stays within
// delta. It returns an error when even p = 0 exceeds the target (impossible:
// at p = 0 the bound is 0 for any T).
func MaxRetentionForSeries(T int, lambda, delta float64, k, domain int) (float64, error) {
	if T < 1 {
		return 0, fmt.Errorf("repub: need at least 1 release, got %d", T)
	}
	if delta <= 0 || delta > 1 {
		return 0, fmt.Errorf("repub: delta = %v outside (0,1]", delta)
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		g, err := ComposedGrowthBound(T, mid, lambda, k, domain)
		if err != nil {
			return 0, err
		}
		if g <= delta {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
