package repub

import (
	"fmt"
	"math"

	"pgpub/internal/pg"
	"pgpub/internal/snapshot"
)

// accountingTol is the tolerance for recomputed-vs-stored guarantee
// accounting: the stored float64s are exact function values, so anything
// beyond rounding noise is corruption or a mislabeled release.
const accountingTol = 1e-9

// ChainAccounting computes the cross-release guarantee accounting a release
// snapshot records: the per-release odds-ratio bound R and the composed
// T-release breach-probability growth bound Δ_T, under the release's
// announced retention probability p, adversary skew λ, group floor k, and
// sensitive domain size.
func ChainAccounting(T int, p, lambda float64, k, domain int) (oddsRatio, composedDelta float64, err error) {
	composedDelta, err = ComposedGrowthBound(T, p, lambda, k, domain)
	if err != nil {
		return 0, 0, err
	}
	return OddsRatioBound(p, lambda, k, domain), composedDelta, nil
}

// ChainMetadataFor stamps release `release`'s chain block: the delta
// summary plus the guarantee accounting for the T = release+1 releases
// published so far.
func ChainMetadataFor(release int, parentCRC uint32, inserts, deletes, sourceRows int, p, lambda float64, k, domain int) (*snapshot.ChainMetadata, error) {
	r, composed, err := ChainAccounting(release+1, p, lambda, k, domain)
	if err != nil {
		return nil, err
	}
	return &snapshot.ChainMetadata{
		Release:       release,
		ParentCRC:     parentCRC,
		Inserts:       inserts,
		Deletes:       deletes,
		SourceRows:    sourceRows,
		OddsRatio:     r,
		ComposedDelta: composed,
	}, nil
}

// ReleaseInfo is VerifyChain's per-release report.
type ReleaseInfo struct {
	// Path is the snapshot file.
	Path string
	// CRC is the file's header CRC — the identity the next release's
	// ParentCRC must name.
	CRC uint32
	// Chain is the verified release-chain block.
	Chain *snapshot.ChainMetadata
	// Rows is the published row count |D*|.
	Rows int
}

// VerifyChain walks a release chain r0..rN given its snapshot paths in
// release order and checks the multi-release contract end to end:
//
//   - every snapshot loads under the fully-verifying reader (every CRC,
//     every structural validator) and carries a release-chain block;
//   - release numbers are 0..N in order, and each ParentCRC equals the
//     previous file's header CRC — the chain is unbroken and unreordered;
//   - the publication parameters the guarantees depend on (P, K, algorithm,
//     sensitive domain, certified λ) are constant across the chain;
//   - each release's SourceRows is consistent with its parent's plus the
//     recorded delta summary;
//   - the stored guarantee accounting equals ChainAccounting recomputed
//     from the release's own parameters, and the composed bound Δ_T is
//     non-decreasing in T (Theorem 1–3 composition only loses ground as
//     releases accumulate).
//
// On success it returns one ReleaseInfo per release.
func VerifyChain(paths []string) ([]ReleaseInfo, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("repub: empty chain")
	}
	infos := make([]ReleaseInfo, 0, len(paths))
	var prev ReleaseInfo
	var prevPub *pg.Published
	var prevLambda float64
	for i, path := range paths {
		pub, gm, chain, err := snapshot.LoadRelease(path)
		if err != nil {
			return nil, fmt.Errorf("repub: release %d: %w", i, err)
		}
		crc, err := snapshot.HeaderCRC(path)
		if err != nil {
			return nil, fmt.Errorf("repub: release %d: %w", i, err)
		}
		if chain == nil {
			return nil, fmt.Errorf("repub: release %d (%s) has no release-chain block (not published as part of a chain)", i, path)
		}
		if chain.Release != i {
			return nil, fmt.Errorf("repub: release %d (%s) is numbered %d — chain out of order or incomplete", i, path, chain.Release)
		}
		if i == 0 {
			if chain.Inserts != 0 || chain.Deletes != 0 {
				return nil, fmt.Errorf("repub: release 0 records a delta (%d inserts, %d deletes)", chain.Inserts, chain.Deletes)
			}
		} else {
			if chain.ParentCRC != prev.CRC {
				return nil, fmt.Errorf("repub: release %d (%s) names parent %08x, release %d's header CRC is %08x — broken chain link",
					i, path, chain.ParentCRC, i-1, prev.CRC)
			}
			if pub.P != prevPub.P || pub.K != prevPub.K || pub.Algorithm != prevPub.Algorithm {
				return nil, fmt.Errorf("repub: release %d changes parameters (p=%v k=%d %v, chain has p=%v k=%d %v) — guarantees do not compose across them",
					i, pub.P, pub.K, pub.Algorithm, prevPub.P, prevPub.K, prevPub.Algorithm)
			}
			if pub.Schema.SensitiveDomain() != prevPub.Schema.SensitiveDomain() {
				return nil, fmt.Errorf("repub: release %d changes the sensitive domain (%d, chain has %d)",
					i, pub.Schema.SensitiveDomain(), prevPub.Schema.SensitiveDomain())
			}
			if want := prev.Chain.SourceRows - chain.Deletes + chain.Inserts; chain.SourceRows != want {
				return nil, fmt.Errorf("repub: release %d records %d source rows; parent's %d %+d inserts %+d deletes gives %d",
					i, chain.SourceRows, prev.Chain.SourceRows, chain.Inserts, -chain.Deletes, want)
			}
			if chain.ComposedDelta+accountingTol < prev.Chain.ComposedDelta {
				return nil, fmt.Errorf("repub: release %d's composed bound %v shrinks below release %d's %v",
					i, chain.ComposedDelta, i-1, prev.Chain.ComposedDelta)
			}
		}

		// Recompute the accounting. The certified λ lives in the guarantee
		// block; a chained release must carry one, or the accounting has no
		// stated adversary class.
		if gm == nil {
			return nil, fmt.Errorf("repub: release %d (%s) has no guarantee block to recompute the accounting against", i, path)
		}
		if i > 0 && gm.Lambda != prevLambda {
			return nil, fmt.Errorf("repub: release %d changes λ (%v, chain has %v)", i, gm.Lambda, prevLambda)
		}
		r, composed, err := ChainAccounting(i+1, pub.P, gm.Lambda, pub.K, pub.Schema.SensitiveDomain())
		if err != nil {
			return nil, fmt.Errorf("repub: release %d: %w", i, err)
		}
		if math.Abs(r-chain.OddsRatio) > accountingTol || math.Abs(composed-chain.ComposedDelta) > accountingTol {
			return nil, fmt.Errorf("repub: release %d stores accounting (R=%v, Δ=%v), parameters give (R=%v, Δ=%v)",
				i, chain.OddsRatio, chain.ComposedDelta, r, composed)
		}

		info := ReleaseInfo{Path: path, CRC: crc, Chain: chain, Rows: pub.Len()}
		infos = append(infos, info)
		prev, prevPub, prevLambda = info, pub, gm.Lambda
	}
	return infos, nil
}
