package repub

import (
	"path/filepath"
	"strings"
	"testing"

	"pgpub/internal/pg"
	"pgpub/internal/sal"
	"pgpub/internal/snapshot"
)

// buildChainFiles publishes a T-release chain to dir the way pgpublish
// -base/-delta does: pg.Chain for the pipeline, ChainMetadataFor for the
// accounting, snapshot.SaveRelease for the files. Returns the paths in
// release order.
func buildChainFiles(t *testing.T, dir string, T int, seed int64) []string {
	t.Helper()
	base, err := sal.Generate(1500, 11)
	if err != nil {
		t.Fatal(err)
	}
	const lambda, rho1 = 0.5, 0.4
	hiers := sal.Hierarchies(base.Schema)
	c := pg.NewChain(base, hiers)
	cfg := pg.Config{K: 6, P: 0.3, Seed: seed}
	paths := make([]string, 0, T)
	var parentCRC uint32
	for r := 0; r < T; r++ {
		dl := pg.Delta{}
		if r > 0 && r%2 == 1 {
			for i := 0; i < 10; i++ {
				dl.Deletes = append(dl.Deletes, i*31)
			}
			ins, err := sal.Generate(20, int64(100+r))
			if err != nil {
				t.Fatal(err)
			}
			dl.Inserts = ins
		}
		inserts := 0
		if dl.Inserts != nil {
			inserts = dl.Inserts.Len()
		}
		pub, err := pg.Republish(c, dl, cfg)
		if err != nil {
			t.Fatalf("release %d: %v", r, err)
		}
		meta, err := pub.Metadata(lambda, rho1)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := ChainMetadataFor(r, parentCRC, inserts, len(dl.Deletes), c.Table().Len(),
			pub.P, lambda, pub.K, pub.Schema.SensitiveDomain())
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "r"+string(rune('0'+r))+".pgsnap")
		if err := snapshot.SaveRelease(path, pub, meta.Guarantee, chain); err != nil {
			t.Fatal(err)
		}
		if parentCRC, err = snapshot.HeaderCRC(path); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	return paths
}

// TestVerifyChain covers the happy path and every class of chain break:
// reordering, a skipped release, a foreign parent, and a chainless file.
func TestVerifyChain(t *testing.T) {
	dir := t.TempDir()
	paths := buildChainFiles(t, dir, 4, 23)

	infos, err := VerifyChain(paths)
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if len(infos) != 4 {
		t.Fatalf("VerifyChain returned %d releases, want 4", len(infos))
	}
	for i, info := range infos {
		if info.Chain.Release != i {
			t.Fatalf("release %d reported as %d", i, info.Chain.Release)
		}
		if i > 0 && infos[i].Chain.ComposedDelta < infos[i-1].Chain.ComposedDelta {
			t.Fatalf("composed bound not monotone at release %d", i)
		}
	}

	// Reordered chain: the numbering check fires.
	if _, err := VerifyChain([]string{paths[1], paths[0]}); err == nil || !strings.Contains(err.Error(), "numbered") {
		t.Fatalf("reordered chain: err = %v", err)
	}
	// Skipped release: r2's parent is r1, not r0.
	if _, err := VerifyChain([]string{paths[0], paths[2]}); err == nil || !strings.Contains(err.Error(), "numbered") {
		t.Fatalf("skipped release: err = %v", err)
	}
	// Foreign parent: a second chain's r1 does not descend from this r0.
	other := buildChainFiles(t, t.TempDir(), 2, 77)
	if _, err := VerifyChain([]string{paths[0], other[1]}); err == nil || !strings.Contains(err.Error(), "chain link") {
		t.Fatalf("foreign parent: err = %v", err)
	}
	// Chainless release.
	pub, gm, _, err := snapshot.LoadRelease(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "plain.pgsnap")
	if err := snapshot.Save(plain, pub, gm); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyChain([]string{plain}); err == nil || !strings.Contains(err.Error(), "release-chain block") {
		t.Fatalf("chainless release: err = %v", err)
	}
	// Tampered accounting.
	bad := *infos[1].Chain
	bad.OddsRatio += 0.125
	pub1, gm1, _, err := snapshot.LoadRelease(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	tampered := filepath.Join(dir, "tampered.pgsnap")
	if err := snapshot.SaveRelease(tampered, pub1, gm1, &bad); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyChain([]string{paths[0], tampered}); err == nil || !strings.Contains(err.Error(), "accounting") {
		t.Fatalf("tampered accounting: err = %v", err)
	}
}

// TestChainAccountingMatchesBounds pins ChainAccounting to the bound
// functions it summarizes.
func TestChainAccountingMatchesBounds(t *testing.T) {
	const p, lambda = 0.3, 0.5
	const k, domain = 6, 50
	for T := 1; T <= 5; T++ {
		r, composed, err := ChainAccounting(T, p, lambda, k, domain)
		if err != nil {
			t.Fatal(err)
		}
		if want := OddsRatioBound(p, lambda, k, domain); r != want {
			t.Fatalf("T=%d: odds ratio %v, want %v", T, r, want)
		}
		want, err := ComposedGrowthBound(T, p, lambda, k, domain)
		if err != nil {
			t.Fatal(err)
		}
		if composed != want {
			t.Fatalf("T=%d: composed %v, want %v", T, composed, want)
		}
	}
}
