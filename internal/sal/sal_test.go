package sal

import (
	"testing"

	"pgpub/internal/dataset"
)

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if s.D() != 8 {
		t.Fatalf("D = %d, want 8 QI attributes", s.D())
	}
	if s.Sensitive.Name != "Income" || s.SensitiveDomain() != 50 {
		t.Fatalf("sensitive = %q/%d, want Income/50", s.Sensitive.Name, s.SensitiveDomain())
	}
	names := s.ColumnNames()
	want := []string{"Age", "Gender", "Education", "Birthplace", "Occupation",
		"Race", "Work-class", "Marital-status", "Income"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("column %d = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestHierarchiesMatchSchema(t *testing.T) {
	s := Schema()
	hiers := Hierarchies(s)
	if len(hiers) != s.D() {
		t.Fatalf("%d hierarchies for %d attributes", len(hiers), s.D())
	}
	for j, h := range hiers {
		if h.Leaves() != s.QI[j].Size() {
			t.Fatalf("hierarchy %d has %d leaves, attribute has %d", j, h.Leaves(), s.QI[j].Size())
		}
		if !h.Uniform() {
			t.Fatalf("hierarchy %d is not uniform", j)
		}
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	a, err := Generate(2000, 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Len() != 2000 {
		t.Fatalf("Len = %d", a.Len())
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b, err := Generate(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		for j := range a.Row(i) {
			if a.Row(i)[j] != b.Row(i)[j] {
				t.Fatalf("generation not deterministic at row %d col %d", i, j)
			}
		}
	}
	c, err := Generate(2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < a.Len(); i++ {
		if a.Sensitive(i) != c.Sensitive(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical incomes")
	}
	if _, err := Generate(0, 1); err == nil {
		t.Fatal("n = 0: want error")
	}
}

func TestIncomeDistributionShape(t *testing.T) {
	d, err := Generate(30000, 42)
	if err != nil {
		t.Fatal(err)
	}
	classOf, err := Categorizer(2)
	if err != nil {
		t.Fatal(err)
	}
	low := 0
	for i := 0; i < d.Len(); i++ {
		if classOf(d.Sensitive(i)) == 0 {
			low++
		}
	}
	frac := float64(low) / float64(d.Len())
	// The lower bracket should be the majority but not overwhelming, so
	// pessimistic (majority-class) trees have meaningful error.
	if frac < 0.5 || frac > 0.8 {
		t.Fatalf("lower-bracket fraction = %v, want in [0.5, 0.8]", frac)
	}
}

func TestIncomeCorrelatesWithEducation(t *testing.T) {
	d, err := Generate(30000, 43)
	if err != nil {
		t.Fatal(err)
	}
	eduIdx := d.Schema.QIIndex("Education")
	var loEdu, hiEdu []float64
	for i := 0; i < d.Len(); i++ {
		inc := float64(d.Sensitive(i))
		if d.QI(i, eduIdx) < 4 {
			loEdu = append(loEdu, inc)
		} else if d.QI(i, eduIdx) >= 12 {
			hiEdu = append(hiEdu, inc)
		}
	}
	if len(loEdu) == 0 || len(hiEdu) == 0 {
		t.Fatal("education strata empty")
	}
	if mean(hiEdu)-mean(loEdu) < 5 {
		t.Fatalf("education barely moves income: lo=%v hi=%v", mean(loEdu), mean(hiEdu))
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestCategorizer(t *testing.T) {
	c2, err := Categorizer(2)
	if err != nil {
		t.Fatal(err)
	}
	if c2(0) != 0 || c2(24) != 0 || c2(25) != 1 || c2(49) != 1 {
		t.Fatal("m=2 category bounds wrong")
	}
	c3, err := Categorizer(3)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: m=3 refines the wealthier category of m=2 into [25,36] and
	// [37,49].
	if c3(24) != 0 || c3(25) != 1 || c3(36) != 1 || c3(37) != 2 || c3(49) != 2 {
		t.Fatal("m=3 category bounds wrong")
	}
	if _, err := Categorizer(4); err == nil {
		t.Fatal("m=4: want error")
	}
	if _, err := CategoryBounds(1); err == nil {
		t.Fatal("m=1: want error")
	}
}

func TestGenerateAttributesInDomain(t *testing.T) {
	d, err := Generate(5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check marginal coverage: every attribute uses a reasonable part
	// of its domain.
	for j, a := range d.Schema.QI {
		seen := map[int32]bool{}
		for i := 0; i < d.Len(); i++ {
			seen[d.QI(i, j)] = true
		}
		if len(seen) < a.Size()/2 {
			t.Fatalf("attribute %q uses only %d of %d values", a.Name, len(seen), a.Size())
		}
	}
	_ = dataset.Discrete
	var incomes [50]int
	for i := 0; i < d.Len(); i++ {
		incomes[d.Sensitive(i)]++
	}
	nonzero := 0
	for _, c := range incomes {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero < 25 {
		t.Fatalf("income uses only %d of 50 buckets", nonzero)
	}
}

func TestGenerateWithModelSignalStrength(t *testing.T) {
	// Less noise means income is more predictable: the same decision
	// boundary separates better. Verify through the score spread proxy:
	// variance of income within a fixed education stratum shrinks.
	lowNoise := DefaultModel()
	lowNoise.NoiseSigma = 0.05
	highNoise := DefaultModel()
	highNoise.NoiseSigma = 0.3
	a, err := GenerateWithModel(20000, 1, lowNoise)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWithModel(20000, 1, highNoise)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(d *dataset.Table) float64 {
		eduIdx := d.Schema.QIIndex("Education")
		var xs []float64
		for i := 0; i < d.Len(); i++ {
			if d.QI(i, eduIdx) == 8 {
				xs = append(xs, float64(d.Sensitive(i)))
			}
		}
		m := mean(xs)
		v := 0.0
		for _, x := range xs {
			v += (x - m) * (x - m)
		}
		return v / float64(len(xs))
	}
	if !(spread(a) < spread(b)) {
		t.Fatalf("noise did not widen income spread: %v vs %v", spread(a), spread(b))
	}
	if _, err := GenerateWithModel(10, 1, Model{NoiseSigma: -1}); err == nil {
		t.Fatal("negative sigma: want error")
	}
}
