// Package sal synthesizes the SAL census database of Section VII-A. The
// original is an IPUMS extract (700k tuples, 9 attributes) that is not
// redistributable; this generator produces a schema-compatible substitute
// whose Income column is statistically predictable — but not deterministic —
// from the QI attributes, which is exactly the property the decision-tree
// utility experiments (Figures 2 and 3) exercise. See DESIGN.md §3.
package sal

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
)

// Attribute domain sizes, mirroring the shape of the IPUMS columns.
const (
	AgeMin, AgeMax  = 17, 90 // 74 values
	EducationLevels = 16
	Birthplaces     = 50
	Occupations     = 50
	Races           = 8
	WorkClasses     = 8
	MaritalStatuses = 6
	// IncomeDomain is |U^s| = 50: bucket i covers [2000i, 2000(i+1)) USD,
	// exactly the paper's Income domain.
	IncomeDomain = 50
)

// Schema builds the SAL schema: 8 QI attributes and the sensitive Income.
func Schema() *dataset.Schema {
	mk := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = prefix + strconv.Itoa(i)
		}
		return out
	}
	qi := []*dataset.Attribute{
		dataset.MustIntAttribute("Age", AgeMin, AgeMax),
		dataset.MustAttribute("Gender", "M", "F"),
		dataset.MustAttribute("Education", mk("Edu", EducationLevels)...),
		dataset.MustAttribute("Birthplace", mk("BP", Birthplaces)...),
		dataset.MustAttribute("Occupation", mk("Occ", Occupations)...),
		dataset.MustAttribute("Race", mk("Race", Races)...),
		dataset.MustAttribute("Work-class", mk("WC", WorkClasses)...),
		dataset.MustAttribute("Marital-status", mk("MS", MaritalStatuses)...),
	}
	income := dataset.MustIntAttribute("Income", 0, IncomeDomain-1)
	// Income is ordered (bracket codes), which lets trees threshold on it
	// when it is ever used as a feature; as the sensitive attribute its
	// order is irrelevant to privacy.
	return dataset.MustSchema(qi, income)
}

// Hierarchies builds the generalization hierarchies used by Phase 2 on SAL.
// All are uniform, enabling both TDS and full-domain recoding.
func Hierarchies(s *dataset.Schema) []*hierarchy.Hierarchy {
	return []*hierarchy.Hierarchy{
		hierarchy.MustInterval(s.QI[0].Size(), 5, 10, 20, 40), // Age bands
		hierarchy.MustFlat(s.QI[1].Size()),                    // Gender
		hierarchy.MustInterval(s.QI[2].Size(), 2, 4, 8),       // Education
		hierarchy.MustInterval(s.QI[3].Size(), 5, 25),         // Birthplace regions
		hierarchy.MustInterval(s.QI[4].Size(), 5, 25),         // Occupation families
		hierarchy.MustInterval(s.QI[5].Size(), 2, 4),          // Race
		hierarchy.MustInterval(s.QI[6].Size(), 2, 4),          // Work-class
		hierarchy.MustInterval(s.QI[7].Size(), 3),             // Marital status
	}
}

// Model parameterizes the latent earning-score process so experiments can
// vary the signal strength (Extra E8): income = clamp(50·score + offset)
// with score = weights · (normalized education, occupation, age factor,
// work-class) + gender gap + Gaussian noise.
type Model struct {
	EduWeight, OccWeight, AgeWeight, WCWeight float64
	GenderGap                                 float64
	NoiseSigma                                float64
	Offset                                    float64
}

// DefaultModel returns the calibration used throughout the evaluation: the
// lower income bracket ([0,24]) holds roughly 60-65% of tuples and decision
// trees reach good-but-imperfect accuracy.
func DefaultModel() Model {
	return Model{
		EduWeight: 0.36, OccWeight: 0.26, AgeWeight: 0.16, WCWeight: 0.08,
		GenderGap: 0.05, NoiseSigma: 0.13, Offset: -2,
	}
}

// Generate synthesizes n tuples with the given seed under DefaultModel. The
// latent model: education is right-skewed; occupation correlates with
// education; work-class with occupation; income follows a linear earning
// score over education, occupation, age (peaking mid-career), gender and
// work-class, plus Gaussian noise — so trees can reach good-but-imperfect
// accuracy.
func Generate(n int, seed int64) (*dataset.Table, error) {
	return GenerateWithModel(n, seed, DefaultModel())
}

// GenerateWithModel synthesizes n tuples under an explicit earning model.
func GenerateWithModel(n int, seed int64, m Model) (*dataset.Table, error) {
	if n < 1 {
		return nil, fmt.Errorf("sal: need at least 1 tuple, got %d", n)
	}
	if m.NoiseSigma < 0 {
		return nil, fmt.Errorf("sal: noise sigma must be non-negative, got %v", m.NoiseSigma)
	}
	s := Schema()
	t := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		t.MustAppend(generateRow(rng, m))
	}
	return t, nil
}

// generateRow draws one individual.
func generateRow(rng *rand.Rand, m Model) []int32 {
	age := int32(AgeMin + rng.Intn(AgeMax-AgeMin+1))
	gender := int32(rng.Intn(2))

	// Education: triangular-ish, clustered around the middle levels.
	edu := int32((rng.Intn(EducationLevels) + rng.Intn(EducationLevels)) / 2)

	birthplace := int32(rng.Intn(Birthplaces))
	race := int32(rng.Intn(Races))

	// Occupation tracks education with noise.
	occBase := float64(edu) / float64(EducationLevels-1) * float64(Occupations-1)
	occ := clampInt(int(occBase+rng.NormFloat64()*8), 0, Occupations-1)

	// Work-class tracks occupation with noise.
	wcBase := float64(occ) / float64(Occupations-1) * float64(WorkClasses-1)
	wc := clampInt(int(wcBase+rng.NormFloat64()*1.5), 0, WorkClasses-1)

	// Marital status loosely tracks age.
	msBase := float64(age-AgeMin) / float64(AgeMax-AgeMin) * float64(MaritalStatuses-1)
	ms := clampInt(int(msBase+rng.NormFloat64()*1.2), 0, MaritalStatuses-1)

	income := incomeOf(age, gender, edu, int32(occ), int32(wc), rng, m)

	return []int32{
		age - AgeMin, gender, edu, birthplace, int32(occ),
		race, int32(wc), int32(ms), income,
	}
}

// incomeOf draws the income bucket from the earning-score model.
func incomeOf(age, gender, edu, occ, wc int32, rng *rand.Rand, m Model) int32 {
	eduN := float64(edu) / float64(EducationLevels-1)
	occN := float64(occ) / float64(Occupations-1)
	wcN := float64(wc) / float64(WorkClasses-1)
	// Age factor: ramps up to a mid-career plateau around 45-60.
	a := float64(age)
	ageF := 1 - math.Abs(a-52)/52
	if ageF < 0 {
		ageF = 0
	}
	genderF := 0.0
	if gender == 0 {
		genderF = m.GenderGap // the gender pay gap present in census data
	}
	score := m.EduWeight*eduN + m.OccWeight*occN + m.AgeWeight*ageF + m.WCWeight*wcN + genderF +
		rng.NormFloat64()*m.NoiseSigma
	income := int(score*50 + m.Offset)
	return int32(clampInt(income, 0, IncomeDomain-1))
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CategoryBounds returns the income-category upper bounds of Section VII-A:
// m = 2 -> [0,24],[25,49]; m = 3 -> [0,24],[25,36],[37,49].
func CategoryBounds(m int) ([]int32, error) {
	switch m {
	case 2:
		return []int32{24, 49}, nil
	case 3:
		return []int32{24, 36, 49}, nil
	default:
		return nil, fmt.Errorf("sal: the paper varies m between 2 and 3, got %d", m)
	}
}

// Categorizer returns the classOf function for m income categories.
func Categorizer(m int) (func(int32) int, error) {
	bounds, err := CategoryBounds(m)
	if err != nil {
		return nil, err
	}
	return func(income int32) int {
		for c, hi := range bounds {
			if income <= hi {
				return c
			}
		}
		return len(bounds) - 1
	}, nil
}
