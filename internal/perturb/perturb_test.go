package perturb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pgpub/internal/dataset"
)

func TestNewPerturberValidation(t *testing.T) {
	if _, err := NewPerturber(-0.1, 10); err == nil {
		t.Fatal("negative p: want error")
	}
	if _, err := NewPerturber(1.1, 10); err == nil {
		t.Fatal("p > 1: want error")
	}
	if _, err := NewPerturber(0.5, 0); err == nil {
		t.Fatal("empty domain: want error")
	}
	if _, err := NewPerturber(0.5, 10); err != nil {
		t.Fatal("valid params rejected")
	}
}

func TestTransitionProbEquation11(t *testing.T) {
	pb, _ := NewPerturber(0.25, 4)
	// Eq. 11: diag = p + (1-p)/|U|; off = (1-p)/|U|.
	if got := pb.TransitionProb(1, 1); math.Abs(got-(0.25+0.75/4)) > 1e-15 {
		t.Fatalf("diag = %v", got)
	}
	if got := pb.TransitionProb(1, 2); math.Abs(got-0.75/4) > 1e-15 {
		t.Fatalf("off = %v", got)
	}
}

// Property: every row of the transition matrix sums to 1 and matches
// TransitionProb.
func TestMatrixStochastic(t *testing.T) {
	f := func(pRaw uint8, nRaw uint8) bool {
		p := float64(pRaw%101) / 100
		n := int(nRaw%20) + 1
		pb, err := NewPerturber(p, n)
		if err != nil {
			return false
		}
		m := pb.Matrix()
		for a := range m {
			sum := 0.0
			for b := range m[a] {
				if m[a][b] != pb.TransitionProb(int32(a), int32(b)) {
					return false
				}
				sum += m[a][b]
			}
			if math.Abs(sum-1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueRetentionFrequency(t *testing.T) {
	// With p = 0.6 over a domain of 5, P[output == input] = 0.6 + 0.4/5 =
	// 0.68. Check a Monte-Carlo frequency within 3 sigma.
	pb, _ := NewPerturber(0.6, 5)
	rng := rand.New(rand.NewSource(42))
	const trials = 200000
	same := 0
	for i := 0; i < trials; i++ {
		if pb.Value(3, rng) == 3 {
			same++
		}
	}
	want := 0.68
	got := float64(same) / trials
	sigma := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 3*sigma {
		t.Fatalf("retention frequency %v, want %v +- %v", got, want, 3*sigma)
	}
}

func TestTableP1P2(t *testing.T) {
	h := dataset.Hospital()
	pb, _ := NewPerturber(0.5, h.Schema.SensitiveDomain())
	rng := rand.New(rand.NewSource(7))
	dp, err := pb.Table(h, rng)
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	if dp.Len() != h.Len() {
		t.Fatal("perturbation changed cardinality")
	}
	for i := 0; i < h.Len(); i++ {
		// P1: QI untouched.
		for j := 0; j < h.Schema.D(); j++ {
			if dp.QI(i, j) != h.QI(i, j) {
				t.Fatalf("row %d QI %d changed", i, j)
			}
		}
		// P2: sensitive stays in domain.
		if !h.Schema.Sensitive.Valid(dp.Sensitive(i)) {
			t.Fatalf("row %d sensitive out of domain", i)
		}
	}
	// The original table is untouched.
	if h.Schema.Sensitive.Label(h.Sensitive(0)) != "bronchitis" {
		t.Fatal("source table mutated")
	}
	// Domain mismatch is rejected.
	bad, _ := NewPerturber(0.5, 3)
	if _, err := bad.Table(h, rng); err == nil {
		t.Fatal("domain mismatch: want error")
	}
	// p = 1 is the identity.
	id, _ := NewPerturber(1, h.Schema.SensitiveDomain())
	same, err := id.Table(h, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < h.Len(); i++ {
		if same.Sensitive(i) != h.Sensitive(i) {
			t.Fatal("p=1 must retain all values")
		}
	}
}

func TestReconstructCounts(t *testing.T) {
	// Exact inversion on the expectation: if obs is exactly the perturbed
	// expectation of c, reconstruction returns c.
	c := []float64{100, 300, 0, 600}
	p := 0.4
	n := 1000.0
	obs := make([]float64, len(c))
	for x := range obs {
		obs[x] = p*c[x] + (1-p)*n/float64(len(c))
	}
	got, err := ReconstructCounts(obs, p)
	if err != nil {
		t.Fatal(err)
	}
	for x := range c {
		if math.Abs(got[x]-c[x]) > 1e-9 {
			t.Fatalf("reconstructed[%d] = %v, want %v", x, got[x], c[x])
		}
	}
	// Mass preservation under clamping.
	skew := []float64{1000, 0, 0, 0}
	got, err = ReconstructCounts(skew, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range got {
		if v < 0 {
			t.Fatal("negative reconstructed count")
		}
		sum += v
	}
	if math.Abs(sum-1000) > 1e-9 {
		t.Fatalf("mass = %v, want 1000", sum)
	}
	// Errors.
	if _, err := ReconstructCounts(obs, 0); err == nil {
		t.Fatal("p = 0: want error")
	}
	if _, err := ReconstructCounts([]float64{-1, 2}, 0.5); err == nil {
		t.Fatal("negative obs: want error")
	}
	// Zero mass short-circuits.
	z, err := ReconstructCounts([]float64{0, 0}, 0.5)
	if err != nil || z[0] != 0 || z[1] != 0 {
		t.Fatal("zero observation must reconstruct to zero")
	}
}

func TestReconstructCategories(t *testing.T) {
	// Categories of unequal width: frac = (0.5, 0.3, 0.2).
	frac := []float64{0.5, 0.3, 0.2}
	c := []float64{200, 500, 300}
	p := 0.3
	n := 1000.0
	obs := make([]float64, len(c))
	for j := range obs {
		obs[j] = p*c[j] + (1-p)*n*frac[j]
	}
	got, err := ReconstructCategories(obs, frac, p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range c {
		if math.Abs(got[j]-c[j]) > 1e-9 {
			t.Fatalf("reconstructed[%d] = %v, want %v", j, got[j], c[j])
		}
	}
	if _, err := ReconstructCategories(obs, frac[:2], p); err == nil {
		t.Fatal("length mismatch: want error")
	}
	if _, err := ReconstructCategories(obs, []float64{0.5, 0.5, 0.5}, p); err == nil {
		t.Fatal("fractions not summing to 1: want error")
	}
	if _, err := ReconstructCategories(obs, []float64{1.5, -0.3, -0.2}, p); err == nil {
		t.Fatal("negative fraction: want error")
	}
	if _, err := ReconstructCategories(obs, frac, 0); err == nil {
		t.Fatal("p = 0: want error")
	}
	if _, err := ReconstructCategories([]float64{-1, 1, 1}, frac, p); err == nil {
		t.Fatal("negative obs: want error")
	}
	z, err := ReconstructCategories([]float64{0, 0, 0}, frac, p)
	if err != nil || z[0] != 0 {
		t.Fatal("zero observation must reconstruct to zero")
	}
}

func TestReconstructEM(t *testing.T) {
	// EM recovers a distribution from its exact perturbed expectation.
	pb, _ := NewPerturber(0.5, 4)
	m := pb.Matrix()
	orig := []float64{0.1, 0.2, 0.3, 0.4}
	obs := make([]float64, 4)
	for b := 0; b < 4; b++ {
		for a := 0; a < 4; a++ {
			obs[b] += 1000 * orig[a] * m[a][b]
		}
	}
	got, err := ReconstructEM(obs, m, 5000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for a := range orig {
		if math.Abs(got[a]-orig[a]) > 1e-3 {
			t.Fatalf("EM[%d] = %v, want %v", a, got[a], orig[a])
		}
	}
	// Errors and degenerate cases.
	if _, err := ReconstructEM(nil, m, 10, 0); err == nil {
		t.Fatal("empty obs: want error")
	}
	if _, err := ReconstructEM([]float64{1, 2}, m, 10, 0); err == nil {
		t.Fatal("matrix size mismatch: want error")
	}
	if _, err := ReconstructEM([]float64{-1, 1, 1, 1}, m, 10, 0); err == nil {
		t.Fatal("negative obs: want error")
	}
	z, err := ReconstructEM([]float64{0, 0, 0, 0}, m, 10, 0)
	if err != nil || z[0] != 0 {
		t.Fatal("zero observation must yield zero distribution")
	}
	// Defaults (iters <= 0, tol <= 0) must not loop forever.
	if _, err := ReconstructEM(obs, m, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// Property: EM and closed-form inversion agree on uniform-perturbation
// expectations.
func TestEMAgreesWithClosedForm(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := 0.2 + float64(pRaw%60)/100
		pb, err := NewPerturber(p, 5)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		orig := make([]float64, 5)
		total := 0.0
		for i := range orig {
			orig[i] = float64(rng.Intn(1000))
			total += orig[i]
		}
		if total == 0 {
			return true
		}
		m := pb.Matrix()
		obs := make([]float64, 5)
		for b := range obs {
			for a := range orig {
				obs[b] += orig[a] * m[a][b]
			}
		}
		cf, err := ReconstructCounts(obs, p)
		if err != nil {
			return false
		}
		em, err := ReconstructEM(obs, m, 20000, 1e-13)
		if err != nil {
			return false
		}
		for a := range cf {
			if math.Abs(cf[a]/total-em[a]) > 5e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
