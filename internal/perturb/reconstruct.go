package perturb

import (
	"fmt"
	"math"
)

// This file implements distribution reconstruction: estimating the original
// sensitive-value histogram from a perturbed one. For uniform perturbation
// the operator is analytically invertible (the Warner estimator); we also
// provide the iterative Bayesian (EM) estimator of Agrawal & Srikant for
// cross-checking and for non-negative estimates.

// ReconstructCounts inverts the uniform perturbation operator on a histogram
// of observed counts (which may be fractional, e.g. weighted by stratum
// sizes): E[obs_x] = p*c_x + (1-p) * N / |U^s|, so
// c_x = (obs_x - (1-p) * N / |U^s|) / p. Estimates are clamped at 0 and
// rescaled to preserve the total mass N. p must be positive: with p == 0 the
// observed data carries no information about the original distribution.
func ReconstructCounts(obs []float64, p float64) ([]float64, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("perturb: reconstruction needs p in (0,1], got %v", p)
	}
	n := 0.0
	for _, o := range obs {
		if o < 0 {
			return nil, fmt.Errorf("perturb: negative observed count %v", o)
		}
		n += o
	}
	out := make([]float64, len(obs))
	if n == 0 {
		return out, nil
	}
	base := (1 - p) * n / float64(len(obs))
	clampedMass := 0.0
	for x, o := range obs {
		c := (o - base) / p
		if c < 0 {
			c = 0
		}
		out[x] = c
		clampedMass += c
	}
	if clampedMass > 0 {
		scale := n / clampedMass
		for x := range out {
			out[x] *= scale
		}
	}
	return out, nil
}

// ReconstructCategories inverts the perturbation aggregated over categories:
// category j covers fraction frac[j] of U^s (sum of fractions must be 1),
// and E[obs_j] = p*c_j + (1-p) * N * frac[j]. This is what the PG-aware
// decision tree uses per node, with the analyst's income categorization.
func ReconstructCategories(obs, frac []float64, p float64) ([]float64, error) {
	if len(obs) != len(frac) {
		return nil, fmt.Errorf("perturb: %d observed counts for %d categories", len(obs), len(frac))
	}
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("perturb: reconstruction needs p in (0,1], got %v", p)
	}
	fsum := 0.0
	for j, f := range frac {
		if f < 0 {
			return nil, fmt.Errorf("perturb: negative category fraction %v", f)
		}
		if obs[j] < 0 {
			return nil, fmt.Errorf("perturb: negative observed count %v", obs[j])
		}
		fsum += f
	}
	if math.Abs(fsum-1) > 1e-9 {
		return nil, fmt.Errorf("perturb: category fractions sum to %v, want 1", fsum)
	}
	n := 0.0
	for _, o := range obs {
		n += o
	}
	out := make([]float64, len(obs))
	if n == 0 {
		return out, nil
	}
	clampedMass := 0.0
	for j, o := range obs {
		c := (o - (1-p)*n*frac[j]) / p
		if c < 0 {
			c = 0
		}
		out[j] = c
		clampedMass += c
	}
	if clampedMass > 0 {
		scale := n / clampedMass
		for j := range out {
			out[j] *= scale
		}
	}
	return out, nil
}

// ReconstructEM runs the iterative Bayesian estimator of Agrawal & Srikant
// (SIGMOD'00) for a general transition matrix m (m[a][b] = P[a→b]) until the
// posterior distribution moves less than tol in L1, or iters iterations.
// It returns the estimated original distribution (probabilities, not counts).
func ReconstructEM(obs []float64, m [][]float64, iters int, tol float64) ([]float64, error) {
	k := len(obs)
	if k == 0 {
		return nil, fmt.Errorf("perturb: empty observation vector")
	}
	if len(m) != k {
		return nil, fmt.Errorf("perturb: matrix has %d rows for %d values", len(m), k)
	}
	n := 0.0
	for _, o := range obs {
		if o < 0 {
			return nil, fmt.Errorf("perturb: negative observed count %v", o)
		}
		n += o
	}
	if n == 0 {
		return make([]float64, k), nil
	}
	if iters <= 0 {
		iters = 1000
	}
	if tol <= 0 {
		tol = 1e-9
	}
	// Start from the uniform prior.
	cur := make([]float64, k)
	for a := range cur {
		cur[a] = 1 / float64(k)
	}
	next := make([]float64, k)
	EMRuns.Inc()
	for it := 0; it < iters; it++ {
		EMIterations.Inc()
		// Posterior update: next_a ∝ sum_b obs_b * (cur_a * m[a][b]) /
		// (sum_a' cur_a' * m[a'][b]).
		for a := range next {
			next[a] = 0
		}
		for b := 0; b < k; b++ {
			if obs[b] == 0 {
				continue
			}
			denom := 0.0
			for a := 0; a < k; a++ {
				denom += cur[a] * m[a][b]
			}
			if denom == 0 {
				continue
			}
			w := obs[b] / n / denom
			for a := 0; a < k; a++ {
				next[a] += cur[a] * m[a][b] * w
			}
		}
		diff := 0.0
		for a := range cur {
			diff += math.Abs(next[a] - cur[a])
		}
		copy(cur, next)
		if diff < tol {
			break
		}
	}
	return cur, nil
}
