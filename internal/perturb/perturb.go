// Package perturb implements Phase 1 of perturbed generalization: uniform
// random perturbation of the sensitive attribute with retention probability
// p (the paper's P1/P2, rooted in randomized response [32] and the
// perturbation operators of Evfimievski et al. [6] and Agrawal et al. [7]).
// It also provides the transition probabilities P[a→b] of Equation 11 and
// the distribution-reconstruction estimators that the mining stack uses to
// undo the perturbation in aggregate.
package perturb

import (
	"fmt"
	"math/rand"

	"pgpub/internal/dataset"
	"pgpub/internal/obs"
	"pgpub/internal/par"
)

// Perturber applies uniform perturbation over a sensitive domain of a given
// cardinality with retention probability P.
type Perturber struct {
	// P is the retention probability: with probability P the original value
	// is kept, otherwise a uniform value from the domain replaces it.
	P float64
	// Domain is |U^s|.
	Domain int

	// Retained and Redrawn, when non-nil, count the P2 coin flips taken by
	// TableSharded: rows kept versus rows redrawn from U^s. A redraw that
	// happens to reproduce the original value still counts as Redrawn — the
	// counters tally the coin, not the observable outcome. Shards accumulate
	// locally and flush once, so the totals are worker-count-invariant.
	Retained *obs.Counter
	Redrawn  *obs.Counter
}

// NewPerturber validates the parameters.
func NewPerturber(p float64, domain int) (*Perturber, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("perturb: retention probability %v outside [0,1]", p)
	}
	if domain < 1 {
		return nil, fmt.Errorf("perturb: sensitive domain must be non-empty, got %d", domain)
	}
	return &Perturber{P: p, Domain: domain}, nil
}

// Value perturbs one sensitive value per step P2 of the paper: keep with
// probability P, otherwise redraw uniformly from U^s (note the redraw may
// coincide with the original value).
func (pb *Perturber) Value(x int32, rng *rand.Rand) int32 {
	if rng.Float64() < pb.P {
		return x
	}
	return int32(rng.Intn(pb.Domain))
}

// Table returns D^p: a deep copy of d with every tuple's sensitive value
// perturbed independently (QI attributes untouched, per P1).
func (pb *Perturber) Table(d *dataset.Table, rng *rand.Rand) (*dataset.Table, error) {
	if d.Schema.SensitiveDomain() != pb.Domain {
		return nil, fmt.Errorf("perturb: perturber domain %d != sensitive domain %d",
			pb.Domain, d.Schema.SensitiveDomain())
	}
	out := d.Clone()
	for i := 0; i < out.Len(); i++ {
		out.SetSensitive(i, pb.Value(out.Sensitive(i), rng))
	}
	return out, nil
}

// ShardRows is the fixed Phase-1 shard size of TableSharded. It is part of
// the determinism contract: changing it changes which RNG stream perturbs
// which row, and therefore the published bytes for a given seed.
const ShardRows = 4096

// TableSharded is Table with deterministic parallelism: the rows are cut
// into fixed shards of ShardRows, shard i perturbs its rows with a private
// rand.Rand seeded par.SplitSeed(rootSeed, i), and at most workers
// goroutines execute the shards. Because the shard layout and seeds depend
// only on rootSeed — never on workers or the schedule — the output is
// byte-identical for every worker count, including fully sequential runs.
func (pb *Perturber) TableSharded(d *dataset.Table, rootSeed int64, workers int) (*dataset.Table, error) {
	if d.Schema.SensitiveDomain() != pb.Domain {
		return nil, fmt.Errorf("perturb: perturber domain %d != sensitive domain %d",
			pb.Domain, d.Schema.SensitiveDomain())
	}
	out := d.Clone()
	n := out.Len()
	sens := out.SensitiveCol()
	shards := (n + ShardRows - 1) / ShardRows
	par.ForEach(workers, shards, func(s int) {
		rng := rand.New(rand.NewSource(par.SplitSeed(rootSeed, s)))
		hi := (s + 1) * ShardRows
		if hi > n {
			hi = n
		}
		// The shard sweeps its slice of the contiguous sensitive column
		// directly — the clone is private, so the write is safe. The RNG
		// draw sequence is identical to Value's (one Float64, plus one Intn
		// on redraw), so neither the columnar write path nor the
		// instrumentation can change the published bytes.
		var retained, redrawn int64
		if u8 := sens.U8(); u8 != nil {
			retained, redrawn = perturbRange(u8, s*ShardRows, hi, pb.P, pb.Domain, rng)
		} else {
			retained, redrawn = perturbRange(sens.I32(), s*ShardRows, hi, pb.P, pb.Domain, rng)
		}
		pb.Retained.Add(retained)
		pb.Redrawn.Add(redrawn)
	})
	return out, nil
}

// perturbRange runs the P2 coin flips over rows [lo,hi) of the sensitive
// column, generic over the column's element width.
func perturbRange[T uint8 | int32](sens []T, lo, hi int, p float64, domain int, rng *rand.Rand) (retained, redrawn int64) {
	for i := lo; i < hi; i++ {
		if rng.Float64() < p {
			retained++
		} else {
			sens[i] = T(rng.Intn(domain))
			redrawn++
		}
	}
	return retained, redrawn
}

// TransitionProb returns P[a→b] of Equation 11: p + (1-p)/|U^s| when a == b,
// (1-p)/|U^s| otherwise.
func (pb *Perturber) TransitionProb(a, b int32) float64 {
	off := (1 - pb.P) / float64(pb.Domain)
	if a == b {
		return pb.P + off
	}
	return off
}

// Matrix materializes the full |U^s| x |U^s| transition matrix M with
// M[a][b] = P[a→b]. Every row sums to 1.
func (pb *Perturber) Matrix() [][]float64 {
	m := make([][]float64, pb.Domain)
	off := (1 - pb.P) / float64(pb.Domain)
	for a := range m {
		row := make([]float64, pb.Domain)
		for b := range row {
			row[b] = off
		}
		row[a] += pb.P
		m[a] = row
	}
	return m
}
