package perturb

import (
	"math/rand"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/par"
)

// syntheticTable builds an n-row table whose sensitive column uses the u8
// representation (domain <= 256) or the i32 one (domain > 256), so the
// equivalence property covers both perturbRange instantiations.
func syntheticTable(t *testing.T, n, sensDomain int) *dataset.Table {
	t.Helper()
	age := dataset.MustIntAttribute("Age", 0, 99)
	zip := dataset.MustIntAttribute("Zip", 0, 49)
	sens := dataset.MustIntAttribute("S", 0, sensDomain-1)
	s, err := dataset.NewSchema([]*dataset.Attribute{age, zip}, sens)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.NewTable(s)
	for i := 0; i < n; i++ {
		d.MustAppend([]int32{int32(i % 100), int32((i * 7) % 50), int32((i * 13) % sensDomain)})
	}
	return d
}

// referencePerturb is a row-major re-statement of the TableSharded contract:
// shard s covers rows [s*ShardRows, (s+1)*ShardRows), draws from a private
// RNG seeded par.SplitSeed(rootSeed, s), and spends exactly one Float64 per
// row plus one Intn on redraw — expressed through the scalar row API
// (Sensitive/SetSensitive) instead of the columnar sweep.
func referencePerturb(d *dataset.Table, p float64, domain int, rootSeed int64) *dataset.Table {
	out := d.Clone()
	n := out.Len()
	for s := 0; s*ShardRows < n; s++ {
		rng := rand.New(rand.NewSource(par.SplitSeed(rootSeed, s)))
		hi := (s + 1) * ShardRows
		if hi > n {
			hi = n
		}
		for i := s * ShardRows; i < hi; i++ {
			if rng.Float64() < p {
				continue
			}
			out.SetSensitive(i, int32(rng.Intn(domain)))
		}
	}
	return out
}

// TestTableShardedMatchesRowReference pins the columnar fast path to the
// row-major definition: the cache-linear column sweep must produce the same
// table, byte for byte, as the scalar per-row loop, at every worker count and
// for both sensitive-column element widths.
func TestTableShardedMatchesRowReference(t *testing.T) {
	const n = 3*ShardRows + 517 // four shards, last one ragged
	for _, tc := range []struct {
		name   string
		domain int
	}{
		{"u8-sensitive", 10},
		{"i32-sensitive", 300},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := syntheticTable(t, n, tc.domain)
			pb, err := NewPerturber(0.3, tc.domain)
			if err != nil {
				t.Fatal(err)
			}
			want := referencePerturb(d, 0.3, tc.domain, 77)
			for _, workers := range []int{1, 3, 8} {
				got, err := pb.TableSharded(d, 77, workers)
				if err != nil {
					t.Fatal(err)
				}
				if got.Len() != want.Len() {
					t.Fatalf("workers=%d: %d rows, want %d", workers, got.Len(), want.Len())
				}
				for i := 0; i < n; i++ {
					if got.Sensitive(i) != want.Sensitive(i) {
						t.Fatalf("workers=%d row %d: sharded %d, reference %d",
							workers, i, got.Sensitive(i), want.Sensitive(i))
					}
					for j := 0; j < d.Schema.D(); j++ {
						if got.QI(i, j) != d.QI(i, j) {
							t.Fatalf("workers=%d row %d: QI %d perturbed", workers, i, j)
						}
					}
				}
			}
		})
	}
}
