package perturb

import "pgpub/internal/obs"

// Reconstruction runs deep inside the mining stack, far from any Config
// struct, so its instrumentation is a package-level hook instead of a field:
// call SetMetrics once at startup and every subsequent ReconstructEM run
// reports how many EM iterations it took to converge. The default (no call,
// or a nil registry) leaves the counters nil, which the obs instruments
// treat as disabled.
var (
	// EMRuns counts ReconstructEM invocations that reached the EM loop.
	EMRuns *obs.Counter
	// EMIterations counts EM posterior-update iterations summed over all
	// runs; EMIterations/EMRuns is the mean convergence length.
	EMIterations *obs.Counter
)

// SetMetrics wires the reconstruction counters to r (perturb.em.runs,
// perturb.em.iterations). Passing nil disables them again.
func SetMetrics(r *obs.Registry) {
	EMRuns = r.Counter("perturb.em.runs")
	EMIterations = r.Counter("perturb.em.iterations")
}
