package pg

import (
	"reflect"
	"testing"

	"pgpub/internal/obs"
	"pgpub/internal/sal"
)

// publishWithRegistry runs one instrumented publication and returns the
// counter snapshot.
func publishWithRegistry(t *testing.T, alg Algorithm, workers int) map[string]int64 {
	t.Helper()
	d, err := sal.Generate(3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pub, err := Publish(d, sal.Hierarchies(d.Schema), Config{
		K: 6, P: 0.3, Algorithm: alg, Seed: 11, Workers: workers, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["pg.rows.in"]; got != int64(d.Len()) {
		t.Fatalf("pg.rows.in = %d, want %d", got, d.Len())
	}
	if got := snap.Counters["pg.rows.published"]; got != int64(pub.Len()) {
		t.Fatalf("pg.rows.published = %d, want %d", got, pub.Len())
	}
	if ret, red := snap.Counters["pg.phase1.retained"], snap.Counters["pg.phase1.redrawn"]; ret+red != int64(d.Len()) {
		t.Fatalf("phase-1 coin flips %d+%d != %d rows", ret, red, d.Len())
	}
	if snap.Counters["pg.phase2.groups"] != int64(pub.Len()) {
		t.Fatalf("pg.phase2.groups = %d, want one published row per group = %d",
			snap.Counters["pg.phase2.groups"], pub.Len())
	}
	return snap.Counters
}

// Pipeline counters are part of the determinism contract: every counter value
// is invariant under the worker count, exactly like the published bytes.
func TestPublishMetricsWorkerInvariant(t *testing.T) {
	for _, alg := range []Algorithm{KD, TDS, FullDomain} {
		var ref map[string]int64
		for _, workers := range []int{1, 4, 8} {
			got := publishWithRegistry(t, alg, workers)
			if ref == nil {
				ref = got
				continue
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("%v: counters differ at workers=%d:\ngot  %v\nwant %v", alg, workers, got, ref)
			}
		}
	}
}

// A nil registry must leave Publish's output untouched (the disabled fast
// path cannot perturb the RNG draw sequence).
func TestPublishMetricsNilIdentical(t *testing.T) {
	d, err := sal.Generate(2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	hiers := sal.Hierarchies(d.Schema)
	base, err := Publish(d, hiers, Config{K: 6, P: 0.3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	instr, err := Publish(d, hiers, Config{K: 6, P: 0.3, Seed: 13, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Rows, instr.Rows) {
		t.Fatal("instrumented publication differs from uninstrumented one")
	}
}
