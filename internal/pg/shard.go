package pg

import (
	"fmt"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/par"
)

// This file is the shard-aware publication entry point: partition the
// microdata into S deterministic shards and run the full three-phase
// pipeline on each, so every shard is an independent PG release with its own
// partition, its own sampling, and its own Theorem 1–3 guarantee (the
// parameters — k, p, sensitive domain — are shared, so the certified bounds
// are identical across shards). A fan-out coordinator (internal/serve) can
// then answer aggregate queries over the union by composing per-shard
// answers; internal/shard owns that composition.

// shardSeedLane is the par.SplitSeed lane the per-shard publication roots
// are split from. Lanes 0 and 1 of a root seed belong to Publish's Phase 1
// and Phase 3 streams, lane 2 to the attack fleet's randomness; sharded
// publication takes lane 3. The derivation depends only on (Seed, shard
// index) — not on the shard count or the worker count — so shard s's
// published bytes are a pure function of the rows assigned to it and the
// root seed.
const shardSeedLane = 3

// ShardOf is the public row-to-shard assignment: row i of the microdata
// lands in shard i mod shards. Round-robin keeps shard sizes within one row
// of each other and — being a function of the row index alone — is exactly
// as public as the voter list itself, which is what lets the transparent-
// anonymization adversary model (and the attack fleet) apply per-shard.
func ShardOf(i, shards int) int { return i % shards }

// ShardSeed derives shard s's publication seed from the root seed.
func ShardSeed(root int64, s int) int64 {
	return par.SplitSeed(par.SplitSeed(root, shardSeedLane), s)
}

// PublishSharded partitions d into shards round-robin slices (ShardOf) and
// publishes each independently with a seed split off cfg.Seed (or one draw
// of cfg.Rng). Owner IDs are preserved through the partition, so shard
// publications still name the same individuals. Output bytes are identical
// for every cfg.Workers value, shard by shard.
func PublishSharded(d *dataset.Table, hiers []*hierarchy.Hierarchy, cfg Config, shards int) ([]*Published, error) {
	if shards < 1 {
		return nil, fmt.Errorf("pg: shard count %d < 1", shards)
	}
	if d.Len() < shards {
		return nil, fmt.Errorf("pg: %d shards over %d rows leaves empty shards", shards, d.Len())
	}
	root := cfg.Seed
	if cfg.Rng != nil {
		root = cfg.Rng.Int63()
		cfg.Rng = nil
	}
	pubs := make([]*Published, shards)
	for s := 0; s < shards; s++ {
		rows := make([]int, 0, (d.Len()+shards-1)/shards)
		for i := s; i < d.Len(); i += shards {
			rows = append(rows, i)
		}
		scfg := cfg
		scfg.Seed = ShardSeed(root, s)
		pub, err := Publish(d.Subset(rows), hiers, scfg)
		if err != nil {
			return nil, fmt.Errorf("pg: shard %d: %w", s, err)
		}
		pubs[s] = pub
	}
	return pubs, nil
}

// Merge concatenates shard publications into one table-of-rows view with
// the shared metadata, for building a single reference query index over the
// whole sharded release. The result is *not* a standalone PG release: boxes
// from different shards overlap (Property G3 holds only within a shard), so
// FindCrucial is ambiguous on it and Validate would reject it. Aggregate
// estimation (query.NewIndex, query.Estimate) is well-defined — COUNT, NAIVE
// and SUM are additive over rows regardless of disjointness.
func Merge(pubs []*Published) (*Published, error) {
	if len(pubs) == 0 {
		return nil, fmt.Errorf("pg: merging zero publications")
	}
	first := pubs[0]
	out := &Published{
		Schema:    first.Schema,
		Algorithm: first.Algorithm,
		P:         first.P,
		K:         first.K,
	}
	total := 0
	for i, p := range pubs {
		if p.Schema != first.Schema {
			return nil, fmt.Errorf("pg: shard %d has a different schema", i)
		}
		if p.P != first.P || p.K != first.K || p.Algorithm != first.Algorithm {
			return nil, fmt.Errorf(
				"pg: shard %d params (%v, p=%v, k=%d) differ from shard 0's (%v, p=%v, k=%d)",
				i, p.Algorithm, p.P, p.K, first.Algorithm, first.P, first.K)
		}
		total += p.Len()
	}
	out.Rows = make([]Row, 0, total)
	for _, p := range pubs {
		p.EnsureRows()
		out.Rows = append(out.Rows, p.Rows...)
	}
	return out, nil
}
