package pg

import (
	"strings"
	"testing"

	"pgpub/internal/dataset"
)

func TestReadCSVRoundTrip(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	pub, err := Publish(d, hiers, Config{K: 2, P: 0.25, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := pub.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(d.Schema, strings.NewReader(sb.String()), pub.P)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Len() != pub.Len() || got.K != pub.K || got.P != pub.P {
		t.Fatalf("round trip: len %d/%d K %d/%d P %v/%v",
			got.Len(), pub.Len(), got.K, pub.K, got.P, pub.P)
	}
	for i := range pub.Rows {
		if !got.Rows[i].Box.Equal(pub.Rows[i].Box) {
			t.Fatalf("row %d box differs: %v vs %v", i, got.Rows[i].Box, pub.Rows[i].Box)
		}
		if got.Rows[i].Value != pub.Rows[i].Value || got.Rows[i].G != pub.Rows[i].G {
			t.Fatalf("row %d value/G differs", i)
		}
		if got.Rows[i].SourceRow != -1 {
			t.Fatal("loaded rows must not claim a source row")
		}
	}
}

func TestReadCSVRoundTripSAL(t *testing.T) {
	// Full-scale round trip through the SAL schema (larger label space).
	d := dataset.Hospital() // reuse hospital for speed; SAL covered elsewhere
	hiers := hospitalHiers(d.Schema)
	pub, err := Publish(d, hiers, Config{K: 4, P: 0.5, Algorithm: KD, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := pub.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(d.Schema, strings.NewReader(sb.String()), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	d := dataset.Hospital()
	good := "Age,Gender,Zipcode,Disease,G\n*,M,*,bronchitis,2\n*,F,*,pneumonia,3\n"
	if _, err := ReadCSV(d.Schema, strings.NewReader(good), 0.3); err != nil {
		t.Fatalf("good CSV rejected: %v", err)
	}
	cases := []struct {
		name, in string
		p        float64
	}{
		{"bad p", good, 1.5},
		{"empty", "", 0.3},
		{"bad header", "X,Gender,Zipcode,Disease,G\n", 0.3},
		{"no rows", "Age,Gender,Zipcode,Disease,G\n", 0.3},
		{"bad disease", "Age,Gender,Zipcode,Disease,G\n*,M,*,plague,2\n", 0.3},
		{"bad G", "Age,Gender,Zipcode,Disease,G\n*,M,*,bronchitis,zero\n", 0.3},
		{"zero G", "Age,Gender,Zipcode,Disease,G\n*,M,*,bronchitis,0\n", 0.3},
		{"bad label", "Age,Gender,Zipcode,Disease,G\nfifty,M,*,bronchitis,2\n", 0.3},
		{"bad interval", "Age,Gender,Zipcode,Disease,G\n[99-101],M,*,bronchitis,2\n", 0.3},
		{"inverted interval", "Age,Gender,Zipcode,Disease,G\n[64-20],M,*,bronchitis,2\n", 0.3},
		{"overlap (G3)", "Age,Gender,Zipcode,Disease,G\n*,M,*,bronchitis,2\n*,M,*,pneumonia,2\n", 0.3},
		{"short record", "Age,Gender,Zipcode,Disease,G\n*,M,*\n", 0.3},
	}
	for _, c := range cases {
		if _, err := ReadCSV(d.Schema, strings.NewReader(c.in), c.p); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestParseBoxLabel(t *testing.T) {
	a := dataset.MustIntAttribute("Age", 20, 89)
	lo, hi, err := parseBoxLabel("*", a)
	if err != nil || lo != 0 || hi != 69 {
		t.Fatalf("* -> [%d,%d], %v", lo, hi, err)
	}
	lo, hi, err = parseBoxLabel("25", a)
	if err != nil || lo != 5 || hi != 5 {
		t.Fatalf("25 -> [%d,%d], %v", lo, hi, err)
	}
	lo, hi, err = parseBoxLabel("[20-64]", a)
	if err != nil || lo != 0 || hi != 44 {
		t.Fatalf("[20-64] -> [%d,%d], %v", lo, hi, err)
	}
	if _, _, err := parseBoxLabel("nope", a); err == nil {
		t.Fatal("garbage label: want error")
	}
	if _, _, err := parseBoxLabel("[20:64]", a); err == nil {
		t.Fatal("wrong separator: want error")
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	pub, err := Publish(d, hiers, Config{K: 2, P: 0.3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	m, err := pub.Metadata(0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if m.P != 0.3 || m.K != 2 || m.Rows != pub.Len() || m.Algorithm != "kd" {
		t.Fatalf("metadata = %+v", m)
	}
	if m.Guarantee == nil || m.Guarantee.Rho2 <= 0.2 || m.Guarantee.Delta <= 0 {
		t.Fatalf("guarantee block = %+v", m.Guarantee)
	}
	var sb strings.Builder
	if err := m.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMetadata(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.P != m.P || got.K != m.K || got.Guarantee.Rho2 != m.Guarantee.Rho2 {
		t.Fatalf("round trip = %+v", got)
	}
	// Without a guarantee request the block is omitted.
	m2, err := pub.Metadata(0, 0)
	if err != nil || m2.Guarantee != nil {
		t.Fatalf("metadata without guarantee: %+v, %v", m2, err)
	}
	// Invalid guarantee parameters propagate.
	if _, err := pub.Metadata(0.1, 1.5); err == nil {
		t.Fatal("bad rho1: want error")
	}
}

func TestReadMetadataErrors(t *testing.T) {
	cases := []string{
		"",
		"{",
		`{"retention_probability": 2, "k": 2, "rows": 1, "algorithm": "kd"}`,
		`{"retention_probability": 0.3, "k": 0, "rows": 1, "algorithm": "kd"}`,
		`{"retention_probability": 0.3, "k": 2, "rows": -1, "algorithm": "kd"}`,
		`{"unknown_field": 1}`,
	}
	for _, in := range cases {
		if _, err := ReadMetadata(strings.NewReader(in)); err == nil {
			t.Errorf("ReadMetadata(%q): want error", in)
		}
	}
}
