package pg

import (
	"fmt"

	"pgpub/internal/generalize"
)

// RowColumns is the struct-of-arrays form of a publication's rows: one
// contiguous array per logical field, with the box bounds dim-major
// (Lo[j*N+i] is row i's lower bound along QI attribute j). It is the layout
// the snapshot format stores rows in and the layout columnar consumers — the
// aggregate collapse, the publication validator — sweep, one cache-linear
// stream per field instead of a heap box per row.
//
// A RowColumns is a value view: consumers must treat the arrays as
// read-only. In particular the arrays may alias a read-only mmap'd snapshot,
// where a write faults.
type RowColumns struct {
	// N is the row count, D the QI dimensionality.
	N, D int
	// Lo and Hi are the generalized box bounds, dim-major, each D*N long.
	Lo, Hi []int32
	// Value holds the observed (possibly perturbed) sensitive values.
	Value []int32
	// G holds the source QI-group sizes.
	G []int64
	// SourceRow holds the diagnostic microdata row of each tuple, -1 when
	// unknown (a real release omits it; see Row.SourceRow).
	SourceRow []int64
}

// Check validates the arrays' shape: every field N long and the bounds D*N.
func (c *RowColumns) Check() error {
	if c.N < 0 || c.D < 0 {
		return fmt.Errorf("pg: row columns with N=%d, D=%d", c.N, c.D)
	}
	if len(c.Lo) != c.D*c.N || len(c.Hi) != c.D*c.N {
		return fmt.Errorf("pg: row columns bounds have %d/%d values, want %d", len(c.Lo), len(c.Hi), c.D*c.N)
	}
	if len(c.Value) != c.N || len(c.G) != c.N || len(c.SourceRow) != c.N {
		return fmt.Errorf("pg: row columns fields have %d/%d/%d values, want %d",
			len(c.Value), len(c.G), len(c.SourceRow), c.N)
	}
	return nil
}

// Row materializes row i as a row-major Row (fresh bound slices).
func (c *RowColumns) Row(i int) Row {
	box := generalize.Box{Lo: make([]int32, c.D), Hi: make([]int32, c.D)}
	for j := 0; j < c.D; j++ {
		box.Lo[j] = c.Lo[j*c.N+i]
		box.Hi[j] = c.Hi[j*c.N+i]
	}
	return Row{Box: box, Value: c.Value[i], G: int(c.G[i]), SourceRow: int(c.SourceRow[i])}
}

// covers reports whether row i's box generalizes the raw QI vector vq.
func (c *RowColumns) covers(i int, vq []int32) bool {
	for j := range vq {
		v := vq[j]
		if v < c.Lo[j*c.N+i] || v > c.Hi[j*c.N+i] {
			return false
		}
	}
	return true
}

// Columns returns the publication's rows in struct-of-arrays form: the
// installed columnar view when the publication was built from one
// (FromColumns), otherwise a fresh conversion of Rows. Callers must treat
// the arrays as read-only.
func (p *Published) Columns() *RowColumns {
	if p.Rows == nil && p.cols != nil {
		return p.cols
	}
	d, n := p.Schema.D(), len(p.Rows)
	c := &RowColumns{
		N:         n,
		D:         d,
		Lo:        make([]int32, d*n),
		Hi:        make([]int32, d*n),
		Value:     make([]int32, n),
		G:         make([]int64, n),
		SourceRow: make([]int64, n),
	}
	for i := range p.Rows {
		r := &p.Rows[i]
		for j := 0; j < d; j++ {
			c.Lo[j*n+i] = r.Box.Lo[j]
			c.Hi[j*n+i] = r.Box.Hi[j]
		}
		c.Value[i] = r.Value
		c.G[i] = int64(r.G)
		c.SourceRow[i] = int64(r.SourceRow)
	}
	return c
}

// FromColumns builds a publication around a columnar row view without
// materializing []Row — the serving path from a snapshot never needs the
// row-major form, so a load (or an mmap) stays O(columns adopted), not
// O(rows rebuilt). meta supplies the publication metadata (Schema,
// Algorithm, Recoding, P, K); its Rows must be nil. The view is adopted,
// not copied. Consumers that do need row-major rows (the attack simulators)
// call EnsureRows first.
func FromColumns(meta Published, cols *RowColumns) (*Published, error) {
	if meta.Schema == nil {
		return nil, fmt.Errorf("pg: columnar publication needs a schema")
	}
	if meta.Rows != nil {
		return nil, fmt.Errorf("pg: columnar publication must not also carry rows")
	}
	if err := cols.Check(); err != nil {
		return nil, err
	}
	if cols.D != meta.Schema.D() {
		return nil, fmt.Errorf("pg: row columns have %d dims for a %d-attribute schema", cols.D, meta.Schema.D())
	}
	p := meta
	p.cols = cols
	return &p, nil
}

// EnsureRows materializes p.Rows from the installed columnar view when the
// publication was built by FromColumns; it is a no-op when Rows already
// exist. It returns the rows for convenience.
func (p *Published) EnsureRows() []Row {
	if p.Rows == nil && p.cols != nil && p.cols.N > 0 {
		rows := make([]Row, p.cols.N)
		for i := range rows {
			rows[i] = p.cols.Row(i)
		}
		p.Rows = rows
	}
	return p.Rows
}
