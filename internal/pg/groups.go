package pg

import (
	"encoding/binary"

	"pgpub/internal/generalize"
)

// BoxAggregate is the per-box collapse of a publication: every published row
// whose generalized QI box has the same coordinates is folded into one entry
// carrying the box, the summed stratification weight G, and a G-weighted
// histogram of the observed sensitive values. Under Property G3 the boxes of
// D* are pairwise disjoint, so rows sharing a box are rows of the same
// QI-group and the collapse is lossless for any estimator that touches a row
// only through (Box, Value, G) — which is all of them: the consumer-side
// estimators never see SourceRow.
type BoxAggregate struct {
	// Box is the shared generalized QI box.
	Box generalize.Box
	// G is the total group-size weight of the rows folded into this entry.
	G int
	// Hist is the G-weighted histogram of observed sensitive values:
	// Hist[y] = Σ G over the entry's rows with Value == y. Its length is the
	// sensitive domain size and its sum equals G.
	Hist []int64
}

// Aggregates collapses D* into one BoxAggregate per distinct QI box, in
// first-appearance order of the boxes. It is the construction hook for
// query-serving indexes: a release is immutable once published, so the
// collapse (and anything built on it) is computed once and amortized over
// every query answered against the release.
//
// An empty publication (zero rows — Publish never produces one, but a
// release loaded from an empty CSV body is legal) collapses to an empty,
// non-nil slice. Consumers need no special case: an index built over zero
// aggregates estimates every region weight as 0, so COUNT and SUM estimate
// 0 for every query and AVG reports the region as empty (see query.Index).
func (p *Published) Aggregates() []BoxAggregate {
	// The collapse sweeps the columnar view — dim-major bound streams plus
	// the value and G columns — so a publication served straight from a
	// snapshot's column blocks never materializes row-major rows, and the
	// row-major path pays one conversion instead of a heap box per group
	// probe. The key bytes and iteration order are the same either way, so
	// the entry order (first appearance) is identical on both paths.
	c := p.Columns()
	domain := p.Schema.SensitiveDomain()
	idx := make(map[string]int, c.N)
	out := make([]BoxAggregate, 0, c.N)
	var key []byte
	for i := 0; i < c.N; i++ {
		key = key[:0]
		for j := 0; j < c.D; j++ {
			key = binary.LittleEndian.AppendUint32(key, uint32(c.Lo[j*c.N+i]))
			key = binary.LittleEndian.AppendUint32(key, uint32(c.Hi[j*c.N+i]))
		}
		a, ok := idx[string(key)]
		if !ok {
			a = len(out)
			idx[string(key)] = a
			out = append(out, BoxAggregate{Box: c.Row(i).Box, Hist: make([]int64, domain)})
		}
		out[a].G += int(c.G[i])
		out[a].Hist[c.Value[i]] += c.G[i]
	}
	return out
}
