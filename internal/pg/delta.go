package pg

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"pgpub/internal/dataset"
)

// Delta is one release-to-release change set of the microdata: rows of the
// parent table to delete and new rows to insert. Deletes name row indices
// of the parent (pre-delta) table and are applied as a set; surviving rows
// keep their relative order, then inserts are appended in order. Owner IDs
// survive the rewrite — a kept row still names the same individual — which
// is what lets the multi-release adversary link a victim across releases.
type Delta struct {
	// Deletes lists parent-table row indices to remove (any order, no
	// duplicates).
	Deletes []int
	// Inserts holds the rows to append, in insertion order, under the same
	// schema as the parent. nil means no inserts. When Inserts.Owners is
	// nil, inserted rows are assigned fresh owner IDs following the largest
	// owner ID of the parent table.
	Inserts *dataset.Table
}

// Empty reports whether the delta changes nothing — the shape of a pure
// re-perturbation release.
func (dl Delta) Empty() bool {
	return len(dl.Deletes) == 0 && (dl.Inserts == nil || dl.Inserts.Len() == 0)
}

// Validate checks the delta against the parent table it will be applied to.
func (dl Delta) Validate(prev *dataset.Table) error {
	seen := make(map[int]bool, len(dl.Deletes))
	for _, i := range dl.Deletes {
		if i < 0 || i >= prev.Len() {
			return fmt.Errorf("pg: delta deletes row %d of a %d-row table", i, prev.Len())
		}
		if seen[i] {
			return fmt.Errorf("pg: delta deletes row %d twice", i)
		}
		seen[i] = true
	}
	if dl.Inserts != nil {
		if dl.Inserts.Schema.Width() != prev.Schema.Width() || dl.Inserts.Schema.D() != prev.Schema.D() {
			return fmt.Errorf("pg: delta inserts have %d columns, parent schema wants %d",
				dl.Inserts.Schema.Width(), prev.Schema.Width())
		}
		if err := dl.Inserts.Validate(); err != nil {
			return fmt.Errorf("pg: delta inserts: %w", err)
		}
	}
	if len(dl.Deletes) == prev.Len() && (dl.Inserts == nil || dl.Inserts.Len() == 0) {
		return fmt.Errorf("pg: delta deletes every row and inserts none")
	}
	return nil
}

// ApplyDelta produces the post-delta microdata: parent rows minus the
// deletes (relative order kept), plus the inserts appended in order. The
// result is a fresh table except for the empty delta, which returns prev
// itself. Kept rows keep their owner IDs; inserted rows take theirs from
// Inserts.Owners or, when that is nil, fresh IDs after the parent's
// largest.
func ApplyDelta(prev *dataset.Table, dl Delta) (*dataset.Table, error) {
	if err := dl.Validate(prev); err != nil {
		return nil, err
	}
	if dl.Empty() {
		return prev, nil
	}
	deleted := make(map[int]bool, len(dl.Deletes))
	for _, i := range dl.Deletes {
		deleted[i] = true
	}
	keep := make([]int, 0, prev.Len()-len(dl.Deletes))
	maxOwner := -1
	for i := 0; i < prev.Len(); i++ {
		if o := prev.Owner(i); o > maxOwner {
			maxOwner = o
		}
		if !deleted[i] {
			keep = append(keep, i)
		}
	}
	out := prev.Subset(keep)
	if dl.Inserts == nil {
		return out, nil
	}
	owners := out.Owners
	for j := 0; j < dl.Inserts.Len(); j++ {
		if err := out.Append(dl.Inserts.Row(j)); err != nil {
			return nil, fmt.Errorf("pg: delta insert %d: %w", j, err)
		}
		if dl.Inserts.Owners != nil {
			owners = append(owners, dl.Inserts.Owner(j))
		} else {
			maxOwner++
			owners = append(owners, maxOwner)
		}
	}
	out.Owners = owners
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("pg: post-delta table invalid: %w", err)
	}
	return out, nil
}

// ReadDelta parses the delta file format: one operation per line, comma
// separated, '#' starting a comment line.
//
//	-,<row index>                      delete parent row <row index>
//	+,<qi label>,...,<sensitive label> insert a row, labels in schema order
//
// Insert lines carry attribute labels (the vocabulary of the release CSV),
// not codes. Deletes refer to the parent table the delta will be applied
// to; a file is replayable only against its own parent release.
func ReadDelta(schema *dataset.Schema, r io.Reader) (Delta, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	dl := Delta{}
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Delta{}, fmt.Errorf("pg: delta line %d: %w", line, err)
		}
		if len(rec) == 0 || (len(rec) == 1 && rec[0] == "") {
			continue
		}
		switch rec[0] {
		case "-":
			if len(rec) != 2 {
				return Delta{}, fmt.Errorf("pg: delta line %d: delete wants '-,<row>', got %d fields", line, len(rec))
			}
			i, err := strconv.Atoi(rec[1])
			if err != nil {
				return Delta{}, fmt.Errorf("pg: delta line %d: row index %q: %w", line, rec[1], err)
			}
			dl.Deletes = append(dl.Deletes, i)
		case "+":
			if len(rec) != schema.Width()+1 {
				return Delta{}, fmt.Errorf("pg: delta line %d: insert wants %d labels, got %d",
					line, schema.Width(), len(rec)-1)
			}
			if dl.Inserts == nil {
				dl.Inserts = dataset.NewTable(schema)
			}
			if err := dl.Inserts.AppendLabels(rec[1:]...); err != nil {
				return Delta{}, fmt.Errorf("pg: delta line %d: %w", line, err)
			}
		default:
			return Delta{}, fmt.Errorf("pg: delta line %d: unknown op %q (want '-' or '+')", line, rec[0])
		}
	}
	return dl, nil
}

// LoadDelta reads the delta file at path (see ReadDelta for the format).
func LoadDelta(schema *dataset.Schema, path string) (Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Delta{}, fmt.Errorf("pg: %w", err)
	}
	defer f.Close()
	return ReadDelta(schema, f)
}
