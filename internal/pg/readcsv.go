package pg

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pgpub/internal/dataset"
	"pgpub/internal/generalize"
)

// ReadCSV loads a publication written by WriteCSV back into a Published
// value, so downstream consumers (query answering, mining) can work from the
// released file alone. The retention probability is publication metadata the
// publisher announces alongside the release (it is required for any
// reconstruction-based use); pass it explicitly. K is recovered as the
// smallest G in the file.
//
// Generalized QI labels are parsed as: "*" (full domain), an exact attribute
// label (degenerate interval), or "[lo-hi]" with lo and hi attribute labels.
// For interval parsing to be unambiguous, QI attribute labels should not
// themselves contain "-"; when they do, every split position is tried until
// both halves resolve.
func ReadCSV(schema *dataset.Schema, r io.Reader, p float64) (*Published, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("pg: retention probability %v outside [0,1]", p)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.Width() + 1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("pg: reading CSV header: %w", err)
	}
	want := append(append([]string(nil), schema.ColumnNames()[:schema.D()]...),
		schema.Sensitive.Name, "G")
	for j := range want {
		if header[j] != want[j] {
			return nil, fmt.Errorf("pg: CSV column %d is %q, want %q", j, header[j], want[j])
		}
	}
	pub := &Published{Schema: schema, Algorithm: KD, P: p, K: 0}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("pg: reading CSV line %d: %w", line, err)
		}
		row := Row{
			Box:       generalize.Box{Lo: make([]int32, schema.D()), Hi: make([]int32, schema.D())},
			SourceRow: -1,
		}
		for j, a := range schema.QI {
			lo, hi, err := parseBoxLabel(rec[j], a)
			if err != nil {
				return nil, fmt.Errorf("pg: CSV line %d, column %q: %w", line, a.Name, err)
			}
			row.Box.Lo[j], row.Box.Hi[j] = lo, hi
		}
		v, err := schema.Sensitive.Code(rec[schema.D()])
		if err != nil {
			return nil, fmt.Errorf("pg: CSV line %d: %w", line, err)
		}
		row.Value = v
		g, err := strconv.Atoi(rec[schema.D()+1])
		if err != nil || g < 1 {
			return nil, fmt.Errorf("pg: CSV line %d: bad G %q", line, rec[schema.D()+1])
		}
		row.G = g
		if pub.K == 0 || g < pub.K {
			pub.K = g
		}
		pub.Rows = append(pub.Rows, row)
	}
	if pub.Len() == 0 {
		return nil, fmt.Errorf("pg: CSV contains no published tuples")
	}
	if err := pub.Validate(); err != nil {
		return nil, fmt.Errorf("pg: loaded publication invalid: %w", err)
	}
	return pub, nil
}

// parseBoxLabel inverts BoxLabel for one attribute.
func parseBoxLabel(s string, a *dataset.Attribute) (lo, hi int32, err error) {
	if s == "*" {
		return 0, int32(a.Size() - 1), nil
	}
	if c, err := a.Code(s); err == nil {
		return c, c, nil
	}
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("unknown label %q", s)
	}
	inner := s[1 : len(s)-1]
	// Try every '-' split position until both halves resolve to labels.
	for i := 0; i < len(inner); i++ {
		if inner[i] != '-' {
			continue
		}
		l, errL := a.Code(inner[:i])
		h, errH := a.Code(inner[i+1:])
		if errL == nil && errH == nil {
			if l > h {
				return 0, 0, fmt.Errorf("inverted interval %q", s)
			}
			return l, h, nil
		}
	}
	return 0, 0, fmt.Errorf("cannot parse interval %q", s)
}
