package pg

import (
	"testing"

	"pgpub/internal/generalize"
	"pgpub/internal/hierarchy"
	"pgpub/internal/sal"
)

// Aggregates folds rows sharing a box into one entry, in first-appearance
// order, with G-weighted histograms.
func TestAggregatesCollapse(t *testing.T) {
	s := sal.Schema()
	box := func(lo, hi int32) generalize.Box {
		d := s.D()
		b := generalize.Box{Lo: make([]int32, d), Hi: make([]int32, d)}
		for j := range b.Lo {
			b.Lo[j], b.Hi[j] = lo, hi
		}
		return b
	}
	pub := &Published{Schema: s, P: 0.3, K: 2, Rows: []Row{
		{Box: box(0, 3), Value: 0, G: 2},
		{Box: box(4, 7), Value: 1, G: 4},
		{Box: box(0, 3), Value: 1, G: 3},
	}}
	aggs := pub.Aggregates()
	if len(aggs) != 2 {
		t.Fatalf("got %d aggregates, want 2", len(aggs))
	}
	if !aggs[0].Box.Equal(box(0, 3)) || !aggs[1].Box.Equal(box(4, 7)) {
		t.Fatal("aggregates not in first-appearance order")
	}
	if aggs[0].G != 5 || aggs[0].Hist[0] != 2 || aggs[0].Hist[1] != 3 {
		t.Fatalf("merged entry wrong: G=%d hist=%v", aggs[0].G, aggs[0].Hist[:2])
	}
	if aggs[1].G != 4 || aggs[1].Hist[1] != 4 {
		t.Fatalf("singleton entry wrong: G=%d hist=%v", aggs[1].G, aggs[1].Hist[:2])
	}
}

// On a real publication every histogram sums to its entry's G and the
// total weight equals |D| (kd-cells partition all microdata rows).
func TestAggregatesWeights(t *testing.T) {
	d, err := sal.Generate(3000, 51)
	if err != nil {
		t.Fatal(err)
	}
	var hiers []*hierarchy.Hierarchy = sal.Hierarchies(d.Schema)
	pub, err := Publish(d, hiers, Config{K: 6, P: 0.3, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	aggs := pub.Aggregates()
	if len(aggs) == 0 || len(aggs) > pub.Len() {
		t.Fatalf("%d aggregates from %d rows", len(aggs), pub.Len())
	}
	total := 0
	for i, a := range aggs {
		sum := int64(0)
		for _, h := range a.Hist {
			sum += h
		}
		if sum != int64(a.G) {
			t.Fatalf("aggregate %d: histogram sums to %d, G = %d", i, sum, a.G)
		}
		total += a.G
	}
	if total != d.Len() {
		t.Fatalf("total weight %d, want %d", total, d.Len())
	}
}

// An empty publication aggregates to an empty, non-nil slice — the contract
// index construction relies on (see query.NewIndex).
func TestAggregatesEmpty(t *testing.T) {
	pub := &Published{Schema: sal.Schema(), P: 0.3, K: 2}
	aggs := pub.Aggregates()
	if len(aggs) != 0 {
		t.Fatalf("empty publication gave %d aggregates", len(aggs))
	}
	if aggs == nil {
		t.Fatal("empty publication gave a nil slice, want empty non-nil")
	}
}
