package pg

import (
	"fmt"
	"math/rand"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
)

// randomScenario builds a random microdata table with matching hierarchies:
// 1–4 QI attributes with domain sizes 2–24, a sensitive domain of 2–16, and
// a table large enough for the K that the case will use.
func randomScenario(t *testing.T, rng *rand.Rand, minRows int) (*dataset.Table, []*hierarchy.Hierarchy) {
	t.Helper()
	d := 1 + rng.Intn(4)
	qi := make([]*dataset.Attribute, d)
	hiers := make([]*hierarchy.Hierarchy, d)
	for j := 0; j < d; j++ {
		size := 2 + rng.Intn(23)
		a, err := dataset.NewIntAttribute(fmt.Sprintf("q%d", j), 0, size-1)
		if err != nil {
			t.Fatal(err)
		}
		qi[j] = a
		h, err := hierarchy.NewBalanced(size, 2+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		hiers[j] = h
	}
	sens, err := dataset.NewIntAttribute("s", 0, 1+rng.Intn(15))
	if err != nil {
		t.Fatal(err)
	}
	schema, err := dataset.NewSchema(qi, sens)
	if err != nil {
		t.Fatal(err)
	}
	tab := dataset.NewTable(schema)
	n := minRows + rng.Intn(300)
	for i := 0; i < n; i++ {
		row := make([]int32, schema.Width())
		for j := 0; j < d; j++ {
			row[j] = int32(rng.Intn(qi[j].Size()))
		}
		row[d] = int32(rng.Intn(sens.Size()))
		if err := tab.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab, hiers
}

// TestPublishInvariantsRandomized is the pipeline's property-based harness:
// for randomized schemas, table sizes, seeds, and every Phase-2 algorithm,
// the publication must validate (including the G3 disjointness check), every
// group must meet the K floor, the G values must partition |D|, and |D*|
// must respect the Cardinality bound |D*| <= |D|·s with s = 1/k. Each case
// runs with Workers 1 and 8 and the two runs must agree row for row, so the
// parallel pipeline is exercised against the sequential one on every shape
// the generator produces.
func TestPublishInvariantsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20080402))
	cases := 60
	if testing.Short() {
		cases = 15
	}
	for c := 0; c < cases; c++ {
		k := 1 + rng.Intn(6)
		d, hiers := randomScenario(t, rng, 2*k+1)
		alg := []Algorithm{KD, TDS, FullDomain}[rng.Intn(3)]
		cfg := Config{
			K:         k,
			P:         float64(rng.Intn(101)) / 100,
			Algorithm: alg,
			Seed:      rng.Int63(),
		}
		name := fmt.Sprintf("case %d (%v k=%d p=%.2f n=%d d=%d)", c, alg, k, cfg.P, d.Len(), d.Schema.D())

		var pubs [2]*Published
		for i, workers := range []int{1, 8} {
			cfg.Workers = workers
			pub, err := Publish(d, hiers, cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if err := pub.Validate(); err != nil {
				t.Fatalf("%s workers=%d: Validate: %v", name, workers, err)
			}
			sum := 0
			for _, r := range pub.Rows {
				if r.G < k {
					t.Fatalf("%s workers=%d: G = %d below floor %d", name, workers, r.G, k)
				}
				sum += r.G
			}
			if sum != d.Len() {
				t.Fatalf("%s workers=%d: G values sum to %d, want |D| = %d", name, workers, sum, d.Len())
			}
			// Cardinality: |D*| <= |D|·s with s = 1/k.
			if pub.Len()*k > d.Len() {
				t.Fatalf("%s workers=%d: |D*| = %d exceeds |D|/k = %d/%d", name, workers, pub.Len(), d.Len(), k)
			}
			pubs[i] = pub
		}
		seq, par8 := pubs[0], pubs[1]
		if seq.Len() != par8.Len() {
			t.Fatalf("%s: sequential published %d rows, parallel %d", name, seq.Len(), par8.Len())
		}
		for i := range seq.Rows {
			a, b := seq.Rows[i], par8.Rows[i]
			if !a.Box.Equal(b.Box) || a.Value != b.Value || a.G != b.G || a.SourceRow != b.SourceRow {
				t.Fatalf("%s: row %d differs between sequential and parallel run", name, i)
			}
		}
	}
}
