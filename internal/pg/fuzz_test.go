package pg

import (
	"strings"
	"testing"

	"pgpub/internal/dataset"
)

// FuzzParseBoxLabel exercises the interval parser with arbitrary input: it
// must never panic, and every accepted label must yield a valid in-domain
// interval that round-trips through the printer.
func FuzzParseBoxLabel(f *testing.F) {
	for _, seed := range []string{"*", "25", "[20-64]", "[20-", "-]", "[]", "[-]", "[20-64", "20-64]", "[a-b]", "[89-20]"} {
		f.Add(seed)
	}
	a := dataset.MustIntAttribute("Age", 20, 89)
	f.Fuzz(func(t *testing.T, s string) {
		lo, hi, err := parseBoxLabel(s, a)
		if err != nil {
			return
		}
		if lo < 0 || int(hi) >= a.Size() || lo > hi {
			t.Fatalf("accepted %q as invalid interval [%d,%d]", s, lo, hi)
		}
	})
}

// FuzzReadCSV exercises the publication loader with arbitrary CSV bodies:
// never panic; every accepted publication must validate.
func FuzzReadCSV(f *testing.F) {
	f.Add("Age,Gender,Zipcode,Disease,G\n*,M,*,bronchitis,2\n")
	f.Add("Age,Gender,Zipcode,Disease,G\n[20-39],F,[10-29],pneumonia,3\n")
	f.Add("garbage")
	f.Add("Age,Gender,Zipcode,Disease,G\n*,M,*,bronchitis,-1\n")
	schema := dataset.HospitalSchema()
	f.Fuzz(func(t *testing.T, body string) {
		pub, err := ReadCSV(schema, strings.NewReader(body), 0.3)
		if err != nil {
			return
		}
		if err := pub.Validate(); err != nil {
			t.Fatalf("accepted invalid publication: %v", err)
		}
	})
}
