package pg

import (
	"strings"
	"testing"

	"pgpub/internal/dataset"
)

// FuzzParseBoxLabel exercises the interval parser with arbitrary input: it
// must never panic, and every accepted label must yield a valid in-domain
// interval that round-trips through the printer.
func FuzzParseBoxLabel(f *testing.F) {
	for _, seed := range []string{
		"*", "25", "[20-64]", "[20-", "-]", "[]", "[-]", "[20-64", "20-64]", "[a-b]", "[89-20]",
		// Degenerate interval punctuation and whitespace shapes.
		"", " ", "  *", "* ", "[ - ]", "[--]", "[---]", "[20--64]", "[-20-64]", "[20-64-]",
		// Multi-dash bodies exercise every split position.
		"[20-40-64]", "[20-20-20-20]", "[*-*]", "[[20-64]]",
		// Boundary and out-of-domain numerals.
		"[20-89]", "[19-90]", "[000020-89]", "[+20-64]", "[20-1e2]", "[٢٠-٦٤]",
	} {
		f.Add(seed)
	}
	a := dataset.MustIntAttribute("Age", 20, 89)
	f.Fuzz(func(t *testing.T, s string) {
		lo, hi, err := parseBoxLabel(s, a)
		if err != nil {
			return
		}
		if lo < 0 || int(hi) >= a.Size() || lo > hi {
			t.Fatalf("accepted %q as invalid interval [%d,%d]", s, lo, hi)
		}
	})
}

// FuzzReadCSV exercises the publication loader with arbitrary CSV bodies:
// never panic; every accepted publication must validate.
func FuzzReadCSV(f *testing.F) {
	f.Add("Age,Gender,Zipcode,Disease,G\n*,M,*,bronchitis,2\n")
	f.Add("Age,Gender,Zipcode,Disease,G\n[20-39],F,[10-29],pneumonia,3\n")
	f.Add("garbage")
	f.Add("Age,Gender,Zipcode,Disease,G\n*,M,*,bronchitis,-1\n")
	// Empty and whitespace fields in every position.
	f.Add("Age,Gender,Zipcode,Disease,G\n,,,,\n")
	f.Add("Age,Gender,Zipcode,Disease,G\n , , , , \n")
	f.Add("Age,Gender,Zipcode,Disease,G\n*,M,*,bronchitis,\n")
	f.Add("Age,Gender,Zipcode,Disease,G\n\"\",M,*,bronchitis,2\n")
	// Header-only, truncated, and shape-violating bodies.
	f.Add("Age,Gender,Zipcode,Disease,G\n")
	f.Add("Age,Gender,Zipcode,Disease\n*,M,*,bronchitis\n")
	f.Add("Age,Gender,Zipcode,Disease,G,Extra\n*,M,*,bronchitis,2,9\n")
	f.Add("G,Disease,Zipcode,Gender,Age\n2,bronchitis,*,M,*\n")
	// Interval-label corner cases inside a record, quoting, CRLF, huge G.
	f.Add("Age,Gender,Zipcode,Disease,G\n[20-39-64],M,[--],bronchitis,2\n")
	f.Add("Age,Gender,Zipcode,Disease,G\r\n\"[20-39]\",F,\"[10-29]\",pneumonia,3\r\n")
	f.Add("Age,Gender,Zipcode,Disease,G\n*,M,*,bronchitis,999999999999999999999\n")
	f.Add("Age,Gender,Zipcode,Disease,G\n*,M,*,bronchitis,+2\n")
	// Overlapping rows must be rejected by Validate, not accepted silently.
	f.Add("Age,Gender,Zipcode,Disease,G\n*,M,*,bronchitis,2\n*,M,*,flu,2\n")
	schema := dataset.HospitalSchema()
	f.Fuzz(func(t *testing.T, body string) {
		pub, err := ReadCSV(schema, strings.NewReader(body), 0.3)
		if err != nil {
			return
		}
		if err := pub.Validate(); err != nil {
			t.Fatalf("accepted invalid publication: %v", err)
		}
	})
}

// FuzzReadMetadata exercises the release-metadata parser with arbitrary —
// including malformed — documents: never panic, and every accepted document
// must carry fields inside their documented ranges.
func FuzzReadMetadata(f *testing.F) {
	f.Add(`{"retention_probability":0.3,"k":6,"algorithm":"kd","rows":100}`)
	f.Add(`{"retention_probability":-1,"k":6,"algorithm":"kd","rows":100}`)
	f.Add(`{"retention_probability":0.3,"k":0,"algorithm":"","rows":-5}`)
	f.Add(`{"retention_probability":"0.3"}`)
	f.Add(`{"k":1e99}`)
	f.Add(`{"retention_probability":0.3,"k":6,"rows":1,"guarantee":{"lambda":0.1}}`)
	f.Add(`{"unknown_field":true}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`null`)
	f.Add("{\"retention_probability\":0.3,\"k\":6,\"rows\":1}\n{\"k\":2}")
	f.Fuzz(func(t *testing.T, body string) {
		m, err := ReadMetadata(strings.NewReader(body))
		if err != nil {
			return
		}
		if m.P < 0 || m.P > 1 || m.K < 1 || m.Rows < 0 {
			t.Fatalf("accepted out-of-range metadata: %+v", m)
		}
	})
}
