package pg

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/sal"
)

// updateGolden rewrites the committed golden fixtures instead of comparing
// against them.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden fixtures")

// TestPublishDeterministicAcrossWorkers is the determinism contract of the
// parallel pipeline: for a fixed Seed, the published CSV bytes must be
// identical whether the pipeline runs sequentially or on many workers, for
// every Phase-2 algorithm. Phase-1 perturbation feeds the TDS score and the
// sampled representatives, so any schedule leakage into an RNG stream shows
// up here immediately.
func TestPublishDeterministicAcrossWorkers(t *testing.T) {
	d, err := sal.Generate(12000, 77)
	if err != nil {
		t.Fatal(err)
	}
	hiers := sal.Hierarchies(d.Schema)
	for _, alg := range []Algorithm{KD, TDS, FullDomain} {
		var base []byte
		for _, workers := range []int{1, 2, 8} {
			pub, err := Publish(d, hiers, Config{K: 6, P: 0.3, Seed: 99, Algorithm: alg, Workers: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", alg, workers, err)
			}
			var buf bytes.Buffer
			if err := pub.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			if workers == 1 {
				base = buf.Bytes()
				continue
			}
			if !bytes.Equal(base, buf.Bytes()) {
				t.Fatalf("%v: workers=%d output differs from sequential run", alg, workers)
			}
		}
	}
}

// TestPublishDeterministicGolden pins the published bytes of the hospital
// walkthrough to a committed fixture, so a refactor cannot silently change
// what a given seed publishes. Regenerate deliberately with
//
//	go test ./internal/pg -run TestPublishDeterministicGolden -update-golden
//
// and review the diff like any other behavior change.
func TestPublishDeterministicGolden(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	pub, err := Publish(d, hiers, Config{K: 2, P: 0.25, Seed: 2008, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pub.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "hospital_seed2008.golden.csv")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("published CSV drifted from golden fixture\n--- want ---\n%s\n--- got ---\n%s",
			strings.TrimSpace(string(want)), strings.TrimSpace(buf.String()))
	}
}

// TestPublishSameSeedSameBytes re-publishes with the same seed and expects
// identical bytes — the baseline reproducibility promise of Config.Seed.
func TestPublishSameSeedSameBytes(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	var outs [][]byte
	for i := 0; i < 2; i++ {
		pub, err := Publish(d, hiers, Config{S: 0.5, P: 0.25, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := pub.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.Bytes())
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("same seed must publish identical bytes")
	}
}
