package pg

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/obs"
	"pgpub/internal/sal"
)

// pubBytes renders a publication to its CSV plus the recoding cut state,
// the full observable surface of a release.
func pubBytes(t *testing.T, p *Published) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if p.Recoding != nil {
		for _, c := range p.Recoding.Cuts {
			fmt.Fprintf(&buf, "%v\n", c.Nodes())
		}
	}
	return buf.Bytes()
}

// testDelta builds a small deterministic delta against a table: delete a
// spread of rows, insert freshly generated ones.
func testDelta(t *testing.T, prev *dataset.Table, deletes, inserts int, seed int64) Delta {
	t.Helper()
	dl := Delta{}
	for i := 0; i < deletes; i++ {
		dl.Deletes = append(dl.Deletes, (i*37+11)%prev.Len())
	}
	if inserts > 0 {
		ins, err := sal.Generate(inserts, seed)
		if err != nil {
			t.Fatal(err)
		}
		ins.Owners = nil
		dl.Inserts = ins
	}
	return dl
}

// TestRepublishMatchesFromScratch is the acceptance contract of the
// incremental path: for every Phase-2 algorithm and several worker counts,
// each release of a chain (base, delta, empty delta, delta) is byte-
// identical to a from-scratch Publish of the post-delta table under the
// effective seed ReleaseSeed(root, r). The empty-delta release exercises
// the cached-grouping fast path against the recomputing publish.
func TestRepublishMatchesFromScratch(t *testing.T) {
	base, err := sal.Generate(3000, 17)
	if err != nil {
		t.Fatal(err)
	}
	hiers := sal.Hierarchies(base.Schema)
	const root = 907
	for _, alg := range []Algorithm{KD, TDS, FullDomain} {
		var golden [][]byte // per release, from workers=1
		for _, workers := range []int{1, 3, 8} {
			c := NewChain(base, hiers)
			cfg := Config{K: 6, P: 0.3, Seed: root, Algorithm: alg, Workers: workers}
			deltas := []Delta{
				{},
				testDelta(t, c.Table(), 40, 25, 18),
				{},
			}
			// The third non-trivial delta depends on the table after the
			// first one; build it lazily below.
			for r := 0; r < 4; r++ {
				var dl Delta
				if r < len(deltas) {
					dl = deltas[r]
				} else {
					dl = testDelta(t, c.Table(), 15, 30, 19)
				}
				pub, err := Republish(c, dl, cfg)
				if err != nil {
					t.Fatalf("%v workers=%d release %d: %v", alg, workers, r, err)
				}
				got := pubBytes(t, pub)

				// From-scratch equivalence under the effective seed.
				scratch, err := Publish(c.Table(), hiers, Config{
					K: 6, P: 0.3, Seed: ReleaseSeed(root, r), Algorithm: alg, Workers: workers,
				})
				if err != nil {
					t.Fatalf("%v workers=%d release %d: from-scratch: %v", alg, workers, r, err)
				}
				if want := pubBytes(t, scratch); !bytes.Equal(got, want) {
					t.Fatalf("%v workers=%d release %d: Republish differs from from-scratch Publish of the post-delta table",
						alg, workers, r)
				}

				// Worker-count invariance.
				if workers == 1 {
					golden = append(golden, got)
				} else if !bytes.Equal(got, golden[r]) {
					t.Fatalf("%v workers=%d release %d: bytes differ from sequential chain", alg, workers, r)
				}
			}
		}
	}
}

// TestRepublishReusesPhase2 pins the incremental win: an empty delta must
// reuse the cached grouping (repub.phase2.reused), a row-touching delta
// must recompute (repub.phase2.recomputed), and release 0 of a chain must
// equal a plain Publish under the root seed.
func TestRepublishReusesPhase2(t *testing.T) {
	base, err := sal.Generate(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	hiers := sal.Hierarchies(base.Schema)
	reg := obs.NewRegistry()
	c := NewChain(base, hiers)
	cfg := Config{K: 6, P: 0.3, Seed: 41, Metrics: reg}

	r0, err := Republish(c, Delta{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Publish(base, hiers, Config{K: 6, P: 0.3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pubBytes(t, r0), pubBytes(t, plain)) {
		t.Fatal("release 0 differs from a plain Publish under the root seed")
	}

	if _, err := Republish(c, Delta{}, cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("repub.phase2.reused").Value(); got != 1 {
		t.Fatalf("repub.phase2.reused = %d after an empty delta, want 1", got)
	}
	if _, err := Republish(c, testDelta(t, c.Table(), 10, 10, 6), cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("repub.phase2.recomputed").Value(); got != 2 {
		t.Fatalf("repub.phase2.recomputed = %d, want 2 (release 0 and the row-touching delta)", got)
	}
	if got := reg.Counter("repub.releases").Value(); got != 3 {
		t.Fatalf("repub.releases = %d, want 3", got)
	}
}

// TestRepublishRejectsRng pins the statelessness requirement.
func TestRepublishRejectsRng(t *testing.T) {
	base, err := sal.Generate(500, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChain(base, sal.Hierarchies(base.Schema))
	_, err = Republish(c, Delta{}, Config{K: 6, P: 0.3, Rng: rand.New(rand.NewSource(1))})
	if err == nil || !strings.Contains(err.Error(), "stateless") {
		t.Fatalf("Republish with an Rng: err = %v, want stateless-schedule refusal", err)
	}
}

// TestApplyDelta covers the delta semantics: order-preserving deletes,
// appended inserts, owner continuity, and the validation failures.
func TestApplyDelta(t *testing.T) {
	base, err := sal.Generate(50, 9)
	if err != nil {
		t.Fatal(err)
	}
	dl := testDelta(t, base, 5, 3, 10)
	next, err := ApplyDelta(base, dl)
	if err != nil {
		t.Fatal(err)
	}
	if next.Len() != 50-5+3 {
		t.Fatalf("post-delta table has %d rows, want %d", next.Len(), 48)
	}
	deleted := map[int]bool{}
	for _, i := range dl.Deletes {
		deleted[i] = true
	}
	k := 0
	for i := 0; i < base.Len(); i++ {
		if deleted[i] {
			continue
		}
		if next.Owner(k) != i {
			t.Fatalf("kept row %d has owner %d, want original owner %d", k, next.Owner(k), i)
		}
		if !reflect.DeepEqual(next.Row(k), base.Row(i)) {
			t.Fatalf("kept row %d content drifted", k)
		}
		k++
	}
	for j := 0; j < 3; j++ {
		if got, want := next.Owner(k+j), base.Len()+j; got != want {
			t.Fatalf("inserted row %d has owner %d, want fresh ID %d", j, got, want)
		}
	}

	if same, err := ApplyDelta(base, Delta{}); err != nil || same != base {
		t.Fatalf("empty delta: got (%p, %v), want the parent table back", same, err)
	}
	if _, err := ApplyDelta(base, Delta{Deletes: []int{50}}); err == nil {
		t.Fatal("out-of-range delete accepted")
	}
	if _, err := ApplyDelta(base, Delta{Deletes: []int{1, 1}}); err == nil {
		t.Fatal("duplicate delete accepted")
	}
	all := make([]int, base.Len())
	for i := range all {
		all[i] = i
	}
	if _, err := ApplyDelta(base, Delta{Deletes: all}); err == nil {
		t.Fatal("delete-everything delta accepted")
	}
}

// TestReadDelta covers the file format: comments, deletes, label inserts,
// and malformed lines.
func TestReadDelta(t *testing.T) {
	base, err := sal.Generate(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	schema := base.Schema
	labels := make([]string, 0, schema.Width())
	for j, a := range schema.QI {
		labels = append(labels, a.Label(base.QI(0, j)))
	}
	labels = append(labels, schema.Sensitive.Label(base.Sensitive(0)))

	text := "# churn for release 1\n-,3\n-,7\n+," + strings.Join(labels, ",") + "\n"
	dl, err := ReadDelta(schema, strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dl.Deletes, []int{3, 7}) {
		t.Fatalf("deletes = %v, want [3 7]", dl.Deletes)
	}
	if dl.Inserts == nil || dl.Inserts.Len() != 1 {
		t.Fatalf("inserts = %v, want 1 row", dl.Inserts)
	}
	if !reflect.DeepEqual(dl.Inserts.Row(0), base.Row(0)) {
		t.Fatalf("insert decoded %v, want %v", dl.Inserts.Row(0), base.Row(0))
	}

	for _, bad := range []string{
		"-,x\n",
		"-,1,2\n",
		"+,onlyone\n",
		"*,3\n",
	} {
		if _, err := ReadDelta(schema, strings.NewReader(bad)); err == nil {
			t.Errorf("ReadDelta(%q) accepted malformed input", bad)
		}
	}
}
