package pg

import (
	"reflect"
	"strings"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/sal"
)

// TestWriteCSVByteIdentity pins the release formats at the byte level:
// write(read(write(pub))) reproduces the CSV exactly for every Phase-2
// algorithm and both schemas, and the metadata document (including the
// guarantee block) survives Write → ReadMetadata without drifting. A label
// rendered one way and parsed another — or a JSON field renamed — fails
// here before any consumer sees it.
func TestWriteCSVByteIdentity(t *testing.T) {
	salData, err := sal.Generate(400, 9)
	if err != nil {
		t.Fatal(err)
	}
	type fixture struct {
		name string
		pub  *Published
	}
	var fixtures []fixture
	for _, alg := range []Algorithm{KD, TDS, FullDomain} {
		hosp := dataset.Hospital()
		pub, err := Publish(hosp, hospitalHiers(hosp.Schema), Config{K: 2, P: 0.25, Algorithm: alg, Seed: 17})
		if err != nil {
			t.Fatalf("hospital/%v: %v", alg, err)
		}
		fixtures = append(fixtures, fixture{"hospital/" + alg.String(), pub})

		pub, err = Publish(salData, sal.Hierarchies(salData.Schema), Config{K: 4, P: 0.3, Algorithm: alg, Seed: 17})
		if err != nil {
			t.Fatalf("sal/%v: %v", alg, err)
		}
		fixtures = append(fixtures, fixture{"sal/" + alg.String(), pub})
	}

	for _, f := range fixtures {
		var first strings.Builder
		if err := f.pub.WriteCSV(&first); err != nil {
			t.Fatalf("%s: WriteCSV: %v", f.name, err)
		}
		loaded, err := ReadCSV(f.pub.Schema, strings.NewReader(first.String()), f.pub.P)
		if err != nil {
			t.Fatalf("%s: ReadCSV: %v", f.name, err)
		}
		var second strings.Builder
		if err := loaded.WriteCSV(&second); err != nil {
			t.Fatalf("%s: re-WriteCSV: %v", f.name, err)
		}
		if first.String() != second.String() {
			t.Fatalf("%s: CSV is not byte-identical across the round trip", f.name)
		}
	}
}

// TestMetadataByteIdentity pins the metadata document: the parsed form deep-
// equals the written form, guarantee block included, and re-writing the
// parsed metadata reproduces the JSON bytes.
func TestMetadataByteIdentity(t *testing.T) {
	d := dataset.Hospital()
	pub, err := Publish(d, hospitalHiers(d.Schema), Config{K: 2, P: 0.3, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	for _, guarantee := range []bool{true, false} {
		lambda, rho1 := 0.0, 0.0
		if guarantee {
			lambda, rho1 = 0.1, 0.2
		}
		m, err := pub.Metadata(lambda, rho1)
		if err != nil {
			t.Fatal(err)
		}
		var first strings.Builder
		if err := m.Write(&first); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMetadata(strings.NewReader(first.String()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("guarantee=%v: metadata drifted:\n%+v\n%+v", guarantee, got, m)
		}
		var second strings.Builder
		if err := got.Write(&second); err != nil {
			t.Fatal(err)
		}
		if first.String() != second.String() {
			t.Fatalf("guarantee=%v: metadata JSON is not byte-identical:\n%s\n%s",
				guarantee, first.String(), second.String())
		}
	}
}
