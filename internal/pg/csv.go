package pg

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// BoxLabel renders one attribute's generalized interval with the schema's
// value labels: the exact label for degenerate intervals, "*" for the full
// domain, "[lo-hi]" otherwise — the presentation of Table IIc.
func (p *Published) BoxLabel(row, attr int) string {
	a := p.Schema.QI[attr]
	lo, hi := p.Rows[row].Box.Lo[attr], p.Rows[row].Box.Hi[attr]
	switch {
	case lo == hi:
		return a.Label(lo)
	case lo == 0 && int(hi) == a.Size()-1:
		return "*"
	default:
		return fmt.Sprintf("[%s-%s]", a.Label(lo), a.Label(hi))
	}
}

// WriteCSV serializes D* in the shape of Table IIc: generalized QI labels,
// the observed sensitive value, and the G column. SourceRow is deliberately
// omitted — it is a simulation diagnostic, not part of the release.
func (p *Published) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, p.Schema.Width()+1)
	for _, a := range p.Schema.QI {
		header = append(header, a.Name)
	}
	header = append(header, p.Schema.Sensitive.Name, "G")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("pg: writing CSV header: %w", err)
	}
	for i, r := range p.EnsureRows() {
		rec := make([]string, 0, len(header))
		for j := range p.Schema.QI {
			rec = append(rec, p.BoxLabel(i, j))
		}
		rec = append(rec, p.Schema.Sensitive.Label(r.Value), strconv.Itoa(r.G))
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("pg: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
