package pg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
)

func hospitalHiers(s *dataset.Schema) []*hierarchy.Hierarchy {
	return []*hierarchy.Hierarchy{
		hierarchy.MustInterval(s.QI[0].Size(), 5, 20),
		hierarchy.MustFlat(s.QI[1].Size()),
		hierarchy.MustInterval(s.QI[2].Size(), 5, 20),
	}
}

func TestPublishTableII(t *testing.T) {
	// The walkthrough of Table II: p = 0.25, s = 0.5 hence k = 2, on the
	// hospital microdata.
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	pub, err := Publish(d, hiers, Config{S: 0.5, P: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if pub.K != 2 {
		t.Fatalf("K = %d, want ceil(1/0.5) = 2", pub.K)
	}
	if err := pub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Cardinality constraint: |D*| <= |D|*s.
	if pub.Len() > int(float64(d.Len())*0.5) {
		t.Fatalf("|D*| = %d exceeds |D|*s = %v", pub.Len(), float64(d.Len())*0.5)
	}
	// Each published tuple's G is its stratum size, and the G values sum to
	// |D| (the strata partition the microdata).
	sum := 0
	for _, r := range pub.Rows {
		sum += r.G
	}
	if sum != d.Len() {
		t.Fatalf("sum of G = %d, want %d", sum, d.Len())
	}
}

func TestPublishKDirect(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	pub, err := Publish(d, hiers, Config{K: 4, P: 0.3, Seed: 2})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if pub.K != 4 {
		t.Fatalf("K = %d", pub.K)
	}
	for _, r := range pub.Rows {
		if r.G < 4 {
			t.Fatalf("G = %d < 4", r.G)
		}
	}
}

func TestPublishErrors(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	if _, err := Publish(dataset.NewTable(d.Schema), hiers, Config{K: 2, P: 0.3}); err == nil {
		t.Fatal("empty microdata: want error")
	}
	if _, err := Publish(d, hiers, Config{P: 0.3}); err == nil {
		t.Fatal("neither K nor S: want error")
	}
	if _, err := Publish(d, hiers, Config{K: 2, S: 0.5, P: 0.3}); err == nil {
		t.Fatal("both K and S: want error")
	}
	if _, err := Publish(d, hiers, Config{S: 1.5, P: 0.3}); err == nil {
		t.Fatal("s > 1: want error")
	}
	if _, err := Publish(d, hiers, Config{K: 2, P: -0.1}); err == nil {
		t.Fatal("negative p: want error")
	}
	if _, err := Publish(d, hiers, Config{K: 2, P: 0.3, Algorithm: Algorithm(9)}); err == nil {
		t.Fatal("unknown algorithm: want error")
	}
	if _, err := Publish(d, hiers, Config{K: 99, P: 0.3}); err == nil {
		t.Fatal("k > |D|: want error")
	}
}

func TestPublishFullDomain(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	pub, err := Publish(d, hiers, Config{K: 2, P: 0.25, Algorithm: FullDomain, Seed: 3})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := pub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFindCrucial(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	pub, err := Publish(d, hiers, Config{K: 2, P: 0.25, Seed: 4})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	// Every microdata QI vector must match exactly one published row (A1).
	for i := 0; i < d.Len(); i++ {
		r, ok := pub.FindCrucial(d.QIVector(i))
		if !ok {
			t.Fatalf("no crucial tuple for row %d", i)
		}
		matches := 0
		for _, rr := range pub.Rows {
			if rr.Box.Covers(d.QIVector(i)) {
				matches++
			}
		}
		if matches != 1 {
			t.Fatalf("row %d matched %d published tuples, want exactly 1", i, matches)
		}
		_ = r
	}
	// A QI vector outside every group cover can fail only if the recoding
	// does not cover the whole QI space — cuts cover all leaves, so every
	// vector finds a crucial tuple *unless* its group was never formed.
	// Construct a vector from an unused corner and accept either outcome,
	// exercising the not-found path when possible.
	far := []int32{int32(d.Schema.QI[0].Size() - 1), 0, int32(d.Schema.QI[2].Size() - 1)}
	_, _ = pub.FindCrucial(far)
}

func TestAlgorithmString(t *testing.T) {
	if TDS.String() != "tds" || FullDomain.String() != "full-domain" {
		t.Fatal("Algorithm.String")
	}
	if !strings.Contains(Algorithm(7).String(), "7") {
		t.Fatal("unknown algorithm string")
	}
}

func TestGuaranteesMethod(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	pub, err := Publish(d, hiers, Config{K: 2, P: 0.3, Seed: 5})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	rho2, delta, err := pub.Guarantees(0.1, 0.2)
	if err != nil {
		t.Fatalf("Guarantees: %v", err)
	}
	if !(rho2 > 0.2 && rho2 < 1) || !(delta > 0 && delta < 1) {
		t.Fatalf("bounds out of range: rho2=%v delta=%v", rho2, delta)
	}
	if _, _, err := pub.Guarantees(0.1, 0); err == nil {
		t.Fatal("rho1=0: want error")
	}
	if _, _, err := pub.Guarantees(0, 0.2); err == nil {
		t.Fatal("lambda=0: want error")
	}
}

func TestWriteCSV(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	pub, err := Publish(d, hiers, Config{K: 2, P: 0.25, Seed: 6})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	var sb strings.Builder
	if err := pub.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != pub.Len()+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), pub.Len()+1)
	}
	if !strings.HasPrefix(lines[0], "Age,Gender,Zipcode,Disease,G") {
		t.Fatalf("header = %q", lines[0])
	}
	if strings.Contains(out, "SourceRow") {
		t.Fatal("CSV must not leak SourceRow")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	pub, err := Publish(d, hiers, Config{K: 2, P: 0.25, Seed: 7})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	good := pub.Rows[0]
	pub.Rows[0].G = 1
	if err := pub.Validate(); err == nil {
		t.Fatal("G < K: want error")
	}
	pub.Rows[0] = good
	pub.Rows[0].Value = 999
	if err := pub.Validate(); err == nil {
		t.Fatal("bad sensitive value: want error")
	}
	pub.Rows[0] = good
	if len(pub.Rows) > 1 {
		saved := pub.Rows[1]
		pub.Rows[1] = pub.Rows[0] // duplicate box: a G3 violation
		if err := pub.Validate(); err == nil {
			t.Fatal("overlapping boxes: want error")
		}
		pub.Rows[1] = saved
	}
	savedBox := pub.Rows[0].Box
	pub.Rows[0].Box.Lo = pub.Rows[0].Box.Lo[:1]
	if err := pub.Validate(); err == nil {
		t.Fatal("short box: want error")
	}
	pub.Rows[0].Box = savedBox
	pub.Rows[0].Box.Lo = append([]int32(nil), savedBox.Lo...)
	pub.Rows[0].Box.Lo[0] = -1
	if err := pub.Validate(); err == nil {
		t.Fatal("negative box bound: want error")
	}
}

func TestPublishKD(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	pub, err := Publish(d, hiers, Config{K: 2, P: 0.25, Algorithm: KD, Seed: 8})
	if err != nil {
		t.Fatalf("Publish(KD): %v", err)
	}
	if pub.Recoding != nil {
		t.Fatal("KD publications carry no cut recoding")
	}
	if err := pub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// KD cells cover the full QI space: any vector finds a crucial tuple.
	if _, ok := pub.FindCrucial([]int32{0, 0, 0}); !ok {
		t.Fatal("KD cells must cover the whole QI space")
	}
	sum := 0
	for _, r := range pub.Rows {
		sum += r.G
	}
	if sum != d.Len() {
		t.Fatalf("sum of G = %d, want %d", sum, d.Len())
	}
}

// Property: for random seeds and parameter choices, Publish emits a valid
// D* whose strata sum to |D| and whose every row count respects K.
func TestPublishInvariants(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	f := func(seed int64, kRaw, pRaw uint8) bool {
		k := int(kRaw%4) + 1
		p := float64(pRaw%101) / 100
		pub, err := Publish(d, hiers, Config{K: k, P: p, Rng: rand.New(rand.NewSource(seed))})
		if err != nil {
			return false
		}
		if pub.Validate() != nil {
			return false
		}
		sum := 0
		for _, r := range pub.Rows {
			sum += r.G
		}
		return sum == d.Len() && pub.Len() <= d.Len()/k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
