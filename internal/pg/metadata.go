package pg

import (
	"encoding/json"
	"fmt"
	"io"
)

// Metadata is the publication metadata a publisher announces alongside the
// released CSV: everything a consumer legitimately needs (the retention
// probability drives reconstruction-based mining and query answering; K and
// the algorithm document the release; the guarantee block records what the
// publisher certified). It deliberately contains nothing secret — all
// fields are already derivable from the publisher's public commitments.
type Metadata struct {
	// P is the Phase-1 retention probability.
	P float64 `json:"retention_probability"`
	// K is the QI-group size floor.
	K int `json:"k"`
	// Algorithm names the Phase-2 recoder.
	Algorithm string `json:"algorithm"`
	// Rows is |D*|.
	Rows int `json:"rows"`
	// Guarantee optionally records the certified level.
	Guarantee *GuaranteeMetadata `json:"guarantee,omitempty"`
}

// GuaranteeMetadata records the certified background-sensitive level.
type GuaranteeMetadata struct {
	Lambda float64 `json:"lambda"`
	Rho1   float64 `json:"rho1"`
	Rho2   float64 `json:"rho2"`
	Delta  float64 `json:"delta"`
}

// Metadata assembles the publication's metadata, certifying the guarantees
// for the given λ and ρ₁ (pass 0, 0 to omit the guarantee block).
func (p *Published) Metadata(lambda, rho1 float64) (Metadata, error) {
	m := Metadata{
		P:         p.P,
		K:         p.K,
		Algorithm: p.Algorithm.String(),
		Rows:      p.Len(),
	}
	if lambda > 0 && rho1 > 0 {
		rho2, delta, err := p.Guarantees(lambda, rho1)
		if err != nil {
			return Metadata{}, err
		}
		m.Guarantee = &GuaranteeMetadata{Lambda: lambda, Rho1: rho1, Rho2: rho2, Delta: delta}
	}
	return m, nil
}

// Write serializes the metadata as indented JSON.
func (m Metadata) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("pg: writing metadata: %w", err)
	}
	return nil
}

// ReadMetadata parses a metadata document and validates its fields.
func ReadMetadata(r io.Reader) (Metadata, error) {
	var m Metadata
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Metadata{}, fmt.Errorf("pg: reading metadata: %w", err)
	}
	if m.P < 0 || m.P > 1 {
		return Metadata{}, fmt.Errorf("pg: metadata retention probability %v outside [0,1]", m.P)
	}
	if m.K < 1 {
		return Metadata{}, fmt.Errorf("pg: metadata k = %d", m.K)
	}
	if m.Rows < 0 {
		return Metadata{}, fmt.Errorf("pg: metadata rows = %d", m.Rows)
	}
	return m, nil
}
