// Package pg implements perturbed generalization (PG), the contribution of
// the paper (Section IV): a three-phase anonymization pipeline that combines
// uniform perturbation of the sensitive attribute (Phase 1), k-anonymous
// global recoding of the QI attributes (Phase 2), and stratified sampling of
// one tuple per QI-group augmented with the group size G (Phase 3). The
// published table D* satisfies the Cardinality constraint |D*| <= |D|·s with
// k = ceil(1/s), and the privacy guarantees of Theorems 1–3.
//
// Generalized QI vectors are represented as axis-aligned boxes over the QI
// code space (generalize.Box). All Phase-2 algorithms emit pairwise-disjoint
// boxes (Property G3), so the crucial tuple of a linking attack is unique
// (step A1).
package pg

import (
	"fmt"
	"math"
	"math/rand"

	"pgpub/internal/dataset"
	"pgpub/internal/generalize"
	"pgpub/internal/hierarchy"
	"pgpub/internal/obs"
	"pgpub/internal/par"
	"pgpub/internal/perturb"
	"pgpub/internal/privacy"
	"pgpub/internal/sampling"
)

// Algorithm selects the Phase-2 recoding algorithm.
type Algorithm int

const (
	// KD is Mondrian-style strict partitioning [16] publishing kd-cells:
	// multidimensional recoding with disjoint cells (G3 holds) and groups
	// near the minimal size k. It is the default and what the evaluation
	// harness uses.
	KD Algorithm = iota
	// TDS is top-down specialization [11], the algorithm the paper adapts.
	// Single-dimensional global recoding; groups can stay far above k on
	// smooth data (see DESIGN.md §3), which costs utility.
	TDS
	// FullDomain is the Incognito-style level-lattice search [13].
	FullDomain
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case TDS:
		return "tds"
	case FullDomain:
		return "full-domain"
	case KD:
		return "kd"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm is String's inverse: it resolves the names release
// metadata and command-line flags use ("kd", "tds", "full-domain").
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "kd":
		return KD, nil
	case "tds":
		return TDS, nil
	case "full-domain":
		return FullDomain, nil
	default:
		return 0, fmt.Errorf("pg: unknown algorithm %q (want kd, tds or full-domain)", s)
	}
}

// Config parameterizes a PG publication.
type Config struct {
	// K is the QI-group size floor (Property G2). Exactly one of K or S
	// must be set: when K is 0 it is derived from S as ceil(1/S).
	K int
	// S is the Cardinality parameter in (0,1]: |D*| <= |D|·S.
	S float64
	// P is the retention probability of Phase 1 in [0,1]. Use
	// privacy.MaxRetentionRho12 / MaxRetentionDelta to derive it from a
	// target guarantee level.
	P float64
	// Algorithm selects the Phase-2 recoding algorithm (default KD).
	Algorithm Algorithm
	// Class and NumClasses optionally steer the TDS information-gain score
	// toward the analyst's mining task (see generalize.TDSConfig).
	Class      []int
	NumClasses int
	// Seed seeds the pipeline's randomness when Rng is nil.
	Seed int64
	// Rng overrides the random source (takes precedence over Seed). Publish
	// draws a single root seed from it and splits shard streams off that
	// root, so a shared Rng advances by exactly one Int63 per call
	// regardless of table size or worker count.
	Rng *rand.Rand
	// Workers bounds the pipeline's parallelism: Phase 1 and Phase 3 are
	// sharded across this many goroutines, KD recursion fans out to match,
	// and the TDS/FullDomain per-group recoding application is spread the
	// same way. 0 (the default) means runtime.GOMAXPROCS(0); 1 runs fully
	// sequential. The published table is byte-identical across Workers
	// values for a fixed Seed/Rng — shard RNG streams are derived from the
	// root seed with par.SplitSeed, never from the schedule.
	Workers int
	// Metrics optionally receives the pipeline's runtime instrumentation:
	// per-phase wall-clock histograms (pg.phase1/2/3, pg.publish), row and
	// group counters, and the Phase-2 algorithms' internal diagnostics (see
	// docs/OBSERVABILITY.md for the full vocabulary). nil — the default —
	// disables instrumentation at the cost of one branch per call site; all
	// counter values are worker-count-invariant, like the output itself.
	Metrics *obs.Registry
}

// Row is one published tuple of D*: the generalized QI box, the observed —
// possibly perturbed — sensitive value y, and the source QI-group size G
// (step S3).
type Row struct {
	Box   generalize.Box
	Value int32
	G     int

	// SourceRow is the microdata row the tuple descends from. It is a
	// diagnostic for attack simulation and testing — a real release must
	// not include it (WriteCSV omits it).
	SourceRow int
}

// Published is the anonymized table D* together with the publication
// metadata a data consumer legitimately knows: the schema, the retention
// probability P (required for reconstruction-based mining), the group-size
// floor K, and the Phase-2 algorithm. Recoding is non-nil for the cut-based
// algorithms (TDS, FullDomain) and nil for KD.
type Published struct {
	Schema    *dataset.Schema
	Algorithm Algorithm
	Recoding  *generalize.Recoding
	Rows      []Row
	P         float64
	K         int

	// cols is the adopted columnar row view of a publication built by
	// FromColumns (snapshot serving path); nil for a publication whose rows
	// were materialized directly. When Rows is nil and cols is set, Len,
	// Columns, Aggregates, Validate and FindCrucial serve from the columns
	// and never materialize row-major rows.
	cols *RowColumns
}

// Publish runs Phases 1–3 on the microdata and returns D*.
func Publish(d *dataset.Table, hiers []*hierarchy.Hierarchy, cfg Config) (*Published, error) {
	pub, _, err := publish(d, hiers, cfg, nil)
	return pub, err
}

// phase2Grouping is Phase 2's output: the recoding (nil for KD), one
// generalized box per QI-group, and each group's member rows. It is a pure
// function of the QI columns and (k, algorithm, class steering) — Phase 1
// never touches the QI attributes — which is what lets Republish reuse a
// cached grouping across pure re-perturbation releases and still emit bytes
// identical to a from-scratch publish.
type phase2Grouping struct {
	recoding  *generalize.Recoding
	boxes     []generalize.Box
	groupRows [][]int
}

// publish is the pipeline behind Publish and Republish. When cached is
// non-nil, Phase 2 is skipped and the cached grouping adopted; the caller
// guarantees it was computed over a table with identical QI columns under
// identical (k, algorithm, class) parameters.
func publish(d *dataset.Table, hiers []*hierarchy.Hierarchy, cfg Config, cached *phase2Grouping) (*Published, *phase2Grouping, error) {
	if d.Len() == 0 {
		return nil, nil, fmt.Errorf("pg: empty microdata")
	}
	k, err := resolveK(cfg)
	if err != nil {
		return nil, nil, err
	}
	if cfg.P < 0 || cfg.P > 1 {
		return nil, nil, fmt.Errorf("pg: retention probability %v outside [0,1]", cfg.P)
	}
	workers := par.N(cfg.Workers)
	met := cfg.Metrics
	spTotal := met.Span("pg.publish")
	met.Counter("pg.publish.calls").Inc()
	met.Counter("pg.rows.in").Add(int64(d.Len()))
	// The root seed fixes every random stream of the pipeline. Per-phase
	// roots are split off it, and each phase splits per-shard seeds off its
	// root, so the streams depend only on (root, shard index) — running the
	// shards on one goroutine or sixteen cannot change the output bytes.
	root := cfg.Seed
	if cfg.Rng != nil {
		root = cfg.Rng.Int63()
	}
	phase1Root := par.SplitSeed(root, 0)
	phase3Root := par.SplitSeed(root, 1)

	// Phase 1: perturbation, sharded across the workers.
	pb, err := perturb.NewPerturber(cfg.P, d.Schema.SensitiveDomain())
	if err != nil {
		return nil, nil, err
	}
	pb.Retained = met.Counter("pg.phase1.retained")
	pb.Redrawn = met.Counter("pg.phase1.redrawn")
	sp1 := met.Span("pg.phase1")
	dp, err := pb.TableSharded(d, phase1Root, workers)
	if err != nil {
		return nil, nil, err
	}
	sp1.End()

	// Phase 2: generalization (global recoding, Properties G1–G3), unless a
	// still-valid grouping was handed down.
	pub := &Published{Schema: d.Schema, Algorithm: cfg.Algorithm, P: cfg.P, K: k}
	grp := cached
	if grp == nil {
		sp2 := met.Span("pg.phase2")
		grp, err = runPhase2(dp, hiers, cfg, k, workers)
		if err != nil {
			return nil, nil, err
		}
		sp2.End()
		met.Counter("pg.phase2.groups").Add(int64(len(grp.groupRows)))
	}
	pub.Recoding = grp.recoding

	// Phase 3: stratified sampling (S1–S4), sharded across the workers.
	sp3 := met.Span("pg.phase3")
	strata, err := sampling.StratifiedSeeded(grp.groupRows, phase3Root, workers)
	if err != nil {
		return nil, nil, fmt.Errorf("pg: phase 3: %w", err)
	}
	for _, st := range strata {
		pub.Rows = append(pub.Rows, Row{
			Box:       grp.boxes[st.Group],
			Value:     dp.Sensitive(st.Row),
			G:         st.GroupSize,
			SourceRow: st.Row,
		})
	}
	sp3.End()
	met.Counter("pg.rows.published").Add(int64(len(pub.Rows)))
	spTotal.End()
	return pub, grp, nil
}

// runPhase2 runs the configured Phase-2 algorithm over the (perturbed)
// table and packages its grouping.
func runPhase2(dp *dataset.Table, hiers []*hierarchy.Hierarchy, cfg Config, k, workers int) (*phase2Grouping, error) {
	met := cfg.Metrics
	switch cfg.Algorithm {
	case TDS:
		res, err := generalize.TDS(dp, hiers, generalize.TDSConfig{
			K: k, Class: cfg.Class, NumClasses: cfg.NumClasses, Workers: workers,
			Metrics: met,
		})
		if err != nil {
			return nil, fmt.Errorf("pg: phase 2: %w", err)
		}
		return &phase2Grouping{
			recoding:  res.Recoding,
			boxes:     applyRecoding(res.Recoding, res.Groups.Keys, workers),
			groupRows: res.Groups.Rows,
		}, nil
	case FullDomain:
		res, err := generalize.SearchFullDomain(dp, hiers, generalize.FullDomainConfig{
			Principle: generalize.KAnonymity{K: k}, Workers: workers,
			Metrics: met,
		})
		if err != nil {
			return nil, fmt.Errorf("pg: phase 2: %w", err)
		}
		return &phase2Grouping{
			recoding:  res.Recoding,
			boxes:     applyRecoding(res.Recoding, res.Groups.Keys, workers),
			groupRows: res.Groups.Rows,
		}, nil
	case KD:
		res, err := generalize.KDPartitionParallel(dp, k, par.SpawnDepth(workers))
		if err != nil {
			return nil, fmt.Errorf("pg: phase 2: %w", err)
		}
		return &phase2Grouping{boxes: res.Cells, groupRows: res.Rows}, nil
	default:
		return nil, fmt.Errorf("pg: unknown algorithm %v", cfg.Algorithm)
	}
}

// applyRecoding materializes every group key's box, spreading the per-group
// recoding application over the workers. Boxes are written at their own
// index, so the result is identical to the sequential loop.
func applyRecoding(r *generalize.Recoding, keys [][]int32, workers int) []generalize.Box {
	boxes := make([]generalize.Box, len(keys))
	par.ForEach(workers, len(keys), func(i int) {
		boxes[i] = r.BoxOf(keys[i])
	})
	return boxes
}

// resolveK applies the paper's rule k = ceil(1/s).
func resolveK(cfg Config) (int, error) {
	if cfg.K > 0 {
		if cfg.S != 0 {
			return 0, fmt.Errorf("pg: set either K or S, not both")
		}
		return cfg.K, nil
	}
	if cfg.S <= 0 || cfg.S > 1 {
		return 0, fmt.Errorf("pg: cardinality parameter s = %v outside (0,1]", cfg.S)
	}
	return int(math.Ceil(1 / cfg.S)), nil
}

// Len returns |D*|.
func (p *Published) Len() int {
	if p.Rows == nil && p.cols != nil {
		return p.cols.N
	}
	return len(p.Rows)
}

// FindCrucial performs step A1 of a linking attack: it retrieves the unique
// row whose generalized QI box covers vq. Uniqueness is guaranteed by
// Property G3 plus step S2; ok is false when no row matches (possible only
// for QI regions whose group was empty in the microdata).
func (p *Published) FindCrucial(vq []int32) (Row, bool) {
	if p.Rows == nil && p.cols != nil {
		for i := 0; i < p.cols.N; i++ {
			if p.cols.covers(i, vq) {
				return p.cols.Row(i), true
			}
		}
		return Row{}, false
	}
	for _, r := range p.Rows {
		if r.Box.Covers(vq) {
			return r, true
		}
	}
	return Row{}, false
}

// Validate checks the structural invariants of D*: every G at least K,
// sensitive values in domain, boxes inside the QI domain, and — Property
// G3 — pairwise-disjoint boxes. The per-row checks run as columnar sweeps
// over the struct-of-arrays view, one contiguous stream per field. The
// disjointness check is quadratic and skipped beyond 4000 rows
// (construction guarantees it; tests exercise the small case exhaustively).
func (p *Published) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("pg: K = %d", p.K)
	}
	d := p.Schema.D()
	// Malformed row-major boxes must be reported, not tripped over by the
	// columnar conversion, so the shape check precedes it.
	for i := range p.Rows {
		if len(p.Rows[i].Box.Lo) != d || len(p.Rows[i].Box.Hi) != d {
			return fmt.Errorf("pg: row %d box has wrong dimensionality", i)
		}
	}
	c := p.Columns()
	if err := c.Check(); err != nil {
		return err
	}
	if c.D != d {
		return fmt.Errorf("pg: rows have %d-dimensional boxes for %d QI attributes", c.D, d)
	}
	for i, g := range c.G {
		if g < int64(p.K) {
			return fmt.Errorf("pg: row %d has G = %d < K = %d", i, g, p.K)
		}
	}
	for i, v := range c.Value {
		if !p.Schema.Sensitive.Valid(v) {
			return fmt.Errorf("pg: row %d sensitive value %d out of domain", i, v)
		}
	}
	for j := 0; j < d; j++ {
		lo, hi := c.Lo[j*c.N:(j+1)*c.N], c.Hi[j*c.N:(j+1)*c.N]
		size := int32(p.Schema.QI[j].Size())
		for i := range lo {
			if lo[i] < 0 || hi[i] >= size || lo[i] > hi[i] {
				return fmt.Errorf("pg: row %d box attribute %d = [%d,%d] invalid", i, j, lo[i], hi[i])
			}
		}
	}
	if c.N <= 4000 {
		for i := 0; i < c.N; i++ {
			for j := i + 1; j < c.N; j++ {
				if boxesOverlap(c, i, j) {
					return fmt.Errorf("pg: rows %d and %d overlap (G3 violation)", i, j)
				}
			}
		}
	}
	return nil
}

// boxesOverlap reports whether rows i and j of the columnar view intersect.
func boxesOverlap(c *RowColumns, i, j int) bool {
	for a := 0; a < c.D; a++ {
		o := a * c.N
		if c.Hi[o+i] < c.Lo[o+j] || c.Hi[o+j] < c.Lo[o+i] {
			return false
		}
	}
	return true
}

// Guarantees returns the privacy bounds of Theorems 2 and 3 for this
// publication against λ-skewed adversaries with prior confidence at most
// ρ₁: the minimal certifiable ρ₂ and Δ.
func (p *Published) Guarantees(lambda, rho1 float64) (rho2, delta float64, err error) {
	domain := p.Schema.SensitiveDomain()
	rho2, err = privacy.MinRho2(p.P, lambda, rho1, p.K, domain)
	if err != nil {
		return 0, 0, err
	}
	delta, err = privacy.MinDelta(p.P, lambda, p.K, domain)
	if err != nil {
		return 0, 0, err
	}
	return rho2, delta, nil
}
