package pg

import (
	"bytes"
	"reflect"
	"testing"

	"pgpub/internal/sal"
)

// TestColumnarPublishedEquivalence pins the row/columnar duality of
// Published itself: a publication whose rows were dropped and rebuilt from
// its columns must be observationally identical — same CSV bytes, same
// Aggregates, same FindCrucial hits — for every Phase-2 algorithm. This is
// the property that lets snapshot v2 ship only columns and lets the serving
// path adopt them without materialising []Row.
func TestColumnarPublishedEquivalence(t *testing.T) {
	d, err := sal.Generate(4000, 51)
	if err != nil {
		t.Fatal(err)
	}
	hiers := sal.Hierarchies(d.Schema)
	for _, alg := range []Algorithm{KD, TDS, FullDomain} {
		rowPub, err := Publish(d, hiers, Config{K: 6, P: 0.3, Seed: 13, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		meta := *rowPub
		meta.Rows = nil
		colPub, err := FromColumns(meta, rowPub.Columns())
		if err != nil {
			t.Fatalf("%v: FromColumns: %v", alg, err)
		}
		if err := colPub.Validate(); err != nil {
			t.Fatalf("%v: columnar twin invalid: %v", alg, err)
		}

		var rowCSV, colCSV bytes.Buffer
		if err := rowPub.WriteCSV(&rowCSV); err != nil {
			t.Fatal(err)
		}
		if err := colPub.WriteCSV(&colCSV); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rowCSV.Bytes(), colCSV.Bytes()) {
			t.Fatalf("%v: CSV bytes differ between row and columnar paths", alg)
		}

		if !reflect.DeepEqual(rowPub.Aggregates(), colPub.Aggregates()) {
			t.Fatalf("%v: Aggregates differ between row and columnar paths", alg)
		}

		// FindCrucial must agree on hits and misses alike; probe with every
		// source row's QI vector plus one vector outside every box.
		for i := 0; i < d.Len(); i += 97 {
			vq := d.QIVector(i)
			rr, rok := rowPub.FindCrucial(vq)
			cr, cok := colPub.FindCrucial(vq)
			if rok != cok || !reflect.DeepEqual(rr, cr) {
				t.Fatalf("%v: FindCrucial(%v) diverges: row (%v,%v), columnar (%v,%v)",
					alg, vq, rr, rok, cr, cok)
			}
		}
		outside := make([]int32, d.Schema.D())
		for j := range outside {
			outside[j] = -1
		}
		if _, ok := colPub.FindCrucial(outside); ok {
			t.Fatalf("%v: FindCrucial matched a vector outside the domain", alg)
		}

		// EnsureRows materialises rows identical to the originals.
		if !reflect.DeepEqual(colPub.EnsureRows(), rowPub.Rows) {
			t.Fatalf("%v: EnsureRows drifted from the original rows", alg)
		}
	}
}
