package pg

import (
	"fmt"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/par"
)

// releaseSeedStream offsets the per-release seed split away from the small
// stream indices other consumers derive from the same root: Publish itself
// splits streams 0 (Phase 1) and 1 (Phase 3) off its root, and the attack
// fleet splits stream 2 off the experiment seed.
const releaseSeedStream = 0x52455055 // "REPU"

// ReleaseSeed derives release r's pipeline root seed from the chain's root.
// Release 0 publishes under the root itself, so the base release of a chain
// is byte-identical to a plain Publish with cfg.Seed = root; every later
// release draws a disjoint splitmix64 stream. The schedule is stateless —
// seed r depends only on (root, r), never on the deltas between — which is
// what makes a release's bytes a pure function of (base, delta sequence,
// params).
func ReleaseSeed(root int64, release int) int64 {
	if release == 0 {
		return root
	}
	return par.SplitSeed(root, releaseSeedStream+release)
}

// Chain drives a re-publication series r0, r1, ... over evolving microdata:
// it holds the current table, the hierarchies, the next release number, and
// the cached Phase-2 grouping that pure re-perturbation releases reuse.
// Chains are not safe for concurrent use.
type Chain struct {
	table   *dataset.Table
	hiers   []*hierarchy.Hierarchy
	release int

	// cache is the Phase-2 grouping of the current table, valid while the
	// QI content is untouched; cacheK and cacheAlg record the parameters it
	// was computed under.
	cache    *phase2Grouping
	cacheK   int
	cacheAlg Algorithm
}

// NewChain starts a re-publication chain at the base microdata. The first
// Republish call publishes release 0 (pass an empty Delta), which equals
// Publish(d, hiers, cfg) byte for byte.
func NewChain(d *dataset.Table, hiers []*hierarchy.Hierarchy) *Chain {
	return &Chain{table: d, hiers: hiers}
}

// Table returns the chain's current (post-delta) microdata. Read-only:
// mutating it invalidates the chain's determinism contract.
func (c *Chain) Table() *dataset.Table { return c.table }

// NextRelease returns the release number the next Republish call will
// publish (0 on a fresh chain).
func (c *Chain) NextRelease() int { return c.release }

// Republish applies the delta to the chain's microdata and publishes the
// next release under the derived per-release seed schedule. The release's
// bytes are a pure function of (base table, delta sequence, cfg) at any
// worker count: cfg.Seed is the chain root, release r runs the pipeline
// under ReleaseSeed(root, r), and a from-scratch Publish of the post-delta
// table with Seed = ReleaseSeed(root, r) produces the identical result.
//
// The incremental win is Phase 2: its grouping depends only on the QI
// columns, so an empty delta (a pure re-perturbation release) reuses the
// cached grouping and pays only Phases 1 and 3 — observable as
// repub.phase2.reused. A delta that touches rows changes row indices and
// QI content, so the grouping is recomputed (repub.phase2.recomputed);
// anything less would break the byte-identity contract, since the Phase-2
// algorithms are global (one moved median or frequency count can reshape
// groups arbitrarily far from the edited rows).
//
// cfg.Rng must be nil — a shared random source would make the schedule
// stateful and the release bytes dependent on publish order.
func Republish(c *Chain, delta Delta, cfg Config) (*Published, error) {
	if cfg.Rng != nil {
		return nil, fmt.Errorf("pg: Republish requires a Seed, not a shared Rng (the per-release schedule must be stateless)")
	}
	k, err := resolveK(cfg)
	if err != nil {
		return nil, err
	}
	met := cfg.Metrics
	sp := met.Span("repub.publish")
	defer sp.End()

	next, err := ApplyDelta(c.table, delta)
	if err != nil {
		return nil, err
	}
	inserts := 0
	if delta.Inserts != nil {
		inserts = delta.Inserts.Len()
	}
	met.Counter("repub.delta.inserts").Add(int64(inserts))
	met.Counter("repub.delta.deletes").Add(int64(len(delta.Deletes)))

	cached := c.cache
	if !delta.Empty() || cached == nil || c.cacheK != k || c.cacheAlg != cfg.Algorithm || cfg.Class != nil {
		cached = nil
	}

	rcfg := cfg
	rcfg.Seed = ReleaseSeed(cfg.Seed, c.release)
	pub, grp, err := publish(next, c.hiers, rcfg, cached)
	if err != nil {
		return nil, err
	}
	if cached != nil {
		met.Counter("repub.phase2.reused").Inc()
	} else {
		met.Counter("repub.phase2.recomputed").Inc()
	}

	c.table = next
	c.release++
	// Class-steered TDS groupings are not cached: the steering labels are
	// indexed by row and the chain has no way to re-map them across deltas.
	if cfg.Class == nil {
		c.cache, c.cacheK, c.cacheAlg = grp, k, cfg.Algorithm
	} else {
		c.cache = nil
	}
	met.Counter("repub.releases").Inc()
	met.Counter("repub.rows").Add(int64(pub.Len()))
	return pub, nil
}
