package attackfleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/sal"
	"pgpub/internal/serve"
	"pgpub/internal/snapshot"
)

// runShardedFleet runs a small self-served sharded fleet.
func runShardedFleet(t *testing.T, algorithm string, shards, workers int) *Report {
	t.Helper()
	rep, err := Run(Config{
		N: 1200, Seed: 7, K: 5, P: 0.3, Algorithm: algorithm, Shards: shards,
		Victims: 6, Fractions: []float64{0, 0.5, 1}, Workers: workers,
	})
	if err != nil {
		t.Fatalf("sharded fleet %s/S=%d: %v", algorithm, shards, err)
	}
	return rep
}

// TestFleetSharded attacks a sharded release through its coordinator for
// every Phase-2 algorithm: per-shard reconstruction must stay inside the
// Theorem 1–3 bounds (zero violations), the blind probe must agree with the
// aware replay, and the report must not depend on the worker count.
func TestFleetSharded(t *testing.T) {
	for _, algorithm := range []string{"kd", "tds", "full-domain"} {
		t.Run(algorithm, func(t *testing.T) {
			var baseline []byte
			for _, workers := range []int{1, 5} {
				rep := runShardedFleet(t, algorithm, 2, workers)
				if rep.Violations != 0 {
					t.Fatalf("%d bound violations at %d workers", rep.Violations, workers)
				}
				if rep.Shards != 2 {
					t.Fatalf("report says %d shards", rep.Shards)
				}
				for _, m := range rep.Modes {
					if m.Mode == "probe" && m.AgreeWithAware != rep.Victims {
						t.Fatalf("probe agrees on %d/%d victims at %d workers",
							m.AgreeWithAware, rep.Victims, workers)
					}
				}
				js, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				if baseline == nil {
					baseline = js
				} else if !bytes.Equal(baseline, js) {
					t.Fatalf("report at %d workers differs from 1 worker:\n%s\nvs\n%s", workers, js, baseline)
				}
			}
		})
	}
}

// serveShardedRelease publishes a sharded SAL release and stands up the
// full deployment — shard servers plus coordinator — the way the shard-smoke
// CI job does, returning the coordinator's base URL.
func serveShardedRelease(t *testing.T, n, shards int, seed int64, k int, p float64) string {
	t.Helper()
	d, err := sal.Generate(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	pubs, err := pg.PublishSharded(d, sal.Hierarchies(d.Schema), pg.Config{
		K: k, P: p, Algorithm: pg.KD, Seed: seed,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	man := &snapshot.Manifest{
		K: k, P: p, Algorithm: "kd", Seed: seed, SourceRows: n,
		Shards: make([]snapshot.ShardEntry, shards),
	}
	urls := make([]string, shards)
	for s, pub := range pubs {
		man.Shards[s] = snapshot.ShardEntry{
			Path: fmt.Sprintf("inproc-%02d.pgsnap", s), Rows: pub.Len(),
			SourceRows: (n + shards - 1 - s) / shards,
		}
		ix, err := query.NewIndex(pub)
		if err != nil {
			t.Fatal(err)
		}
		meta, err := pub.Metadata(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(serve.Config{Index: ix, Meta: meta, MaxInFlight: 64})
		if err != nil {
			t.Fatal(err)
		}
		hs, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { hs.Close() })
		urls[s] = "http://" + hs.Addr
	}
	coord, err := serve.NewCoordinator(serve.CoordConfig{Manifest: man, ShardURLs: urls})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.Start(ctx); err != nil {
		t.Fatal(err)
	}
	hs, err := coord.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hs.Close() })
	return "http://" + hs.Addr
}

// TestFleetAdoptsShardCount points the fleet at an external coordinator
// with Shards unset: the shard count must be adopted from /v1/metadata, and
// the run must be byte-identical to one with the count given explicitly and
// to a self-served run of the same release.
func TestFleetAdoptsShardCount(t *testing.T) {
	base := serveShardedRelease(t, 1200, 2, 7, 5, 0.3)
	cfg := Config{
		BaseURL: base, N: 1200, Seed: 7,
		Victims: 6, Fractions: []float64{0, 0.5, 1}, Workers: 4,
	}
	adopted, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adopted.Shards != 2 {
		t.Fatalf("adopted %d shards, coordinator serves 2", adopted.Shards)
	}
	cfg.Shards = 2
	explicit, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(adopted)
	je, _ := json.Marshal(explicit)
	if !bytes.Equal(ja, je) {
		t.Fatalf("adopted and explicit runs differ:\n%s\nvs\n%s", ja, je)
	}
	self := runShardedFleet(t, "kd", 2, 4)
	js, _ := json.Marshal(self)
	if !bytes.Equal(ja, js) {
		t.Fatalf("external and self-served runs differ:\n%s\nvs\n%s", ja, js)
	}
}

// TestFleetShardConfigValidation pins the config cross-checks: a shard
// count that contradicts the served release, and soak against a sharded
// release, are both refused.
func TestFleetShardConfigValidation(t *testing.T) {
	base, shutdown := serveSnapshot(t, 1200, 7, 5, 0.3, "kd")
	defer shutdown()
	_, err := Run(Config{
		BaseURL: base, N: 1200, Seed: 7, Shards: 2,
		Victims: 2, Fractions: []float64{0}, Workers: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("sharded config against an unsharded release: %v", err)
	}

	_, err = Run(Config{
		N: 1200, Seed: 7, Shards: 2, Soak: true,
		Victims: 2, Fractions: []float64{0}, Workers: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "soak") {
		t.Fatalf("soak against a sharded release: %v", err)
	}

	_, err = Run(Config{N: 1200, Seed: 7, Shards: -1})
	if err == nil {
		t.Fatal("negative shard count accepted")
	}
}
