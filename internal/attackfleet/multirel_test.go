package attackfleet

import (
	"encoding/json"
	"testing"
)

// TestMultiReleaseBounds runs the chain-retaining adversary on a small chain
// and checks the composed accounting holds: zero violations, a monotone
// composed bound, and per-release h within the Theorem-1 bound.
func TestMultiReleaseBounds(t *testing.T) {
	rep, err := MultiRelease(MultiReleaseConfig{
		N: 1500, Seed: 11, Releases: 3, Churn: 30, Victims: 8,
		Fractions: []float64{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("composed bound violations: %d\n%+v", rep.Violations, rep.Curve)
	}
	if len(rep.Curve) != 3 {
		t.Fatalf("curve has %d points, want 3", len(rep.Curve))
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows has %d entries, want 3", len(rep.Rows))
	}
	prev := 0.0
	for _, pt := range rep.Curve {
		if pt.Bound <= prev {
			t.Errorf("composed bound must grow with T: T=%d bound %v after %v", pt.Releases, pt.Bound, prev)
		}
		prev = pt.Bound
		if pt.MaxH > rep.HBound+1e-9 {
			t.Errorf("T=%d: max h %v exceeds bound %v", pt.Releases, pt.MaxH, rep.HBound)
		}
		if pt.MaxGrowth > pt.Bound+1e-9 {
			t.Errorf("T=%d: max growth %v exceeds composed bound %v", pt.Releases, pt.MaxGrowth, pt.Bound)
		}
		if pt.MaxPosterior < pt.MeanPosterior {
			t.Errorf("T=%d: max posterior %v below mean %v", pt.Releases, pt.MaxPosterior, pt.MeanPosterior)
		}
	}
	// Retaining more releases must not shrink the strongest adversary's
	// composed posterior: evidence only accumulates.
	for i := 1; i < len(rep.Curve); i++ {
		if rep.Curve[i].MaxPosterior+1e-9 < rep.Curve[i-1].MaxPosterior {
			t.Logf("note: max posterior dipped from %v to %v between T=%d and T=%d (possible under churned candidates)",
				rep.Curve[i-1].MaxPosterior, rep.Curve[i].MaxPosterior, i, i+1)
		}
	}
}

// TestMultiReleaseDeterministicAcrossWorkers pins the byte-identity
// contract: the report is identical at any worker count.
func TestMultiReleaseDeterministicAcrossWorkers(t *testing.T) {
	cfg := MultiReleaseConfig{
		N: 1200, Seed: 5, Releases: 2, Churn: 25, Victims: 6,
		Fractions: []float64{0.5},
	}
	cfg.Workers = 1
	a, err := MultiRelease(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 7
	b, err := MultiRelease(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("reports differ across worker counts:\n1: %s\n7: %s", aj, bj)
	}
}
