package attackfleet

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"pgpub/internal/attack"
	"pgpub/internal/par"
	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/sal"
	"pgpub/internal/serve"
)

// serveSnapshot publishes a SAL release and serves it on a loopback port the
// way cmd/pgserve would, for BaseURL-mode tests.
func serveSnapshot(t *testing.T, n int, seed int64, k int, p float64, algorithm string) (base string, shutdown func()) {
	t.Helper()
	d, err := sal.Generate(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := pg.ParseAlgorithm(algorithm)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: k, P: p, Algorithm: alg, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := query.NewIndex(pub)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := pub.Metadata(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Index: ix, Meta: meta, MaxInFlight: 64})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return "http://" + hs.Addr, func() { hs.Close() }
}

// runFleet runs a small self-served fleet and returns the report.
func runFleet(t *testing.T, algorithm string, workers int, soak bool) *Report {
	t.Helper()
	rep, err := Run(Config{
		N: 1500, Seed: 7, K: 5, P: 0.3, Algorithm: algorithm,
		Victims: 8, Fractions: []float64{0, 0.5, 1},
		Workers: workers, Soak: soak, SoakQueries: 24,
	})
	if err != nil {
		t.Fatalf("fleet %s/%d workers: %v", algorithm, workers, err)
	}
	return rep
}

// TestFleetEquivalence is the end-to-end equivalence check: the fleet's
// over-HTTP breach estimates must be byte-identical to the in-process
// internal/attack estimates on the same snapshot, at 1, 4 and 16 workers,
// and the report JSON must not depend on the worker count.
func TestFleetEquivalence(t *testing.T) {
	for _, algorithm := range []string{"kd", "tds", "full-domain"} {
		t.Run(algorithm, func(t *testing.T) {
			var baseline []byte
			for _, workers := range []int{1, 4, 16} {
				rep := runFleet(t, algorithm, workers, false)
				if rep.Violations != 0 {
					t.Fatalf("%d bound violations at %d workers", rep.Violations, workers)
				}
				js, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				if baseline == nil {
					baseline = js
					checkAgainstInProcess(t, rep)
				} else if !bytes.Equal(baseline, js) {
					t.Fatalf("report at %d workers differs from 1 worker:\n%s\nvs\n%s", workers, js, baseline)
				}
			}
		})
	}
}

// checkAgainstInProcess recomputes every (victim, fraction) estimate with
// attack.LinkAttack on a locally republished snapshot and demands bitwise
// equality with the fleet's over-HTTP numbers.
func checkAgainstInProcess(t *testing.T, rep *Report) {
	t.Helper()
	d, err := sal.Generate(rep.N, rep.Seed)
	if err != nil {
		t.Fatal(err)
	}
	hiers := sal.Hierarchies(d.Schema)
	alg, err := pg.ParseAlgorithm(rep.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, hiers, pg.Config{K: rep.K, P: rep.P, Algorithm: alg, Seed: rep.Seed})
	if err != nil {
		t.Fatal(err)
	}
	voterQI := make([][]int32, d.Len())
	for i := range voterQI {
		voterQI[i] = d.QIVector(i)
	}
	ext, err := attack.NewExternal(d, voterQI)
	if err != nil {
		t.Fatal(err)
	}
	domain := d.Schema.SensitiveDomain()
	fleetRoot := par.SplitSeed(rep.Seed, 2)

	agreed := 0
	for slot, det := range rep.details {
		vq := ext.QIOf(det.victim)
		ct, ok := pub.FindCrucial(vq)
		if !ok {
			t.Fatalf("victim %d: no crucial tuple in the local republication", det.victim)
		}
		if ct.Value != det.y {
			t.Fatalf("victim %d: fleet recovered y = %d, publication has %d", det.victim, det.y, ct.Value)
		}
		if ct.G != det.g {
			t.Fatalf("victim %d: aware adversary says G = %d, publication has %d", det.victim, det.g, ct.G)
		}
		if det.agree {
			agreed++
		}
		truth, _ := ext.SensitiveOf(det.victim)
		vRoot := par.SplitSeed(fleetRoot, 2+slot)
		cands := attack.CandidatesIn(ext, ct.Box, det.victim)
		for fi, fo := range det.fracs {
			rng := rand.New(rand.NewSource(par.SplitSeed(vRoot, fi)))
			adv, q, err := planFor(cands, fo.fraction, rep.Lambda, domain, truth, det.y, rng)
			if err != nil {
				t.Fatal(err)
			}
			res, err := attack.LinkAttack(pub, ext, det.victim, adv, q)
			if err != nil {
				t.Fatal(err)
			}
			same := func(name string, got, want float64) {
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("victim %d fraction %v: over-HTTP %s = %v, in-process %v",
						det.victim, fo.fraction, name, got, want)
				}
			}
			same("h", fo.aware.h, res.H)
			same("prior", fo.aware.prior, res.Prior)
			same("posterior", fo.aware.posterior, res.Posterior)
			if det.agree {
				same("probe h", fo.probe.h, res.H)
				same("probe posterior", fo.probe.posterior, res.Posterior)
			}
		}
	}
	if agreed == 0 {
		t.Fatalf("blind probe agreed with the aware adversary on 0 of %d victims", len(rep.details))
	}
}

// TestFleetSoak exercises the soak phases against the self-served snapshot:
// the drain must not drop in-flight queries and the duplicate bursts must
// observe coalesced or cached answers.
func TestFleetSoak(t *testing.T) {
	rep := runFleet(t, "kd", 4, true)
	if rep.Soak == nil {
		t.Fatal("soak enabled but no soak report")
	}
	if rep.Soak.DrainDropped != 0 {
		t.Fatalf("drain dropped %d in-flight queries", rep.Soak.DrainDropped)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d violations", rep.Violations)
	}
	if rep.Soak.CacheHits+rep.Soak.Coalesced == 0 {
		t.Fatal("soak observed neither cache hits nor coalesced answers")
	}
	if rep.Soak.Queries == 0 || rep.Soak.DrainOK == 0 {
		t.Fatalf("soak issued %d queries, drain answered %d", rep.Soak.Queries, rep.Soak.DrainOK)
	}
}

// TestFleetMetadataConflict pins the BaseURL-mode validation: attacking a
// served release with a conflicting attack config must error rather than
// check the wrong guarantee.
func TestFleetMetadataConflict(t *testing.T) {
	// Self-serve a kd snapshot on a loopback port by running a zero-victim…
	// not possible through Run alone, so start one directly.
	base, shutdown := serveSnapshot(t, 1500, 7, 5, 0.3, "kd")
	defer shutdown()

	if _, err := Run(Config{BaseURL: base, N: 1500, Seed: 7, K: 4, Victims: 1}); err == nil {
		t.Fatal("conflicting k accepted")
	}
	if _, err := Run(Config{BaseURL: base, N: 1500, Seed: 7, P: 0.5, Victims: 1}); err == nil {
		t.Fatal("conflicting p accepted")
	}
	if _, err := Run(Config{BaseURL: base, N: 1500, Seed: 7, Algorithm: "tds", Victims: 1}); err == nil {
		t.Fatal("conflicting algorithm accepted")
	}

	// Adopted metadata must work and agree with the self-served run.
	rep, err := Run(Config{
		BaseURL: base, N: 1500, Seed: 7, Victims: 8,
		Fractions: []float64{0, 0.5, 1}, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.K != 5 || rep.P != 0.3 || rep.Algorithm != "kd" {
		t.Fatalf("adopted metadata k=%d p=%v algorithm=%s", rep.K, rep.P, rep.Algorithm)
	}
	selfRep := runFleet(t, "kd", 4, false)
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(selfRep)
	if !bytes.Equal(a, b) {
		t.Fatalf("BaseURL-mode report differs from self-serve:\n%s\nvs\n%s", a, b)
	}
}
