package attackfleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pgpub/internal/par"
	"pgpub/internal/serve"
)

// SoakReport carries the serving soak phases' observations. Every number in
// it is timing-dependent (qps, percentiles, shed/coalesce counts drift with
// scheduling), so determinism checks must strip this block — only
// DrainDropped feeds back into Report.Violations, and it must be zero.
type SoakReport struct {
	// Queries is the total soak requests issued across all phases.
	Queries int `json:"queries"`
	// QPS and the percentiles are measured client-side over the
	// low-locality sweep.
	QPS   float64 `json:"qps"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`
	// Computed/CacheHits/Coalesced tally the Source field of successful
	// answers: the sweep's second pass should hit the cache, the duplicate
	// bursts should coalesce.
	Computed  int `json:"computed"`
	CacheHits int `json:"cache_hits"`
	Coalesced int `json:"coalesced"`
	// Shed counts 429s observed during the over-admission ramp; Timeouts
	// counts 504s anywhere.
	Shed     int `json:"shed"`
	Timeouts int `json:"timeouts"`
	// DrainOK counts requests answered (or cleanly refused) while the
	// server drained; DrainDropped counts in-flight requests the drain
	// killed — any value above zero is a violation.
	DrainOK      int `json:"drain_ok"`
	DrainDropped int `json:"drain_dropped"`
}

// soak runs the serving soak phases against the fleet's target: a
// low-locality sweep (stresses the LRU cache), duplicate bursts (stresses
// singleflight), an over-admission ramp (stresses the limiter) and — when
// the fleet owns the server — a drain under load. It runs after the attack
// so a drain cannot disturb the breach measurements.
func (r *runner) soak(cfg Config, fleetRoot int64, hs *serve.HTTPServer) (*SoakReport, error) {
	rng := rand.New(rand.NewSource(par.SplitSeed(fleetRoot, 1)))
	rep := &SoakReport{}

	bodies, err := r.soakBodies(rng, cfg.SoakQueries)
	if err != nil {
		return nil, err
	}

	// Phase 1: low-locality sweep, two passes — the first misses the result
	// cache on every distinct query, the second should hit it.
	var mu sync.Mutex
	var lats []time.Duration
	start := time.Now()
	for pass := 0; pass < 2; pass++ {
		var next atomic.Int64
		var wg sync.WaitGroup
		var werr atomic.Value
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := make([]time.Duration, 0, len(bodies))
				for {
					i := int(next.Add(1)) - 1
					if i >= len(bodies) {
						break
					}
					t0 := time.Now()
					status, source, err := r.cl.rawPost(r.cl.hc, bodies[i])
					local = append(local, time.Since(t0))
					if err != nil {
						werr.Store(err)
						return
					}
					mu.Lock()
					rep.Queries++
					r.tally(rep, status, source)
					mu.Unlock()
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		if err, _ := werr.Load().(error); err != nil {
			return nil, fmt.Errorf("attackfleet: soak sweep: %w", err)
		}
	}
	elapsed := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return float64(lats[int(q*float64(len(lats)-1))].Nanoseconds()) / 1e3
	}
	if elapsed > 0 {
		rep.QPS = float64(len(lats)) / elapsed.Seconds()
	}
	rep.P50us, rep.P95us, rep.P99us = pct(0.50), pct(0.95), pct(0.99)

	// Phase 2: duplicate bursts — every worker fires the same fresh query at
	// once, repeatedly; concurrent duplicates should coalesce on one
	// computation and later rounds should answer from cache.
	burst, err := r.soakBodies(rng, 4)
	if err != nil {
		return nil, err
	}
	for _, body := range burst {
		var wg sync.WaitGroup
		for w := 0; w < 4*cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				status, source, err := r.cl.rawPost(r.cl.hc, body)
				mu.Lock()
				defer mu.Unlock()
				rep.Queries++
				if err == nil {
					r.tally(rep, status, source)
				}
			}()
		}
		wg.Wait()
	}

	// Phase 3: over-admission ramp — far more concurrent distinct queries
	// than the limiter admits; the excess must shed with 429, never hang.
	ramp, err := r.soakBodies(rng, 8*cfg.Workers)
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	for _, body := range ramp {
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			status, source, err := r.cl.rawPost(r.cl.hc, body)
			mu.Lock()
			defer mu.Unlock()
			rep.Queries++
			if err == nil {
				r.tally(rep, status, source)
			}
		}(body)
	}
	wg.Wait()

	// Phase 4 (self-serve only): drain under load. Workers hammer the server
	// over non-reused connections while a graceful shutdown runs; every
	// request must either be answered, shed, or refused at dial time — a
	// connection killed mid-request is a dropped in-flight query.
	if hs != nil {
		drain, err := r.soakBodies(rng, 16)
		if err != nil {
			return nil, err
		}
		hc := &http.Client{
			Timeout:   30 * time.Second,
			Transport: &http.Transport{DisableKeepAlives: true},
		}
		stop := make(chan struct{})
		var ok64, dropped64, issued64 atomic.Int64
		var dwg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			dwg.Add(1)
			go func(w int) {
				defer dwg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					issued64.Add(1)
					_, _, err := r.cl.rawPost(hc, drain[(w+i)%len(drain)])
					switch {
					case err == nil:
						ok64.Add(1)
					case strings.Contains(err.Error(), "connection refused"):
						// The listener is gone; nothing was in flight.
						ok64.Add(1)
					case !r.serverUp(hc):
						// The connection died because the server was already
						// refusing new work (e.g. a handshake completed in
						// the accept backlog that the closed listener reset)
						// — nothing had been admitted, so nothing in flight
						// was dropped.
						ok64.Add(1)
					default:
						dropped64.Add(1)
					}
				}
			}(w)
		}
		time.Sleep(50 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = hs.Shutdown(ctx)
		cancel()
		close(stop)
		dwg.Wait()
		if err != nil {
			return nil, fmt.Errorf("attackfleet: drain did not complete: %w", err)
		}
		rep.Queries += int(issued64.Load())
		rep.DrainOK = int(ok64.Load())
		rep.DrainDropped = int(dropped64.Load())
		r.sh.met.soakDropped.Add(dropped64.Load())
	}
	return rep, nil
}

// serverUp reports whether the target still accepts requests — the
// drain-phase discriminator between a connection the departing server
// legitimately refused and an admitted request it killed.
func (r *runner) serverUp(hc *http.Client) bool {
	resp, err := hc.Get(r.cl.base + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return true
}

// tally classifies one answered soak request. Callers hold the report lock.
func (r *runner) tally(rep *SoakReport, status int, source string) {
	switch status {
	case http.StatusOK:
		switch source {
		case "cache":
			rep.CacheHits++
		case "coalesced":
			rep.Coalesced++
		default:
			rep.Computed++
		}
	case http.StatusTooManyRequests:
		rep.Shed++
	case http.StatusGatewayTimeout:
		rep.Timeouts++
	}
}

// soakBodies pre-marshals n random point queries cycling through the three
// estimator paths. Random QI points barely repeat, which is exactly the
// low-locality mix that churns an LRU.
func (r *runner) soakBodies(rng *rand.Rand, n int) ([][]byte, error) {
	ops := []string{"naive", "count", "sum"}
	bodies := make([][]byte, n)
	vq := make([]int32, r.schema.D())
	for i := range bodies {
		for j := range vq {
			vq[j] = int32(rng.Intn(r.schema.QI[j].Size()))
		}
		req := serve.QueryRequest{Op: ops[i%len(ops)], Where: pointWhere(vq, -1, 0, 0)}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}
