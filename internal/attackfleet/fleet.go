// Package attackfleet points the paper's threat model at the serving layer:
// a parallel, deterministic fleet of corruption-aided linking adversaries
// (Section V, Equations 13–19) that attacks a *served* PG snapshot through
// /v1/query alone and compares every measured breach probability against the
// Theorem 1–3 bounds. Two adversaries run side by side for every victim:
//
//	aware  knows the Phase-2 algorithm (transparent anonymization) and
//	       reconstructs the whole partition — by replaying the algorithm on
//	       ℰ (kd, full-domain) or by recovering the published cuts over
//	       HTTP (tds) — then reads the crucial tuple off the reconstruction.
//	probe  knows nothing about Phase 2 and reconstructs the victim's crucial
//	       box blind, by galloping box-membership fingerprints along every
//	       dimension.
//
// Both feed the same per-victim estimator the in-process attack uses
// (attack.Posterior), so over-HTTP and in-process breach estimates agree bit
// for bit. The fleet's query mix deliberately stresses the serving layer —
// low-locality point probes, duplicate bursts, admission ramps, and an
// optional drain-under-load — making the run double as the serving soak
// test (see soak.go).
package attackfleet

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"pgpub/internal/attack"
	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/obs"
	"pgpub/internal/par"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
	"pgpub/internal/query"
	"pgpub/internal/sal"
	"pgpub/internal/serve"
	"pgpub/internal/snapshot"
)

// Config parameterizes a fleet run.
type Config struct {
	// BaseURL points the fleet at an already-running pgserve endpoint. The
	// served snapshot must have been published from sal.Generate(N, Seed)
	// microdata — the fleet regenerates ℰ locally from those parameters and
	// validates P/K/Algorithm against /v1/metadata. Empty means self-serve:
	// publish the snapshot in-process and serve it on a loopback port.
	BaseURL string
	// N is the SAL microdata cardinality (default 20000).
	N int
	// Seed drives every random choice: the publication (self-serve), the
	// victim sample, the per-victim adversary plans and the soak traffic.
	// Fleet streams are split from par.SplitSeed(Seed, 2) — pg.Publish owns
	// shards 0 and 1 of the same root — so fleet and publication randomness
	// never collide.
	Seed int64
	// K, P, Algorithm describe the publication. Self-serve defaults:
	// K=6, P=0.3, Algorithm="kd". In BaseURL mode zero values are adopted
	// from the served metadata and non-zero values must match it.
	K         int
	P         float64
	Algorithm string
	// Shards attacks a sharded release through its coordinator. The shard
	// assignment is public (round-robin, pg.ShardOf), so the adversary runs
	// one reconstruction per shard over that shard's owners, pinning every
	// query to the victim's shard — a merged answer would sum box weights
	// across shards and smear the fingerprints. Zero means unsharded. In
	// BaseURL mode zero adopts the served shard count (a coordinator
	// announces it in /v1/metadata) and a non-zero value must match it;
	// self-serve spins up Shards in-process shard servers plus a
	// coordinator.
	Shards int
	// Victims is the number of attacked owners (default 48, capped at |ℰ|).
	Victims int
	// Fractions lists the corruption fractions of the breach curve
	// (default 0, 0.25, 0.5, 0.75, 1).
	Fractions []float64
	// Workers is the fleet's client-side parallelism. The report is
	// byte-identical for every value (soak timings excepted).
	Workers int
	// Lambda bounds the adversary prior's skew (default 0.1); Rho1 is the
	// prior-confidence threshold conditioning the Theorem-2 check (default
	// Lambda, mirroring the Monte-Carlo harness).
	Lambda float64
	Rho1   float64
	// Soak enables the serving soak phases after the attack completes.
	Soak bool
	// SoakQueries sizes the low-locality sweep (default 256).
	SoakQueries int
	// Metrics optionally receives the fleet.* instrumentation.
	Metrics *obs.Registry
}

// CurvePoint is one corruption fraction of a breach curve, aggregated over
// the victim sample.
type CurvePoint struct {
	Fraction      float64 `json:"fraction"`
	MaxH          float64 `json:"max_h"`
	MaxPosterior  float64 `json:"max_posterior"`
	MeanPosterior float64 `json:"mean_posterior"`
	MaxGrowth     float64 `json:"max_growth"`
	Violations    int     `json:"violations"`
}

// ModeReport is one adversary mode's breach curve.
type ModeReport struct {
	Mode  string       `json:"mode"`
	Curve []CurvePoint `json:"curve"`
	// RecoveredCutNodes counts the cut nodes recovered over HTTP (aware mode
	// against tds only).
	RecoveredCutNodes int `json:"recovered_cut_nodes,omitempty"`
	// ProbeFallbacks counts gallop probes that fell back to a linear edge
	// scan (probe mode only).
	ProbeFallbacks int64 `json:"probe_fallbacks,omitempty"`
	// AgreeWithAware counts victims whose blind-probed crucial tuple matched
	// the aware reconstruction exactly (probe mode only). Disagreement is
	// not an error: observationally-equivalent box merges weaken the blind
	// adversary but keep its estimate a valid posterior under the bounds.
	AgreeWithAware int `json:"agree_with_aware,omitempty"`
}

// Report is the `fleet` block emitted into BENCH_pg.json. Everything outside
// Soak is byte-identical across runs and worker counts for a fixed Config.
type Report struct {
	N          int          `json:"n"`
	Rows       int          `json:"rows"`
	Groups     int          `json:"groups"`
	K          int          `json:"k"`
	P          float64      `json:"p"`
	Algorithm  string       `json:"algorithm"`
	Seed       int64        `json:"seed"`
	Shards     int          `json:"shards,omitempty"`
	Victims    int          `json:"victims"`
	Lambda     float64      `json:"lambda"`
	Rho1       float64      `json:"rho1"`
	HBound     float64      `json:"h_bound"`
	Rho2Bound  float64      `json:"rho2_bound"`
	DeltaBound float64      `json:"delta_bound"`
	Queries    int64        `json:"queries"`
	Modes      []ModeReport `json:"modes"`
	Violations int          `json:"violations"`
	Soak       *SoakReport  `json:"soak,omitempty"`

	// details holds the per-victim outcomes for the in-process equivalence
	// tests.
	details []victimDetail
}

// outcome is one (victim, fraction, mode) breach estimate.
type outcome struct {
	h, prior, posterior, growth float64
}

type fracOutcome struct {
	fraction     float64
	aware, probe outcome
}

type victimDetail struct {
	victim int
	y      int32
	g      int // aware group size
	agree  bool
	fracs  []fracOutcome
}

// fleetShared is the run-wide state every runner feeds: the deterministic
// tallies the report carries and the fleet.* instrumentation.
type fleetShared struct {
	probeFallbacks atomic.Int64
	cutNodes       atomic.Int64

	met struct {
		victims        *obs.Counter
		violations     *obs.Counter
		probeFallbacks *obs.Counter
		cutNodes       *obs.Counter
		soakDropped    *obs.Counter
	}
}

// runner is the per-victim attack machinery for one target: the whole
// release when unsharded, or one shard of it (pinned client, that shard's
// owners and partition model) against a coordinator. All fields are
// read-only during the fan-out except the shared atomics.
type runner struct {
	cl     *client
	ext    *attack.External
	schema *dataset.Schema
	hiers  []*hierarchy.Hierarchy
	domain int
	p      float64
	// owners lists the global IDs whose tuples this runner's target serves,
	// ascending — every candidate scan is restricted to it, because no other
	// identity can appear in a box the target answers for.
	owners []int
	// model is the aware adversary's reconstruction of the target's Phase-2
	// partition, with global IDs.
	model *groupModel

	sh *fleetShared
}

// Run executes the fleet and aggregates the breach curves. A bound violation
// is reported (Report.Violations > 0), not returned as an error — the caller
// decides how loudly to fail; errors mean the attack itself could not run
// (unreachable server, inconsistent answers, metadata conflicts).
func Run(cfg Config) (*Report, error) {
	if cfg.N <= 0 {
		cfg.N = 20000
	}
	if cfg.Victims <= 0 {
		cfg.Victims = 48
	}
	if len(cfg.Fractions) == 0 {
		cfg.Fractions = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	for _, f := range cfg.Fractions {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("attackfleet: corruption fraction %v outside [0,1]", f)
		}
	}
	cfg.Workers = par.N(cfg.Workers)
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("attackfleet: shard count %d must be non-negative", cfg.Shards)
	}
	if cfg.Soak && cfg.Shards > 0 {
		return nil, fmt.Errorf("attackfleet: the soak phases drive a single-snapshot server; run them with Shards = 0")
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 0.1
	}
	if cfg.Rho1 <= 0 {
		cfg.Rho1 = cfg.Lambda
	}
	if cfg.SoakQueries <= 0 {
		cfg.SoakQueries = 256
	}
	selfServe := cfg.BaseURL == ""
	if selfServe {
		if cfg.K <= 0 {
			cfg.K = 6
		}
		if cfg.P <= 0 {
			cfg.P = 0.3
		}
		if cfg.Algorithm == "" {
			cfg.Algorithm = pg.KD.String()
		}
	}

	// ℰ: the adversary regenerates the public voter list locally.
	d, err := sal.Generate(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	hiers := sal.Hierarchies(d.Schema)
	voterQI := make([][]int32, d.Len())
	for i := range voterQI {
		voterQI[i] = d.QIVector(i)
	}
	ext, err := attack.NewExternal(d, voterQI)
	if err != nil {
		return nil, err
	}

	// Target: self-serve a fresh publication (one server, or a shard fleet
	// plus coordinator) or attach to BaseURL.
	var hs *serve.HTTPServer
	base := strings.TrimSuffix(cfg.BaseURL, "/")
	if selfServe && cfg.Shards > 0 {
		b, cleanup, err := selfServeSharded(d, hiers, cfg)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		base = b
	} else if selfServe {
		alg, err := pg.ParseAlgorithm(cfg.Algorithm)
		if err != nil {
			return nil, err
		}
		pub, err := pg.Publish(d, hiers, pg.Config{
			K: cfg.K, P: cfg.P, Algorithm: alg, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		hs, err = servePub(pub, cfg)
		if err != nil {
			return nil, err
		}
		defer hs.Close()
		base = "http://" + hs.Addr
	}

	cl := newClient(base, cfg.Workers, cfg.Metrics)
	md, err := cl.metadata()
	if err != nil {
		return nil, err
	}
	// The bounds below certify the guarantee the *served* release carries;
	// computing them for a different (p, k, algorithm) would check the wrong
	// theorem. Adopt unset values, reject conflicting ones.
	if cfg.K == 0 {
		cfg.K = md.K
	}
	if cfg.P == 0 {
		cfg.P = md.P
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = md.Algorithm
	}
	if cfg.K != md.K || cfg.P != md.P || cfg.Algorithm != md.Algorithm {
		return nil, fmt.Errorf(
			"attackfleet: config wants algorithm=%s p=%v k=%d but the served release is algorithm=%s p=%v k=%d",
			cfg.Algorithm, cfg.P, cfg.K, md.Algorithm, md.P, md.K)
	}
	// A coordinator announces its shard count; a plain server announces none.
	// The per-shard reconstruction and query pinning only make sense against
	// the former, so the two must agree.
	if cfg.Shards == 0 {
		cfg.Shards = md.Shards
	}
	if cfg.Shards != md.Shards {
		return nil, fmt.Errorf(
			"attackfleet: config wants %d shards but the served release reports %d", cfg.Shards, md.Shards)
	}
	if cfg.Soak && cfg.Shards > 0 {
		return nil, fmt.Errorf("attackfleet: the soak phases drive a single-snapshot server, not a coordinator")
	}
	if _, err := pg.ParseAlgorithm(cfg.Algorithm); err != nil {
		return nil, err
	}
	if cfg.P <= 0 {
		return nil, fmt.Errorf("attackfleet: retention probability %v must be positive (COUNT inversion)", cfg.P)
	}

	domain := d.Schema.SensitiveDomain()
	rep := &Report{
		N: cfg.N, Rows: md.Rows, Groups: md.Groups, K: cfg.K, P: cfg.P,
		Algorithm: cfg.Algorithm, Seed: cfg.Seed, Shards: cfg.Shards,
		Lambda: cfg.Lambda, Rho1: cfg.Rho1,
	}
	rep.HBound = privacy.HTop(cfg.P, cfg.Lambda, cfg.K, domain)
	if rep.Rho2Bound, err = privacy.MinRho2(cfg.P, cfg.Lambda, cfg.Rho1, cfg.K, domain); err != nil {
		return nil, err
	}
	if rep.DeltaBound, err = privacy.MinDelta(cfg.P, cfg.Lambda, cfg.K, domain); err != nil {
		return nil, err
	}

	sh := &fleetShared{}
	sh.met.victims = cfg.Metrics.Counter("fleet.victims")
	sh.met.violations = cfg.Metrics.Counter("fleet.violations")
	sh.met.probeFallbacks = cfg.Metrics.Counter("fleet.probe.fallbacks")
	sh.met.cutNodes = cfg.Metrics.Counter("fleet.cut.nodes")
	sh.met.soakDropped = cfg.Metrics.Counter("fleet.soak.dropped")

	// One runner per target. Unsharded: a single runner over all of ℰ.
	// Sharded: one per shard, with a pinned client and the round-robin owner
	// subset {id : pg.ShardOf(id, S) == s} — the same partition the publisher
	// applied, which the adversary knows (the assignment is public).
	newRunner := func(cl *client, owners []int) *runner {
		return &runner{
			cl: cl, ext: ext, schema: d.Schema, hiers: hiers,
			domain: domain, p: cfg.P, owners: owners, sh: sh,
		}
	}
	var runners []*runner
	if cfg.Shards == 0 {
		all := make([]int, ext.Len())
		for id := range all {
			all[id] = id
		}
		runners = []*runner{newRunner(cl, all)}
	} else {
		runners = make([]*runner, cfg.Shards)
		for s := 0; s < cfg.Shards; s++ {
			var owners []int
			for id := s; id < ext.Len(); id += cfg.Shards {
				owners = append(owners, id)
			}
			if len(owners) == 0 {
				return nil, fmt.Errorf("attackfleet: shard %d of %d holds no owners at n = %d", s, cfg.Shards, ext.Len())
			}
			runners[s] = newRunner(cl.forShard(s), owners)
		}
	}

	// Aware adversary: reconstruct each target's whole partition once, up
	// front. The tds cut recovery queries serially, so its stream is
	// deterministic.
	for s, r := range runners {
		if cfg.Algorithm == pg.TDS.String() {
			rec, err := r.recoverCuts()
			if err != nil {
				return nil, fmt.Errorf("attackfleet: recovering shard %d cuts: %w", s, err)
			}
			r.model = modelFromRecoding(ext, rec, r.owners)
		} else {
			if r.model, err = replayPhase2(ext, hiers, cfg.Algorithm, cfg.K, cfg.Workers, r.owners); err != nil {
				return nil, err
			}
		}
	}

	// Victim sample: a sorted Seed-determined subset of the owners.
	fleetRoot := par.SplitSeed(cfg.Seed, 2)
	var owners []int
	for id := 0; id < ext.Len(); id++ {
		if !ext.IsExtraneous(id) {
			owners = append(owners, id)
		}
	}
	if len(owners) == 0 {
		return nil, fmt.Errorf("attackfleet: no microdata owners to attack")
	}
	if cfg.Victims > len(owners) {
		cfg.Victims = len(owners)
	}
	rep.Victims = cfg.Victims
	vrng := rand.New(rand.NewSource(par.SplitSeed(fleetRoot, 0)))
	picks := vrng.Perm(len(owners))[:cfg.Victims]
	sort.Ints(picks)
	victims := make([]int, cfg.Victims)
	for i, pi := range picks {
		victims[i] = owners[pi]
	}

	// The fan-out: one independent adversary per victim, results written to
	// a dedicated slot so aggregation order never depends on scheduling.
	details := make([]victimDetail, cfg.Victims)
	err = par.ForEachErr(cfg.Workers, cfg.Victims, func(i int) error {
		r := runners[0]
		if cfg.Shards > 0 {
			r = runners[pg.ShardOf(victims[i], cfg.Shards)]
		}
		det, err := r.attackVictim(victims[i], i, fleetRoot, cfg)
		if err != nil {
			return fmt.Errorf("victim %d: %w", victims[i], err)
		}
		details[i] = det
		return nil
	})
	if err != nil {
		return nil, err
	}
	sh.met.victims.Add(int64(cfg.Victims))

	rep.details = details
	rep.aggregate(details, cfg.Fractions, sh)
	rep.Queries = cl.queries.Load()
	sh.met.violations.Add(int64(rep.Violations))

	if cfg.Soak {
		soak, err := runners[0].soak(cfg, fleetRoot, hs)
		if err != nil {
			return nil, err
		}
		rep.Soak = soak
		rep.Violations += soak.DrainDropped
	}
	return rep, nil
}

// servePub builds the serving stack for one in-process publication and
// exposes it on a loopback port — one shard of a sharded self-serve, or the
// whole release of an unsharded one.
func servePub(pub *pg.Published, cfg Config) (*serve.HTTPServer, error) {
	ix, err := query.NewIndex(pub)
	if err != nil {
		return nil, err
	}
	meta, err := pub.Metadata(cfg.Lambda, cfg.Rho1)
	if err != nil {
		return nil, err
	}
	inFlight := 2 * cfg.Workers
	if inFlight < 8 {
		inFlight = 8
	}
	srv, err := serve.New(serve.Config{
		Index: ix, Meta: meta,
		MaxInFlight: inFlight,
		Workers:     cfg.Workers,
		Metrics:     cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return srv.Serve("127.0.0.1:0")
}

// selfServeSharded publishes the microdata in cfg.Shards deterministic
// shards, serves each on its own loopback server, and fronts them with an
// in-process coordinator validated against an in-memory manifest — the
// loopback twin of pgpublish -shards + pgserve -coordinator. It returns the
// coordinator's base URL and a cleanup closing all the servers.
func selfServeSharded(d *dataset.Table, hiers []*hierarchy.Hierarchy, cfg Config) (string, func(), error) {
	var servers []*serve.HTTPServer
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	alg, err := pg.ParseAlgorithm(cfg.Algorithm)
	if err != nil {
		return "", cleanup, err
	}
	pubs, err := pg.PublishSharded(d, hiers, pg.Config{
		K: cfg.K, P: cfg.P, Algorithm: alg, Seed: cfg.Seed, Workers: cfg.Workers,
	}, cfg.Shards)
	if err != nil {
		return "", cleanup, err
	}
	man := &snapshot.Manifest{
		K: cfg.K, P: cfg.P, Algorithm: alg.String(), Seed: cfg.Seed, SourceRows: d.Len(),
	}
	urls := make([]string, len(pubs))
	for s, pub := range pubs {
		hs, err := servePub(pub, cfg)
		if err != nil {
			return "", cleanup, err
		}
		servers = append(servers, hs)
		urls[s] = "http://" + hs.Addr
		// The snapshots never touch disk, so the path is a label and the CRC
		// is unchecked (the coordinator validates shards over HTTP, not from
		// files).
		man.Shards = append(man.Shards, snapshot.ShardEntry{
			Path:       fmt.Sprintf("inproc-%02d.pgsnap", s),
			Rows:       pub.Len(),
			SourceRows: (d.Len() + len(pubs) - 1 - s) / len(pubs),
		})
	}
	coord, err := serve.NewCoordinator(serve.CoordConfig{
		Manifest: man, ShardURLs: urls, Metrics: cfg.Metrics,
	})
	if err != nil {
		return "", cleanup, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = coord.Start(ctx)
	cancel()
	if err != nil {
		return "", cleanup, err
	}
	hs, err := coord.Serve("127.0.0.1:0")
	if err != nil {
		return "", cleanup, err
	}
	servers = append(servers, hs)
	return "http://" + hs.Addr, cleanup, nil
}

// attackVictim runs both adversary modes against one victim and computes its
// breach curve points.
func (r *runner) attackVictim(victim, slot int, fleetRoot int64, cfg Config) (victimDetail, error) {
	var det victimDetail
	det.victim = victim
	vq := r.ext.QIOf(victim)

	// A1 over HTTP: the crucial observation, cross-checked through the
	// COUNT, NAIVE and SUM estimator paths.
	fp, y, err := r.recoverY(vq)
	if err != nil {
		return det, err
	}
	det.y = y

	// Aware mode reads the crucial tuple off the reconstructed partition;
	// the served box weight must agree with the reconstruction's G.
	awareBox, gAware, candAware := r.model.crucialOf(victim)
	uAware := float64(gAware)
	for j := range awareBox.Lo {
		uAware /= float64(awareBox.Hi[j]-awareBox.Lo[j]) + 1
	}
	if math.Abs(fp.naive-uAware) > 1e-9*fp.naive {
		return det, fmt.Errorf(
			"served box weight %v disagrees with the reconstructed partition's %v", fp.naive, uAware)
	}
	det.g = gAware

	// Probe mode reconstructs the box blind from membership fingerprints.
	probeBox, err := r.probeBox(vq, fp)
	if err != nil {
		return det, err
	}
	gProbe, candProbe, err := r.groupFromBox(vq, probeBox, fp.naive, victim)
	if err != nil {
		return det, err
	}
	det.agree = probeBox.Equal(awareBox) && gProbe == gAware && equalInts(candProbe, candAware)

	truth, ok := r.ext.SensitiveOf(victim)
	if !ok {
		return det, fmt.Errorf("victim is not a microdata owner")
	}

	vRoot := par.SplitSeed(fleetRoot, 2+slot)
	det.fracs = make([]fracOutcome, len(cfg.Fractions))
	for fi, frac := range cfg.Fractions {
		rng := rand.New(rand.NewSource(par.SplitSeed(vRoot, fi)))
		adv, q, err := planFor(candAware, frac, cfg.Lambda, r.domain, truth, y, rng)
		if err != nil {
			return det, err
		}
		resAware, err := attack.Posterior(r.ext, victim, adv, q, r.p,
			attack.Crucial{Y: y, G: gAware, Candidates: candAware})
		if err != nil {
			return det, err
		}
		resProbe, err := attack.Posterior(r.ext, victim, adv, q, r.p,
			attack.Crucial{Y: y, G: gProbe, Candidates: candProbe})
		if err != nil {
			return det, err
		}
		det.fracs[fi] = fracOutcome{
			fraction: frac,
			aware:    outcomeOf(resAware),
			probe:    outcomeOf(resProbe),
		}
	}
	return det, nil
}

func outcomeOf(res *attack.Result) outcome {
	return outcome{h: res.H, prior: res.Prior, posterior: res.Posterior, growth: res.Posterior - res.Prior}
}

// planFor draws one adversary plan: a corruption set over the candidate set,
// a prior whose skew stays within lambda (honest: never excluding the
// truth), and a predicate containing the observed y — the same construction
// the Monte-Carlo harness stresses the bounds with. Corrupting individuals
// outside the candidate set cannot change the posterior, so the draw is
// restricted to 𝒪.
func planFor(candidates []int, frac, lambda float64, domain int, truth, y int32, rng *rand.Rand) (attack.Adversary, privacy.Predicate, error) {
	adv := attack.Adversary{
		Background: privacy.Uniform(domain),
		Corrupted:  map[int]bool{},
	}
	for _, id := range candidates {
		if rng.Float64() < frac {
			adv.Corrupted[id] = true
		}
	}
	if lambda > 1/float64(domain) {
		keep := int(1/lambda + 0.999999)
		if keep < 1 {
			keep = 1
		}
		if keep < domain {
			var excluded []int32
			for x := int32(0); len(excluded) < domain-keep && int(x) < domain; x++ {
				if x != truth {
					excluded = append(excluded, x)
				}
			}
			bg, err := privacy.Excluding(domain, excluded...)
			if err != nil {
				return adv, nil, err
			}
			adv.Background = bg
		}
	}
	values := []int32{y}
	for x := int32(0); int(x) < domain; x++ {
		if x != y && rng.Float64() < 0.2 {
			values = append(values, x)
		}
	}
	q, err := privacy.PredicateOf(domain, values...)
	return adv, q, err
}

// aggregate folds the per-victim outcomes into per-mode curves and checks
// every estimate against the Theorem 1–3 bounds: h against Inequality 20,
// posterior against the Theorem-2 bound whenever the prior confidence is
// within rho1, and posterior growth against the Theorem-3 bound.
func (rep *Report) aggregate(details []victimDetail, fractions []float64, sh *fleetShared) {
	pick := func(f fracOutcome, mode string) outcome {
		if mode == "aware" {
			return f.aware
		}
		return f.probe
	}
	for _, mode := range []string{"aware", "probe"} {
		mr := ModeReport{Mode: mode, Curve: make([]CurvePoint, len(fractions))}
		for fi, frac := range fractions {
			pt := CurvePoint{Fraction: frac}
			var sum float64
			for _, det := range details {
				o := pick(det.fracs[fi], mode)
				sum += o.posterior
				if o.h > pt.MaxH {
					pt.MaxH = o.h
				}
				if o.growth > pt.MaxGrowth {
					pt.MaxGrowth = o.growth
				}
				if o.h > rep.HBound+1e-9 {
					pt.Violations++
				}
				if o.growth > rep.DeltaBound+1e-9 {
					pt.Violations++
				}
				if o.prior <= rep.Rho1+1e-12 {
					if o.posterior > pt.MaxPosterior {
						pt.MaxPosterior = o.posterior
					}
					if o.posterior > rep.Rho2Bound+1e-9 {
						pt.Violations++
					}
				}
			}
			if len(details) > 0 {
				pt.MeanPosterior = sum / float64(len(details))
			}
			rep.Violations += pt.Violations
			mr.Curve[fi] = pt
		}
		switch mode {
		case "aware":
			mr.RecoveredCutNodes = int(sh.cutNodes.Load())
		case "probe":
			mr.ProbeFallbacks = sh.probeFallbacks.Load()
			for _, det := range details {
				if det.agree {
					mr.AgreeWithAware++
				}
			}
		}
		rep.Modes = append(rep.Modes, mr)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
