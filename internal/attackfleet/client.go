package attackfleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"pgpub/internal/obs"
	"pgpub/internal/serve"
)

// client is the fleet's view of a pgserve endpoint: every adversary
// observation flows through /v1/query here. It retries load-shedding (429)
// and deadline (504) responses with backoff — a real adversary is patient —
// while counting *logical* queries separately from retries, so the query
// count in the report is deterministic even when the limiter sheds some of
// the fleet's own traffic.
// Against a sharded release the fleet talks to the coordinator, and forShard
// derives per-shard views that pin every query to one shard — the adversary
// knows the public round-robin assignment, and a merged answer (summed over
// shards) would smear the per-box fingerprints the reconstruction reads.
type client struct {
	base  string
	hc    *http.Client
	shard *int // pin queries to this coordinator shard (nil = unpinned)

	// Pointers so forShard copies share the totals.
	queries *atomic.Int64 // logical queries answered (retries excluded)
	retries *atomic.Int64
	// release is the X-PG-Release value of the first answer (shared across
	// forShard copies). A reconstruction stitches many answers together; if
	// the server hot-swaps mid-session the observations span two releases and
	// the stitched fingerprints are garbage, so the client fails loudly
	// instead.
	release *atomic.Pointer[string]

	met struct {
		queries *obs.Counter
		retries *obs.Counter
		latency *obs.Histogram
	}
}

// queryAttempts bounds the shed/timeout retries of one logical query. With
// exponential backoff from 2ms capped at 250ms this rides out several
// seconds of saturation before giving up.
const queryAttempts = 12

func newClient(base string, workers int, reg *obs.Registry) *client {
	c := &client{
		base: base,
		hc: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        2 * workers,
				MaxIdleConnsPerHost: 2 * workers,
			},
		},
		queries: &atomic.Int64{},
		retries: &atomic.Int64{},
		release: &atomic.Pointer[string]{},
	}
	c.met.queries = reg.Counter("fleet.queries")
	c.met.retries = reg.Counter("fleet.retries")
	c.met.latency = reg.Histogram("fleet.latency.query", "ns")
	return c
}

// metadata fetches the release metadata the server announces.
func (c *client) metadata() (serve.MetadataResponse, error) {
	var md serve.MetadataResponse
	resp, err := c.hc.Get(c.base + "/v1/metadata")
	if err != nil {
		return md, fmt.Errorf("attackfleet: fetching metadata: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return md, fmt.Errorf("attackfleet: metadata request returned %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&md); err != nil {
		return md, fmt.Errorf("attackfleet: decoding metadata: %w", err)
	}
	return md, nil
}

// forShard returns a view of the client that pins every query to coordinator
// shard s. The copy shares the connection pool and counters.
func (c *client) forShard(s int) *client {
	cc := *c
	cc.shard = &s
	return &cc
}

// query answers one aggregate query, retrying shed and timed-out attempts.
// Queries are idempotent reads, so re-POSTing after a transport error is
// safe.
func (c *client) query(req serve.QueryRequest) (float64, error) {
	if c.shard != nil {
		req.Shard = c.shard
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, fmt.Errorf("attackfleet: encoding query: %w", err)
	}
	c.queries.Add(1)
	c.met.queries.Inc()
	backoff := 2 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < queryAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			c.met.retries.Inc()
			time.Sleep(backoff)
			if backoff *= 2; backoff > 250*time.Millisecond {
				backoff = 250 * time.Millisecond
			}
		}
		t0 := time.Now()
		resp, err := c.hc.Post(c.base+"/v1/query", "application/json", bytes.NewReader(body))
		c.met.latency.Observe(time.Since(t0).Nanoseconds())
		if err != nil {
			lastErr = err
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var qr serve.QueryResponse
			derr := json.NewDecoder(resp.Body).Decode(&qr)
			resp.Body.Close()
			if derr != nil {
				return 0, fmt.Errorf("attackfleet: decoding answer: %w", derr)
			}
			if err := c.checkRelease(resp.Header.Get("X-PG-Release")); err != nil {
				return 0, err
			}
			return qr.Estimate, nil
		case http.StatusTooManyRequests, http.StatusGatewayTimeout:
			lastErr = fmt.Errorf("server returned %d", resp.StatusCode)
			drain(resp)
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return 0, fmt.Errorf("attackfleet: query rejected (%d): %s", resp.StatusCode, bytes.TrimSpace(msg))
		}
	}
	return 0, fmt.Errorf("attackfleet: query failed after %d attempts: %w", queryAttempts, lastErr)
}

// checkRelease compares an answer's X-PG-Release header against the first
// one this session observed. A change means the server hot-swapped while the
// attack was collecting observations — they no longer describe one release.
// Servers without a release identity (CSV-backed, CRC unknown) send no
// header; those sessions are unchecked.
func (c *client) checkRelease(rel string) error {
	if rel == "" {
		return nil
	}
	if !c.release.CompareAndSwap(nil, &rel) {
		if first := *c.release.Load(); first != rel {
			return fmt.Errorf("attackfleet: the server hot-swapped mid-session (release %s, session started on %s); observations span two releases — restart the attack", rel, first)
		}
	}
	return nil
}

// rawPost issues one request with no retry and classifies the outcome — the
// soak phases use it to observe shedding and drain behavior directly.
func (c *client) rawPost(hc *http.Client, body []byte) (status int, source string, err error) {
	resp, err := hc.Post(c.base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var qr serve.QueryResponse
		if derr := json.NewDecoder(resp.Body).Decode(&qr); derr != nil {
			return resp.StatusCode, "", derr
		}
		return resp.StatusCode, qr.Source, nil
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
	return resp.StatusCode, "", nil
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
	resp.Body.Close()
}

// ---------------------------------------------------------------------------
// Request builders. All bounds are sent as raw JSON numbers (codes), and
// every builder pins all QI dimensions, so answers always come from the
// index's exact kd traversal rather than the grid summed-area path (which
// only serves queries restricting at most two dimensions).

func rawInt(v int32) json.RawMessage { return json.RawMessage(strconv.Itoa(int(v))) }

// pointWhere pins every QI dimension to vq, with dim j overridden to
// [lo, hi] when j >= 0.
func pointWhere(vq []int32, j int, lo, hi int32) []serve.WhereClause {
	where := make([]serve.WhereClause, len(vq))
	for d := range vq {
		dim := d
		l, h := vq[d], vq[d]
		if d == j {
			l, h = lo, hi
		}
		where[d] = serve.WhereClause{Dim: &dim, Lo: rawInt(l), Hi: rawInt(h)}
	}
	return where
}

// naivePoint is the NAIVE box weight at a QI point: Σ G·vf over the covering
// published row, i.e. G/vol(box) — the crucial tuple's fingerprint.
func (c *client) naivePoint(vq []int32) (float64, error) {
	return c.query(serve.QueryRequest{Op: "naive", Where: pointWhere(vq, -1, 0, 0)})
}

// naiveMask is the NAIVE value-masked weight at a QI point.
func (c *client) naiveMask(vq []int32, codes []int32) (float64, error) {
	return c.query(serve.QueryRequest{Op: "naive", Where: pointWhere(vq, -1, 0, 0), Sensitive: codes})
}

// countMask is the PG-inverted COUNT estimate at a QI point under a
// sensitive mask.
func (c *client) countMask(vq []int32, codes []int32) (float64, error) {
	return c.query(serve.QueryRequest{Op: "count", Where: pointWhere(vq, -1, 0, 0), Sensitive: codes})
}

// sumPoint is the perturbation-inverted SUM of the identity sensitive value
// at a QI point.
func (c *client) sumPoint(vq []int32) (float64, error) {
	return c.query(serve.QueryRequest{Op: "sum", Where: pointWhere(vq, -1, 0, 0)})
}

// naiveSegment is the NAIVE weight over the segment dim j ∈ [lo, hi] with
// every other dimension pinned to vq.
func (c *client) naiveSegment(vq []int32, j int, lo, hi int32) (float64, error) {
	return c.query(serve.QueryRequest{Op: "naive", Where: pointWhere(vq, j, lo, hi)})
}

// sumSegment is the SUM counterpart of naiveSegment.
func (c *client) sumSegment(vq []int32, j int, lo, hi int32) (float64, error) {
	return c.query(serve.QueryRequest{Op: "sum", Where: pointWhere(vq, j, lo, hi)})
}
