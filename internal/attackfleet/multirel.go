package attackfleet

import (
	"fmt"
	"math/rand"
	"sort"

	"pgpub/internal/attack"
	"pgpub/internal/dataset"
	"pgpub/internal/obs"
	"pgpub/internal/par"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
	"pgpub/internal/repub"
	"pgpub/internal/sal"
)

// This file is the multi-release adversary: an attacker who retains every
// release of a re-publication chain (pg.Republish over evolving microdata),
// links the victim's crucial tuple in each release through the owner IDs
// that survive deltas, composes the per-release observations with
// repub.ComposePosterior, and checks the composed breach growth of every
// T-release prefix against repub.ComposedGrowthBound — the accounting the
// release-chain blocks (snapshot.ChainMetadata) announce. The run is
// byte-identical across worker counts: every random choice descends from
// per-victim seed splits, and results land in pre-allocated slots.

// multirelSeedStream offsets the multi-release experiment's seed split away
// from the streams other consumers derive from the same root: pg.Publish
// owns 0 and 1, the fleet owns 2.
const multirelSeedStream = 3

// MultiReleaseConfig parameterizes a multi-release attack run.
type MultiReleaseConfig struct {
	// N is the base SAL microdata cardinality (default 8000).
	N int
	// Seed drives the chain (publication randomness, deltas) and the
	// adversary sample; the experiment stream is split from
	// par.SplitSeed(Seed, 3), disjoint from pg.Publish's and the fleet's.
	Seed int64
	// K, P, Algorithm describe every release of the chain (parameters are
	// constant across a chain by contract). Defaults: K=6, P=0.3, kd.
	K         int
	P         float64
	Algorithm string
	// Releases is the chain length T (default 4). Release 0 is the base
	// publish; each later release applies a Churn-row delta first.
	Releases int
	// Churn is the per-release turnover: each delta deletes Churn rows of
	// the current table and inserts Churn fresh ones (default N/50, min 1).
	Churn int
	// Victims is the number of attacked owners, sampled from the
	// individuals alive in every release (default 32).
	Victims int
	// Fractions lists the corruption fractions attacked at every prefix
	// length (default 0, 0.5, 1).
	Fractions []float64
	// Lambda bounds the adversary prior's skew (default 0.1).
	Lambda float64
	// Workers is the fan-out parallelism; the report is byte-identical for
	// every value.
	Workers int
	// Metrics optionally receives the fleet.* instrumentation.
	Metrics *obs.Registry
}

// ReleasePoint aggregates every adversary's composed estimate after the
// first Releases releases (a prefix of the chain), over all victims and
// corruption fractions.
type ReleasePoint struct {
	// Releases is the prefix length T.
	Releases int `json:"releases"`
	// MaxH is the largest per-release ownership probability h observed in
	// release T-1 (the prefix's newest release).
	MaxH float64 `json:"max_h"`
	// MaxPosterior and MeanPosterior summarize the composed posterior
	// confidence about Q after T releases.
	MaxPosterior  float64 `json:"max_posterior"`
	MeanPosterior float64 `json:"mean_posterior"`
	// MaxGrowth is the largest composed posterior-minus-prior growth.
	MaxGrowth float64 `json:"max_growth"`
	// Bound is the composed growth bound Δ_T the chain's release T-1
	// announces (repub.ComposedGrowthBound).
	Bound float64 `json:"composed_bound"`
	// Violations counts composed estimates that exceeded Bound.
	Violations int `json:"violations"`
}

// MultiReleaseReport is the `repub` block emitted into BENCH_pg.json: the
// breach-vs-release-count curve. Everything in it is byte-identical across
// runs and worker counts for a fixed config.
type MultiReleaseReport struct {
	N         int     `json:"n"`
	Releases  int     `json:"releases"`
	Churn     int     `json:"churn"`
	K         int     `json:"k"`
	P         float64 `json:"p"`
	Algorithm string  `json:"algorithm"`
	Seed      int64   `json:"seed"`
	Victims   int     `json:"victims"`
	Lambda    float64 `json:"lambda"`
	// Rows lists each release's published row count |D*_t|.
	Rows []int `json:"rows"`
	// Fractions lists the corruption fractions attacked.
	Fractions []float64 `json:"fractions"`
	// HBound is the per-release ownership bound h⊤ (Inequality 20);
	// OddsRatioBound is the per-release odds-ratio bound R the composed
	// accounting is built from.
	HBound         float64 `json:"h_bound"`
	OddsRatioBound float64 `json:"odds_ratio_bound"`
	// Curve is the breach-vs-release-count curve, one point per prefix.
	Curve []ReleasePoint `json:"curve"`
	// Violations totals the bound violations across the curve.
	Violations int `json:"violations"`
}

// multirelOutcome is one (victim, fraction) adversary's trajectory: the
// per-release h and the composed posterior/growth after every prefix.
type multirelOutcome struct {
	h         []float64 // per-release ownership probability
	posterior []float64 // composed posterior after releases[:t+1]
	growth    []float64 // posterior[t] - prior
}

// MultiRelease publishes a deterministic re-publication chain in-process,
// attacks every release with chain-retaining adversaries, and aggregates
// the composed breach curve. Like Run, a bound violation is reported, not
// returned as an error.
func MultiRelease(cfg MultiReleaseConfig) (*MultiReleaseReport, error) {
	if cfg.N <= 0 {
		cfg.N = 8000
	}
	if cfg.Releases <= 0 {
		cfg.Releases = 4
	}
	if cfg.Churn <= 0 {
		cfg.Churn = cfg.N / 50
		if cfg.Churn < 1 {
			cfg.Churn = 1
		}
	}
	if cfg.Churn >= cfg.N {
		return nil, fmt.Errorf("attackfleet: churn %d must stay below the base cardinality %d", cfg.Churn, cfg.N)
	}
	if cfg.Victims <= 0 {
		cfg.Victims = 32
	}
	if len(cfg.Fractions) == 0 {
		cfg.Fractions = []float64{0, 0.5, 1}
	}
	for _, f := range cfg.Fractions {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("attackfleet: corruption fraction %v outside [0,1]", f)
		}
	}
	if cfg.K <= 0 {
		cfg.K = 6
	}
	if cfg.P <= 0 {
		cfg.P = 0.3
	}
	if cfg.P >= 1 {
		return nil, fmt.Errorf("attackfleet: retention probability %v must stay below 1 (the composed bound diverges)", cfg.P)
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = pg.KD.String()
	}
	alg, err := pg.ParseAlgorithm(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 0.1
	}
	cfg.Workers = par.N(cfg.Workers)

	// The chain: release 0 is the base publish; each later release applies
	// a churn delta drawn from its own seed stream, then republishes under
	// the chain's deterministic per-release seed schedule.
	d, err := sal.Generate(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	hiers := sal.Hierarchies(d.Schema)
	root := par.SplitSeed(cfg.Seed, multirelSeedStream)
	ch := pg.NewChain(d, hiers)
	pcfg := pg.Config{K: cfg.K, P: cfg.P, Algorithm: alg, Seed: cfg.Seed, Workers: cfg.Workers, Metrics: cfg.Metrics}
	releases := make([]*pg.Published, cfg.Releases)
	tables := make([]*dataset.Table, cfg.Releases)
	for t := 0; t < cfg.Releases; t++ {
		var dl pg.Delta
		if t > 0 {
			if dl, err = churnDelta(ch.Table(), cfg.Churn, par.SplitSeed(root, t)); err != nil {
				return nil, err
			}
		}
		if releases[t], err = pg.Republish(ch, dl, pcfg); err != nil {
			return nil, fmt.Errorf("attackfleet: release %d: %w", t, err)
		}
		tables[t] = ch.Table()
	}

	// ℰ per release: one voter list over every individual ever alive (owner
	// IDs are contiguous and survive deltas), with per-release ownership.
	// A deleted owner stays in ℰ — the adversary knows the identity — but
	// is extraneous in later releases.
	exts, err := chainExternals(tables)
	if err != nil {
		return nil, err
	}

	domain := d.Schema.SensitiveDomain()
	rep := &MultiReleaseReport{
		N: cfg.N, Releases: cfg.Releases, Churn: cfg.Churn,
		K: cfg.K, P: cfg.P, Algorithm: cfg.Algorithm, Seed: cfg.Seed,
		Lambda: cfg.Lambda, Fractions: cfg.Fractions,
		HBound:         privacy.HTop(cfg.P, cfg.Lambda, cfg.K, domain),
		OddsRatioBound: repub.OddsRatioBound(cfg.P, cfg.Lambda, cfg.K, domain),
	}
	for _, pub := range releases {
		rep.Rows = append(rep.Rows, pub.Len())
	}

	met := struct{ victims, violations *obs.Counter }{
		victims:    cfg.Metrics.Counter("fleet.victims"),
		violations: cfg.Metrics.Counter("fleet.violations"),
	}

	// Victims: a seed-determined sample of the owners alive in every
	// release — only they can be linked across the whole chain.
	var alive []int
	for id := 0; id < exts[0].Len(); id++ {
		ok := true
		for _, ext := range exts {
			if ext.IsExtraneous(id) {
				ok = false
				break
			}
		}
		if ok {
			alive = append(alive, id)
		}
	}
	if len(alive) == 0 {
		return nil, fmt.Errorf("attackfleet: no owner survives all %d releases", cfg.Releases)
	}
	if cfg.Victims > len(alive) {
		cfg.Victims = len(alive)
	}
	rep.Victims = cfg.Victims
	vrng := rand.New(rand.NewSource(par.SplitSeed(root, 1<<20)))
	picks := vrng.Perm(len(alive))[:cfg.Victims]
	sort.Ints(picks)
	victims := make([]int, cfg.Victims)
	for i, pi := range picks {
		victims[i] = alive[pi]
	}

	// The fan-out: one chain-retaining adversary per (victim, fraction),
	// results written to dedicated slots so aggregation order never depends
	// on scheduling.
	outcomes := make([][]multirelOutcome, cfg.Victims)
	err = par.ForEachErr(cfg.Workers, cfg.Victims, func(i int) error {
		out, err := attackChainVictim(exts, releases, victims[i], i, root, cfg, domain)
		if err != nil {
			return fmt.Errorf("victim %d: %w", victims[i], err)
		}
		outcomes[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	met.victims.Add(int64(cfg.Victims))

	// Aggregate the prefix curve and check every composed estimate against
	// the chain's announced accounting.
	const tol = 1e-9
	for T := 1; T <= cfg.Releases; T++ {
		pt := ReleasePoint{Releases: T}
		if pt.Bound, err = repub.ComposedGrowthBound(T, cfg.P, cfg.Lambda, cfg.K, domain); err != nil {
			return nil, err
		}
		var sum float64
		var count int
		for _, vo := range outcomes {
			for _, o := range vo {
				if h := o.h[T-1]; h > pt.MaxH {
					pt.MaxH = h
				}
				post, growth := o.posterior[T-1], o.growth[T-1]
				sum += post
				count++
				if post > pt.MaxPosterior {
					pt.MaxPosterior = post
				}
				if growth > pt.MaxGrowth {
					pt.MaxGrowth = growth
				}
				if growth > pt.Bound+tol || o.h[T-1] > rep.HBound+tol {
					pt.Violations++
				}
			}
		}
		pt.MeanPosterior = sum / float64(count)
		rep.Violations += pt.Violations
		rep.Curve = append(rep.Curve, pt)
	}
	met.violations.Add(int64(rep.Violations))
	return rep, nil
}

// churnDelta draws a deterministic turnover delta against the current
// table: churn distinct row deletions and churn fresh SAL rows.
func churnDelta(cur *dataset.Table, churn int, seed int64) (pg.Delta, error) {
	rng := rand.New(rand.NewSource(seed))
	if churn >= cur.Len() {
		return pg.Delta{}, fmt.Errorf("attackfleet: churn %d would delete the whole %d-row table", churn, cur.Len())
	}
	perm := rng.Perm(cur.Len())[:churn]
	sort.Ints(perm)
	ins, err := sal.Generate(churn, rng.Int63())
	if err != nil {
		return pg.Delta{}, err
	}
	return pg.Delta{Deletes: perm, Inserts: ins}, nil
}

// chainExternals builds one External per release over the union voter list:
// QI vectors indexed by owner ID for every individual that ever owned a row
// anywhere in the chain. Owner IDs are assigned contiguously by ApplyDelta,
// so the union is a dense [0, maxOwner] slice.
func chainExternals(tables []*dataset.Table) ([]*attack.External, error) {
	maxOwner := -1
	for _, t := range tables {
		for i := 0; i < t.Len(); i++ {
			if o := t.Owner(i); o > maxOwner {
				maxOwner = o
			}
		}
	}
	voterQI := make([][]int32, maxOwner+1)
	for _, t := range tables {
		for i := 0; i < t.Len(); i++ {
			o := t.Owner(i)
			if voterQI[o] == nil {
				voterQI[o] = t.QIVector(i)
			}
		}
	}
	for id, qi := range voterQI {
		if qi == nil {
			return nil, fmt.Errorf("attackfleet: owner ID %d never appears in the chain (non-contiguous IDs)", id)
		}
	}
	exts := make([]*attack.External, len(tables))
	for t, tab := range tables {
		ext, err := attack.NewExternal(tab, voterQI)
		if err != nil {
			return nil, fmt.Errorf("attackfleet: release %d external: %w", t, err)
		}
		exts[t] = ext
	}
	return exts, nil
}

// attackChainVictim runs one victim's chain-retaining adversaries, one per
// corruption fraction. The corruption set is drawn over the union of the
// victim's per-release candidate sets — the only individuals whose status
// can move the posterior — and the composed posterior is re-derived after
// every prefix.
func attackChainVictim(exts []*attack.External, releases []*pg.Published, victim, slot int, root int64, cfg MultiReleaseConfig, domain int) ([]multirelOutcome, error) {
	truth, ok := exts[len(exts)-1].SensitiveOf(victim)
	if !ok {
		return nil, fmt.Errorf("victim is not alive in the final release")
	}

	// The union candidate set across releases, from the crucial boxes.
	seen := map[int]bool{}
	var union []int
	for t, pub := range releases {
		ct, ok := pub.FindCrucial(exts[t].QIOf(victim))
		if !ok {
			return nil, fmt.Errorf("no crucial tuple in release %d", t)
		}
		for _, id := range attack.CandidatesIn(exts[t], ct.Box, victim) {
			if !seen[id] {
				seen[id] = true
				union = append(union, id)
			}
		}
	}
	sort.Ints(union)

	vRoot := par.SplitSeed(root, 1<<21+slot)
	out := make([]multirelOutcome, len(cfg.Fractions))
	for fi, frac := range cfg.Fractions {
		rng := rand.New(rand.NewSource(par.SplitSeed(vRoot, fi)))
		// planFor with y = truth: the adversary targets a predicate
		// containing the true value, the worst case for composed growth.
		adv, q, err := planFor(union, frac, cfg.Lambda, domain, truth, truth, rng)
		if err != nil {
			return nil, err
		}
		o := multirelOutcome{
			h:         make([]float64, len(releases)),
			posterior: make([]float64, len(releases)),
			growth:    make([]float64, len(releases)),
		}
		var obsn []repub.Observation
		var prior float64
		for t, pub := range releases {
			res, err := attack.LinkAttack(pub, exts[t], victim, adv, q)
			if err != nil {
				return nil, fmt.Errorf("release %d: %w", t, err)
			}
			o.h[t] = res.H
			obsn = append(obsn, repub.Observation{Y: res.Y, H: res.H, P: pub.P})
			prior = res.Prior
			post, err := repub.ComposePosterior(adv.Background, obsn)
			if err != nil {
				return nil, fmt.Errorf("release %d: composing: %w", t, err)
			}
			conf, err := post.Confidence(q)
			if err != nil {
				return nil, fmt.Errorf("release %d: %w", t, err)
			}
			o.posterior[t] = conf
			o.growth[t] = conf - prior
		}
		out[fi] = o
	}
	return out, nil
}
