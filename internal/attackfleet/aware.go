package attackfleet

import (
	"fmt"
	"sort"

	"pgpub/internal/attack"
	"pgpub/internal/dataset"
	"pgpub/internal/generalize"
	"pgpub/internal/hierarchy"
	"pgpub/internal/par"
)

// This file implements the transparent-anonymization adversary (Xiao, Tao &
// Koudas): anonymization algorithms are public, so an adversary who holds ℰ
// can rerun Phase 2 and recover the published partition without a single
// query. That works whenever the algorithm reads only what the adversary
// has — the QI columns and group sizes:
//
//	kd           splits on QI spans and medians only           → exact replay
//	full-domain  k-anonymity principle + discernibility loss,
//	             both functions of group sizes                 → exact replay
//	tds          information-gain scores read the (perturbed)
//	             sensitive column, which ℰ does not contain    → not replayable
//
// For TDS the adversary instead recovers the published recoding itself over
// HTTP: a cut-based recoding is global, so each dimension's cut is one
// antichain of the public hierarchy, and each candidate node can be tested
// with a handful of served queries (recoverCuts below). Either way the
// adversary ends with the complete partition — every owner's group, box and
// group size — which step A1 then reads off locally.

// groupModel is the aware adversary's reconstruction of the whole Phase-2
// partition over ℰ.
type groupModel struct {
	boxes   []generalize.Box
	members [][]int // group -> owner IDs, ascending
	of      []int   // owner ID -> group index
}

func newGroupModel(n int, boxes []generalize.Box, members [][]int) *groupModel {
	m := &groupModel{boxes: boxes, members: members, of: make([]int, n)}
	for gi, ids := range members {
		sort.Ints(ids)
		for _, id := range ids {
			m.of[id] = gi
		}
	}
	return m
}

// crucialOf reads the victim's crucial-tuple facts off the reconstructed
// partition: the group size and the candidate set in ascending ID order.
func (m *groupModel) crucialOf(victim int) (box generalize.Box, g int, candidates []int) {
	gi := m.of[victim]
	ids := m.members[gi]
	candidates = make([]int, 0, len(ids)-1)
	for _, id := range ids {
		if id != victim {
			candidates = append(candidates, id)
		}
	}
	return m.boxes[gi], len(ids), candidates
}

// adversaryTable rebuilds a target's Phase-2 input as the adversary knows
// it: the owners' QI vectors (in ID order) with a zeroed sensitive column.
// The replayable algorithms never read that column, so the zero stands in
// for the perturbed values the adversary cannot see. Against a shard the
// owners are its round-robin subset of ℰ — the adversary reproduces the
// publisher's partition exactly because the assignment is public.
func adversaryTable(ext *attack.External, owners []int) *dataset.Table {
	s := ext.Table().Schema
	t := dataset.NewTable(s)
	for _, id := range owners {
		row := make([]int32, s.Width())
		copy(row, ext.QIOf(id))
		t.MustAppend(row)
	}
	return t
}

// replayPhase2 reruns the known Phase-2 algorithm on the adversary's table
// for one target. Owner IDs equal microdata row indices (the fleet's ℰ lists
// exactly the microdata owners), and the algorithm's local row indices map
// back through owners, so its row groups become identity groups directly.
func replayPhase2(ext *attack.External, hiers []*hierarchy.Hierarchy, algorithm string, k, workers int, owners []int) (*groupModel, error) {
	t := adversaryTable(ext, owners)
	remap := func(local [][]int) [][]int {
		for _, rows := range local {
			for i, l := range rows {
				rows[i] = owners[l]
			}
		}
		return local
	}
	switch algorithm {
	case "kd":
		res, err := generalize.KDPartitionParallel(t, k, par.SpawnDepth(workers))
		if err != nil {
			return nil, fmt.Errorf("attackfleet: replaying kd: %w", err)
		}
		return newGroupModel(ext.Len(), res.Cells, remap(res.Rows)), nil
	case "full-domain":
		res, err := generalize.SearchFullDomain(t, hiers, generalize.FullDomainConfig{
			Principle: generalize.KAnonymity{K: k}, Workers: workers,
		})
		if err != nil {
			return nil, fmt.Errorf("attackfleet: replaying full-domain: %w", err)
		}
		boxes := make([]generalize.Box, res.Groups.Len())
		for i, key := range res.Groups.Keys {
			boxes[i] = res.Recoding.BoxOf(key)
		}
		return newGroupModel(ext.Len(), boxes, remap(res.Groups.Rows)), nil
	default:
		return nil, fmt.Errorf("attackfleet: algorithm %q is not replayable", algorithm)
	}
}

// recoverCuts reconstructs a cut-based recoding's global cuts over HTTP —
// the cuts of this runner's target, from its owners' boxes alone (pinned to
// the target's shard when the release is sharded). Per dimension it
// descends the public hierarchy from the root: a node v is in the cut iff,
// for every owner w whose dim-j value v covers, w's box spans exactly v's
// leaf range in dimension j. Each candidate node is tested through up to
// three witnesses picked from distinct regions of v's range; a witness
// passes when interior point fingerprints across the range all match its
// own and both segment queries scale linearly with the span. The recovery
// runs serially (before the victim fan-out), so its query sequence is
// deterministic.
func (r *runner) recoverCuts() (*generalize.Recoding, error) {
	d := r.schema.D()
	cuts := make([]*hierarchy.Cut, d)
	fps := make(map[int]fingerprint) // owner -> own-point fingerprint, shared across dims
	for j := 0; j < d; j++ {
		h := r.hiers[j]
		// Owners sorted by their dim-j coordinate, for range lookups and
		// witness spreading.
		ids := make([]int, len(r.owners))
		copy(ids, r.owners)
		sort.Slice(ids, func(a, b int) bool {
			va, vb := r.ext.QIOf(ids[a])[j], r.ext.QIOf(ids[b])[j]
			if va != vb {
				return va < vb
			}
			return ids[a] < ids[b]
		})
		coords := make([]int32, len(ids))
		for i, id := range ids {
			coords[i] = r.ext.QIOf(id)[j]
		}

		var nodes []int32
		var walk func(v int32) error
		walk = func(v int32) error {
			lo, hi := h.Range(v)
			a := sort.Search(len(coords), func(i int) bool { return coords[i] >= lo })
			b := sort.Search(len(coords), func(i int) bool { return coords[i] > hi })
			if a == b || h.IsLeaf(v) {
				// No owner to witness the node (no box exists there), or the
				// cut cannot go below a leaf: accept as-is.
				nodes = append(nodes, v)
				return nil
			}
			ok, err := r.cutNodeHolds(j, v, ids[a:b], fps)
			if err != nil {
				return err
			}
			if ok {
				nodes = append(nodes, v)
				return nil
			}
			for _, c := range h.Children(v) {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(h.Root()); err != nil {
			return nil, err
		}
		cut, err := hierarchy.NewCut(h, nodes)
		if err != nil {
			return nil, fmt.Errorf("attackfleet: recovered dim-%d nodes do not form a cut: %w", j, err)
		}
		cuts[j] = cut
		r.sh.cutNodes.Add(int64(len(nodes)))
		r.sh.met.cutNodes.Add(int64(len(nodes)))
	}
	return generalize.NewRecoding(r.schema, r.hiers, cuts)
}

// cutNodeHolds tests one candidate cut node v of dimension j against up to
// three witnesses drawn from the extremes and middle of v's covered owners.
// A node above the true cut fails unless every probe of every witness
// collides bitwise with a look-alike box — the probability of which shrinks
// geometrically with each witness.
func (r *runner) cutNodeHolds(j int, v int32, covered []int, fps map[int]fingerprint) (bool, error) {
	h := r.hiers[j]
	lo, hi := h.Range(v)
	span := h.Span(v)
	witnesses := []int{covered[0]}
	if len(covered) > 2 {
		witnesses = append(witnesses, covered[len(covered)/2])
	}
	if len(covered) > 1 {
		witnesses = append(witnesses, covered[len(covered)-1])
	}
	seen := map[int]bool{}
	for _, w := range witnesses {
		if seen[w] {
			continue
		}
		seen[w] = true
		wq := r.ext.QIOf(w)
		fp, ok := fps[w]
		if !ok {
			var err error
			if fp, err = r.fingerprintAt(wq, -1, 0); err != nil {
				return false, err
			}
			fps[w] = fp
		}
		if fp.naive == 0 {
			return false, fmt.Errorf("attackfleet: owner %d has no served box", w)
		}
		// Interior fingerprints: endpoints plus two interior points of v's
		// range must all sit in the witness's box.
		probes := []int32{lo, lo + int32(span/3), lo + int32(2*span/3), hi}
		for _, x := range probes {
			if x == wq[j] {
				continue
			}
			g, err := r.fingerprintAt(wq, j, x)
			if err != nil {
				return false, err
			}
			if !g.equal(fp) {
				return false, nil
			}
		}
		ok2, err := r.verifySegment(wq, j, lo, hi, fp)
		if err != nil {
			return false, err
		}
		if !ok2 {
			return false, nil
		}
	}
	return true, nil
}

// modelFromRecoding groups a target's owners under a recovered recoding —
// the cut-based counterpart of replayPhase2's output.
func modelFromRecoding(ext *attack.External, rec *generalize.Recoding, owners []int) *groupModel {
	type group struct {
		box generalize.Box
		ids []int
	}
	byKey := map[string]*group{}
	var order []string
	d := ext.Table().Schema.D()
	gen := make([]int32, d)
	for _, id := range owners {
		rec.GeneralizeInto(gen, ext.QIOf(id))
		key := string(int32sToBytes(gen))
		g, ok := byKey[key]
		if !ok {
			g = &group{box: rec.BoxOf(gen)}
			byKey[key] = g
			order = append(order, key)
		}
		g.ids = append(g.ids, id)
	}
	boxes := make([]generalize.Box, len(order))
	members := make([][]int, len(order))
	for i, key := range order {
		boxes[i] = byKey[key].box
		members[i] = byKey[key].ids
	}
	return newGroupModel(ext.Len(), boxes, members)
}

func int32sToBytes(v []int32) []byte {
	b := make([]byte, 0, 4*len(v))
	for _, x := range v {
		b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return b
}
