package attackfleet

import (
	"fmt"
	"math"

	"pgpub/internal/generalize"
)

// This file reconstructs the adversary's A1 observations from served query
// answers. Two facts make the reconstruction exact:
//
//   - A point query (every QI dimension pinned) restricts all dimensions, so
//     the server always answers it through the index's exact kd traversal,
//     touching exactly the one published row whose box covers the point
//     (Property G3). The answer is a deterministic float: G·Π_j(1/len_j)
//     for NAIVE, with the sensitive mask/value weighting on top.
//
//   - Two points inside the same box produce bit-identical answers (same
//     entry, same per-dimension lengths, same multiplication order), so
//     bitwise equality of the (NAIVE, SUM) answer pair is a box-membership
//     fingerprint. Distinct boxes collide only when both float products
//     coincide exactly — rare, and every use below is double-checked by a
//     segment query whose answer must scale linearly with the probed span.

// fingerprint is the (NAIVE, SUM) point-answer pair used for box-membership
// tests.
type fingerprint struct {
	naive, sum float64
}

func (f fingerprint) equal(g fingerprint) bool {
	return math.Float64bits(f.naive) == math.Float64bits(g.naive) &&
		math.Float64bits(f.sum) == math.Float64bits(g.sum)
}

// fingerprintAt probes the point vq with dimension j moved to x (j < 0
// probes vq itself).
func (r *runner) fingerprintAt(vq []int32, j int, x int32) (fingerprint, error) {
	probe := vq
	if j >= 0 {
		probe = make([]int32, len(vq))
		copy(probe, vq)
		probe[j] = x
	}
	n, err := r.cl.naivePoint(probe)
	if err != nil {
		return fingerprint{}, err
	}
	if n == 0 {
		// No published box covers the point; the SUM would error on the
		// estimated-empty region, and the fingerprint is simply "empty".
		return fingerprint{}, nil
	}
	s, err := r.cl.sumPoint(probe)
	if err != nil {
		return fingerprint{}, err
	}
	return fingerprint{naive: n, sum: s}, nil
}

// recoverY reconstructs the victim's crucial observation (unit weight and
// observed sensitive value y) over HTTP, deliberately exercising all three
// served estimator paths and cross-checking them against each other:
//
//	NAIVE   unit = G/vol, the box weight at the victim's point
//	COUNT   binary search over prefix masks {0..m}: the PG-inverted count is
//	        positive iff y <= m (the box holds exactly one published value)
//	SUM     readoff: sum = (unit·y − (1−p)·mean·unit)/p inverts to y
//	NAIVE   mask confirmation: the {y}-masked weight equals the box weight
//
// Any disagreement means the server is not answering from a PG publication
// consistent with the metadata, and the attack run fails loudly.
func (r *runner) recoverY(vq []int32) (fingerprint, int32, error) {
	unit, err := r.cl.naivePoint(vq)
	if err != nil {
		return fingerprint{}, 0, err
	}
	if unit <= 0 {
		return fingerprint{}, 0, fmt.Errorf("attackfleet: no crucial tuple served at %v", vq)
	}

	// COUNT path: find the smallest m with a positive count under {0..m}.
	lo, hi := int32(0), int32(r.domain-1)
	prefix := make([]int32, 0, r.domain)
	for lo < hi {
		m := (lo + hi) / 2
		prefix = prefix[:0]
		for x := int32(0); x <= m; x++ {
			prefix = append(prefix, x)
		}
		est, err := r.cl.countMask(vq, prefix)
		if err != nil {
			return fingerprint{}, 0, err
		}
		if est > 0 {
			hi = m
		} else {
			lo = m + 1
		}
	}
	y := lo

	// SUM path: invert the identity-value SUM estimator.
	sum, err := r.cl.sumPoint(vq)
	if err != nil {
		return fingerprint{}, 0, err
	}
	mean := float64(r.domain-1) / 2
	ySum := math.Round(r.p*sum/unit + (1-r.p)*mean)
	if ySum != float64(y) {
		return fingerprint{}, 0, fmt.Errorf(
			"attackfleet: SUM readoff says y = %v, COUNT search says y = %d at %v", ySum, y, vq)
	}

	// NAIVE mask confirmation: one published row per box, so the {y}-masked
	// weight is the whole box weight.
	masked, err := r.cl.naiveMask(vq, []int32{y})
	if err != nil {
		return fingerprint{}, 0, err
	}
	if masked <= 0 || math.Abs(masked-unit) > 1e-9*unit {
		return fingerprint{}, 0, fmt.Errorf(
			"attackfleet: {y}-masked weight %v disagrees with box weight %v at %v", masked, unit, vq)
	}
	return fingerprint{naive: unit, sum: sum}, y, nil
}

// probeBox reconstructs the victim's crucial box blind — without knowing the
// Phase-2 algorithm — by galloping each dimension's edges out from the
// victim's point with membership fingerprints, then verifying each edge pair
// with segment queries (NAIVE and SUM over the whole span must equal the
// point answers scaled by the span). A failed verification falls back to a
// linear one-step scan; a fallback that still fails is an error.
func (r *runner) probeBox(vq []int32, fp fingerprint) (generalize.Box, error) {
	d := len(vq)
	box := generalize.Box{Lo: make([]int32, d), Hi: make([]int32, d)}
	for j := 0; j < d; j++ {
		size := int32(r.schema.QI[j].Size())
		match := func(x int32) (bool, error) {
			if x == vq[j] {
				return true, nil
			}
			g, err := r.fingerprintAt(vq, j, x)
			if err != nil {
				return false, err
			}
			return g.equal(fp), nil
		}
		lo, err := probeEdge(vq[j], 0, -1, match)
		if err != nil {
			return box, err
		}
		hi, err := probeEdge(vq[j], size-1, +1, match)
		if err != nil {
			return box, err
		}
		ok, err := r.verifySegment(vq, j, lo, hi, fp)
		if err != nil {
			return box, err
		}
		if !ok {
			// Linear fallback: step one code at a time. This survives the
			// (rare) case where the gallop fingerprint collided with an
			// adjacent box.
			r.sh.probeFallbacks.Add(1)
			r.sh.met.probeFallbacks.Inc()
			if lo, hi, err = linearEdges(vq[j], size, match); err != nil {
				return box, err
			}
			if ok, err = r.verifySegment(vq, j, lo, hi, fp); err != nil {
				return box, err
			}
			if !ok {
				return box, fmt.Errorf(
					"attackfleet: probed span [%d,%d] of dim %d fails segment verification at %v",
					lo, hi, j, vq)
			}
		}
		box.Lo[j], box.Hi[j] = lo, hi
	}
	return box, nil
}

// probeEdge finds the box edge along one direction: the farthest x (toward
// bound, stepping by dir) whose fingerprint still matches. Galloping doubles
// the step while matching; a mismatch brackets the edge for binary search.
// Box spans are contiguous, so any matching point certifies everything
// between it and the start.
func probeEdge(start, bound int32, dir int32, match func(int32) (bool, error)) (int32, error) {
	good := start
	step := int32(1)
	for good != bound {
		probe := good + dir*step
		if (dir < 0 && probe < bound) || (dir > 0 && probe > bound) {
			probe = bound
		}
		ok, err := match(probe)
		if err != nil {
			return 0, err
		}
		if ok {
			good = probe
			step *= 2
			continue
		}
		// Edge is strictly between probe (bad) and good; binary search.
		bad := probe
		for bad != good+dir {
			mid := (bad + good) / 2
			ok, err := match(mid)
			if err != nil {
				return 0, err
			}
			if ok {
				good = mid
			} else {
				bad = mid
			}
		}
		return good, nil
	}
	return good, nil
}

// linearEdges is the conservative fallback: extend one code at a time from
// the victim's coordinate while the fingerprint matches.
func linearEdges(start, size int32, match func(int32) (bool, error)) (lo, hi int32, err error) {
	lo, hi = start, start
	for lo > 0 {
		ok, err := match(lo - 1)
		if err != nil {
			return 0, 0, err
		}
		if !ok {
			break
		}
		lo--
	}
	for hi < size-1 {
		ok, err := match(hi + 1)
		if err != nil {
			return 0, 0, err
		}
		if !ok {
			break
		}
		hi++
	}
	return lo, hi, nil
}

// verifySegment checks that the segment dim j ∈ [lo, hi] behaves like one
// box: the NAIVE weight must be the point weight times the span (to 1e-9
// relative — the only slack is float rounding of (1/span)·span), and the SUM
// must scale the same way. A merged pair of look-alike boxes fails at least
// one of the two unless every per-box answer collides exactly.
func (r *runner) verifySegment(vq []int32, j int, lo, hi int32, fp fingerprint) (bool, error) {
	span := float64(hi-lo) + 1
	segN, err := r.cl.naiveSegment(vq, j, lo, hi)
	if err != nil {
		return false, err
	}
	if math.Abs(segN-fp.naive*span) > 1e-9*fp.naive*span {
		return false, nil
	}
	segS, err := r.cl.sumSegment(vq, j, lo, hi)
	if err != nil {
		return false, err
	}
	// SUM terms can cancel near the domain mean, so the tolerance is scaled
	// to the un-inverted magnitudes rather than the result.
	tol := 1e-6 * (1 + span*fp.naive*float64(r.domain)/r.p)
	return math.Abs(segS-fp.sum*span) <= tol, nil
}

// groupFromBox turns a verified box into the crucial-tuple facts the
// posterior needs: G from the box weight (unit·vol must be integral) and
// the candidate set from the target's owners (only they can appear in one
// of its boxes), cross-checked against each other.
func (r *runner) groupFromBox(vq []int32, box generalize.Box, unit float64, victim int) (g int, candidates []int, err error) {
	vol := 1.0
	for j := range box.Lo {
		vol *= float64(box.Hi[j]-box.Lo[j]) + 1
	}
	gf := unit * vol
	g = int(math.Round(gf))
	if g < 1 || math.Abs(gf-float64(g)) > 1e-6*(1+float64(g)) {
		return 0, nil, fmt.Errorf("attackfleet: box weight %v times volume %v is not integral at %v", unit, vol, vq)
	}
	for _, id := range r.owners {
		if id != victim && box.Covers(r.ext.QIOf(id)) {
			candidates = append(candidates, id)
		}
	}
	if len(candidates)+1 != g {
		return 0, nil, fmt.Errorf(
			"attackfleet: box at %v holds %d identities but the served weight says G = %d",
			vq, len(candidates)+1, g)
	}
	return g, candidates, nil
}
