package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// get fetches a path from the debug server and returns status and body.
func get(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("served.requests").Add(3)
	r.Gauge("served.workers").Set(8)
	r.Histogram("served.latency", "ns").Observe(1000)

	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if code, body := get(t, srv.Addr, "/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := get(t, srv.Addr, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"counter served.requests 3", "gauge   served.workers 8", "hist    served.latency unit=ns count=1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if code, body := get(t, srv.Addr, "/metrics.json"); code != 200 || !strings.Contains(body, `"served.requests": 3`) {
		t.Fatalf("/metrics.json = %d %q", code, body)
	}
	if code, body := get(t, srv.Addr, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d (body %d bytes)", code, len(body))
	}
	if code, _ := get(t, srv.Addr, "/debug/pprof/goroutine?debug=1"); code != 200 {
		t.Fatalf("/debug/pprof/goroutine = %d", code)
	}
	if code, _ := get(t, srv.Addr, "/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
}

func TestDebugServerNilRegistry(t *testing.T) {
	var r *Registry
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, srv.Addr, "/healthz"); code != 200 {
		t.Fatalf("/healthz on nil registry = %d", code)
	}
	if code, body := get(t, srv.Addr, "/metrics"); code != 200 || body != "" {
		t.Fatalf("/metrics on nil registry = %d %q", code, body)
	}
}

func TestDebugServerCloseIdempotent(t *testing.T) {
	var s *DebugServer
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}
