package obs

import "testing"

// The micro-benchmarks below pin the cost of the two instrumentation states:
// disabled (nil instruments — the single-branch fast path every call site
// pays when no registry is wired) and enabled (atomic updates). The
// pipeline-level overhead check lives in the repository root
// (BenchmarkPublishParallel vs BenchmarkPublishParallelMetricsOn).

func BenchmarkCounterNil(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramNil(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench", "ns")
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench", "ns")
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			v++
			h.Observe(v)
		}
	})
}
