package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryFastPath(t *testing.T) {
	var r *Registry
	if c := r.Counter("x"); c != nil {
		t.Fatalf("nil registry returned non-nil counter")
	}
	if g := r.Gauge("x"); g != nil {
		t.Fatalf("nil registry returned non-nil gauge")
	}
	if h := r.Histogram("x", "ns"); h != nil {
		t.Fatalf("nil registry returned non-nil histogram")
	}
	// All of these must be silent no-ops.
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(7)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram not inert")
	}
	sp := r.Span("x")
	if d := sp.End(); d != 0 {
		t.Fatalf("inert span reported %v", d)
	}
	ran := false
	r.Phase("x", func() { ran = true })
	if !ran {
		t.Fatalf("Phase on nil registry did not run fn")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteText: %v, %q", err, buf.String())
	}
	if err := r.WriteJSON(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteJSON: %v, %q", err, buf.String())
	}
	if err := r.PublishExpvar("nil-reg"); err != nil {
		t.Fatalf("nil registry PublishExpvar: %v", err)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if r.Counter("a.b") != c {
		t.Fatalf("Counter is not get-or-create")
	}
	g := r.Gauge("a.g")
	g.Set(10)
	g.Set(-2)
	if g.Value() != -2 {
		t.Fatalf("gauge = %d, want -2", g.Value())
	}
	if r.Gauge("a.g") != g {
		t.Fatalf("Gauge is not get-or-create")
	}
}

// TestHistogramBucketsMonotone checks the bucket mapping is monotone and
// that bucketLo inverts bucketOf at every bucket boundary.
func TestHistogramBucketsMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1 << 40, 1 << 62} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d (not monotone)", v, b, prev)
		}
		prev = b
		lo, width := bucketLo(b)
		if v < lo || v >= lo+width {
			t.Fatalf("value %d not inside its bucket %d = [%d, %d)", v, b, lo, lo+width)
		}
	}
	if b := bucketOf(1<<63 - 1); b >= histBuckets {
		t.Fatalf("max value bucket %d out of range %d", b, histBuckets)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "ns")
	// 1..1000: exact answers would be p50=500, p95=950, p99=990; buckets
	// guarantee ~6.25% relative error.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Sum() != 500500 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	check := func(q float64, want int64) {
		got := h.Quantile(q)
		rel := float64(got-want) / float64(want)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.08 {
			t.Errorf("q%.2f = %d, want within 8%% of %d", q, got, want)
		}
	}
	check(0.50, 500)
	check(0.95, 950)
	check(0.99, 990)
	if h.Quantile(0) < 1 || h.Quantile(1) > 1000 {
		t.Fatalf("extreme quantiles outside observed range: q0=%d q1=%d", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramClampsNegative(t *testing.T) {
	h := NewRegistry().Histogram("x", "ns")
	h.Observe(-5)
	if h.Count() != 1 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative observation not clamped: count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestSpanRecords(t *testing.T) {
	r := NewRegistry()
	sp := r.Span("phase")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Fatalf("span elapsed %v < 1ms", d)
	}
	h := r.Histogram("phase", "ns")
	if h.Count() != 1 || h.Sum() < int64(time.Millisecond) {
		t.Fatalf("span not recorded: count=%d sum=%d", h.Count(), h.Sum())
	}
	r.Phase("phase", func() {})
	if h.Count() != 2 {
		t.Fatalf("Phase not recorded: count=%d", h.Count())
	}
}

// fill records a fixed observation set into a fresh registry using the given
// number of goroutines. The per-goroutine interleaving differs, but the
// recorded multiset is identical, so exports must match byte for byte.
func fill(workers int) *Registry {
	r := NewRegistry()
	c := r.Counter("pipeline.rows")
	g := r.Gauge("pipeline.workers")
	h := r.Histogram("pipeline.latency", "ns")
	const n = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				c.Add(int64(i % 7))
				h.Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	g.Set(int64(16)) // fixed, not worker-dependent
	return r
}

// TestRegistryExportDeterministic is the metrics determinism test: the text
// and JSON exports of identical observation multisets are byte-identical
// across runs and worker counts.
func TestRegistryExportDeterministic(t *testing.T) {
	var ref string
	for _, workers := range []int{1, 4, 16} {
		for rep := 0; rep < 3; rep++ {
			r := fill(workers)
			var text, js bytes.Buffer
			if err := r.WriteText(&text); err != nil {
				t.Fatal(err)
			}
			if err := r.WriteJSON(&js); err != nil {
				t.Fatal(err)
			}
			out := text.String() + "\n---\n" + js.String()
			if ref == "" {
				ref = out
				continue
			}
			if out != ref {
				t.Fatalf("export differs at workers=%d rep=%d:\n%s\nwant:\n%s", workers, rep, out, ref)
			}
		}
	}
	if !strings.Contains(ref, "counter pipeline.rows") {
		t.Fatalf("export missing counter line:\n%s", ref)
	}
}

// TestConcurrentHammer drives counters, gauges, and histograms from 16
// goroutines; run under -race (the CI test job does) this is the layer's
// data-race certification. Totals are checked for lost updates.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 16
		perG       = 20000
	)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mix creation and recording: get-or-create must be safe too.
			c := r.Counter("hammer.count")
			h := r.Histogram("hammer.hist", "ns")
			g := r.Gauge("hammer.gauge")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(int64(i & 1023))
				g.Set(int64(w))
				if i%512 == 0 {
					r.Snapshot() // concurrent readers
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hammer.count").Value(); got != goroutines*perG {
		t.Fatalf("lost counter updates: %d, want %d", got, goroutines*perG)
	}
	h := r.Histogram("hammer.hist", "ns")
	if h.Count() != goroutines*perG {
		t.Fatalf("lost histogram updates: %d, want %d", h.Count(), goroutines*perG)
	}
	if h.min.Load() != 0 || h.max.Load() != 1023 {
		t.Fatalf("min/max = %d/%d, want 0/1023", h.min.Load(), h.max.Load())
	}
}

func TestPublishExpvarDuplicate(t *testing.T) {
	r := NewRegistry()
	if err := r.PublishExpvar("obs-test-dup"); err != nil {
		t.Fatalf("first publication: %v", err)
	}
	if err := NewRegistry().PublishExpvar("obs-test-dup"); err == nil {
		t.Fatalf("duplicate publication did not error")
	}
}
