package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sync"
)

// This file is the export half of the registry: a point-in-time Snapshot
// type, a line-oriented text renderer, a JSON renderer, and expvar
// publication. All three render instruments sorted by name, so two
// registries that recorded the same observations export byte-identical
// documents no matter how many goroutines did the recording.

// HistogramSnapshot is the exported summary of one histogram.
type HistogramSnapshot struct {
	Unit  string  `json:"unit,omitempty"`
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Snapshot is a point-in-time copy of every instrument's value. Maps
// marshal with sorted keys under encoding/json, so the JSON form is
// deterministic too.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// snapshotHistogram summarizes h; h must be non-nil.
func snapshotHistogram(h *Histogram) HistogramSnapshot {
	s := HistogramSnapshot{
		Unit:  h.unit,
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	return s
}

// Snapshot copies every instrument's current value. Returns an empty
// snapshot on a nil registry. Instruments recorded concurrently with the
// snapshot land in it or not per instrument; each value read is atomic.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = snapshotHistogram(h)
	}
	return s
}

// WriteText renders the registry as sorted "kind name value" lines:
//
//	counter pg.phase1.rows 100000
//	gauge   query.index.entries 3349
//	hist    query.latency unit=ns count=1000 sum=9184776 min=802 max=99821 mean=9184.8 p50=8133 p95=24125 p99=64221
//
// The format is stable and deterministic: identical recorded values render
// byte-identically. No-op on a nil registry.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge   %s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w,
			"hist    %s unit=%s count=%d sum=%d min=%d max=%d mean=%.1f p50=%d p95=%d p99=%d\n",
			name, h.Unit, h.Count, h.Sum, h.Min, h.Max, h.Mean, h.P50, h.P95, h.P99); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON (sorted keys — the
// encoding/json map contract — so the document is deterministic). No-op on
// a nil registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// expvar publication bookkeeping: expvar.Publish panics on duplicate names
// and offers no unpublish, so PublishExpvar keeps its own name set and
// returns an error instead.
var (
	expvarMu    sync.Mutex
	expvarNames = map[string]bool{}
)

// PublishExpvar exposes the registry under the given expvar name (served at
// /debug/vars by the debug server and by any expvar.Handler). The variable
// renders the live Snapshot on every read. Each name can be published once
// per process; a second publication — even of another registry — returns an
// error. No-op on a nil registry.
func (r *Registry) PublishExpvar(name string) error {
	if r == nil {
		return nil
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarNames[name] {
		return fmt.Errorf("obs: expvar name %q already published", name)
	}
	expvarNames[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return nil
}
